// Package repl is the follower half of WAL-shipping replication: it tails a
// leader's per-tenant log stream (internal/server's /v1/db/{name}/repl/…
// endpoints) and maintains read-only replica shards that serve every read
// endpoint at the follower's applied LSN.
//
// One Follower replicates one tenant:
//
//   - Catch-up is snapshot-first: the tailer fetches the leader's newest
//     checkpoint image, re-verifies every byte of it (manifest decode, doc
//     and view content hashes — wal.NewReplImage runs the same checks the
//     leader's own recovery does), restores an engine from it, and attaches
//     a replica shard at the checkpoint's LSN.
//
//   - It then tails the stream: each poll fetches raw WAL frames from
//     applied+1, CRC-verifies and decodes them (wal.DecodeFrames rejects the
//     whole read on any torn or corrupt frame — network data is never
//     partially applied), replays the records through the normal core apply
//     path, and publishes one epoch per applied batch. Statement runs are
//     batched through pulopt.PlanBatch exactly like a leader's writer loop;
//     any gate rejection falls back to per-statement application, which is
//     equivalent — the engine version is a pure function of the statement
//     sequence, so a follower that batches differently than its leader still
//     converges byte-identically.
//
//   - Records that fail to parse or that the engine rejects are skipped,
//     mirroring recovery's replay semantics (they had no effect on the
//     leader either); a batch that part-applies forces a snapshot re-sync
//     rather than guessing at the boundary.
//
//   - Transport errors reconnect with jittered exponential backoff and
//     resume from the last-applied LSN. A 410 snapshot_required answer
//     (the leader truncated past our position) re-runs snapshot-first
//     catch-up on a fresh engine and re-attaches the shard; the stale epoch
//     keeps serving reads meanwhile.
//
// A Fleet runs one Follower per leader tenant, discovering creates and
// drops by polling the leader's admin plane.
package repl

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"xivm/internal/client"
	"xivm/internal/core"
	"xivm/internal/obs"
	"xivm/internal/pattern"
	"xivm/internal/pulopt"
	"xivm/internal/server"
	"xivm/internal/update"
	"xivm/internal/wal"
)

// Options tunes followers. The zero value selects the defaults noted on
// each field.
type Options struct {
	// PollInterval is how long a caught-up tailer waits before asking the
	// leader for more frames (default 100ms).
	PollInterval time.Duration
	// MaxBytes caps one stream read (default 1MiB). The leader always ships
	// at least one frame regardless.
	MaxBytes int
	// MaxBatch caps how many consecutive statements are replayed through one
	// PlanBatch translation (default 32; 1 disables batching).
	MaxBatch int
	// MinBackoff/MaxBackoff bound the jittered exponential reconnect backoff
	// (defaults 50ms / 3s).
	MinBackoff, MaxBackoff time.Duration
	// Metrics selects the registry for the repl.follower.* instruments
	// (nil = obs.Default()).
	Metrics *obs.Metrics
	// Engine configures restored engines (maintenance policy etc.); use the
	// same options as the leader so per-view strategy choices match.
	Engine []core.Option
}

func (o Options) pollInterval() time.Duration {
	if o.PollInterval <= 0 {
		return 100 * time.Millisecond
	}
	return o.PollInterval
}

func (o Options) maxBytes() int {
	if o.MaxBytes <= 0 {
		return 1 << 20
	}
	return o.MaxBytes
}

func (o Options) maxBatch() int {
	if o.MaxBatch <= 0 {
		return 32
	}
	return o.MaxBatch
}

func (o Options) minBackoff() time.Duration {
	if o.MinBackoff <= 0 {
		return 50 * time.Millisecond
	}
	return o.MinBackoff
}

func (o Options) maxBackoff() time.Duration {
	if o.MaxBackoff <= 0 {
		return 3 * time.Second
	}
	return o.MaxBackoff
}

// gauge tracks a current value on top of a delta counter. Each follower
// mutates only from its own tailer goroutine, and distinct followers sharing
// one flat counter each track their own last-reported value, so the counter
// always reads as the SUM of the per-follower values (with one tenant,
// exactly that follower's value).
type gauge struct {
	c    *obs.Counter
	last int64
}

func (g *gauge) set(v uint64) {
	n := int64(v)
	g.c.Add(n - g.last)
	g.last = n
}

// followerMetrics are the follower-side instruments:
//
//	repl.follower.applied_lsn  Σ per-tenant applied LSN (gauge-via-deltas)
//	repl.follower.lag_lsn      Σ per-tenant (leader tip − applied) lag
//	repl.follower.records      log records replayed
//	repl.follower.batches      statement runs replayed as one translated batch
//	repl.follower.skipped      records skipped (mirroring recovery semantics)
//	repl.follower.resyncs      snapshot-first catch-ups (initial + after 410)
//	repl.follower.reconnects   transport errors that triggered backoff
type followerMetrics struct {
	applied    gauge
	lag        gauge
	records    *obs.Counter
	batches    *obs.Counter
	skipped    *obs.Counter
	resyncs    *obs.Counter
	reconnects *obs.Counter
}

func newFollowerMetrics(reg *obs.Metrics) *followerMetrics {
	if reg == nil {
		reg = obs.Default()
	}
	return &followerMetrics{
		applied:    gauge{c: reg.Counter("repl.follower.applied_lsn")},
		lag:        gauge{c: reg.Counter("repl.follower.lag_lsn")},
		records:    reg.Counter("repl.follower.records"),
		batches:    reg.Counter("repl.follower.batches"),
		skipped:    reg.Counter("repl.follower.skipped"),
		resyncs:    reg.Counter("repl.follower.resyncs"),
		reconnects: reg.Counter("repl.follower.reconnects"),
	}
}

// errResync is returned inside the tail loop when the follower's engine can
// no longer be trusted to match the log (a translated batch part-applied)
// and only a fresh snapshot restores certainty.
var errResync = errors.New("repl: state uncertain, snapshot re-sync required")

// Follower replicates one tenant from a leader into a follower registry.
// Create with NewFollower and drive with Run; all state is owned by the
// single tailer goroutine inside Run.
type Follower struct {
	name string
	id   string // follower identity for leader-side log pinning
	db   *client.DB
	reg  *server.Registry
	opts Options
	m    *followerMetrics

	eng        *core.Engine
	sh         *server.Shard
	applied    uint64
	leaderLast uint64
}

// NewFollower builds a tailer for one tenant. c must point at the leader
// (the registry's FollowerOf URL) and reg must be a follower registry.
func NewFollower(c *client.Client, reg *server.Registry, tenant string, opts Options) *Follower {
	return &Follower{
		name: tenant,
		id:   fmt.Sprintf("%s-%08x", tenant, rand.Uint32()),
		db:   c.DB(tenant),
		reg:  reg,
		opts: opts,
		m:    newFollowerMetrics(opts.Metrics),
	}
}

// Run tails the leader until ctx is cancelled: snapshot-first catch-up,
// then the poll loop, re-syncing or backing off as classified errors
// dictate. It returns ctx.Err().
func (f *Follower) Run(ctx context.Context) error {
	backoff := f.opts.minBackoff()
	for ctx.Err() == nil {
		if f.eng == nil {
			if err := f.resync(ctx); err != nil {
				if ctx.Err() != nil {
					break
				}
				f.m.reconnects.Inc()
				f.sleepBackoff(ctx, &backoff)
				continue
			}
			backoff = f.opts.minBackoff()
		}
		err := f.pollOnce(ctx)
		switch {
		case err == nil:
			backoff = f.opts.minBackoff()
		case ctx.Err() != nil:
		case isSnapshotRequired(err) || errors.Is(err, errResync):
			// The leader truncated past our position (or our state is
			// uncertain): run snapshot-first catch-up on a fresh engine. The
			// current epoch keeps serving reads until the new shard attaches.
			f.eng = nil
		default:
			f.m.reconnects.Inc()
			f.sleepBackoff(ctx, &backoff)
		}
	}
	return ctx.Err()
}

// resync is snapshot-first catch-up: fetch the leader's newest checkpoint
// image, verify every byte, restore an engine, and (re-)attach the replica
// shard at the image's LSN.
func (f *Follower) resync(ctx context.Context) error {
	resp, err := f.db.ReplSnapshot(ctx)
	if err != nil {
		return err
	}
	img, err := wal.NewReplImage(resp.Manifest, resp.Doc, resp.Ords, resp.Views)
	if err != nil {
		return fmt.Errorf("repl: verifying snapshot for %s: %w", f.name, err)
	}
	eng, err := img.Restore(f.opts.Engine...)
	if err != nil {
		return fmt.Errorf("repl: restoring snapshot for %s: %w", f.name, err)
	}
	f.eng = eng
	f.applied = img.Manifest.LSN
	if f.leaderLast < f.applied {
		f.leaderLast = f.applied
	}
	sh, err := f.reg.NewReplica(f.name, eng, f.applied, f.leaderLast)
	if err != nil {
		f.eng = nil
		return err
	}
	f.sh = sh
	f.m.resyncs.Inc()
	f.m.applied.set(f.applied)
	f.m.lag.set(f.leaderLast - f.applied)
	return nil
}

// pollOnce is one tail step: fetch frames from applied+1, decode and
// re-verify them, replay, publish the new epoch. When caught up it naps for
// the poll interval instead.
func (f *Follower) pollOnce(ctx context.Context) error {
	from := f.applied + 1
	frames, next, last, err := f.db.ReplFrames(ctx, from, f.opts.maxBytes(), f.id)
	if err != nil {
		return err
	}
	if last > f.leaderLast {
		f.leaderLast = last
	}
	if len(frames) == 0 || next <= from {
		// Caught up: remember the tip for lag reporting and nap.
		f.sh.SetLeaderLast(f.leaderLast)
		f.m.lag.set(f.leaderLast - f.applied)
		return f.nap(ctx, f.opts.pollInterval())
	}
	recs, err := wal.DecodeFrames(frames, from)
	if err != nil {
		// Torn or corrupt network read: refetch from the same position.
		return fmt.Errorf("repl: decoding frames for %s at %d: %w", f.name, from, err)
	}
	if err := f.replay(recs); err != nil {
		return err
	}
	f.applied = recs[len(recs)-1].LSN
	f.sh.PublishReplica(f.eng.Snapshot(), f.applied, f.leaderLast)
	f.m.applied.set(f.applied)
	f.m.lag.set(f.leaderLast - f.applied)
	return nil
}

// replay applies one decoded batch of records through the engine, batching
// maximal runs of parseable statements through the pulopt planner and
// mirroring recovery's skip semantics for everything the planner or engine
// rejects. Only a part-applied translated batch is an error (errResync).
func (f *Follower) replay(recs []wal.Record) error {
	var run []*update.Statement
	for i := range recs {
		r := &recs[i]
		switch r.Kind {
		case wal.RecordStatement:
			st, err := update.Parse(r.Statement)
			if err != nil {
				// A skipped statement has no effect, so the run can span it.
				f.m.skipped.Inc()
				continue
			}
			run = append(run, st)
		case wal.RecordView:
			// View registration must land at its exact point in the
			// statement sequence.
			if err := f.flush(run); err != nil {
				return err
			}
			run = run[:0]
			p, err := pattern.Parse(r.ViewPattern)
			if err != nil {
				f.m.skipped.Inc()
				continue
			}
			if _, err := f.eng.AddView(r.ViewName, p); err != nil {
				f.m.skipped.Inc()
				continue
			}
			f.m.records.Inc()
		default:
			f.m.skipped.Inc()
		}
	}
	return f.flush(run)
}

// flush replays a run of statements: chunks are first offered to the batch
// planner; a rejected plan degrades the chunk's first statement to the
// per-statement path (engine errors skipped, exactly like recovery) and the
// rest is re-planned. Equivalence holds either way — the planner's gates
// guarantee a translated chunk produces the sequential state and version.
func (f *Follower) flush(run []*update.Statement) error {
	for len(run) > 0 {
		n := len(run)
		if max := f.opts.maxBatch(); n > max {
			n = max
		}
		if n > 1 {
			if plan, err := pulopt.PlanBatch(f.eng, run[:n]); err == nil {
				if _, applied, err := f.eng.ApplyBatchCtx(context.Background(), plan.Units); err != nil {
					// A part-applied batch leaves the engine somewhere
					// between statement boundaries; the only deterministic
					// recovery is a fresh snapshot.
					return fmt.Errorf("%w (tenant %s: batch part-applied %d/%d: %v)",
						errResync, f.name, applied, n, err)
				}
				f.m.batches.Inc()
				f.m.records.Add(int64(n))
				run = run[n:]
				continue
			}
		}
		if _, err := f.eng.ApplyStatement(run[0]); err != nil {
			f.m.skipped.Inc()
		} else {
			f.m.records.Inc()
		}
		run = run[1:]
	}
	return nil
}

// nap sleeps for d or until ctx is done.
func (f *Follower) nap(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// sleepBackoff sleeps for the current backoff with ±50% jitter (so a fleet
// of followers does not reconnect in lockstep) and doubles it up to the cap.
func (f *Follower) sleepBackoff(ctx context.Context, backoff *time.Duration) {
	d := *backoff
	d = d/2 + time.Duration(rand.Int63n(int64(d)))
	_ = f.nap(ctx, d)
	*backoff *= 2
	if max := f.opts.maxBackoff(); *backoff > max {
		*backoff = max
	}
}

// isSnapshotRequired reports whether err is the leader's typed 410: the
// requested LSN was truncated and only a snapshot can resume replication.
func isSnapshotRequired(err error) bool {
	var apiErr *client.APIError
	return errors.As(err, &apiErr) && apiErr.Code == server.CodeSnapshotRequired
}
