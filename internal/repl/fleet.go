package repl

import (
	"context"
	"sync"
	"time"

	"xivm/internal/client"
	"xivm/internal/server"
)

// Fleet replicates every tenant of one leader: it polls the leader's admin
// plane, starts a Follower per discovered tenant, and stops (and unroutes)
// followers whose tenant the leader dropped. One Fleet per follower process.
type Fleet struct {
	c    *client.Client
	reg  *server.Registry
	opts Options

	// Rediscover is the admin-plane poll cadence (default 2s).
	Rediscover time.Duration
}

// NewFleet builds a fleet over the leader client and follower registry.
func NewFleet(c *client.Client, reg *server.Registry, opts Options) *Fleet {
	return &Fleet{c: c, reg: reg, opts: opts}
}

func (fl *Fleet) rediscover() time.Duration {
	if fl.Rediscover <= 0 {
		return 2 * time.Second
	}
	return fl.Rediscover
}

// Run discovers and follows tenants until ctx is cancelled, then waits for
// every tailer to stop. Discovery errors (leader down) are retried at the
// rediscovery cadence; existing tailers keep their own backoff loops.
func (fl *Fleet) Run(ctx context.Context) error {
	var wg sync.WaitGroup
	cancels := make(map[string]context.CancelFunc)
	defer func() {
		for _, cancel := range cancels {
			cancel()
		}
		wg.Wait()
	}()
	t := time.NewTicker(fl.rediscover())
	defer t.Stop()
	for {
		if stats, err := fl.c.ListDBs(ctx); err == nil {
			live := make(map[string]bool, len(stats))
			for _, st := range stats {
				live[st.Name] = true
				if _, ok := cancels[st.Name]; ok {
					continue
				}
				fctx, cancel := context.WithCancel(ctx)
				cancels[st.Name] = cancel
				f := NewFollower(fl.c, fl.reg, st.Name, fl.opts)
				wg.Add(1)
				go func() {
					defer wg.Done()
					_ = f.Run(fctx)
				}()
			}
			for name, cancel := range cancels {
				if !live[name] {
					cancel()
					delete(cancels, name)
					fl.reg.DropReplica(name)
				}
			}
		}
		select {
		case <-t.C:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}
