package repl

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"testing"
	"time"

	"xivm/internal/client"
	"xivm/internal/obs"
	"xivm/internal/server"
	"xivm/internal/wal"
	"xivm/internal/xmark"
)

// vocab is the leader write workload: inserts, deletes (including
// zero-target and rejected shapes, which journal but must converge to the
// same skip on the follower), a replace (two version bumps, never
// batchable), and mixed targets so batching gates fire both ways.
var vocab = []string{
	`insert <person id="pa"><name>Alpha</name><phone>+1 555 01</phone></person> into /site/people`,
	`for $x in /site/people/person insert <phone>+44 555 02</phone>`,
	`delete /site/people/person/phone`,
	`insert <bidder><date>02/02/2022</date><increase>1.50</increase></bidder> into /site/open_auctions/open_auction`,
	`delete /site/open_auctions/open_auction/bidder`,
	`replace /site/people/person/name with <name>Renamed</name>`,
	`delete /site/people/person/no_such_child`,
	`insert <watch/> into /site/people/person/watches`,
}

// queries drives the byte-comparison across the XPath read surface.
var queries = []string{
	`/site/people/person/name`,
	`//open_auction//increase`,
	`/site/people/person[watches]/name`,
	`//person[starts-with(@id,'person')]`,
}

func newLeader(t *testing.T, walOpts wal.Options) (*server.Registry, *httptest.Server) {
	t.Helper()
	walOpts.Metrics = obs.New()
	reg, err := server.NewRegistry(server.RegistryConfig{
		Shard:      server.Config{Metrics: obs.New()},
		DataDir:    t.TempDir(),
		WAL:        walOpts,
		DefaultDoc: xmark.GenerateSmall(1),
		DefaultViews: []server.ViewSpec{
			{Name: "Q1", Pattern: xmark.View("Q1").String()},
			{Name: "Q2", Pattern: xmark.View("Q2").String()},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Create(server.DefaultTenant, "", nil); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(reg.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = reg.Shutdown(ctx)
	})
	return reg, ts
}

func newFollowerReg(t *testing.T, leaderURL string) (*server.Registry, *httptest.Server) {
	t.Helper()
	reg, err := server.NewRegistry(server.RegistryConfig{
		Shard:      server.Config{Metrics: obs.New()},
		FollowerOf: leaderURL,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(reg.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = reg.Shutdown(ctx)
	})
	return reg, ts
}

// startFollower runs a Follower in the background and returns its stop
// function (idempotent, waits for the tailer to exit).
func startFollower(t *testing.T, f *Follower) func() {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = f.Run(ctx)
	}()
	var once sync.Once
	stop := func() {
		once.Do(func() {
			cancel()
			<-done
		})
	}
	t.Cleanup(stop)
	return stop
}

// write applies one statement on the leader, tolerating apply-level
// rejections (they journal a record the follower must skip identically) but
// failing the test on transport errors.
func write(t *testing.T, db *client.DB, stmt string) {
	t.Helper()
	if _, err := db.Update(context.Background(), stmt); err != nil {
		var apiErr *client.APIError
		if !errors.As(err, &apiErr) {
			t.Fatalf("update %q: %v", stmt, err)
		}
	}
}

func leaderLast(t *testing.T, db *client.DB) uint64 {
	t.Helper()
	st, err := db.ReplStatus(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return st.LastLSN
}

// waitApplied blocks until the follower registry serves tenant name at
// LSN want.
func waitApplied(t *testing.T, reg *server.Registry, name string, want uint64, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		for _, st := range reg.Stats() {
			if st.Name == name && st.AppliedLSN >= want {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never reached LSN %d (stats %+v)", want, reg.Stats())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func fetch(t *testing.T, base, path string) []byte {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d (%s)", path, resp.StatusCode, body)
	}
	return body
}

// compareReads asserts the follower serves byte-identical bodies to the
// leader on every read endpoint: the view list, each view's rows, and the
// XPath query mix. Both sides must be quiesced at the same LSN first.
func compareReads(t *testing.T, leaderURL, followerURL, tenant string) {
	t.Helper()
	paths := []string{
		"/v1/db/" + tenant + "/views",
		"/v1/db/" + tenant + "/views/Q1",
		"/v1/db/" + tenant + "/views/Q2",
	}
	for _, q := range queries {
		paths = append(paths, "/v1/db/"+tenant+"/xpath?q="+url.QueryEscape(q))
	}
	for _, p := range paths {
		lb := fetch(t, leaderURL, p)
		fb := fetch(t, followerURL, p)
		if string(lb) != string(fb) {
			t.Errorf("response mismatch at %s:\n  leader:   %s\n  follower: %s", p, lb, fb)
		}
	}
}

// TestFollowerConvergesFromCheckpoint is the acceptance-criteria harness:
// the leader runs an N-statement workload with aggressive checkpointing, so
// by the time the follower attaches the log head is truncated and catch-up
// MUST start from a shipped checkpoint (not LSN 0); the follower then tails
// the rest and must serve byte-identical responses at the leader's LSN.
func TestFollowerConvergesFromCheckpoint(t *testing.T) {
	_, lts := newLeader(t, wal.Options{CheckpointEvery: 8, SegmentBytes: 1024})
	lc := client.New(lts.URL)
	db := lc.DB(server.DefaultTenant)
	for i := 0; i < 40; i++ {
		write(t, db, vocab[i%len(vocab)])
	}
	// Prove the catch-up cannot start at LSN 1: the head is gone.
	if _, _, _, err := db.ReplFrames(context.Background(), 1, 0, ""); !isSnapshotRequired(err) {
		t.Fatalf("stream from 1 = %v, want snapshot_required (harness must force checkpoint catch-up)", err)
	}

	folReg, fts := newFollowerReg(t, lts.URL)
	m := obs.New()
	f := NewFollower(lc, folReg, server.DefaultTenant, Options{
		PollInterval: 2 * time.Millisecond,
		Metrics:      m,
	})
	startFollower(t, f)

	last := leaderLast(t, db)
	waitApplied(t, folReg, server.DefaultTenant, last, 30*time.Second)
	compareReads(t, lts.URL, fts.URL, server.DefaultTenant)

	// Keep writing: the follower must track the moving tip too.
	for i := 0; i < 10; i++ {
		write(t, db, vocab[i%len(vocab)])
	}
	last = leaderLast(t, db)
	waitApplied(t, folReg, server.DefaultTenant, last, 30*time.Second)
	compareReads(t, lts.URL, fts.URL, server.DefaultTenant)

	if m.CounterValue("repl.follower.applied_lsn") != int64(last) {
		t.Fatalf("applied_lsn gauge %d, want %d", m.CounterValue("repl.follower.applied_lsn"), last)
	}
	if lag := m.CounterValue("repl.follower.lag_lsn"); lag != 0 {
		t.Fatalf("lag_lsn gauge %d after quiesce, want 0", lag)
	}
}

// TestFollowerKilledMidReplayConverges kills a follower partway through
// catch-up and starts a replacement; the replacement re-syncs from a
// snapshot and must converge to byte-identical state.
func TestFollowerKilledMidReplayConverges(t *testing.T) {
	_, lts := newLeader(t, wal.Options{})
	lc := client.New(lts.URL)
	db := lc.DB(server.DefaultTenant)
	for i := 0; i < 30; i++ {
		write(t, db, vocab[i%len(vocab)])
	}

	folReg, fts := newFollowerReg(t, lts.URL)
	// Tiny reads so the first follower is reliably mid-replay when killed.
	f1 := NewFollower(lc, folReg, server.DefaultTenant, Options{
		PollInterval: time.Millisecond,
		MaxBytes:     1,
		Metrics:      obs.New(),
	})
	stop1 := startFollower(t, f1)
	waitApplied(t, folReg, server.DefaultTenant, 5, 30*time.Second)
	stop1()

	killedAt := uint64(0)
	for _, st := range folReg.Stats() {
		if st.Name == server.DefaultTenant {
			killedAt = st.AppliedLSN
		}
	}
	if last := leaderLast(t, db); killedAt >= last {
		t.Fatalf("follower finished (LSN %d of %d) before the kill — not mid-replay", killedAt, last)
	}

	// More writes land while the follower is down.
	for i := 0; i < 10; i++ {
		write(t, db, vocab[(i+3)%len(vocab)])
	}

	f2 := NewFollower(lc, folReg, server.DefaultTenant, Options{
		PollInterval: 2 * time.Millisecond,
		Metrics:      obs.New(),
	})
	startFollower(t, f2)
	last := leaderLast(t, db)
	waitApplied(t, folReg, server.DefaultTenant, last, 30*time.Second)
	compareReads(t, lts.URL, fts.URL, server.DefaultTenant)
}

// TestFollowerResyncsAfterTruncation forces the mid-stream 410: the
// leader's pin TTL is effectively zero, so checkpoint truncation races past
// a napping follower, whose next poll must answer snapshot_required and
// trigger a full re-sync — after which it converges again.
func TestFollowerResyncsAfterTruncation(t *testing.T) {
	_, lts := newLeader(t, wal.Options{
		CheckpointEvery: 4,
		SegmentBytes:    256,
		PinTTL:          time.Nanosecond,
	})
	lc := client.New(lts.URL)
	db := lc.DB(server.DefaultTenant)
	for i := 0; i < 8; i++ {
		write(t, db, vocab[i%len(vocab)])
	}

	folReg, fts := newFollowerReg(t, lts.URL)
	m := obs.New()
	f := NewFollower(lc, folReg, server.DefaultTenant, Options{
		PollInterval: 150 * time.Millisecond, // long naps: truncation outruns the tailer
		Metrics:      m,
	})
	startFollower(t, f)
	waitApplied(t, folReg, server.DefaultTenant, leaderLast(t, db), 30*time.Second)

	// Burst writes roll checkpoints (truncating the un-pinned log) inside
	// the follower's nap window until a re-sync is observed.
	deadline := time.Now().Add(20 * time.Second)
	for m.CounterValue("repl.follower.resyncs") < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("follower never re-synced (resyncs=%d)", m.CounterValue("repl.follower.resyncs"))
		}
		for i := 0; i < 8; i++ {
			write(t, db, vocab[i%len(vocab)])
		}
		time.Sleep(10 * time.Millisecond)
	}
	waitApplied(t, folReg, server.DefaultTenant, leaderLast(t, db), 30*time.Second)
	compareReads(t, lts.URL, fts.URL, server.DefaultTenant)
}

// TestFollowerConvergenceStress runs concurrent writers against the leader
// while the follower tails live, then quiesces and asserts byte-identical
// responses — the shadow-oracle pattern across the replication boundary.
// Run under -race this also exercises the concurrent WAL read path.
func TestFollowerConvergenceStress(t *testing.T) {
	_, lts := newLeader(t, wal.Options{CheckpointEvery: 16, SegmentBytes: 4096})
	lc := client.New(lts.URL)
	db := lc.DB(server.DefaultTenant)

	folReg, fts := newFollowerReg(t, lts.URL)
	f := NewFollower(lc, folReg, server.DefaultTenant, Options{
		PollInterval: time.Millisecond,
		MaxBytes:     2048,
		Metrics:      obs.New(),
	})
	startFollower(t, f)

	writers, perWriter := 3, 30
	if testing.Short() {
		writers, perWriter = 2, 10
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wdb := client.New(lts.URL).DB(server.DefaultTenant)
			for i := 0; i < perWriter; i++ {
				write(t, wdb, vocab[(w+i)%len(vocab)])
			}
		}(w)
	}
	wg.Wait()

	last := leaderLast(t, db)
	if last == 0 {
		t.Fatal("no writes landed")
	}
	waitApplied(t, folReg, server.DefaultTenant, last, 60*time.Second)
	compareReads(t, lts.URL, fts.URL, server.DefaultTenant)
}

// TestFleetDiscovery checks the fleet lifecycle: tenants created on the
// leader appear on the follower, and dropped tenants are unrouted.
func TestFleetDiscovery(t *testing.T) {
	_, lts := newLeader(t, wal.Options{})
	lc := client.New(lts.URL)

	folReg, fts := newFollowerReg(t, lts.URL)
	fleet := NewFleet(lc, folReg, Options{PollInterval: 2 * time.Millisecond, Metrics: obs.New()})
	fleet.Rediscover = 10 * time.Millisecond
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = fleet.Run(ctx)
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})

	if _, err := lc.CreateDB(context.Background(), client.CreateDB{Name: "extra"}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{server.DefaultTenant, "extra"} {
		db := lc.DB(name)
		write(t, db, vocab[0])
		waitApplied(t, folReg, name, leaderLast(t, db), 30*time.Second)
		compareReads(t, lts.URL, fts.URL, name)
	}

	if err := lc.DropDB(context.Background(), "extra"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := folReg.Get("extra"); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("dropped tenant still routed on the follower")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The follower's own API rejects writes with a pointer to the leader.
	resp, err := http.Post(fts.URL+"/v1/db/"+server.DefaultTenant+"/update",
		"application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("follower update: %d, want 403", resp.StatusCode)
	}
}
