package bench

import "testing"

// Benchmark wrappers over the shard burst suite so `go test -bench
// ShardBurst` measures exactly what `xivmbench -batch-json` reports. CI runs
// them with -benchtime=1x as a bit-rot smoke; BENCH_5.json comes from the
// paper-scale runs described in EXPERIMENTS.md.

func BenchmarkShardBurstBatched(b *testing.B) {
	b.ReportAllocs()
	BatchBurst(b, SmallBytes, 0)
}

func BenchmarkShardBurstSerial(b *testing.B) {
	b.ReportAllocs()
	BatchBurst(b, SmallBytes, 1)
}
