package bench

import (
	"testing"

	"xivm/internal/algebra"
	"xivm/internal/pattern"
	"xivm/internal/qvm"
	"xivm/internal/rewrite"
	"xivm/internal/xpath"
)

// TestRewriteShapesAgree pins that every benchmarked rewrite shape bridges,
// plans with the expected plan kind, and returns the tree walk's exact
// nodes AND values — the content-level property RunRewrite asserts before
// timing anything.
func TestRewriteShapesAgree(t *testing.T) {
	d := mustParse(Doc(SmallBytes))
	var views []*rewrite.View
	for name, src := range rewriteLibraryPatterns() {
		p := pattern.MustParse(src)
		views = append(views, &rewrite.View{Name: name, Pattern: p, Rows: rewrite.RowSlice(algebra.Materialize(d, p))})
	}
	for _, rs := range RewriteShapes() {
		path, err := xpath.Parse(rs.Query)
		if err != nil {
			t.Fatalf("%s: parse: %v", rs.Name, err)
		}
		pat, err := xpath.ToPattern(path)
		if err != nil {
			t.Fatalf("%s: bridge: %v", rs.Name, err)
		}
		prog, err := qvm.Compile(path)
		if err != nil {
			t.Fatalf("%s: compile: %v", rs.Name, err)
		}
		rows, plan, err := rewrite.Answer(pat, views)
		if err != nil {
			t.Fatalf("%s: no rewrite: %v", rs.Name, err)
		}
		if plan.Kind != rs.Plan {
			t.Errorf("%s: planned %q, want %q", rs.Name, plan.Kind, rs.Plan)
		}
		nodes := prog.Eval(d)
		if len(nodes) == 0 {
			t.Errorf("%s: matches nothing on the benchmark document", rs.Name)
			continue
		}
		if len(rows) != len(nodes) {
			t.Errorf("%s: rewrite %d rows, tree walk %d nodes", rs.Name, len(rows), len(nodes))
			continue
		}
		for i := range rows {
			e := rows[i].Entries[0]
			if e.ID.Key() != nodes[i].ID.Key() || e.Val != nodes[i].StringValue() {
				t.Errorf("%s: row %d: rewrite (%s,%q) vs tree walk (%s,%q)",
					rs.Name, i, e.ID, e.Val, nodes[i].ID, nodes[i].StringValue())
				break
			}
		}
	}
}

// Benchmark wrapper over the rewrite suite so `go test -bench Rewrite`
// measures exactly what `xivmbench -rewrite-json` reports. CI runs this
// with -benchtime=1x as a bit-rot smoke.

func BenchmarkRewrite(b *testing.B) {
	d := mustParse(Doc(SmallBytes))
	var views []*rewrite.View
	for name, src := range rewriteLibraryPatterns() {
		p := pattern.MustParse(src)
		views = append(views, &rewrite.View{Name: name, Pattern: p, Rows: rewrite.RowSlice(algebra.Materialize(d, p))})
	}
	for _, rs := range RewriteShapes() {
		path, err := xpath.Parse(rs.Query)
		if err != nil {
			b.Fatal(err)
		}
		pat, err := xpath.ToPattern(path)
		if err != nil {
			b.Fatal(err)
		}
		prog, err := qvm.Compile(path)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(rs.Name+"/treewalk", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if len(prog.Eval(d)) == 0 {
					b.Fatal("empty result")
				}
			}
		})
		b.Run(rs.Name+"/rewrite", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rows, _, err := rewrite.Answer(pat, views)
				if err != nil || len(rows) == 0 {
					b.Fatal("empty rewrite")
				}
			}
		})
	}
}
