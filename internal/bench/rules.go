package bench

import (
	"time"

	"xivm/internal/algebra"
	"xivm/internal/core"
	"xivm/internal/pulopt"
	"xivm/internal/xmltree"
	"xivm/internal/xpath"
)

// nestedJoin adapts the nested-loop join to the JoinFunc signature.
func nestedJoin(left algebra.Block, lIdx int, right algebra.Block, rIdx int, desc bool) algebra.Block {
	return algebra.NestedLoopStructuralJoin(left, lIdx, right, rIdx, desc)
}

// RuleRow is one x of Figures 33–35: the time to propagate an overlapping
// update sequence with and without the reduction rules, at one overlap
// percentage.
type RuleRow struct {
	Percent    int
	Optimized  time.Duration // includes the reduction time itself
	Unoptimize time.Duration
}

// RunRule reproduces Figures 33 (O1), 34 (O3) and 35 (I5): the update X1_L
// runs alongside a second update targeting the same nodes as `percent`% of
// X1_L's targets, against view Q1, on a 100KB-class document. The sequences
// are expanded to elementary operations (CP), optionally reduced (OR), and
// propagated operation by operation.
func RunRule(rule string, percents []int, docBytes int) []RuleRow {
	src := Doc(docBytes)
	var rows []RuleRow
	for _, pct := range percents {
		row := RuleRow{Percent: pct}
		for _, optimize := range []bool{true, false} {
			optimize := optimize
			total := bestDur(func() time.Duration {
				e, _ := engineWith(src, "Q1", core.Options{})
				ops := ruleWorkload(e, rule, pct)
				start := time.Now()
				if optimize {
					ops = pulopt.Reduce(ops)
				}
				if _, err := pulopt.Apply(e, ops); err != nil {
					panic(err)
				}
				return time.Since(start)
			})
			if optimize {
				row.Optimized = total
			} else {
				row.Unoptimize = total
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// ruleWorkload builds the elementary operation sequence for one rule test:
// the overlapping secondary operations (on the first pct% of persons) run
// first, followed by the full X1_L primary sequence, mirroring the paper's
// "run simultaneously" setup.
func ruleWorkload(e *core.Engine, rule string, pct int) pulopt.Seq {
	persons := xpath.Eval(e.Doc, xpath.MustParse(`/site/people/person`))
	overlap := persons[:len(persons)*pct/100]
	nameForest := mustForest(`<name>Martin<name>and</name><name>some</name><name>test</name><name>nodes</name></name>`)
	extraForest := mustForest(`<name>Extra</name>`)

	var ops pulopt.Seq
	switch rule {
	case "O1":
		// Duplicate deletions: the secondary update deletes the same
		// persons the primary deletes; O1 drops the duplicates.
		for _, p := range overlap {
			ops = append(ops, pulopt.Op{Kind: pulopt.Del, Target: p.ID})
		}
		for _, p := range persons {
			ops = append(ops, pulopt.Op{Kind: pulopt.Del, Target: p.ID})
		}
	case "O3":
		// The secondary update touches descendants (names) of nodes the
		// primary update deletes; O3 drops the descendant operations.
		for _, p := range overlap {
			for _, n := range xpath.EvalRelative(p, mustRel("name")) {
				ops = append(ops, pulopt.Op{Kind: pulopt.Del, Target: n.ID})
			}
		}
		for _, p := range persons {
			ops = append(ops, pulopt.Op{Kind: pulopt.Del, Target: p.ID})
		}
	case "I5":
		// Two insertions per overlapping person; I5 merges them.
		for _, p := range overlap {
			ops = append(ops, pulopt.Op{Kind: pulopt.InsLast, Target: p.ID, Forest: extraForest})
		}
		for _, p := range persons {
			ops = append(ops, pulopt.Op{Kind: pulopt.InsLast, Target: p.ID, Forest: nameForest})
		}
	default:
		panic("bench: unknown rule " + rule)
	}
	return ops
}

func mustForest(s string) []*xmltree.Node {
	f, err := xmltree.ParseForest(s)
	if err != nil {
		panic(err)
	}
	return f
}

func mustRel(s string) xpath.Path {
	p, err := xpath.ParseRelative(s)
	if err != nil {
		panic(err)
	}
	return p
}
