// Package bench implements the paper's experiments (Section 6, Figures
// 18–35): each Run* function reproduces one figure's measurement, returning
// the same rows/series the paper plots. The root bench_test.go exposes them
// as testing.B benchmarks and cmd/xivmbench prints them as tables.
//
// Absolute numbers differ from the paper's (different host, store, and
// language); the shapes — who wins, by what factor, where trends bend — are
// what EXPERIMENTS.md compares.
package bench

import (
	"fmt"
	"time"

	"xivm/internal/core"
	"xivm/internal/update"
	"xivm/internal/xmark"
	"xivm/internal/xmltree"
)

// DefaultBytes is the default generated document size for experiments that
// use a single document ("10MB class" in the paper, scaled down so the
// whole suite runs in seconds; use cmd/xivmbench -size to run paper-scale).
const DefaultBytes = 200 << 10

// SmallBytes mirrors the paper's 100KB configurations.
const SmallBytes = 100 << 10

// Reps is how many times each timed experiment repeats its measurement,
// keeping the fastest run (the paper averages five executions; the minimum
// is more robust against GC pauses at our scale).
var Reps = 3

// bestTimings returns the repetition with the smallest total.
func bestTimings(f func() core.Timings) core.Timings {
	best := f()
	for i := 1; i < Reps; i++ {
		if t := f(); t.Total() < best.Total() {
			best = t
		}
	}
	return best
}

// bestDur returns the fastest repetition.
func bestDur(f func() time.Duration) time.Duration {
	best := f()
	for i := 1; i < Reps; i++ {
		if d := f(); d < best {
			best = d
		}
	}
	return best
}

var docCache = map[int]string{}

// Doc returns (and caches) the generated document text for a target size.
func Doc(bytes int) string {
	if s, ok := docCache[bytes]; ok {
		return s
	}
	s := xmark.Generate(xmark.Config{TargetBytes: bytes, Seed: 42})
	docCache[bytes] = s
	return s
}

func mustParse(src string) *xmltree.Document {
	d, err := xmltree.ParseString(src)
	if err != nil {
		panic(err)
	}
	return d
}

// engineWith builds a fresh engine over the (re-parsed) document with one
// benchmark view installed.
func engineWith(docSrc, viewName string, opts core.Options) (*core.Engine, *core.ManagedView) {
	e := core.NewEngine(mustParse(docSrc), opts)
	mv, err := e.AddView(viewName, xmark.View(viewName))
	if err != nil {
		panic(err)
	}
	return e, mv
}

// BreakdownRow is one bar of Figures 18/19: the per-phase times of
// propagating one update to one view.
type BreakdownRow struct {
	View, Update string
	Timings      core.Timings
}

// RunBreakdown reproduces Figure 18 (insert=true) / Figure 19 (insert=
// false) for one view: the five-phase time breakdown across the view's five
// update classes.
func RunBreakdown(viewName string, insert bool, docBytes int) []BreakdownRow {
	src := Doc(docBytes)
	var rows []BreakdownRow
	for _, un := range xmark.ViewUpdates(viewName) {
		u := xmark.UpdateByName(un)
		t := bestTimings(func() core.Timings {
			e, _ := engineWith(src, viewName, core.Options{})
			st := u.InsertStatement()
			if !insert {
				st = u.DeleteStatement()
			}
			rep, err := e.ApplyStatement(st)
			if err != nil {
				panic(err)
			}
			return rep.Timings()
		})
		rows = append(rows, BreakdownRow{View: viewName, Update: un, Timings: t})
	}
	return rows
}

// PairRow is one bar of Figures 20/21: total propagation time of one
// (view, update) pair.
type PairRow struct {
	Pair  string
	Total time.Duration
}

// RunAllPairs reproduces Figure 20 (insert) / Figure 21 (delete): the total
// maintenance time for all 35 view-update pairs.
func RunAllPairs(insert bool, docBytes int) []PairRow {
	src := Doc(docBytes)
	var rows []PairRow
	for _, vn := range xmark.ViewNames() {
		for _, un := range xmark.ViewUpdates(vn) {
			u := xmark.UpdateByName(un)
			t := bestTimings(func() core.Timings {
				e, _ := engineWith(src, vn, core.Options{})
				st := u.InsertStatement()
				if !insert {
					st = u.DeleteStatement()
				}
				rep, err := e.ApplyStatement(st)
				if err != nil {
					panic(err)
				}
				return rep.Timings()
			})
			rows = append(rows, PairRow{Pair: vn + "_" + un, Total: t.Total()})
		}
	}
	return rows
}

// DepthRow is one bar of Figures 22/23: total time for the X1_L deletion at
// one target depth against view Q1.
type DepthRow struct {
	Path  string
	Total time.Duration
}

// RunPathDepth reproduces Figures 22 (100KB) and 23 (10MB class): deletion
// updates of varying path depth against the fixed view Q1.
func RunPathDepth(docBytes int) []DepthRow {
	src := Doc(docBytes)
	var rows []DepthRow
	for _, path := range xmark.DepthPaths() {
		path := path
		t := bestTimings(func() core.Timings {
			e, _ := engineWith(src, "Q1", core.Options{})
			rep, err := e.ApplyStatement(update.MustParse("delete " + path))
			if err != nil {
				panic(err)
			}
			return rep.Timings()
		})
		rows = append(rows, DepthRow{Path: path, Total: t.Total()})
	}
	return rows
}

// AnnotationRow is one bar of Figure 24.
type AnnotationRow struct {
	Variant xmark.AnnotationVariant
	Total   time.Duration
}

// RunAnnotations reproduces Figure 24: the fixed update X1_L (deleting
// person0, so both deletions and modifications fire) against Q1 variants
// with varying val/cont annotations.
func RunAnnotations(docBytes int) []AnnotationRow {
	src := Doc(docBytes)
	var rows []AnnotationRow
	for _, v := range xmark.AnnotationVariants() {
		v := v
		t := bestTimings(func() core.Timings {
			e := core.NewEngine(mustParse(src), core.Options{})
			if _, err := e.AddView(string(v), xmark.Q1Variant(v)); err != nil {
				panic(err)
			}
			rep, err := e.ApplyStatement(update.MustParse(`delete /site/people/person[@id="person0"]`))
			if err != nil {
				panic(err)
			}
			return rep.Timings()
		})
		rows = append(rows, AnnotationRow{Variant: v, Total: t.Total()})
	}
	return rows
}

// ScaleRow is one x of Figure 25: per-phase times at one document size.
type ScaleRow struct {
	Bytes   int
	Timings core.Timings
}

// RunScalability reproduces Figure 25: view Q1, update A6_A, documents of
// increasing size; insert selects the (a) insertion or (b) deletion panel.
func RunScalability(sizes []int, insert bool) []ScaleRow {
	var rows []ScaleRow
	u := xmark.UpdateByName("A6_A")
	for _, n := range sizes {
		n := n
		t := bestTimings(func() core.Timings {
			e, _ := engineWith(Doc(n), "Q1", core.Options{})
			st := u.InsertStatement()
			if !insert {
				st = u.DeleteStatement()
			}
			rep, err := e.ApplyStatement(st)
			if err != nil {
				panic(err)
			}
			return rep.Timings()
		})
		rows = append(rows, ScaleRow{Bytes: n, Timings: t})
	}
	return rows
}

// VsFullRow is one pair of bars of Figures 26/27.
type VsFullRow struct {
	Pair        string
	Incremental time.Duration
	Full        time.Duration
}

// RunVsFull reproduces Figure 26 (insert) / 27 (delete): incremental
// maintenance vs full view recomputation for views Q1, Q2 and Q4.
func RunVsFull(insert bool, docBytes int) []VsFullRow {
	src := Doc(docBytes)
	var rows []VsFullRow
	for _, vn := range []string{"Q1", "Q2", "Q4"} {
		for _, un := range xmark.ViewUpdates(vn) {
			u := xmark.UpdateByName(un)
			mk := func() *update.Statement {
				if insert {
					return u.InsertStatement()
				}
				return u.DeleteStatement()
			}

			inc := bestDur(func() time.Duration {
				eInc, _ := engineWith(src, vn, core.Options{})
				rep, err := eInc.ApplyStatement(mk())
				if err != nil {
					panic(err)
				}
				return rep.Timings().Total() - rep.Timings().FindTargets
			})
			full := bestDur(func() time.Duration {
				eFull, _ := engineWith(src, vn, core.Options{})
				d, err := eFull.FullRecompute(mk())
				if err != nil {
					panic(err)
				}
				return d
			})
			rows = append(rows, VsFullRow{Pair: vn + "_" + un, Incremental: inc, Full: full})
		}
	}
	return rows
}

// IVMARow is one pair of bars of Figure 28.
type IVMARow struct {
	Update string
	Bulk   time.Duration
	IVMA   time.Duration
}

// RunVsIVMA reproduces Figure 28: PINT/PIMT vs the node-at-a-time IVMA
// algorithm, view Q1, 100KB-class document, for the five Q1 updates (each
// inserting a 5-node tree: one bulk call vs five node-level passes).
func RunVsIVMA(docBytes int) []IVMARow {
	src := Doc(docBytes)
	var rows []IVMARow
	for _, un := range xmark.ViewUpdates("Q1") {
		u := xmark.UpdateByName(un)

		bulk := bestDur(func() time.Duration {
			eBulk, _ := engineWith(src, "Q1", core.Options{})
			rep, err := eBulk.ApplyStatement(u.InsertStatement())
			if err != nil {
				panic(err)
			}
			return rep.Timings().Total() - rep.Timings().FindTargets
		})
		ivmaTime := bestDur(func() time.Duration {
			eIvma, _ := engineWith(src, "Q1", core.Options{})
			d, err := core.NewIVMA(eIvma).ApplyStatement(u.InsertStatement())
			if err != nil {
				panic(err)
			}
			return d
		})
		rows = append(rows, IVMARow{Update: un, Bulk: bulk, IVMA: ivmaTime})
	}
	return rows
}

// fmtDur prints a duration in milliseconds with fixed precision.
func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.3fms", float64(d.Microseconds())/1000)
}
