package bench

import (
	"strings"
	"testing"
)

// Tiny documents keep these smoke tests fast; the figures' real runs live
// in the root bench_test.go and cmd/xivmbench.
const tiny = 30 << 10

func TestRunBreakdown(t *testing.T) {
	for _, insert := range []bool{true, false} {
		rows := RunBreakdown("Q1", insert, tiny)
		if len(rows) != 5 {
			t.Fatalf("rows %d", len(rows))
		}
		for _, r := range rows {
			if r.Timings.Total() <= 0 {
				t.Fatalf("no timing for %s", r.Update)
			}
		}
	}
}

func TestRunAllPairs(t *testing.T) {
	rows := RunAllPairs(true, tiny)
	if len(rows) != 35 {
		t.Fatalf("expected 35 pairs, got %d", len(rows))
	}
}

func TestRunPathDepth(t *testing.T) {
	rows := RunPathDepth(tiny)
	if len(rows) != 3 {
		t.Fatalf("rows %d", len(rows))
	}
}

func TestRunAnnotations(t *testing.T) {
	rows := RunAnnotations(tiny)
	if len(rows) != 5 {
		t.Fatalf("rows %d", len(rows))
	}
}

func TestRunScalability(t *testing.T) {
	rows := RunScalability([]int{tiny, 2 * tiny}, true)
	if len(rows) != 2 || rows[0].Bytes != tiny {
		t.Fatalf("rows %+v", rows)
	}
}

func TestRunVsFull(t *testing.T) {
	rows := RunVsFull(false, tiny)
	if len(rows) != 15 {
		t.Fatalf("rows %d", len(rows))
	}
}

func TestRunVsIVMA(t *testing.T) {
	rows := RunVsIVMA(tiny)
	if len(rows) != 5 {
		t.Fatalf("rows %d", len(rows))
	}
	for _, r := range rows {
		if r.IVMA <= 0 || r.Bulk <= 0 {
			t.Fatalf("missing timing: %+v", r)
		}
	}
}

func TestRunSnowcaps(t *testing.T) {
	rows := RunSnowcapsVsLeaves("Q4", []int{tiny})
	if len(rows) != 1 || rows[0].Snowcaps <= 0 || rows[0].Leaves <= 0 {
		t.Fatalf("rows %+v", rows)
	}
	split := RunSnowcapSplit("Q6", []int{tiny})
	if len(split) != 1 || split[0].SnowEval <= 0 {
		t.Fatalf("split %+v", split)
	}
}

func TestRunRules(t *testing.T) {
	for _, rule := range []string{"O1", "O3", "I5"} {
		rows := RunRule(rule, []int{20, 100}, tiny)
		if len(rows) != 2 {
			t.Fatalf("%s rows %d", rule, len(rows))
		}
		for _, r := range rows {
			if r.Optimized <= 0 || r.Unoptimize <= 0 {
				t.Fatalf("%s missing timing: %+v", rule, r)
			}
		}
	}
}

func TestRunAblations(t *testing.T) {
	if rows := RunPruningAblation(tiny); len(rows) != 5 {
		t.Fatalf("pruning rows %d", len(rows))
	}
	if rows := RunJoinAblation(tiny); len(rows) != 3 {
		t.Fatalf("join rows %d", len(rows))
	}
	if rows := RunLazyAblation(tiny); len(rows) != 1 || rows[0].Lazy <= 0 {
		t.Fatalf("lazy rows %+v", rows)
	}
	if rows := RunHolisticAblation(tiny); len(rows) != 7 {
		t.Fatalf("holistic rows %d", len(rows))
	}
}

func TestPrinters(t *testing.T) {
	var sb strings.Builder
	PrintBreakdown(&sb, "fig18", RunBreakdown("Q1", true, tiny))
	PrintDepth(&sb, "fig22", RunPathDepth(tiny))
	PrintVsIVMA(&sb, "fig28", RunVsIVMA(tiny))
	PrintRule(&sb, "fig33", RunRule("O1", []int{20}, tiny))
	out := sb.String()
	for _, want := range []string{"fig18", "fig22", "fig28", "fig33", "speedup", "lattice="} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
