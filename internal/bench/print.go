package bench

import (
	"fmt"
	"io"

	"xivm/internal/core"
)

// The Print* helpers render each experiment's rows the way the paper's
// figures report them (series per phase, bars per pair, etc.).

func printHeader(w io.Writer, title string) {
	fmt.Fprintf(w, "\n== %s ==\n", title)
}

func printTimings(w io.Writer, label string, t core.Timings) {
	fmt.Fprintf(w, "%-28s find=%-10s delta=%-10s expr=%-10s exec=%-10s lattice=%-10s total=%s\n",
		label, fmtDur(t.FindTargets), fmtDur(t.ComputeDelta), fmtDur(t.GetExpression),
		fmtDur(t.ExecuteUpdate), fmtDur(t.UpdateLattice), fmtDur(t.Total()))
}

// PrintBreakdown renders Figures 18/19 rows.
func PrintBreakdown(w io.Writer, title string, rows []BreakdownRow) {
	printHeader(w, title)
	for _, r := range rows {
		printTimings(w, r.View+"_"+r.Update, r.Timings)
	}
}

// PrintPairs renders Figures 20/21 rows.
func PrintPairs(w io.Writer, title string, rows []PairRow) {
	printHeader(w, title)
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %s\n", r.Pair, fmtDur(r.Total))
	}
}

// PrintDepth renders Figures 22/23 rows.
func PrintDepth(w io.Writer, title string, rows []DepthRow) {
	printHeader(w, title)
	for _, r := range rows {
		fmt.Fprintf(w, "%-36s %s\n", r.Path, fmtDur(r.Total))
	}
}

// PrintAnnotations renders Figure 24 rows.
func PrintAnnotations(w io.Writer, title string, rows []AnnotationRow) {
	printHeader(w, title)
	for _, r := range rows {
		fmt.Fprintf(w, "%-26s %s\n", r.Variant, fmtDur(r.Total))
	}
}

// PrintScale renders Figure 25 rows.
func PrintScale(w io.Writer, title string, rows []ScaleRow) {
	printHeader(w, title)
	for _, r := range rows {
		printTimings(w, fmt.Sprintf("%dKB", r.Bytes>>10), r.Timings)
	}
}

// PrintVsFull renders Figures 26/27 rows.
func PrintVsFull(w io.Writer, title string, rows []VsFullRow) {
	printHeader(w, title)
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s incremental=%-12s full=%-12s speedup=%.1fx\n",
			r.Pair, fmtDur(r.Incremental), fmtDur(r.Full), ratio(r.Full, r.Incremental))
	}
}

// PrintVsIVMA renders Figure 28 rows.
func PrintVsIVMA(w io.Writer, title string, rows []IVMARow) {
	printHeader(w, title)
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s bulk=%-12s ivma=%-12s speedup=%.1fx\n",
			r.Update, fmtDur(r.Bulk), fmtDur(r.IVMA), ratio(r.IVMA, r.Bulk))
	}
}

// PrintSnowcaps renders Figures 29/30 rows.
func PrintSnowcaps(w io.Writer, title string, rows []SnowcapRow) {
	printHeader(w, title)
	for _, r := range rows {
		fmt.Fprintf(w, "%6dKB snowcaps=%-12s leaves=%-12s speedup=%.1fx\n",
			r.Bytes>>10, fmtDur(r.Snowcaps), fmtDur(r.Leaves), ratio(r.Leaves, r.Snowcaps))
	}
}

// PrintSnowcapSplit renders Figures 31/32 rows.
func PrintSnowcapSplit(w io.Writer, title string, rows []SnowcapSplitRow) {
	printHeader(w, title)
	for _, r := range rows {
		fmt.Fprintf(w, "%6dKB snow(R)=%-10s snow(U)=%-10s leaf(R)=%-10s leaf(U)=%-10s\n",
			r.Bytes>>10, fmtDur(r.SnowEval), fmtDur(r.SnowMaintain), fmtDur(r.LeafEval), fmtDur(r.LeafMaintain))
	}
}

// PrintRule renders Figures 33–35 rows.
func PrintRule(w io.Writer, title string, rows []RuleRow) {
	printHeader(w, title)
	for _, r := range rows {
		fmt.Fprintf(w, "%3d%% optimized=%-12s unoptimized=%-12s gain=%.1f%%\n",
			r.Percent, fmtDur(r.Optimized), fmtDur(r.Unoptimize),
			100*(1-float64(r.Optimized)/max1(float64(r.Unoptimize))))
	}
}

// PrintLazyAblation renders the deferred-mode ablation.
func PrintLazyAblation(w io.Writer, rows []LazyRow) {
	printHeader(w, "Ablation: eager vs deferred (lazy) propagation, view Q1")
	for _, r := range rows {
		fmt.Fprintf(w, "%d statements: eager=%-12s lazy+flush=%-12s speedup=%.1fx\n",
			r.Statements, fmtDur(r.Eager), fmtDur(r.Lazy), ratio(r.Eager, r.Lazy))
	}
}

// PrintPruningAblation renders the pruning ablation.
func PrintPruningAblation(w io.Writer, rows []AblationPruningRow) {
	printHeader(w, "Ablation: term pruning (Props 3.6/3.8/4.7), view Q1")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s pruned=%-12s unpruned=%-12s speedup=%.1fx\n",
			r.Update, fmtDur(r.Pruned), fmtDur(r.Unpruned), ratio(r.Unpruned, r.Pruned))
	}
}

// PrintJoinAblation renders the join ablation.
func PrintJoinAblation(w io.Writer, rows []AblationJoinRow) {
	printHeader(w, "Ablation: Dewey structural join vs nested loops")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s structural=%-12s nested=%-12s speedup=%.1fx\n",
			r.View, fmtDur(r.Structural), fmtDur(r.NestedLoop), ratio(r.NestedLoop, r.Structural))
	}
}

// PrintHolisticAblation renders the evaluator comparison.
func PrintHolisticAblation(w io.Writer, rows []HolisticRow) {
	printHeader(w, "Ablation: binary structural joins vs holistic path joins")
	for _, r := range rows {
		fmt.Fprintf(w, "%-5s binary=%-12s holistic=%-12s ratio=%.2fx\n",
			r.View, fmtDur(r.Binary), fmtDur(r.Holistic), ratio(r.Binary, r.Holistic))
	}
}

func ratio(num, den interface{ Nanoseconds() int64 }) float64 {
	d := float64(den.Nanoseconds())
	if d <= 0 {
		return 0
	}
	return float64(num.Nanoseconds()) / d
}

func max1(f float64) float64 {
	if f <= 0 {
		return 1
	}
	return f
}
