package bench

import "testing"

// Benchmark wrappers over the micro suite so `go test -bench Micro` measures
// exactly what `xivmbench -json` reports. All report allocations: the
// engine's hot paths are supposed to stay allocation-lean, and CI runs these
// with -benchtime=1x as a bit-rot smoke.

func BenchmarkMicroStructuralJoin(b *testing.B) {
	b.ReportAllocs()
	MicroStructuralJoin(b, SmallBytes)
}

func BenchmarkMicroDupElim(b *testing.B) {
	b.ReportAllocs()
	MicroDupElim(b, SmallBytes)
}

func BenchmarkMicroWordItems(b *testing.B) {
	b.ReportAllocs()
	MicroWordItems(b, SmallBytes)
}

func BenchmarkMicroApplyStatement(b *testing.B) {
	b.ReportAllocs()
	MicroApplyStatement(b, SmallBytes)
}

func BenchmarkMicroRecoverEager(b *testing.B) {
	b.ReportAllocs()
	MicroRecoverEager(b, SmallBytes)
}

func BenchmarkMicroRecoverCompacted(b *testing.B) {
	b.ReportAllocs()
	MicroRecoverCompacted(b, SmallBytes)
}
