package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"testing"
	"time"

	"xivm/internal/core"
	"xivm/internal/obs"
	"xivm/internal/server"
	"xivm/internal/update"
)

// This file measures the serving layer's amortized batch propagation: the
// same bursty statement stream pumped through one shard with batching on
// (default MaxBatch) and off (MaxBatch 1). The serial path pays one
// propagation pass and one published epoch per statement; the batched path
// pays them once per drained burst, so the gap is dominated by the
// per-epoch snapshot deep copy and widens with document size. BENCH_5.json
// is two runs of this suite at growing XMark document sizes.

// BurstWidth is how many statements each burst submits back-to-back — the
// shard's default MaxBatch, so a fully drained burst becomes one batch.
const BurstWidth = 32

// newBurstShard builds a shard over a fresh engine (view Q1 installed) whose
// document has been pre-grown with BurstWidth distinct insertion parents
// under /site/people, and returns the cycle of batchable statement sources:
// one insert per parent, so a burst never trips the planner's same-target
// (IO) conflict rule and every burst is translatable.
func newBurstShard(docBytes, maxBatch int) (*server.Shard, []string) {
	e, _ := engineWith(Doc(docBytes), "Q1", core.Options{})
	srcs := make([]string, BurstWidth)
	for j := 0; j < BurstWidth; j++ {
		grow, err := update.Parse(fmt.Sprintf(`insert <bp%d/> into /site/people`, j))
		if err != nil {
			panic(err)
		}
		if _, err := e.ApplyStatement(grow); err != nil {
			panic(err)
		}
		srcs[j] = fmt.Sprintf(`insert <c/> into /site/people/bp%d`, j)
	}
	s := server.NewShard("bench", server.EngineBackend{Eng: e}, nil, server.Config{
		MaxBatch:   maxBatch,
		QueueDepth: 2 * BurstWidth,
		Metrics:    obs.New(),
	})
	return s, srcs
}

func closeShard(s *server.Shard) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_ = s.Close(ctx)
}

// submitBurst enqueues n statements back-to-back (FIFO) and collects every
// ack, returning the first error.
func submitBurst(s *server.Shard, srcs []string, n int) error {
	ctx := context.Background()
	waits := make([]func() (*core.Report, uint64, error), n)
	for i := 0; i < n; i++ {
		// Re-parse per submission: statements are single-use once applied
		// (their forests are spliced into the document).
		st, err := update.Parse(srcs[i%len(srcs)])
		if err != nil {
			return err
		}
		wait, err := s.ApplyAsync(ctx, st)
		if err != nil {
			return err
		}
		waits[i] = wait
	}
	for _, wait := range waits {
		if _, _, err := wait(); err != nil {
			return err
		}
	}
	return nil
}

// runBurst pumps b.N statements through the shard in bursts of BurstWidth —
// enqueue the whole burst FIFO, then collect every ack. One op is one
// statement acknowledged at a published epoch.
func runBurst(b *testing.B, s *server.Shard, srcs []string) {
	b.ResetTimer()
	for sent := 0; sent < b.N; {
		n := BurstWidth
		if sent+n > b.N {
			n = b.N - sent
		}
		if err := submitBurst(s, srcs, n); err != nil {
			b.Fatal(err)
		}
		sent += n
	}
}

// BatchBurst measures bursty statement throughput through one shard.
// maxBatch 0 selects the default (batching on); 1 disables batching.
func BatchBurst(b *testing.B, docBytes, maxBatch int) {
	b.StopTimer()
	s, srcs := newBurstShard(docBytes, maxBatch)
	defer closeShard(s)
	b.StartTimer()
	runBurst(b, s, srcs)
}

// BatchBursts is how many full bursts each RunBatch measurement pumps.
// Fixed rather than time-targeted: a measurement must always contain whole
// bursts, or the serial/batched comparison degenerates to single statements
// (which never batch) at exactly the document sizes where the gap matters.
var BatchBursts = 4

// RunBatch runs the batched/serial pair at each document size and shapes the
// measurements like the micro suite (suite "batch"; doc_bytes is the largest
// size, each result's name carries its own size). Timing is manual — always
// BatchBursts whole bursts, one warmup burst excluded — with allocation
// figures from runtime.MemStats deltas.
func RunBatch(docSizes []int) MicroReport {
	rep := MicroReport{Suite: "batch"}
	for _, size := range docSizes {
		if size > rep.DocBytes {
			rep.DocBytes = size
		}
		for _, mode := range []struct {
			name     string
			maxBatch int
		}{{"Batched", 0}, {"Serial", 1}} {
			s, srcs := newBurstShard(size, mode.maxBatch)
			if err := submitBurst(s, srcs, BurstWidth); err != nil { // warmup
				panic(err)
			}
			total := BatchBursts * BurstWidth
			var before, after runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&before)
			start := time.Now()
			for k := 0; k < BatchBursts; k++ {
				if err := submitBurst(s, srcs, BurstWidth); err != nil {
					panic(err)
				}
			}
			elapsed := time.Since(start)
			runtime.ReadMemStats(&after)
			closeShard(s)
			rep.Results = append(rep.Results, MicroResult{
				Name:        fmt.Sprintf("ShardBurst_%dMB_%s", size>>20, mode.name),
				Iterations:  total,
				NsPerOp:     float64(elapsed.Nanoseconds()) / float64(total),
				BytesPerOp:  int64(after.TotalAlloc-before.TotalAlloc) / int64(total),
				AllocsPerOp: int64(after.Mallocs-before.Mallocs) / int64(total),
			})
		}
	}
	return rep
}

// WriteBatchJSON runs the batch suite and writes the report as indented
// JSON (the BENCH_5.json input).
func WriteBatchJSON(w io.Writer, docSizes []int) error {
	rep := RunBatch(docSizes)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
