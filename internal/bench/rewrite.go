package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"testing"

	"xivm/internal/algebra"
	"xivm/internal/pattern"
	"xivm/internal/qvm"
	"xivm/internal/rewrite"
	"xivm/internal/xpath"
)

// This file defines the view-rewrite microbenchmarks behind `xivmbench
// -rewrite-json`: the same ad-hoc XPath answered by the compiled tree walk
// over the document and by the rewrite planner over materialized views —
// one shape per plan the planner can produce (single-view, two-view
// stitch, k-view intersection). Views are materialized once outside the
// timed region (the serving path keeps them incrementally maintained);
// the rewrite side times planning plus view-only evaluation, which is the
// cost a result-cache miss pays. Both engines must agree on the result at
// content level — IDs and values, not just counts — or the run panics.

// RewriteShape names one benchmarked query with the plan it exercises.
type RewriteShape struct {
	Name  string `json:"name"`
	Query string `json:"query"`
	Plan  string `json:"plan"` // "single", "stitch" or "intersect"
}

// RewriteShapes returns the benchmarked rewrite corpus over XMark.
func RewriteShapes() []RewriteShape {
	return []RewriteShape{
		// One view answers the whole query.
		{"SingleView", "//open_auction//increase", "single"},
		// Split at bidder, hash-joined on its structural ID.
		{"TwoViewStitch", "//open_auction//bidder//increase", "stitch"},
		// Three pieces sharing the person root, joined on its ID.
		{"ThreeViewIntersect", "//person[profile][homepage]/name", "intersect"},
	}
}

// rewriteLibraryPatterns is the ID-complete view library the suite plans
// against — the same shapes the server examples register.
func rewriteLibraryPatterns() map[string]string {
	return map[string]string{
		"auction-bidder":   `//open_auction{ID}//bidder{ID}`,
		"bidder-increase":  `//bidder{ID}//increase{ID,val}`,
		"auction-increase": `//open_auction{ID}//increase{ID,val}`,
		"person-profile":   `//person{ID}//profile{ID}`,
		"person-homepage":  `//person{ID}//homepage{ID}`,
		"person-name":      `//person{ID}//name{ID,val}`,
	}
}

// RewriteResult is one (shape, engine) measurement, shaped for BENCH_*.json.
type RewriteResult struct {
	Name        string  `json:"name"`
	Engine      string  `json:"engine"` // "treewalk" or "rewrite"
	Plan        string  `json:"plan"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Matches     int     `json:"matches"`
}

// RewriteReport is the machine-readable output of one rewrite-suite run.
// Speedup maps shape name to treewalk-ns / rewrite-ns.
type RewriteReport struct {
	Suite    string             `json:"suite"`
	DocBytes int                `json:"doc_bytes"`
	Results  []RewriteResult    `json:"results"`
	Speedup  map[string]float64 `json:"speedup"`
}

// RunRewrite runs the rewrite suite via testing.Benchmark.
func RunRewrite(docBytes int) RewriteReport {
	rep := RewriteReport{Suite: "rewrite", DocBytes: docBytes, Speedup: map[string]float64{}}
	d := mustParse(Doc(docBytes))

	var views []*rewrite.View
	for name, src := range rewriteLibraryPatterns() {
		p := pattern.MustParse(src)
		views = append(views, &rewrite.View{
			Name:    name,
			Pattern: p,
			Rows:    rewrite.RowSlice(algebra.Materialize(d, p)),
		})
	}

	for _, rs := range RewriteShapes() {
		path, err := xpath.Parse(rs.Query)
		if err != nil {
			panic(fmt.Sprintf("bench: parse %q: %v", rs.Query, err))
		}
		pat, err := xpath.ToPattern(path)
		if err != nil {
			panic(fmt.Sprintf("bench: bridge %q: %v", rs.Query, err))
		}
		prog, err := qvm.Compile(path)
		if err != nil {
			panic(fmt.Sprintf("bench: compile %q: %v", rs.Query, err))
		}

		rows, plan, err := rewrite.Answer(pat, views)
		if err != nil {
			panic(fmt.Sprintf("bench: %q has no rewrite over the library: %v", rs.Query, err))
		}
		if plan.Kind != rs.Plan {
			panic(fmt.Sprintf("bench: %q planned %q, suite expects %q", rs.Query, plan.Kind, rs.Plan))
		}
		nodes := prog.Eval(d)
		if len(nodes) == 0 {
			panic(fmt.Sprintf("bench: %q matches nothing on the generated document", rs.Query))
		}
		if len(rows) != len(nodes) {
			panic(fmt.Sprintf("bench: %q: rewrite %d rows, tree walk %d nodes", rs.Query, len(rows), len(nodes)))
		}
		for i := range rows {
			e := rows[i].Entries[0]
			if e.ID.Key() != nodes[i].ID.Key() || e.Val != nodes[i].StringValue() {
				panic(fmt.Sprintf("bench: %q row %d: rewrite (%s,%q) vs tree walk (%s,%q)",
					rs.Query, i, e.ID, e.Val, nodes[i].ID, nodes[i].StringValue()))
			}
		}

		rt := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if len(prog.Eval(d)) == 0 {
					b.Fatal("bench: empty result")
				}
			}
		})
		rr := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rows, _, err := rewrite.Answer(pat, views)
				if err != nil || len(rows) == 0 {
					b.Fatal("bench: empty rewrite")
				}
			}
		})
		rep.Results = append(rep.Results,
			rewriteResult(rs.Name, "treewalk", rs.Plan, rt, len(nodes)),
			rewriteResult(rs.Name, "rewrite", rs.Plan, rr, len(rows)))
		tns := float64(rt.T.Nanoseconds()) / float64(rt.N)
		rns := float64(rr.T.Nanoseconds()) / float64(rr.N)
		if rns > 0 {
			rep.Speedup[rs.Name] = tns / rns
		}
	}
	return rep
}

func rewriteResult(name, engine, plan string, r testing.BenchmarkResult, matches int) RewriteResult {
	return RewriteResult{
		Name:        name,
		Engine:      engine,
		Plan:        plan,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		Matches:     matches,
	}
}

// WriteRewriteJSON runs the suite and writes the report as indented JSON.
func WriteRewriteJSON(w io.Writer, docBytes int) error {
	rep := RunRewrite(docBytes)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
