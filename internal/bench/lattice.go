package bench

import (
	"time"

	"xivm/internal/algebra"
	"xivm/internal/core"
	"xivm/internal/update"
	"xivm/internal/xmark"
)

// SnowcapRow is one x of Figures 29/30: total maintenance time under the
// two lattice policies at one document size.
type SnowcapRow struct {
	Bytes    int
	Snowcaps time.Duration
	Leaves   time.Duration
}

// snowcapUpdate picks the update used to exercise a view's lattice.
func snowcapUpdate(viewName string) string {
	return xmark.ViewUpdates(viewName)[0]
}

// RunSnowcapsVsLeaves reproduces Figure 29 (Q4) / Figure 30 (Q6): the total
// time to evaluate terms and update the lattice, with materialized snowcaps
// vs leaves only, across document sizes.
func RunSnowcapsVsLeaves(viewName string, sizes []int) []SnowcapRow {
	var rows []SnowcapRow
	u := xmark.UpdateByName(snowcapUpdate(viewName))
	for _, n := range sizes {
		src := Doc(n)
		row := SnowcapRow{Bytes: n}
		for _, policy := range []core.Policy{core.PolicySnowcaps, core.PolicyLeaves} {
			policy := policy
			total := bestDur(func() time.Duration {
				e, _ := engineWith(src, viewName, core.Options{Policy: policy})
				rep, err := e.ApplyStatement(u.InsertStatement())
				if err != nil {
					panic(err)
				}
				t := rep.Timings()
				return t.ExecuteUpdate + t.UpdateLattice
			})
			if policy == core.PolicySnowcaps {
				row.Snowcaps = total
			} else {
				row.Leaves = total
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// SnowcapSplitRow is one x of Figures 31/32: the (R) evaluate-terms and (U)
// update-auxiliary times under each policy.
type SnowcapSplitRow struct {
	Bytes                  int
	SnowEval, SnowMaintain time.Duration
	LeafEval, LeafMaintain time.Duration
}

// RunSnowcapSplit reproduces Figures 31 (Q4) and 32 (Q6).
func RunSnowcapSplit(viewName string, sizes []int) []SnowcapSplitRow {
	var rows []SnowcapSplitRow
	u := xmark.UpdateByName(snowcapUpdate(viewName))
	for _, n := range sizes {
		src := Doc(n)
		row := SnowcapSplitRow{Bytes: n}
		for _, policy := range []core.Policy{core.PolicySnowcaps, core.PolicyLeaves} {
			policy := policy
			t := bestTimings(func() core.Timings {
				e, _ := engineWith(src, viewName, core.Options{Policy: policy})
				rep, err := e.ApplyStatement(u.InsertStatement())
				if err != nil {
					panic(err)
				}
				return rep.Timings()
			})
			if policy == core.PolicySnowcaps {
				row.SnowEval, row.SnowMaintain = t.ExecuteUpdate, t.UpdateLattice
			} else {
				row.LeafEval, row.LeafMaintain = t.ExecuteUpdate, t.UpdateLattice
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// AblationPruningRow compares maintenance with all pruning rules on vs off.
type AblationPruningRow struct {
	Update   string
	Pruned   time.Duration
	Unpruned time.Duration
}

// RunPruningAblation measures the benefit of Propositions 3.6/3.8/4.7 on
// the Q1 workload (DESIGN.md §4).
func RunPruningAblation(docBytes int) []AblationPruningRow {
	src := Doc(docBytes)
	var rows []AblationPruningRow
	for _, un := range xmark.ViewUpdates("Q1") {
		u := xmark.UpdateByName(un)
		row := AblationPruningRow{Update: un}
		for _, off := range []bool{false, true} {
			off := off
			total := bestDur(func() time.Duration {
				e, _ := engineWith(src, "Q1", core.Options{DisableDataPruning: off, DisableIDPruning: off})
				rep, err := e.ApplyStatement(u.InsertStatement())
				if err != nil {
					panic(err)
				}
				return rep.Timings().Total() - rep.Timings().FindTargets
			})
			if off {
				row.Unpruned = total
			} else {
				row.Pruned = total
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// AblationJoinRow compares the Dewey structural join against the naive
// nested-loop join (DESIGN.md §4).
type AblationJoinRow struct {
	View       string
	Structural time.Duration
	NestedLoop time.Duration
}

// RunJoinAblation measures both physical joins on initial materialization +
// one insert propagation.
func RunJoinAblation(docBytes int) []AblationJoinRow {
	src := Doc(docBytes)
	var rows []AblationJoinRow
	for _, vn := range []string{"Q1", "Q2", "Q6"} {
		u := xmark.UpdateByName(xmark.ViewUpdates(vn)[0])
		row := AblationJoinRow{View: vn}
		for _, nested := range []bool{false, true} {
			nested := nested
			total := bestDur(func() time.Duration {
				opts := core.Options{}
				if nested {
					opts.Join = nestedJoin
				}
				// Parse outside the timer: the ablation compares join
				// algorithms, not XML parsing.
				d := mustParse(src)
				start := time.Now()
				e := core.NewEngine(d, opts)
				if _, err := e.AddView(vn, xmark.View(vn)); err != nil {
					panic(err)
				}
				if _, err := e.ApplyStatement(u.InsertStatement()); err != nil {
					panic(err)
				}
				return time.Since(start)
			})
			if nested {
				row.NestedLoop = total
			} else {
				row.Structural = total
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// LazyRow compares eager per-statement propagation with deferred batch
// flushing (core.Lazy) over the same statement stream.
type LazyRow struct {
	Statements int
	Eager      time.Duration
	Lazy       time.Duration
}

// RunLazyAblation runs a churn-heavy stream (inserts later deleted) through
// both modes on view Q1.
func RunLazyAblation(docBytes int) []LazyRow {
	src := Doc(docBytes)
	stream := func() []*update.Statement {
		return []*update.Statement{
			xmark.UpdateByName("X1_L").InsertStatement(),
			xmark.UpdateByName("A7_O").InsertStatement(),
			update.MustParse(`delete /site/people/person/name[name]`), // removes the inserted trees
			xmark.UpdateByName("A6_A").InsertStatement(),
			xmark.UpdateByName("A6_A").DeleteStatement(),
		}
	}
	var rows []LazyRow
	row := LazyRow{Statements: 5}
	row.Eager = bestDur(func() time.Duration {
		e, _ := engineWith(src, "Q1", core.Options{})
		start := time.Now()
		for _, st := range stream() {
			if _, err := e.ApplyStatement(st); err != nil {
				panic(err)
			}
		}
		return time.Since(start)
	})
	row.Lazy = bestDur(func() time.Duration {
		e, _ := engineWith(src, "Q1", core.Options{})
		lz := core.NewLazy(e)
		start := time.Now()
		for _, st := range stream() {
			if err := lz.Apply(st); err != nil {
				panic(err)
			}
		}
		if _, err := lz.Flush(); err != nil {
			panic(err)
		}
		return time.Since(start)
	})
	rows = append(rows, row)
	return rows
}

// HolisticRow compares full-pattern evaluation via binary Dewey structural
// joins against the holistic path-join evaluator.
type HolisticRow struct {
	View     string
	Binary   time.Duration
	Holistic time.Duration
}

// RunHolisticAblation evaluates each benchmark view from scratch with both
// evaluators.
func RunHolisticAblation(docBytes int) []HolisticRow {
	src := Doc(docBytes)
	d := mustParse(src)
	var rows []HolisticRow
	for _, vn := range xmark.ViewNames() {
		p := xmark.View(vn)
		in := algebra.DocInputs(d, p)
		row := HolisticRow{View: vn}
		row.Binary = bestDur(func() time.Duration {
			start := time.Now()
			algebra.EvalPattern(p, in, nil)
			return time.Since(start)
		})
		row.Holistic = bestDur(func() time.Duration {
			start := time.Now()
			algebra.EvalPatternHolistic(p, in)
			return time.Since(start)
		})
		rows = append(rows, row)
	}
	return rows
}
