package bench

import (
	"testing"

	"xivm/internal/qvm"
	"xivm/internal/xpath"
)

// TestQueryShapesAgree pins that every benchmarked shape parses, compiles,
// matches something on the generated document, and that the compiled program
// returns exactly the interpreted evaluator's nodes — the same property
// RunQuery asserts by count before timing anything.
func TestQueryShapesAgree(t *testing.T) {
	d := mustParse(Doc(SmallBytes))
	for _, qs := range QueryShapes() {
		p, err := xpath.Parse(qs.Query)
		if err != nil {
			t.Fatalf("%s: parse %q: %v", qs.Name, qs.Query, err)
		}
		prog, err := qvm.Compile(p)
		if err != nil {
			t.Fatalf("%s: compile %q: %v", qs.Name, qs.Query, err)
		}
		want := xpath.Eval(d, p)
		got := prog.Eval(d)
		if len(want) == 0 {
			t.Errorf("%s: %q matches nothing on the benchmark document", qs.Name, qs.Query)
			continue
		}
		if len(got) != len(want) {
			t.Errorf("%s: compiled %d matches, interpreted %d", qs.Name, len(got), len(want))
			continue
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("%s: match %d diverges: %s vs %s", qs.Name, i, got[i].ID, want[i].ID)
				break
			}
		}
	}
}

// Benchmark wrappers over the query suite so `go test -bench Query` measures
// exactly what `xivmbench -query-json` reports. Compiled and interpreted run
// as sub-benchmarks per shape; CI runs these with -benchtime=1x as a
// bit-rot smoke.

func BenchmarkQuery(b *testing.B) {
	d := mustParse(Doc(SmallBytes))
	for _, qs := range QueryShapes() {
		p, err := xpath.Parse(qs.Query)
		if err != nil {
			b.Fatal(err)
		}
		prog, err := qvm.Compile(p)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(qs.Name+"/interpreted", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if len(xpath.Eval(d, p)) == 0 {
					b.Fatal("empty result")
				}
			}
		})
		b.Run(qs.Name+"/compiled", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if len(prog.Eval(d)) == 0 {
					b.Fatal("empty result")
				}
			}
		})
	}
}
