package bench

import (
	"fmt"
	"os"
	"testing"

	"xivm/internal/obs"
	"xivm/internal/update"
	"xivm/internal/wal"
	"xivm/internal/xmark"
)

func mustStatement(src string) *update.Statement {
	st, err := update.Parse(src)
	if err != nil {
		panic(err)
	}
	return st
}

// Recovery microbenchmarks: checkpoint load (parse the document, decode
// every view snapshot) plus replay of a statement tail, with and without
// pulopt log compaction. The tail is insert churn under a subtree that a
// later statement deletes wholesale — the shape where the reduction rules
// shrink replay the same way they shrink propagation.

// recoverTail is the replayed statement suffix: the person insertions and
// the phone insertions all die with `delete /site/people`, so compacted
// recovery drops them; the auction insert and the catgraph delete survive.
func recoverTail() []string {
	var stmts []string
	for i := 0; i < 4; i++ {
		stmts = append(stmts,
			fmt.Sprintf(`insert <person id="personB%d"><name>Bench Person %d</name></person> into /site/people`, i, i),
			`for $x in /site/people/person insert <phone>+33 555 0199</phone>`,
		)
	}
	return append(stmts,
		`for $x in /site/open_auctions/open_auction insert <bidder><date>01/01/2011</date><increase>4.50</increase></bidder>`,
		`delete /site/people`,
		`delete /site/catgraph`,
	)
}

// prepRecoverDir lays down a database directory whose recovery cost is the
// thing measured: a checkpoint of the document plus view Q1, then the churn
// tail in the log.
func prepRecoverDir(b *testing.B, docBytes int) string {
	b.Helper()
	dir, err := os.MkdirTemp("", "xivm-bench-recover-")
	if err != nil {
		b.Fatal(err)
	}
	db, err := wal.Create(dir, []byte(Doc(docBytes)), wal.Options{Sync: wal.SyncNever, Metrics: obs.New()})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := db.AddView("Q1", xmark.View("Q1").String()); err != nil {
		b.Fatal(err)
	}
	// Checkpoint past the view record so the replay tail is statements
	// only, the compaction-eligible shape.
	if err := db.Checkpoint(); err != nil {
		b.Fatal(err)
	}
	for _, src := range recoverTail() {
		if _, err := db.Apply(mustStatement(src)); err != nil {
			b.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		b.Fatal(err)
	}
	return dir
}

// MicroRecoverEager measures wal.Open with statement-by-statement replay.
func MicroRecoverEager(b *testing.B, docBytes int) {
	dir := prepRecoverDir(b, docBytes)
	defer os.RemoveAll(dir)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db, err := wal.Open(dir, wal.Options{Metrics: obs.New()})
		if err != nil {
			b.Fatal(err)
		}
		if db.Stats().Replayed == 0 {
			b.Fatal("bench: recovery replayed nothing")
		}
		db.Close()
	}
}

// MicroRecoverCompacted measures wal.Open with the pulopt-compacted replay
// path, which must engage (drop operations) on this tail.
func MicroRecoverCompacted(b *testing.B, docBytes int) {
	dir := prepRecoverDir(b, docBytes)
	defer os.RemoveAll(dir)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db, err := wal.Open(dir, wal.Options{Compact: true, Metrics: obs.New()})
		if err != nil {
			b.Fatal(err)
		}
		if st := db.Stats(); !st.Compacted || st.CompactedOps == 0 {
			b.Fatalf("bench: compaction did not engage: %+v", st)
		}
		db.Close()
	}
}
