package bench

import (
	"encoding/json"
	"io"
	"testing"

	"xivm/internal/algebra"
	"xivm/internal/core"
	"xivm/internal/store"
	"xivm/internal/xmark"
)

// This file defines the hot-path microbenchmarks behind `xivmbench -json`:
// allocation-reporting measurements of the operations the paper's complexity
// analysis puts on the maintenance critical path (structural joins, duplicate
// elimination, canonical-relation access, one end-to-end propagation). The
// same functions back the Benchmark… wrappers in micro_test.go, so `go test
// -bench Micro` and the JSON runner measure identical code.

// MicroResult is one microbenchmark measurement, shaped for BENCH_*.json.
type MicroResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// MicroReport is the machine-readable output of one full micro-suite run.
type MicroReport struct {
	Suite    string        `json:"suite"`
	DocBytes int           `json:"doc_bytes"`
	Results  []MicroResult `json:"results"`
}

// MicroBenchmarks returns the named microbenchmark functions of the suite,
// each parameterized by the generated-document size.
func MicroBenchmarks() []struct {
	Name string
	Fn   func(b *testing.B, docBytes int)
} {
	return []struct {
		Name string
		Fn   func(b *testing.B, docBytes int)
	}{
		{"StructuralJoin", MicroStructuralJoin},
		{"DupElim", MicroDupElim},
		{"WordItems", MicroWordItems},
		{"ApplyStatement", MicroApplyStatement},
		{"RecoverEager", MicroRecoverEager},
		{"RecoverCompacted", MicroRecoverCompacted},
	}
}

// RunMicro runs the whole suite via testing.Benchmark and collects results.
func RunMicro(docBytes int) MicroReport {
	rep := MicroReport{Suite: "micro", DocBytes: docBytes}
	for _, mb := range MicroBenchmarks() {
		fn := mb.Fn
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			fn(b, docBytes)
		})
		rep.Results = append(rep.Results, MicroResult{
			Name:        mb.Name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
	}
	return rep
}

// WriteMicroJSON runs the suite and writes the report as indented JSON.
func WriteMicroJSON(w io.Writer, docBytes int) error {
	rep := RunMicro(docBytes)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// MicroStructuralJoin measures the Dewey hash structural join joining every
// person element with its text descendants — the deepest ancestor probe the
// XMark documents offer.
func MicroStructuralJoin(b *testing.B, docBytes int) {
	st := store.New(mustParse(Doc(docBytes)))
	left := algebra.SingleColumn(0, st.Items("person"))
	right := algebra.SingleColumn(1, st.Items("#text"))
	if len(left.Tuples) == 0 || len(right.Tuples) == 0 {
		b.Fatal("bench: empty join inputs")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := algebra.StructuralJoin(left, 0, right, 1, true)
		if len(out.Tuples) == 0 {
			b.Fatal("bench: empty join result")
		}
	}
}

// MicroDupElim measures projection + duplicate elimination (π·δ plus the
// final sort) over the full evaluation of view Q1.
func MicroDupElim(b *testing.B, docBytes int) {
	doc := mustParse(Doc(docBytes))
	st := store.New(doc)
	p := xmark.View("Q1")
	tuples := algebra.EvalPattern(p, st.Inputs(p), algebra.StructuralJoin)
	if len(tuples) == 0 {
		b.Fatal("bench: empty evaluation")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := algebra.ProjectStored(p, tuples, doc)
		if len(rows) == 0 {
			b.Fatal("bench: empty projection")
		}
	}
}

// MicroWordItems measures Store.Items for a word label ("~gold" is always
// present in generated documents).
func MicroWordItems(b *testing.B, docBytes int) {
	st := store.New(mustParse(Doc(docBytes)))
	if len(st.Items("~gold")) == 0 {
		b.Fatal("bench: no items for ~gold")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(st.Items("~gold")) == 0 {
			b.Fatal("bench: no items for ~gold")
		}
	}
}

// MicroApplyStatement measures one end-to-end insert propagation (view Q1,
// its first update class), rebuilding the engine outside the timed region.
func MicroApplyStatement(b *testing.B, docBytes int) {
	src := Doc(docBytes)
	u := xmark.UpdateByName(xmark.ViewUpdates("Q1")[0])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e, _ := engineWith(src, "Q1", core.Options{})
		st := u.InsertStatement()
		b.StartTimer()
		if _, err := e.ApplyStatement(st); err != nil {
			b.Fatal(err)
		}
	}
}
