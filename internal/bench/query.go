package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"testing"

	"xivm/internal/qvm"
	"xivm/internal/xpath"
)

// This file defines the query microbenchmarks behind `xivmbench -query-json`:
// the same XPath evaluated by the interpreted evaluator (xpath.Eval, the
// differential oracle) and by its compiled qvm program, per query shape. The
// shapes cover the axes the compiler fuses — child spines, descendant-heavy
// scans, predicate-heavy filters, positional and function predicates, and
// sibling axes — so a BENCH_*.json run shows where compilation pays and by
// how much. Paths are parsed and programs compiled outside the timed region:
// both engines measure pure evaluation (the serving path amortizes parse and
// compile through the compiled-query cache anyway).

// QueryShape names one benchmarked query.
type QueryShape struct {
	Name  string `json:"name"`
	Query string `json:"query"`
}

// QueryShapes returns the benchmarked query corpus over the XMark documents.
func QueryShapes() []QueryShape {
	return []QueryShape{
		// Child spine: the cheapest shape, pure fused child steps.
		{"ChildChain", "/site/open_auctions/open_auction/bidder/increase"},
		// Descendant-heavy: two // steps, most of the document visited.
		{"DescendantDeep", "//open_auction//increase"},
		// Descendant-wide: one // step matching across every section.
		{"DescendantWide", "//name"},
		// Predicate-heavy: two existence predicates per candidate.
		{"PredicateExists", "//person[profile][homepage]/name"},
		// Function predicates: string tests against pooled literals.
		{"PredicateString", "//person[starts-with(@id,'person1')][contains(emailaddress,'example')]"},
		// Aggregation predicate: count() runs a sub-path per candidate.
		{"PredicateCount", "//open_auction[count(bidder)>=2]/initial"},
		// Positional: grouped filtering with per-group re-indexing.
		{"Positional", "/site/open_auctions/open_auction/bidder[1]/increase"},
		// Sibling axis: sideways moves plus doc-order dedup of the overlap.
		{"Sibling", "//bidder/following-sibling::current"},
	}
}

// QueryResult is one (shape, engine) measurement, shaped for BENCH_*.json.
type QueryResult struct {
	Name        string  `json:"name"`
	Engine      string  `json:"engine"` // "interpreted" or "compiled"
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Matches     int     `json:"matches"`
}

// QueryReport is the machine-readable output of one query-suite run.
// Speedup maps shape name to interpreted-ns / compiled-ns.
type QueryReport struct {
	Suite    string             `json:"suite"`
	DocBytes int                `json:"doc_bytes"`
	Results  []QueryResult      `json:"results"`
	Speedup  map[string]float64 `json:"speedup"`
}

// RunQuery runs the query suite via testing.Benchmark and collects results.
// Both engines must agree on every shape's match count; a divergence is a
// correctness bug and panics rather than producing a misleading report.
func RunQuery(docBytes int) QueryReport {
	rep := QueryReport{Suite: "query", DocBytes: docBytes, Speedup: map[string]float64{}}
	d := mustParse(Doc(docBytes))
	for _, qs := range QueryShapes() {
		p, err := xpath.Parse(qs.Query)
		if err != nil {
			panic(fmt.Sprintf("bench: parse %q: %v", qs.Query, err))
		}
		prog, err := qvm.Compile(p)
		if err != nil {
			panic(fmt.Sprintf("bench: compile %q: %v", qs.Query, err))
		}
		interpreted := xpath.Eval(d, p)
		compiled := prog.Eval(d)
		if len(interpreted) != len(compiled) {
			panic(fmt.Sprintf("bench: %q: interpreted %d matches, compiled %d",
				qs.Query, len(interpreted), len(compiled)))
		}
		if len(interpreted) == 0 {
			panic(fmt.Sprintf("bench: %q matches nothing on the generated document", qs.Query))
		}

		ri := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if len(xpath.Eval(d, p)) == 0 {
					b.Fatal("bench: empty result")
				}
			}
		})
		rc := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if len(prog.Eval(d)) == 0 {
					b.Fatal("bench: empty result")
				}
			}
		})
		rep.Results = append(rep.Results,
			queryResult(qs.Name, "interpreted", ri, len(interpreted)),
			queryResult(qs.Name, "compiled", rc, len(compiled)))
		ins := float64(ri.T.Nanoseconds()) / float64(ri.N)
		cns := float64(rc.T.Nanoseconds()) / float64(rc.N)
		if cns > 0 {
			rep.Speedup[qs.Name] = ins / cns
		}
	}
	return rep
}

func queryResult(name, engine string, r testing.BenchmarkResult, matches int) QueryResult {
	return QueryResult{
		Name:        name,
		Engine:      engine,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		Matches:     matches,
	}
}

// WriteQueryJSON runs the suite and writes the report as indented JSON.
func WriteQueryJSON(w io.Writer, docBytes int) error {
	rep := RunQuery(docBytes)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
