// Package xmark provides a deterministic XMark-style benchmark data
// generator, the XMark views used by the paper (Q1, Q2, Q3, Q4, Q6, Q13,
// Q17), and the XPathMark-derived update set of Appendix A (classes L, LB,
// A, O, AO), in both insertion and deletion variants. The generator emits
// the schema subset those views and updates touch — site/people/person,
// site/regions/*/item, site/open_auctions/open_auction — with fanouts and
// value distributions that make selectivities scale with document size.
package xmark

import (
	"fmt"
	"strings"
)

// rng is a small deterministic xorshift generator so documents are
// reproducible across runs and platforms.
type rng struct{ s uint64 }

func newRng(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &rng{s: seed}
}

func (r *rng) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

func (r *rng) pick(words []string) string { return words[r.intn(len(words))] }

var (
	firstNames = []string{"Ann", "Bob", "Carla", "Dinesh", "Elena", "Farid", "Grace", "Hugo", "Ines", "Jo"}
	lastNames  = []string{"Smith", "Garcia", "Chen", "Okafor", "Rossi", "Novak", "Dubois", "Kim", "Silva", "Mori"}
	cities     = []string{"Lille", "Glasgow", "Paris", "Potenza", "Saclay", "Rome", "Lyon", "Leuven"}
	countries  = []string{"France", "United Kingdom", "Italy", "Belgium", "Germany"}
	words      = []string{"gold", "vintage", "rare", "mint", "boxed", "signed", "classic", "limited", "original", "restored"}
	itemNouns  = []string{"clock", "violin", "atlas", "camera", "lamp", "radio", "stamp", "chair", "globe", "compass"}
	regions    = []string{"africa", "asia", "australia", "europe", "namerica", "samerica"}
	increases  = []string{"1.50", "3.00", "4.50", "6.00", "7.50", "9.00", "12.00", "15.00"}
)

// Config controls generation.
type Config struct {
	// TargetBytes is the approximate serialized size to produce.
	TargetBytes int
	// Seed makes distinct deterministic documents.
	Seed uint64
}

// Generate produces an XMark-style document of roughly cfg.TargetBytes
// serialized bytes.
func Generate(cfg Config) string {
	if cfg.TargetBytes <= 0 {
		cfg.TargetBytes = 100 << 10
	}
	r := newRng(cfg.Seed)
	var b strings.Builder
	b.Grow(cfg.TargetBytes + 4096)
	b.WriteString("<site>")

	// Budget shares mirror XMark's relative region sizes: people, regions
	// and open auctions carry most of the document, with smaller categories,
	// category graph and closed-auction sections. Each writer appends whole
	// entities until its share is spent.
	personShare := cfg.TargetBytes * 32 / 100
	regionShare := cfg.TargetBytes * 32 / 100
	auctionShare := cfg.TargetBytes * 24 / 100
	closedShare := cfg.TargetBytes * 8 / 100
	categoryShare := cfg.TargetBytes - personShare - regionShare - auctionShare - closedShare

	nCategories := maxInt(categoryShare/120, 4)
	b.WriteString("<categories>")
	for i := 0; i < nCategories; i++ {
		writeCategory(&b, r, i)
	}
	b.WriteString("</categories>")
	b.WriteString("<catgraph>")
	for i := 0; i < nCategories; i++ {
		fmt.Fprintf(&b, `<edge from="category%d" to="category%d"/>`, i, r.intn(nCategories))
	}
	b.WriteString("</catgraph>")

	b.WriteString("<people>")
	peopleStart := b.Len()
	nPersons := 0
	for b.Len()-peopleStart < personShare {
		writePerson(&b, r, nPersons)
		nPersons++
	}
	b.WriteString("</people>")

	b.WriteString("<regions>")
	regionStart := b.Len()
	nItems := 0
	for ri, reg := range regions {
		b.WriteString("<" + reg + ">")
		// Keep region sizes uneven, as in XMark (namerica largest).
		share := regionShare / len(regions)
		if reg == "namerica" {
			share = share * 2
		}
		base := b.Len()
		for b.Len()-base < share {
			writeItem(&b, r, nItems)
			nItems++
		}
		b.WriteString("</" + reg + ">")
		_ = ri
	}
	_ = regionStart
	b.WriteString("</regions>")

	b.WriteString("<open_auctions>")
	nAuctions := 0
	auctionStart := b.Len()
	for b.Len()-auctionStart < auctionShare {
		writeAuction(&b, r, nAuctions, nPersons, nItems)
		nAuctions++
	}
	b.WriteString("</open_auctions>")

	b.WriteString("<closed_auctions>")
	closedStart := b.Len()
	nClosed := 0
	for b.Len()-closedStart < closedShare {
		writeClosedAuction(&b, r, nPersons, nItems)
		nClosed++
	}
	b.WriteString("</closed_auctions>")

	b.WriteString("</site>")
	return b.String()
}

func writeCategory(b *strings.Builder, r *rng, id int) {
	fmt.Fprintf(b, `<category id="category%d">`, id)
	fmt.Fprintf(b, "<name>%s %s</name>", r.pick(words), r.pick(itemNouns))
	fmt.Fprintf(b, "<description><text>%s %s collectibles</text></description>", r.pick(words), r.pick(words))
	b.WriteString("</category>")
}

func writeClosedAuction(b *strings.Builder, r *rng, nPersons, nItems int) {
	b.WriteString("<closed_auction>")
	fmt.Fprintf(b, `<seller person="person%d"/>`, r.intn(maxInt(nPersons, 1)))
	fmt.Fprintf(b, `<buyer person="person%d"/>`, r.intn(maxInt(nPersons, 1)))
	fmt.Fprintf(b, `<itemref item="item%d"/>`, r.intn(maxInt(nItems, 1)))
	fmt.Fprintf(b, "<price>%d.00</price>", 20+r.intn(800))
	fmt.Fprintf(b, "<date>1%d/0%d/2010</date>", r.intn(2), 1+r.intn(9))
	fmt.Fprintf(b, "<quantity>%d</quantity>", 1+r.intn(3))
	fmt.Fprintf(b, "<type>%s</type>", []string{"Regular", "Featured"}[r.intn(2)])
	if r.intn(3) == 0 {
		fmt.Fprintf(b, `<annotation><author person="person%d"/><description><text>%s deal, %s condition</text></description><happiness>%d</happiness></annotation>`,
			r.intn(maxInt(nPersons, 1)), r.pick(words), r.pick(words), 1+r.intn(10))
	}
	b.WriteString("</closed_auction>")
}

func writePerson(b *strings.Builder, r *rng, id int) {
	fmt.Fprintf(b, `<person id="person%d">`, id)
	fmt.Fprintf(b, "<name>%s %s</name>", r.pick(firstNames), r.pick(lastNames))
	fmt.Fprintf(b, "<emailaddress>mailto:p%d@example.net</emailaddress>", id)
	if r.intn(3) != 0 {
		fmt.Fprintf(b, "<phone>+33 %d %d</phone>", 100+r.intn(900), 100000+r.intn(900000))
	}
	if r.intn(2) == 0 {
		fmt.Fprintf(b, "<address><street>%d %s St</street><city>%s</city><country>%s</country><zipcode>%d</zipcode></address>",
			1+r.intn(99), r.pick(lastNames), r.pick(cities), r.pick(countries), 10000+r.intn(89999))
	}
	if r.intn(3) == 0 {
		fmt.Fprintf(b, "<homepage>http://example.net/~p%d</homepage>", id)
	}
	if r.intn(4) == 0 {
		fmt.Fprintf(b, "<creditcard>%d %d %d %d</creditcard>", 1000+r.intn(9000), 1000+r.intn(9000), 1000+r.intn(9000), 1000+r.intn(9000))
	}
	if r.intn(2) == 0 {
		fmt.Fprintf(b, `<profile income="%d">`, 20000+r.intn(80000))
		fmt.Fprintf(b, `<interest category="category%d"/>`, r.intn(20))
		if r.intn(2) == 0 {
			fmt.Fprintf(b, "<age>%d</age>", 18+r.intn(60))
		}
		fmt.Fprintf(b, "<education>%s</education>", []string{"High School", "College", "Graduate School"}[r.intn(3)])
		b.WriteString("</profile>")
	}
	b.WriteString("</person>")
}

func writeItem(b *strings.Builder, r *rng, id int) {
	fmt.Fprintf(b, `<item id="item%d">`, id)
	fmt.Fprintf(b, "<location>%s</location>", r.pick(countries))
	fmt.Fprintf(b, "<quantity>%d</quantity>", 1+r.intn(5))
	fmt.Fprintf(b, "<name>%s %s</name>", r.pick(words), r.pick(itemNouns))
	b.WriteString("<payment>Creditcard, Personal Check, Cash</payment>")
	if r.intn(4) != 0 {
		fmt.Fprintf(b, "<description><text>%s %s %s with %s finish</text></description>",
			r.pick(words), r.pick(words), r.pick(itemNouns), r.pick(words))
	}
	if r.intn(3) == 0 {
		fmt.Fprintf(b, "<mailbox><mail><from>%s</from><to>%s</to><date>0%d/2%d/2010</date></mail></mailbox>",
			r.pick(firstNames), r.pick(firstNames), 1+r.intn(9), r.intn(9))
	}
	b.WriteString("</item>")
}

func writeAuction(b *strings.Builder, r *rng, id, nPersons, nItems int) {
	fmt.Fprintf(b, `<open_auction id="open_auction%d">`, id)
	fmt.Fprintf(b, "<initial>%d.00</initial>", 5+r.intn(200))
	if r.intn(2) == 0 {
		fmt.Fprintf(b, "<reserve>%d.00</reserve>", 50+r.intn(500))
	}
	nBidders := r.intn(4)
	for i := 0; i < nBidders; i++ {
		// person12 bids on ~10% of auctions once enough persons exist,
		// giving the Q4 view the selectivity the paper relies on.
		bidder := r.intn(maxInt(nPersons, 1))
		if nPersons > 12 && r.intn(10) == 0 {
			bidder = 12
		}
		fmt.Fprintf(b, "<bidder><date>0%d/1%d/2010</date><personref person=\"person%d\"/><increase>%s</increase></bidder>",
			1+r.intn(9), r.intn(9), bidder, r.pick(increases))
	}
	fmt.Fprintf(b, "<current>%d.00</current>", 10+r.intn(900))
	if r.intn(3) == 0 {
		b.WriteString("<privacy>Yes</privacy>")
	}
	fmt.Fprintf(b, `<itemref item="item%d"/>`, r.intn(maxInt(nItems, 1)))
	fmt.Fprintf(b, `<seller person="person%d"/>`, r.intn(maxInt(nPersons, 1)))
	fmt.Fprintf(b, "<quantity>%d</quantity>", 1+r.intn(3))
	fmt.Fprintf(b, "<type>%s</type>", []string{"Regular", "Featured", "Dutch"}[r.intn(3)])
	b.WriteString("</open_auction>")
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
