package xmark

import (
	"fmt"

	"xivm/internal/update"
)

// Class is the syntactic class of an update's target path (Appendix A).
type Class string

// The paper's five update classes.
const (
	ClassLinear Class = "L"  // linear path expression
	ClassLinB   Class = "LB" // linear with boolean filter
	ClassAnd    Class = "A"  // AND predicate
	ClassOr     Class = "O"  // OR predicate
	ClassAndOr  Class = "AO" // AND + OR predicate
)

// Payload selects the XML fragment an update inserts.
type Payload uint8

const (
	// PayloadName is the 5-node name tree inserted under persons.
	PayloadName Payload = iota
	// PayloadIncrease is the 5-node increase tree inserted under bidders.
	PayloadIncrease
	// PayloadItem is the item tree inserted under items.
	PayloadItem
)

func (p Payload) xml(name string) string {
	switch p {
	case PayloadName:
		return `<name>Martin<name>and</name><name>some</name><name>test</name><name>nodes</name></name>`
	case PayloadIncrease:
		return `<increase>inserted 100.00<increase>and</increase><increase>some</increase><increase>test</increase><increase>nodes</increase></increase>`
	default:
		return fmt.Sprintf(`<item><location>Unknown</location><quantity>1</quantity><name>%s Item</name><payment>Creditcard, Personal Check, Cash</payment></item>`, name)
	}
}

// Update is one Appendix A workload entry: a named target path with an
// insertion payload; the deletion variant deletes the same targets.
type Update struct {
	Name    string
	Class   Class
	Path    string // the XPath selecting target nodes
	Payload Payload
}

// InsertStatement renders the update's insertion form.
func (u Update) InsertStatement() *update.Statement {
	return update.MustParse(fmt.Sprintf("for $x in %s insert %s", u.Path, u.Payload.xml(u.Name)))
}

// DeleteStatement renders the update's deletion form (deleting the nodes
// the path returns, as the paper derives deletes from the XPathMark
// queries).
func (u Update) DeleteStatement() *update.Statement {
	return update.MustParse("delete " + u.Path)
}

// updates is the Appendix A test set.
var updates = map[string]Update{
	// Person-targeted (views Q1, Q17).
	"X1_L":  {Name: "X1_L", Class: ClassLinear, Path: `/site/people/person`, Payload: PayloadName},
	"A6_A":  {Name: "A6_A", Class: ClassAnd, Path: `/site/people/person[phone and homepage]`, Payload: PayloadName},
	"A7_O":  {Name: "A7_O", Class: ClassOr, Path: `/site/people/person[phone or homepage]`, Payload: PayloadName},
	"A8_AO": {Name: "A8_AO", Class: ClassAndOr, Path: `/site/people/person[address and (phone or homepage) and (creditcard or profile)]`, Payload: PayloadName},
	"B7_LB": {Name: "B7_LB", Class: ClassLinB, Path: `//person[profile/@income]`, Payload: PayloadName},

	// Auction-targeted (views Q2, Q3, Q4).
	"X2_L":  {Name: "X2_L", Class: ClassLinear, Path: `/site/open_auctions/open_auction/bidder`, Payload: PayloadIncrease},
	"X3_A":  {Name: "X3_A", Class: ClassAnd, Path: `/site/open_auctions/open_auction[privacy and bidder]/bidder`, Payload: PayloadIncrease},
	"X4_O":  {Name: "X4_O", Class: ClassOr, Path: `/site/open_auctions/open_auction[bidder or privacy]/bidder`, Payload: PayloadIncrease},
	"X5_AO": {Name: "X5_AO", Class: ClassAndOr, Path: `/site/open_auctions/open_auction[current and (bidder or reserve)]/bidder`, Payload: PayloadIncrease},
	"B3_LB": {Name: "B3_LB", Class: ClassLinB, Path: `/site/open_auctions/open_auction[reserve]/bidder`, Payload: PayloadIncrease},

	// Item-targeted (views Q6, Q13).
	"B1_A":  {Name: "B1_A", Class: ClassAnd, Path: `/site/regions[namerica or samerica]//item`, Payload: PayloadItem},
	"B1_O":  {Name: "B1_O", Class: ClassOr, Path: `/site/regions[namerica or samerica]//item`, Payload: PayloadItem},
	"B5_LB": {Name: "B5_LB", Class: ClassLinB, Path: `/site/regions/*/item[name]`, Payload: PayloadItem},
	"E6_L":  {Name: "E6_L", Class: ClassLinear, Path: `/site/regions/*/item`, Payload: PayloadItem},
	"X7_O":  {Name: "X7_O", Class: ClassOr, Path: `//item[description or name]`, Payload: PayloadItem},
	"X8_AO": {Name: "X8_AO", Class: ClassAndOr, Path: `//item[description and (name or mailbox)]`, Payload: PayloadItem},
	"X16_A": {Name: "X16_A", Class: ClassAnd, Path: `//item[description][name]`, Payload: PayloadItem},
	"X17_L": {Name: "X17_L", Class: ClassLinear, Path: `/site/regions//item`, Payload: PayloadItem},
}

// UpdateByName returns an Appendix A update; it panics on unknown names.
func UpdateByName(name string) Update {
	u, ok := updates[name]
	if !ok {
		panic("xmark: unknown update " + name)
	}
	return u
}

// ViewUpdates maps each benchmark view to its five update names, matching
// the pairs of Figures 18–21.
func ViewUpdates(viewName string) []string {
	switch viewName {
	case "Q1", "Q17":
		return []string{"X1_L", "A6_A", "A7_O", "A8_AO", "B7_LB"}
	case "Q2", "Q3", "Q4":
		return []string{"X2_L", "X3_A", "X4_O", "X5_AO", "B3_LB"}
	case "Q6":
		return []string{"B1_A", "B5_LB", "E6_L", "X7_O", "X8_AO"}
	case "Q13":
		return []string{"B1_O", "B5_LB", "X16_A", "X17_L", "X8_AO"}
	}
	panic("xmark: unknown view " + viewName)
}

// DepthPaths is the Figure 22/23 series: the X1_L deletion target at
// decreasing depths. The paper's series starts at /site; deleting the
// document root is not representable in the store, so the series starts one
// level lower (recorded in EXPERIMENTS.md).
func DepthPaths() []string {
	return []string{
		"/site/people",
		"/site/people/person",
		"/site/people/person/name",
	}
}
