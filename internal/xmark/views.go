package xmark

import (
	"sort"

	"xivm/internal/pattern"
	"xivm/internal/view"
)

// viewSources defines the benchmark views in the paper's conjunctive
// XQuery dialect (Appendix A.6), simplified exactly as the paper simplifies
// the XMark originals to fit the view language.
var viewSources = map[string]string{
	// Q1: names of registered persons.
	"Q1": `let $auction := doc("auction.xml") return
for $b in $auction/site/people/person[@id]
return $b/name/text()`,

	// Q2: bid increases of open auctions.
	"Q2": `let $auction := doc("auction.xml") return
for $b in $auction/site/open_auctions/open_auction
return $b/bidder/increase`,

	// Q3: increases of auctions having a 4.50 increase.
	"Q3": `let $auction := doc("auction.xml") return
for $b in $auction/site/open_auctions/open_auction
where $b/bidder/increase/text() = "4.50"
return $b/bidder/increase/text()`,

	// Q4: increases of auctions bid on by person12.
	"Q4": `let $auction := doc("auction.xml") return
for $b in $auction/site/open_auctions/open_auction
where $b/bidder/personref[@person = "person12"]
return $b/bidder/increase/text()`,

	// Q6: all items, per region.
	"Q6": `let $auction := doc("auction.xml") return
for $b in $auction/site/regions, $i in $b//item
return $i`,

	// Q13: North-American item names and descriptions.
	"Q13": `let $auction := doc("auction.xml") return
for $i in $auction/site/regions/namerica/item
return $i/name/text(), $i/description`,

	// Q17: names of persons with a homepage.
	"Q17": `let $auction := doc("auction.xml") return
for $b in $auction/site/people/person[homepage]
return $b/name/text()`,
}

// ViewNames lists the benchmark views in canonical order.
func ViewNames() []string {
	out := make([]string, 0, len(viewSources))
	for n := range viewSources {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ViewSource returns the dialect text of a benchmark view.
func ViewSource(name string) string { return viewSources[name] }

// View compiles a benchmark view to its tree pattern. It panics on unknown
// names — the set is static.
func View(name string) *pattern.Pattern {
	src, ok := viewSources[name]
	if !ok {
		panic("xmark: unknown view " + name)
	}
	return view.MustCompile(src).Pattern
}

// AnnotationVariant selects the stored-attribute layout of the Q1 view
// variants used by the paper's Figure 24 experiment. All variants store IDs
// on all nodes; they differ in where val and cont are stored.
type AnnotationVariant string

// The Figure 24 variants.
const (
	VariantIDs          AnnotationVariant = "IDs"
	VariantVCLeaf       AnnotationVariant = "VC Leaf"
	VariantVCRoot       AnnotationVariant = "VC Root"
	VariantVCAllButRoot AnnotationVariant = "VC All Nodes but Root"
	VariantVCAll        AnnotationVariant = "VC All Nodes"
)

// AnnotationVariants lists the Figure 24 variants in the paper's order.
func AnnotationVariants() []AnnotationVariant {
	return []AnnotationVariant{VariantIDs, VariantVCLeaf, VariantVCRoot, VariantVCAllButRoot, VariantVCAll}
}

// Q1Variant builds the Figure 24 view variant: the pattern
// /site/people/person[@id]/name with IDs everywhere and val+cont per the
// variant.
func Q1Variant(v AnnotationVariant) *pattern.Pattern {
	base := pattern.MustParse(`/site{ID}/people{ID}/person{ID}[/@id{ID}]/name{ID}`)
	vc := pattern.StoreVal | pattern.StoreCont
	return base.Clone(func(i int, s pattern.Store) pattern.Store {
		switch v {
		case VariantVCLeaf:
			if i == base.Size()-1 {
				return s | vc
			}
		case VariantVCRoot:
			if i == 0 {
				return s | vc
			}
		case VariantVCAllButRoot:
			if i != 0 {
				return s | vc
			}
		case VariantVCAll:
			return s | vc
		}
		return s
	})
}
