package xmark

import (
	"fmt"
	"strings"
)

// GenerateSmall produces a compact XMark-style document (a few KB) from a
// seed, for differential and fuzz testing: every section the full generator
// emits is present, but entity counts are drawn small so randomized update
// workloads hit meaningfully overlapping regions. Person counts straddle 12
// so the Q4 view's person12 predicate is sometimes satisfiable and
// sometimes vacuous. Same seed, same document, on every platform.
func GenerateSmall(seed uint64) string {
	r := newRng(seed)
	var b strings.Builder
	b.Grow(8 << 10)
	b.WriteString("<site>")

	nCategories := 2 + r.intn(3)
	b.WriteString("<categories>")
	for i := 0; i < nCategories; i++ {
		writeCategory(&b, r, i)
	}
	b.WriteString("</categories>")
	b.WriteString("<catgraph>")
	for i := 0; i < nCategories; i++ {
		fmt.Fprintf(&b, `<edge from="category%d" to="category%d"/>`, i, r.intn(nCategories))
	}
	b.WriteString("</catgraph>")

	nPersons := 3 + r.intn(12)
	b.WriteString("<people>")
	for i := 0; i < nPersons; i++ {
		writePerson(&b, r, i)
	}
	b.WriteString("</people>")

	// Two regions keep the document small while leaving /site/regions/*
	// wildcard steps with real branching.
	nItems := 0
	b.WriteString("<regions>")
	for _, reg := range []string{"namerica", "europe"} {
		b.WriteString("<" + reg + ">")
		for k := 1 + r.intn(3); k > 0; k-- {
			writeItem(&b, r, nItems)
			nItems++
		}
		b.WriteString("</" + reg + ">")
	}
	b.WriteString("</regions>")

	nAuctions := 1 + r.intn(4)
	b.WriteString("<open_auctions>")
	for i := 0; i < nAuctions; i++ {
		writeAuction(&b, r, i, nPersons, nItems)
	}
	b.WriteString("</open_auctions>")

	b.WriteString("<closed_auctions>")
	for k := 1 + r.intn(2); k > 0; k-- {
		writeClosedAuction(&b, r, nPersons, nItems)
	}
	b.WriteString("</closed_auctions>")

	b.WriteString("</site>")
	return b.String()
}
