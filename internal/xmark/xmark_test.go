package xmark

import (
	"strings"
	"testing"

	"xivm/internal/core"
	"xivm/internal/pattern"
	"xivm/internal/update"
	"xivm/internal/xmltree"
	"xivm/internal/xpath"
)

func genDoc(t *testing.T, bytes int, seed uint64) *xmltree.Document {
	t.Helper()
	d, err := xmltree.ParseString(Generate(Config{TargetBytes: bytes, Seed: seed}))
	if err != nil {
		t.Fatalf("generated document does not parse: %v", err)
	}
	return d
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{TargetBytes: 50 << 10, Seed: 7})
	b := Generate(Config{TargetBytes: 50 << 10, Seed: 7})
	if a != b {
		t.Fatal("generator not deterministic")
	}
	c := Generate(Config{TargetBytes: 50 << 10, Seed: 8})
	if a == c {
		t.Fatal("seed has no effect")
	}
}

// TestGenerateSmall: the differential-testing generator is deterministic,
// seed-sensitive, small, and yields documents every benchmark view accepts.
func TestGenerateSmall(t *testing.T) {
	for seed := uint64(0); seed < 25; seed++ {
		src := GenerateSmall(seed)
		if src != GenerateSmall(seed) {
			t.Fatalf("seed %d: not deterministic", seed)
		}
		if len(src) > 32<<10 {
			t.Fatalf("seed %d: %d bytes is not small", seed, len(src))
		}
		d, err := xmltree.ParseString(src)
		if err != nil {
			t.Fatalf("seed %d: does not parse: %v", seed, err)
		}
		e := core.NewEngine(d, core.Options{})
		for _, name := range ViewNames() {
			if _, err := e.AddView(name, View(name)); err != nil {
				t.Fatalf("seed %d view %s: %v", seed, name, err)
			}
		}
	}
	if GenerateSmall(1) == GenerateSmall(2) {
		t.Fatal("seed has no effect")
	}
}

func TestGenerateSizeScaling(t *testing.T) {
	small := len(Generate(Config{TargetBytes: 50 << 10, Seed: 1}))
	large := len(Generate(Config{TargetBytes: 500 << 10, Seed: 1}))
	if small < 40<<10 || small > 80<<10 {
		t.Fatalf("small size %d", small)
	}
	if large < 400<<10 || large > 700<<10 {
		t.Fatalf("large size %d", large)
	}
}

func TestGeneratedShape(t *testing.T) {
	d := genDoc(t, 100<<10, 42)
	counts := map[string]int{}
	for _, path := range []string{
		"/site/people/person", "/site/regions/namerica/item",
		"/site/open_auctions/open_auction", "//bidder/increase",
		"/site/people/person[phone or homepage]",
		"/site/people/person[profile/@income]",
		"//item[description]",
	} {
		counts[path] = len(xpath.Eval(d, xpath.MustParse(path)))
	}
	for path, n := range counts {
		if n == 0 {
			t.Errorf("no matches for %s", path)
		}
	}
	// The Q3 selectivity hook: some auctions must have a 4.50 increase.
	if n := len(xpath.Eval(d, xpath.MustParse(`//open_auction[bidder/increase="4.50"]`))); n == 0 {
		t.Error("no 4.50 increases generated")
	}
}

func TestAllViewsCompileAndMaterialize(t *testing.T) {
	d := genDoc(t, 80<<10, 3)
	e := core.NewEngine(d, core.Options{})
	for _, name := range ViewNames() {
		p := View(name)
		mv, err := e.AddView(name, p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if mv.View.Len() == 0 && name != "Q4" {
			// Q4 may be empty on tiny documents (person12 must have bid).
			t.Errorf("view %s empty on generated data", name)
		}
	}
}

func TestAllUpdatesParseAndAffectViews(t *testing.T) {
	for _, name := range ViewNames() {
		for _, un := range ViewUpdates(name) {
			u := UpdateByName(un)
			if u.InsertStatement().Kind != update.Insert {
				t.Fatalf("%s insert form wrong", un)
			}
			if u.DeleteStatement().Kind != update.Delete {
				t.Fatalf("%s delete form wrong", un)
			}
		}
	}
}

// TestWorkloadMaintenanceCorrect runs every (view, update) pair of the
// paper's Figures 20/21 on a small document and checks maintained views
// against recomputation, for inserts and deletes.
func TestWorkloadMaintenanceCorrect(t *testing.T) {
	src := Generate(Config{TargetBytes: 60 << 10, Seed: 11})
	for _, vname := range ViewNames() {
		for _, un := range ViewUpdates(vname) {
			for _, del := range []bool{false, true} {
				d, err := xmltree.ParseString(src)
				if err != nil {
					t.Fatal(err)
				}
				e := core.NewEngine(d, core.Options{})
				mv, err := e.AddView(vname, View(vname))
				if err != nil {
					t.Fatal(err)
				}
				u := UpdateByName(un)
				st := u.InsertStatement()
				if del {
					st = u.DeleteStatement()
				}
				if _, err := e.ApplyStatement(st); err != nil {
					t.Fatalf("%s/%s del=%v: %v", vname, un, del, err)
				}
				if !e.CheckView(mv) {
					t.Fatalf("%s/%s del=%v: view diverged from recomputation", vname, un, del)
				}
			}
		}
	}
}

func TestQ1Variants(t *testing.T) {
	for _, v := range AnnotationVariants() {
		p := Q1Variant(v)
		if p.Size() != 5 {
			t.Fatalf("%s size %d", v, p.Size())
		}
		for _, n := range p.Nodes {
			if !n.Store.Has(pattern.StoreID) {
				t.Fatalf("%s: node without ID", v)
			}
		}
	}
	if Q1Variant(VariantIDs).ContValIndexes() != nil {
		t.Fatal("IDs variant must store no val/cont")
	}
	if got := len(Q1Variant(VariantVCAll).ContValIndexes()); got != 5 {
		t.Fatalf("VC All cvn = %d", got)
	}
	if got := Q1Variant(VariantVCRoot).ContValIndexes(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("VC Root cvn = %v", got)
	}
}

func TestDepthPathsParse(t *testing.T) {
	for _, p := range DepthPaths() {
		if _, err := xpath.Parse(p); err != nil {
			t.Fatalf("%s: %v", p, err)
		}
	}
}

func TestViewSourcesRoundTrip(t *testing.T) {
	for _, n := range ViewNames() {
		if !strings.Contains(ViewSource(n), "return") {
			t.Fatalf("source for %s looks wrong", n)
		}
	}
}

func TestGeneratedFullSchema(t *testing.T) {
	d := genDoc(t, 120<<10, 9)
	for _, path := range []string{
		"/site/categories/category",
		"/site/categories/category/name",
		"/site/catgraph/edge",
		"/site/closed_auctions/closed_auction",
		"/site/closed_auctions/closed_auction/price",
	} {
		if n := len(xpath.Eval(d, xpath.MustParse(path))); n == 0 {
			t.Errorf("no matches for %s", path)
		}
	}
	// Section order matches XMark: categories, catgraph, people, regions,
	// open_auctions, closed_auctions.
	var order []string
	for _, c := range d.Root.ElementChildren() {
		order = append(order, c.Label)
	}
	want := []string{"categories", "catgraph", "people", "regions", "open_auctions", "closed_auctions"}
	if len(order) != len(want) {
		t.Fatalf("sections %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("sections %v", order)
		}
	}
}

func TestCatgraphEdgesReferenceCategories(t *testing.T) {
	d := genDoc(t, 60<<10, 2)
	cats := map[string]bool{}
	for _, c := range xpath.Eval(d, xpath.MustParse("/site/categories/category/@id")) {
		cats[c.Value] = true
	}
	for _, e := range xpath.Eval(d, xpath.MustParse("/site/catgraph/edge/@from")) {
		if !cats[e.Value] {
			t.Fatalf("edge from unknown category %q", e.Value)
		}
	}
}
