package core

import (
	"time"

	"xivm/internal/algebra"

	"xivm/internal/store"
	"xivm/internal/update"
)

// FullRecompute is the Section 6.5 baseline: it applies the statement to
// the document and rebuilds every view from scratch on the modified
// document instead of propagating incrementally. It returns the time spent
// recomputing (excluding target lookup and the document update). Replace
// statements run both of their stages before the single recomputation.
func (e *Engine) FullRecompute(st *update.Statement) (time.Duration, error) {
	if st.Kind == update.Replace {
		delPul, insPul, err := update.ExpandReplace(e.Doc, st)
		if err != nil {
			return 0, err
		}
		if _, err := update.Apply(e.Doc, e.Store, delPul); err != nil {
			return 0, err
		}
		if _, err := update.Apply(e.Doc, e.Store, insPul); err != nil {
			return 0, err
		}
		return e.recomputeAll(), nil
	}
	pul, err := update.ComputePUL(e.Doc, st)
	if err != nil {
		return 0, err
	}
	if _, err := update.Apply(e.Doc, e.Store, pul); err != nil {
		return 0, err
	}
	return e.recomputeAll(), nil
}

func (e *Engine) recomputeAll() time.Duration {
	e.bumpVersion()
	start := time.Now()
	for _, mv := range e.Views {
		// A from-scratch recomputation has no incremental infrastructure to
		// lean on: it re-scans the modified document for every view, as the
		// paper's baseline re-evaluates v over d′.
		rows := algebra.Materialize(e.Doc, mv.Pattern)
		mv.View = store.NewMaterializedView(mv.Pattern, rows)
		mv.Lattice = e.newLattice(mv.Pattern)
	}
	return time.Since(start)
}
