// Package core implements the paper's contribution: algebraic, set-oriented
// propagation of statement-level XML updates to materialized tree-pattern
// views. It provides the union-term machinery with its pruning rules
// (Propositions 3.3, 3.6, 3.8 for insertions; 4.2, 4.3, 4.7 for deletions),
// the snowcap lattice with the Snowcaps and Leaves materialization policies,
// and the propagation algorithms PINT (Alg. 1), CD+ (Alg. 2), ET-INS
// (Alg. 3), PIMT (Alg. 4), PDDT (Alg. 5) and the combined PDDT/MT (Alg. 6),
// together with a full-recomputation baseline and the IVMA node-at-a-time
// competitor used in the experiments.
//
// Engines are observable: every propagation phase, prune decision, join and
// row mutation is recorded in an obs.Metrics registry (Engine.Metrics), and
// an optional obs.Tracer receives span start/finish events per statement,
// per phase and per view. The context-aware entry points (ApplyStatementCtx,
// ApplyPULCtx) honor cancellation between phases and between views; a
// cancelled pass never leaves a view inconsistent (see applyPUL).
package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"xivm/internal/algebra"
	"xivm/internal/obs"
	"xivm/internal/pattern"
	"xivm/internal/store"
	"xivm/internal/update"
	"xivm/internal/xmltree"
)

// Policy selects which lattice nodes are materialized (Section 6.7).
type Policy uint8

const (
	// PolicySnowcaps materializes one snowcap per lattice level (plus the
	// leaves, which are the canonical relations themselves).
	PolicySnowcaps Policy = iota
	// PolicyLeaves materializes nothing beyond the canonical relations and
	// recomputes internal joins on the fly.
	PolicyLeaves
	// PolicyCost materializes the snowcaps selected by the cost-based
	// optimizer of costmodel.go, driven by Options.Profile.
	PolicyCost
)

func (p Policy) String() string {
	switch p {
	case PolicyLeaves:
		return "leaves"
	case PolicyCost:
		return "cost"
	}
	return "snowcaps"
}

// Options tunes an Engine; the zero value is the paper's default
// configuration (snowcap policy, structural joins, all pruning on).
// Prefer the functional-option constructor New (options.go) over poking
// fields directly — the struct form is kept for the zero-value default and
// for serialization-style construction, but new fields are only guaranteed
// to get a matching With* option.
type Options struct {
	Policy Policy
	// Join overrides the physical join (nil = Dewey structural join).
	Join algebra.JoinFunc
	// DisableDataPruning turns off the inserted-data-driven pruning of
	// Proposition 3.6 (ablation).
	DisableDataPruning bool
	// DisableIDPruning turns off the inserted-ID-driven pruning of
	// Propositions 3.8 / 4.7 (ablation).
	DisableIDPruning bool
	// Profile drives PolicyCost's snowcap selection (nil = uniform).
	Profile UpdateProfile
	// IndependencePrecheck, when non-nil, is consulted per view before
	// propagation: statements it declares independent of a view skip that
	// view entirely (see internal/independence for an implementation).
	IndependencePrecheck func(p *pattern.Pattern, st *update.Statement) bool
	// Parallel propagates each statement to all views concurrently. Views
	// are independent during propagation (the document and canonical
	// relations are read-only while views update), so this is safe and
	// scales with the number of views.
	Parallel bool
	// SharedSnowcaps deduplicates snowcap materializations across views
	// (Section 3.5's global optimization): identical sub-patterns are
	// materialized once and maintained once per statement. Incompatible
	// with deferred (Lazy) propagation.
	SharedSnowcaps bool
	// Metrics is the registry the engine records into; nil selects the
	// process-wide obs.Default(). Pass a private registry (obs.New()) to
	// isolate one engine's counters.
	Metrics *obs.Metrics
	// Journal, when non-nil, is invoked with every statement BEFORE the
	// document or any view is mutated — the write-ahead discipline. A
	// journal error aborts the statement with no effect. Statements that
	// are journaled and then rejected by the engine (bad target, parse-time
	// type error surfacing at PUL computation) fail deterministically, so a
	// replay rejects them identically; the durability layer counts them as
	// skipped. Both ApplyStatement(Ctx) and Lazy.Apply honor the hook.
	Journal func(st *update.Statement) error
	// Tracer, when non-nil, receives span start/finish events per
	// statement, per phase and per view. Implementations must be safe for
	// concurrent use when Parallel is set.
	Tracer obs.Tracer
	// OnApplied, when non-nil, is invoked AFTER each batch of source
	// statements has landed — document mutated, every view maintained, and
	// the engine version advanced past them — with the version that now
	// covers the batch. It is the delta stream consumers subscribe to for
	// invalidation: a statement-count-contiguous sequence of calls (the
	// version delta between consecutive calls equals len(sts)) proves the
	// consumer has vetted every write; any gap (version bumps from
	// recomputation repairs, direct ApplyPUL, lazy flushes) tells it to
	// discard everything it derived. Replace statements are reported once
	// per half (two calls, same statement). The hook runs on the applying
	// goroutine, before the caller can publish the new state.
	OnApplied func(sts []*update.Statement, version uint64)
}

// Engine owns a document, its store, and a set of maintained views.
type Engine struct {
	Doc   *xmltree.Document
	Store *store.Store
	Views []*ManagedView
	pool  *Pool
	opts  Options
	join  algebra.JoinFunc // physical join, instrumented
	m     *engineMetrics
	proj  algebra.ProjectCounters

	// version counts successfully applied mutation batches (statements,
	// PULs, deferred applies, baseline recomputations). It identifies
	// document states: two engines fed the same statement sequence reach
	// the same version at the same state, which is what lets snapshot
	// consumers key expected view contents by version. Atomic so readers
	// of a published Snapshot can compare against the live counter.
	version atomic.Uint64
}

// Version returns the number of mutation batches successfully applied to
// the document since construction. It advances exactly once per applied
// statement for inserts and deletes and twice for replaces (whose delete
// and insert halves are separate batches).
func (e *Engine) Version() uint64 { return e.version.Load() }

// bumpVersion marks one mutation batch applied; every path that mutates
// the document calls it after the document and store are consistent.
func (e *Engine) bumpVersion() { e.version.Add(1) }

// SetVersion overwrites the version counter. It exists for state restore
// paths — WAL recovery and replication catch-up seed a freshly built engine
// with the version recorded in the checkpoint manifest, so that replaying
// the same statement suffix reproduces not just the same document and views
// but the same version numbers a reader of the original engine saw. Never
// call it on an engine that is already serving.
func (e *Engine) SetVersion(v uint64) { e.version.Store(v) }

// ManagedView is one materialized view under maintenance.
type ManagedView struct {
	Name    string
	Pattern *pattern.Pattern
	View    *store.View
	Lattice *Lattice
	// insertTerms / deleteTerms are developed once, when the view is
	// created (first step of Algorithm 1), and pruned per update.
	insertTerms []uint64
	deleteTerms []uint64
}

// NewEngine indexes the document and returns an engine with no views.
func NewEngine(doc *xmltree.Document, opts Options) *Engine {
	reg := opts.Metrics
	if reg == nil {
		reg = obs.Default()
	}
	e := &Engine{Doc: doc, Store: store.New(doc), opts: opts}
	e.m = newEngineMetrics(reg)
	e.proj = algebra.NewProjectCounters(reg)
	e.Store.SetMetrics(reg)
	base := opts.Join
	if base == nil {
		base = algebra.StructuralJoin
	}
	e.join = algebra.InstrumentJoin(base, algebra.NewJoinCounters(reg))
	if opts.SharedSnowcaps {
		e.pool = NewPool(e.Store, e.Join())
	}
	return e
}

// Metrics returns the registry the engine records into.
func (e *Engine) Metrics() *obs.Metrics { return e.m.reg }

// span starts a tracer span, returning its (nil-safe) finish function.
func (e *Engine) span(name string) func() { return obs.StartSpan(e.opts.Tracer, name) }

// SharedPool returns the cross-view snowcap pool, or nil when sharing is
// off.
func (e *Engine) SharedPool() *Pool { return e.pool }

// newLattice builds a view's lattice under the engine's policy.
func (e *Engine) newLattice(p *pattern.Pattern) *Lattice {
	var masks []uint64
	switch {
	case e.opts.Policy == PolicyCost:
		masks = ChooseSnowcaps(p, e.Store, e.opts.Profile)
	case e.opts.Policy == PolicySnowcaps:
		masks = p.SnowcapChain()
	}
	if e.pool != nil && len(masks) > 0 {
		return NewLatticePooled(p, masks, e.pool, e.Store, e.Join())
	}
	if e.opts.Policy == PolicyCost {
		return NewLatticeMasks(p, masks, e.Store, e.Join())
	}
	return NewLattice(p, e.opts.Policy, e.Store, e.Join())
}

// Join returns the engine's physical join function (the configured join
// wrapped with the algebra.join.* counters).
func (e *Engine) Join() algebra.JoinFunc { return e.join }

// AddView materializes a view over the current document and prepares its
// maintenance structures (term expansion and snowcap lattice).
func (e *Engine) AddView(name string, p *pattern.Pattern) (*ManagedView, error) {
	if len(p.StoredIndexes()) == 0 {
		return nil, fmt.Errorf("core: view %s stores nothing", name)
	}
	in := e.Store.Inputs(p)
	tuples := algebra.EvalPattern(p, in, e.Join())
	rows := algebra.ProjectStored(p, tuples, e.Doc)
	return e.installView(name, p, rows)
}

// AddViewRows installs a view from previously materialized rows (e.g. a
// snapshot decoded with store.DecodeSnapshot) without re-evaluating the
// pattern. The caller asserts the rows reflect the engine's current
// document; the auxiliary lattice is rebuilt from the store.
func (e *Engine) AddViewRows(name string, p *pattern.Pattern, rows []algebra.Row) (*ManagedView, error) {
	if len(p.StoredIndexes()) == 0 {
		return nil, fmt.Errorf("core: view %s stores nothing", name)
	}
	return e.installView(name, p, rows)
}

func (e *Engine) installView(name string, p *pattern.Pattern, rows []algebra.Row) (*ManagedView, error) {
	mv := &ManagedView{
		Name:        name,
		Pattern:     p,
		View:        store.NewMaterializedView(p, rows),
		insertTerms: InsertTerms(p),
		deleteTerms: DeleteTerms(p),
	}
	// Development-time pruning accounting: of the 2^k−1 candidate union
	// terms, Propositions 3.3 (insert) and 4.2 (delete) keep only the
	// upward-closed R-masks.
	candidates := int64(p.FullMask()) // 2^k − 1
	e.m.pruneProp33.Add(candidates - int64(len(mv.insertTerms)))
	e.m.pruneProp42.Add(candidates - int64(len(mv.deleteTerms)))
	mv.Lattice = e.newLattice(p)
	e.Views = append(e.Views, mv)
	return mv, nil
}

// Timings is the legacy per-phase breakdown struct reported by the paper's
// experiments. It is now a thin, fixed-field view over the phase-keyed
// obs.Breakdown that reports carry natively.
type Timings struct {
	FindTargets   time.Duration // locate target nodes (Saxon's role)
	ComputeDelta  time.Duration // build the ∆+ / ∆− tables (CD+/CD−)
	GetExpression time.Duration // unfold + prune the update expression
	ExecuteUpdate time.Duration // evaluate terms, apply to the view
	UpdateLattice time.Duration // refresh auxiliary structures
}

// TimingsOf projects a phase-keyed breakdown onto the legacy struct.
func TimingsOf(b obs.Breakdown) Timings {
	return Timings{
		FindTargets:   b.Get(obs.PhaseFindTargets),
		ComputeDelta:  b.Get(obs.PhaseComputeDelta),
		GetExpression: b.Get(obs.PhaseGetExpression),
		ExecuteUpdate: b.Get(obs.PhaseExecuteUpdate),
		UpdateLattice: b.Get(obs.PhaseUpdateLattice),
	}
}

// Breakdown converts the legacy struct back to its phase-keyed form.
func (t Timings) Breakdown() obs.Breakdown {
	return obs.Breakdown{
		obs.PhaseFindTargets:   t.FindTargets,
		obs.PhaseComputeDelta:  t.ComputeDelta,
		obs.PhaseGetExpression: t.GetExpression,
		obs.PhaseExecuteUpdate: t.ExecuteUpdate,
		obs.PhaseUpdateLattice: t.UpdateLattice,
	}
}

// Total sums all phases.
func (t Timings) Total() time.Duration {
	return t.FindTargets + t.ComputeDelta + t.GetExpression + t.ExecuteUpdate + t.UpdateLattice
}

// Add accumulates another breakdown.
func (t *Timings) Add(o Timings) {
	t.FindTargets += o.FindTargets
	t.ComputeDelta += o.ComputeDelta
	t.GetExpression += o.GetExpression
	t.ExecuteUpdate += o.ExecuteUpdate
	t.UpdateLattice += o.UpdateLattice
}

// ViewReport describes the effect of one statement on one view.
type ViewReport struct {
	View *ManagedView
	// Phases is the per-view propagation cost, keyed by obs.Phase* names.
	// Target location is shared across views and lives on the Report
	// (Report.FindTargets), so it never appears here.
	Phases        obs.Breakdown
	TermsTotal    int // terms before data-driven pruning
	TermsSurvived int // terms actually evaluated
	RowsAdded     int
	RowsRemoved   int
	RowsModified  int
	// PredFallback reports that the update flipped a value predicate on an
	// existing node, forcing this view to be recomputed (see predflip.go).
	PredFallback bool
	// Skipped reports that the independence precheck proved the statement
	// cannot affect this view, so propagation was skipped.
	Skipped bool
	// Cancelled reports that context cancellation aborted this view's
	// algebraic propagation; the engine repaired the view by recomputation
	// before returning, so it is stale-proof but the incremental path was
	// not exercised.
	Cancelled bool
	// Panicked reports that this view's propagation panicked (a bug in a
	// custom join, a corrupted lattice). The panic is contained to the
	// view: the engine repaired it by recomputation before returning, so a
	// long-lived writer loop survives a poisoned propagation path.
	Panicked bool
}

// Timings returns the view's breakdown in the legacy fixed-field form
// (FindTargets is report-level and therefore zero here).
func (vr *ViewReport) Timings() Timings { return TimingsOf(vr.Phases) }

// Report describes the effect of one statement on the engine.
type Report struct {
	Statement *update.Statement
	Targets   int
	// FindTargets is the cost of locating the statement's target nodes.
	// It is paid once per statement regardless of the number of views,
	// which is why it lives here and not in the per-view breakdowns.
	FindTargets time.Duration
	Views       []ViewReport
}

// Breakdown returns the statement's phase-keyed cost: the sum of every
// view's phases plus the shared target-location cost, counted exactly
// once.
func (r *Report) Breakdown() obs.Breakdown {
	var b obs.Breakdown
	for i := range r.Views {
		b = b.Add(r.Views[i].Phases)
	}
	return b.Set(obs.PhaseFindTargets, r.FindTargets)
}

// Timings is the legacy fixed-field view over Breakdown.
func (r *Report) Timings() Timings { return TimingsOf(r.Breakdown()) }

// ApplyStatement runs one update statement: it computes the pending update
// list, applies the update to the document, and incrementally propagates it
// to every managed view (PINT/PIMT for insertions, PDDT/PDMT for
// deletions). The document and store are updated exactly once.
func (e *Engine) ApplyStatement(st *update.Statement) (*Report, error) {
	return e.ApplyStatementCtx(context.Background(), st)
}

// ApplyStatementCtx is ApplyStatement with cancellation: ctx is checked
// before target location, before the document is mutated, between the
// delete and insert halves of a replace, and between views during
// propagation. Cancellation before the document mutation aborts with no
// effect; cancellation later completes the mutation, repairs any
// not-yet-propagated view by recomputation, and returns ctx.Err() — the
// engine is always left consistent.
func (e *Engine) ApplyStatementCtx(ctx context.Context, st *update.Statement) (*Report, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if e.opts.Journal != nil {
		if err := e.opts.Journal(st); err != nil {
			return nil, err
		}
	}
	endStatement := e.span("apply:" + st.Kind.String())
	defer endStatement()
	t0 := time.Now()
	if st.Kind == update.Replace {
		e.m.stReplace.Inc()
		// Replace = the deletion stage then the insertion stage, each a
		// full algebraic propagation; reports are merged.
		endFind := e.span(obs.PhaseFindTargets)
		delPul, insPul, err := update.ExpandReplace(e.Doc, st)
		endFind()
		if err != nil {
			return nil, err
		}
		findTargets := time.Since(t0)
		e.m.phase[obs.PhaseFindTargets].Observe(findTargets)
		e.m.targets.Add(int64(delPul.Targets()))
		if err := ctx.Err(); err != nil {
			return nil, err // nothing mutated yet: clean abort
		}
		delRep, err := e.applyPUL(ctx, delPul, nil)
		if err != nil {
			return nil, err
		}
		e.notifyApplied(st)
		if err := ctx.Err(); err != nil {
			// The delete half is fully applied and propagated; the insert
			// half never starts. Views are consistent with the half-updated
			// document, so this is a clean mid-stream abort.
			return nil, err
		}
		insRep, err := e.applyPUL(ctx, insPul, nil)
		if err != nil {
			return nil, err
		}
		e.notifyApplied(st)
		rep := &Report{Statement: st, Targets: delPul.Targets(), FindTargets: findTargets}
		for i := range delRep.Views {
			vr := delRep.Views[i]
			ivr := insRep.Views[i]
			vr.Phases = vr.Phases.Add(ivr.Phases)
			vr.RowsAdded += ivr.RowsAdded
			vr.RowsRemoved += ivr.RowsRemoved
			vr.RowsModified += ivr.RowsModified
			vr.TermsTotal += ivr.TermsTotal
			vr.TermsSurvived += ivr.TermsSurvived
			vr.PredFallback = vr.PredFallback || ivr.PredFallback
			vr.Cancelled = vr.Cancelled || ivr.Cancelled
			rep.Views = append(rep.Views, vr)
		}
		return rep, nil
	}
	if st.Kind == update.Insert {
		e.m.stInsert.Inc()
	} else {
		e.m.stDelete.Inc()
	}
	endFind := e.span(obs.PhaseFindTargets)
	pul, err := update.ComputePUL(e.Doc, st)
	endFind()
	if err != nil {
		return nil, err
	}
	findTargets := time.Since(t0)
	e.m.phase[obs.PhaseFindTargets].Observe(findTargets)
	e.m.targets.Add(int64(pul.Targets()))

	// Optional static independence fast path: views the precheck proves
	// unaffected skip propagation for this statement.
	var skip map[*ManagedView]bool
	if e.opts.IndependencePrecheck != nil {
		for _, mv := range e.Views {
			if e.opts.IndependencePrecheck(mv.Pattern, st) {
				if skip == nil {
					skip = map[*ManagedView]bool{}
				}
				skip[mv] = true
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err // nothing mutated yet: clean abort
	}

	rep, err := e.applyPUL(ctx, pul, skip)
	if err != nil {
		return nil, err
	}
	e.notifyApplied(st)
	rep.Statement = st
	rep.FindTargets = findTargets
	if err := ctx.Err(); err != nil {
		return rep, err
	}
	return rep, nil
}

// notifyApplied reports one landed statement to the OnApplied hook with
// the version that now covers it.
func (e *Engine) notifyApplied(st *update.Statement) {
	if e.opts.OnApplied != nil {
		e.opts.OnApplied([]*update.Statement{st}, e.Version())
	}
}

// ApplyPUL propagates an already-computed pending update list: it applies
// the node-level operations to the document and incrementally maintains
// every view. This is the entry point used when PULs arrive pre-optimized
// (Section 5) rather than from a statement.
func (e *Engine) ApplyPUL(pul *update.PUL) (*Report, error) {
	return e.ApplyPULCtx(context.Background(), pul)
}

// ApplyPULCtx is ApplyPUL with cancellation, under the same contract as
// ApplyStatementCtx: once the document is mutated, cancelled views are
// repaired by recomputation and ctx.Err() is returned alongside the
// report.
func (e *Engine) ApplyPULCtx(ctx context.Context, pul *update.PUL) (*Report, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rep, err := e.applyPUL(ctx, pul, nil)
	if err != nil {
		return rep, err
	}
	return rep, ctx.Err()
}

func (e *Engine) applyPUL(ctx context.Context, pul *update.PUL, skip map[*ManagedView]bool) (*Report, error) {
	// Snapshot σ membership of predicate-labeled ancestors of the targets;
	// if the update flips any of them (text added or removed below an
	// existing node a view predicate tests), the ∆ algebra cannot express
	// the change and the affected view falls back to recomputation.
	probes := e.snapshotPredicates(pul)

	rep := &Report{Targets: pul.Targets()}
	switch pul.Kind {
	case update.Insert:
		// Apply to the document only: the canonical relations must keep
		// their pre-update state while terms are evaluated; they are synced
		// during the lattice-update phase.
		applied, err := update.Apply(e.Doc, nil, pul)
		if err != nil {
			return nil, err
		}
		rep.Views = e.propagateAll(ctx, skip, func(mv *ManagedView) ViewReport {
			return e.propagateInsert(mv, pul, applied)
		})
		if e.pool != nil {
			// Shared snowcaps are maintained once per statement, against
			// the pre-sync relations (like each view's own lattice).
			e.pool.ApplyInsert(applied.InsertedRoots)
		}
		e.Store.AddSubtrees(applied.InsertedRoots)
	case update.Delete:
		applied, err := update.Apply(e.Doc, e.Store, pul)
		if err != nil {
			return nil, err
		}
		if e.pool != nil {
			e.pool.ApplyDelete(applied.DeletedRoots)
		}
		rep.Views = e.propagateAll(ctx, skip, func(mv *ManagedView) ViewReport {
			return e.propagateDelete(mv, pul, applied)
		})
	}
	// Repair passes run against the now-synced store: first views whose
	// algebraic propagation was cancelled or panicked mid-stream, then
	// views whose predicates flipped. All end in a consistent recomputed
	// state.
	for i := range rep.Views {
		if rep.Views[i].Cancelled {
			e.m.viewsCancelled.Inc()
			e.recomputeFallback(rep.Views[i].View)
		} else if rep.Views[i].Panicked {
			e.m.viewsPanicked.Inc()
			e.recomputeFallback(rep.Views[i].View)
		}
	}
	for mv := range flippedViews(probes) {
		e.m.predFlips.Inc()
		e.recomputeFallback(mv)
		for i := range rep.Views {
			if rep.Views[i].View == mv {
				rep.Views[i].PredFallback = true
			}
		}
	}
	for i := range rep.Views {
		e.m.recordView(&rep.Views[i])
	}
	e.bumpVersion()
	return rep, nil
}

// propagateAll runs one propagation function over every non-skipped view,
// concurrently when Options.Parallel is set. The document and store must be
// read-only for the duration (guaranteed by the ApplyPUL phase ordering).
// Context cancellation is honored between views: a view whose propagation
// has not started when ctx is cancelled is marked Cancelled instead of
// being propagated (the caller repairs it afterwards). A panic inside one
// view's propagation is likewise contained — the view is marked Panicked
// and repaired by recomputation — so a single poisoned view cannot take
// down the whole apply path (or, under Parallel, the entire process via an
// unrecovered goroutine panic).
func (e *Engine) propagateAll(ctx context.Context, skip map[*ManagedView]bool, f func(*ManagedView) ViewReport) []ViewReport {
	propagate := func(mv *ManagedView) (vr ViewReport) {
		if ctx.Err() != nil {
			return ViewReport{View: mv, Cancelled: true}
		}
		defer func() {
			if r := recover(); r != nil {
				vr = ViewReport{View: mv, Panicked: true}
			}
		}()
		end := e.span("view:" + mv.Name)
		defer end()
		return f(mv)
	}
	out := make([]ViewReport, len(e.Views))
	if !e.opts.Parallel || len(e.Views) < 2 {
		for i, mv := range e.Views {
			if skip[mv] {
				e.m.viewsSkipped.Inc()
				out[i] = ViewReport{View: mv, Skipped: true}
				continue
			}
			out[i] = propagate(mv)
		}
		return out
	}
	var wg sync.WaitGroup
	for i, mv := range e.Views {
		if skip[mv] {
			e.m.viewsSkipped.Inc()
			out[i] = ViewReport{View: mv, Skipped: true}
			continue
		}
		wg.Add(1)
		go func(i int, mv *ManagedView) {
			defer wg.Done()
			out[i] = propagate(mv)
		}(i, mv)
	}
	wg.Wait()
	return out
}

// deltaInputs builds per-pattern-node ∆ inputs from subtree roots: the CD+
// / CD− delta tables, σ-filtered by each node's value predicate, with the
// root-anchor filter applied (an inserted node can never be the document
// root, so a /-anchored pattern root always has an empty ∆).
func (e *Engine) deltaInputs(p *pattern.Pattern, roots []*xmltree.Node) algebra.Inputs {
	labels := make([]string, 0, p.Size())
	for _, n := range p.Nodes {
		labels = append(labels, n.Label)
	}
	tables := update.DeltaTables(roots, labels)
	in := make(algebra.Inputs, p.Size())
	for i, n := range p.Nodes {
		in[i] = algebra.Filter(tables[n.Label], n, e.Doc)
	}
	in[0] = algebra.FilterRootAnchor(p, in[0])
	return in
}

// evalTerm evaluates one union term: R-nodes (rmask) come from the lattice
// (materialized snowcap or on-the-fly joins over canonical relations),
// ∆-nodes from the delta inputs; the boundary edges become structural
// joins. Results are projected onto the view's stored nodes.
func (e *Engine) evalTerm(mv *ManagedView, rmask uint64, deltaIn algebra.Inputs) []algebra.Row {
	return e.evalTermFrom(mv, rmask, deltaIn, nil)
}

// evalTermFrom is evalTerm with explicit R inputs (rIn) for the lattice's
// on-the-fly blocks; nil means the store's current canonical relations.
// Deferred (lazy) flushing passes filtered inputs here.
func (e *Engine) evalTermFrom(mv *ManagedView, rmask uint64, deltaIn, rIn algebra.Inputs) []algebra.Row {
	p := mv.Pattern
	full := p.FullMask()
	dmask := full &^ rmask
	var block algebra.Block
	if rmask == 0 {
		block = algebra.EvalSubPattern(p, full, deltaIn, e.Join())
	} else {
		block = mv.Lattice.BlockFrom(rmask, rIn)
		forest, roots := algebra.EvalForest(p, dmask, deltaIn, e.Join())
		block = algebra.AttachForest(p, block, forest, roots, e.Join())
	}
	return algebra.ProjectBlockCounted(p, block, p.StoredIndexes(), e.Doc, e.proj)
}
