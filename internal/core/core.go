// Package core implements the paper's contribution: algebraic, set-oriented
// propagation of statement-level XML updates to materialized tree-pattern
// views. It provides the union-term machinery with its pruning rules
// (Propositions 3.3, 3.6, 3.8 for insertions; 4.2, 4.3, 4.7 for deletions),
// the snowcap lattice with the Snowcaps and Leaves materialization policies,
// and the propagation algorithms PINT (Alg. 1), CD+ (Alg. 2), ET-INS
// (Alg. 3), PIMT (Alg. 4), PDDT (Alg. 5) and the combined PDDT/MT (Alg. 6),
// together with a full-recomputation baseline and the IVMA node-at-a-time
// competitor used in the experiments.
package core

import (
	"fmt"
	"sync"
	"time"

	"xivm/internal/algebra"
	"xivm/internal/pattern"
	"xivm/internal/store"
	"xivm/internal/update"
	"xivm/internal/xmltree"
)

// Policy selects which lattice nodes are materialized (Section 6.7).
type Policy uint8

const (
	// PolicySnowcaps materializes one snowcap per lattice level (plus the
	// leaves, which are the canonical relations themselves).
	PolicySnowcaps Policy = iota
	// PolicyLeaves materializes nothing beyond the canonical relations and
	// recomputes internal joins on the fly.
	PolicyLeaves
	// PolicyCost materializes the snowcaps selected by the cost-based
	// optimizer of costmodel.go, driven by Options.Profile.
	PolicyCost
)

func (p Policy) String() string {
	switch p {
	case PolicyLeaves:
		return "leaves"
	case PolicyCost:
		return "cost"
	}
	return "snowcaps"
}

// Options tunes an Engine; the zero value is the paper's default
// configuration (snowcap policy, structural joins, all pruning on).
type Options struct {
	Policy Policy
	// Join overrides the physical join (nil = Dewey structural join).
	Join algebra.JoinFunc
	// DisableDataPruning turns off the inserted-data-driven pruning of
	// Proposition 3.6 (ablation).
	DisableDataPruning bool
	// DisableIDPruning turns off the inserted-ID-driven pruning of
	// Propositions 3.8 / 4.7 (ablation).
	DisableIDPruning bool
	// Profile drives PolicyCost's snowcap selection (nil = uniform).
	Profile UpdateProfile
	// IndependencePrecheck, when non-nil, is consulted per view before
	// propagation: statements it declares independent of a view skip that
	// view entirely (see internal/independence for an implementation).
	IndependencePrecheck func(p *pattern.Pattern, st *update.Statement) bool
	// Parallel propagates each statement to all views concurrently. Views
	// are independent during propagation (the document and canonical
	// relations are read-only while views update), so this is safe and
	// scales with the number of views.
	Parallel bool
	// SharedSnowcaps deduplicates snowcap materializations across views
	// (Section 3.5's global optimization): identical sub-patterns are
	// materialized once and maintained once per statement. Incompatible
	// with deferred (Lazy) propagation.
	SharedSnowcaps bool
}

// Engine owns a document, its store, and a set of maintained views.
type Engine struct {
	Doc   *xmltree.Document
	Store *store.Store
	Views []*ManagedView
	pool  *Pool
	opts  Options
}

// ManagedView is one materialized view under maintenance.
type ManagedView struct {
	Name    string
	Pattern *pattern.Pattern
	View    *store.View
	Lattice *Lattice
	// insertTerms / deleteTerms are developed once, when the view is
	// created (first step of Algorithm 1), and pruned per update.
	insertTerms []uint64
	deleteTerms []uint64
}

// NewEngine indexes the document and returns an engine with no views.
func NewEngine(doc *xmltree.Document, opts Options) *Engine {
	e := &Engine{Doc: doc, Store: store.New(doc), opts: opts}
	if opts.SharedSnowcaps {
		e.pool = NewPool(e.Store, e.Join())
	}
	return e
}

// SharedPool returns the cross-view snowcap pool, or nil when sharing is
// off.
func (e *Engine) SharedPool() *Pool { return e.pool }

// newLattice builds a view's lattice under the engine's policy.
func (e *Engine) newLattice(p *pattern.Pattern) *Lattice {
	var masks []uint64
	switch {
	case e.opts.Policy == PolicyCost:
		masks = ChooseSnowcaps(p, e.Store, e.opts.Profile)
	case e.opts.Policy == PolicySnowcaps:
		masks = p.SnowcapChain()
	}
	if e.pool != nil && len(masks) > 0 {
		return NewLatticePooled(p, masks, e.pool, e.Store, e.Join())
	}
	if e.opts.Policy == PolicyCost {
		return NewLatticeMasks(p, masks, e.Store, e.Join())
	}
	return NewLattice(p, e.opts.Policy, e.Store, e.Join())
}

// Join returns the engine's physical join function.
func (e *Engine) Join() algebra.JoinFunc {
	if e.opts.Join != nil {
		return e.opts.Join
	}
	return algebra.StructuralJoin
}

// AddView materializes a view over the current document and prepares its
// maintenance structures (term expansion and snowcap lattice).
func (e *Engine) AddView(name string, p *pattern.Pattern) (*ManagedView, error) {
	if len(p.StoredIndexes()) == 0 {
		return nil, fmt.Errorf("core: view %s stores nothing", name)
	}
	in := e.Store.Inputs(p)
	tuples := algebra.EvalPattern(p, in, e.Join())
	rows := algebra.ProjectStored(p, tuples, e.Doc)
	mv := &ManagedView{
		Name:        name,
		Pattern:     p,
		View:        store.NewMaterializedView(p, rows),
		insertTerms: InsertTerms(p),
		deleteTerms: DeleteTerms(p),
	}
	mv.Lattice = e.newLattice(p)
	e.Views = append(e.Views, mv)
	return mv, nil
}

// AddViewRows installs a view from previously materialized rows (e.g. a
// snapshot decoded with store.DecodeSnapshot) without re-evaluating the
// pattern. The caller asserts the rows reflect the engine's current
// document; the auxiliary lattice is rebuilt from the store.
func (e *Engine) AddViewRows(name string, p *pattern.Pattern, rows []algebra.Row) (*ManagedView, error) {
	if len(p.StoredIndexes()) == 0 {
		return nil, fmt.Errorf("core: view %s stores nothing", name)
	}
	mv := &ManagedView{
		Name:        name,
		Pattern:     p,
		View:        store.NewMaterializedView(p, rows),
		insertTerms: InsertTerms(p),
		deleteTerms: DeleteTerms(p),
	}
	mv.Lattice = e.newLattice(p)
	e.Views = append(e.Views, mv)
	return mv, nil
}

// Timings is the per-phase breakdown reported by the paper's experiments.
type Timings struct {
	FindTargets   time.Duration // locate target nodes (Saxon's role)
	ComputeDelta  time.Duration // build the ∆+ / ∆− tables (CD+/CD−)
	GetExpression time.Duration // unfold + prune the update expression
	ExecuteUpdate time.Duration // evaluate terms, apply to the view
	UpdateLattice time.Duration // refresh auxiliary structures
}

// Total sums all phases.
func (t Timings) Total() time.Duration {
	return t.FindTargets + t.ComputeDelta + t.GetExpression + t.ExecuteUpdate + t.UpdateLattice
}

// Add accumulates another breakdown.
func (t *Timings) Add(o Timings) {
	t.FindTargets += o.FindTargets
	t.ComputeDelta += o.ComputeDelta
	t.GetExpression += o.GetExpression
	t.ExecuteUpdate += o.ExecuteUpdate
	t.UpdateLattice += o.UpdateLattice
}

// ViewReport describes the effect of one statement on one view.
type ViewReport struct {
	View          *ManagedView
	Timings       Timings
	TermsTotal    int // terms before data-driven pruning
	TermsSurvived int // terms actually evaluated
	RowsAdded     int
	RowsRemoved   int
	RowsModified  int
	// PredFallback reports that the update flipped a value predicate on an
	// existing node, forcing this view to be recomputed (see predflip.go).
	PredFallback bool
	// Skipped reports that the independence precheck proved the statement
	// cannot affect this view, so propagation was skipped.
	Skipped bool
}

// Report describes the effect of one statement on the engine.
type Report struct {
	Statement *update.Statement
	Targets   int
	Views     []ViewReport
}

// Timings sums the per-view breakdowns (FindTargets counted once).
func (r *Report) Timings() Timings {
	var t Timings
	for i, vr := range r.Views {
		vt := vr.Timings
		if i > 0 {
			vt.FindTargets = 0
		}
		t.Add(vt)
	}
	return t
}

// ApplyStatement runs one update statement: it computes the pending update
// list, applies the update to the document, and incrementally propagates it
// to every managed view (PINT/PIMT for insertions, PDDT/PDMT for
// deletions). The document and store are updated exactly once.
func (e *Engine) ApplyStatement(st *update.Statement) (*Report, error) {
	t0 := time.Now()
	if st.Kind == update.Replace {
		// Replace = the deletion stage then the insertion stage, each a
		// full algebraic propagation; reports are merged.
		delPul, insPul, err := update.ExpandReplace(e.Doc, st)
		if err != nil {
			return nil, err
		}
		findTargets := time.Since(t0)
		delRep, err := e.applyPUL(delPul, nil)
		if err != nil {
			return nil, err
		}
		insRep, err := e.applyPUL(insPul, nil)
		if err != nil {
			return nil, err
		}
		rep := &Report{Statement: st, Targets: delPul.Targets()}
		for i := range delRep.Views {
			vr := delRep.Views[i]
			vr.Timings.Add(insRep.Views[i].Timings)
			vr.Timings.FindTargets = findTargets
			vr.RowsAdded += insRep.Views[i].RowsAdded
			vr.RowsRemoved += insRep.Views[i].RowsRemoved
			vr.RowsModified += insRep.Views[i].RowsModified
			vr.TermsTotal += insRep.Views[i].TermsTotal
			vr.TermsSurvived += insRep.Views[i].TermsSurvived
			vr.PredFallback = vr.PredFallback || insRep.Views[i].PredFallback
			rep.Views = append(rep.Views, vr)
		}
		return rep, nil
	}
	pul, err := update.ComputePUL(e.Doc, st)
	if err != nil {
		return nil, err
	}
	findTargets := time.Since(t0)

	// Optional static independence fast path: views the precheck proves
	// unaffected skip propagation for this statement.
	var skip map[*ManagedView]bool
	if e.opts.IndependencePrecheck != nil {
		for _, mv := range e.Views {
			if e.opts.IndependencePrecheck(mv.Pattern, st) {
				if skip == nil {
					skip = map[*ManagedView]bool{}
				}
				skip[mv] = true
			}
		}
	}

	rep, err := e.applyPUL(pul, skip)
	if err != nil {
		return nil, err
	}
	rep.Statement = st
	for i := range rep.Views {
		rep.Views[i].Timings.FindTargets = findTargets
	}
	return rep, nil
}

// ApplyPUL propagates an already-computed pending update list: it applies
// the node-level operations to the document and incrementally maintains
// every view. This is the entry point used when PULs arrive pre-optimized
// (Section 5) rather than from a statement.
func (e *Engine) ApplyPUL(pul *update.PUL) (*Report, error) {
	return e.applyPUL(pul, nil)
}

func (e *Engine) applyPUL(pul *update.PUL, skip map[*ManagedView]bool) (*Report, error) {
	// Snapshot σ membership of predicate-labeled ancestors of the targets;
	// if the update flips any of them (text added or removed below an
	// existing node a view predicate tests), the ∆ algebra cannot express
	// the change and the affected view falls back to recomputation.
	probes := e.snapshotPredicates(pul)

	rep := &Report{Targets: pul.Targets()}
	switch pul.Kind {
	case update.Insert:
		// Apply to the document only: the canonical relations must keep
		// their pre-update state while terms are evaluated; they are synced
		// during the lattice-update phase.
		applied, err := update.Apply(e.Doc, nil, pul)
		if err != nil {
			return nil, err
		}
		rep.Views = e.propagateAll(skip, func(mv *ManagedView) ViewReport {
			return e.propagateInsert(mv, pul, applied)
		})
		if e.pool != nil {
			// Shared snowcaps are maintained once per statement, against
			// the pre-sync relations (like each view's own lattice).
			e.pool.ApplyInsert(applied.InsertedRoots)
		}
		e.Store.AddSubtrees(applied.InsertedRoots)
	case update.Delete:
		applied, err := update.Apply(e.Doc, e.Store, pul)
		if err != nil {
			return nil, err
		}
		if e.pool != nil {
			e.pool.ApplyDelete(applied.DeletedRoots)
		}
		rep.Views = e.propagateAll(skip, func(mv *ManagedView) ViewReport {
			return e.propagateDelete(mv, pul, applied)
		})
	}
	for mv := range flippedViews(probes) {
		e.recomputeFallback(mv)
		for i := range rep.Views {
			if rep.Views[i].View == mv {
				rep.Views[i].PredFallback = true
			}
		}
	}
	return rep, nil
}

// propagateAll runs one propagation function over every non-skipped view,
// concurrently when Options.Parallel is set. The document and store must be
// read-only for the duration (guaranteed by the ApplyPUL phase ordering).
func (e *Engine) propagateAll(skip map[*ManagedView]bool, f func(*ManagedView) ViewReport) []ViewReport {
	out := make([]ViewReport, len(e.Views))
	if !e.opts.Parallel || len(e.Views) < 2 {
		for i, mv := range e.Views {
			if skip[mv] {
				out[i] = ViewReport{View: mv, Skipped: true}
				continue
			}
			out[i] = f(mv)
		}
		return out
	}
	var wg sync.WaitGroup
	for i, mv := range e.Views {
		if skip[mv] {
			out[i] = ViewReport{View: mv, Skipped: true}
			continue
		}
		wg.Add(1)
		go func(i int, mv *ManagedView) {
			defer wg.Done()
			out[i] = f(mv)
		}(i, mv)
	}
	wg.Wait()
	return out
}

// deltaInputs builds per-pattern-node ∆ inputs from subtree roots: the CD+
// / CD− delta tables, σ-filtered by each node's value predicate, with the
// root-anchor filter applied (an inserted node can never be the document
// root, so a /-anchored pattern root always has an empty ∆).
func (e *Engine) deltaInputs(p *pattern.Pattern, roots []*xmltree.Node) algebra.Inputs {
	labels := make([]string, 0, p.Size())
	for _, n := range p.Nodes {
		labels = append(labels, n.Label)
	}
	tables := update.DeltaTables(roots, labels)
	in := make(algebra.Inputs, p.Size())
	for i, n := range p.Nodes {
		in[i] = algebra.Filter(tables[n.Label], n, e.Doc)
	}
	in[0] = algebra.FilterRootAnchor(p, in[0])
	return in
}

// evalTerm evaluates one union term: R-nodes (rmask) come from the lattice
// (materialized snowcap or on-the-fly joins over canonical relations),
// ∆-nodes from the delta inputs; the boundary edges become structural
// joins. Results are projected onto the view's stored nodes.
func (e *Engine) evalTerm(mv *ManagedView, rmask uint64, deltaIn algebra.Inputs) []algebra.Row {
	return e.evalTermFrom(mv, rmask, deltaIn, nil)
}

// evalTermFrom is evalTerm with explicit R inputs (rIn) for the lattice's
// on-the-fly blocks; nil means the store's current canonical relations.
// Deferred (lazy) flushing passes filtered inputs here.
func (e *Engine) evalTermFrom(mv *ManagedView, rmask uint64, deltaIn, rIn algebra.Inputs) []algebra.Row {
	p := mv.Pattern
	full := p.FullMask()
	dmask := full &^ rmask
	var block algebra.Block
	if rmask == 0 {
		block = algebra.EvalSubPattern(p, full, deltaIn, e.Join())
	} else {
		block = mv.Lattice.BlockFrom(rmask, rIn)
		forest, roots := algebra.EvalForest(p, dmask, deltaIn, e.Join())
		block = algebra.AttachForest(p, block, forest, roots, e.Join())
	}
	return algebra.ProjectBlock(p, block, p.StoredIndexes(), e.Doc)
}
