package core

import (
	"math/rand"
	"testing"

	"xivm/internal/pattern"
	"xivm/internal/store"
	"xivm/internal/update"
)

func TestSignatureCanonical(t *testing.T) {
	a := pattern.MustParse(`//a{ID}//b{ID}`)
	b := pattern.MustParse(`//a//b{ID,val,cont}`) // stores differ, extent identical
	if Signature(a) != Signature(b) {
		t.Fatal("stores must not affect the signature")
	}
	c := pattern.MustParse(`//a{ID}/b{ID}`)
	if Signature(a) == Signature(c) {
		t.Fatal("edge kinds must affect the signature")
	}
	d := pattern.MustParse(`//a{ID}//b{ID}[val="5"]`)
	if Signature(a) == Signature(d) {
		t.Fatal("predicates must affect the signature")
	}
	// Branch structure must be unambiguous.
	e := pattern.MustParse(`//a{ID}[//b{ID}//c{ID}]//d{ID}`)
	if Signature(e) == Signature(pattern.MustParse(`//a{ID}[//b{ID}][//c{ID}]//d{ID}`)) {
		t.Fatal("nesting must affect the signature")
	}
}

func TestPoolSharesAcrossViews(t *testing.T) {
	d := mustDoc(t, `<site><people><person><name>A</name><phone/></person><person><name>B</name></person></people></site>`)
	e := NewEngine(d, Options{SharedSnowcaps: true})
	// Q1-like and Q17-like views share the site/people/person chain.
	mv1 := addView(t, e, `/site/people/person{ID}/name{ID,val}`)
	mv2 := addView(t, e, `/site/people/person{ID}[/phone]/name{ID,val}`)
	pool := e.SharedPool()
	if pool == nil {
		t.Fatal("pool missing")
	}
	if pool.SharedRefs() <= pool.Entries() {
		t.Fatalf("no sharing: %d entries, %d refs", pool.Entries(), pool.SharedRefs())
	}
	apply(t, e, `for $p in /site/people/person insert <name>X</name>`)
	apply(t, e, `delete /site/people/person[phone]`)
	if !e.CheckView(mv1) || !e.CheckView(mv2) {
		t.Fatal("pooled views diverged")
	}
}

// TestSharedSnowcapsMaintainCorrectly is the property test under sharing.
func TestSharedSnowcapsMaintainCorrectly(t *testing.T) {
	views := []string{
		`//a{ID}//b{ID}`,
		`//a{ID}//b{ID,val}`, // same extent as above: shared
		`//a{ID}[//b{ID}//c{ID}]//d{ID}`,
		`//a{ID}[//b]`,
		`//a{ID}[val="5"]//b{ID}`,
	}
	rng := rand.New(rand.NewSource(63))
	for trial := 0; trial < 15; trial++ {
		d := mustDoc(t, randomXML(rng, 3, 4))
		e := NewEngine(d, Options{SharedSnowcaps: true})
		var mvs []*ManagedView
		for _, src := range views {
			mvs = append(mvs, addView(t, e, src))
		}
		if e.SharedPool().SharedRefs() <= e.SharedPool().Entries() {
			t.Fatal("expected sharing between the first two views")
		}
		for step := 0; step < 6; step++ {
			st, err := update.Parse(randomStatement(rng))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := e.ApplyStatement(st); err != nil {
				t.Fatal(err)
			}
			for i, mv := range mvs {
				if !e.CheckView(mv) {
					t.Fatalf("trial %d step %d view %s diverged under sharing", trial, step, views[i])
				}
			}
		}
	}
}

func TestPoolBlockRemapsColumns(t *testing.T) {
	d := mustDoc(t, `<a><b/><b/></a>`)
	st := store.New(d)
	pool := NewPool(st, nil)
	sub := pattern.MustParse(`//a{ID}//b{ID}`)
	sig := pool.Register(sub)
	blk, ok := pool.Block(sig, []int{3, 7})
	if !ok {
		t.Fatal("block missing")
	}
	if len(blk.Cols) != 2 || blk.Cols[0] != 3 || blk.Cols[1] != 7 {
		t.Fatalf("cols %v", blk.Cols)
	}
	if len(blk.Tuples) != 2 {
		t.Fatalf("tuples %d", len(blk.Tuples))
	}
	if _, ok := pool.Block("nope", nil); ok {
		t.Fatal("unknown signature found")
	}
}

func TestLazyRejectsSharedSnowcaps(t *testing.T) {
	d := mustDoc(t, `<a><b/></a>`)
	e := NewEngine(d, Options{SharedSnowcaps: true})
	addView(t, e, `//a{ID}//b{ID}`)
	defer func() {
		if recover() == nil {
			t.Fatal("NewLazy must reject shared snowcaps")
		}
	}()
	NewLazy(e)
}

// TestOptionsCombined exercises shared snowcaps + parallel propagation +
// cost-based policy together under random streams (run with -race).
func TestOptionsCombined(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 6; trial++ {
		d := mustDoc(t, randomXML(rng, 3, 4))
		e := NewEngine(d, Options{
			SharedSnowcaps: true,
			Parallel:       true,
			Policy:         PolicyCost,
			Profile:        UpdateProfile{"a": 1, "b": 1, "c": 1, "d": 1},
		})
		var mvs []*ManagedView
		for _, src := range []string{
			`//a{ID}//b{ID}`, `//a{ID}//b{ID,val}`,
			`//a{ID}[//b{ID}//c{ID}]//d{ID}`, `//root{ID}/a{ID}`,
		} {
			mvs = append(mvs, addView(t, e, src))
		}
		for step := 0; step < 5; step++ {
			st, err := update.Parse(randomStatement(rng))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := e.ApplyStatement(st); err != nil {
				t.Fatal(err)
			}
			for _, mv := range mvs {
				if !e.CheckView(mv) {
					t.Fatalf("trial %d step %d: combined-options view %s diverged", trial, step, mv.Name)
				}
			}
		}
	}
}
