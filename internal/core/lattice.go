package core

import (
	"xivm/internal/algebra"
	"xivm/internal/dewey"
	"xivm/internal/pattern"
	"xivm/internal/store"
	"xivm/internal/xmltree"
)

// Lattice is the view's auxiliary structure: the sub-pattern lattice of
// Section 3.5, with a materialization policy. Under PolicySnowcaps one
// snowcap per level (a nested chain) is materialized; under PolicyLeaves
// nothing is, and every requested block is recomputed from the canonical
// relations (the lattice leaves).
type Lattice struct {
	Pattern *pattern.Pattern
	Policy  Policy
	store   *store.Store
	join    algebra.JoinFunc
	chain   []uint64 // materialized masks, ascending size (excludes full view)
	mats    map[uint64]*store.Mat
	// Pooled mode: masks resolve through a shared cross-view pool; the
	// engine maintains the pool once per statement, so the per-view
	// maintenance entry points become no-ops.
	pool   *Pool
	pooled map[uint64]pooledRef
}

type pooledRef struct {
	sig  string
	orig []int // canonical node index -> view pattern node index
}

// NewLattice builds (and, under PolicySnowcaps, materializes) the lattice
// for p over the store's current state. The full-pattern snowcap is the
// view itself and is not duplicated here.
func NewLattice(p *pattern.Pattern, policy Policy, st *store.Store, join algebra.JoinFunc) *Lattice {
	if policy != PolicySnowcaps {
		l := NewLatticeMasks(p, nil, st, join)
		l.Policy = policy
		return l
	}
	return NewLatticeMasks(p, p.SnowcapChain(), st, join)
}

// NewLatticeMasks materializes exactly the given snowcap masks (the full
// pattern, which is the view itself, is skipped). This is the entry point
// the cost-based optimizer uses.
func NewLatticeMasks(p *pattern.Pattern, masks []uint64, st *store.Store, join algebra.JoinFunc) *Lattice {
	l := &Lattice{Pattern: p, Policy: PolicySnowcaps, store: st, join: join, mats: map[uint64]*store.Mat{}}
	if len(masks) == 0 {
		l.Policy = PolicyLeaves
		return l
	}
	in := st.Inputs(p)
	for _, mask := range masks {
		if mask == p.FullMask() {
			continue
		}
		if !p.IsSnowcap(mask) {
			panic("core: NewLatticeMasks given a non-snowcap mask")
		}
		m := store.NewMat(p, mask)
		m.FillFromBlock(algebra.EvalSubPattern(p, mask, in, join))
		l.mats[mask] = m
		l.chain = append(l.chain, mask)
	}
	return l
}

// NewLatticePooled resolves the given snowcap masks through a shared
// cross-view pool instead of materializing privately.
func NewLatticePooled(p *pattern.Pattern, masks []uint64, pool *Pool, st *store.Store, join algebra.JoinFunc) *Lattice {
	l := &Lattice{Pattern: p, Policy: PolicySnowcaps, store: st, join: join,
		mats: map[uint64]*store.Mat{}, pool: pool, pooled: map[uint64]pooledRef{}}
	for _, mask := range masks {
		if mask == p.FullMask() {
			continue
		}
		if !p.IsSnowcap(mask) {
			panic("core: NewLatticePooled given a non-snowcap mask")
		}
		sub, orig := p.SubPattern(mask)
		sig := pool.Register(sub)
		l.pooled[mask] = pooledRef{sig: sig, orig: orig}
		l.chain = append(l.chain, mask)
	}
	return l
}

// Materialized returns the materialized masks in ascending size order.
func (l *Lattice) Materialized() []uint64 { return l.chain }

// TupleCount returns the total number of live tuples across materialized
// lattice nodes.
func (l *Lattice) TupleCount() int {
	total := 0
	for _, m := range l.mats {
		total += m.Len()
	}
	return total
}

// Block returns the relation for an upward-closed node set: the
// materialized snowcap when available, otherwise an on-the-fly join over
// the canonical relations (the Leaves strategy).
func (l *Lattice) Block(mask uint64) algebra.Block {
	return l.BlockFrom(mask, nil)
}

// BlockFrom is Block with explicit per-node inputs for the on-the-fly
// case; nil falls back to the store's canonical relations.
func (l *Lattice) BlockFrom(mask uint64, in algebra.Inputs) algebra.Block {
	if ref, ok := l.pooled[mask]; ok {
		if b, found := l.pool.Block(ref.sig, ref.orig); found {
			return b
		}
	}
	if m, ok := l.mats[mask]; ok {
		return m.Block()
	}
	if in == nil {
		in = l.store.Inputs(l.Pattern)
	}
	return algebra.EvalSubPattern(l.Pattern, mask, in, l.join)
}

// ApplyInsert maintains every materialized snowcap after an insertion,
// using Proposition 3.13: each snowcap's additions are the union terms of
// its own sub-pattern, computed from smaller blocks and the ∆+ inputs. All
// additions are computed against the pre-update state first, then
// committed, so no term sees partially refreshed data. The store itself
// must still hold the pre-update canonical relations when this runs.
func (l *Lattice) ApplyInsert(deltaIn algebra.Inputs) {
	l.ApplyInsertFrom(deltaIn, nil)
}

// ApplyInsertFrom is ApplyInsert with explicit R inputs for on-the-fly
// blocks (used by deferred flushing); nil means the store's relations.
// Nested one-node-per-level chains (the PolicySnowcaps layout) use the
// cheap recurrence of Proposition 3.13's proof; arbitrary materialized sets
// fall back to per-snowcap term expansion.
func (l *Lattice) ApplyInsertFrom(deltaIn, rIn algebra.Inputs) {
	if l.pool != nil {
		return // the engine maintains the shared pool once per statement
	}
	if len(l.chain) == 0 {
		return
	}
	if rIn == nil {
		rIn = l.store.Inputs(l.Pattern)
	}
	if l.chainIsNested() {
		l.applyInsertChain(deltaIn, rIn)
		return
	}
	p := l.Pattern
	additions := make(map[uint64][]algebra.Block, len(l.chain))
	for _, mask := range l.chain {
		for _, rmask := range snowcapTerms(p, mask) {
			blk := l.termBlockFrom(mask, rmask, deltaIn, rIn)
			if len(blk.Tuples) > 0 {
				additions[mask] = append(additions[mask], blk)
			}
		}
	}
	for _, mask := range l.chain {
		for _, blk := range additions[mask] {
			l.mats[mask].AddBlock(blk)
		}
	}
}

// chainIsNested reports whether the materialized masks form a strict chain
// growing by exactly one node per level, starting from a single node.
func (l *Lattice) chainIsNested() bool {
	p := l.Pattern
	for k, mask := range l.chain {
		want := k + 1
		if len(pattern.MaskIndexes(mask)) != want {
			return false
		}
		if k > 0 && l.chain[k-1]&^mask != 0 {
			return false
		}
		// The added node's pattern parent must already be in the previous
		// level (true for snowcaps, asserted for safety).
		if k > 0 {
			added := pattern.MaskIndexes(mask &^ l.chain[k-1])
			if len(added) != 1 {
				return false
			}
			if pi := p.ParentIndex(added[0]); pi >= 0 && !pattern.MaskContains(l.chain[k-1], pi) {
				return false
			}
		}
	}
	return true
}

// applyInsertChain maintains a nested snowcap chain with the recurrence of
// Proposition 3.13: the additions to level k are the additions to level
// k−1 joined with (R ∪ ∆) of the newly added node, plus the OLD level-k−1
// content joined with that node's ∆. All joins are ∆-sized on at least one
// side, which is what makes snowcap maintenance cheap.
func (l *Lattice) applyInsertChain(deltaIn, rIn algebra.Inputs) {
	p := l.Pattern
	join := l.join
	if join == nil {
		join = algebra.StructuralJoin
	}
	// Additions per level, possibly several blocks (one per recurrence
	// branch); committed only after every level is computed against the old
	// state.
	additions := make([][]algebra.Block, len(l.chain))

	rootIdx := pattern.MaskIndexes(l.chain[0])[0]
	if len(deltaIn[rootIdx]) > 0 {
		additions[0] = []algebra.Block{algebra.SingleColumn(rootIdx, deltaIn[rootIdx])}
	}
	for k := 1; k < len(l.chain); k++ {
		x := pattern.MaskIndexes(l.chain[k] &^ l.chain[k-1])[0]
		pi := p.ParentIndex(x)
		desc := p.Nodes[x].Desc
		// Branch 1: ∆(level k−1) ⋈ (R ∪ ∆)_x.
		if len(additions[k-1]) > 0 {
			bothItems := make([]algebra.Item, 0, len(rIn[x])+len(deltaIn[x]))
			bothItems = append(bothItems, rIn[x]...)
			bothItems = append(bothItems, deltaIn[x]...)
			both := algebra.SingleColumn(x, bothItems)
			for _, db := range additions[k-1] {
				if out := join(db, pi, both, x, desc); len(out.Tuples) > 0 {
					additions[k] = append(additions[k], out)
				}
			}
		}
		// Branch 2: old(level k−1) ⋈ ∆_x.
		if len(deltaIn[x]) > 0 {
			old := l.mats[l.chain[k-1]].Block()
			dx := algebra.SingleColumn(x, deltaIn[x])
			if out := join(old, pi, dx, x, desc); len(out.Tuples) > 0 {
				additions[k] = append(additions[k], out)
			}
		}
	}
	for k, mask := range l.chain {
		for _, blk := range additions[k] {
			l.mats[mask].AddBlock(blk)
		}
	}
}

// snowcapTerms enumerates the insertion terms of the sub-pattern induced by
// mask: R-masks that are upward-closed within mask (and proper subsets).
func snowcapTerms(p *pattern.Pattern, mask uint64) []uint64 {
	var out []uint64
	idxs := pattern.MaskIndexes(mask)
	n := len(idxs)
	for sub := uint64(0); sub < 1<<uint(n); sub++ {
		var rmask uint64
		for b, idx := range idxs {
			if sub&(1<<uint(b)) != 0 {
				rmask |= 1 << uint(idx)
			}
		}
		if rmask == mask {
			continue
		}
		if upClosedWithin(p, rmask, mask) {
			out = append(out, rmask)
		}
	}
	return out
}

// upClosedWithin reports whether rmask is upward-closed inside mask: for
// every node in rmask, its closest ancestor within mask is also in rmask.
func upClosedWithin(p *pattern.Pattern, rmask, mask uint64) bool {
	for _, i := range pattern.MaskIndexes(rmask) {
		pi := p.ParentIndex(i)
		for pi >= 0 && !pattern.MaskContains(mask, pi) {
			pi = p.ParentIndex(pi)
		}
		if pi < 0 {
			continue
		}
		if !pattern.MaskContains(rmask, pi) {
			return false
		}
	}
	return true
}

// termBlock evaluates one term of a sub-pattern: block for rmask joined
// with the ∆ forest covering mask\rmask. Forest roots attach to their
// closest ancestor within mask.
func (l *Lattice) termBlockFrom(mask, rmask uint64, deltaIn, rIn algebra.Inputs) algebra.Block {
	dmask := mask &^ rmask
	if rmask == 0 {
		return l.evalMaskWith(mask, deltaIn, nil)
	}
	return l.evalMaskWith(dmask, deltaIn, &boundary{base: l.BlockFrom(rmask, rIn), rmask: rmask})
}

type boundary struct {
	base  algebra.Block
	rmask uint64
}

// evalMaskWith evaluates the sub-forest induced by dmask over deltaIn and,
// when b is non-nil, joins each forest root against its closest ancestor in
// b's R-mask. With b nil, dmask must be upward-closed within itself (a
// single sub-pattern) — used for the all-∆ term.
func (l *Lattice) evalMaskWith(dmask uint64, deltaIn algebra.Inputs, b *boundary) algebra.Block {
	p := l.Pattern
	if b == nil {
		return algebra.EvalSubPattern(p, dmask, deltaIn, l.join)
	}
	block := b.base
	// Identify forest roots of dmask and their attachment point in rmask.
	for _, i := range pattern.MaskIndexes(dmask) {
		pi := p.ParentIndex(i)
		if pi >= 0 && pattern.MaskContains(dmask, pi) {
			continue // interior node of the ∆ forest
		}
		// Closest ancestor inside rmask; the edge kind is // when any hop
		// on the way (or the node's own edge) is a descendant edge.
		desc := p.Nodes[i].Desc
		anc := pi
		for anc >= 0 && !pattern.MaskContains(b.rmask, anc) {
			desc = true // skipping an unconstrained intermediate level
			anc = p.ParentIndex(anc)
		}
		if anc < 0 {
			// No ancestor in the block: cross product is not meaningful for
			// tree patterns rooted at node 0; this cannot happen because
			// rmask is upward-closed and contains the root.
			panic("core: ∆ forest root with no ancestor in the R block")
		}
		sub := subMaskOf(p, i) & dmask
		fb := algebra.EvalSubPattern(p, sub, deltaIn, l.join)
		block = joinWithAxis(l.join, block, anc, fb, i, desc)
	}
	return block
}

func joinWithAxis(join algebra.JoinFunc, left algebra.Block, lIdx int, right algebra.Block, rIdx int, desc bool) algebra.Block {
	if join == nil {
		join = algebra.StructuralJoin
	}
	return join(left, lIdx, right, rIdx, desc)
}

func subMaskOf(p *pattern.Pattern, i int) uint64 {
	var m uint64
	m |= 1 << uint(i)
	for j := i + 1; j < p.Size(); j++ {
		if p.IsAncestor(i, j) {
			m |= 1 << uint(j)
		}
	}
	return m
}

// ApplyDelete maintains the materialized snowcaps after a deletion: any
// tuple with a binding inside a deleted subtree is dropped, in one pass per
// materialized node. This is the searching pass that makes Update Lattice
// costlier for deletions than for insertions, as the paper observes.
func (l *Lattice) ApplyDelete(deletedRoots []*xmltree.Node) int {
	if l.pool != nil || len(deletedRoots) == 0 {
		return 0 // pooled snowcaps are maintained by the engine
	}
	ids := make([]dewey.ID, len(deletedRoots))
	for i, r := range deletedRoots {
		ids[i] = r.ID
	}
	cover := dewey.NewCover(ids)
	removed := 0
	for _, m := range l.mats {
		removed += m.RemoveUnderAny(cover)
	}
	return removed
}
