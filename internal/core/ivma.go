package core

import (
	"sort"
	"strings"
	"time"

	"xivm/internal/algebra"
	"xivm/internal/dewey"
	"xivm/internal/pattern"
	"xivm/internal/store"
	"xivm/internal/update"
	"xivm/internal/xmltree"
)

// IVMA re-implements the node-at-a-time incremental view maintenance
// algorithm of Sawires et al. (SIGMOD 2005) over our native store, as the
// paper does for its Section 6.6 comparison. Each node added or removed by
// an update is propagated by its own maintenance pass: the view pattern is
// re-evaluated with the single node pinned to each label-compatible pattern
// position, consulting the document for every other position. An insertion
// of a k-node subtree therefore costs k passes, where the bulk algebraic
// algorithms pay once.
type IVMA struct {
	Engine *Engine
}

// NewIVMA wraps an engine whose views will be maintained node-at-a-time.
func NewIVMA(e *Engine) *IVMA { return &IVMA{Engine: e} }

// ApplyStatement applies the statement to the document and propagates it to
// every view one node at a time, returning the time spent in propagation
// (excluding target lookup and the document update itself).
func (iv *IVMA) ApplyStatement(st *update.Statement) (time.Duration, error) {
	e := iv.Engine
	pul, err := update.ComputePUL(e.Doc, st)
	if err != nil {
		return 0, err
	}
	switch st.Kind {
	case update.Insert:
		applied, err := update.Apply(e.Doc, nil, pul)
		if err != nil {
			return 0, err
		}
		// Flatten the inserted subtrees into individual nodes, in document
		// order: IVMA sees a stream of single-node insertions.
		var nodes []*xmltree.Node
		for _, root := range applied.InsertedRoots {
			xmltree.Walk(root, func(n *xmltree.Node) bool {
				nodes = append(nodes, n)
				return true
			})
		}
		sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID.Compare(nodes[j].ID) < 0 })
		start := time.Now()
		for _, n := range nodes {
			for _, mv := range e.Views {
				iv.propagateSingleInsert(mv, n)
			}
			e.Store.AddNode(n)
		}
		e.bumpVersion()
		return time.Since(start), nil
	default:
		applied, err := update.Apply(e.Doc, nil, pul)
		if err != nil {
			return 0, err
		}
		var nodes []*xmltree.Node
		for _, root := range applied.DeletedRoots {
			xmltree.Walk(root, func(n *xmltree.Node) bool {
				nodes = append(nodes, n)
				return true
			})
		}
		// Remove bottom-up: reverse document order.
		sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID.Compare(nodes[j].ID) > 0 })
		start := time.Now()
		for _, n := range nodes {
			for _, mv := range e.Views {
				iv.propagateSingleDelete(mv, n)
			}
			e.Store.RemoveNode(n)
		}
		e.bumpVersion()
		return time.Since(start), nil
	}
}

// propagateSingleInsert adds the view tuples contributed by exactly one new
// node (the canonical relations do not contain it yet).
func (iv *IVMA) propagateSingleInsert(mv *ManagedView, n *xmltree.Node) {
	for _, row := range iv.singleNodeRows(mv, n, false) {
		mv.View.Upsert(row)
	}
}

// propagateSingleDelete subtracts the view tuples one node carried (the
// canonical relations still contain it).
func (iv *IVMA) propagateSingleDelete(mv *ManagedView, n *xmltree.Node) {
	for _, row := range iv.singleNodeRows(mv, n, true) {
		mv.View.DecrementBy(row.Key(), row.Count)
	}
}

// singleNodeRows evaluates the view tuples that bind n in at least one
// pattern position, each counted exactly once, as the telescoping sum
//
//	Σ_i  (R′_1, …, R′_{i-1}, {n}, R_{i+1}, …, R_k)
//
// where R is the relation state without the pass's effect applied (for an
// insertion: before n joins the relations; for a deletion: while n is still
// in them) and R′ the state with it. Positions left of the pin read R′,
// positions right of it R, so a tuple binding n in several positions is
// produced only by the pin at its leftmost n-position — no tuple is counted
// twice, and none is missed (the old scheme read R everywhere and dropped
// "duplicates" the earlier pins could never have produced).
func (iv *IVMA) singleNodeRows(mv *ManagedView, n *xmltree.Node, deleting bool) []algebra.Row {
	e := iv.Engine
	p := mv.Pattern
	merged := store.NewView(p)
	base := e.Store.Inputs(p)
	for i, pn := range p.Nodes {
		if !labelAdmits(pn.Label, n) {
			continue
		}
		pinned := iv.pinItems(p, i, n)
		if len(pinned) == 0 {
			continue
		}
		in := make(algebra.Inputs, len(base))
		for k, v := range base {
			in[k] = v
		}
		in[i] = pinned
		for j := 0; j < i; j++ {
			if !labelAdmits(p.Nodes[j].Label, n) {
				continue
			}
			if deleting {
				in[j] = withoutID(in[j], n.ID)
			} else {
				in[j] = withItems(in[j], iv.pinItems(p, j, n))
			}
		}
		tuples := algebra.EvalPattern(p, in, e.Join())
		for _, row := range algebra.ProjectStored(p, tuples, e.Doc) {
			merged.Upsert(row)
		}
	}
	return merged.Rows()
}

// pinItems is the σ-filtered singleton input binding n at pattern position
// i, empty when n fails the position's predicates or root anchoring.
func (iv *IVMA) pinItems(p *pattern.Pattern, i int, n *xmltree.Node) []algebra.Item {
	items := algebra.Filter([]algebra.Item{{ID: n.ID, Node: n}}, p.Nodes[i], iv.Engine.Doc)
	if i == 0 {
		items = algebra.FilterRootAnchor(p, items)
	}
	return items
}

// labelAdmits reports whether a node can occupy a pattern position with the
// given label: wildcards take any element, word labels any text node
// containing the word, plain labels an exact match.
func labelAdmits(label string, n *xmltree.Node) bool {
	switch {
	case label == "*":
		return n.Kind == xmltree.Element
	case strings.HasPrefix(label, "~"):
		return n.MatchesWord(label[1:])
	default:
		return label == n.Label
	}
}

// withItems merges sorted extra items into a document-ordered item list.
func withItems(items, add []algebra.Item) []algebra.Item {
	if len(add) == 0 {
		return items
	}
	out := make([]algebra.Item, 0, len(items)+len(add))
	i := 0
	for _, a := range add {
		for i < len(items) && items[i].ID.Compare(a.ID) < 0 {
			out = append(out, items[i])
			i++
		}
		out = append(out, a)
	}
	return append(out, items[i:]...)
}

// withoutID filters one ID out of an item list.
func withoutID(items []algebra.Item, id dewey.ID) []algebra.Item {
	out := make([]algebra.Item, 0, len(items))
	for _, it := range items {
		if !it.ID.Equal(id) {
			out = append(out, it)
		}
	}
	return out
}
