package core

import (
	"sort"
	"time"

	"xivm/internal/algebra"
	"xivm/internal/store"
	"xivm/internal/update"
	"xivm/internal/xmltree"
)

// IVMA re-implements the node-at-a-time incremental view maintenance
// algorithm of Sawires et al. (SIGMOD 2005) over our native store, as the
// paper does for its Section 6.6 comparison. Each node added or removed by
// an update is propagated by its own maintenance pass: the view pattern is
// re-evaluated with the single node pinned to each label-compatible pattern
// position, consulting the document for every other position. An insertion
// of a k-node subtree therefore costs k passes, where the bulk algebraic
// algorithms pay once.
type IVMA struct {
	Engine *Engine
}

// NewIVMA wraps an engine whose views will be maintained node-at-a-time.
func NewIVMA(e *Engine) *IVMA { return &IVMA{Engine: e} }

// ApplyStatement applies the statement to the document and propagates it to
// every view one node at a time, returning the time spent in propagation
// (excluding target lookup and the document update itself).
func (iv *IVMA) ApplyStatement(st *update.Statement) (time.Duration, error) {
	e := iv.Engine
	pul, err := update.ComputePUL(e.Doc, st)
	if err != nil {
		return 0, err
	}
	switch st.Kind {
	case update.Insert:
		applied, err := update.Apply(e.Doc, nil, pul)
		if err != nil {
			return 0, err
		}
		// Flatten the inserted subtrees into individual nodes, in document
		// order: IVMA sees a stream of single-node insertions.
		var nodes []*xmltree.Node
		for _, root := range applied.InsertedRoots {
			xmltree.Walk(root, func(n *xmltree.Node) bool {
				nodes = append(nodes, n)
				return true
			})
		}
		sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID.Compare(nodes[j].ID) < 0 })
		start := time.Now()
		for _, n := range nodes {
			for _, mv := range e.Views {
				iv.propagateSingleInsert(mv, n)
			}
			e.Store.AddSubtree(leafOnly(n))
		}
		return time.Since(start), nil
	default:
		applied, err := update.Apply(e.Doc, nil, pul)
		if err != nil {
			return 0, err
		}
		var nodes []*xmltree.Node
		for _, root := range applied.DeletedRoots {
			xmltree.Walk(root, func(n *xmltree.Node) bool {
				nodes = append(nodes, n)
				return true
			})
		}
		// Remove bottom-up: reverse document order.
		sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID.Compare(nodes[j].ID) > 0 })
		start := time.Now()
		for _, n := range nodes {
			for _, mv := range e.Views {
				iv.propagateSingleDelete(mv, n)
			}
			e.Store.RemoveSubtree(leafOnly(n))
		}
		return time.Since(start), nil
	}
}

// leafOnly wraps a node so store updates touch exactly one node (children
// are handled by their own single-node operations).
func leafOnly(n *xmltree.Node) *xmltree.Node {
	cp := &xmltree.Node{Kind: n.Kind, Label: n.Label, Value: n.Value, ID: n.ID}
	return cp
}

// propagateSingleInsert adds the view tuples contributed by exactly one new
// node: for every pattern position the node's label can take, the pattern
// is evaluated with that position pinned to the node and all others drawn
// from the current relations (which contain earlier nodes of the same
// batch, so each new tuple is produced exactly once, when its last-inserted
// binding arrives).
func (iv *IVMA) propagateSingleInsert(mv *ManagedView, n *xmltree.Node) {
	for _, row := range iv.singleNodeRows(mv, n) {
		mv.View.Upsert(row)
	}
}

func (iv *IVMA) propagateSingleDelete(mv *ManagedView, n *xmltree.Node) {
	for _, row := range iv.singleNodeRows(mv, n) {
		mv.View.DecrementBy(row.Key(), row.Count)
	}
}

// singleNodeRows evaluates the view pattern once per label-compatible
// pattern position with the node pinned there, merging the projected rows
// (a row produced via several positions accumulates its counts, matching
// embedding multiplicity).
func (iv *IVMA) singleNodeRows(mv *ManagedView, n *xmltree.Node) []algebra.Row {
	e := iv.Engine
	p := mv.Pattern
	merged := store.NewView(p)
	for i, pn := range p.Nodes {
		if pn.Label != n.Label && !(pn.Label == "*" && n.Kind == xmltree.Element) {
			continue
		}
		in := e.Store.Inputs(p)
		pinned := algebra.Filter([]algebra.Item{{ID: n.ID, Node: n}}, pn, e.Doc)
		if i == 0 {
			pinned = algebra.FilterRootAnchor(p, pinned)
		}
		in[i] = pinned
		tuples := algebra.EvalPattern(p, in, e.Join())
		// Keep only tuples where no OTHER position binds the node itself
		// when that position was already counted... multiplicities are
		// handled by evaluating each pinned position and discarding tuples
		// whose earlier positions also bind n (they are produced by the
		// earlier pin).
		for _, t := range tuples {
			dup := false
			for j := 0; j < i; j++ {
				if t.Items[j].ID.Equal(n.ID) {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			for _, row := range algebra.ProjectStored(p, []algebra.Tuple{t}, e.Doc) {
				merged.Upsert(row)
			}
		}
	}
	return merged.Rows()
}
