package core

import (
	"math/rand"
	"strings"
	"testing"

	"xivm/internal/algebra"
	"xivm/internal/update"
)

func TestLazyEmptyFlush(t *testing.T) {
	d := mustDoc(t, `<root><a><b/></a></root>`)
	e := NewEngine(d, Options{})
	addView(t, e, `//a{ID}//b{ID}`)
	lz := NewLazy(e)
	if lz.Pending() != 0 {
		t.Fatal("fresh batch not empty")
	}
	if _, err := lz.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestLazySingleStatementMatchesEager(t *testing.T) {
	src := `<root><a><b>5</b></a><a><c/></a></root>`
	for _, stmt := range []string{
		`insert <b><c/></b> into /root/a`,
		`delete /root/a/b`,
	} {
		d1, d2 := mustDoc(t, src), mustDoc(t, src)
		e1, e2 := NewEngine(d1, Options{}), NewEngine(d2, Options{})
		mv1 := addView(t, e1, `//a{ID}//b{ID,val}`)
		mv2 := addView(t, e2, `//a{ID}//b{ID,val}`)
		apply(t, e1, stmt)
		lz := NewLazy(e2)
		if err := lz.Apply(update.MustParse(stmt)); err != nil {
			t.Fatal(err)
		}
		if lz.Pending() != 1 {
			t.Fatal("pending count wrong")
		}
		if _, err := lz.Flush(); err != nil {
			t.Fatal(err)
		}
		if !mv2.View.EqualRows(mv1.View.Rows()) {
			t.Fatalf("lazy differs from eager after %q", stmt)
		}
	}
}

// TestLazyNetChurn: a subtree inserted and deleted within one batch leaves
// the view untouched at flush time.
func TestLazyNetChurn(t *testing.T) {
	d := mustDoc(t, `<root><a><b/></a></root>`)
	e := NewEngine(d, Options{})
	mv := addView(t, e, `//a{ID}[//b]`)
	before := mv.View.Rows()
	lz := NewLazy(e)
	if err := lz.Apply(update.MustParse(`insert <b><b/></b> into /root/a`)); err != nil {
		t.Fatal(err)
	}
	// Delete exactly the inserted subtree: /root/a has two b children now;
	// deleting //a/b/b removes the nested inserted b... delete the whole
	// inserted tree via its structure (b with a b child).
	if err := lz.Apply(update.MustParse(`delete /root/a/b[b]`)); err != nil {
		t.Fatal(err)
	}
	if _, err := lz.Flush(); err != nil {
		t.Fatal(err)
	}
	rows := mv.View.Rows()
	if len(rows) != len(before) || rows[0].Count != before[0].Count {
		t.Fatalf("net-zero churn changed the view: %+v vs %+v", rows, before)
	}
	if !e.CheckView(mv) {
		t.Fatal("diverged from recomputation")
	}
}

// TestLazyMatchesEagerRandomStreams is the deferred-mode counterpart of the
// central property: batches of random statements flushed at random points
// leave the views identical to eager maintenance and to recomputation.
func TestLazyMatchesEagerRandomStreams(t *testing.T) {
	views := []string{
		`//a{ID}//b{ID}`,
		`//a{ID}[//b{ID}//c{ID}]//d{ID}`,
		`//a{ID}[//b]`,
		`//root{ID}/a{ID,val}`,
		`//a{ID}//b{ID,cont}`,
	}
	for _, policy := range []Policy{PolicySnowcaps, PolicyLeaves} {
		rng := rand.New(rand.NewSource(31))
		for trial := 0; trial < 15; trial++ {
			src := randomXML(rng, 3, 4)
			d1, d2 := mustDoc(t, src), mustDoc(t, src)
			e1 := NewEngine(d1, Options{Policy: policy})
			e2 := NewEngine(d2, Options{Policy: policy})
			var m1, m2 []*ManagedView
			for _, v := range views {
				m1 = append(m1, addView(t, e1, v))
				m2 = append(m2, addView(t, e2, v))
			}
			lz := NewLazy(e2)
			for step := 0; step < 8; step++ {
				stmt := randomStatement(rng)
				st1, st2 := update.MustParse(stmt), update.MustParse(stmt)
				if _, err := e1.ApplyStatement(st1); err != nil {
					t.Fatal(err)
				}
				if err := lz.Apply(st2); err != nil {
					t.Fatal(err)
				}
				if rng.Intn(3) == 0 {
					if _, err := lz.Flush(); err != nil {
						t.Fatal(err)
					}
				}
			}
			if _, err := lz.Flush(); err != nil {
				t.Fatal(err)
			}
			for i := range views {
				if !m2[i].View.EqualRows(m1[i].View.Rows()) {
					t.Fatalf("%v policy trial %d view %s: lazy %s\n eager %s",
						policy, trial, views[i],
						dumpRows(m2[i].View.Rows()), dumpRows(m1[i].View.Rows()))
				}
				if !e2.CheckView(m2[i]) {
					t.Fatalf("%v policy trial %d view %s: lazy diverged from recomputation", policy, trial, views[i])
				}
			}
		}
	}
}

// TestLazyReplaceMatchesEager: replace statements in deferred mode expand
// into the same delete+insert stages eager mode applies, and flush to the
// same view state.
func TestLazyReplaceMatchesEager(t *testing.T) {
	src := `<root><a><b>5</b><b>7</b></a><a><c>x</c></a></root>`
	views := []string{
		`//a{ID}//b{ID,val}`,
		`//root{ID,cont}/a{ID}`,
		`//a{ID}[//b]`,
	}
	for _, stmts := range [][]string{
		{`replace /root/a/b with <b>9</b>`},
		{`replace //c with <b>new</b><d/>`, `insert <c/> into /root/a`},
		{`delete /root/a/b`, `replace //a/c with <c>y</c>`},
	} {
		d1, d2 := mustDoc(t, src), mustDoc(t, src)
		e1, e2 := NewEngine(d1, Options{}), NewEngine(d2, Options{})
		var m1, m2 []*ManagedView
		for _, v := range views {
			m1 = append(m1, addView(t, e1, v))
			m2 = append(m2, addView(t, e2, v))
		}
		lz := NewLazy(e2)
		for _, stmt := range stmts {
			apply(t, e1, stmt)
			if err := lz.Apply(update.MustParse(stmt)); err != nil {
				t.Fatalf("lazy Apply(%q): %v", stmt, err)
			}
		}
		if _, err := lz.Flush(); err != nil {
			t.Fatal(err)
		}
		for i := range views {
			if !m2[i].View.EqualRows(m1[i].View.Rows()) {
				t.Fatalf("view %s after %v: lazy %s\n eager %s", views[i], stmts,
					dumpRows(m2[i].View.Rows()), dumpRows(m1[i].View.Rows()))
			}
			if !e2.CheckView(m2[i]) {
				t.Fatalf("view %s after %v: lazy diverged from recomputation", views[i], stmts)
			}
		}
	}
}

// TestLazyRootLevelDelete: deleting direct children of the document root in
// deferred mode must refresh stored val/cont of the root itself (the touch
// point is the root's ID — the deleted nodes' parent).
func TestLazyRootLevelDelete(t *testing.T) {
	d := mustDoc(t, `<root><a>x</a><b/><a>y</a></root>`)
	e := NewEngine(d, Options{})
	mv := addView(t, e, `//root{ID,val,cont}`)
	lz := NewLazy(e)
	if err := lz.Apply(update.MustParse(`delete /root/a`)); err != nil {
		t.Fatal(err)
	}
	if _, err := lz.Flush(); err != nil {
		t.Fatal(err)
	}
	rows := mv.View.Rows()
	if len(rows) != 1 {
		t.Fatalf("rows %d", len(rows))
	}
	en := rows[0].Entries[0]
	if en.Val != "" || strings.Contains(en.Cont, "<a>") {
		t.Fatalf("root val/cont not refreshed after root-level delete: val=%q cont=%q", en.Val, en.Cont)
	}
	if !e.CheckView(mv) {
		t.Fatal("diverged from recomputation")
	}
}

// TestLazyReplaceInsertedChurn: a subtree inserted and then replaced inside
// one batch composes via the net-effect flush.
func TestLazyReplaceInsertedChurn(t *testing.T) {
	d := mustDoc(t, `<root><a><b/></a></root>`)
	e := NewEngine(d, Options{})
	mv := addView(t, e, `//a{ID}[//b]`)
	lz := NewLazy(e)
	for _, stmt := range []string{
		`insert <c><b/></c> into /root/a`,
		`replace /root/a/c with <d/>`,
	} {
		if err := lz.Apply(update.MustParse(stmt)); err != nil {
			t.Fatalf("%q: %v", stmt, err)
		}
	}
	if _, err := lz.Flush(); err != nil {
		t.Fatal(err)
	}
	if !e.CheckView(mv) {
		t.Fatal("diverged from recomputation")
	}
}

// TestFullRecomputeReplace: the baseline accepts replace statements.
func TestFullRecomputeReplace(t *testing.T) {
	src := `<root><a><b>5</b></a></root>`
	d1, d2 := mustDoc(t, src), mustDoc(t, src)
	e1, e2 := NewEngine(d1, Options{}), NewEngine(d2, Options{})
	mv1 := addView(t, e1, `//a{ID}//b{ID,val}`)
	mv2 := addView(t, e2, `//a{ID}//b{ID,val}`)
	stmt := `replace /root/a/b with <b>9</b><b>11</b>`
	apply(t, e1, stmt)
	if _, err := e2.FullRecompute(update.MustParse(stmt)); err != nil {
		t.Fatal(err)
	}
	if !mv1.View.EqualRows(mv2.View.Rows()) {
		t.Fatal("baseline and incremental disagree on replace")
	}
}

// TestLazyLatticeConsistent: after flushes, materialized snowcaps match
// fresh evaluation.
func TestLazyLatticeConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	d := mustDoc(t, randomXML(rng, 3, 4))
	e := NewEngine(d, Options{Policy: PolicySnowcaps})
	mv := addView(t, e, `//a{ID}[//b{ID}//c{ID}]//d{ID}`)
	lz := NewLazy(e)
	for step := 0; step < 10; step++ {
		if err := lz.Apply(update.MustParse(randomStatement(rng))); err != nil {
			t.Fatal(err)
		}
		if step%3 == 2 {
			if _, err := lz.Flush(); err != nil {
				t.Fatal(err)
			}
			for _, mask := range mv.Lattice.Materialized() {
				got := mv.Lattice.Block(mask)
				fresh := algebra.EvalSubPattern(mv.Pattern, mask, e.Store.Inputs(mv.Pattern), nil)
				if !sameBlock(got, fresh) {
					t.Fatalf("step %d mask %b inconsistent", step, mask)
				}
			}
		}
	}
}
