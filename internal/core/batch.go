package core

import (
	"context"

	"xivm/internal/update"
)

// BatchPUL is one unit of a translated statement batch: a combined
// node-level pending update list, applied and propagated in a single pass,
// standing in for Statements consecutive source statements. Batches are
// produced by internal/pulopt's planner, which guarantees that applying the
// units in order is equivalent to applying the source statements one at a
// time.
type BatchPUL struct {
	PUL *update.PUL
	// Statements is how many source statements this unit stands for. The
	// engine version advances by exactly this much when the unit lands, so
	// a batch ends on the same version sequential application would have
	// reached — WAL replay (always per-statement) and shadow-oracle
	// version accounting stay aligned.
	Statements int
	// Sources are the source statements the unit stands for, in order
	// (len == Statements when the planner filled them in). They feed the
	// OnApplied delta stream; units built without them simply leave the
	// stream with a gap, which consumers treat as "discard derived state".
	Sources []*update.Statement
}

// ApplyBatchCtx applies a translated batch: each unit's PUL is applied to
// the document and propagated to every view exactly once, and the engine
// version advances by the unit's statement count. The merged report covers
// the whole batch (Statement is nil; Targets and per-view row counts are
// summed).
//
// It returns the number of source statements whose effects landed — the
// version delta — which is len-of-batch on success and the completed-unit
// sum on error. ctx is honored between units only: a unit that has begun
// mutating the document completes under the same repair contract as
// ApplyPULCtx, and on cancellation the applied prefix stays applied (the
// caller owns publication, so intermediate states are never observable).
//
// A unit failing mid-batch leaves the engine exactly as the completed
// prefix left it; the planner's gating makes that path unreachable for
// well-formed batches (every target pre-resolved, attached, and element-
// kinded), so callers treat it like a writer-loop panic: repair, report
// the error, and publish whatever state exists.
func (e *Engine) ApplyBatchCtx(ctx context.Context, units []BatchPUL) (*Report, int, error) {
	rep := &Report{}
	applied := 0
	for _, u := range units {
		if err := ctx.Err(); err != nil {
			return rep, applied, err
		}
		urep, err := e.applyPUL(ctx, u.PUL, nil)
		if err != nil {
			return rep, applied, err
		}
		// applyPUL bumped once; account for the rest of the unit's
		// statements so the batch lands on the sequential version.
		if u.Statements > 1 {
			e.version.Add(uint64(u.Statements - 1))
		}
		applied += u.Statements
		if e.opts.OnApplied != nil && len(u.Sources) == u.Statements {
			e.opts.OnApplied(u.Sources, e.Version())
		}
		MergeBatchReport(rep, urep)
	}
	return rep, applied, nil
}

// MergeBatchReport folds one unit's (or one statement's) report into a
// batch report, mirroring the delete+insert merge ApplyStatementCtx
// performs for Replace. Callers applying parts of a batch through
// different entry points (the WAL's partial-journal repair path) share it.
func MergeBatchReport(dst, src *Report) {
	dst.Targets += src.Targets
	dst.FindTargets += src.FindTargets
	if dst.Views == nil {
		dst.Views = append(dst.Views, src.Views...)
		return
	}
	for i := range src.Views {
		if i >= len(dst.Views) {
			dst.Views = append(dst.Views, src.Views[i])
			continue
		}
		vr := &dst.Views[i]
		svr := &src.Views[i]
		vr.Phases = vr.Phases.Add(svr.Phases)
		vr.RowsAdded += svr.RowsAdded
		vr.RowsRemoved += svr.RowsRemoved
		vr.RowsModified += svr.RowsModified
		vr.TermsTotal += svr.TermsTotal
		vr.TermsSurvived += svr.TermsSurvived
		vr.PredFallback = vr.PredFallback || svr.PredFallback
		vr.Cancelled = vr.Cancelled || svr.Cancelled
		vr.Panicked = vr.Panicked || svr.Panicked
		vr.Skipped = vr.Skipped && svr.Skipped
	}
}
