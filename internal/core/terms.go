package core

import (
	"math/bits"

	"xivm/internal/algebra"
	"xivm/internal/pattern"
	"xivm/internal/xmltree"
)

// A union term is identified by its R-mask: the set of pattern nodes that
// read the stored relation R; the complement reads the ∆ table. The
// original view is the term with a full R-mask and is never re-evaluated.

// InsertTerms develops the 2^k−1 insertion union terms and applies the
// update-independent pruning of Proposition 3.3: a term survives iff it has
// no sub-expression ∆+_{n1} R_{n2} with n2 a child of n1 in the view —
// equivalently (Proposition 3.12), iff its R-set is upward-closed (a
// snowcap, or empty). Terms are returned in increasing ∆-size order.
func InsertTerms(p *pattern.Pattern) []uint64 {
	full := p.FullMask()
	var out []uint64
	for rmask := uint64(0); rmask < full; rmask++ {
		if p.IsUpClosed(rmask) {
			out = append(out, rmask)
		}
	}
	// Sort by descending popcount of the R-mask (small ∆ first).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && bits.OnesCount64(out[j-1]) < bits.OnesCount64(out[j]); j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// DeleteTerms develops the deletion terms and applies the update-
// independent pruning of Proposition 4.2 (∆−_{n1} R_{n2} with n2 below n1
// is empty). Evaluated against the post-update relations, the surviving
// terms partition the removed tuples, so every term's result is subtracted
// with its exact derivation count — this subsumes the set-oriented parity
// argument of Proposition 4.3 while keeping counts exact (see DESIGN.md).
// The surviving R-masks are exactly the upward-closed proper subsets, the
// same set as for insertions.
func DeleteTerms(p *pattern.Pattern) []uint64 {
	return InsertTerms(p)
}

// PruneByDelta implements Proposition 3.6 (and its deletion counterpart):
// if σ_n(∆_n) is empty for a view node n, every term whose ∆-set contains
// n is pruned. deltaIn holds the σ-filtered per-node delta inputs.
func PruneByDelta(p *pattern.Pattern, terms []uint64, deltaIn algebra.Inputs) []uint64 {
	full := p.FullMask()
	var emptyDelta uint64
	for i := 0; i < p.Size(); i++ {
		if len(deltaIn[i]) == 0 {
			emptyDelta |= 1 << uint(i)
		}
	}
	out := terms[:0:0]
	for _, rmask := range terms {
		dmask := full &^ rmask
		if dmask&emptyDelta == 0 {
			out = append(out, rmask)
		}
	}
	return out
}

// PruneByInsertionPoints implements Proposition 3.8: for view nodes n1
// ancestor of n2, if no insertion point is labeled n1 nor has an ancestor
// labeled n1, then every term containing R_{n1} ∆+_{n2} is empty. The
// check reads only the Compact Dynamic Dewey IDs of the insertion points.
func PruneByInsertionPoints(p *pattern.Pattern, terms []uint64, points []*xmltree.Node) []uint64 {
	// unreachable[i] = true when no insertion point has self-or-ancestor
	// labeled like view node i (wildcards are always reachable).
	unreachable := make([]bool, p.Size())
	for i, n := range p.Nodes {
		if n.Label == "*" {
			continue
		}
		found := false
		for _, pt := range points {
			if pt.ID.SelfOrAncestorLabeled(n.Label) {
				found = true
				break
			}
		}
		unreachable[i] = !found
	}
	return pruneByUnreachableAncestors(p, terms, unreachable)
}

// PruneByDeletedIDs implements Proposition 4.7: for view nodes n1 ancestor
// of n2, if every node in ∆−_{n2} has no ancestor labeled n1, all terms
// containing R_{n1} ∆−_{n2} are empty.
func PruneByDeletedIDs(p *pattern.Pattern, terms []uint64, deltaIn algebra.Inputs) []uint64 {
	full := p.FullMask()
	out := terms[:0:0]
	for _, rmask := range terms {
		dmask := full &^ rmask
		if !deleteTermViable(p, rmask, dmask, deltaIn) {
			continue
		}
		out = append(out, rmask)
	}
	return out
}

func deleteTermViable(p *pattern.Pattern, rmask, dmask uint64, deltaIn algebra.Inputs) bool {
	for _, n2 := range pattern.MaskIndexes(dmask) {
		for n1 := 0; n1 < p.Size(); n1++ {
			if !pattern.MaskContains(rmask, n1) || !p.IsAncestor(n1, n2) {
				continue
			}
			label := p.Nodes[n1].Label
			if label == "*" {
				continue
			}
			any := false
			for _, it := range deltaIn[n2] {
				if it.ID.HasAncestorLabeled(label) {
					any = true
					break
				}
			}
			if !any {
				return false
			}
		}
	}
	return true
}

// pruneByUnreachableAncestors drops terms containing R_{n1} ∆_{n2} where n1
// is an (unreachable) ancestor of n2 in the view.
func pruneByUnreachableAncestors(p *pattern.Pattern, terms []uint64, unreachable []bool) []uint64 {
	full := p.FullMask()
	out := terms[:0:0]
	for _, rmask := range terms {
		dmask := full &^ rmask
		dead := false
	scan:
		for _, n2 := range pattern.MaskIndexes(dmask) {
			for n1 := 0; n1 < p.Size(); n1++ {
				if pattern.MaskContains(rmask, n1) && unreachable[n1] && p.IsAncestor(n1, n2) {
					dead = true
					break scan
				}
			}
		}
		if !dead {
			out = append(out, rmask)
		}
	}
	return out
}
