package core

import (
	"time"

	"xivm/internal/dewey"
	"xivm/internal/xmltree"

	"xivm/internal/algebra"
	"xivm/internal/obs"
	"xivm/internal/update"
)

// propagateDelete runs the combined PDDT/PDMT algorithm (Algorithm 6) for
// one view. The document and canonical relations have already been updated;
// the lattice is refreshed first (dropping tuples bound inside deleted
// subtrees), then the surviving deletion terms are evaluated against the
// post-update relations — a disjoint partition of the removed derivations,
// so each term's result is subtracted with its exact count. Finally PDMT
// refreshes val/cont of surviving tuples whose stored nodes lost
// descendants.
func (e *Engine) propagateDelete(mv *ManagedView, pul *update.PUL, applied *update.Applied) ViewReport {
	vr := ViewReport{View: mv}
	p := mv.Pattern

	// CD−: ∆ tables over the detached subtrees.
	end := e.span("view:" + mv.Name + "/" + obs.PhaseComputeDelta)
	t0 := time.Now()
	deltaIn := e.deltaInputs(p, applied.DeletedRoots)
	vr.Phases = vr.Phases.Set(obs.PhaseComputeDelta, time.Since(t0))
	end()
	e.m.countDeltaItems(deltaIn)

	// Prune the pre-developed deletion expression.
	end = e.span("view:" + mv.Name + "/" + obs.PhaseGetExpression)
	t0 = time.Now()
	terms := mv.deleteTerms
	vr.TermsTotal = len(terms)
	e.m.termsExpanded.Add(int64(len(terms)))
	if !e.opts.DisableDataPruning {
		before := len(terms)
		terms = PruneByDelta(p, terms, deltaIn)
		e.m.pruneProp36.Add(int64(before - len(terms)))
	}
	if !e.opts.DisableIDPruning {
		before := len(terms)
		terms = PruneByDeletedIDs(p, terms, deltaIn)
		e.m.pruneProp47.Add(int64(before - len(terms)))
	}
	vr.TermsSurvived = len(terms)
	e.m.termsEvaluated.Add(int64(len(terms)))
	vr.Phases = vr.Phases.Set(obs.PhaseGetExpression, time.Since(t0))
	end()

	// Update auxiliary structures before evaluating terms: deletion terms
	// must see post-update snowcaps.
	end = e.span("view:" + mv.Name + "/" + obs.PhaseUpdateLattice)
	t0 = time.Now()
	e.m.latticeDropped.Add(int64(mv.Lattice.ApplyDelete(applied.DeletedRoots)))
	vr.Phases = vr.Phases.Set(obs.PhaseUpdateLattice, time.Since(t0))
	end()

	// Subtract the removed derivations. Two complementary mechanisms:
	//
	//  1. Any row whose STORED binding lies inside a deleted subtree loses
	//     every derivation (all its embeddings bind that node), so a single
	//     Dewey-cover scan over the view removes it — no joins needed. This
	//     also makes bulk deletions (∆ ≈ whole document regions) cheap.
	//  2. Terms whose ∆-set touches only NON-stored nodes adjust the counts
	//     of surviving rows and are evaluated algebraically as usual; terms
	//     with ∆ on a stored node are exactly the rows pass 1 removed.
	end = e.span("view:" + mv.Name + "/" + obs.PhaseExecuteUpdate)
	t0 = time.Now()
	vr.RowsRemoved += removeRowsUnder(mv, applied.DeletedRoots)
	var storedMask uint64
	for _, i := range p.StoredIndexes() {
		storedMask |= 1 << uint(i)
	}
	rIn := e.Store.Inputs(p)
	full := p.FullMask()
	for _, rmask := range terms {
		if (full&^rmask)&storedMask != 0 {
			continue // covered by the scan in pass 1
		}
		for _, row := range e.evalTermFrom(mv, rmask, deltaIn, rIn) {
			if _, removed := mv.View.DecrementBy(row.Key(), row.Count); removed {
				vr.RowsRemoved++
			}
		}
	}
	// PDMT: surviving tuples whose stored val/cont nodes are ancestors of a
	// deleted subtree must refresh their stored images.
	vr.RowsModified = e.modifyTuplesAfterDelete(mv, applied)
	vr.Phases = vr.Phases.Set(obs.PhaseExecuteUpdate, time.Since(t0))
	end()
	return vr
}

// removeRowsUnder drops every view row in which some stored entry binds a
// node equal to or inside one of the deleted subtrees, returning how many
// rows were removed.
func removeRowsUnder(mv *ManagedView, roots []*xmltree.Node) int {
	ids := make([]dewey.ID, len(roots))
	for i, r := range roots {
		ids[i] = r.ID
	}
	cover := dewey.NewCover(ids)
	var doomed []string
	mv.View.Each(func(r algebra.Row) bool {
		for _, e := range r.Entries {
			if cover.Contains(e.ID) {
				doomed = append(doomed, r.Key())
				break
			}
		}
		return true
	})
	for _, key := range doomed {
		mv.View.Remove(key)
	}
	return len(doomed)
}

// modifyTuplesAfterDelete implements PDMT: for every surviving view tuple
// and every deleted subtree root, when a cont/val-annotated entry binds an
// ancestor of the deleted root, its stored image is re-extracted from the
// (already updated) document.
func (e *Engine) modifyTuplesAfterDelete(mv *ManagedView, applied *update.Applied) int {
	cvn := mv.Pattern.ContValIndexes()
	if len(cvn) == 0 {
		return 0
	}
	cvnSet := make(map[int]bool, len(cvn))
	for _, i := range cvn {
		cvnSet[i] = true
	}
	// A surviving stored image shrinks iff its node is a proper ancestor of
	// a deleted root; collect those ancestors' ID keys once.
	affected := map[string]bool{}
	for _, root := range applied.DeletedRoots {
		id := root.ID
		for lvl := id.Level() - 1; lvl >= 1; lvl-- {
			affected[id.KeyAt(lvl)] = true
		}
	}
	var dirty []string
	mv.View.Each(func(r algebra.Row) bool {
		for _, entry := range r.Entries {
			if cvnSet[entry.NodeIdx] && affected[entry.ID.Key()] {
				dirty = append(dirty, r.Key())
				return true
			}
		}
		return true
	})
	for _, key := range dirty {
		e.refreshRow(mv, key, cvnSet)
	}
	return len(dirty)
}

// RecomputeView evaluates the view from scratch on the current document —
// the full-recomputation baseline of Section 6.5.
func (e *Engine) RecomputeView(mv *ManagedView) []algebra.Row {
	in := e.Store.Inputs(mv.Pattern)
	tuples := algebra.EvalPattern(mv.Pattern, in, e.Join())
	return algebra.ProjectStored(mv.Pattern, tuples, e.Doc)
}

// CheckView reports whether the maintained view matches a from-scratch
// recomputation (rows, values, contents and derivation counts).
func (e *Engine) CheckView(mv *ManagedView) bool {
	return mv.View.EqualRows(e.RecomputeView(mv))
}
