package core

import (
	"math/rand"
	"testing"

	"xivm/internal/pattern"
	"xivm/internal/store"
	"xivm/internal/update"
)

// TestSnapshotRestoreAndMaintain: a view snapshot taken in one engine is
// restored into a fresh engine over an identical document and keeps
// maintaining correctly — the persistence story of a disk-backed view.
func TestSnapshotRestoreAndMaintain(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	src := randomXML(rng, 3, 4)
	patternSrc := `//a{ID}[//b{ID}//c{ID}]//d{ID,val}`

	// First engine: materialize, apply a statement, snapshot.
	d1 := mustDoc(t, src)
	e1 := NewEngine(d1, Options{})
	mv1 := addView(t, e1, patternSrc)
	apply(t, e1, `insert <b><c>5</c></b> into /root//a`)
	snap := store.EncodeSnapshot(mv1.View)

	// Second engine: same document brought to the same state, view
	// restored from the snapshot instead of recomputed.
	d2 := mustDoc(t, src)
	e2 := NewEngine(d2, Options{})
	if _, err := e2.ApplyStatement(update.MustParse(`insert <b><c>5</c></b> into /root//a`)); err != nil {
		t.Fatal(err)
	}
	rows, err := store.DecodeSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	mv2, err := e2.AddViewRows("restored", pattern.MustParse(patternSrc), rows)
	if err != nil {
		t.Fatal(err)
	}
	if !mv2.View.EqualRows(mv1.View.Rows()) {
		t.Fatal("restored view differs from original")
	}
	// Note: the two engines assign Dewey IDs deterministically, so the
	// snapshot's IDs resolve against e2's document.
	for step := 0; step < 5; step++ {
		stmt := randomStatement(rng)
		if _, err := e1.ApplyStatement(update.MustParse(stmt)); err != nil {
			t.Fatal(err)
		}
		if _, err := e2.ApplyStatement(update.MustParse(stmt)); err != nil {
			t.Fatal(err)
		}
		if !mv2.View.EqualRows(mv1.View.Rows()) {
			t.Fatalf("step %d: restored view diverged", step)
		}
		if !e2.CheckView(mv2) {
			t.Fatalf("step %d: restored view inconsistent with recomputation", step)
		}
	}
}

// TestAddViewRowsRejectsStorelessPattern mirrors AddView's validation.
func TestAddViewRowsRejectsStorelessPattern(t *testing.T) {
	d := mustDoc(t, `<a><b/></a>`)
	e := NewEngine(d, Options{})
	if _, err := e.AddViewRows("bad", pattern.MustParse(`//a//b`), nil); err == nil {
		t.Fatal("expected error for store-less pattern")
	}
}

// TestSnapshotSizesCompact: the binary snapshot should be much smaller than
// the serialized document region it covers (the paper's compactness claim
// for ID-based views).
func TestSnapshotSizesCompact(t *testing.T) {
	d := mustDoc(t, func() string {
		s := "<root>"
		for i := 0; i < 200; i++ {
			s += "<a><b>some reasonably long text content here</b></a>"
		}
		return s + "</root>"
	}())
	e := NewEngine(d, Options{})
	mv := addView(t, e, `//a{ID}//b{ID}`)
	snap := store.EncodeSnapshot(mv.View)
	docBytes := len(d.String())
	if len(snap) >= docBytes {
		t.Fatalf("snapshot %dB not smaller than document %dB", len(snap), docBytes)
	}
}
