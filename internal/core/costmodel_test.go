package core

import (
	"math/rand"
	"testing"

	"xivm/internal/pattern"
	"xivm/internal/store"
	"xivm/internal/update"
)

func TestChooseSnowcapsReturnsValidMasks(t *testing.T) {
	d := mustDoc(t, `<root><a><b><c/></b><d/></a><a><b/><d/></a></root>`)
	st := store.New(d)
	p := pattern.MustParse(`//a{ID}[//b{ID}//c{ID}]//d{ID}`)
	masks := ChooseSnowcaps(p, st, nil)
	for _, m := range masks {
		if !p.IsSnowcap(m) {
			t.Fatalf("chosen mask %b is not a snowcap", m)
		}
		if m == p.FullMask() {
			t.Fatal("full view must never be chosen")
		}
	}
	// Sizes ascending.
	for i := 1; i < len(masks); i++ {
		a := len(pattern.MaskIndexes(masks[i-1]))
		b := len(pattern.MaskIndexes(masks[i]))
		if a > b {
			t.Fatal("masks not sorted by size")
		}
	}
}

func TestChooseSnowcapsRespectsProfile(t *testing.T) {
	d := mustDoc(t, `<root><a><b><c/></b><d/></a></root>`)
	st := store.New(d)
	p := pattern.MustParse(`//a{ID}[//b{ID}//c{ID}]//d{ID}`)
	// Only d is ever updated: terms all have ∆d (and maybe others). The
	// abc snowcap serves the Ra⋈Rb⋈Rc⋈∆d term and should be attractive;
	// with a zero-rate profile nothing should be materialized.
	none := ChooseSnowcaps(p, st, UpdateProfile{})
	if len(none) != 0 {
		t.Fatalf("zero profile chose %b", none)
	}
	dOnly := ChooseSnowcaps(p, st, UpdateProfile{"d": 1})
	for _, m := range dOnly {
		if pattern.MaskContains(m, 3) {
			t.Fatalf("mask %b contains the ∆-only node d", m)
		}
	}
}

// TestPolicyCostMaintainsCorrectly: the cost-based policy must preserve the
// maintenance-equals-recomputation invariant under random streams.
func TestPolicyCostMaintainsCorrectly(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 10; trial++ {
		d := mustDoc(t, randomXML(rng, 3, 4))
		e := NewEngine(d, Options{Policy: PolicyCost, Profile: UpdateProfile{"a": 1, "b": 2, "c": 1}})
		mv := addView(t, e, `//a{ID}[//b{ID}//c{ID}]//d{ID}`)
		mv2 := addView(t, e, `//a{ID}//b{ID}`)
		for step := 0; step < 6; step++ {
			st, err := update.Parse(randomStatement(rng))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := e.ApplyStatement(st); err != nil {
				t.Fatal(err)
			}
			if !e.CheckView(mv) || !e.CheckView(mv2) {
				t.Fatalf("trial %d step %d: cost-policy view diverged", trial, step)
			}
		}
	}
}

func TestNewLatticeMasksValidation(t *testing.T) {
	d := mustDoc(t, `<a><b/><c/></a>`)
	st := store.New(d)
	p := pattern.MustParse(`//a{ID}[//b{ID}]//c{ID}`)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-snowcap mask")
		}
	}()
	NewLatticeMasks(p, []uint64{1 << 1}, st, nil) // {b} without root
}

func TestLatticeMasksEmptyFallsBackToLeaves(t *testing.T) {
	d := mustDoc(t, `<a><b/></a>`)
	st := store.New(d)
	p := pattern.MustParse(`//a{ID}//b{ID}`)
	l := NewLatticeMasks(p, nil, st, nil)
	if l.Policy != PolicyLeaves || len(l.Materialized()) != 0 {
		t.Fatalf("policy %v, %d materialized", l.Policy, len(l.Materialized()))
	}
	// Block still computable on the fly.
	if b := l.Block(1); len(b.Cols) != 1 {
		t.Fatalf("block cols %v", b.Cols)
	}
}

func TestUniformProfileCoversLabels(t *testing.T) {
	p := pattern.MustParse(`//a{ID}//b{ID}`)
	up := UniformProfile(p)
	if up["a"] != 1 || up["b"] != 1 {
		t.Fatalf("profile %v", up)
	}
}
