package core

import (
	"xivm/internal/algebra"
	"xivm/internal/obs"
)

// engineMetrics bundles the engine's pre-resolved instruments so the hot
// path pays one atomic op per event instead of a registry lookup. All
// fields are nil-safe sinks when the registry is nil.
//
// Counter names (see the README's Observability section for the full
// table):
//
//	core.statements.{insert,delete,replace}   statements applied
//	core.targets                              update targets located
//	core.delta.items                          σ-filtered ∆-table entries built
//	core.terms.expanded                       union terms considered (post Props 3.3/4.2)
//	core.terms.evaluated                      union terms actually evaluated
//	core.prune.prop33 / core.prune.prop42     terms cut at view-development time
//	core.prune.prop36                         terms cut by empty σ(∆) (data-driven)
//	core.prune.prop38                         terms cut by insertion-point IDs
//	core.prune.prop47                         terms cut by deleted-node IDs
//	core.rows.{added,removed,modified}        view rows touched
//	core.lattice.tuples_dropped               snowcap tuples dropped on delete
//	core.predflip.recomputes                  predicate-flip fallback recomputations
//	core.views.skipped                        views skipped by the independence precheck
//	core.views.cancelled                      views aborted (and repaired) by ctx cancellation
//	core.views.panicked                       views whose propagation panicked (and were repaired)
//	core.lazy.{applied,flushes}               deferred statements / flushes
//
// Histogram names: core.phase.<phase> for the five propagation phases and
// core.lazy.flush for whole-batch flush time.
type engineMetrics struct {
	reg *obs.Metrics

	stInsert, stDelete, stReplace *obs.Counter
	targets                       *obs.Counter
	deltaItems                    *obs.Counter

	termsExpanded, termsEvaluated *obs.Counter
	pruneProp33, pruneProp42      *obs.Counter
	pruneProp36                   *obs.Counter
	pruneProp38                   *obs.Counter
	pruneProp47                   *obs.Counter

	rowsAdded, rowsRemoved, rowsModified        *obs.Counter
	latticeDropped                              *obs.Counter
	predFlips                                   *obs.Counter
	viewsSkipped, viewsCancelled, viewsPanicked *obs.Counter
	lazyApplied, lazyFlushes                    *obs.Counter

	phase     map[string]*obs.Histogram
	lazyFlush *obs.Histogram
}

func newEngineMetrics(reg *obs.Metrics) *engineMetrics {
	m := &engineMetrics{
		reg:            reg,
		stInsert:       reg.Counter("core.statements.insert"),
		stDelete:       reg.Counter("core.statements.delete"),
		stReplace:      reg.Counter("core.statements.replace"),
		targets:        reg.Counter("core.targets"),
		deltaItems:     reg.Counter("core.delta.items"),
		termsExpanded:  reg.Counter("core.terms.expanded"),
		termsEvaluated: reg.Counter("core.terms.evaluated"),
		pruneProp33:    reg.Counter("core.prune.prop33"),
		pruneProp42:    reg.Counter("core.prune.prop42"),
		pruneProp36:    reg.Counter("core.prune.prop36"),
		pruneProp38:    reg.Counter("core.prune.prop38"),
		pruneProp47:    reg.Counter("core.prune.prop47"),
		rowsAdded:      reg.Counter("core.rows.added"),
		rowsRemoved:    reg.Counter("core.rows.removed"),
		rowsModified:   reg.Counter("core.rows.modified"),
		latticeDropped: reg.Counter("core.lattice.tuples_dropped"),
		predFlips:      reg.Counter("core.predflip.recomputes"),
		viewsSkipped:   reg.Counter("core.views.skipped"),
		viewsCancelled: reg.Counter("core.views.cancelled"),
		viewsPanicked:  reg.Counter("core.views.panicked"),
		lazyApplied:    reg.Counter("core.lazy.applied"),
		lazyFlushes:    reg.Counter("core.lazy.flushes"),
		lazyFlush:      reg.Histogram("core.lazy.flush"),
		phase:          make(map[string]*obs.Histogram, len(obs.Phases)),
	}
	for _, p := range obs.Phases {
		m.phase[p] = reg.Histogram("core.phase." + p)
	}
	return m
}

// recordView folds one view's propagation outcome into the counters.
func (m *engineMetrics) recordView(vr *ViewReport) {
	m.rowsAdded.Add(int64(vr.RowsAdded))
	m.rowsRemoved.Add(int64(vr.RowsRemoved))
	m.rowsModified.Add(int64(vr.RowsModified))
	for phase, d := range vr.Phases {
		m.phase[phase].Observe(d)
	}
}

// countDeltaItems sums the σ-filtered ∆-table entries of one view pass.
func (m *engineMetrics) countDeltaItems(in algebra.Inputs) {
	var n int64
	for _, items := range in {
		n += int64(len(items))
	}
	m.deltaItems.Add(n)
}
