package core

import (
	"math"
	"sort"

	"xivm/internal/pattern"
	"xivm/internal/store"
)

// Section 3.5 sketches — and defers to future work — the cost-based choice
// of which snowcaps to materialize, driven by data statistics and an update
// profile. This file implements that optimizer: given the expected rate at
// which each label receives updates, it estimates, for every candidate set
// of materialized snowcaps, the per-update cost of evaluating the surviving
// union terms plus the cost of keeping the materializations themselves
// up to date, and picks the cheapest set greedily.

// UpdateProfile gives the relative frequency with which updates touch each
// label (the 〈bookLoan〉-style workload knowledge the paper describes as
// routinely gathered by database servers). Labels absent from the map are
// assumed never updated; a nil profile means "all view labels equally
// likely".
type UpdateProfile map[string]float64

// UniformProfile returns a profile giving every label of p weight 1.
func UniformProfile(p *pattern.Pattern) UpdateProfile {
	up := UpdateProfile{}
	for _, n := range p.Nodes {
		up[n.Label] = 1
	}
	return up
}

// costEstimator derives cardinality estimates from the store's canonical
// relation sizes — the XSKETCH-like statistics the paper assumes the
// database maintains anyway.
type costEstimator struct {
	p     *pattern.Pattern
	sizes []float64 // |σ(R_label)| per pattern node
}

func newCostEstimator(p *pattern.Pattern, st *store.Store) *costEstimator {
	ce := &costEstimator{p: p, sizes: make([]float64, p.Size())}
	in := st.Inputs(p)
	for i := range p.Nodes {
		ce.sizes[i] = float64(len(in[i]))
	}
	return ce
}

// blockCard estimates the cardinality of a sub-pattern block: the smallest
// input bounds the result of a chain of structural joins from above; each
// additional branch can only filter further. We take the min input size —
// crude, but monotone in the right direction for ranking.
func (ce *costEstimator) blockCard(mask uint64) float64 {
	card := math.Inf(1)
	for _, i := range pattern.MaskIndexes(mask) {
		if ce.sizes[i] < card {
			card = ce.sizes[i]
		}
	}
	if math.IsInf(card, 1) {
		return 0
	}
	return card
}

// joinCost estimates evaluating a sub-pattern from the leaves: the sum of
// its inputs (structural joins are linear in their inputs plus output).
func (ce *costEstimator) joinCost(mask uint64) float64 {
	total := 0.0
	for _, i := range pattern.MaskIndexes(mask) {
		total += ce.sizes[i]
	}
	return total + ce.blockCard(mask)
}

// termRate is the probability-weight that a given term fires under the
// profile: the minimum rate across its ∆ nodes (every ∆ table must be
// non-empty for the term to survive data pruning).
func termRate(p *pattern.Pattern, rmask uint64, profile UpdateProfile) float64 {
	rate := math.Inf(1)
	full := p.FullMask()
	for _, i := range pattern.MaskIndexes(full &^ rmask) {
		r := profile[p.Nodes[i].Label]
		if r < rate {
			rate = r
		}
	}
	if math.IsInf(rate, 1) {
		return 0
	}
	return rate
}

// ChooseSnowcaps picks the snowcap masks worth materializing for view p
// under the given profile. Starting from leaves-only, it greedily adds the
// snowcap with the best net benefit:
//
//	benefit(m) = Σ_terms rate(t) · [cost of computing block(t.R) from
//	             leaves − cost of reading the materialization]
//	           − maintenance(m)   (its own term evaluations per update)
//
// and stops when no candidate improves. The full mask (the view itself) is
// never a candidate. The returned masks are sorted by size.
func ChooseSnowcaps(p *pattern.Pattern, st *store.Store, profile UpdateProfile) []uint64 {
	if profile == nil {
		profile = UniformProfile(p)
	}
	ce := newCostEstimator(p, st)
	terms := InsertTerms(p)
	chosen := map[uint64]bool{}

	// cost of serving term t's R-block under the current choice.
	blockCost := func(rmask uint64) float64 {
		if rmask == 0 {
			return 0
		}
		if chosen[rmask] {
			return ce.blockCard(rmask) // read the materialization
		}
		return ce.joinCost(rmask)
	}
	// expected per-update term-evaluation cost for the view.
	viewCost := func() float64 {
		total := 0.0
		for _, t := range terms {
			total += termRate(p, t, profile) * blockCost(t)
		}
		return total
	}
	// maintenance cost of one materialized snowcap: its own surviving
	// terms, each paying the block cost of its R-part, weighted by how
	// often the term fires; the factor reflects that maintenance joins run
	// against ∆-sized inputs, not full relations.
	maintCost := func(mask uint64) float64 {
		total := 0.0
		for _, rmask := range snowcapTerms(p, mask) {
			rate := math.Inf(1)
			for _, i := range pattern.MaskIndexes(mask &^ rmask) {
				if r := profile[p.Nodes[i].Label]; r < rate {
					rate = r
				}
			}
			if math.IsInf(rate, 1) {
				continue
			}
			total += rate * blockCost(rmask)
		}
		return total * 0.5
	}

	candidates := p.Snowcaps()
	for {
		base := viewCost()
		bestGain := 0.0
		var best uint64
		found := false
		for _, m := range candidates {
			if m == p.FullMask() || chosen[m] {
				continue
			}
			chosen[m] = true
			gain := base - viewCost() - maintCost(m)
			delete(chosen, m)
			if gain > bestGain {
				bestGain, best, found = gain, m, true
			}
		}
		if !found {
			break
		}
		chosen[best] = true
	}

	out := make([]uint64, 0, len(chosen))
	for m, on := range chosen {
		if on {
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		ci, cj := len(pattern.MaskIndexes(out[i])), len(pattern.MaskIndexes(out[j]))
		if ci != cj {
			return ci < cj
		}
		return out[i] < out[j]
	})
	return out
}
