package core

import (
	"math/rand"
	"testing"
	"time"

	"xivm/internal/pattern"
	"xivm/internal/update"
)

// TestRootAnchoredDelta: a /-anchored pattern root can never bind an
// inserted node (insertions only add below existing nodes), so ∆_root is
// always empty and all terms containing it are pruned.
func TestRootAnchoredDelta(t *testing.T) {
	d := mustDoc(t, `<site><people/></site>`)
	e := NewEngine(d, Options{})
	mv := addView(t, e, `/site{ID}/people{ID}//person{ID}`)
	// Insert a whole site-labeled subtree somewhere: its site node must
	// not be mistaken for a document root.
	rep := apply(t, e, `insert <site><people><person/></people></site> into /site/people`)
	if !e.CheckView(mv) {
		t.Fatal("view diverged")
	}
	// The nested site/people/person chain is NOT anchored at the document
	// root, so the view gains only the person under the original people.
	if mv.View.Len() != 1 {
		t.Fatalf("rows %d", mv.View.Len())
	}
	_ = rep
}

// TestDescendantRootPatternSeesNestedMatches contrasts the anchored case.
func TestDescendantRootPatternSeesNestedMatches(t *testing.T) {
	d := mustDoc(t, `<site><people/></site>`)
	e := NewEngine(d, Options{})
	mv := addView(t, e, `//site{ID}/people{ID}//person{ID}`)
	apply(t, e, `insert <site><people><person/></people></site> into /site/people`)
	if !e.CheckView(mv) {
		t.Fatal("view diverged")
	}
	if mv.View.Len() != 2 {
		t.Fatalf("rows %d", mv.View.Len())
	}
}

func TestTimingsArithmetic(t *testing.T) {
	a := Timings{FindTargets: 1, ComputeDelta: 2, GetExpression: 3, ExecuteUpdate: 4, UpdateLattice: 5}
	b := a
	a.Add(b)
	if a.Total() != 2*15 {
		t.Fatalf("total %v", a.Total())
	}
	if b.Total() != 15*time.Nanosecond {
		t.Fatalf("b total %v", b.Total())
	}
}

func TestReportTimingsCountsFindOnce(t *testing.T) {
	d := mustDoc(t, `<root><a><b/></a></root>`)
	e := NewEngine(d, Options{})
	addView(t, e, `//a{ID}//b{ID}`)
	addView(t, e, `//a{ID}`)
	rep := apply(t, e, `insert <b/> into /root/a`)
	if len(rep.Views) != 2 {
		t.Fatalf("views %d", len(rep.Views))
	}
	total := rep.Timings()
	if total.FindTargets != rep.FindTargets {
		t.Fatal("FindTargets double counted")
	}
	// Per-view breakdowns never carry find_targets: the cost is paid once
	// per statement and lives on the Report.
	for i := range rep.Views {
		if got := rep.Views[i].Timings().FindTargets; got != 0 {
			t.Fatalf("view %d carries FindTargets %v", i, got)
		}
	}
}

func TestEngineErrors(t *testing.T) {
	d := mustDoc(t, `<root><a/></root>`)
	e := NewEngine(d, Options{})
	if _, err := e.AddView("bad", pattern.MustParse(`//a//b`)); err == nil {
		t.Fatal("store-less view accepted")
	}
	addView(t, e, `//a{ID}`)
	if _, err := e.ApplyStatement(update.MustParse(`delete /root`)); err == nil {
		t.Fatal("root deletion accepted")
	}
	if _, err := e.ApplyStatement(update.MustParse(`insert <x/> into /root/a/text()`)); err == nil {
		// Inserting under text nodes yields zero element targets — not an
		// error, just a no-op.
		t.Log("insert into text() treated as no-op")
	}
}

func TestPolicyStrings(t *testing.T) {
	if PolicySnowcaps.String() != "snowcaps" || PolicyLeaves.String() != "leaves" || PolicyCost.String() != "cost" {
		t.Fatal("policy names wrong")
	}
}

// TestMultiViewSharedStatement: several views over the same document all
// stay exact under one statement stream.
func TestMultiViewSharedStatement(t *testing.T) {
	d := mustDoc(t, `<root><a><b>5</b><c/></a><a><b>7</b></a></root>`)
	e := NewEngine(d, Options{})
	var mvs []*ManagedView
	for _, src := range []string{
		`//a{ID}//b{ID,val}`, `//a{ID}[//c]`, `//root{ID}/a{ID}`, `//b{ID}[val="5"]`,
	} {
		mvs = append(mvs, addView(t, e, src))
	}
	for _, stmt := range []string{
		`insert <b>5</b> into /root/a`,
		`delete //a/c`,
		`insert <a><c/><b>9</b></a> into /root`,
		`delete //b[val="7"]`,
	} {
		apply(t, e, stmt)
		for _, mv := range mvs {
			if !e.CheckView(mv) {
				t.Fatalf("view %s diverged after %q", mv.Name, stmt)
			}
		}
	}
}

// TestWordLeafPatterns: pattern leaves from the word alphabet A_w match
// words inside PCDATA and maintain correctly (Section 2.2's P dialect).
func TestWordLeafPatterns(t *testing.T) {
	d := mustDoc(t, `<root><a>hello world</a><a>goodbye world</a><a><b>hello there</b></a></root>`)
	e := NewEngine(d, Options{})
	mv := addView(t, e, `//a{ID}//~hello{ID}`)
	if mv.View.Len() != 2 {
		t.Fatalf("initial rows %d", mv.View.Len())
	}
	apply(t, e, `insert <b>hello again</b> into /root/a`)
	if !e.CheckView(mv) {
		t.Fatal("word-leaf view diverged after insert")
	}
	if mv.View.Len() != 5 {
		t.Fatalf("after insert rows %d", mv.View.Len())
	}
	// delete //a/b removes the original b and all three inserted ones,
	// leaving only the "hello world" text under the first a.
	apply(t, e, `delete //a/b`)
	if !e.CheckView(mv) {
		t.Fatal("word-leaf view diverged after delete")
	}
	if mv.View.Len() != 1 {
		t.Fatalf("after delete rows %d", mv.View.Len())
	}
}

// TestParallelPropagation: concurrent per-view propagation produces the
// same results as sequential (run with -race in CI).
func TestParallelPropagation(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	views := []string{
		`//a{ID}//b{ID}`, `//a{ID}[//b{ID}//c{ID}]//d{ID}`,
		`//root{ID}/a{ID,val}`, `//a{ID}//b{ID,cont}`, `//a{ID}[val="5"]//b{ID}`,
	}
	for trial := 0; trial < 8; trial++ {
		src := randomXML(rng, 3, 4)
		d1, d2 := mustDoc(t, src), mustDoc(t, src)
		e1 := NewEngine(d1, Options{})
		e2 := NewEngine(d2, Options{Parallel: true})
		var m1, m2 []*ManagedView
		for _, v := range views {
			m1 = append(m1, addView(t, e1, v))
			m2 = append(m2, addView(t, e2, v))
		}
		for step := 0; step < 5; step++ {
			stmt := randomStatement(rng)
			apply(t, e1, stmt)
			apply(t, e2, stmt)
			for i := range views {
				if !m2[i].View.EqualRows(m1[i].View.Rows()) {
					t.Fatalf("trial %d step %d: parallel differs for %s", trial, step, views[i])
				}
			}
		}
	}
}

// TestReplaceStatement: replace propagates as delete+insert and stays exact.
func TestReplaceStatement(t *testing.T) {
	d := mustDoc(t, `<root><a><b>old</b></a><a><b>keep</b><c/></a></root>`)
	e := NewEngine(d, Options{})
	mv := addView(t, e, `//a{ID}//b{ID,val}`)
	rep := apply(t, e, `replace //a/b with <b>new</b>`)
	if rep.Targets != 2 {
		t.Fatalf("targets %d", rep.Targets)
	}
	if !e.CheckView(mv) {
		t.Fatal("replace diverged from recomputation")
	}
	vals := map[string]int{}
	for _, r := range mv.View.Rows() {
		vals[r.Entries[1].Val]++
	}
	if vals["new"] != 2 || vals["old"] != 0 || vals["keep"] != 0 {
		t.Fatalf("vals %v", vals)
	}
}

// TestReplaceRandomStreams mixes replace into the central property.
func TestReplaceRandomStreams(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 10; trial++ {
		d := mustDoc(t, randomXML(rng, 3, 4))
		e := NewEngine(d, Options{})
		mv := addView(t, e, `//a{ID}[//b{ID}//c{ID}]//d{ID}`)
		mv2 := addView(t, e, `//a{ID}//b{ID,val}`)
		for step := 0; step < 6; step++ {
			stmt := randomStatement(rng)
			if rng.Intn(3) == 0 {
				l := []string{"a", "b", "c"}[rng.Intn(3)]
				stmt = "replace /root//" + l + " with <" + l + ">5<b/></" + l + ">"
			}
			st, err := update.Parse(stmt)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := e.ApplyStatement(st); err != nil {
				t.Fatal(err)
			}
			if !e.CheckView(mv) || !e.CheckView(mv2) {
				t.Fatalf("trial %d step %d: diverged after %q", trial, step, stmt)
			}
		}
	}
}
