package core

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"xivm/internal/obs"
	"xivm/internal/update"
)

// cancelOnSpan is a tracer that cancels a context the Nth time a span whose
// name matches the prefix starts — a deterministic way to cancel mid-pass
// without sleeping. Parallel propagation starts view spans from concurrent
// goroutines, so the counter must be synchronized.
type cancelOnSpan struct {
	prefix string
	after  int // cancel when the (after+1)-th matching span starts
	cancel context.CancelFunc
	mu     sync.Mutex
	seen   int
}

type noopSpan struct{}

func (noopSpan) End() {}

func (c *cancelOnSpan) StartSpan(name string) obs.Span {
	if strings.HasPrefix(name, c.prefix) {
		c.mu.Lock()
		fire := c.seen == c.after
		c.seen++
		c.mu.Unlock()
		if fire {
			c.cancel()
		}
	}
	return noopSpan{}
}

// TestCtxPreCancelled: a context cancelled before the call aborts cleanly —
// no document mutation, no view change.
func TestCtxPreCancelled(t *testing.T) {
	d := mustDoc(t, `<root><a><b/></a></root>`)
	e := New(d, WithMetrics(obs.New()))
	mv := addView(t, e, `//a{ID}//b{ID}`)
	before := mv.View.Len()
	nodes := d.Size()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := e.ApplyStatementCtx(ctx, update.MustParse(`insert <b/> into /root/a`))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep != nil {
		t.Fatalf("got a report from a pre-cancelled call: %+v", rep)
	}
	if d.Size() != nodes {
		t.Fatal("document mutated despite pre-cancellation")
	}
	if mv.View.Len() != before || !e.CheckView(mv) {
		t.Fatal("view changed despite pre-cancellation")
	}
}

// TestCtxCancelMidPass cancels while views are being propagated: the first
// view propagates algebraically, the rest are marked Cancelled and repaired
// by recomputation. Whatever the mix, every surviving view must equal a
// from-scratch recomputation afterwards — the engine never returns from a
// cancelled pass in a corrupt state.
func TestCtxCancelMidPass(t *testing.T) {
	for _, kind := range []string{
		`insert <b><c>5</c></b> into /root/a`,
		`delete /root//b`,
	} {
		reg := obs.New()
		ctx, cancel := context.WithCancel(context.Background())
		tr := &cancelOnSpan{prefix: "view:", after: 1, cancel: cancel}
		rng := rand.New(rand.NewSource(23))
		d := mustDoc(t, randomXML(rng, 3, 4))
		e := New(d, WithMetrics(reg), WithTracer(tr))
		views := []string{
			`//a{ID}//b{ID}`,
			`//a{ID}[//b{ID}//c{ID}]//d{ID}`,
			`//root{ID}/a{ID,val}`,
			`//a{ID}//b{ID,cont}`,
		}
		var mvs []*ManagedView
		for _, v := range views {
			mvs = append(mvs, addView(t, e, v))
		}

		rep, err := e.ApplyStatementCtx(ctx, update.MustParse(kind))
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: err = %v, want context.Canceled", kind, err)
		}
		if rep == nil {
			t.Fatalf("%s: mid-pass cancellation must still return the report", kind)
		}
		cancelled := 0
		for _, vr := range rep.Views {
			if vr.Cancelled {
				cancelled++
			}
		}
		if cancelled == 0 {
			t.Fatalf("%s: no view was cancelled (tracer saw %d view spans)", kind, tr.seen)
		}
		if got := reg.CounterValue("core.views.cancelled"); got != int64(cancelled) {
			t.Fatalf("%s: views.cancelled counter %d vs report %d", kind, got, cancelled)
		}
		// The update itself is applied; every view — propagated or repaired
		// — must match recomputation over the updated document.
		for i, mv := range mvs {
			if !e.CheckView(mv) {
				t.Fatalf("%s: view %s inconsistent after cancelled pass", kind, views[i])
			}
		}
		cancel()
	}
}

// TestCtxCancelBetweenReplaceHalves: cancelling during the delete half of a
// replace stops the insert half; views stay consistent with the
// half-replaced document.
func TestCtxCancelBetweenReplaceHalves(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	tr := &cancelOnSpan{prefix: "view:", after: 0, cancel: cancel}
	d := mustDoc(t, `<root><a><b>old</b></a><a><b>old</b></a></root>`)
	e := New(d, WithMetrics(obs.New()), WithTracer(tr))
	mv := addView(t, e, `//a{ID}/b{ID,val}`)

	_, err := e.ApplyStatementCtx(ctx, update.MustParse(`replace //a/b with <b>new</b>`))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The delete half ran (and was repaired), the insert half never did: no
	// b nodes remain.
	if !e.CheckView(mv) {
		t.Fatal("view inconsistent after cancelled replace")
	}
	if mv.View.Len() != 0 {
		t.Fatalf("insert half ran after cancellation: %d rows", mv.View.Len())
	}
}

// TestCtxParallelCancel: cancellation under concurrent propagation leaves
// every view consistent (run with -race in CI).
func TestCtxParallelCancel(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 6; trial++ {
		ctx, cancel := context.WithCancel(context.Background())
		tr := &cancelOnSpan{prefix: "view:", after: trial % 4, cancel: cancel}
		d := mustDoc(t, randomXML(rng, 3, 4))
		e := New(d, WithParallel(), WithMetrics(obs.New()), WithTracer(tr))
		views := []string{
			`//a{ID}//b{ID}`, `//a{ID}[//b{ID}//c{ID}]//d{ID}`,
			`//root{ID}/a{ID,val}`, `//a{ID}//b{ID,cont}`, `//a{ID}[val="5"]//b{ID}`,
		}
		var mvs []*ManagedView
		for _, v := range views {
			mvs = append(mvs, addView(t, e, v))
		}
		stmt := randomStatement(rng)
		_, err := e.ApplyStatementCtx(ctx, update.MustParse(stmt))
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("trial %d (%s): %v", trial, stmt, err)
		}
		for i, mv := range mvs {
			if !e.CheckView(mv) {
				t.Fatalf("trial %d (%s): view %s inconsistent", trial, stmt, views[i])
			}
		}
		cancel()
	}
}

// TestApplyPULCtx covers the PUL-level context entry point.
func TestApplyPULCtx(t *testing.T) {
	d := mustDoc(t, `<root><a><b/></a></root>`)
	e := New(d, WithMetrics(obs.New()))
	mv := addView(t, e, `//a{ID}//b{ID}`)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pul, err := update.ComputePUL(e.Doc, update.MustParse(`insert <b/> into /root/a`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.ApplyPULCtx(ctx, pul); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, err := e.ApplyPULCtx(context.Background(), pul); err != nil {
		t.Fatal(err)
	}
	if !e.CheckView(mv) {
		t.Fatal("view diverged")
	}
}

// TestParallelRaceMixedStream exercises the functional-option constructor
// with concurrent propagation, a shared collecting tracer and a mixed
// insert/delete/replace stream over five views — the -race workout.
func TestParallelRaceMixedStream(t *testing.T) {
	var tr obs.CollectTracer
	rng := rand.New(rand.NewSource(57))
	labels := []string{"a", "b", "c", "d", "e"}
	for trial := 0; trial < 4; trial++ {
		d := mustDoc(t, randomXML(rng, 3, 4))
		e := New(d,
			WithParallel(),
			WithMetrics(obs.New()),
			WithTracer(&tr),
			WithPolicy(PolicySnowcaps),
		)
		views := []string{
			`//a{ID}//b{ID}`, `//a{ID}[//b{ID}//c{ID}]//d{ID}`,
			`//root{ID}/a{ID,val}`, `//a{ID}//b{ID,cont}`, `//a{ID}[val="5"]//b{ID}`,
		}
		var mvs []*ManagedView
		for _, v := range views {
			mvs = append(mvs, addView(t, e, v))
		}
		for step := 0; step < 6; step++ {
			var stmt string
			if step%3 == 2 {
				l := labels[rng.Intn(len(labels))]
				stmt = "replace /root//" + l + " with <" + l + ">5<b/></" + l + ">"
			} else {
				stmt = randomStatement(rng)
			}
			if _, err := e.ApplyStatement(update.MustParse(stmt)); err != nil {
				t.Fatalf("trial %d step %d (%s): %v", trial, step, stmt, err)
			}
			for i, mv := range mvs {
				if !e.CheckView(mv) {
					t.Fatalf("trial %d step %d (%s): view %s diverged", trial, step, stmt, views[i])
				}
			}
		}
	}
	if len(tr.Spans()) == 0 {
		t.Fatal("tracer collected nothing")
	}
}
