package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"xivm/internal/algebra"
	"xivm/internal/pattern"
	"xivm/internal/update"
	"xivm/internal/xmltree"
)

func mustDoc(t *testing.T, s string) *xmltree.Document {
	t.Helper()
	d, err := xmltree.ParseString(s)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func addView(t *testing.T, e *Engine, src string) *ManagedView {
	t.Helper()
	mv, err := e.AddView(src, pattern.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	return mv
}

func apply(t *testing.T, e *Engine, stmt string) *Report {
	t.Helper()
	rep, err := e.ApplyStatement(update.MustParse(stmt))
	if err != nil {
		t.Fatalf("ApplyStatement(%q): %v", stmt, err)
	}
	return rep
}

// TestInsertTermsChain reproduces Example 3.2: for v1 = //a//b//c the terms
// surviving Proposition 3.3 are RaRb∆c, Ra∆b∆c and ∆a∆b∆c.
func TestInsertTermsChain(t *testing.T) {
	p := pattern.MustParse(`//a{ID}//b{ID}//c{ID}`)
	terms := InsertTerms(p)
	if len(terms) != 3 {
		t.Fatalf("terms = %b", terms)
	}
	want := map[uint64]bool{0: true, 1: true, 1 | 1<<1: true}
	for _, m := range terms {
		if !want[m] {
			t.Fatalf("unexpected term R-mask %b", m)
		}
	}
}

// TestInsertTermsMatchSnowcaps checks Proposition 3.12: surviving non-empty
// R-masks are exactly the proper snowcaps.
func TestInsertTermsMatchSnowcaps(t *testing.T) {
	p := pattern.MustParse(`//a{ID}[//b{ID}//c{ID}]//d{ID}`)
	terms := InsertTerms(p)
	snow := map[uint64]bool{}
	for _, m := range p.Snowcaps() {
		if m != p.FullMask() {
			snow[m] = true
		}
	}
	nonEmpty := 0
	for _, m := range terms {
		if m == 0 {
			continue
		}
		nonEmpty++
		if !snow[m] {
			t.Fatalf("term %b is not a snowcap", m)
		}
	}
	if nonEmpty != len(snow) {
		t.Fatalf("%d non-empty terms vs %d proper snowcaps", nonEmpty, len(snow))
	}
}

// TestPruneByDeltaExample34 reproduces Example 3.4: inserting
// <a><b/><b/></a> leaves ∆c empty, so no term of //a//b//c survives.
func TestPruneByDeltaExample34(t *testing.T) {
	d := mustDoc(t, `<r><a><b><c/></b></a></r>`)
	e := NewEngine(d, Options{})
	p := pattern.MustParse(`//a{ID}//b{ID}//c{ID}`)
	forest, _ := xmltree.ParseForest(`<a><b/><b/></a>`)
	cp, err := d.ApplyInsert(d.Root, forest[0])
	if err != nil {
		t.Fatal(err)
	}
	deltaIn := e.deltaInputs(p, []*xmltree.Node{cp})
	got := PruneByDelta(p, InsertTerms(p), deltaIn)
	if len(got) != 0 {
		t.Fatalf("survivors = %b", got)
	}
}

// TestPruneByInsertionPointsExample37 reproduces Example 3.7: inserting
// <b><c/></b> under an a node with no b ancestor kills RaRb∆c, leaving only
// Ra∆b∆c (∆a is empty so the all-∆ term dies via data pruning).
func TestPruneByInsertionPointsExample37(t *testing.T) {
	d := mustDoc(t, `<a><x/></a>`)
	e := NewEngine(d, Options{})
	p := pattern.MustParse(`//a{ID}//b{ID}//c{ID}`)
	forest, _ := xmltree.ParseForest(`<b><c/></b>`)
	cp, err := d.ApplyInsert(d.Root, forest[0])
	if err != nil {
		t.Fatal(err)
	}
	deltaIn := e.deltaInputs(p, []*xmltree.Node{cp})
	terms := PruneByDelta(p, InsertTerms(p), deltaIn)
	terms = PruneByInsertionPoints(p, terms, []*xmltree.Node{d.Root})
	if len(terms) != 1 || terms[0] != 1 {
		t.Fatalf("survivors = %b, want only Ra∆b∆c", terms)
	}
}

// TestInsertEndToEndExample31 walks Example 3.1/3.2: v1 = //a//b//c over a
// small document, insert <a><b/><b><c/></b></a>.
func TestInsertEndToEndExample31(t *testing.T) {
	d := mustDoc(t, `<r><a><b><c/></b></a></r>`)
	e := NewEngine(d, Options{})
	mv := addView(t, e, `//a{ID}//b{ID}//c{ID}`)
	if mv.View.Len() != 1 {
		t.Fatalf("initial len %d", mv.View.Len())
	}
	rep := apply(t, e, `insert <a><b/><b><c/></b></a> into /r`)
	if rep.Targets != 1 {
		t.Fatalf("targets %d", rep.Targets)
	}
	// New tuples: (a_new, b2_new, c_new). The old a is not an ancestor of
	// the new c? It is: new subtree sits under r, old a is a sibling — no.
	if mv.View.Len() != 2 {
		for _, r := range mv.View.Rows() {
			t.Logf("row %v", r.Entries[0].ID)
		}
		t.Fatalf("len %d", mv.View.Len())
	}
	if !e.CheckView(mv) {
		t.Fatal("maintained view differs from recomputation")
	}
}

// TestDeleteEndToEndExample45 reproduces Example 4.5: the view
// //a[//c]//b over the Figure 12 document has 8 tuples; deleting /a/f/c
// leaves tuples 1, 2 and 4.
func TestDeleteEndToEndExample45(t *testing.T) {
	d := mustDoc(t, `<a><c><b>1</b><b>2</b></c><f><c><b>3</b></c><b>4</b></f></a>`)
	e := NewEngine(d, Options{})
	mv := addView(t, e, `//a{ID}[//c{ID}]//b{ID}`)
	if mv.View.Len() != 8 {
		t.Fatalf("initial len %d", mv.View.Len())
	}
	apply(t, e, `delete /a/f/c`)
	if mv.View.Len() != 3 {
		t.Fatalf("len after delete %d", mv.View.Len())
	}
	if !e.CheckView(mv) {
		t.Fatal("maintained view differs from recomputation")
	}
}

// TestDerivationCountsExample48 follows Example 4.8: //a[//b] with two b
// nodes has one tuple with count 2; deleting //c//b halves the count;
// deleting //f//b removes the tuple.
func TestDerivationCountsExample48(t *testing.T) {
	d := mustDoc(t, `<a><c><b/></c><f><b/></f></a>`)
	e := NewEngine(d, Options{})
	mv := addView(t, e, `//a{ID}[//b]`)
	rows := mv.View.Rows()
	if len(rows) != 1 || rows[0].Count != 2 {
		t.Fatalf("initial rows %+v", rows)
	}
	apply(t, e, `delete //c//b`)
	rows = mv.View.Rows()
	if len(rows) != 1 || rows[0].Count != 1 {
		t.Fatalf("after first delete %+v", rows)
	}
	apply(t, e, `delete //f//b`)
	if mv.View.Len() != 0 {
		t.Fatalf("after second delete %d", mv.View.Len())
	}
	if !e.CheckView(mv) {
		t.Fatal("mismatch vs recomputation")
	}
}

// TestEvenDeltaDeleteCounts exercises the case where the paper's parity
// pruning would miscount: sibling branches deleted by one statement.
func TestEvenDeltaDeleteCounts(t *testing.T) {
	// a has embeddings via (c1,b1),(c1,b2),(c2,b3); deleting /a/x (which
	// holds c1 with b1,b2) must leave count 1, not remove the row.
	d := mustDoc(t, `<a><x><c><b/><b/></c></x><y><c><b/></c></y></a>`)
	e := NewEngine(d, Options{})
	mv := addView(t, e, `//a{ID}[//c//b]`)
	rows := mv.View.Rows()
	if len(rows) != 1 || rows[0].Count != 3 {
		t.Fatalf("initial rows %+v", rows)
	}
	apply(t, e, `delete /a/x`)
	rows = mv.View.Rows()
	if len(rows) != 1 || rows[0].Count != 1 {
		t.Fatalf("after delete %+v", rows)
	}
	if !e.CheckView(mv) {
		t.Fatal("mismatch vs recomputation")
	}
}

// TestPIMTContentRefresh follows Example 3.14: an insertion that adds no
// view tuples can still modify stored content.
func TestPIMTContentRefresh(t *testing.T) {
	d := mustDoc(t, `<a><b><d><c>old</c></d></b></a>`)
	e := NewEngine(d, Options{})
	mv := addView(t, e, `//a{ID}/b{ID}//c{ID,cont}`)
	before := mv.View.Rows()
	if len(before) != 1 || !strings.Contains(before[0].Entries[2].Cont, "old") {
		t.Fatalf("before %+v", before)
	}
	rep := apply(t, e, `insert <extra>some value</extra> into //d//c`)
	if rep.Views[0].RowsAdded != 0 {
		t.Fatalf("unexpected additions: %+v", rep.Views[0])
	}
	if rep.Views[0].RowsModified != 1 {
		t.Fatalf("modified %d", rep.Views[0].RowsModified)
	}
	after := mv.View.Rows()
	if !strings.Contains(after[0].Entries[2].Cont, "<extra>some value</extra>") {
		t.Fatalf("cont not refreshed: %q", after[0].Entries[2].Cont)
	}
	if !e.CheckView(mv) {
		t.Fatal("mismatch vs recomputation")
	}
}

// TestPDMTContentRefresh: deleting inside a stored subtree refreshes cont
// and val on the surviving tuple.
func TestPDMTContentRefresh(t *testing.T) {
	d := mustDoc(t, `<a><b>keep<x>drop</x></b><c/></a>`)
	e := NewEngine(d, Options{})
	mv := addView(t, e, `//a{ID}/b{ID,val,cont}`)
	apply(t, e, `delete //b/x`)
	rows := mv.View.Rows()
	if len(rows) != 1 {
		t.Fatalf("rows %d", len(rows))
	}
	en := rows[0].Entries[1]
	if en.Val != "keep" || strings.Contains(en.Cont, "drop") {
		t.Fatalf("entry not refreshed: %+v", en)
	}
	if !e.CheckView(mv) {
		t.Fatal("mismatch vs recomputation")
	}
}

// randomXML builds a deterministic random document over a small alphabet.
func randomXML(rng *rand.Rand, fanout, depth int) string {
	labels := []string{"a", "b", "c", "d", "e"}
	var build func(lvl int) string
	build = func(lvl int) string {
		l := labels[rng.Intn(len(labels))]
		var sb strings.Builder
		sb.WriteString("<" + l + ">")
		if rng.Intn(4) == 0 {
			sb.WriteString([]string{"5", "7", "zz"}[rng.Intn(3)])
		}
		if lvl < depth {
			for i := 0; i < rng.Intn(fanout+1); i++ {
				sb.WriteString(build(lvl + 1))
			}
		}
		sb.WriteString("</" + l + ">")
		return sb.String()
	}
	var sb strings.Builder
	sb.WriteString("<root>")
	for i := 0; i < fanout; i++ {
		sb.WriteString(build(1))
	}
	sb.WriteString("</root>")
	return sb.String()
}

func randomStatement(rng *rand.Rand) string {
	labels := []string{"a", "b", "c", "d", "e"}
	l := func() string { return labels[rng.Intn(len(labels))] }
	axis := func() string {
		if rng.Intn(2) == 0 {
			return "/"
		}
		return "//"
	}
	path := "/root"
	for i := 0; i < 1+rng.Intn(2); i++ {
		path += axis() + l()
	}
	if rng.Intn(2) == 0 {
		return "delete " + path
	}
	frag := fmt.Sprintf("<%s><%s>5</%s><%s/></%s>", l(), l(), "%[2]s", l(), "%[1]s")
	// Build a simple well-formed fragment by hand instead of Sprintf games.
	x, y, z := l(), l(), l()
	frag = fmt.Sprintf("<%s><%s>5</%s><%s/></%s>", x, y, y, z, x)
	return "insert " + frag + " into " + path
}

// TestMaintenanceEqualsRecomputation is the central property: across random
// documents, views and update statements, incrementally maintained views
// (rows, val/cont, derivation counts) match from-scratch recomputation.
func TestMaintenanceEqualsRecomputation(t *testing.T) {
	views := []string{
		`//a{ID}//b{ID}`,
		`//a{ID}[//b{ID}//c{ID}]//d{ID}`,
		`//a{ID}[//b]`,
		`//root{ID}/a{ID,val}`,
		`//a{ID}[val="5"]//b{ID}`,
		`//a{ID}//b{ID,cont}`,
		`//a{ID}[//c{ID}]//b{ID}`,
		`//*{ID}//b{ID}`,
	}
	for _, policy := range []Policy{PolicySnowcaps, PolicyLeaves} {
		rng := rand.New(rand.NewSource(99))
		for trial := 0; trial < 25; trial++ {
			d := mustDoc(t, randomXML(rng, 3, 4))
			e := NewEngine(d, Options{Policy: policy})
			var mvs []*ManagedView
			for _, src := range views {
				mvs = append(mvs, addView(t, e, src))
			}
			for step := 0; step < 6; step++ {
				stmt := randomStatement(rng)
				st, err := update.Parse(stmt)
				if err != nil {
					t.Fatalf("parse %q: %v", stmt, err)
				}
				if _, err := e.ApplyStatement(st); err != nil {
					t.Fatalf("%s policy trial %d step %d (%s): %v", policy, trial, step, stmt, err)
				}
				for vi, mv := range mvs {
					if !e.CheckView(mv) {
						t.Fatalf("%s policy trial %d step %d view %s diverged after %q\n got: %s\nwant: %s",
							policy, trial, step, views[vi], stmt,
							dumpRows(mv.View.Rows()), dumpRows(e.RecomputeView(mv)))
					}
				}
			}
		}
	}
}

func dumpRows(rows []algebra.Row) string {
	var sb strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&sb, "[c=%d", r.Count)
		for _, e := range r.Entries {
			fmt.Fprintf(&sb, " %v", e.ID)
		}
		sb.WriteString("] ")
	}
	return sb.String()
}

// TestLatticeStaysConsistent: after updates, materialized snowcap blocks
// equal fresh sub-pattern evaluation.
func TestLatticeStaysConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := mustDoc(t, randomXML(rng, 3, 4))
	e := NewEngine(d, Options{Policy: PolicySnowcaps})
	mv := addView(t, e, `//a{ID}[//b{ID}//c{ID}]//d{ID}`)
	for step := 0; step < 12; step++ {
		st, err := update.Parse(randomStatement(rng))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.ApplyStatement(st); err != nil {
			t.Fatal(err)
		}
		for _, mask := range mv.Lattice.Materialized() {
			got := mv.Lattice.Block(mask)
			want := algebra.EvalSubPattern(mv.Pattern, mask, e.Store.Inputs(mv.Pattern), nil)
			if !sameBlock(got, want) {
				t.Fatalf("step %d: lattice mask %b inconsistent (%d vs %d tuples)",
					step, mask, len(got.Tuples), len(want.Tuples))
			}
		}
	}
}

func sameBlock(a, b algebra.Block) bool {
	key := func(blk algebra.Block, t algebra.Tuple) string {
		var sb strings.Builder
		for _, c := range blk.Cols {
			for i, cc := range blk.Cols {
				if cc == c {
					_ = i
				}
			}
		}
		for _, it := range t.Items {
			sb.WriteString(it.ID.Key())
			sb.WriteByte(0xFE)
		}
		return sb.String()
	}
	if len(a.Tuples) != len(b.Tuples) {
		return false
	}
	counts := map[string]int{}
	for _, t := range a.Tuples {
		counts[key(a, t)] += t.Count
	}
	for _, t := range b.Tuples {
		counts[key(b, t)] -= t.Count
	}
	for _, v := range counts {
		if v != 0 {
			return false
		}
	}
	return true
}

// TestIVMAEquivalence: the node-at-a-time competitor produces the same view
// keys and counts as bulk maintenance for ID-only views.
func TestIVMAEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 10; trial++ {
		src := randomXML(rng, 3, 3)
		d1 := mustDoc(t, src)
		d2 := mustDoc(t, src)
		e1 := NewEngine(d1, Options{})
		e2 := NewEngine(d2, Options{})
		mv1 := addView(t, e1, `//a{ID}//b{ID}`)
		mv2 := addView(t, e2, `//a{ID}//b{ID}`)
		iv := NewIVMA(e2)
		for step := 0; step < 4; step++ {
			stmt := randomStatement(rng)
			st1 := update.MustParse(stmt)
			st2 := update.MustParse(stmt)
			if _, err := e1.ApplyStatement(st1); err != nil {
				t.Fatal(err)
			}
			if _, err := iv.ApplyStatement(st2); err != nil {
				t.Fatal(err)
			}
			r1, r2 := mv1.View.Rows(), mv2.View.Rows()
			if len(r1) != len(r2) {
				t.Fatalf("trial %d step %d (%s): bulk %d vs ivma %d rows", trial, step, stmt, len(r1), len(r2))
			}
			for i := range r1 {
				if r1[i].Key() != r2[i].Key() || r1[i].Count != r2[i].Count {
					t.Fatalf("trial %d step %d row %d differs", trial, step, i)
				}
			}
		}
	}
}

// TestFullRecomputeBaseline: the baseline produces the same rows as
// incremental maintenance.
func TestFullRecomputeBaseline(t *testing.T) {
	src := `<root><a><b>5</b></a><a><c/></a></root>`
	d1, d2 := mustDoc(t, src), mustDoc(t, src)
	e1, e2 := NewEngine(d1, Options{}), NewEngine(d2, Options{})
	mv1 := addView(t, e1, `//a{ID}//b{ID,val}`)
	mv2 := addView(t, e2, `//a{ID}//b{ID,val}`)
	stmt := `insert <b>9</b> into /root/a`
	apply(t, e1, stmt)
	if _, err := e2.FullRecompute(update.MustParse(stmt)); err != nil {
		t.Fatal(err)
	}
	if !mv1.View.EqualRows(mv2.View.Rows()) {
		t.Fatal("baseline and incremental disagree")
	}
}

// TestPruningAblation: disabling data/ID pruning changes work done, never
// results.
func TestPruningAblation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	src := randomXML(rng, 3, 4)
	stmts := []string{
		`insert <b><c>5</c></b> into /root/a`,
		`delete /root//b`,
		`insert <a><b/><d/></a> into /root`,
	}
	base := runStream(t, src, stmts, Options{})
	noPrune := runStream(t, src, stmts, Options{DisableDataPruning: true, DisableIDPruning: true})
	if base != noPrune {
		t.Fatalf("pruning changed results:\n%s\nvs\n%s", base, noPrune)
	}
}

func runStream(t *testing.T, src string, stmts []string, opts Options) string {
	t.Helper()
	d := mustDoc(t, src)
	e := NewEngine(d, opts)
	mv := addView(t, e, `//a{ID}[//b{ID}//c{ID}]//d{ID}`)
	for _, s := range stmts {
		st, err := update.Parse(s)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.ApplyStatement(st); err != nil {
			t.Fatal(err)
		}
		if !e.CheckView(mv) {
			t.Fatalf("diverged after %q", s)
		}
	}
	return dumpRows(mv.View.Rows())
}

// TestReportMetadata sanity-checks term accounting in reports.
func TestReportMetadata(t *testing.T) {
	d := mustDoc(t, `<root><a><b><c/></b></a></root>`)
	e := NewEngine(d, Options{})
	addView(t, e, `//a{ID}//b{ID}//c{ID}`)
	rep := apply(t, e, `insert <c/> into /root/a/b`)
	vr := rep.Views[0]
	if vr.TermsTotal != 3 {
		t.Fatalf("TermsTotal %d", vr.TermsTotal)
	}
	if vr.TermsSurvived != 1 { // only RaRb∆c: ∆a and ∆b empty
		t.Fatalf("TermsSurvived %d", vr.TermsSurvived)
	}
	if vr.RowsAdded != 1 {
		t.Fatalf("RowsAdded %d", vr.RowsAdded)
	}
	if rep.Timings().Total() <= 0 {
		t.Fatal("timings not recorded")
	}
}
