package core

import (
	"math/rand"
	"strings"
	"testing"

	"xivm/internal/obs"
	"xivm/internal/update"
)

// counter reads one counter from a registry by its exact name.
func counter(t *testing.T, m *obs.Metrics, name string) int64 {
	t.Helper()
	return m.CounterValue(name)
}

// TestStaticPruneCounters: Proposition 3.3 / 4.2 accounting at view
// development time. For //a//b//c there are 2^3−1 = 7 candidate terms and 3
// survivors, so 4 are statically pruned on each side.
func TestStaticPruneCounters(t *testing.T) {
	reg := obs.New()
	d := mustDoc(t, `<r><a><b><c/></b></a></r>`)
	e := New(d, WithMetrics(reg))
	addView(t, e, `//a{ID}//b{ID}//c{ID}`)
	if got := counter(t, reg, "core.prune.prop33"); got != 4 {
		t.Fatalf("prop33 = %d, want 4", got)
	}
	if got := counter(t, reg, "core.prune.prop42"); got != 4 {
		t.Fatalf("prop42 = %d, want 4", got)
	}
}

// TestMetricsInvariants drives a mixed statement stream through several
// views on a private registry and locks the cross-counter invariants:
// every expanded union term is either evaluated or pruned by exactly one
// data-driven proposition, the prune totals match the per-report term
// accounting, row counters match the reports, and every propagation phase
// plus the join/scan machinery recorded activity.
func TestMetricsInvariants(t *testing.T) {
	reg := obs.New()
	rng := rand.New(rand.NewSource(17))
	d := mustDoc(t, randomXML(rng, 3, 4))
	e := New(d, WithMetrics(reg))
	views := []string{
		`//a{ID}//b{ID}`,
		`//a{ID}[//b{ID}//c{ID}]//d{ID}`,
		`//root{ID}/a{ID,val}`,
		`//a{ID}//b{ID,cont}`,
	}
	for _, v := range views {
		addView(t, e, v)
	}

	var termsTotal, termsSurvived int64
	var added, removed, modified int64
	stmts := []string{
		`insert <b><c>5</c></b> into /root/a`,
		`delete /root//b`,
		`insert <a><b/><d/></a> into /root`,
		`replace /root/a with <a><b>5</b></a>`,
		`delete /root//d`,
		`insert <d/> into /root//c`,
	}
	for _, s := range stmts {
		rep, err := e.ApplyStatement(update.MustParse(s))
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		for _, vr := range rep.Views {
			termsTotal += int64(vr.TermsTotal)
			termsSurvived += int64(vr.TermsSurvived)
			added += int64(vr.RowsAdded)
			removed += int64(vr.RowsRemoved)
			modified += int64(vr.RowsModified)
		}
	}

	expanded := counter(t, reg, "core.terms.expanded")
	evaluated := counter(t, reg, "core.terms.evaluated")
	pruned := counter(t, reg, "core.prune.prop36") +
		counter(t, reg, "core.prune.prop38") +
		counter(t, reg, "core.prune.prop47")
	if expanded != evaluated+pruned {
		t.Fatalf("term accounting broken: expanded %d != evaluated %d + pruned %d",
			expanded, evaluated, pruned)
	}
	if expanded != termsTotal || evaluated != termsSurvived {
		t.Fatalf("counters disagree with reports: expanded %d/%d evaluated %d/%d",
			expanded, termsTotal, evaluated, termsSurvived)
	}
	if pruned != termsTotal-termsSurvived {
		t.Fatalf("pruned %d != dropped terms %d", pruned, termsTotal-termsSurvived)
	}
	if got := counter(t, reg, "core.rows.added"); got != added {
		t.Fatalf("rows.added %d vs reports %d", got, added)
	}
	if got := counter(t, reg, "core.rows.removed"); got != removed {
		t.Fatalf("rows.removed %d vs reports %d", got, removed)
	}
	if got := counter(t, reg, "core.rows.modified"); got != modified {
		t.Fatalf("rows.modified %d vs reports %d", got, modified)
	}
	// Replace counts once as replace, not as its delete+insert halves.
	if ins, del, repl := counter(t, reg, "core.statements.insert"),
		counter(t, reg, "core.statements.delete"),
		counter(t, reg, "core.statements.replace"); ins != 3 || del != 2 || repl != 1 {
		t.Fatalf("statement counters %d/%d/%d, want 3/2/1", ins, del, repl)
	}

	// Every propagation phase must have observed real work.
	snap := reg.Snapshot()
	phaseCounts := map[string]int64{}
	for _, h := range snap.Histograms {
		if name, ok := strings.CutPrefix(h.Name, "core.phase."); ok {
			phaseCounts[name] = h.Count
		}
	}
	for _, phase := range obs.Phases {
		if phaseCounts[phase] == 0 {
			t.Fatalf("phase %s never observed (histograms: %+v)", phase, phaseCounts)
		}
	}

	// The underlying machinery also left a trail.
	for _, name := range []string{
		"algebra.join.calls", "algebra.join.tuples_scanned", "algebra.project.rows",
		"store.scan.count", "store.scan.items", "core.delta.items", "core.targets",
	} {
		if counter(t, reg, name) == 0 {
			t.Fatalf("counter %s stayed zero", name)
		}
	}
}

// TestMetricsIsolation: engines with private registries do not leak into
// each other or into the process default.
func TestMetricsIsolation(t *testing.T) {
	r1, r2 := obs.New(), obs.New()
	d1 := mustDoc(t, `<root><a><b/></a></root>`)
	d2 := mustDoc(t, `<root><a><b/></a></root>`)
	e1 := New(d1, WithMetrics(r1))
	e2 := New(d2, WithMetrics(r2))
	addView(t, e1, `//a{ID}//b{ID}`)
	addView(t, e2, `//a{ID}//b{ID}`)
	apply(t, e1, `insert <b/> into /root/a`)
	if got := counter(t, r1, "core.statements.insert"); got != 1 {
		t.Fatalf("r1 insert count %d", got)
	}
	if got := r2.CounterValue("core.statements.insert"); got != 0 {
		t.Fatalf("r2 saw e1's statement: %d", got)
	}
}

// TestTracerSpans: a collecting tracer sees the statement, phase and view
// spans of a propagation pass.
func TestTracerSpans(t *testing.T) {
	var tr obs.CollectTracer
	d := mustDoc(t, `<root><a><b/></a></root>`)
	e := New(d, WithMetrics(obs.New()), WithTracer(&tr))
	addView(t, e, `//a{ID}//b{ID}`)
	apply(t, e, `insert <b/> into /root/a`)
	want := map[string]bool{
		"apply:insert":        false,
		obs.PhaseFindTargets:  false,
		"view://a{ID}//b{ID}": false,
		"view://a{ID}//b{ID}/" + obs.PhaseExecuteUpdate: false,
	}
	for _, sp := range tr.Spans() {
		if _, ok := want[sp.Name]; ok {
			want[sp.Name] = true
		}
		if sp.Duration < 0 {
			t.Fatalf("span %s has negative duration", sp.Name)
		}
	}
	for name, seen := range want {
		if !seen {
			t.Fatalf("span %q never traced; got %d spans", name, len(tr.Spans()))
		}
	}
}

// TestLazyMetrics: deferred mode counts applied statements and flushes.
func TestLazyMetrics(t *testing.T) {
	reg := obs.New()
	d := mustDoc(t, `<root><a><b/></a></root>`)
	e := New(d, WithMetrics(reg))
	mv := addView(t, e, `//a{ID}//b{ID}`)
	lz := NewLazy(e)
	for _, s := range []string{`insert <b/> into /root/a`, `delete /root/a/b`} {
		if err := lz.Apply(update.MustParse(s)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := lz.Flush(); err != nil {
		t.Fatal(err)
	}
	if !e.CheckView(mv) {
		t.Fatal("lazy flush diverged")
	}
	if got := counter(t, reg, "core.lazy.applied"); got != 2 {
		t.Fatalf("lazy.applied %d", got)
	}
	if got := counter(t, reg, "core.lazy.flushes"); got != 1 {
		t.Fatalf("lazy.flushes %d", got)
	}
}
