package core

import (
	"time"

	"xivm/internal/algebra"
	"xivm/internal/dewey"
	"xivm/internal/update"
	"xivm/internal/xmltree"
)

// Lazy implements the deferred propagation mode Section 5 motivates: update
// statements are applied to the document (and canonical relations)
// immediately, but view propagation is postponed until Flush — typically
// just before the view is consulted. The flush propagates the batch's NET
// effect in two algebraic passes:
//
//  1. one deletion pass whose ∆− tables hold the detached subtrees
//     (batch-inserted nodes excluded: the views never saw them, so
//     counting them would over-decrement derivations), evaluated against
//     final-state relations with the batch's surviving insertions masked
//     out — a disjoint partition, so counts stay exact; then
//  2. one insertion pass whose ∆+ tables hold the surviving inserted
//     subtrees, against the same masked relations.
//
// Insert-then-delete churn inside a batch therefore costs nothing at flush
// time — the effect the reduction rules of Section 5 obtain one operation
// at a time, achieved here wholesale.
type Lazy struct {
	e        *Engine
	insRoots []*xmltree.Node // every root inserted during the batch
	delRoots []*xmltree.Node // every subtree detached during the batch
	touched  []dewey.ID      // insertion targets and deletion parents
	probes   []predProbe
	pending  int
}

// NewLazy wraps an engine in deferred-propagation mode. Statements must go
// through Lazy.Apply; mixing in direct Engine.ApplyStatement calls while a
// batch is pending would propagate against half-updated state.
func NewLazy(e *Engine) *Lazy {
	if e.pool != nil {
		panic("core: deferred propagation is incompatible with SharedSnowcaps")
	}
	return &Lazy{e: e}
}

// Pending returns the number of statements applied since the last flush.
func (l *Lazy) Pending() int { return l.pending }

// Apply runs the statement against the document and store only, recording
// what Flush needs. The views go stale until Flush.
func (l *Lazy) Apply(st *update.Statement) error {
	e := l.e
	pul, err := update.ComputePUL(e.Doc, st)
	if err != nil {
		return err
	}
	l.probes = append(l.probes, e.snapshotPredicates(pul)...)
	applied, err := update.Apply(e.Doc, e.Store, pul)
	if err != nil {
		return err
	}
	switch pul.Kind {
	case update.Insert:
		l.insRoots = append(l.insRoots, applied.InsertedRoots...)
		for _, pi := range pul.Inserts {
			l.touched = append(l.touched, pi.Target.ID)
		}
	case update.Delete:
		l.delRoots = append(l.delRoots, applied.DeletedRoots...)
		for _, n := range applied.DeletedRoots {
			l.touched = append(l.touched, n.ID.Parent())
		}
	}
	l.pending++
	e.m.lazyApplied.Inc()
	return nil
}

// Flush propagates the batch's net effect to every view and resets the
// batch. It returns the time spent propagating.
func (l *Lazy) Flush() (time.Duration, error) {
	if l.pending == 0 {
		return 0, nil
	}
	start := time.Now()
	e := l.e

	// Nodes inserted during the batch, alive or not, identified by ID
	// prefix against every recorded inserted root.
	allIns := make([]dewey.ID, len(l.insRoots))
	for i, r := range l.insRoots {
		allIns[i] = r.ID
	}
	insCover := dewey.NewCover(allIns)

	// Surviving insertions: roots still attached to the document.
	var insAlive []*xmltree.Node
	for _, r := range l.insRoots {
		if e.Doc.NodeByID(r.ID) != nil {
			insAlive = append(insAlive, r)
		}
	}

	for _, mv := range e.Views {
		l.flushView(mv, insCover, insAlive)
	}

	for mv := range flippedViews(l.probes) {
		e.recomputeFallback(mv)
	}

	l.insRoots, l.delRoots, l.touched, l.probes, l.pending = nil, nil, nil, nil, 0
	dur := time.Since(start)
	e.m.lazyFlushes.Inc()
	e.m.lazyFlush.Observe(dur)
	return dur, nil
}

func (l *Lazy) flushView(mv *ManagedView, insCover *dewey.Cover, insAlive []*xmltree.Node) {
	e := l.e
	p := mv.Pattern

	// R for both passes: the final relations with every batch-inserted
	// node masked out — exactly the pre-batch survivors.
	rIn := excludeInputs(e.Store.Inputs(p), insCover)

	// Pass 1: deletions. Materialized snowcaps drop bindings inside the
	// detached subtrees first (they were never told about insertions, so
	// after this they equal rIn's state).
	mv.Lattice.ApplyDelete(l.delRoots)
	if len(l.delRoots) > 0 {
		removeRowsUnder(mv, l.delRoots)
		delIn := excludeInputs(e.deltaInputs(p, l.delRoots), insCover)
		terms := mv.deleteTerms
		if !e.opts.DisableDataPruning {
			terms = PruneByDelta(p, terms, delIn)
		}
		if !e.opts.DisableIDPruning {
			terms = PruneByDeletedIDs(p, terms, delIn)
		}
		var storedMask uint64
		for _, i := range p.StoredIndexes() {
			storedMask |= 1 << uint(i)
		}
		for _, rmask := range terms {
			if (p.FullMask()&^rmask)&storedMask != 0 {
				continue // handled by removeRowsUnder
			}
			for _, row := range e.evalTermFrom(mv, rmask, delIn, rIn) {
				mv.View.DecrementBy(row.Key(), row.Count)
			}
		}
	}

	// Pass 2: surviving insertions.
	if len(insAlive) > 0 {
		insIn := e.deltaInputs(p, insAlive)
		terms := mv.insertTerms
		if !e.opts.DisableDataPruning {
			terms = PruneByDelta(p, terms, insIn)
		}
		if !e.opts.DisableIDPruning {
			points := make([]*xmltree.Node, 0, len(insAlive))
			for _, r := range insAlive {
				if r.Parent != nil {
					points = append(points, r.Parent)
				}
			}
			terms = PruneByInsertionPoints(p, terms, points)
		}
		for _, rmask := range terms {
			for _, row := range e.evalTermFrom(mv, rmask, insIn, rIn) {
				mv.View.Upsert(row)
			}
		}
		mv.Lattice.ApplyInsertFrom(insIn, rIn)
	}

	// Refresh stored val/cont of rows whose nodes enclose any touch point.
	l.refreshTouched(mv)
}

// refreshTouched re-extracts val/cont for rows whose annotated entries are
// ancestors-or-self of any insertion target or deletion parent.
func (l *Lazy) refreshTouched(mv *ManagedView) {
	cvn := mv.Pattern.ContValIndexes()
	if len(cvn) == 0 || len(l.touched) == 0 {
		return
	}
	cvnSet := make(map[int]bool, len(cvn))
	for _, i := range cvn {
		cvnSet[i] = true
	}
	affected := map[string]bool{}
	for _, id := range l.touched {
		for lvl := id.Level(); lvl >= 1; lvl-- {
			affected[id.AncestorAt(lvl).Key()] = true
		}
	}
	var dirty []string
	mv.View.Each(func(r algebra.Row) bool {
		for _, entry := range r.Entries {
			if cvnSet[entry.NodeIdx] && affected[entry.ID.Key()] {
				dirty = append(dirty, r.Key())
				return true
			}
		}
		return true
	})
	for _, key := range dirty {
		l.e.refreshRow(mv, key, cvnSet)
	}
}

// excludeInputs filters every node's items to those outside the cover.
func excludeInputs(in algebra.Inputs, cover *dewey.Cover) algebra.Inputs {
	if cover.Len() == 0 {
		return in
	}
	out := make(algebra.Inputs, len(in))
	for i, items := range in {
		kept := make([]algebra.Item, 0, len(items))
		for _, it := range items {
			if !cover.Contains(it.ID) {
				kept = append(kept, it)
			}
		}
		out[i] = kept
	}
	return out
}
