package core

import (
	"sort"
	"time"

	"xivm/internal/algebra"
	"xivm/internal/dewey"
	"xivm/internal/update"
	"xivm/internal/xmltree"
)

// Lazy implements the deferred propagation mode Section 5 motivates: update
// statements are applied to the document (and canonical relations)
// immediately, but view propagation is postponed until Flush — typically
// just before the view is consulted. The flush propagates the batch's NET
// effect in two algebraic passes:
//
//  1. one deletion pass whose ∆− tables hold the detached subtrees
//     (batch-inserted nodes excluded: the views never saw them, so
//     counting them would over-decrement derivations), evaluated against
//     final-state relations with the batch's surviving insertions masked
//     out — a disjoint partition, so counts stay exact; then
//  2. one insertion pass whose ∆+ tables hold the surviving inserted
//     subtrees, against the same masked relations.
//
// Insert-then-delete churn inside a batch therefore costs nothing at flush
// time — the effect the reduction rules of Section 5 obtain one operation
// at a time, achieved here wholesale.
type Lazy struct {
	e        *Engine
	insRoots []*xmltree.Node // every root inserted during the batch
	delRoots []*xmltree.Node // every subtree detached during the batch
	touched  []dewey.ID      // insertion targets and deletion parents
	probes   []predProbe
	pending  int
}

// NewLazy wraps an engine in deferred-propagation mode. Statements must go
// through Lazy.Apply; mixing in direct Engine.ApplyStatement calls while a
// batch is pending would propagate against half-updated state.
func NewLazy(e *Engine) *Lazy {
	if e.pool != nil {
		panic("core: deferred propagation is incompatible with SharedSnowcaps")
	}
	return &Lazy{e: e}
}

// Pending returns the number of statements applied since the last flush.
func (l *Lazy) Pending() int { return l.pending }

// Apply runs the statement against the document and store only, recording
// what Flush needs. The views go stale until Flush. Replace statements are
// expanded into their deletion and insertion stages, both recorded in the
// same batch (the net-effect flush composes them like any other churn).
func (l *Lazy) Apply(st *update.Statement) error {
	e := l.e
	if e.opts.Journal != nil {
		if err := e.opts.Journal(st); err != nil {
			return err
		}
	}
	if st.Kind == update.Replace {
		delPul, insPul, err := update.ExpandReplace(e.Doc, st)
		if err != nil {
			return err
		}
		// Predicate probes for both stages must capture the pre-update
		// state, so snapshot before any mutation.
		l.probes = append(l.probes, e.snapshotPredicates(delPul)...)
		l.probes = append(l.probes, e.snapshotPredicates(insPul)...)
		delApplied, err := update.Apply(e.Doc, e.Store, delPul)
		if err != nil {
			return err
		}
		l.recordDeletes(delApplied)
		insApplied, err := update.Apply(e.Doc, e.Store, insPul)
		if err != nil {
			return err
		}
		l.recordInserts(insPul, insApplied)
		l.pending++
		e.m.lazyApplied.Inc()
		e.bumpVersion()
		return nil
	}
	pul, err := update.ComputePUL(e.Doc, st)
	if err != nil {
		return err
	}
	l.probes = append(l.probes, e.snapshotPredicates(pul)...)
	applied, err := update.Apply(e.Doc, e.Store, pul)
	if err != nil {
		return err
	}
	switch pul.Kind {
	case update.Insert:
		l.recordInserts(pul, applied)
	case update.Delete:
		l.recordDeletes(applied)
	}
	l.pending++
	e.m.lazyApplied.Inc()
	e.bumpVersion()
	return nil
}

func (l *Lazy) recordInserts(pul *update.PUL, applied *update.Applied) {
	l.insRoots = append(l.insRoots, applied.InsertedRoots...)
	for _, pi := range pul.Inserts {
		l.touched = append(l.touched, pi.Target.ID)
	}
}

// recordDeletes books the detached subtrees and their parents as touch
// points. A root-level delete (a child of the document root) has the root
// itself as parent; the null ID a hypothetical rootless node would yield is
// skipped — refreshTouched iterates ancestor levels and must never see a
// level-0 ID.
func (l *Lazy) recordDeletes(applied *update.Applied) {
	l.delRoots = append(l.delRoots, applied.DeletedRoots...)
	for _, n := range applied.DeletedRoots {
		if p := n.ID.Parent(); !p.IsNull() {
			l.touched = append(l.touched, p)
		}
	}
}

// Flush propagates the batch's net effect to every view and resets the
// batch. It returns the time spent propagating.
func (l *Lazy) Flush() (time.Duration, error) {
	if l.pending == 0 {
		return 0, nil
	}
	start := time.Now()
	e := l.e

	// Nodes inserted during the batch, alive or not. Identity must be the
	// node POINTER, not the Dewey ID: a delete followed by an insert under
	// the same parent reuses freed sibling ordinals, so an inserted node can
	// carry the exact ID of a node deleted earlier in the batch (replace
	// statements do this every time). An ID-prefix cover would then mask the
	// deleted subtrees out of ∆− and the flush would never decrement them.
	inserted := make(map[*xmltree.Node]bool)
	for _, r := range l.insRoots {
		xmltree.Walk(r, func(n *xmltree.Node) bool {
			inserted[n] = true
			return true
		})
	}

	// Surviving insertions: roots still attached to the document. The
	// pointer comparison guards against a later insert reusing the ID of an
	// inserted-then-deleted root. Roots nested inside other surviving roots
	// (a later statement inserting into an earlier insertion) are dropped:
	// the outermost root's subtree walk already covers them, so keeping
	// both would double-count the inner subtree in ∆+. Attached nodes have
	// unambiguous IDs, and in sorted order a root's descendants follow it
	// contiguously, so checking the last kept root suffices.
	var insAlive []*xmltree.Node
	for _, r := range l.insRoots {
		if e.Doc.NodeByID(r.ID) == r {
			insAlive = append(insAlive, r)
		}
	}
	sort.Slice(insAlive, func(i, j int) bool { return insAlive[i].ID.Compare(insAlive[j].ID) < 0 })
	kept := insAlive[:0]
	for _, r := range insAlive {
		if k := len(kept); k > 0 && kept[k-1].ID.IsAncestorOf(r.ID) {
			continue
		}
		kept = append(kept, r)
	}
	insAlive = kept

	for _, mv := range e.Views {
		l.flushView(mv, inserted, insAlive)
	}

	for mv := range flippedViews(l.probes) {
		e.recomputeFallback(mv)
	}

	l.insRoots, l.delRoots, l.touched, l.probes, l.pending = nil, nil, nil, nil, 0
	dur := time.Since(start)
	e.m.lazyFlushes.Inc()
	e.m.lazyFlush.Observe(dur)
	return dur, nil
}

func (l *Lazy) flushView(mv *ManagedView, inserted map[*xmltree.Node]bool, insAlive []*xmltree.Node) {
	e := l.e
	p := mv.Pattern

	// R for both passes: the final relations with every batch-inserted
	// node masked out — exactly the pre-batch survivors.
	rIn := excludeInputs(e.Store.Inputs(p), inserted)

	// Pass 1: deletions. Materialized snowcaps drop bindings inside the
	// detached subtrees first (they were never told about insertions, so
	// after this they equal rIn's state).
	mv.Lattice.ApplyDelete(l.delRoots)
	if len(l.delRoots) > 0 {
		removeRowsUnder(mv, l.delRoots)
		delIn := excludeInputs(e.deltaInputs(p, l.delRoots), inserted)
		terms := mv.deleteTerms
		if !e.opts.DisableDataPruning {
			terms = PruneByDelta(p, terms, delIn)
		}
		if !e.opts.DisableIDPruning {
			terms = PruneByDeletedIDs(p, terms, delIn)
		}
		var storedMask uint64
		for _, i := range p.StoredIndexes() {
			storedMask |= 1 << uint(i)
		}
		for _, rmask := range terms {
			if (p.FullMask()&^rmask)&storedMask != 0 {
				continue // handled by removeRowsUnder
			}
			for _, row := range e.evalTermFrom(mv, rmask, delIn, rIn) {
				mv.View.DecrementBy(row.Key(), row.Count)
			}
		}
	}

	// Pass 2: surviving insertions.
	if len(insAlive) > 0 {
		insIn := e.deltaInputs(p, insAlive)
		terms := mv.insertTerms
		if !e.opts.DisableDataPruning {
			terms = PruneByDelta(p, terms, insIn)
		}
		if !e.opts.DisableIDPruning {
			points := make([]*xmltree.Node, 0, len(insAlive))
			for _, r := range insAlive {
				if r.Parent != nil {
					points = append(points, r.Parent)
				}
			}
			terms = PruneByInsertionPoints(p, terms, points)
		}
		for _, rmask := range terms {
			for _, row := range e.evalTermFrom(mv, rmask, insIn, rIn) {
				mv.View.Upsert(row)
			}
		}
		mv.Lattice.ApplyInsertFrom(insIn, rIn)
	}

	// Refresh stored val/cont of rows whose nodes enclose any touch point.
	l.refreshTouched(mv)
}

// refreshTouched re-extracts val/cont for rows whose annotated entries are
// ancestors-or-self of any insertion target or deletion parent.
func (l *Lazy) refreshTouched(mv *ManagedView) {
	cvn := mv.Pattern.ContValIndexes()
	if len(cvn) == 0 || len(l.touched) == 0 {
		return
	}
	cvnSet := make(map[int]bool, len(cvn))
	for _, i := range cvn {
		cvnSet[i] = true
	}
	affected := map[string]bool{}
	for _, id := range l.touched {
		for lvl := id.Level(); lvl >= 1; lvl-- {
			affected[id.KeyAt(lvl)] = true
		}
	}
	var dirty []string
	mv.View.Each(func(r algebra.Row) bool {
		for _, entry := range r.Entries {
			if cvnSet[entry.NodeIdx] && affected[entry.ID.Key()] {
				dirty = append(dirty, r.Key())
				return true
			}
		}
		return true
	})
	for _, key := range dirty {
		l.e.refreshRow(mv, key, cvnSet)
	}
}

// excludeInputs filters every node's items to those whose live node is not
// in the excluded set. Pointer identity (not IDs) keeps batch-reused Dewey
// ordinals from conflating old and new nodes.
func excludeInputs(in algebra.Inputs, excluded map[*xmltree.Node]bool) algebra.Inputs {
	if len(excluded) == 0 {
		return in
	}
	out := make(algebra.Inputs, len(in))
	for i, items := range in {
		kept := make([]algebra.Item, 0, len(items))
		for _, it := range items {
			if !excluded[it.Node] {
				kept = append(kept, it)
			}
		}
		out[i] = kept
	}
	return out
}
