package core

import (
	"sync"

	"xivm/internal/algebra"
	"xivm/internal/pattern"
	"xivm/internal/xmltree"
)

// Snapshot is an immutable, self-contained image of the engine at one
// version: every view's rows (deep-copied, so later in-place refreshes of
// the live view cannot reach them), an independent copy of the document,
// and the version counter identifying the state. A Snapshot is safe for
// unlimited concurrent readers and never changes after Engine.Snapshot
// returns — the epoch-published read path (internal/server) swaps an
// atomic pointer to the latest one after each applied statement, so
// readers serve consistent states without ever locking the writer.
type Snapshot struct {
	// Version is Engine.Version() at capture time.
	Version uint64
	// Tenant names the database this snapshot serves. The engine does not
	// know its tenant; the serving layer stamps the name once, between
	// capture and publication, so every reader of a published epoch can
	// report which tenant and which epoch its response reflects. Empty
	// outside multi-tenant serving.
	Tenant string
	// Views holds one immutable row set per managed view, in registration
	// order.
	Views []ViewSnapshot

	// doc is an ID-preserving deep copy of the document (not a serialized
	// reparse: reparsing would compact Dewey IDs assigned by the mutation
	// history, making XPath results disagree with the view rows captured
	// in the same snapshot).
	doc *xmltree.Document

	xmlOnce sync.Once
	xml     string
}

// ViewSnapshot is one view's immutable image inside a Snapshot.
type ViewSnapshot struct {
	Name    string
	Pattern *pattern.Pattern
	// Rows are the view's rows in canonical (document) order. The slice
	// and every row's Entries are private copies.
	Rows []algebra.Row
}

// Snapshot captures the engine's current state. It must be called from the
// thread that owns the engine (the single writer), between mutations —
// exactly where internal/server's apply loop calls it. The returned value
// is immutable and may be shared with any number of concurrent readers.
// Capture cost is O(|document| + Σ|view rows|) per call.
func (e *Engine) Snapshot() *Snapshot {
	s := &Snapshot{
		Version: e.Version(),
		Views:   make([]ViewSnapshot, 0, len(e.Views)),
		doc:     e.Doc.Snapshot(),
	}
	for _, mv := range e.Views {
		s.Views = append(s.Views, ViewSnapshot{
			Name:    mv.Name,
			Pattern: mv.Pattern,
			Rows:    copyRows(mv.View.Rows()),
		})
	}
	return s
}

// copyRows deep-copies row entries: View.Rows returns a fresh row slice,
// but each row's Entries still aliases the view's internal storage, which
// the tuple-modification algorithms (PIMT/PDMT refresh) later mutate in
// place. dewey.IDs and strings are immutable and safe to share.
func copyRows(rows []algebra.Row) []algebra.Row {
	out := make([]algebra.Row, len(rows))
	for i, r := range rows {
		entries := make([]algebra.RowEntry, len(r.Entries))
		copy(entries, r.Entries)
		out[i] = algebra.Row{Entries: entries, Count: r.Count}
	}
	return out
}

// View returns the snapshot of the named view, or nil if no such view was
// managed at capture time.
func (s *Snapshot) View(name string) *ViewSnapshot {
	for i := range s.Views {
		if s.Views[i].Name == name {
			return &s.Views[i]
		}
	}
	return nil
}

// Doc returns the snapshot's document copy. Its nodes carry the IDs the
// live tree had at capture time, so rows in the same snapshot resolve
// against it. Shared by all readers of this snapshot; treat as read-only.
func (s *Snapshot) Doc() *xmltree.Document { return s.doc }

// DocXML serializes the snapshot document, building the string at most
// once no matter how many readers ask.
func (s *Snapshot) DocXML() string {
	s.xmlOnce.Do(func() { s.xml = s.doc.String() })
	return s.xml
}

// RepairAllViews rebuilds every managed view (rows and lattice) from the
// current document, the heavy-handed recovery a long-lived writer loop
// reaches for after a panic escaped a single statement's apply path. It is
// best-effort: if the panic interrupted the document mutation itself the
// document may not reflect the full statement, but views are at least
// consistent with whatever document state remains.
func (e *Engine) RepairAllViews() {
	for _, mv := range e.Views {
		e.recomputeFallback(mv)
	}
}
