package core

import (
	"strings"

	"xivm/internal/algebra"
	"xivm/internal/dewey"
	"xivm/internal/pattern"
	"xivm/internal/qvm"
	"xivm/internal/store"
	"xivm/internal/update"
	"xivm/internal/xmltree"
)

// Section 3.5 closes with the observation that snowcap materialization can
// be optimized "in a more global fashion: in a context where several views
// are materialized and some snowcaps may be shared, it makes sense to ...
// pick a set of snowcaps sufficient for maintaining all the views". Pool
// implements that sharing: snowcap sub-patterns are deduplicated across
// views by structural signature, each shared sub-pattern is materialized
// once, and maintained once per statement instead of once per view.
//
// Enabled with Options.SharedSnowcaps; each view's lattice then resolves
// its chain masks through the engine's pool, remapping the canonical
// columns back to its own pattern-node indexes.

type poolEntry struct {
	sub    *pattern.Pattern // canonical sub-pattern (indexes 0..k-1)
	mat    *store.Mat
	refs   int
	prog   *qvm.Program // compiled existence program for the sub-pattern
	labels []string     // distinct node labels (qvm.RequiredLabels)
}

// Pool shares materialized snowcaps between views.
type Pool struct {
	store   *store.Store
	join    algebra.JoinFunc
	entries map[string]*poolEntry
}

// NewPool creates an empty pool over the engine's store.
func NewPool(st *store.Store, join algebra.JoinFunc) *Pool {
	return &Pool{store: st, join: join, entries: map[string]*poolEntry{}}
}

// Signature canonicalizes a sub-pattern: structure, labels, edges and value
// predicates — everything that determines its extent (stored attributes are
// irrelevant to ID-only materializations).
func Signature(sub *pattern.Pattern) string {
	var b strings.Builder
	var walk func(n *pattern.Node)
	walk = func(n *pattern.Node) {
		if n.Desc {
			b.WriteString("//")
		} else {
			b.WriteString("/")
		}
		b.WriteString(n.Label)
		if n.HasPred {
			b.WriteString("[=")
			b.WriteString(n.PredVal)
			b.WriteString("]")
		}
		b.WriteString("(")
		for _, c := range n.Children {
			walk(c)
		}
		b.WriteString(")")
	}
	walk(sub.Root)
	return b.String()
}

// Register materializes (or references) the shared snowcap for the given
// sub-pattern, returning its signature for later lookups.
func (pl *Pool) Register(sub *pattern.Pattern) string {
	sig := Signature(sub)
	if e, ok := pl.entries[sig]; ok {
		e.refs++
		return sig
	}
	m := store.NewMat(sub, sub.FullMask())
	m.FillFromBlock(algebra.EvalSubPattern(sub, sub.FullMask(), pl.store.Inputs(sub), pl.join))
	e := &poolEntry{sub: sub, mat: m, refs: 1, labels: qvm.RequiredLabels(sub)}
	// The compiled existence program decides "can this sub-pattern match at
	// all?" without building tuples; patterns beyond the compiler's dialect
	// (none today) would simply skip the fast existence path.
	if prog, err := qvm.CompilePattern(sub); err == nil {
		e.prog = prog
	}
	pl.entries[sig] = e
	return sig
}

// Exists reports whether the registered sub-pattern has at least one
// embedding in the document, via its compiled program's early-exit walk.
// The second result is false for unknown signatures.
func (pl *Pool) Exists(sig string, d *xmltree.Document) (bool, bool) {
	e, ok := pl.entries[sig]
	if !ok || e.prog == nil {
		return false, false
	}
	return e.prog.Exists(d), true
}

// Block returns the shared materialization's tuples with columns remapped
// to the caller's pattern-node indexes (orig[i] = caller index of canonical
// node i).
func (pl *Pool) Block(sig string, orig []int) (algebra.Block, bool) {
	e, ok := pl.entries[sig]
	if !ok {
		return algebra.Block{}, false
	}
	b := e.mat.Block()
	cols := make([]int, len(b.Cols))
	for i, c := range b.Cols {
		cols[i] = orig[c]
	}
	b.Cols = cols
	return b, true
}

// Entries returns the number of distinct shared snowcaps.
func (pl *Pool) Entries() int { return len(pl.entries) }

// SharedRefs returns the total reference count across entries (how many
// view-chain slots the pool serves).
func (pl *Pool) SharedRefs() int {
	total := 0
	for _, e := range pl.entries {
		total += e.refs
	}
	return total
}

// ApplyInsert maintains every shared snowcap once for a statement's
// insertions: each entry's additions are its own insertion terms, with ∆
// tables extracted per entry (signatures embed the σ predicates, so the
// filtered inputs are identical for every sharing view).
// The per-statement presence scan makes maintenance O(one walk + affected
// entries) instead of O(entries × walk): every insertion term joins at
// least one ∆ table (InsertTerms excludes the all-relational mask), so an
// entry none of whose node labels occur in the inserted forest has all its
// ∆ tables empty and every term empty — it can be skipped before the
// per-entry delta extraction walk.
func (pl *Pool) ApplyInsert(inserted []*xmltree.Node) {
	pr := pl.scanPresence(inserted)
	for _, e := range pl.entries {
		if !pr.hasAny(e.labels) {
			continue
		}
		deltaIn := deltaInputsFor(e.sub, inserted, pl.store.Doc())
		rIn := pl.store.Inputs(e.sub)
		full := e.sub.FullMask()
		var additions []algebra.Block
		for _, rmask := range InsertTerms(e.sub) {
			dmask := full &^ rmask
			empty := false
			for _, i := range pattern.MaskIndexes(dmask) {
				if len(deltaIn[i]) == 0 {
					empty = true
					break
				}
			}
			if empty {
				continue
			}
			var blk algebra.Block
			if rmask == 0 {
				blk = algebra.EvalSubPattern(e.sub, full, deltaIn, pl.join)
			} else {
				blk = algebra.EvalSubPattern(e.sub, rmask, rIn, pl.join)
				forest, roots := algebra.EvalForest(e.sub, dmask, deltaIn, pl.join)
				blk = algebra.AttachForest(e.sub, blk, forest, roots, pl.join)
			}
			if len(blk.Tuples) > 0 {
				additions = append(additions, blk)
			}
		}
		for _, blk := range additions {
			e.mat.AddBlock(blk)
		}
	}
}

// ApplyDelete drops tuples bound inside deleted subtrees from every shared
// snowcap, once per statement.
func (pl *Pool) ApplyDelete(deleted []*xmltree.Node) {
	if len(deleted) == 0 {
		return
	}
	cover := coverOf(deleted)
	for _, e := range pl.entries {
		e.mat.RemoveUnderAny(cover)
	}
}

// insertPresence summarizes one statement's inserted forest for the label
// gate: which node labels occur, whether any element occurs (for "*"
// pattern nodes), and which registered word labels have a matching token.
type insertPresence struct {
	anyElement bool
	labels     map[string]bool // element labels, "@name", "#text"
	words      map[string]bool // "~w" labels with a witness text node
}

// scanPresence walks the inserted roots once, testing only the word labels
// some entry actually uses.
func (pl *Pool) scanPresence(inserted []*xmltree.Node) insertPresence {
	var words []string
	seenWord := map[string]bool{}
	for _, e := range pl.entries {
		for _, l := range e.labels {
			if strings.HasPrefix(l, "~") && !seenWord[l] {
				seenWord[l] = true
				words = append(words, l)
			}
		}
	}
	pr := insertPresence{labels: map[string]bool{}, words: map[string]bool{}}
	for _, r := range inserted {
		xmltree.Walk(r, func(n *xmltree.Node) bool {
			if n.Kind == xmltree.Element {
				pr.anyElement = true
			}
			pr.labels[n.Label] = true
			for _, w := range words {
				if !pr.words[w] && n.MatchesWord(w[1:]) {
					pr.words[w] = true
				}
			}
			return true
		})
	}
	return pr
}

// hasAny reports whether any of the entry's labels occurs in the forest.
func (pr *insertPresence) hasAny(labels []string) bool {
	for _, l := range labels {
		switch {
		case l == "*":
			if pr.anyElement {
				return true
			}
		case strings.HasPrefix(l, "~"):
			if pr.words[l] {
				return true
			}
		default:
			if pr.labels[l] {
				return true
			}
		}
	}
	return false
}

func coverOf(deleted []*xmltree.Node) *dewey.Cover {
	ids := make([]dewey.ID, len(deleted))
	for i, n := range deleted {
		ids[i] = n.ID
	}
	return dewey.NewCover(ids)
}

// deltaInputsFor mirrors Engine.deltaInputs for a standalone sub-pattern.
func deltaInputsFor(sub *pattern.Pattern, roots []*xmltree.Node, doc *xmltree.Document) algebra.Inputs {
	labels := make([]string, 0, sub.Size())
	for _, n := range sub.Nodes {
		labels = append(labels, n.Label)
	}
	tables := update.DeltaTables(roots, labels)
	in := make(algebra.Inputs, sub.Size())
	for i, n := range sub.Nodes {
		in[i] = algebra.Filter(tables[n.Label], n, doc)
	}
	in[0] = algebra.FilterRootAnchor(sub, in[0])
	return in
}
