package core

import (
	"strings"

	"xivm/internal/algebra"
	"xivm/internal/dewey"
	"xivm/internal/pattern"
	"xivm/internal/store"
	"xivm/internal/update"
	"xivm/internal/xmltree"
)

// Section 3.5 closes with the observation that snowcap materialization can
// be optimized "in a more global fashion: in a context where several views
// are materialized and some snowcaps may be shared, it makes sense to ...
// pick a set of snowcaps sufficient for maintaining all the views". Pool
// implements that sharing: snowcap sub-patterns are deduplicated across
// views by structural signature, each shared sub-pattern is materialized
// once, and maintained once per statement instead of once per view.
//
// Enabled with Options.SharedSnowcaps; each view's lattice then resolves
// its chain masks through the engine's pool, remapping the canonical
// columns back to its own pattern-node indexes.

type poolEntry struct {
	sub  *pattern.Pattern // canonical sub-pattern (indexes 0..k-1)
	mat  *store.Mat
	refs int
}

// Pool shares materialized snowcaps between views.
type Pool struct {
	store   *store.Store
	join    algebra.JoinFunc
	entries map[string]*poolEntry
}

// NewPool creates an empty pool over the engine's store.
func NewPool(st *store.Store, join algebra.JoinFunc) *Pool {
	return &Pool{store: st, join: join, entries: map[string]*poolEntry{}}
}

// Signature canonicalizes a sub-pattern: structure, labels, edges and value
// predicates — everything that determines its extent (stored attributes are
// irrelevant to ID-only materializations).
func Signature(sub *pattern.Pattern) string {
	var b strings.Builder
	var walk func(n *pattern.Node)
	walk = func(n *pattern.Node) {
		if n.Desc {
			b.WriteString("//")
		} else {
			b.WriteString("/")
		}
		b.WriteString(n.Label)
		if n.HasPred {
			b.WriteString("[=")
			b.WriteString(n.PredVal)
			b.WriteString("]")
		}
		b.WriteString("(")
		for _, c := range n.Children {
			walk(c)
		}
		b.WriteString(")")
	}
	walk(sub.Root)
	return b.String()
}

// Register materializes (or references) the shared snowcap for the given
// sub-pattern, returning its signature for later lookups.
func (pl *Pool) Register(sub *pattern.Pattern) string {
	sig := Signature(sub)
	if e, ok := pl.entries[sig]; ok {
		e.refs++
		return sig
	}
	m := store.NewMat(sub, sub.FullMask())
	m.FillFromBlock(algebra.EvalSubPattern(sub, sub.FullMask(), pl.store.Inputs(sub), pl.join))
	pl.entries[sig] = &poolEntry{sub: sub, mat: m, refs: 1}
	return sig
}

// Block returns the shared materialization's tuples with columns remapped
// to the caller's pattern-node indexes (orig[i] = caller index of canonical
// node i).
func (pl *Pool) Block(sig string, orig []int) (algebra.Block, bool) {
	e, ok := pl.entries[sig]
	if !ok {
		return algebra.Block{}, false
	}
	b := e.mat.Block()
	cols := make([]int, len(b.Cols))
	for i, c := range b.Cols {
		cols[i] = orig[c]
	}
	b.Cols = cols
	return b, true
}

// Entries returns the number of distinct shared snowcaps.
func (pl *Pool) Entries() int { return len(pl.entries) }

// SharedRefs returns the total reference count across entries (how many
// view-chain slots the pool serves).
func (pl *Pool) SharedRefs() int {
	total := 0
	for _, e := range pl.entries {
		total += e.refs
	}
	return total
}

// ApplyInsert maintains every shared snowcap once for a statement's
// insertions: each entry's additions are its own insertion terms, with ∆
// tables extracted per entry (signatures embed the σ predicates, so the
// filtered inputs are identical for every sharing view).
func (pl *Pool) ApplyInsert(inserted []*xmltree.Node) {
	for _, e := range pl.entries {
		deltaIn := deltaInputsFor(e.sub, inserted, pl.store.Doc())
		rIn := pl.store.Inputs(e.sub)
		full := e.sub.FullMask()
		var additions []algebra.Block
		for _, rmask := range InsertTerms(e.sub) {
			dmask := full &^ rmask
			empty := false
			for _, i := range pattern.MaskIndexes(dmask) {
				if len(deltaIn[i]) == 0 {
					empty = true
					break
				}
			}
			if empty {
				continue
			}
			var blk algebra.Block
			if rmask == 0 {
				blk = algebra.EvalSubPattern(e.sub, full, deltaIn, pl.join)
			} else {
				blk = algebra.EvalSubPattern(e.sub, rmask, rIn, pl.join)
				forest, roots := algebra.EvalForest(e.sub, dmask, deltaIn, pl.join)
				blk = algebra.AttachForest(e.sub, blk, forest, roots, pl.join)
			}
			if len(blk.Tuples) > 0 {
				additions = append(additions, blk)
			}
		}
		for _, blk := range additions {
			e.mat.AddBlock(blk)
		}
	}
}

// ApplyDelete drops tuples bound inside deleted subtrees from every shared
// snowcap, once per statement.
func (pl *Pool) ApplyDelete(deleted []*xmltree.Node) {
	if len(deleted) == 0 {
		return
	}
	cover := coverOf(deleted)
	for _, e := range pl.entries {
		e.mat.RemoveUnderAny(cover)
	}
}

func coverOf(deleted []*xmltree.Node) *dewey.Cover {
	ids := make([]dewey.ID, len(deleted))
	for i, n := range deleted {
		ids[i] = n.ID
	}
	return dewey.NewCover(ids)
}

// deltaInputsFor mirrors Engine.deltaInputs for a standalone sub-pattern.
func deltaInputsFor(sub *pattern.Pattern, roots []*xmltree.Node, doc *xmltree.Document) algebra.Inputs {
	labels := make([]string, 0, sub.Size())
	for _, n := range sub.Nodes {
		labels = append(labels, n.Label)
	}
	tables := update.DeltaTables(roots, labels)
	in := make(algebra.Inputs, sub.Size())
	for i, n := range sub.Nodes {
		in[i] = algebra.Filter(tables[n.Label], n, doc)
	}
	in[0] = algebra.FilterRootAnchor(sub, in[0])
	return in
}
