package core

import (
	"xivm/internal/algebra"
	"xivm/internal/obs"
	"xivm/internal/pattern"
	"xivm/internal/update"
	"xivm/internal/xmltree"
)

// Option configures an Engine at construction time. Options compose left to
// right: later options override earlier ones.
type Option func(*Options)

// New indexes the document and returns an engine configured by the given
// options — the preferred constructor:
//
//	e := core.New(doc, core.WithParallel(), core.WithTracer(t))
//
// New(doc) with no options is equivalent to NewEngine(doc, Options{}): the
// paper's default configuration (snowcap policy, Dewey structural joins,
// all pruning enabled, sequential propagation, process-wide metrics).
func New(doc *xmltree.Document, options ...Option) *Engine {
	var opts Options
	for _, o := range options {
		o(&opts)
	}
	return NewEngine(doc, opts)
}

// WithPolicy selects the lattice materialization policy (Section 6.7).
func WithPolicy(p Policy) Option { return func(o *Options) { o.Policy = p } }

// WithJoin overrides the physical join used for every structural join.
func WithJoin(j algebra.JoinFunc) Option { return func(o *Options) { o.Join = j } }

// WithParallel propagates each statement to all views concurrently.
func WithParallel() Option { return func(o *Options) { o.Parallel = true } }

// WithSharedSnowcaps deduplicates snowcap materializations across views.
func WithSharedSnowcaps() Option { return func(o *Options) { o.SharedSnowcaps = true } }

// WithProfile supplies the update profile driving PolicyCost.
func WithProfile(p UpdateProfile) Option { return func(o *Options) { o.Profile = p } }

// WithIndependencePrecheck installs a static update/view independence test;
// statements it proves independent of a view skip that view entirely.
func WithIndependencePrecheck(f func(*pattern.Pattern, *update.Statement) bool) Option {
	return func(o *Options) { o.IndependencePrecheck = f }
}

// WithMetrics records the engine's counters and histograms into m instead
// of the process-wide obs.Default() registry.
func WithMetrics(m *obs.Metrics) Option { return func(o *Options) { o.Metrics = m } }

// WithTracer installs a span tracer covering statements, phases and views.
func WithTracer(t obs.Tracer) Option { return func(o *Options) { o.Tracer = t } }

// WithJournal installs a write-ahead hook: f runs with every statement
// before the document or any view is mutated, and an error from it aborts
// the statement with no effect. The durability layer (internal/wal) uses
// this to append statements to its log ahead of propagation.
func WithJournal(f func(st *update.Statement) error) Option {
	return func(o *Options) { o.Journal = f }
}

// WithOnApplied subscribes f to the applied-statement delta stream: it
// runs after each statement (or batch unit) has landed in the document and
// every view, with the engine version that covers it. See
// Options.OnApplied for the contiguity contract consumers rely on.
func WithOnApplied(f func(sts []*update.Statement, version uint64)) Option {
	return func(o *Options) { o.OnApplied = f }
}

// SetOnApplied installs (or replaces) the applied-statement hook after
// construction — for owners like a serving shard that wrap an engine they
// did not build. Not synchronized: call before the engine is shared with
// an applying goroutine.
func (e *Engine) SetOnApplied(f func(sts []*update.Statement, version uint64)) {
	e.opts.OnApplied = f
}

// WithoutDataPruning disables Proposition 3.6's data-driven term pruning
// (ablation).
func WithoutDataPruning() Option { return func(o *Options) { o.DisableDataPruning = true } }

// WithoutIDPruning disables the ID-driven pruning of Propositions 3.8 / 4.7
// (ablation).
func WithoutIDPruning() Option { return func(o *Options) { o.DisableIDPruning = true } }
