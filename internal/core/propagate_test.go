package core

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"xivm/internal/algebra"
	"xivm/internal/obs"
	"xivm/internal/pattern"
	"xivm/internal/update"
)

// armablePanicJoin delegates to the default structural join until armed,
// then panics exactly once — a deterministic way to blow up one view's
// propagation mid-statement without touching the others. Safe under
// parallel propagation (the arm flag is consumed atomically).
type armablePanicJoin struct {
	armed atomic.Bool
}

func (j *armablePanicJoin) join(left algebra.Block, lIdx int, right algebra.Block, rIdx int, desc bool) algebra.Block {
	if j.armed.CompareAndSwap(true, false) {
		panic("injected join failure")
	}
	return algebra.StructuralJoin(left, lIdx, right, rIdx, desc)
}

// TestPropagatePanicRepaired: a panic inside one view's propagation must
// not escape ApplyStatement. The panicking view is reported, repaired by
// recomputation, and the engine keeps applying statements afterwards —
// sequentially and under parallel propagation (where, before containment,
// the panic would have killed the process from inside a goroutine).
func TestPropagatePanicRepaired(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		name := "sequential"
		if parallel {
			name = "parallel"
		}
		t.Run(name, func(t *testing.T) {
			reg := obs.New()
			pj := &armablePanicJoin{}
			opts := []Option{WithMetrics(reg), WithJoin(pj.join)}
			if parallel {
				opts = append(opts, WithParallel())
			}
			d := mustDoc(t, `<root><a><b><c>5</c></b></a><a><b><c>7</c></b></a></root>`)
			e := New(d, opts...)
			views := []string{
				`//a{ID}//b{ID}`,
				`//a{ID}//b{ID}//c{ID,val}`,
				`//root{ID}//c{ID}`,
			}
			var mvs []*ManagedView
			for _, v := range views {
				mvs = append(mvs, addView(t, e, v))
			}

			pj.armed.Store(true)
			rep, err := e.ApplyStatement(update.MustParse(`insert <b><c>9</c></b> into /root/a`))
			if err != nil {
				t.Fatalf("apply with panicking view: %v", err)
			}
			panicked := 0
			for _, vr := range rep.Views {
				if vr.Panicked {
					panicked++
				}
			}
			if panicked != 1 {
				t.Fatalf("panicked views = %d, want 1", panicked)
			}
			if got := reg.CounterValue("core.views.panicked"); got != 1 {
				t.Fatalf("core.views.panicked = %d, want 1", got)
			}
			for i, mv := range mvs {
				if !e.CheckView(mv) {
					t.Fatalf("view %s inconsistent after repaired panic", views[i])
				}
			}

			// The writer loop scenario: the next statement (join disarmed)
			// must propagate normally.
			rep2, err := e.ApplyStatement(update.MustParse(`delete /root/a/b`))
			if err != nil {
				t.Fatalf("apply after panic: %v", err)
			}
			for _, vr := range rep2.Views {
				if vr.Panicked {
					t.Fatal("panic flag leaked into the next statement")
				}
			}
			for i, mv := range mvs {
				if !e.CheckView(mv) {
					t.Fatalf("view %s inconsistent after post-panic statement", views[i])
				}
			}
		})
	}
}

// TestPropagateCancelWithSkips: cancellation mid-fan-out while the
// independence precheck has some views skipped. Skip entries must survive
// as Skipped (not be misreported as Cancelled), cancelled views must be
// repaired, and every view must equal fresh recomputation afterwards.
func TestPropagateCancelWithSkips(t *testing.T) {
	reg := obs.New()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Cancel when the second non-skipped view's propagation span starts.
	tr := &cancelOnSpan{prefix: "view:", after: 1, cancel: cancel}
	// Declare every view whose pattern mentions "d" independent of the
	// statement (the statement only touches b/c subtrees, so skipping is
	// also semantically correct here).
	precheck := func(p *pattern.Pattern, st *update.Statement) bool {
		for _, n := range p.Nodes {
			if n.Label == "d" {
				return true
			}
		}
		return false
	}
	d := mustDoc(t, `<root><a><b><c>5</c></b><d/></a><a><b/><d/></a></root>`)
	e := New(d, WithMetrics(reg), WithTracer(tr), WithIndependencePrecheck(precheck))
	views := []string{
		`//a{ID}/d{ID}`, // skipped
		`//a{ID}//b{ID}`,
		`//a{ID}//b{ID}//c{ID,val}`,
		`//root{ID}//c{ID}`,
	}
	var mvs []*ManagedView
	for _, v := range views {
		mvs = append(mvs, addView(t, e, v))
	}

	rep, err := e.ApplyStatementCtx(ctx, update.MustParse(`insert <b><c>9</c></b> into /root/a`))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep == nil {
		t.Fatal("mid-pass cancellation must still return the report")
	}
	var skipped, cancelled, propagated int
	for _, vr := range rep.Views {
		switch {
		case vr.Skipped && vr.Cancelled:
			t.Fatalf("view %s both Skipped and Cancelled", vr.View.Name)
		case vr.Skipped:
			if strings.Contains(vr.View.Pattern.String(), "d") == false {
				t.Fatalf("view %s skipped but not declared independent", vr.View.Name)
			}
			skipped++
		case vr.Cancelled:
			cancelled++
		default:
			propagated++
		}
	}
	if skipped != 1 {
		t.Fatalf("skipped views = %d, want 1", skipped)
	}
	if cancelled == 0 {
		t.Fatal("no view cancelled despite mid-fan-out cancellation")
	}
	if propagated == 0 {
		t.Fatal("cancellation fired before any view propagated")
	}
	if got := reg.CounterValue("core.views.skipped"); got != int64(skipped) {
		t.Fatalf("core.views.skipped = %d, want %d", got, skipped)
	}
	if got := reg.CounterValue("core.views.cancelled"); got != int64(cancelled) {
		t.Fatalf("core.views.cancelled = %d, want %d", got, cancelled)
	}
	for i, mv := range mvs {
		if !e.CheckView(mv) {
			t.Fatalf("view %s inconsistent after cancelled pass with skips", views[i])
		}
	}

	// The engine keeps working after the cancelled pass.
	if _, err := e.ApplyStatement(update.MustParse(`delete /root//c`)); err != nil {
		t.Fatalf("apply after cancelled pass: %v", err)
	}
	for i, mv := range mvs {
		if !e.CheckView(mv) {
			t.Fatalf("view %s inconsistent after follow-up statement", views[i])
		}
	}
}

// TestSnapshotImmutable: a snapshot taken before mutations keeps serving
// the captured state — rows, document content, and IDs — no matter what
// the engine does afterwards. The document copy must preserve the live
// tree's (history-dependent) Dewey IDs so that rows and XPath results from
// the same snapshot agree on node identity.
func TestSnapshotImmutable(t *testing.T) {
	d := mustDoc(t, `<root><a><b>5</b></a></root>`)
	e := New(d, WithMetrics(obs.New()))
	mv := addView(t, e, `//a{ID}//b{ID,val}`)

	snap := e.Snapshot()
	if snap.Version != e.Version() {
		t.Fatalf("snapshot version %d != engine version %d", snap.Version, e.Version())
	}
	vs := snap.View(mv.Name)
	if vs == nil || len(vs.Rows) != 1 {
		t.Fatalf("snapshot view = %+v, want 1 row", vs)
	}
	wantID := vs.Rows[0].Entries[1].ID
	if got := snap.Doc().NodeByID(wantID); got == nil || got.StringValue() != "5" {
		t.Fatal("snapshot row does not resolve against the snapshot document")
	}
	xmlBefore := snap.DocXML()

	for i := 0; i < 3; i++ {
		if _, err := e.ApplyStatement(update.MustParse(`insert <b>9</b> into /root/a`)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.ApplyStatement(update.MustParse(`delete /root/a/b`)); err != nil {
		t.Fatal(err)
	}

	if len(vs.Rows) != 1 || vs.Rows[0].Entries[1].Val != "5" {
		t.Fatal("mutations reached a published snapshot's rows")
	}
	if got := snap.Doc().NodeByID(wantID); got == nil || got.StringValue() != "5" {
		t.Fatal("mutations reached a published snapshot's document")
	}
	if snap.DocXML() != xmlBefore {
		t.Fatal("snapshot serialization changed after mutations")
	}

	// A fresh snapshot reflects the new state and a higher version.
	snap2 := e.Snapshot()
	if snap2.Version <= snap.Version {
		t.Fatalf("version did not advance: %d then %d", snap.Version, snap2.Version)
	}
	if got := len(snap2.View(mv.Name).Rows); got != 0 {
		t.Fatalf("fresh snapshot rows = %d, want 0 after delete", got)
	}
}
