package core

import (
	"xivm/internal/store"
	"xivm/internal/update"
	"xivm/internal/xmltree"
)

// Value predicates apply to the string value of a node — the concatenation
// of its text descendants. An update deep inside a subtree can therefore
// flip the predicate truth of an EXISTING ancestor node, a case the ∆-term
// algebra cannot express (∆ tables only carry new/removed nodes). The paper
// does not treat this case; we detect it exactly — by snapshotting, before
// the update, the σ membership of the (few) predicate-labeled ancestors of
// the update targets — and fall back to recomputing the affected view when
// a flip actually occurred. Benchmarks never trigger it; random tests do.

type predProbe struct {
	view    *ManagedView
	node    *xmltree.Node
	predVal string
	sat     bool
}

// snapshotPredicates records, for every view node carrying a value
// predicate, the current σ membership of each label-compatible self-or-
// ancestor of the update targets.
func (e *Engine) snapshotPredicates(pul *update.PUL) []predProbe {
	var targets []*xmltree.Node
	if pul.Kind == update.Insert {
		targets = pul.InsertionPoints()
	} else {
		for _, n := range pul.Deletes {
			if n.Parent != nil {
				targets = append(targets, n.Parent)
			}
		}
	}
	var probes []predProbe
	for _, mv := range e.Views {
		for _, pn := range mv.Pattern.Nodes {
			if !pn.HasPred {
				continue
			}
			seen := map[*xmltree.Node]bool{}
			for _, t := range targets {
				for s := t; s != nil; s = s.Parent {
					if seen[s] {
						break // the rest of the chain was captured already
					}
					seen[s] = true
					if pn.Label == s.Label || (pn.Label == "*" && s.Kind == xmltree.Element) {
						probes = append(probes, predProbe{
							view:    mv,
							node:    s,
							predVal: pn.PredVal,
							sat:     s.StringValue() == pn.PredVal,
						})
					}
				}
			}
		}
	}
	return probes
}

// flippedViews rechecks the probes after the update and returns the views
// whose σ membership changed for at least one existing node.
func flippedViews(probes []predProbe) map[*ManagedView]bool {
	out := map[*ManagedView]bool{}
	for _, pr := range probes {
		if (pr.node.StringValue() == pr.predVal) != pr.sat {
			out[pr.view] = true
		}
	}
	return out
}

// recomputeFallback rebuilds one view (rows and lattice) from the current
// document state.
func (e *Engine) recomputeFallback(mv *ManagedView) {
	rows := e.RecomputeView(mv)
	mv.View = store.NewMaterializedView(mv.Pattern, rows)
	mv.Lattice = e.newLattice(mv.Pattern)
}
