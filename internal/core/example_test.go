package core_test

import (
	"fmt"
	"log"

	"xivm/internal/core"
	"xivm/internal/pattern"
	"xivm/internal/update"
	"xivm/internal/xmltree"
)

// ExampleEngine shows the full lifecycle: materialize a view, apply a
// statement-level insertion and deletion, and read the maintained rows.
func ExampleEngine() {
	doc, err := xmltree.ParseString(`<lib><shelf><book>Go</book></shelf><shelf/></lib>`)
	if err != nil {
		log.Fatal(err)
	}
	engine := core.NewEngine(doc, core.Options{})
	mv, err := engine.AddView("books", pattern.MustParse(`//shelf{ID}/book{ID,val}`))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("rows:", mv.View.Len())

	rep, err := engine.ApplyStatement(update.MustParse(`for $s in /lib/shelf insert <book>SQL</book>`))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("added:", rep.Views[0].RowsAdded, "rows:", mv.View.Len())

	if _, err := engine.ApplyStatement(update.MustParse(`delete //book[text()="Go"]`)); err != nil {
		log.Fatal(err)
	}
	fmt.Println("rows:", mv.View.Len(), "consistent:", engine.CheckView(mv))
	// Output:
	// rows: 1
	// added: 2 rows: 3
	// rows: 2 consistent: true
}

// ExampleLazy defers propagation across a batch and flushes the net effect.
func ExampleLazy() {
	doc, _ := xmltree.ParseString(`<r><a/></r>`)
	engine := core.NewEngine(doc, core.Options{})
	mv, _ := engine.AddView("v", pattern.MustParse(`//a{ID}//b{ID}`))

	lz := core.NewLazy(engine)
	lz.Apply(update.MustParse(`insert <b><b/></b> into /r/a`))
	lz.Apply(update.MustParse(`delete /r/a/b[b]`)) // removes what was just added
	fmt.Println("pending:", lz.Pending(), "stale rows:", mv.View.Len())
	if _, err := lz.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("after flush rows:", mv.View.Len(), "consistent:", engine.CheckView(mv))
	// Output:
	// pending: 2 stale rows: 0
	// after flush rows: 0 consistent: true
}
