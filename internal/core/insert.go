package core

import (
	"time"

	"xivm/internal/algebra"
	"xivm/internal/obs"
	"xivm/internal/pattern"
	"xivm/internal/update"
)

// propagateInsert runs the combined PINT/PIMT algorithm for one view: it
// computes the ∆+ tables (CD+, Algorithm 2), prunes the pre-developed union
// terms (Propositions 3.6 and 3.8), evaluates the survivors with structural
// joins (ET-INS, Algorithm 3) adding tuples / increasing derivation counts,
// refreshes val/cont of affected stored nodes (PIMT, Algorithm 4), and
// finally updates the snowcap lattice. The store's canonical relations must
// still reflect the pre-update document.
func (e *Engine) propagateInsert(mv *ManagedView, pul *update.PUL, applied *update.Applied) ViewReport {
	vr := ViewReport{View: mv}
	p := mv.Pattern

	// CD+: ∆ tables, σ-filtered per node.
	end := e.span("view:" + mv.Name + "/" + obs.PhaseComputeDelta)
	t0 := time.Now()
	deltaIn := e.deltaInputs(p, applied.InsertedRoots)
	vr.Phases = vr.Phases.Set(obs.PhaseComputeDelta, time.Since(t0))
	end()
	e.m.countDeltaItems(deltaIn)

	// Prune the pre-developed expression.
	end = e.span("view:" + mv.Name + "/" + obs.PhaseGetExpression)
	t0 = time.Now()
	terms := mv.insertTerms
	vr.TermsTotal = len(terms)
	e.m.termsExpanded.Add(int64(len(terms)))
	if !e.opts.DisableDataPruning {
		before := len(terms)
		terms = PruneByDelta(p, terms, deltaIn)
		e.m.pruneProp36.Add(int64(before - len(terms)))
	}
	if !e.opts.DisableIDPruning {
		before := len(terms)
		terms = PruneByInsertionPoints(p, terms, pul.InsertionPoints())
		e.m.pruneProp38.Add(int64(before - len(terms)))
	}
	vr.TermsSurvived = len(terms)
	e.m.termsEvaluated.Add(int64(len(terms)))
	vr.Phases = vr.Phases.Set(obs.PhaseGetExpression, time.Since(t0))
	end()

	// ET-INS: evaluate surviving terms and merge into the view. The
	// σ-filtered canonical relations are assembled once and shared by every
	// term and by the lattice maintenance below.
	end = e.span("view:" + mv.Name + "/" + obs.PhaseExecuteUpdate)
	t0 = time.Now()
	rIn := e.Store.Inputs(p)
	for _, rmask := range terms {
		for _, row := range e.evalTermFrom(mv, rmask, deltaIn, rIn) {
			if mv.View.Upsert(row) {
				vr.RowsAdded++
			}
		}
	}
	// PIMT: an insertion under a node whose val/cont the view stores
	// modifies that stored image.
	vr.RowsModified = e.modifyTuplesAfterInsert(mv, pul)
	vr.Phases = vr.Phases.Set(obs.PhaseExecuteUpdate, time.Since(t0))
	end()

	// Maintain auxiliary structures.
	end = e.span("view:" + mv.Name + "/" + obs.PhaseUpdateLattice)
	t0 = time.Now()
	mv.Lattice.ApplyInsertFrom(deltaIn, rIn)
	vr.Phases = vr.Phases.Set(obs.PhaseUpdateLattice, time.Since(t0))
	end()
	return vr
}

// modifyTuplesAfterInsert implements PIMT (Algorithm 4): for every view
// tuple and every pending update (n_i, t_i), when a cont/val-annotated
// entry binds n_i or an ancestor of it, the stored image is refreshed from
// the updated document.
func (e *Engine) modifyTuplesAfterInsert(mv *ManagedView, pul *update.PUL) int {
	cvn := mv.Pattern.ContValIndexes()
	if len(cvn) == 0 {
		return 0
	}
	cvnSet := make(map[int]bool, len(cvn))
	for _, i := range cvn {
		cvnSet[i] = true
	}
	// A stored image changes iff its node is a target or an ancestor of
	// one; Dewey IDs expose those as prefixes, so one hash set of the
	// targets' self-and-ancestor keys (shared prefixes of the cached key —
	// no allocation) answers the check per row entry.
	affected := map[string]bool{}
	for _, pi := range pul.Inserts {
		id := pi.Target.ID
		for lvl := id.Level(); lvl >= 1; lvl-- {
			affected[id.KeyAt(lvl)] = true
		}
	}
	var dirty []string
	mv.View.Each(func(r algebra.Row) bool {
		for _, entry := range r.Entries {
			if cvnSet[entry.NodeIdx] && affected[entry.ID.Key()] {
				dirty = append(dirty, r.Key())
				return true
			}
		}
		return true
	})
	for _, key := range dirty {
		e.refreshRow(mv, key, cvnSet)
	}
	return len(dirty)
}

// refreshRow re-extracts val/cont for the cvn entries of one stored row
// from the live document.
func (e *Engine) refreshRow(mv *ManagedView, key string, cvnSet map[int]bool) {
	mv.View.Replace(key, func(r *algebra.Row) {
		for i := range r.Entries {
			en := &r.Entries[i]
			if !cvnSet[en.NodeIdx] {
				continue
			}
			n := e.Doc.NodeByID(en.ID)
			if n == nil {
				continue
			}
			pn := mv.Pattern.Nodes[en.NodeIdx]
			if pn.Store.Has(pattern.StoreVal) {
				en.Val = n.StringValue()
			}
			if pn.Store.Has(pattern.StoreCont) {
				en.Cont = n.Content()
			}
		}
	})
}
