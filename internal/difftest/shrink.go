package difftest

// ShrinkWith minimizes a failing workload's statement sequence while the
// predicate keeps reporting a divergence, ddmin-style: ever-smaller chunks
// are removed (halving down to single statements) until a fixpoint. It
// returns the minimized workload and the divergence it still produces; when
// the initial workload does not fail, it is returned unchanged with a nil
// divergence.
func ShrinkWith(w Workload, fails func(Workload) *Divergence) (Workload, *Divergence) {
	div := fails(w)
	if div == nil {
		return w, nil
	}
	for changed := true; changed; {
		changed = false
		for size := len(w.Statements) / 2; size >= 1; size /= 2 {
			for start := 0; start+size <= len(w.Statements); {
				cand := Workload{DocSeed: w.DocSeed}
				cand.Statements = append(cand.Statements, w.Statements[:start]...)
				cand.Statements = append(cand.Statements, w.Statements[start+size:]...)
				if d := fails(cand); d != nil {
					w, div = cand, d
					changed = true
				} else {
					start += size
				}
			}
		}
	}
	return w, div
}

// Shrink minimizes a workload that diverges under cfg.
func Shrink(w Workload, cfg Config) (Workload, *Divergence) {
	return ShrinkWith(w, func(c Workload) *Divergence { return Run(c, cfg) })
}
