package difftest

import (
	"fmt"
	"testing"
)

// fuzzConfigs is the subset of the matrix each fuzz input runs: one eager
// engine, one deferred batch size, and the node-at-a-time competitor —
// enough path diversity per execution to keep the fuzzer's throughput
// useful while still covering every propagation family.
var fuzzConfigs = []Config{
	{Name: "eager-snowcaps"},
	{Name: "lazy-3", LazyEvery: 3},
	{Name: "ivma", IVMA: true},
}

// FuzzMaintenance decodes arbitrary bytes into a workload (first byte:
// document seed; each further byte: one vocabulary statement) and checks
// every maintained state against the recompute oracle.
func FuzzMaintenance(f *testing.F) {
	f.Add([]byte{1})
	f.Add([]byte{7, 0, 10, 22, 3})
	f.Add([]byte("\x05\x02\x08\x13\x16\x14"))
	f.Add([]byte{9, 19, 2, 22, 24, 5, 12})
	f.Fuzz(func(t *testing.T, data []byte) {
		w := Decode(data)
		for _, cfg := range fuzzConfigs {
			if d := Run(w, cfg); d != nil {
				min, md := Shrink(w, cfg)
				t.Fatalf("%v\nminimal: seed=%d statements=%q (%v)", d, min.DocSeed, min.Statements, md)
			}
		}
	})
}

// FuzzLazyFlush explores deferred-mode flush cadences: the first byte picks
// how many statements each batch accumulates before flushing, the rest
// decode as a workload. Net-effect flushing must agree with the oracle at
// every cadence, including flush-per-statement and one giant batch.
func FuzzLazyFlush(f *testing.F) {
	f.Add([]byte{0, 1, 22, 10})
	f.Add([]byte{5, 3, 8, 2, 19, 23, 9})
	f.Add([]byte("\x02\x04\x09\x16\x0c\x01"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		every := 1 + int(data[0]%8)
		w := Decode(data[1:])
		cfg := Config{Name: fmt.Sprintf("lazy-%d", every), LazyEvery: every}
		if d := Run(w, cfg); d != nil {
			min, md := Shrink(w, cfg)
			t.Fatalf("%v\nminimal: seed=%d statements=%q (%v)", d, min.DocSeed, min.Statements, md)
		}
	})
}
