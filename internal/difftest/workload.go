// Package difftest is a differential correctness harness: randomized
// XMark-style documents and update workloads run through every maintenance
// path the engine offers — eager propagation under each materialization
// policy, deferred (lazy) batches of varying size, parallel propagation,
// shared snowcaps, both pruning ablations, and the IVMA node-at-a-time
// competitor — asserting after every statement (or flush) that each
// maintained view is byte-identical to a fresh evaluation over the mutated
// document, and that the canonical relations match a store rebuilt from
// scratch. Failing workloads shrink to minimal counterexamples, and Go
// native fuzz targets drive the same harness from arbitrary bytes.
package difftest

import "xivm/internal/xmark"

// maxStatements caps workload length so fuzz inputs stay cheap to check.
const maxStatements = 24

// Workload is one reproducible differential test case: a document seed for
// xmark.GenerateSmall plus a sequence of update statements. Everything a
// counterexample needs fits in a short literal.
type Workload struct {
	DocSeed    uint64
	Statements []string
}

// vocabulary is the closed statement set workloads draw from: inserts,
// deletes and replaces over weighted XMark target paths, including the edge
// cases the maintenance paths historically mishandled — shallow root-level
// deletes (children of the document root) and replace statements, whose
// delete-then-insert stages reuse freed Dewey ordinals within one batch.
var vocabulary = []string{
	// Insertions.
	`for $x in /site/people/person insert <phone>+33 555 0199</phone>`,
	`for $x in /site/people/person[phone] insert <homepage>http://example.net/~new</homepage>`,
	`insert <person id="personX"><name>Nova Quinn</name><homepage>http://example.net/~nova</homepage></person> into /site/people`,
	`for $x in /site/open_auctions/open_auction insert <bidder><date>01/01/2011</date><personref person="person1"/><increase>4.50</increase></bidder>`,
	`for $x in /site/open_auctions/open_auction[reserve] insert <privacy>Yes</privacy>`,
	`for $x in /site/regions/namerica insert <item id="itemX"><location>France</location><quantity>1</quantity><name>gold clock</name><payment>Cash</payment><description><text>mint boxed clock</text></description></item>`,
	`for $x in //item[description] insert <mailbox><mail><from>Ann</from><to>Bob</to><date>01/21/2011</date></mail></mailbox>`,
	`for $x in /site/people/person[profile] insert <creditcard>1111 2222 3333 4444</creditcard>`,
	`insert <open_auction id="open_auctionX"><initial>5.00</initial><current>10.00</current><quantity>1</quantity><type>Regular</type></open_auction> into /site/open_auctions`,
	`for $x in //bidder insert <increase>6.00</increase>`,

	// Deletions, from leaf-level to shallow. `/site/people` and
	// `/site/catgraph` are root-level deletes: their parent is the document
	// root, the touched-ID edge deferred flushing must handle.
	`delete /site/people/person/phone`,
	`delete /site/people/person[homepage]`,
	`delete /site/open_auctions/open_auction/bidder`,
	`delete /site/open_auctions/open_auction[privacy]/bidder`,
	`delete /site/regions/*/item/description`,
	`delete /site/regions/namerica/item`,
	`delete //item[mailbox]`,
	`delete /site/people/person[address and (phone or homepage)]`,
	`delete /site/closed_auctions/closed_auction`,
	`delete /site/people`,
	`delete /site/catgraph`,
	`delete /site/open_auctions/open_auction[bidder or privacy]`,

	// Replaces: delete stage + insert stage under the deleted nodes'
	// parents, applied as one statement.
	`replace /site/people/person/name with <name>Replaced Name</name>`,
	`replace /site/open_auctions/open_auction/bidder/increase with <increase>9.00</increase>`,
	`replace /site/regions/namerica/item/name with <name>vintage compass</name>`,
	`replace //person[homepage]/homepage with <homepage>http://example.org/new</homepage>`,
	`replace /site/regions/europe/item with <item id="itemR"><location>Italy</location><quantity>2</quantity><name>rare stamp</name><payment>Cash</payment></item>`,
	`replace /site/people/person[creditcard]/creditcard with <creditcard>9999 8888 7777 6666</creditcard>`,
}

// wrng is the same xorshift generator the xmark package uses, duplicated so
// workloads stay reproducible independently of generator-internal draws.
type wrng struct{ s uint64 }

func (r *wrng) next() uint64 {
	if r.s == 0 {
		r.s = 0x9e3779b97f4a7c15
	}
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

func (r *wrng) intn(n int) int { return int(r.next() % uint64(n)) }

// NewWorkload derives a deterministic workload from a seed: a small
// document and n statements drawn from the vocabulary (capped at
// maxStatements). Same seed, same workload.
func NewWorkload(seed uint64, n int) Workload {
	if n > maxStatements {
		n = maxStatements
	}
	r := &wrng{s: seed}
	w := Workload{DocSeed: uint64(r.intn(1 << 16))}
	for i := 0; i < n; i++ {
		w.Statements = append(w.Statements, vocabulary[r.intn(len(vocabulary))])
	}
	return w
}

// Decode maps arbitrary bytes onto a workload, totally: the first byte
// selects the document seed, every following byte selects one vocabulary
// statement. Any input decodes; fuzzing explores the statement-sequence
// space without ever producing an unparseable statement.
func Decode(data []byte) Workload {
	w := Workload{DocSeed: 1}
	if len(data) == 0 {
		return w
	}
	w.DocSeed = uint64(data[0])
	rest := data[1:]
	if len(rest) > maxStatements {
		rest = rest[:maxStatements]
	}
	for _, b := range rest {
		w.Statements = append(w.Statements, vocabulary[int(b)%len(vocabulary)])
	}
	return w
}

// Doc renders the workload's document source.
func (w Workload) Doc() string { return xmark.GenerateSmall(w.DocSeed) }
