package difftest

import (
	"fmt"
	"sort"
	"testing"

	"xivm/internal/core"
	"xivm/internal/obs"
	"xivm/internal/update"
	"xivm/internal/xmark"
	"xivm/internal/xmltree"
)

// TestGoldenXPathMarkEquivalence drives the full XPathMark-derived update
// workload — every Appendix A update, insertion variants first, then
// deletion variants — through every Policy × {eager, lazy, parallel}
// configuration, diffing each maintained view against a twin engine that
// runs FullRecompute after every statement. The two engines must agree on
// every view after every statement (for lazy: after every flush).
func TestGoldenXPathMarkEquivalence(t *testing.T) {
	src := xmark.Generate(xmark.Config{TargetBytes: 10 << 10, Seed: 5})

	var names []string
	for _, vn := range xmark.ViewNames() {
		for _, un := range xmark.ViewUpdates(vn) {
			names = append(names, un)
		}
	}
	sort.Strings(names)
	names = dedupe(names)
	var stmts []string
	for _, un := range names {
		stmts = append(stmts, xmark.UpdateByName(un).InsertStatement().Source)
	}
	for _, un := range names {
		stmts = append(stmts, xmark.UpdateByName(un).DeleteStatement().Source)
	}

	type mode struct {
		name      string
		parallel  bool
		lazyEvery int
	}
	policies := []core.Policy{core.PolicySnowcaps, core.PolicyLeaves, core.PolicyCost}
	if testing.Short() {
		policies = policies[:1]
	}
	for _, policy := range policies {
		for _, m := range []mode{{name: "eager"}, {name: "lazy", lazyEvery: 2}, {name: "parallel", parallel: true}} {
			label := fmt.Sprintf("%v/%s", policy, m.name)
			d1, err := xmltree.ParseString(src)
			if err != nil {
				t.Fatal(err)
			}
			d2, err := xmltree.ParseString(src)
			if err != nil {
				t.Fatal(err)
			}
			opts := []core.Option{core.WithPolicy(policy), core.WithMetrics(obs.New())}
			if m.parallel {
				opts = append(opts, core.WithParallel())
			}
			e1 := core.New(d1, opts...)
			e2 := core.New(d2, core.WithMetrics(obs.New()))
			var m1, m2 []*core.ManagedView
			for _, vn := range xmark.ViewNames() {
				v1, err := e1.AddView(vn, xmark.View(vn))
				if err != nil {
					t.Fatal(err)
				}
				v2, err := e2.AddView(vn, xmark.View(vn))
				if err != nil {
					t.Fatal(err)
				}
				m1, m2 = append(m1, v1), append(m2, v2)
			}
			var lz *core.Lazy
			if m.lazyEvery > 0 {
				lz = core.NewLazy(e1)
			}
			for i, src := range stmts {
				st1, st2 := update.MustParse(src), update.MustParse(src)
				flushed := true
				if lz != nil {
					if err := lz.Apply(st1); err != nil {
						t.Fatalf("%s: lazy Apply(%q): %v", label, src, err)
					}
					flushed = (i+1)%m.lazyEvery == 0 || i == len(stmts)-1
					if flushed {
						if _, err := lz.Flush(); err != nil {
							t.Fatalf("%s: flush after %q: %v", label, src, err)
						}
					}
				} else if _, err := e1.ApplyStatement(st1); err != nil {
					t.Fatalf("%s: apply %q: %v", label, src, err)
				}
				if _, err := e2.FullRecompute(st2); err != nil {
					t.Fatalf("baseline %q: %v", src, err)
				}
				if !flushed {
					continue
				}
				for v := range m1 {
					if !m1[v].View.EqualRows(m2[v].View.Rows()) {
						t.Fatalf("%s: view %s diverged from FullRecompute after statement %d (%s)",
							label, m1[v].Name, i, src)
					}
				}
			}
		}
	}
}

func dedupe(sorted []string) []string {
	out := sorted[:0]
	for i, s := range sorted {
		if i == 0 || s != sorted[i-1] {
			out = append(out, s)
		}
	}
	return out
}
