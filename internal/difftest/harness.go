package difftest

import (
	"fmt"

	"xivm/internal/algebra"
	"xivm/internal/core"
	"xivm/internal/obs"
	"xivm/internal/pattern"
	"xivm/internal/store"
	"xivm/internal/update"
	"xivm/internal/xmark"
	"xivm/internal/xmltree"
)

// Config selects one maintenance path through the engine.
type Config struct {
	Name           string
	Policy         core.Policy
	Parallel       bool
	SharedSnowcaps bool
	// LazyEvery > 0 runs deferred propagation, flushing (and checking)
	// every LazyEvery statements plus once at the end. 0 is eager.
	LazyEvery     int
	NoDataPruning bool
	NoIDPruning   bool
	// IVMA maintains with the node-at-a-time competitor instead. IVMA
	// never revisits rows whose stored val/cont silently changed under a
	// surviving ancestor (it has no PDMT-style refresh), so views are
	// stripped to ID-only annotations and replace statements (which it
	// does not implement) are skipped.
	IVMA bool
}

// Matrix is the full configuration matrix the differential tests sweep:
// every policy, deferred batches of several sizes, parallel propagation,
// shared snowcaps, both pruning ablations and the IVMA competitor.
func Matrix() []Config {
	return []Config{
		{Name: "eager-snowcaps", Policy: core.PolicySnowcaps},
		{Name: "eager-leaves", Policy: core.PolicyLeaves},
		{Name: "eager-cost", Policy: core.PolicyCost},
		{Name: "parallel", Policy: core.PolicySnowcaps, Parallel: true},
		{Name: "shared-snowcaps", Policy: core.PolicySnowcaps, SharedSnowcaps: true},
		{Name: "lazy-1", LazyEvery: 1},
		{Name: "lazy-3", LazyEvery: 3},
		{Name: "lazy-8", LazyEvery: 8},
		{Name: "no-data-pruning", NoDataPruning: true},
		{Name: "no-id-pruning", NoIDPruning: true},
		{Name: "lazy-no-pruning", LazyEvery: 2, NoDataPruning: true, NoIDPruning: true},
		{Name: "ivma", IVMA: true},
	}
}

// Divergence describes one maintained state that differs from the oracle.
type Divergence struct {
	Config    string
	Index     int    // statement index within the workload
	Statement string // the statement after which the check failed
	View      string // empty when the canonical relations diverged
	Detail    string
}

func (d *Divergence) String() string {
	where := "canonical relations"
	if d.View != "" {
		where = "view " + d.View
	}
	return fmt.Sprintf("[%s] %s diverged after statement %d (%s): %s",
		d.Config, where, d.Index, d.Statement, d.Detail)
}

// Run executes the workload under one configuration, checking the oracle
// after every statement (eager, IVMA) or every flush (lazy). It returns the
// first divergence, or nil when every check passed. Statements whose target
// path matches nothing are no-ops by construction; statements the engine
// rejects (none in the vocabulary) are skipped.
func Run(w Workload, cfg Config) *Divergence {
	doc, err := xmltree.ParseString(w.Doc())
	if err != nil {
		panic("difftest: generated document does not parse: " + err.Error())
	}
	opts := []core.Option{core.WithPolicy(cfg.Policy), core.WithMetrics(obs.New())}
	if cfg.Parallel {
		opts = append(opts, core.WithParallel())
	}
	if cfg.SharedSnowcaps {
		opts = append(opts, core.WithSharedSnowcaps())
	}
	if cfg.NoDataPruning {
		opts = append(opts, core.WithoutDataPruning())
	}
	if cfg.NoIDPruning {
		opts = append(opts, core.WithoutIDPruning())
	}
	e := core.New(doc, opts...)

	var views []*core.ManagedView
	for _, name := range xmark.ViewNames() {
		p := xmark.View(name)
		if cfg.IVMA {
			p = idOnly(p)
		}
		mv, err := e.AddView(name, p)
		if err != nil {
			panic("difftest: AddView(" + name + "): " + err.Error())
		}
		views = append(views, mv)
	}

	var lz *core.Lazy
	if cfg.LazyEvery > 0 {
		lz = core.NewLazy(e)
	}
	var iv *core.IVMA
	if cfg.IVMA {
		iv = core.NewIVMA(e)
	}

	for i, src := range w.Statements {
		st, err := update.Parse(src)
		if err != nil {
			continue
		}
		switch {
		case lz != nil:
			if err := lz.Apply(st); err != nil {
				continue
			}
			if (i+1)%cfg.LazyEvery == 0 {
				if _, err := lz.Flush(); err != nil {
					return &Divergence{Config: cfg.Name, Index: i, Statement: src, Detail: "flush error: " + err.Error()}
				}
				if d := check(e, views, cfg, i, src); d != nil {
					return d
				}
			}
		case iv != nil:
			if st.Kind == update.Replace {
				continue
			}
			if _, err := iv.ApplyStatement(st); err != nil {
				continue
			}
			if d := check(e, views, cfg, i, src); d != nil {
				return d
			}
		default:
			if _, err := e.ApplyStatement(st); err != nil {
				continue
			}
			if d := check(e, views, cfg, i, src); d != nil {
				return d
			}
		}
	}
	if lz != nil {
		if _, err := lz.Flush(); err != nil {
			return &Divergence{Config: cfg.Name, Index: len(w.Statements), Detail: "final flush error: " + err.Error()}
		}
		return check(e, views, cfg, len(w.Statements)-1, "<final flush>")
	}
	return nil
}

// check is the oracle: every maintained view must equal a fresh evaluation
// over the (already mutated) document — algebra.Materialize walks the
// document directly, independent of the possibly-corrupt store — and the
// canonical relations must match a store rebuilt from scratch.
func check(e *core.Engine, views []*core.ManagedView, cfg Config, i int, src string) *Divergence {
	for _, mv := range views {
		want := algebra.Materialize(e.Doc, mv.Pattern)
		if !mv.View.EqualRows(want) {
			return &Divergence{
				Config: cfg.Name, Index: i, Statement: src, View: mv.Name,
				Detail: fmt.Sprintf("maintained %d rows, recompute %d rows", mv.View.Len(), len(want)),
			}
		}
	}
	if diff := store.DiffStores(e.Store, store.New(e.Doc)); diff != "" {
		return &Divergence{Config: cfg.Name, Index: i, Statement: src, Detail: diff}
	}
	return nil
}

// idOnly strips val/cont annotations, keeping stored IDs: the only layout
// IVMA's node-at-a-time propagation maintains faithfully.
func idOnly(p *pattern.Pattern) *pattern.Pattern {
	return p.Clone(func(i int, s pattern.Store) pattern.Store { return s & pattern.StoreID })
}
