package difftest

import (
	"os"
	"strconv"
	"testing"

	"xivm/internal/update"
)

func TestVocabularyParses(t *testing.T) {
	for _, src := range vocabulary {
		if _, err := update.Parse(src); err != nil {
			t.Errorf("%q: %v", src, err)
		}
	}
}

func TestWorkloadDeterministic(t *testing.T) {
	a, b := NewWorkload(42, 10), NewWorkload(42, 10)
	if a.DocSeed != b.DocSeed || len(a.Statements) != len(b.Statements) {
		t.Fatal("workload generation not deterministic")
	}
	for i := range a.Statements {
		if a.Statements[i] != b.Statements[i] {
			t.Fatal("workload generation not deterministic")
		}
	}
	if NewWorkload(1, 40).Statements == nil || len(NewWorkload(1, 40).Statements) != maxStatements {
		t.Fatal("statement cap not applied")
	}
}

// TestMatrixSeeded is the central differential property: seeded workloads
// through the full configuration matrix, every maintained state checked
// against the recompute oracle. Failures are shrunk before reporting so the
// log carries a minimal reproducible counterexample.
// DIFFTEST_SEEDS widens the sweep (e.g. DIFFTEST_SEEDS=150 takes about half
// a minute); -short narrows it.
func TestMatrixSeeded(t *testing.T) {
	nSeeds := 16
	if s := os.Getenv("DIFFTEST_SEEDS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			nSeeds = n
		}
	}
	if testing.Short() {
		nSeeds = 2
	}
	for seed := uint64(1); seed <= uint64(nSeeds); seed++ {
		w := NewWorkload(seed, 14)
		for _, cfg := range Matrix() {
			if d := Run(w, cfg); d != nil {
				min, md := Shrink(w, cfg)
				t.Errorf("seed %d: %v\nminimal workload: seed=%d statements=%q\nminimal divergence: %v",
					seed, d, min.DocSeed, min.Statements, md)
			}
		}
	}
}

// TestDecodeTotal: every byte string decodes to a runnable workload — the
// fuzz targets rely on the decoder never producing an invalid statement.
func TestDecodeTotal(t *testing.T) {
	inputs := [][]byte{
		nil,
		{0},
		{0xff},
		{7, 0, 1, 2, 3, 250, 251, 252, 253, 254, 255},
		[]byte("arbitrary text is a workload too"),
	}
	cfg := Config{Name: "eager-snowcaps"}
	for _, in := range inputs {
		w := Decode(in)
		if len(w.Statements) > maxStatements {
			t.Fatalf("decode exceeded statement cap: %d", len(w.Statements))
		}
		for _, src := range w.Statements {
			if _, err := update.Parse(src); err != nil {
				t.Fatalf("decoded unparseable statement %q: %v", src, err)
			}
		}
		if d := Run(w, cfg); d != nil {
			t.Fatalf("decoded workload diverges: %v", d)
		}
	}
}

// TestShrinkWith exercises the minimizer against a synthetic failure
// predicate: the "bug" needs two specific statements in order, and the
// shrinker must strip everything else.
func TestShrinkWith(t *testing.T) {
	trigger1, trigger2 := vocabulary[0], vocabulary[5]
	w := NewWorkload(9, 12)
	w.Statements = append(w.Statements[:8:8], trigger1, vocabulary[3], trigger2, vocabulary[1])
	fails := func(c Workload) *Divergence {
		seen1 := false
		for _, s := range c.Statements {
			if s == trigger1 {
				seen1 = true
			}
			if s == trigger2 && seen1 {
				return &Divergence{Config: "synthetic", Detail: "triggered"}
			}
		}
		return nil
	}
	min, div := ShrinkWith(w, fails)
	if div == nil {
		t.Fatal("shrinker lost the failure")
	}
	if len(min.Statements) != 2 || min.Statements[0] != trigger1 || min.Statements[1] != trigger2 {
		t.Fatalf("not minimal: %q", min.Statements)
	}
	// A passing workload comes back unchanged with no divergence.
	ok := Workload{DocSeed: 3, Statements: []string{vocabulary[1]}}
	if _, div := ShrinkWith(ok, fails); div != nil {
		t.Fatal("shrinker invented a failure")
	}
}
