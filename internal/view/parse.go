package view

import (
	"fmt"
	"strings"
	"unicode"

	"xivm/internal/xpath"
)

// ParseQuery parses a view definition in the dialect of the paper's
// Figure 3. Both the element-constructor return form and a lenient
// comma-separated return form (as in the XMark queries) are accepted.
func ParseQuery(src string) (*Query, error) {
	p := &qparser{src: src}
	q := &Query{Source: src}

	// Optional let clause binding a document (absolute variable).
	if p.eatKeyword("let") {
		v, err := p.parseBinding(true)
		if err != nil {
			return nil, err
		}
		q.Vars = append(q.Vars, v)
		if !p.eatKeyword("return") {
			return nil, p.errf("expected 'return' after let clause")
		}
	}

	if !p.eatKeyword("for") {
		return nil, p.errf("expected 'for'")
	}
	for {
		v, err := p.parseBinding(len(q.Vars) == 0)
		if err != nil {
			return nil, err
		}
		q.Vars = append(q.Vars, v)
		if !p.eat(",") {
			break
		}
	}

	if p.eatKeyword("where") {
		for {
			pr, err := p.parsePred()
			if err != nil {
				return nil, err
			}
			q.Preds = append(q.Preds, pr)
			if !p.eatKeyword("and") {
				break
			}
		}
	}

	if !p.eatKeyword("return") {
		return nil, p.errf("expected 'return'")
	}
	if err := p.parseReturn(q); err != nil {
		return nil, err
	}
	p.skip()
	if p.pos != len(p.src) {
		return nil, p.errf("trailing input")
	}
	return q, nil
}

type qparser struct {
	src string
	pos int
}

func (p *qparser) errf(format string, args ...any) error {
	rest := p.src[p.pos:]
	if len(rest) > 40 {
		rest = rest[:40] + "…"
	}
	return fmt.Errorf("view: %s at %q", fmt.Sprintf(format, args...), rest)
}

func (p *qparser) skip() {
	for p.pos < len(p.src) && unicode.IsSpace(rune(p.src[p.pos])) {
		p.pos++
	}
}

func (p *qparser) eat(tok string) bool {
	p.skip()
	if strings.HasPrefix(p.src[p.pos:], tok) {
		p.pos += len(tok)
		return true
	}
	return false
}

func (p *qparser) eatKeyword(kw string) bool {
	p.skip()
	if !strings.HasPrefix(p.src[p.pos:], kw) {
		return false
	}
	after := p.pos + len(kw)
	if after < len(p.src) && isWordByte(p.src[after]) {
		return false
	}
	p.pos = after
	return true
}

func isWordByte(c byte) bool {
	return c == '_' || c == '-' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

func (p *qparser) parseVarName() (string, error) {
	p.skip()
	if !p.eat("$") {
		return "", p.errf("expected variable")
	}
	start := p.pos
	for p.pos < len(p.src) && isWordByte(p.src[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return "", p.errf("empty variable name")
	}
	return p.src[start:p.pos], nil
}

// parseBinding parses `$x in source` or `$x := source`, where source is
// doc("uri")path? (absolute) or $base path (relative).
func (p *qparser) parseBinding(allowAbsolute bool) (Var, error) {
	var v Var
	name, err := p.parseVarName()
	if err != nil {
		return v, err
	}
	v.Name = name
	if !p.eatKeyword("in") && !p.eat(":=") {
		return v, p.errf("expected 'in' or ':=' after $%s", name)
	}
	p.skip()
	if strings.HasPrefix(p.src[p.pos:], "doc(") {
		if !allowAbsolute {
			return v, p.errf("only the first variable may be absolute")
		}
		p.pos += len("doc(")
		uri, err := p.parseStringLit()
		if err != nil {
			return v, err
		}
		if !p.eat(")") {
			return v, p.errf("expected ) after doc uri")
		}
		v.URI = uri
	} else {
		base, err := p.parseVarName()
		if err != nil {
			return v, p.errf("expected doc(...) or $var in binding")
		}
		v.Base = base
	}
	// Optional path.
	path, err := p.parsePathText()
	if err != nil {
		return v, err
	}
	v.Path = path
	if v.Base == "" && v.URI != "" && len(v.Path.Steps) == 0 {
		// let $d := doc("uri") with no path: the variable denotes the
		// document; later relative paths root the pattern.
		return v, nil
	}
	return v, nil
}

// parsePathText scans the longest balanced path expression starting at /
// or //, then parses it with the xpath parser.
func (p *qparser) parsePathText() (xpath.Path, error) {
	p.skip()
	if p.pos >= len(p.src) || p.src[p.pos] != '/' {
		return xpath.Path{}, nil
	}
	start := p.pos
	depth := 0  // bracket nesting
	parens := 0 // parenthesis nesting, for text()
	var quote byte
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if quote != 0 {
			if c == quote {
				quote = 0
			}
			p.pos++
			continue
		}
		switch c {
		case '\'', '"':
			quote = c
		case '[':
			depth++
		case ']':
			depth--
		case '(':
			parens++
		case ')':
			if depth == 0 && parens == 0 {
				return xpath.Parse(p.src[start:p.pos])
			}
			parens--
		case ',', ' ', '\t', '\n', '}', '<', '=':
			if depth == 0 {
				return xpath.Parse(p.src[start:p.pos])
			}
		}
		p.pos++
	}
	return xpath.Parse(p.src[start:p.pos])
}

func (p *qparser) parseStringLit() (string, error) {
	p.skip()
	if p.pos >= len(p.src) {
		return "", p.errf("expected string literal")
	}
	q := p.src[p.pos]
	if q != '"' && q != '\'' {
		return "", p.errf("expected string literal")
	}
	p.pos++
	start := p.pos
	for p.pos < len(p.src) && p.src[p.pos] != q {
		p.pos++
	}
	if p.pos >= len(p.src) {
		return "", p.errf("unterminated string literal")
	}
	s := p.src[start:p.pos]
	p.pos++
	return s, nil
}

// parsePred parses one where-clause conjunct.
func (p *qparser) parsePred() (Pred, error) {
	p.skip()
	var pr Pred
	wrapped := false
	if p.eatKeyword("string") {
		if !p.eat("(") {
			return pr, p.errf("expected ( after string")
		}
		wrapped = true
	}
	name, err := p.parseVarName()
	if err != nil {
		return pr, err
	}
	pr.Var = name
	path, err := p.parsePathText()
	if err != nil {
		return pr, err
	}
	pr.Path = stripTrailingText(path)
	if wrapped && !p.eat(")") {
		return pr, p.errf("expected ) closing string(...)")
	}
	if !p.eat("=") {
		if wrapped {
			return pr, p.errf("expected = after string(...)")
		}
		pr.Exists = true
		return pr, nil
	}
	lit, err := p.parseStringLit()
	if err != nil {
		return pr, err
	}
	pr.Value = lit
	return pr, nil
}

func stripTrailingText(p xpath.Path) xpath.Path {
	if n := len(p.Steps); n > 0 && p.Steps[n-1].Kind == xpath.TestText {
		p.Steps = p.Steps[:n-1]
	}
	return p
}

// parseReturn parses either an element constructor or a comma-separated
// expression list.
func (p *qparser) parseReturn(q *Query) error {
	p.skip()
	if p.pos < len(p.src) && p.src[p.pos] == '<' {
		return p.parseConstructor(q)
	}
	q.RetRoot = "result"
	for i := 0; ; i++ {
		e, err := p.parseRetExpr(fmt.Sprintf("item%d", i))
		if err != nil {
			return err
		}
		q.Elems = append(q.Elems, e)
		if !p.eat(",") {
			return nil
		}
	}
}

func (p *qparser) parseConstructor(q *Query) error {
	label, err := p.parseOpenTag()
	if err != nil {
		return err
	}
	q.RetRoot = label
	for {
		p.skip()
		if strings.HasPrefix(p.src[p.pos:], "</") {
			return p.parseCloseTag(label)
		}
		inner, err := p.parseOpenTag()
		if err != nil {
			return err
		}
		p.skip()
		if !p.eat("{") {
			return p.errf("expected { inside <%s>", inner)
		}
		e, err := p.parseRetExpr(inner)
		if err != nil {
			return err
		}
		if !p.eat("}") {
			return p.errf("expected } inside <%s>", inner)
		}
		if err := p.parseCloseTag(inner); err != nil {
			return err
		}
		q.Elems = append(q.Elems, e)
	}
}

func (p *qparser) parseOpenTag() (string, error) {
	p.skip()
	if !p.eat("<") {
		return "", p.errf("expected <tag>")
	}
	start := p.pos
	for p.pos < len(p.src) && isWordByte(p.src[p.pos]) {
		p.pos++
	}
	label := p.src[start:p.pos]
	if label == "" || !p.eat(">") {
		return "", p.errf("malformed open tag")
	}
	return label, nil
}

func (p *qparser) parseCloseTag(label string) error {
	p.skip()
	if !p.eat("</" + label + ">") {
		return p.errf("expected </%s>", label)
	}
	return nil
}

// parseRetExpr parses $x, $x/p, string($x), string($x/p), id($x).
func (p *qparser) parseRetExpr(label string) (RetElem, error) {
	p.skip()
	e := RetElem{Label: label, Kind: RetContent}
	switch {
	case p.eatKeyword("string"):
		if !p.eat("(") {
			return e, p.errf("expected ( after string")
		}
		name, err := p.parseVarName()
		if err != nil {
			return e, err
		}
		path, err := p.parsePathText()
		if err != nil {
			return e, err
		}
		if !p.eat(")") {
			return e, p.errf("expected ) after string(...)")
		}
		e.Var, e.Path, e.Kind = name, stripTrailingText(path), RetString
	case p.eatKeyword("id"):
		if !p.eat("(") {
			return e, p.errf("expected ( after id")
		}
		name, err := p.parseVarName()
		if err != nil {
			return e, err
		}
		path, err := p.parsePathText()
		if err != nil {
			return e, err
		}
		if !p.eat(")") {
			return e, p.errf("expected ) after id(...)")
		}
		e.Var, e.Path, e.Kind = name, stripTrailingText(path), RetID
	default:
		name, err := p.parseVarName()
		if err != nil {
			return e, err
		}
		path, err := p.parsePathText()
		if err != nil {
			return e, err
		}
		e.Var = name
		if n := len(path.Steps); n > 0 && path.Steps[n-1].Kind == xpath.TestText {
			e.Kind = RetString
			path = stripTrailingText(path)
		}
		e.Path = path
	}
	return e, nil
}
