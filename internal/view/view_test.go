package view

import (
	"testing"

	"xivm/internal/algebra"
	"xivm/internal/pattern"
	"xivm/internal/xmltree"
)

// The paper's running example (Figure 3 bottom).
const paperView = `for $p in doc("confs")//confs//paper, $a in $p/affiliation
return <result> <pid>{id($p)}</pid> <aid>{id($a)}</aid> <acont>{$a}</acont> </result>`

func TestPaperFigure3View(t *testing.T) {
	def, err := Compile(paperView)
	if err != nil {
		t.Fatal(err)
	}
	p := def.Pattern
	if got := p.String(); got != "//confs//paper{ID}/affiliation{ID,cont}" {
		t.Fatalf("pattern = %q", got)
	}
	if def.VarNode["p"] != 1 || def.VarNode["a"] != 2 {
		t.Fatalf("VarNode = %v", def.VarNode)
	}
	if def.Query.RetRoot != "result" || len(def.Query.Elems) != 3 {
		t.Fatalf("return clause: %+v", def.Query)
	}
}

func TestXMarkQ1(t *testing.T) {
	src := `let $auction := doc("auction.xml") return
for $b in $auction/site/people/person[@id]
return $b/name/text()`
	def, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	// /site/people/person[@id] with name{val} — root anchored.
	want := "/site/people/person[/@id]/name{ID,val}"
	if got := def.Pattern.String(); got != want {
		t.Fatalf("pattern = %q want %q", got, want)
	}
	if def.Pattern.Root.Desc {
		t.Fatal("root must be /-anchored")
	}
}

func TestXMarkQ3WhereValue(t *testing.T) {
	src := `let $auction := doc("auction.xml") return
for $b in $auction/site/open_auctions/open_auction
where $b/bidder/increase/text() = "4.50"
return $b/bidder/increase/text()`
	def, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	p := def.Pattern
	// Two bidder/increase chains: one with [val="4.50"], one stored.
	if p.Size() != 7 {
		t.Fatalf("size %d: %s", p.Size(), p)
	}
	var preds, stored int
	for _, n := range p.Nodes {
		if n.HasPred {
			preds++
			if n.PredVal != "4.50" {
				t.Fatalf("pred %q", n.PredVal)
			}
		}
		if n.Store != 0 {
			stored++
		}
	}
	if preds != 1 || stored != 1 {
		t.Fatalf("preds=%d stored=%d", preds, stored)
	}
}

func TestWhereExistencePredicate(t *testing.T) {
	src := `for $b in doc("a")/site/open_auctions/open_auction
where $b/bidder/personref[@person = "person12"]
return $b/bidder/increase/text()`
	def, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range def.Pattern.Nodes {
		if n.Label == "@person" && n.HasPred && n.PredVal == "person12" {
			found = true
		}
	}
	if !found {
		t.Fatalf("embedded attribute predicate lost: %s", def.Pattern)
	}
}

func TestMultipleReturnItems(t *testing.T) {
	src := `for $i in doc("a")/site/regions/namerica/item
return $i/name/text(), $i/description`
	def, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	p := def.Pattern
	var val, cont bool
	for _, n := range p.Nodes {
		if n.Label == "name" && n.Store.Has(pattern.StoreVal) {
			val = true
		}
		if n.Label == "description" && n.Store.Has(pattern.StoreCont) {
			cont = true
		}
	}
	if !val || !cont {
		t.Fatalf("annotations lost: %s", p)
	}
}

func TestCompiledViewEvaluates(t *testing.T) {
	src := `for $p in doc("d")//person[@id], $n in $p/name
return <r><i>{id($p)}</i><v>{string($n)}</v></r>`
	def, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	d, err := xmltree.ParseString(`<site><person id="p0"><name>Ann</name></person><person><name>Bob</name></person></site>`)
	if err != nil {
		t.Fatal(err)
	}
	rows := algebra.Materialize(d, def.Pattern)
	if len(rows) != 1 {
		t.Fatalf("rows = %+v", rows)
	}
	// id($p) stores only ID; string($n) stores val.
	var nameEntry algebra.RowEntry
	for _, e := range rows[0].Entries {
		if e.NodeIdx == def.VarNode["n"] {
			nameEntry = e
		}
	}
	if nameEntry.Val != "Ann" {
		t.Fatalf("entries = %+v", rows[0].Entries)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`return $x`,
		`for $x in doc("a")`,       // variable with no path
		`for $x in $y/a return $x`, // undeclared base
		`for $x in doc("a")/r where $y = "1" return $x`,    // undeclared where var
		`for $x in doc("a")/r return $y`,                   // undeclared return var
		`for $x in doc("a")/r, $y in doc("b")/s return $x`, // second absolute
		`for $x in doc("a")/r[a or b] return $x`,           // disjunction in view
		`for $x in doc("a")/r return <r><a>{$x}</a>`,       // unclosed constructor
		`let $d := doc("a") return for $x in doc("b")/r return $x trailing`,
	}
	for _, src := range bad {
		if _, err := Compile(src); err == nil {
			t.Errorf("Compile(%q) should fail", src)
		}
	}
}

func TestVarNodeIndices(t *testing.T) {
	def := MustCompile(`for $a in doc("d")//a, $b in $a//b, $c in $b/c
return <r><x>{id($a)}</x><y>{id($b)}</y><z>{id($c)}</z></r>`)
	p := def.Pattern
	if p.Size() != 3 {
		t.Fatalf("size %d", p.Size())
	}
	if def.VarNode["a"] != 0 || def.VarNode["b"] != 1 || def.VarNode["c"] != 2 {
		t.Fatalf("VarNode = %v", def.VarNode)
	}
	if !p.Nodes[1].Desc || p.Nodes[2].Desc {
		t.Fatal("edge kinds lost")
	}
	for _, n := range p.Nodes {
		if !n.Store.Has(pattern.StoreID) {
			t.Fatal("missing ID store")
		}
	}
}

func TestQueryString(t *testing.T) {
	q, err := ParseQuery(paperView)
	if err != nil {
		t.Fatal(err)
	}
	if q.String() != paperView {
		t.Fatal("Query.String must return the source")
	}
}

func TestPredicateShapes(t *testing.T) {
	// Nested and-predicates distribute into branches.
	def := MustCompile(`for $x in doc("d")//a[b and c[d]] return id($x)`)
	p := def.Pattern
	if p.Size() != 4 {
		t.Fatalf("size %d: %s", p.Size(), p)
	}
	// Equality predicates inside steps become [val=c] on the branch end.
	def2 := MustCompile(`for $x in doc("d")//a[b="7"] return id($x)`)
	found := false
	for _, n := range def2.Pattern.Nodes {
		if n.Label == "b" && n.HasPred && n.PredVal == "7" {
			found = true
		}
	}
	if !found {
		t.Fatalf("embedded equality lost: %s", def2.Pattern)
	}
	// Conflicting predicates on the same node are rejected.
	if _, err := Compile(`for $x in doc("d")//a[b="7"][b="8"] return id($x)`); err == nil {
		// Two [b=…] predicates create two separate b branches, which is
		// fine (conjunctive semantics); a conflict needs the SAME node.
		t.Log("separate branches per predicate, as designed")
	}
	if _, err := Compile(`for $x in doc("d")//a where $x/b = "7" and $x = "8" return id($x)`); err != nil {
		t.Fatalf("where conjunction rejected: %v", err)
	}
	if _, err := Compile(`for $x in doc("d")//a where $x = "7" and $x = "8" return id($x)`); err == nil {
		t.Fatal("conflicting where predicates accepted")
	}
}
