package view_test

import (
	"fmt"
	"log"

	"xivm/internal/view"
)

// ExampleCompile translates the paper's Figure 3 query into its tree
// pattern.
func ExampleCompile() {
	def, err := view.Compile(`for $p in doc("confs")//confs//paper, $a in $p/affiliation
return <result><pid>{id($p)}</pid><aid>{id($a)}</aid><acont>{$a}</acont></result>`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(def.Pattern)
	fmt.Println("$p ->", def.VarNode["p"], " $a ->", def.VarNode["a"])
	// Output:
	// //confs//paper{ID}/affiliation{ID,cont}
	// $p -> 1  $a -> 2
}
