// Package view implements the paper's view definition language (Figure 3):
// a conjunctive XQuery dialect with let/for/where/return clauses, absolute
// and relative variable bindings over XPath{/,//,*,[]}, value predicates of
// the form string($x) = c, and return clauses exposing any subset of
// {content, string value, structural ID} per variable. Queries translate to
// the tree pattern dialect P.
package view

import (
	"fmt"

	"xivm/internal/pattern"
	"xivm/internal/xpath"
)

// RetKind selects what a return element exposes for its variable.
type RetKind uint8

const (
	// RetContent exposes the full subtree ($x).
	RetContent RetKind = iota
	// RetString exposes string($x).
	RetString
	// RetID exposes id($x).
	RetID
)

// Var is one variable binding of the for (or let) clause.
type Var struct {
	Name string     // without the $
	Base string     // name of the variable it is relative to; "" = absolute
	URI  string     // document URI for absolute variables
	Path xpath.Path // steps from the base
}

// Pred is a where-clause conjunct: either an existence test on a path from
// a variable, or a comparison of the path's string value with a constant.
type Pred struct {
	Var    string
	Path   xpath.Path // optional extra steps below the variable
	Exists bool       // true: pure existence test, Value ignored
	Value  string
}

// RetElem is one element of the return clause.
type RetElem struct {
	Label string
	Var   string
	Path  xpath.Path // optional extra steps below the variable
	Kind  RetKind
}

// Query is a parsed view definition.
type Query struct {
	Vars    []Var
	Preds   []Pred
	RetRoot string // label of the constructed result element
	Elems   []RetElem
	Source  string // original text
}

// String returns the original query text.
func (q *Query) String() string { return q.Source }

// Definition couples a parsed query with its tree pattern translation.
type Definition struct {
	Query   *Query
	Pattern *pattern.Pattern
	// VarNode maps variable names to the pattern node index they bind.
	VarNode map[string]int
}

// Compile parses a view definition and translates it to a tree pattern.
func Compile(src string) (*Definition, error) {
	q, err := ParseQuery(src)
	if err != nil {
		return nil, err
	}
	return Translate(q)
}

// MustCompile is Compile that panics on error.
func MustCompile(src string) *Definition {
	d, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return d
}

// Translate converts a parsed query into a tree pattern following the
// algebra-based identification of tree patterns in queries (Arion et al.),
// restricted to our conjunctive dialect.
func Translate(q *Query) (*Definition, error) {
	t := &translator{varNode: map[string]*pattern.Node{}, docVars: map[string]bool{}}
	for i, v := range q.Vars {
		var base *pattern.Node
		if v.Base == "" {
			if i != 0 {
				return nil, fmt.Errorf("view: only the first variable may be absolute ($%s)", v.Name)
			}
			if len(v.Path.Steps) == 0 {
				// A document variable (let $d := doc("uri")): it denotes
				// the document itself; paths from it root the pattern.
				t.varNode[v.Name] = nil
				t.docVars[v.Name] = true
				continue
			}
		} else {
			b, ok := t.varNode[v.Base]
			if !ok {
				return nil, fmt.Errorf("view: $%s refers to undeclared $%s", v.Name, v.Base)
			}
			base = b
			if base == nil && t.root != nil {
				return nil, fmt.Errorf("view: a second variable cannot re-root the pattern from $%s", v.Base)
			}
		}
		end, err := t.addPath(base, v.Path)
		if err != nil {
			return nil, err
		}
		if end == nil {
			return nil, fmt.Errorf("view: variable $%s binds an empty path", v.Name)
		}
		t.varNode[v.Name] = end
	}
	for _, pr := range q.Preds {
		base, ok := t.varNode[pr.Var]
		if !ok || t.docVars[pr.Var] {
			return nil, fmt.Errorf("view: where clause uses unusable variable $%s", pr.Var)
		}
		end, err := t.addPath(base, pr.Path)
		if err != nil {
			return nil, err
		}
		if pr.Exists {
			continue
		}
		if end.HasPred && end.PredVal != pr.Value {
			return nil, fmt.Errorf("view: conflicting predicates on $%s", pr.Var)
		}
		end.HasPred = true
		end.PredVal = pr.Value
	}
	for _, e := range q.Elems {
		base, ok := t.varNode[e.Var]
		if !ok || t.docVars[e.Var] {
			return nil, fmt.Errorf("view: return clause uses unusable variable $%s", e.Var)
		}
		end, err := t.addPath(base, e.Path)
		if err != nil {
			return nil, err
		}
		switch e.Kind {
		case RetContent:
			end.Store |= pattern.StoreCont | pattern.StoreID
		case RetString:
			end.Store |= pattern.StoreVal | pattern.StoreID
		case RetID:
			end.Store |= pattern.StoreID
		}
	}
	if t.root == nil {
		return nil, fmt.Errorf("view: query produced no pattern")
	}
	p, err := pattern.New(t.root)
	if err != nil {
		return nil, err
	}
	vn := make(map[string]int, len(t.varNode))
	for name, n := range t.varNode {
		if n != nil {
			vn[name] = n.Index
		}
	}
	return &Definition{Query: q, Pattern: p, VarNode: vn}, nil
}

type translator struct {
	root    *pattern.Node
	varNode map[string]*pattern.Node
	docVars map[string]bool
}

// addPath extends the pattern from base along the path's spine, attaching
// step predicates as branches, and returns the last spine node. A nil base
// roots the pattern. An empty path returns base.
func (t *translator) addPath(base *pattern.Node, p xpath.Path) (*pattern.Node, error) {
	cur := base
	for i, st := range p.Steps {
		if st.Axis != xpath.Child && st.Axis != xpath.Descendant {
			// Tree patterns have only parent-child and ancestor-descendant
			// edges; sibling axes are a query-surface feature, not a view
			// feature.
			return nil, fmt.Errorf("view: sibling axes are outside the pattern dialect (step %d)", i)
		}
		n := &pattern.Node{Desc: st.Axis == xpath.Descendant}
		switch st.Kind {
		case xpath.TestName:
			n.Label = st.Name
		case xpath.TestWildcard:
			n.Label = "*"
		case xpath.TestAttr:
			n.Label = "@" + st.Name
		case xpath.TestText:
			// The parser strips trailing text() steps (they denote the
			// string value of the preceding node), so none should remain.
			return nil, fmt.Errorf("view: unexpected text() step at position %d", i)
		}
		if cur == nil {
			t.root = n
		} else {
			cur.Children = append(cur.Children, n)
		}
		for _, pred := range st.Preds {
			if err := t.addPredicate(n, pred); err != nil {
				return nil, err
			}
		}
		cur = n
	}
	return cur, nil
}

// addPredicate attaches an XPath predicate to a pattern node as branches.
// Only conjunctive predicates are expressible in P: or is rejected.
func (t *translator) addPredicate(n *pattern.Node, e xpath.Expr) error {
	switch x := e.(type) {
	case xpath.AndExpr:
		if err := t.addPredicate(n, x.Left); err != nil {
			return err
		}
		return t.addPredicate(n, x.Right)
	case xpath.OrExpr:
		return fmt.Errorf("view: disjunctive predicates are outside the conjunctive view dialect")
	case xpath.ExistsExpr:
		_, err := t.addPath(n, x.Path)
		return err
	case xpath.EqExpr:
		end, err := t.addPath(n, x.Path)
		if err != nil {
			return err
		}
		if end == n {
			return fmt.Errorf("view: empty comparison path in predicate")
		}
		if end.HasPred && end.PredVal != x.Lit {
			return fmt.Errorf("view: conflicting predicates")
		}
		end.HasPred = true
		end.PredVal = x.Lit
		return nil
	}
	return fmt.Errorf("view: unsupported predicate %T", e)
}
