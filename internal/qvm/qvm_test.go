package qvm

import (
	"math/rand"
	"testing"

	"xivm/internal/algebra"
	"xivm/internal/pattern"
	"xivm/internal/xmltree"
	"xivm/internal/xpath"
)

const auctionDoc = `<site>
  <people>
    <person id="person0"><name>Ann</name><phone>123</phone><profile income="40k"><age>30</age></profile></person>
    <person id="person1"><name>Bob</name><homepage>http://b</homepage></person>
    <person id="person2"><name>Cy</name></person>
  </people>
  <regions>
    <namerica><item><name>i0</name><description>d0</description></item></namerica>
    <europe><item><name>i1</name></item></europe>
  </regions>
  <open_auctions>
    <open_auction><bidder><increase>4.50</increase></bidder><reserve>10</reserve></open_auction>
    <open_auction><privacy>Yes</privacy><bidder><increase>7.00</increase></bidder><bidder><increase>9.00</increase></bidder></open_auction>
  </open_auctions>
</site>`

// queryCorpus spans the full widened grammar; reused as fuzz seeds.
var queryCorpus = []string{
	"/site/people/person",
	"//person",
	"/site//item",
	"/site/regions/*/item",
	"//name/text()",
	"/site/people/person/@id",
	"/site/people/person[phone or homepage]",
	"/site/people/person[@id=\"person1\"]",
	"//open_auction[bidder/increase=\"4.50\"]",
	"//person[profile/@income]",
	"//item[description][name]",
	"//open_auction[reserve and (bidder or privacy)]",
	"/site/people/following-sibling::regions",
	"/site/open_auctions/preceding-sibling::*[1]",
	"//bidder/following-sibling::reserve",
	"//reserve/preceding-sibling::bidder",
	"/site/people/person[2]",
	"/site/people/person[last()]",
	"//person[homepage][1]",
	"//open_auction[count(bidder)>=2]",
	"//person[count(profile/age)<1]",
	"//person[contains(name,'n')]",
	"//person[starts-with(@id,'person')]",
	"//open_auction/bidder[last()]/increase",
	"//*[count(*)>2]",
}

func mustDoc(t testing.TB, src string) *xmltree.Document {
	t.Helper()
	d, err := xmltree.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func sameNodes(a, b []*xmltree.Node) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestCompiledMatchesInterpretedOnCorpus(t *testing.T) {
	d := mustDoc(t, auctionDoc)
	for _, q := range queryCorpus {
		p, err := xpath.Parse(q)
		if err != nil {
			t.Fatalf("Parse(%q): %v", q, err)
		}
		prog, err := Compile(p)
		if err != nil {
			t.Fatalf("Compile(%q): %v", q, err)
		}
		got := prog.Eval(d)
		want := xpath.Eval(d, p)
		if !sameNodes(got, want) {
			t.Errorf("%s: compiled %d nodes, interpreted %d nodes\n%s", q, len(got), len(want), prog.Disasm())
		}
		if prog.Exists(d) != (len(want) > 0) {
			t.Errorf("%s: Exists = %v, want %v", q, prog.Exists(d), len(want) > 0)
		}
	}
}

func TestCompiledMatchesInterpretedRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 2000; trial++ {
		d := mustDoc(t, xpath.RandomDoc(rng))
		q := xpath.RandomQuery(rng)
		p, err := xpath.Parse(q)
		if err != nil {
			t.Fatalf("Parse(%q): %v", q, err)
		}
		prog, err := Compile(p)
		if err != nil {
			t.Fatalf("Compile(%q): %v", q, err)
		}
		got := prog.Eval(d)
		want := xpath.Eval(d, p)
		if !sameNodes(got, want) {
			t.Fatalf("trial %d: %s: compiled %d vs interpreted %d nodes", trial, q, len(got), len(want))
		}
	}
}

func TestCompileRelative(t *testing.T) {
	d := mustDoc(t, auctionDoc)
	person := xpath.Eval(d, xpath.MustParse("/site/people/person[1]"))[0]
	rel, err := xpath.ParseRelative("profile/age")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := CompileRelative(rel)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine()
	got := prog.EvalFrom(m, person, nil)
	if len(got) != 1 || got[0].StringValue() != "30" {
		t.Fatalf("relative compiled eval = %v", got)
	}
}

func TestCompileRejectsEmptyPath(t *testing.T) {
	if _, err := Compile(xpath.Path{}); err == nil {
		t.Fatal("empty path must not compile")
	}
}

func TestEvalIntoReusesMachine(t *testing.T) {
	d := mustDoc(t, auctionDoc)
	prog, err := CompileString("//open_auction[count(bidder)>=1]/bidder/increase")
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine()
	warm := prog.EvalInto(m, d, nil)
	if len(warm) != 3 {
		t.Fatalf("warmup = %d nodes", len(warm))
	}
	allocs := testing.AllocsPerRun(50, func() {
		buf := prog.EvalInto(m, d, make([]*xmltree.Node, 0, 8))
		if len(buf) != 3 {
			t.Fatal("wrong result")
		}
	})
	// One allocation per run is the result buffer we make in the closure;
	// the evaluation itself must not allocate in steady state.
	if allocs > 1 {
		t.Fatalf("EvalInto allocates %v times per run", allocs)
	}
}

// patternCorpus exercises compiled pattern existence: spines, branches,
// wildcards, attributes, text, words, value predicates, / vs // anchoring.
var patternCorpus = []string{
	"//person",
	"/site//person//name",
	"//person[//phone]//name",
	"//open_auction[//privacy]//increase",
	"//person[//@id]",
	"//item[//name[val=\"i1\"]]",
	"//person//profile//@income",
	"//open_auction//bidder//increase//#text",
	"/people//name", // non-matching root anchor
	"//*[//phone]",
}

func TestCompiledPatternExistenceMatchesAlgebra(t *testing.T) {
	d := mustDoc(t, auctionDoc)
	for _, src := range patternCorpus {
		pt, err := pattern.Parse(src)
		if err != nil {
			t.Fatalf("pattern.Parse(%q): %v", src, err)
		}
		prog, err := CompilePattern(pt)
		if err != nil {
			t.Fatalf("CompilePattern(%q): %v", src, err)
		}
		want := len(algebra.Embeddings(d, pt)) > 0
		if got := prog.Exists(d); got != want {
			t.Errorf("%s: compiled exists=%v, algebra=%v\n%s", src, got, want, prog.Disasm())
		}
	}
}

func TestCompiledPatternWordAndValue(t *testing.T) {
	d := mustDoc(t, `<r><doc><p>alpha beta gamma</p></doc><k>v1</k></r>`)
	cases := []struct {
		src  string
		want bool
	}{
		{"//p[//~beta]", true},
		{"//p[//~bet]", false},
		{"//k[val=\"v1\"]", true},
		{"//k[val=\"v2\"]", false},
	}
	for _, c := range cases {
		pt, err := pattern.Parse(c.src)
		if err != nil {
			t.Fatalf("pattern.Parse(%q): %v", c.src, err)
		}
		prog, err := CompilePattern(pt)
		if err != nil {
			t.Fatal(err)
		}
		if got := prog.Exists(d); got != c.want {
			t.Errorf("%s: exists=%v want %v", c.src, got, c.want)
		}
	}
}

func TestRequiredLabels(t *testing.T) {
	pt, err := pattern.Parse("//person[//phone]//name")
	if err != nil {
		t.Fatal(err)
	}
	labels := RequiredLabels(pt)
	want := map[string]bool{"person": true, "phone": true, "name": true}
	if len(labels) != len(want) {
		t.Fatalf("labels = %v", labels)
	}
	for _, l := range labels {
		if !want[l] {
			t.Fatalf("unexpected label %q", l)
		}
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	pa, _ := CompileString("/a")
	pb, _ := CompileString("/b")
	pc2, _ := CompileString("/c")
	if evicted := c.Add("/a", pa); evicted {
		t.Fatal("no eviction expected")
	}
	c.Add("/b", pb)
	// Touch /a so /b becomes the LRU victim.
	if _, ok := c.Get("/a"); !ok {
		t.Fatal("expected hit for /a")
	}
	if evicted := c.Add("/c", pc2); !evicted {
		t.Fatal("expected eviction adding /c")
	}
	if _, ok := c.Get("/b"); ok {
		t.Fatal("/b should have been evicted")
	}
	if _, ok := c.Get("/a"); !ok {
		t.Fatal("/a should have survived")
	}
	if _, ok := c.Get("/c"); !ok {
		t.Fatal("/c should be cached")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
	// Re-adding an existing key updates in place without eviction.
	if evicted := c.Add("/a", pa); evicted {
		t.Fatal("re-add must not evict")
	}
}

// FuzzCompiledVsInterpreted is the differential fuzz target over the
// widened grammar: any parsable query must produce byte-identical results
// from the compiled program and the interpreted oracle, on a document
// derived from the fuzz input.
func FuzzCompiledVsInterpreted(f *testing.F) {
	for _, q := range queryCorpus {
		f.Add(q, int64(1))
	}
	f.Fuzz(func(t *testing.T, query string, seed int64) {
		p, err := xpath.Parse(query)
		if err != nil {
			return
		}
		prog, err := Compile(p)
		if err != nil {
			t.Fatalf("parsed query %q fails to compile: %v", query, err)
		}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 3; i++ {
			d, err := xmltree.ParseString(xpath.RandomDoc(rng))
			if err != nil {
				t.Fatal(err)
			}
			got := prog.Eval(d)
			want := xpath.Eval(d, p)
			if !sameNodes(got, want) {
				t.Fatalf("%q: compiled %d nodes, interpreted %d", query, len(got), len(want))
			}
		}
	})
}

// TestCompiledEvalSeesMutations guards against a stale label index: the
// leading-descendant fast path answers from Document.Labeled, which every
// structural mutator must invalidate. Evaluate, mutate, evaluate again —
// the compiled result must track the document exactly like the interpreter.
func TestCompiledEvalSeesMutations(t *testing.T) {
	d, err := xmltree.ParseString(`<r><a><b/></a><b/></r>`)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := CompileString("//b")
	if err != nil {
		t.Fatal(err)
	}
	if n := prog.Eval(d); len(n) != 2 {
		t.Fatalf("initial: %d matches, want 2", len(n))
	}

	tmpl, err := xmltree.ParseString(`<b><b/></b>`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.ApplyInsert(d.Root, tmpl.Root.Clone()); err != nil {
		t.Fatal(err)
	}
	if n := prog.Eval(d); len(n) != 4 {
		t.Fatalf("after insert: %d matches, want 4", len(n))
	}
	if !prog.Exists(d) {
		t.Fatal("after insert: Exists = false")
	}

	targets := prog.Eval(d)
	if _, err := d.ApplyDeleteBatch(targets[:1]); err != nil {
		t.Fatal(err)
	}
	p, err := xpath.Parse("//b")
	if err != nil {
		t.Fatal(err)
	}
	got := prog.Eval(d)
	want := xpath.Eval(d, p)
	if len(got) != len(want) {
		t.Fatalf("after delete: compiled %d matches, interpreted %d", len(got), len(want))
	}
}
