// Package qvm compiles parsed xpath.Path and pattern.Pattern structures
// into compact bytecode programs executed by a small stack VM. A program is
// immutable once compiled: it holds no document state, so one program can
// serve any number of concurrent evaluations over any number of immutable
// snapshots — the serving-path cache (Cache) exploits exactly that, and no
// invalidation protocol is needed.
//
// Instruction layout. A program is one flat []Instr array holding three
// kinds of code, distinguished by position rather than by markers:
//
//   - path segments: runs of fused step opcodes terminated by opEnd. The
//     main segment starts at pc 0; relative sub-paths referenced from
//     predicates are appended as further segments.
//   - predicate chains: one block per predicate, each a short-circuiting
//     flag-register bytecode ending in pRet. A step's B operand points at
//     the first block of its chain; the block count rides in C.
//
// Step opcodes fuse the axis with the node test (child/descendant/
// following-sibling/preceding-sibling × name/wildcard/attribute/text/word)
// so the inner matching loop is a single switch with no further
// dispatching. Labels and literals live in per-program constant pools,
// referenced by index.
package qvm

import (
	"fmt"
	"strings"
)

// Op is a bytecode opcode.
type Op uint8

// Axis and test codes packed into the fused step opcodes.
const (
	axChild = iota
	axDesc
	axFollowing
	axPreceding
	numAxes
)

const (
	tsName = iota
	tsWild
	tsAttr
	tsText
	tsWord // pattern word leaves "~w": text nodes containing the token
	numTests
)

const (
	// opEnd terminates a path segment.
	opEnd Op = 0
	// opStep0 .. opStepLast are the fused step opcodes:
	// opStep0 + axis*numTests + test.
	opStep0    Op = 1
	opStepLast Op = opStep0 + numAxes*numTests - 1
)

// Predicate ops (flag-register bytecode inside predicate blocks).
const (
	pExists   Op = opStepLast + 1 + iota // A=subpath pc, C=1 if the sub-path is simple (early-exit eligible)
	pEq                                  // A=subpath pc, B=literal index, C=simple bit
	pContains                            // A=subpath pc, B=literal index, C=simple bit
	pStarts                              // A=subpath pc, B=literal index, C=simple bit
	pCount                               // A=subpath pc, B=N, C=comparison op (xpath.CmpOp)
	pPos                                 // A=N: flag = (position == N)
	pLast                                // flag = (position == size)
	pSelfEq                              // A=literal index: flag = (context string value == literal)
	pJumpF                               // A=target pc: jump if flag is false
	pJumpT                               // A=target pc: jump if flag is true
	pRet                                 // end of predicate block; block result is the flag
)

// Step C-operand flags.
const (
	stepGrouped    = 1 << 0 // chain contains positional predicates: filter per context group
	predCountShift = 8      // C >> predCountShift = number of predicate blocks
)

// Instr is one instruction. Operand meaning depends on the opcode; unused
// operands are -1 (A, B) or 0 (C).
type Instr struct {
	Op      Op
	A, B, C int32
}

// Program is a compiled, immutable query program.
type Program struct {
	Instrs []Instr
	Names  []string // label constants (attribute names stored with "@")
	Lits   []string // string literal constants
	// FromDoc marks the main segment as anchored at the virtual document
	// node (absolute paths and patterns); relative programs start at the
	// context node itself.
	FromDoc bool
	// Source is the text the program was compiled from, for diagnostics.
	Source string
}

func stepOp(axis, test int) Op { return opStep0 + Op(axis*numTests+test) }

func (op Op) isStep() bool { return op >= opStep0 && op <= opStepLast }

func (op Op) axis() int { return int(op-opStep0) / numTests }
func (op Op) test() int { return int(op-opStep0) % numTests }

var axisNames = [numAxes]string{"child", "desc", "following", "preceding"}
var testNames = [numTests]string{"name", "wild", "attr", "text", "word"}

var predNames = map[Op]string{
	pExists: "exists", pEq: "eq", pContains: "contains", pStarts: "starts",
	pCount: "count", pPos: "pos", pLast: "last", pSelfEq: "selfeq",
	pJumpF: "jumpf", pJumpT: "jumpt", pRet: "ret",
}

// Disasm renders the program for tests and debugging.
func (p *Program) Disasm() string {
	var b strings.Builder
	for pc, in := range p.Instrs {
		fmt.Fprintf(&b, "%3d: ", pc)
		switch {
		case in.Op == opEnd:
			b.WriteString("end")
		case in.Op.isStep():
			fmt.Fprintf(&b, "step %s/%s", axisNames[in.Op.axis()], testNames[in.Op.test()])
			if in.A >= 0 {
				fmt.Fprintf(&b, " name=%q", p.Names[in.A])
			}
			if in.B >= 0 {
				fmt.Fprintf(&b, " preds@%d n=%d", in.B, in.C>>predCountShift)
				if in.C&stepGrouped != 0 {
					b.WriteString(" grouped")
				}
			}
		default:
			fmt.Fprintf(&b, "%s a=%d b=%d c=%d", predNames[in.Op], in.A, in.B, in.C)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
