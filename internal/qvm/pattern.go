package qvm

import (
	"strings"

	"xivm/internal/pattern"
	"xivm/internal/xmltree"
)

// CompilePattern compiles a tree pattern into an existence program over the
// same instruction set the path compiler uses: the pattern's spine (the
// chain through each node's last child, mirroring the rendering order of
// Pattern.String) becomes the main segment, every other child subtree
// becomes an existence predicate block, and [val=c] annotations become
// self-value tests. Patterns have no positional predicates, so the whole
// program is eligible for the early-exit existence walk — Program.Exists
// stops at the first embedding witness.
//
// The program decides pattern existence (is there at least one embedding?),
// which is what the maintenance gates need; tuple extents still come from
// the algebra evaluator.
func CompilePattern(pt *pattern.Pattern) (*Program, error) {
	c := &compiler{
		prog:    &Program{FromDoc: true, Source: pt.String()},
		nameIdx: map[string]int32{},
		litIdx:  map[string]int32{},
	}
	if err := c.patternSeg(pt.Root); err != nil {
		return nil, err
	}
	return c.prog, nil
}

// patternSeg emits the spine starting at n as a path segment, then the
// predicate chains (self-value tests and branch existence tests) the spine
// nodes reference.
func (c *compiler) patternSeg(n *pattern.Node) error {
	type pendingNode struct {
		at   int32
		node *pattern.Node
		kids []*pattern.Node // non-spine children, each an existence branch
	}
	var pending []pendingNode
	for cur := n; cur != nil; {
		at := c.emit(c.patternStep(cur))
		var kids []*pattern.Node
		var spine *pattern.Node
		if len(cur.Children) > 0 {
			kids = cur.Children[:len(cur.Children)-1]
			spine = cur.Children[len(cur.Children)-1]
		}
		if cur.HasPred || len(kids) > 0 {
			pending = append(pending, pendingNode{at: at, node: cur, kids: kids})
		}
		cur = spine
	}
	c.emit(Instr{Op: opEnd, A: -1, B: -1})
	for _, ps := range pending {
		chain := int32(len(c.prog.Instrs))
		nblocks := int32(0)
		type branch struct {
			at  int32
			kid *pattern.Node
		}
		var branches []branch
		if ps.node.HasPred {
			c.emit(Instr{Op: pSelfEq, A: c.lit(ps.node.PredVal), B: -1})
			c.emit(Instr{Op: pRet, A: -1, B: -1})
			nblocks++
		}
		for _, k := range ps.kids {
			at := c.emit(Instr{Op: pExists, A: -1, B: -1, C: 1})
			c.emit(Instr{Op: pRet, A: -1, B: -1})
			branches = append(branches, branch{at: at, kid: k})
			nblocks++
		}
		for _, br := range branches {
			pc := int32(len(c.prog.Instrs))
			if err := c.patternSeg(br.kid); err != nil {
				return err
			}
			c.prog.Instrs[br.at].A = pc
		}
		c.prog.Instrs[ps.at].B = chain
		c.prog.Instrs[ps.at].C = nblocks << predCountShift
	}
	return nil
}

// patternStep translates one pattern node into a fused step instruction.
// The edge from the parent (or the root's anchoring) picks the axis; the
// label picks the test: "*" wildcard, "@x" attribute, "#text" text, "~w"
// word, anything else an element name.
func (c *compiler) patternStep(n *pattern.Node) Instr {
	axis := axChild
	if n.Desc {
		axis = axDesc
	}
	in := Instr{A: -1, B: -1}
	switch {
	case n.Label == "*":
		in.Op = stepOp(axis, tsWild)
	case n.Label == xmltree.TextLabel:
		in.Op = stepOp(axis, tsText)
	case strings.HasPrefix(n.Label, "@"):
		in.Op = stepOp(axis, tsAttr)
		in.A = c.name(n.Label)
	case strings.HasPrefix(n.Label, "~"):
		in.Op = stepOp(axis, tsWord)
		in.A = c.name(n.Label[1:])
	default:
		in.Op = stepOp(axis, tsName)
		in.A = c.name(n.Label)
	}
	return in
}

// RequiredLabels returns the pattern's concrete node labels — every
// embedding must bind one document node per pattern node, so a document (or
// an inserted forest) containing none of these labels cannot contain any
// new embedding. Wildcard nodes contribute "*" (any element).
func RequiredLabels(pt *pattern.Pattern) []string {
	seen := make(map[string]bool, len(pt.Nodes))
	out := make([]string, 0, len(pt.Nodes))
	for _, n := range pt.Nodes {
		if !seen[n.Label] {
			seen[n.Label] = true
			out = append(out, n.Label)
		}
	}
	return out
}
