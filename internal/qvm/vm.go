package qvm

import (
	"strings"
	"sync"

	"xivm/internal/xmltree"
	"xivm/internal/xpath"
)

// Machine holds the reusable evaluation state for running programs: a free
// list of node buffers sized by past evaluations. A Machine is not safe for
// concurrent use; Program.Eval draws machines from an internal pool, and
// callers with a hot loop can hold their own via NewMachine.
type Machine struct {
	free [][]*xmltree.Node
	// doc is the document of the current absolute evaluation; it lets a
	// leading descendant step answer from the document's label index
	// instead of walking the tree. Nil for relative evaluations.
	doc *xmltree.Document
}

// NewMachine returns an empty machine.
func NewMachine() *Machine { return &Machine{} }

var machinePool = sync.Pool{New: func() any { return NewMachine() }}

func (m *Machine) getBuf() []*xmltree.Node {
	if n := len(m.free); n > 0 {
		b := m.free[n-1]
		m.free = m.free[:n-1]
		return b[:0]
	}
	return make([]*xmltree.Node, 0, 16)
}

func (m *Machine) putBuf(b []*xmltree.Node) {
	m.free = append(m.free, b)
}

// Eval runs an absolute program over the document, returning matches in
// document order without duplicates. The result slice is freshly allocated
// and owned by the caller.
func (p *Program) Eval(d *xmltree.Document) []*xmltree.Node {
	m := machinePool.Get().(*Machine)
	out := p.EvalInto(m, d, nil)
	m.doc = nil // don't pin the document from the pool
	machinePool.Put(m)
	return out
}

// EvalInto appends the program's matches to dst using the caller's machine,
// avoiding all steady-state allocations beyond dst growth.
func (p *Program) EvalInto(m *Machine, d *xmltree.Document, dst []*xmltree.Node) []*xmltree.Node {
	m.doc = d
	return m.runSeg(p, 0, d.Root, p.FromDoc, dst)
}

// EvalFrom appends the matches of a relative program evaluated from ctx.
func (p *Program) EvalFrom(m *Machine, ctx *xmltree.Node, dst []*xmltree.Node) []*xmltree.Node {
	m.doc = nil
	return m.runSeg(p, 0, ctx, false, dst)
}

// Exists reports whether the program has at least one match, stopping at
// the first witness when the program is free of positional predicates.
func (p *Program) Exists(d *xmltree.Document) bool {
	m := machinePool.Get().(*Machine)
	m.doc = d
	defer func() {
		m.doc = nil
		machinePool.Put(m)
	}()
	if !p.mainSimple() {
		buf := m.getBuf()
		buf = p.EvalInto(m, d, buf)
		ok := len(buf) > 0
		m.putBuf(buf)
		return ok
	}
	in := &p.Instrs[0]
	root := d.Root
	if !p.FromDoc {
		return m.segAny(p, 0, root, modeExists, "")
	}
	switch in.Op.axis() {
	case axChild:
		return m.stepAccept(p, in, root) && m.segAny(p, 1, root, modeExists, "")
	case axDesc:
		// The label index turns the witness hunt into a scan of the
		// step's own matches instead of a whole-tree walk.
		if cands, ok := m.indexed(p, in); ok {
			for _, n := range cands {
				if m.stepAccept(p, in, n) && m.segAny(p, 1, n, modeExists, "") {
					return true
				}
			}
			return false
		}
		if m.stepAccept(p, in, root) && m.segAny(p, 1, root, modeExists, "") {
			return true
		}
		return m.descAny(p, 0, in, root, modeExists, "")
	}
	return false // sibling axes from the virtual document node
}

// mainSimple reports whether the main segment has no grouped steps.
func (p *Program) mainSimple() bool {
	for pc := 0; p.Instrs[pc].Op != opEnd; pc++ {
		if p.Instrs[pc].C&stepGrouped != 0 {
			return false
		}
	}
	return true
}

// runSeg executes the path segment at pc from start, appending the final
// matches to dst. When fromDoc is set the first step is evaluated against
// the virtual document node.
func (m *Machine) runSeg(p *Program, pc int, start *xmltree.Node, fromDoc bool, dst []*xmltree.Node) []*xmltree.Node {
	cur := m.getBuf()
	next := m.getBuf()
	cur = append(cur, start)
	first := fromDoc
	for {
		in := &p.Instrs[pc]
		if in.Op == opEnd {
			dst = append(dst, cur...)
			break
		}
		next = next[:0]
		nblocks := int(in.C >> predCountShift)
		if in.B >= 0 && in.C&stepGrouped != 0 {
			// Positional predicates: build and filter each context node's
			// match group independently, then merge.
			if first {
				base := len(next)
				next = m.gather(p, in, nil, start, next)
				next = m.filterGroup(p, in, next, base)
			} else {
				for _, c := range cur {
					base := len(next)
					next = m.gather(p, in, c, nil, next)
					next = m.filterGroup(p, in, next, base)
				}
			}
			next = sortDedup(next)
		} else {
			// Batched path: gather everything, dedup once, and (with no
			// positional tests) filter each distinct node once, however
			// many groups it appeared in.
			if first {
				next = m.gather(p, in, nil, start, next)
			} else {
				for _, c := range cur {
					next = m.gather(p, in, c, nil, next)
				}
			}
			next = sortDedup(next)
			if in.B >= 0 {
				kept := next[:0]
				for _, n := range next {
					if m.runChain(p, int(in.B), nblocks, n, 0, 0) {
						kept = append(kept, n)
					}
				}
				next = kept
			}
		}
		if len(next) == 0 {
			break
		}
		cur, next = next, cur
		first = false
		pc++
	}
	m.putBuf(cur)
	m.putBuf(next)
	return dst
}

// filterGroup applies the step's predicate blocks sequentially to the
// match group next[base:], re-indexing positions after each block.
func (m *Machine) filterGroup(p *Program, in *Instr, next []*xmltree.Node, base int) []*xmltree.Node {
	blockPC := int(in.B)
	nblocks := int(in.C >> predCountShift)
	for b := 0; b < nblocks; b++ {
		group := next[base:]
		size := len(group)
		kept := base
		for i, n := range group {
			ok, _ := m.runBlock(p, blockPC, n, i+1, size)
			if ok {
				next[kept] = n
				kept++
			}
		}
		next = next[:kept]
		blockPC = blockEnd(p, blockPC)
	}
	return next
}

// blockEnd returns the pc just past the block's pRet. Jump targets never
// cross a pRet, so a linear scan is exact.
func blockEnd(p *Program, pc int) int {
	for p.Instrs[pc].Op != pRet {
		pc++
	}
	return pc + 1
}

// indexed resolves a descendant step from the virtual document node against
// the document's label index: exact-label tests (name, attribute, text) are
// the index entry verbatim. Wildcard and word tests, and relative
// evaluations (nil doc), fall back to the walk. The returned slice is the
// index's own — callers must only read it.
func (m *Machine) indexed(p *Program, in *Instr) ([]*xmltree.Node, bool) {
	if m.doc == nil {
		return nil, false
	}
	switch in.Op.test() {
	case tsName, tsAttr:
		// Attribute names are pooled with their "@" prefix, matching
		// Node.Label conventions, so both tests share the lookup.
		return m.doc.Labeled(p.Names[in.A]), true
	case tsText:
		return m.doc.Labeled(xmltree.TextLabel), true
	}
	return nil, false
}

// gather appends the nodes selected by the step from one context. A nil
// ctx with non-nil docRoot denotes the virtual document node.
func (m *Machine) gather(p *Program, in *Instr, ctx, docRoot *xmltree.Node, dst []*xmltree.Node) []*xmltree.Node {
	if docRoot != nil {
		switch in.Op.axis() {
		case axChild:
			if p.match(in, docRoot) {
				dst = append(dst, docRoot)
			}
		case axDesc:
			// A leading descendant step with an exact label test is the
			// document's label index verbatim (same document order the
			// walk below would produce), in O(matches) instead of
			// O(document).
			if nodes, ok := m.indexed(p, in); ok {
				return append(dst, nodes...)
			}
			if p.match(in, docRoot) {
				dst = append(dst, docRoot)
			}
			dst = appendDesc(p, in, docRoot, dst)
		}
		// Sibling axes from the virtual document node match nothing.
		return dst
	}
	switch in.Op.axis() {
	case axChild:
		for _, ch := range ctx.Children {
			if p.match(in, ch) {
				dst = append(dst, ch)
			}
		}
	case axDesc:
		dst = appendDesc(p, in, ctx, dst)
	case axFollowing:
		if par := ctx.Parent; par != nil {
			for i := childIndex(par, ctx) + 1; i < len(par.Children); i++ {
				if p.match(in, par.Children[i]) {
					dst = append(dst, par.Children[i])
				}
			}
		}
	case axPreceding:
		// Nearest-first group order: [1] is the immediately preceding
		// sibling.
		if par := ctx.Parent; par != nil {
			for i := childIndex(par, ctx) - 1; i >= 0; i-- {
				if p.match(in, par.Children[i]) {
					dst = append(dst, par.Children[i])
				}
			}
		}
	}
	return dst
}

// appendDesc appends matching proper descendants of n in document order,
// without closure allocation.
func appendDesc(p *Program, in *Instr, n *xmltree.Node, dst []*xmltree.Node) []*xmltree.Node {
	for _, ch := range n.Children {
		if p.match(in, ch) {
			dst = append(dst, ch)
		}
		dst = appendDesc(p, in, ch, dst)
	}
	return dst
}

func childIndex(parent, ctx *xmltree.Node) int {
	for i, ch := range parent.Children {
		if ch == ctx {
			return i
		}
	}
	return -1
}

// match applies the step's fused node test.
func (p *Program) match(in *Instr, n *xmltree.Node) bool {
	switch in.Op.test() {
	case tsName:
		return n.Kind == xmltree.Element && n.Label == p.Names[in.A]
	case tsWild:
		return n.Kind == xmltree.Element
	case tsAttr:
		// Attribute names are pooled with their "@" prefix: no concat here.
		return n.Kind == xmltree.Attribute && n.Label == p.Names[in.A]
	case tsText:
		return n.Kind == xmltree.Text
	case tsWord:
		return n.MatchesWord(p.Names[in.A])
	}
	return false
}

// runChain runs nblocks consecutive predicate blocks; all must accept.
func (m *Machine) runChain(p *Program, pc, nblocks int, ctx *xmltree.Node, pos, size int) bool {
	for b := 0; b < nblocks; b++ {
		ok, next := m.runBlock(p, pc, ctx, pos, size)
		if !ok {
			return false
		}
		pc = next
	}
	return true
}

// Value-test modes for the early-exit sub-path walk.
const (
	modeExists = iota
	modeEq
	modeContains
	modePrefix
)

// runBlock executes one predicate block for a context node at 1-based
// position pos in a group of the given size; returns the verdict and the
// pc after the block's pRet.
func (m *Machine) runBlock(p *Program, pc int, ctx *xmltree.Node, pos, size int) (bool, int) {
	flag := false
	for {
		in := &p.Instrs[pc]
		switch in.Op {
		case pExists:
			flag = m.subAny(p, in, ctx, modeExists, "")
		case pEq:
			flag = m.subAny(p, in, ctx, modeEq, p.Lits[in.B])
		case pContains:
			flag = m.subAny(p, in, ctx, modeContains, p.Lits[in.B])
		case pStarts:
			flag = m.subAny(p, in, ctx, modePrefix, p.Lits[in.B])
		case pCount:
			buf := m.getBuf()
			buf = m.runSeg(p, int(in.A), ctx, false, buf)
			flag = xpath.CmpOp(in.C).Holds(len(buf), int(in.B))
			m.putBuf(buf)
		case pPos:
			flag = pos == int(in.A)
		case pLast:
			flag = pos == size
		case pSelfEq:
			flag = ctx.StringValue() == p.Lits[in.A]
		case pJumpF:
			if !flag {
				pc = int(in.A)
				continue
			}
		case pJumpT:
			if flag {
				pc = int(in.A)
				continue
			}
		case pRet:
			return flag, pc + 1
		}
		pc++
	}
}

// subAny evaluates a value-bearing sub-path predicate: true when any node
// the sub-path selects from ctx satisfies the mode's value test. Simple
// sub-paths short-circuit at the first witness; others materialize.
func (m *Machine) subAny(p *Program, in *Instr, ctx *xmltree.Node, mode int, lit string) bool {
	if in.C&1 != 0 {
		return m.segAny(p, int(in.A), ctx, mode, lit)
	}
	buf := m.getBuf()
	buf = m.runSeg(p, int(in.A), ctx, false, buf)
	ok := false
	for _, n := range buf {
		if leafTest(n, mode, lit) {
			ok = true
			break
		}
	}
	m.putBuf(buf)
	return ok
}

func leafTest(n *xmltree.Node, mode int, lit string) bool {
	switch mode {
	case modeEq:
		return n.StringValue() == lit
	case modeContains:
		return strings.Contains(n.StringValue(), lit)
	case modePrefix:
		return strings.HasPrefix(n.StringValue(), lit)
	}
	return true
}

// segAny is the early-exit walk: does the segment at pc select, from ctx,
// any node passing the leaf test? Only called for simple segments (no
// positional predicates on any step).
func (m *Machine) segAny(p *Program, pc int, ctx *xmltree.Node, mode int, lit string) bool {
	in := &p.Instrs[pc]
	if in.Op == opEnd {
		return leafTest(ctx, mode, lit)
	}
	switch in.Op.axis() {
	case axChild:
		for _, ch := range ctx.Children {
			if m.stepAccept(p, in, ch) && m.segAny(p, pc+1, ch, mode, lit) {
				return true
			}
		}
	case axDesc:
		return m.descAny(p, pc, in, ctx, mode, lit)
	case axFollowing:
		if par := ctx.Parent; par != nil {
			for i := childIndex(par, ctx) + 1; i < len(par.Children); i++ {
				ch := par.Children[i]
				if m.stepAccept(p, in, ch) && m.segAny(p, pc+1, ch, mode, lit) {
					return true
				}
			}
		}
	case axPreceding:
		if par := ctx.Parent; par != nil {
			for i := childIndex(par, ctx) - 1; i >= 0; i-- {
				ch := par.Children[i]
				if m.stepAccept(p, in, ch) && m.segAny(p, pc+1, ch, mode, lit) {
					return true
				}
			}
		}
	}
	return false
}

// descAny recurses over proper descendants for segAny's descendant steps.
func (m *Machine) descAny(p *Program, pc int, in *Instr, n *xmltree.Node, mode int, lit string) bool {
	for _, ch := range n.Children {
		if m.stepAccept(p, in, ch) && m.segAny(p, pc+1, ch, mode, lit) {
			return true
		}
		if m.descAny(p, pc, in, ch, mode, lit) {
			return true
		}
	}
	return false
}

// stepAccept applies the step's node test and (non-positional) predicate
// chain to a candidate.
func (m *Machine) stepAccept(p *Program, in *Instr, n *xmltree.Node) bool {
	if !p.match(in, n) {
		return false
	}
	if in.B >= 0 {
		return m.runChain(p, int(in.B), int(in.C>>predCountShift), n, 0, 0)
	}
	return true
}

// sortDedup sorts nodes into document order by their cached Dewey keys and
// compacts duplicates, returning the (possibly shortened) slice. The
// common already-sorted case is detected in one pass and skips the sort.
func sortDedup(ns []*xmltree.Node) []*xmltree.Node {
	if len(ns) < 2 {
		return ns
	}
	sorted := true
	for i := 1; i < len(ns); i++ {
		if ns[i-1].ID.Key() > ns[i].ID.Key() {
			sorted = false
			break
		}
	}
	if !sorted {
		sortNodes(ns)
	}
	out := ns[:1]
	for _, n := range ns[1:] {
		if n != out[len(out)-1] {
			out = append(out, n)
		}
	}
	return out
}

// sortNodes is an allocation-free quicksort (insertion sort below a small
// threshold) over the cached Dewey keys; sort.Slice would cost two
// allocations per call for the closure and interface header.
func sortNodes(ns []*xmltree.Node) {
	for len(ns) > 12 {
		// Median-of-three pivot, moved to position 0.
		mid, last := len(ns)/2, len(ns)-1
		if ns[mid].ID.Key() < ns[0].ID.Key() {
			ns[0], ns[mid] = ns[mid], ns[0]
		}
		if ns[last].ID.Key() < ns[0].ID.Key() {
			ns[0], ns[last] = ns[last], ns[0]
		}
		if ns[mid].ID.Key() < ns[last].ID.Key() {
			ns[mid], ns[last] = ns[last], ns[mid]
		}
		pivot := ns[last].ID.Key()
		i := 0
		for j := 0; j < last; j++ {
			if ns[j].ID.Key() < pivot {
				ns[i], ns[j] = ns[j], ns[i]
				i++
			}
		}
		ns[i], ns[last] = ns[last], ns[i]
		// Recurse on the smaller half; loop on the larger.
		if i < len(ns)-i-1 {
			sortNodes(ns[:i])
			ns = ns[i+1:]
		} else {
			sortNodes(ns[i+1:])
			ns = ns[:i]
		}
	}
	for i := 1; i < len(ns); i++ {
		for j := i; j > 0 && ns[j].ID.Key() < ns[j-1].ID.Key(); j-- {
			ns[j], ns[j-1] = ns[j-1], ns[j]
		}
	}
}
