package qvm

import (
	"container/list"
	"sync"
)

// Cache is a thread-safe LRU of compiled programs keyed by query string.
// Programs are immutable and snapshots are immutable, so cached programs
// never need invalidation: a hit is always safe to run, against any epoch.
// Keying by the raw query string means a hit also skips the parse.
type Cache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type cacheEntry struct {
	key  string
	prog *Program
}

// NewCache creates an LRU cache holding up to capacity programs
// (a capacity below 1 is raised to 1).
func NewCache(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{cap: capacity, ll: list.New(), items: map[string]*list.Element{}}
}

// Get returns the cached program for the query, marking it most recently
// used.
func (c *Cache) Get(query string) (*Program, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[query]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).prog, true
}

// Add inserts a program, evicting the least recently used entry when full.
// It reports whether an eviction happened.
func (c *Cache) Add(query string, prog *Program) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[query]; ok {
		el.Value.(*cacheEntry).prog = prog
		c.ll.MoveToFront(el)
		return false
	}
	c.items[query] = c.ll.PushFront(&cacheEntry{key: query, prog: prog})
	if c.ll.Len() <= c.cap {
		return false
	}
	oldest := c.ll.Back()
	c.ll.Remove(oldest)
	delete(c.items, oldest.Value.(*cacheEntry).key)
	return true
}

// Len returns the number of cached programs.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
