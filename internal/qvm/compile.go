package qvm

import (
	"fmt"

	"xivm/internal/xpath"
)

// Compile compiles an absolute XPath into a program evaluated from the
// virtual document node (the anchoring Parse guarantees for absolute
// paths).
func Compile(p xpath.Path) (*Program, error) {
	return compilePath(p, true)
}

// CompileString parses and compiles an absolute XPath expression.
func CompileString(s string) (*Program, error) {
	p, err := xpath.Parse(s)
	if err != nil {
		return nil, err
	}
	prog, err := Compile(p)
	if err != nil {
		return nil, err
	}
	prog.Source = s
	return prog, nil
}

// CompileRelative compiles a relative path evaluated from a context node.
func CompileRelative(p xpath.Path) (*Program, error) {
	return compilePath(p, false)
}

func compilePath(p xpath.Path, fromDoc bool) (*Program, error) {
	if len(p.Steps) == 0 {
		return nil, fmt.Errorf("qvm: cannot compile an empty path")
	}
	c := &compiler{
		prog:    &Program{FromDoc: fromDoc, Source: p.String()},
		nameIdx: map[string]int32{},
		litIdx:  map[string]int32{},
	}
	if _, err := c.segment(p.Steps); err != nil {
		return nil, err
	}
	return c.prog, nil
}

type compiler struct {
	prog    *Program
	nameIdx map[string]int32
	litIdx  map[string]int32
}

func (c *compiler) name(s string) int32 {
	if i, ok := c.nameIdx[s]; ok {
		return i
	}
	i := int32(len(c.prog.Names))
	c.prog.Names = append(c.prog.Names, s)
	c.nameIdx[s] = i
	return i
}

func (c *compiler) lit(s string) int32 {
	if i, ok := c.litIdx[s]; ok {
		return i
	}
	i := int32(len(c.prog.Lits))
	c.prog.Lits = append(c.prog.Lits, s)
	c.litIdx[s] = i
	return i
}

func (c *compiler) emit(in Instr) int32 {
	c.prog.Instrs = append(c.prog.Instrs, in)
	return int32(len(c.prog.Instrs) - 1)
}

// segment emits the step sequence followed by opEnd, then the predicate
// chains (and their sub-path segments) the steps reference, patching the
// step instructions. Returns the segment's entry pc.
func (c *compiler) segment(steps []xpath.Step) (int32, error) {
	start := int32(len(c.prog.Instrs))
	type pendingStep struct {
		at    int32
		preds []xpath.Expr
	}
	var pending []pendingStep
	for _, st := range steps {
		in := Instr{A: -1, B: -1}
		var axis int
		switch st.Axis {
		case xpath.Child:
			axis = axChild
		case xpath.Descendant:
			axis = axDesc
		case xpath.FollowingSibling:
			axis = axFollowing
		case xpath.PrecedingSibling:
			axis = axPreceding
		default:
			return 0, fmt.Errorf("qvm: unsupported axis %d", st.Axis)
		}
		switch st.Kind {
		case xpath.TestName:
			in.Op = stepOp(axis, tsName)
			in.A = c.name(st.Name)
		case xpath.TestWildcard:
			in.Op = stepOp(axis, tsWild)
		case xpath.TestAttr:
			// Attribute labels are stored with their "@" prefix so the VM
			// compares labels without concatenating at match time.
			in.Op = stepOp(axis, tsAttr)
			in.A = c.name("@" + st.Name)
		case xpath.TestText:
			in.Op = stepOp(axis, tsText)
		default:
			return 0, fmt.Errorf("qvm: unsupported node test %d", st.Kind)
		}
		at := c.emit(in)
		if len(st.Preds) > 0 {
			pending = append(pending, pendingStep{at: at, preds: st.Preds})
		}
	}
	c.emit(Instr{Op: opEnd, A: -1, B: -1})
	for _, ps := range pending {
		chain, err := c.predChain(ps.preds)
		if err != nil {
			return 0, err
		}
		flags := int32(len(ps.preds)) << predCountShift
		for _, e := range ps.preds {
			if hasPositional(e) {
				flags |= stepGrouped
				break
			}
		}
		c.prog.Instrs[ps.at].B = chain
		c.prog.Instrs[ps.at].C = flags
	}
	return start, nil
}

// predChain emits one pRet-terminated block per predicate, consecutively,
// then the relative sub-path segments the blocks reference. Returns the pc
// of the first block.
func (c *compiler) predChain(preds []xpath.Expr) (int32, error) {
	start := int32(len(c.prog.Instrs))
	type subPatch struct {
		at   int32
		path xpath.Path
	}
	var subs []subPatch
	var compile func(e xpath.Expr) error
	compile = func(e xpath.Expr) error {
		switch x := e.(type) {
		case xpath.OrExpr:
			if err := compile(x.Left); err != nil {
				return err
			}
			j := c.emit(Instr{Op: pJumpT, A: -1, B: -1})
			if err := compile(x.Right); err != nil {
				return err
			}
			c.prog.Instrs[j].A = int32(len(c.prog.Instrs))
		case xpath.AndExpr:
			if err := compile(x.Left); err != nil {
				return err
			}
			j := c.emit(Instr{Op: pJumpF, A: -1, B: -1})
			if err := compile(x.Right); err != nil {
				return err
			}
			c.prog.Instrs[j].A = int32(len(c.prog.Instrs))
		case xpath.ExistsExpr:
			at := c.emit(Instr{Op: pExists, A: -1, B: -1, C: simpleBit(x.Path)})
			subs = append(subs, subPatch{at: at, path: x.Path})
		case xpath.EqExpr:
			at := c.emit(Instr{Op: pEq, A: -1, B: c.lit(x.Lit), C: simpleBit(x.Path)})
			subs = append(subs, subPatch{at: at, path: x.Path})
		case xpath.ContainsExpr:
			op := pContains
			if x.Prefix {
				op = pStarts
			}
			at := c.emit(Instr{Op: op, A: -1, B: c.lit(x.Lit), C: simpleBit(x.Path)})
			subs = append(subs, subPatch{at: at, path: x.Path})
		case xpath.CountExpr:
			at := c.emit(Instr{Op: pCount, A: -1, B: int32(x.N), C: int32(x.Op)})
			subs = append(subs, subPatch{at: at, path: x.Path})
		case xpath.PosExpr:
			c.emit(Instr{Op: pPos, A: int32(x.N), B: -1})
		case xpath.LastExpr:
			c.emit(Instr{Op: pLast, A: -1, B: -1})
		default:
			return fmt.Errorf("qvm: unsupported predicate expression %T", e)
		}
		return nil
	}
	for _, e := range preds {
		if err := compile(e); err != nil {
			return 0, err
		}
		c.emit(Instr{Op: pRet, A: -1, B: -1})
	}
	for _, sp := range subs {
		pc, err := c.segment(sp.path.Steps)
		if err != nil {
			return 0, err
		}
		c.prog.Instrs[sp.at].A = pc
	}
	return start, nil
}

// hasPositional reports whether the expression contains a positional test
// anywhere — such predicates must be evaluated against per-context match
// groups rather than the batched deduplicated node set.
func hasPositional(e xpath.Expr) bool {
	switch x := e.(type) {
	case xpath.OrExpr:
		return hasPositional(x.Left) || hasPositional(x.Right)
	case xpath.AndExpr:
		return hasPositional(x.Left) || hasPositional(x.Right)
	case xpath.PosExpr, xpath.LastExpr:
		return true
	}
	return false
}

// simpleBit returns 1 when every step of the relative path is free of
// positional predicates, making the sub-path eligible for the early-exit
// existence walk (stop at the first witness instead of materializing the
// full result set).
func simpleBit(p xpath.Path) int32 {
	for _, st := range p.Steps {
		for _, e := range st.Preds {
			if hasPositional(e) {
				return 0
			}
		}
		// Nested sub-paths inside this step's predicates are evaluated
		// recursively by the VM and may themselves be non-simple; the bit
		// only gates the outer walk, so that is fine.
	}
	return 1
}
