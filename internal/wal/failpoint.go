package wal

import (
	"errors"
	"io/fs"
)

// ErrCrash is what every FailFS operation returns once the injected crash
// has fired — the filesystem is "dead" for the rest of the process's life,
// like the page cache of a machine that lost power.
var ErrCrash = errors.New("wal: injected crash")

// FailFS wraps an FS, counts its mutating operations, and crashes at a
// chosen one: the crash-matrix tests first probe a run to learn its
// operation count, then re-run it once per index with CrashAt set,
// recovering from the leftover directory each time. A crash firing inside a
// Write optionally lands a torn prefix of the buffer first — the torn-tail
// case the frame checksums exist for.
//
// Only operations that reach the disk mutate the count; reads are free but
// fail after the crash like everything else.
type FailFS struct {
	// CrashAt fires the crash at the CrashAt-th mutating operation
	// (0-based). Negative never crashes (probe mode).
	CrashAt int
	// TornBytes is how many bytes of a Write land when the crash fires
	// inside it. Negative writes half the buffer.
	TornBytes int

	inner   FS
	ops     int
	crashed bool
}

// NewFailFS wraps inner in probe mode (never crashes).
func NewFailFS(inner FS) *FailFS {
	return &FailFS{CrashAt: -1, TornBytes: -1, inner: inner}
}

// Ops returns how many mutating operations have run.
func (f *FailFS) Ops() int { return f.ops }

// Crashed reports whether the injected crash has fired.
func (f *FailFS) Crashed() bool { return f.crashed }

// step accounts one mutating operation and decides whether to crash now.
func (f *FailFS) step() error {
	if f.crashed {
		return ErrCrash
	}
	at := f.ops
	f.ops++
	if f.CrashAt >= 0 && at >= f.CrashAt {
		f.crashed = true
		return ErrCrash
	}
	return nil
}

func (f *FailFS) alive() error {
	if f.crashed {
		return ErrCrash
	}
	return nil
}

func (f *FailFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	if err := f.step(); err != nil {
		return nil, err
	}
	file, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &failFile{fs: f, inner: file}, nil
}

func (f *FailFS) ReadFile(name string) ([]byte, error) {
	if err := f.alive(); err != nil {
		return nil, err
	}
	return f.inner.ReadFile(name)
}

func (f *FailFS) ReadDir(name string) ([]fs.DirEntry, error) {
	if err := f.alive(); err != nil {
		return nil, err
	}
	return f.inner.ReadDir(name)
}

func (f *FailFS) MkdirAll(name string, perm fs.FileMode) error {
	if err := f.step(); err != nil {
		return err
	}
	return f.inner.MkdirAll(name, perm)
}

func (f *FailFS) Rename(oldpath, newpath string) error {
	if err := f.step(); err != nil {
		return err
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FailFS) Remove(name string) error {
	if err := f.step(); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

func (f *FailFS) RemoveAll(name string) error {
	if err := f.step(); err != nil {
		return err
	}
	return f.inner.RemoveAll(name)
}

func (f *FailFS) Truncate(name string, size int64) error {
	if err := f.step(); err != nil {
		return err
	}
	return f.inner.Truncate(name, size)
}

func (f *FailFS) SyncDir(name string) error {
	if err := f.step(); err != nil {
		return err
	}
	return f.inner.SyncDir(name)
}

type failFile struct {
	fs    *FailFS
	inner File
}

// Write is where torn writes come from: if the crash fires on this
// operation, a prefix of p still reaches the file — what a sector-sized
// power cut does to an in-flight append.
func (w *failFile) Write(p []byte) (int, error) {
	wasCrashed := w.fs.crashed
	if err := w.fs.step(); err != nil {
		if !wasCrashed && len(p) > 0 {
			// The crash fired on THIS write (not a pre-crashed fs): land the
			// torn prefix.
			torn := w.fs.TornBytes
			if torn < 0 {
				torn = len(p) / 2
			}
			if torn > len(p) {
				torn = len(p)
			}
			if torn > 0 {
				w.inner.Write(p[:torn])
			}
		}
		return 0, err
	}
	return w.inner.Write(p)
}

func (w *failFile) Sync() error {
	if err := w.fs.step(); err != nil {
		return err
	}
	return w.inner.Sync()
}

// Close never counts as a mutating step (closing loses nothing), but a
// dead filesystem still refuses it.
func (w *failFile) Close() error {
	if err := w.fs.alive(); err != nil {
		// Close the real handle anyway so tests don't leak descriptors.
		w.inner.Close()
		return err
	}
	return w.inner.Close()
}
