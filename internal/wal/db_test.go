package wal

import (
	"io"
	"os"
	"path/filepath"
	"testing"

	"xivm/internal/algebra"
	"xivm/internal/obs"
	"xivm/internal/update"
	"xivm/internal/xmark"
)

// mustStatement parses a statement in the update grammar.
func mustStatement(t *testing.T, src string) *update.Statement {
	t.Helper()
	st, err := update.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return st
}

// testStatements exercises inserts, deletes and a replace against the
// small XMark document.
var testStatements = []string{
	`for $x in /site/people/person insert <phone>+33 555 0199</phone>`,
	`insert <person id="personX"><name>Nova Quinn</name></person> into /site/people`,
	`delete /site/people/person/phone`,
	`replace /site/people/person/name with <name>Replaced Name</name>`,
	`for $x in /site/open_auctions/open_auction insert <bidder><date>01/01/2011</date><increase>4.50</increase></bidder>`,
	`delete /site/closed_auctions/closed_auction`,
}

// checkViews asserts every managed view matches a fresh evaluation of its
// pattern over the recovered document — the difftest oracle.
func checkViews(t *testing.T, db *DB) {
	t.Helper()
	if len(db.Engine().Views) == 0 {
		t.Fatal("no views recovered")
	}
	for _, mv := range db.Engine().Views {
		want := algebra.Materialize(db.Engine().Doc, mv.Pattern)
		if !mv.View.EqualRows(want) {
			t.Fatalf("view %s diverges from fresh evaluation after recovery", mv.Name)
		}
	}
}

func applyAll(t *testing.T, db *DB, stmts []string) {
	t.Helper()
	for _, src := range stmts {
		if _, err := db.Apply(mustStatement(t, src)); err != nil {
			t.Fatalf("apply %q: %v", src, err)
		}
	}
}

func TestDBCreateApplyReopen(t *testing.T) {
	dir := t.TempDir()
	doc := xmark.GenerateSmall(1)
	db, err := Create(dir, []byte(doc), Options{Metrics: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"Q1", "Q2"} {
		if _, err := db.AddView(name, xmark.View(name).String()); err != nil {
			t.Fatalf("add view %s: %v", name, err)
		}
	}
	applyAll(t, db, testStatements)
	wantDoc := db.Engine().Doc.String()
	wantLSN := db.LastLSN()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir, Options{Metrics: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Engine().Doc.String(); got != wantDoc {
		t.Fatal("recovered document differs from the pre-close document")
	}
	checkViews(t, re)
	st := re.Stats()
	// 2 view records + every statement were replayed from LSN 1.
	if st.CheckpointLSN != 0 || st.Replayed != len(testStatements)+2 || st.Skipped != 0 {
		t.Fatalf("stats %+v", st)
	}
	if re.LastLSN() != wantLSN {
		t.Fatalf("LastLSN %d want %d", re.LastLSN(), wantLSN)
	}
	// The recovered DB accepts further journaled statements.
	if _, err := re.Apply(mustStatement(t, `delete /site/catgraph`)); err != nil {
		t.Fatal(err)
	}
}

func TestDBCheckpointTruncatesLog(t *testing.T) {
	dir := t.TempDir()
	reg := obs.New()
	db, err := Create(dir, []byte(xmark.GenerateSmall(2)), Options{Metrics: reg, KeepCheckpoints: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.AddView("Q1", xmark.View("Q1").String()); err != nil {
		t.Fatal(err)
	}
	applyAll(t, db, testStatements)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// With KeepCheckpoints=1 the horizon is the checkpoint just written:
	// every pre-checkpoint segment is removable.
	segs, err := os.ReadDir(filepath.Join(dir, "wal"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 0 {
		t.Fatalf("%d segments survive a full truncation", len(segs))
	}
	if reg.Counter("wal.checkpoint.count").Value() == 0 {
		t.Fatal("wal.checkpoint.count not counted")
	}
	applyAll(t, db, []string{`delete /site/catgraph`})
	wantDoc := db.Engine().Doc.String()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir, Options{Metrics: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	st := re.Stats()
	if st.CheckpointLSN == 0 {
		t.Fatal("recovery did not start from the checkpoint")
	}
	if st.Replayed != 1 { // only the post-checkpoint delete
		t.Fatalf("replayed %d records, want 1", st.Replayed)
	}
	if got := re.Engine().Doc.String(); got != wantDoc {
		t.Fatal("recovered document differs")
	}
	checkViews(t, re)
}

func TestDBAutoCheckpoint(t *testing.T) {
	dir := t.TempDir()
	db, err := Create(dir, []byte(xmark.GenerateSmall(3)), Options{Metrics: obs.New(), CheckpointEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	applyAll(t, db, testStatements)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	lsns, err := listCheckpoints(OSFS, dir)
	if err != nil {
		t.Fatal(err)
	}
	// 6 statements at 3 per checkpoint: at least one auto checkpoint beyond
	// the initial LSN-0 one.
	if len(lsns) < 2 || lsns[len(lsns)-1] == 0 {
		t.Fatalf("auto checkpoints missing: %v", lsns)
	}
	re, err := Open(dir, Options{Metrics: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	re.Close()
	if re.Stats().CheckpointLSN == 0 {
		t.Fatal("recovery ignored the auto checkpoint")
	}
}

// TestDBSkipsRejectedStatement: a statement that journals and is then
// rejected by the engine (deleting the document root is refused) must be
// skipped — not fatal — during replay.
func TestDBSkipsRejectedStatement(t *testing.T) {
	dir := t.TempDir()
	db, err := Create(dir, []byte(xmark.GenerateSmall(4)), Options{Metrics: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Apply(mustStatement(t, `delete /site`)); err == nil {
		t.Fatal("root delete accepted")
	}
	applyAll(t, db, []string{`delete /site/catgraph`})
	wantDoc := db.Engine().Doc.String()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	reg := obs.New()
	re, err := Open(dir, Options{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	st := re.Stats()
	if st.Skipped != 1 || st.Replayed != 1 {
		t.Fatalf("stats %+v", st)
	}
	if reg.Counter("wal.recover.skipped").Value() != 1 {
		t.Fatal("wal.recover.skipped not counted")
	}
	if re.Engine().Doc.String() != wantDoc {
		t.Fatal("recovered document differs")
	}
}

// copyDir clones a database directory so one on-disk state can be recovered
// twice with different options.
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(src, path)
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		in, err := os.Open(path)
		if err != nil {
			return err
		}
		defer in.Close()
		out, err := os.Create(target)
		if err != nil {
			return err
		}
		if _, err := io.Copy(out, in); err != nil {
			out.Close()
			return err
		}
		return out.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDBCompactedReplayMatchesEager: a tail of insertions under a subtree
// that is later deleted wholesale is where compaction wins (O3 kills the
// insert operations). Both replay paths must land on identical state.
func TestDBCompactedReplayMatchesEager(t *testing.T) {
	dir := t.TempDir()
	db, err := Create(dir, []byte(xmark.GenerateSmall(5)), Options{Metrics: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.AddView("Q1", xmark.View("Q1").String()); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil { // tail after here is statements only
		t.Fatal(err)
	}
	applyAll(t, db, []string{
		`for $x in /site/people/person insert <phone>+33 555 0199</phone>`,
		`for $x in /site/people/person insert <homepage>http://example.net/~new</homepage>`,
		`insert <person id="personX"><name>Nova Quinn</name></person> into /site/people`,
		`delete /site/people`, // kills every insertion above
		`delete /site/catgraph`,
	})
	wantDoc := db.Engine().Doc.String()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	dir2 := t.TempDir()
	copyDir(t, dir, dir2)

	reg := obs.New()
	compacted, err := Open(dir, Options{Compact: true, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer compacted.Close()
	eager, err := Open(dir2, Options{Metrics: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	defer eager.Close()

	cs := compacted.Stats()
	if !cs.Compacted || cs.CompactedOps == 0 {
		t.Fatalf("compaction did not engage: %+v", cs)
	}
	if reg.Counter("wal.recover.compacted").Value() != int64(cs.CompactedOps) {
		t.Fatal("wal.recover.compacted disagrees with stats")
	}
	if compacted.Engine().Doc.String() != wantDoc || eager.Engine().Doc.String() != wantDoc {
		t.Fatal("recovered documents differ from the pre-close document")
	}
	checkViews(t, compacted)
	checkViews(t, eager)
}

// TestDBCompactionFallsBackOnViewRecord: a view registration in the tail
// makes compaction unprovable; recovery must silently use the eager path.
func TestDBCompactionFallsBackOnViewRecord(t *testing.T) {
	dir := t.TempDir()
	db, err := Create(dir, []byte(xmark.GenerateSmall(6)), Options{Metrics: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	applyAll(t, db, []string{`for $x in /site/people/person insert <phone>+33 555 0100</phone>`})
	if _, err := db.AddView("Q1", xmark.View("Q1").String()); err != nil {
		t.Fatal(err)
	}
	applyAll(t, db, []string{`delete /site/people`})
	wantDoc := db.Engine().Doc.String()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir, Options{Compact: true, Metrics: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Stats().Compacted {
		t.Fatal("compaction claims a tail containing a view record")
	}
	if re.Engine().Doc.String() != wantDoc {
		t.Fatal("recovered document differs")
	}
	checkViews(t, re)
}

// TestOpenFallsBackToOlderCheckpoint: a corrupted newest checkpoint must be
// skipped, and the log retains enough records for the older fallback to
// reach the tip.
func TestOpenFallsBackToOlderCheckpoint(t *testing.T) {
	dir := t.TempDir()
	db, err := Create(dir, []byte(xmark.GenerateSmall(7)), Options{Metrics: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.AddView("Q1", xmark.View("Q1").String()); err != nil {
		t.Fatal(err)
	}
	applyAll(t, db, testStatements[:3])
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	applyAll(t, db, testStatements[3:])
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	applyAll(t, db, []string{`delete /site/catgraph`})
	wantDoc := db.Engine().Doc.String()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	lsns, err := listCheckpoints(OSFS, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(lsns) != 2 {
		t.Fatalf("checkpoints %v, want 2", lsns)
	}
	// Corrupt the newest checkpoint's document so its hash check fails.
	docPath := filepath.Join(dir, ckptName(lsns[1]), "doc.xml")
	data, err := os.ReadFile(docPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(docPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	reg := obs.New()
	re, err := Open(dir, Options{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	st := re.Stats()
	if st.BadCheckpoints != 1 {
		t.Fatalf("BadCheckpoints %d", st.BadCheckpoints)
	}
	if st.CheckpointLSN != lsns[0] {
		t.Fatalf("recovered from LSN %d, want fallback %d", st.CheckpointLSN, lsns[0])
	}
	if reg.Counter("wal.recover.badcheckpoints").Value() != 1 {
		t.Fatal("wal.recover.badcheckpoints not counted")
	}
	if re.Engine().Doc.String() != wantDoc {
		t.Fatal("fallback recovery missed acknowledged statements")
	}
	checkViews(t, re)
}

func TestCreateRefusesExistingDatabase(t *testing.T) {
	dir := t.TempDir()
	db, err := Create(dir, []byte(xmark.GenerateSmall(8)), Options{Metrics: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	db.Close()
	if _, err := Create(dir, []byte(xmark.GenerateSmall(8)), Options{Metrics: obs.New()}); err == nil {
		t.Fatal("Create over an existing database succeeded")
	}
	// OpenOrCreate takes the Open path instead.
	re, err := OpenOrCreate(dir, []byte(xmark.GenerateSmall(8)), Options{Metrics: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	re.Close()
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open(t.TempDir(), Options{Metrics: obs.New()}); err == nil {
		t.Fatal("Open of an empty directory succeeded")
	}
}

func TestAddViewValidation(t *testing.T) {
	dir := t.TempDir()
	db, err := Create(dir, []byte(xmark.GenerateSmall(9)), Options{Metrics: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.AddView("bad/name", xmark.View("Q1").String()); err == nil {
		t.Fatal("path separator in view name accepted")
	}
	if _, err := db.AddView("nostore", `//person//name`); err == nil {
		t.Fatal("storeless pattern accepted")
	}
	if _, err := db.AddView("Q1", xmark.View("Q1").String()); err != nil {
		t.Fatal(err)
	}
	if _, err := db.AddView("Q1", xmark.View("Q1").String()); err == nil {
		t.Fatal("duplicate view accepted")
	}
}
