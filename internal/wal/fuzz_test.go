package wal

import (
	"encoding/binary"
	"hash/crc32"
	"testing"
)

// buildFrames encodes payloads as a valid frame sequence starting at LSN
// first — the same layout Log.append produces.
func buildFrames(first uint64, payloads ...[]byte) []byte {
	var out []byte
	lsn := first
	for _, p := range payloads {
		frame := make([]byte, frameHeader+len(p))
		binary.LittleEndian.PutUint32(frame[0:4], uint32(len(p)))
		binary.LittleEndian.PutUint64(frame[8:16], lsn)
		copy(frame[frameHeader:], p)
		binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(frame[8:], castagnoli))
		out = append(out, frame...)
		lsn++
	}
	return out
}

// FuzzFrameScan holds scanFrames to its contract on arbitrary bytes: the
// valid prefix it reports must itself scan identically (idempotence), every
// frame inside it must verify, and the scan must never read past the data
// or panic. Torn-tail truncation is built on exactly these properties.
func FuzzFrameScan(f *testing.F) {
	f.Add([]byte{}, uint64(1))
	f.Add(buildFrames(1, []byte("sdelete /site/people")), uint64(1))
	f.Add(buildFrames(7, []byte("a"), []byte(""), []byte("bb")), uint64(7))
	// Seeds for the failure paths: wrong start LSN, truncated tail, bad CRC.
	f.Add(buildFrames(3, []byte("x")), uint64(1))
	f.Add(buildFrames(1, []byte("x"), []byte("y"))[:frameHeader+3], uint64(1))
	bad := buildFrames(1, []byte("corrupt-me"))
	bad[frameHeader] ^= 0xFF
	f.Add(bad, uint64(1))
	huge := make([]byte, frameHeader)
	binary.LittleEndian.PutUint32(huge[0:4], uint32(maxPayload+1))
	f.Add(huge, uint64(1))

	f.Fuzz(func(t *testing.T, data []byte, first uint64) {
		valid, count := scanFrames(data, first)
		if valid < 0 || valid > int64(len(data)) {
			t.Fatalf("valid %d out of range [0,%d]", valid, len(data))
		}
		v2, c2 := scanFrames(data[:valid], first)
		if v2 != valid || c2 != count {
			t.Fatalf("rescan of valid prefix: (%d,%d) != (%d,%d)", v2, c2, valid, count)
		}
		// Walk the accepted prefix: frames must be well formed, contiguous
		// from first, and exactly fill it.
		pos, lsn := int64(0), first
		for n := uint64(0); n < count; n++ {
			rest := data[pos:valid]
			if len(rest) < frameHeader {
				t.Fatalf("frame %d: header past valid prefix", n)
			}
			length := int64(binary.LittleEndian.Uint32(rest[0:4]))
			if length > maxPayload || frameHeader+length > int64(len(rest)) {
				t.Fatalf("frame %d: length %d overruns valid prefix", n, length)
			}
			if got := binary.LittleEndian.Uint64(rest[8:16]); got != lsn {
				t.Fatalf("frame %d: lsn %d want %d", n, got, lsn)
			}
			sum := binary.LittleEndian.Uint32(rest[4:8])
			if crc32.Checksum(rest[8:frameHeader+length], castagnoli) != sum {
				t.Fatalf("frame %d: checksum accepted but does not verify", n)
			}
			pos += frameHeader + length
			lsn++
		}
		if pos != valid {
			t.Fatalf("frames cover %d bytes but %d were accepted", pos, valid)
		}
	})
}

// FuzzFrameRoundTrip: any payload split encoded with the real framing must
// scan back completely, with one frame per payload.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add([]byte("sdelete /site"), []byte("vQ1\x00//person{ID}"), uint64(1))
	f.Add([]byte{}, []byte{0xff, 0x00}, uint64(1<<40))
	f.Fuzz(func(t *testing.T, a, b []byte, first uint64) {
		if first == 0 || first > 1<<62 {
			first = 1
		}
		data := buildFrames(first, a, b)
		valid, count := scanFrames(data, first)
		if valid != int64(len(data)) || count != 2 {
			t.Fatalf("round trip: valid %d/%d, count %d", valid, len(data), count)
		}
		// A flipped byte anywhere must cut the scan at or before the frame
		// containing it — never extend it.
		if len(data) > 0 {
			mut := append([]byte(nil), data...)
			mut[int(first)%len(mut)] ^= 0x01
			v, c := scanFrames(mut, first)
			if v > valid || c > count {
				t.Fatalf("corruption extended the scan: (%d,%d) > (%d,%d)", v, c, valid, count)
			}
		}
	})
}
