package wal

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestValidTenantName(t *testing.T) {
	for _, ok := range []string{"a", "alpha", "Tenant-1", "t_0", strings.Repeat("x", 64)} {
		if err := ValidTenantName(ok); err != nil {
			t.Errorf("ValidTenantName(%q) = %v, want nil", ok, err)
		}
	}
	for _, bad := range []string{"", ".hidden", ".drop-x", "a/b", "a b", "ü", "a.b", strings.Repeat("x", 65)} {
		if err := ValidTenantName(bad); err == nil {
			t.Errorf("ValidTenantName(%q) = nil, want error", bad)
		}
	}
}

const tenantTestDoc = `<site><people><person id="p1"><name>Ada</name></person></people></site>`

// mkTenant creates a real tenant under root through the normal Create path.
func mkTenant(t *testing.T, root, name string) {
	t.Helper()
	db, err := Create(TenantDir(root, name), []byte(tenantTestDoc), Options{})
	if err != nil {
		t.Fatalf("create tenant %s: %v", name, err)
	}
	if _, err := db.AddView("V", "/site{ID}/people{ID}/person{ID}"); err != nil {
		t.Fatalf("tenant %s add view: %v", name, err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("close tenant %s: %v", name, err)
	}
}

func TestScanTenantRootCleansDebris(t *testing.T) {
	root := t.TempDir()
	mkTenant(t, root, "alpha")
	// A drop interrupted between rename and delete.
	if err := os.MkdirAll(filepath.Join(root, ".drop-gone", "wal"), 0o755); err != nil {
		t.Fatal(err)
	}
	// A create killed before its initial checkpoint was published.
	if err := os.MkdirAll(filepath.Join(root, "partial", "wal"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "partial", "wal", "000001.log"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A foreign directory whose name no tenant can have: not ours to touch.
	if err := os.MkdirAll(filepath.Join(root, "not a tenant"), 0o755); err != nil {
		t.Fatal(err)
	}
	// A stray file at the root: ignored.
	if err := os.WriteFile(filepath.Join(root, "README"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}

	tenants, removed, err := ScanTenantRoot(nil, root)
	if err != nil {
		t.Fatal(err)
	}
	if len(tenants) != 1 || tenants[0] != "alpha" {
		t.Fatalf("tenants = %v, want [alpha]", tenants)
	}
	if len(removed) != 2 {
		t.Fatalf("removed = %v, want the tombstone and the partial create", removed)
	}
	for _, gone := range []string{".drop-gone", "partial"} {
		if _, err := os.Stat(filepath.Join(root, gone)); !os.IsNotExist(err) {
			t.Fatalf("%s survived the scan (err=%v)", gone, err)
		}
	}
	for _, kept := range []string{"alpha", "not a tenant", "README"} {
		if _, err := os.Stat(filepath.Join(root, kept)); err != nil {
			t.Fatalf("%s did not survive the scan: %v", kept, err)
		}
	}
	// A second scan is a no-op.
	tenants, removed, err = ScanTenantRoot(nil, root)
	if err != nil || len(tenants) != 1 || len(removed) != 0 {
		t.Fatalf("rescan = (%v, %v, %v), want ([alpha], [], nil)", tenants, removed, err)
	}
}

func TestScanTenantRootRejectsLegacyLayout(t *testing.T) {
	root := t.TempDir()
	// A pre-multi-tenant database directly in the data dir.
	db, err := Create(root, []byte(tenantTestDoc), Options{})
	if err != nil {
		t.Fatal(err)
	}
	db.Close()
	if _, _, err := ScanTenantRoot(nil, root); err == nil {
		t.Fatal("scan of a flat single-database directory succeeded, want an error naming the migration")
	}
}

func TestDropTenant(t *testing.T) {
	root := t.TempDir()
	mkTenant(t, root, "alpha")
	mkTenant(t, root, "beta")
	if err := DropTenant(nil, root, "alpha"); err != nil {
		t.Fatal(err)
	}
	tenants, _, err := ScanTenantRoot(nil, root)
	if err != nil {
		t.Fatal(err)
	}
	if len(tenants) != 1 || tenants[0] != "beta" {
		t.Fatalf("tenants after drop = %v, want [beta]", tenants)
	}
	// Dropping a name that does not exist fails (nothing to rename) but
	// must not disturb the survivors.
	if err := DropTenant(nil, root, "alpha"); err == nil {
		t.Fatal("double drop succeeded")
	}
	if db, err := Open(TenantDir(root, "beta"), Options{}); err != nil {
		t.Fatalf("beta unopenable after sibling drop: %v", err)
	} else {
		db.Close()
	}
}

// createScript is the crash-matrix workload for tenant creation: scan the
// root, create the tenant, register a view, close. It reports whether the
// create was acknowledged (returned without error).
func createScript(root string, fsys FS) (acked bool, err error) {
	if _, _, err := ScanTenantRoot(fsys, root); err != nil {
		return false, err
	}
	db, err := Create(TenantDir(root, "t1"), []byte(tenantTestDoc), Options{FS: fsys})
	if err != nil {
		return false, err
	}
	// The tenant exists from here on: Create published its checkpoint.
	if _, err := db.AddView("V", "/site{ID}/people{ID}/person{ID}"); err != nil {
		db.Close()
		return true, err
	}
	return true, db.Close()
}

// TestCreateThenKillMatrix kills tenant creation at every filesystem
// operation and verifies the existence rule both ways: an acknowledged
// create must survive recovery, an unacknowledged one must leave either
// nothing (debris cleaned) or a fully openable tenant — never a half-made
// directory the next open trips over.
func TestCreateThenKillMatrix(t *testing.T) {
	probe := NewFailFS(OSFS)
	if acked, err := createScript(t.TempDir(), probe); err != nil || !acked {
		t.Fatalf("probe run: acked=%v err=%v", acked, err)
	}
	totalOps := probe.Ops()
	if totalOps < 5 {
		t.Fatalf("probe counted only %d ops", totalOps)
	}

	for at := 0; at < totalOps; at++ {
		root := t.TempDir()
		ffs := NewFailFS(OSFS)
		ffs.CrashAt = at
		acked, _ := createScript(root, ffs)

		// Recovery on the real filesystem, like a fresh process would.
		tenants, _, err := ScanTenantRoot(nil, root)
		if err != nil {
			t.Fatalf("crash at op %d: recovery scan: %v", at, err)
		}
		switch {
		case acked && (len(tenants) != 1 || tenants[0] != "t1"):
			t.Fatalf("crash at op %d: create was acked but recovery found %v", at, tenants)
		case len(tenants) > 1:
			t.Fatalf("crash at op %d: recovery found %v", at, tenants)
		}
		for _, name := range tenants {
			db, err := Open(TenantDir(root, name), Options{})
			if err != nil {
				t.Fatalf("crash at op %d: surviving tenant %s unopenable: %v", at, name, err)
			}
			if got := db.Engine().Doc.Size(); got == 0 {
				t.Fatalf("crash at op %d: surviving tenant %s recovered an empty document", at, name)
			}
			db.Close()
		}
	}
}

// TestDropThenKillMatrix kills DropTenant at every filesystem operation:
// after recovery the tenant is either still fully alive (crash before the
// tombstone rename, the point of no return) or completely gone — and no
// tombstone ever survives a recovery scan.
func TestDropThenKillMatrix(t *testing.T) {
	probe := NewFailFS(OSFS)
	{
		root := t.TempDir()
		mkTenant(t, root, "t1")
		if err := DropTenant(probe, root, "t1"); err != nil {
			t.Fatalf("probe drop: %v", err)
		}
	}
	totalOps := probe.Ops()
	if totalOps < 3 {
		t.Fatalf("probe counted only %d ops", totalOps)
	}

	for at := 0; at < totalOps; at++ {
		root := t.TempDir()
		mkTenant(t, root, "t1")
		mkTenant(t, root, "keep")
		ffs := NewFailFS(OSFS)
		ffs.CrashAt = at
		acked := DropTenant(ffs, root, "t1") == nil

		tenants, _, err := ScanTenantRoot(nil, root)
		if err != nil {
			t.Fatalf("crash at op %d: recovery scan: %v", at, err)
		}
		found := map[string]bool{}
		for _, name := range tenants {
			found[name] = true
		}
		if !found["keep"] {
			t.Fatalf("crash at op %d: unrelated tenant lost, recovery found %v", at, tenants)
		}
		if acked && found["t1"] {
			t.Fatalf("crash at op %d: drop was acked but t1 survived", at)
		}
		entries, err := os.ReadDir(root)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if strings.HasPrefix(e.Name(), ".drop-") {
				t.Fatalf("crash at op %d: tombstone %s survived recovery", at, e.Name())
			}
		}
		if found["t1"] {
			db, err := Open(TenantDir(root, "t1"), Options{})
			if err != nil {
				t.Fatalf("crash at op %d: surviving t1 unopenable: %v", at, err)
			}
			db.Close()
		}
	}
}
