package wal

import (
	"io"
	"io/fs"
	"os"
)

// FS is the narrow filesystem surface the durability layer writes through.
// Production code uses OSFS; the fault-injection harness (failpoint.go)
// substitutes an implementation that tears writes and crashes between
// operations, which is how the crash-matrix tests drive every recovery
// path without real power cuts.
type FS interface {
	// OpenFile opens name with os.OpenFile semantics.
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	ReadFile(name string) ([]byte, error)
	ReadDir(name string) ([]fs.DirEntry, error)
	MkdirAll(name string, perm fs.FileMode) error
	Rename(oldpath, newpath string) error
	Remove(name string) error
	RemoveAll(name string) error
	// Truncate cuts name to size bytes — the torn-tail rule's teeth.
	Truncate(name string, size int64) error
	// SyncDir fsyncs the directory itself, making renames and file
	// creations durable on POSIX filesystems.
	SyncDir(name string) error
}

// File is the writable handle FS hands out.
type File interface {
	io.Writer
	io.Closer
	Sync() error
}

// OSFS is the real filesystem.
var OSFS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (osFS) ReadDir(name string) ([]fs.DirEntry, error)   { return os.ReadDir(name) }
func (osFS) MkdirAll(name string, perm fs.FileMode) error { return os.MkdirAll(name, perm) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) RemoveAll(name string) error                  { return os.RemoveAll(name) }
func (osFS) Truncate(name string, size int64) error       { return os.Truncate(name, size) }

func (osFS) SyncDir(name string) error {
	d, err := os.Open(name)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
