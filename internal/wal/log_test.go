package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"xivm/internal/obs"
)

func collectRecords(t *testing.T, l *Log, from uint64) map[uint64]string {
	t.Helper()
	got := map[uint64]string{}
	if err := l.Replay(from, func(lsn uint64, payload []byte) error {
		got[lsn] = string(payload)
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return got
}

func TestLogAppendReopenReplay(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, LogOptions{Metrics: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		lsn, err := l.Append([]byte(fmt.Sprintf("rec-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i) {
			t.Fatalf("lsn %d want %d", lsn, i)
		}
	}
	if l.LastLSN() != 5 {
		t.Fatalf("LastLSN %d", l.LastLSN())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := OpenLog(dir, LogOptions{Metrics: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.LastLSN() != 5 || l2.Truncated() != 0 {
		t.Fatalf("LastLSN %d truncated %d", l2.LastLSN(), l2.Truncated())
	}
	got := collectRecords(t, l2, 1)
	if len(got) != 5 || got[3] != "rec-3" {
		t.Fatalf("replayed %v", got)
	}
	if got := collectRecords(t, l2, 4); len(got) != 2 || got[4] != "rec-4" {
		t.Fatalf("partial replay %v", got)
	}
	// Appends continue the sequence after reopen.
	if lsn, err := l2.Append([]byte("rec-6")); err != nil || lsn != 6 {
		t.Fatalf("append after reopen: lsn=%d err=%v", lsn, err)
	}
}

func TestLogRotationAndTruncate(t *testing.T) {
	dir := t.TempDir()
	reg := obs.New()
	l, err := OpenLog(dir, LogOptions{SegmentBytes: 64, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := l.Append([]byte("0123456789abcdef")); err != nil {
			t.Fatal(err)
		}
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) < 3 {
		t.Fatalf("expected several segments, got %d", len(entries))
	}
	// Records ≤ 10 become removable once their segments are fully behind
	// the horizon.
	if err := l.RotateAndTruncate(10); err != nil {
		t.Fatal(err)
	}
	got := collectRecords(t, l, 1)
	// Everything after the horizon must survive; some records ≤ 10 may
	// survive too (their segment straddles the horizon).
	for lsn := uint64(11); lsn <= 20; lsn++ {
		if _, ok := got[lsn]; !ok {
			t.Fatalf("record %d lost by truncation", lsn)
		}
	}
	after, _ := os.ReadDir(dir)
	if len(after) >= len(entries) {
		t.Fatalf("truncation removed nothing (%d -> %d segments)", len(entries), len(after))
	}
	// The next append starts a fresh segment and continues the sequence.
	if lsn, err := l.Append([]byte("next")); err != nil || lsn != 21 {
		t.Fatalf("append after truncate: lsn=%d err=%v", lsn, err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := OpenLog(dir, LogOptions{SegmentBytes: 64, Metrics: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.LastLSN() != 21 || l2.Truncated() != 0 {
		t.Fatalf("reopen after truncate: last=%d torn=%d", l2.LastLSN(), l2.Truncated())
	}
}

// lastSegment returns the path of the newest segment file.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var last string
	for _, e := range entries {
		if _, ok := parseSegName(e.Name()); ok {
			last = filepath.Join(dir, e.Name())
		}
	}
	if last == "" {
		t.Fatal("no segments")
	}
	return last
}

func buildLog(t *testing.T, dir string, n int) {
	t.Helper()
	l, err := OpenLog(dir, LogOptions{Metrics: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= n; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestLogTornTrailingGarbage(t *testing.T) {
	dir := t.TempDir()
	buildLog(t, dir, 3)
	seg := lastSegment(t, dir)
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	garbage := []byte{0xde, 0xad, 0xbe, 0xef, 0x01}
	f.Write(garbage)
	f.Close()

	reg := obs.New()
	l, err := OpenLog(dir, LogOptions{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.Truncated() != int64(len(garbage)) {
		t.Fatalf("truncated %d want %d", l.Truncated(), len(garbage))
	}
	if reg.Counter("wal.recover.truncated").Value() != int64(len(garbage)) {
		t.Fatal("wal.recover.truncated not counted")
	}
	if got := collectRecords(t, l, 1); len(got) != 3 {
		t.Fatalf("records after cut: %v", got)
	}
}

func TestLogTornPartialFrame(t *testing.T) {
	dir := t.TempDir()
	buildLog(t, dir, 3)
	seg := lastSegment(t, dir)
	data, _ := os.ReadFile(seg)
	// Cut into the last frame: its header survives but the payload is
	// short, so the length check rejects it.
	if err := os.WriteFile(seg, data[:len(data)-2], 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := OpenLog(dir, LogOptions{Metrics: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.Truncated() == 0 {
		t.Fatal("no truncation reported")
	}
	got := collectRecords(t, l, 1)
	if len(got) != 2 || got[2] != "rec-2" {
		t.Fatalf("records %v", got)
	}
	if l.LastLSN() != 2 {
		t.Fatalf("LastLSN %d", l.LastLSN())
	}
	// The sequence resumes at the cut: the torn record's LSN is reused.
	if lsn, err := l.Append([]byte("rec-3b")); err != nil || lsn != 3 {
		t.Fatalf("append after cut: lsn=%d err=%v", lsn, err)
	}
}

func TestLogTornMiddleDropsSuffix(t *testing.T) {
	dir := t.TempDir()
	buildLog(t, dir, 5)
	seg := lastSegment(t, dir)
	data, _ := os.ReadFile(seg)
	// Flip one payload byte of the second frame: its CRC fails, and
	// everything from there on — frames 2..5 — is the torn tail.
	frame1 := frameHeader + len("rec-1")
	data[frame1+frameHeader] ^= 0xFF
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := OpenLog(dir, LogOptions{Metrics: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	got := collectRecords(t, l, 1)
	if len(got) != 1 || got[1] != "rec-1" {
		t.Fatalf("records %v", got)
	}
	if l.Truncated() != int64(len(data)-frame1) {
		t.Fatalf("truncated %d want %d", l.Truncated(), len(data)-frame1)
	}
}

func TestLogTornSegmentDropsLaterSegments(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, LogOptions{SegmentBytes: 64, Metrics: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 12; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) < 3 {
		t.Fatalf("need ≥3 segments, got %d", len(entries))
	}
	// Corrupt the FIRST frame of the second segment: the whole second
	// segment and every later one must go.
	second := filepath.Join(dir, entries[1].Name())
	data, _ := os.ReadFile(second)
	data[frameHeader] ^= 0xFF
	os.WriteFile(second, data, 0o644)

	l2, err := OpenLog(dir, LogOptions{SegmentBytes: 64, Metrics: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	firstLSN, _ := parseSegName(entries[1].Name())
	if l2.LastLSN() != firstLSN-1 {
		t.Fatalf("LastLSN %d want %d", l2.LastLSN(), firstLSN-1)
	}
	if l2.Truncated() == 0 {
		t.Fatal("no truncation reported")
	}
	after, _ := os.ReadDir(dir)
	if len(after) != 1 {
		t.Fatalf("later segments not removed: %d left", len(after))
	}
}

func TestLogGapSegmentDropped(t *testing.T) {
	dir := t.TempDir()
	buildLog(t, dir, 2)
	// Fabricate a segment whose name does not continue the chain.
	bogus := filepath.Join(dir, segName(99))
	if err := os.WriteFile(bogus, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := OpenLog(dir, LogOptions{Metrics: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.LastLSN() != 2 {
		t.Fatalf("LastLSN %d", l.LastLSN())
	}
	if _, err := os.Stat(bogus); !os.IsNotExist(err) {
		t.Fatal("gap segment survived")
	}
}

func TestLogReset(t *testing.T) {
	dir := t.TempDir()
	buildLog(t, dir, 4)
	l, err := OpenLog(dir, LogOptions{Metrics: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Reset(100); err != nil {
		t.Fatal(err)
	}
	if l.LastLSN() != 99 {
		t.Fatalf("LastLSN %d", l.LastLSN())
	}
	if lsn, err := l.Append([]byte("fresh")); err != nil || lsn != 100 {
		t.Fatalf("append after reset: lsn=%d err=%v", lsn, err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := OpenLog(dir, LogOptions{Metrics: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got := collectRecords(t, l2, 1)
	if len(got) != 1 || got[100] != "fresh" {
		t.Fatalf("records %v", got)
	}
}

func TestSyncPolicies(t *testing.T) {
	for _, policy := range []SyncPolicy{SyncAlways, SyncInterval, SyncNever} {
		dir := t.TempDir()
		reg := obs.New()
		l, err := OpenLog(dir, LogOptions{Policy: policy, Metrics: reg})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			if _, err := l.Append([]byte("x")); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Sync(); err != nil {
			t.Fatal(err)
		}
		fsyncs := reg.Counter("wal.fsync.count").Value()
		switch policy {
		case SyncAlways:
			if fsyncs < 10 {
				t.Fatalf("always: %d fsyncs", fsyncs)
			}
		case SyncNever:
			if fsyncs != 1 { // only the explicit Sync
				t.Fatalf("never: %d fsyncs", fsyncs)
			}
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for _, c := range []struct {
		in   string
		want SyncPolicy
	}{{"always", SyncAlways}, {"interval", SyncInterval}, {"never", SyncNever}} {
		got, err := ParseSyncPolicy(c.in)
		if err != nil || got != c.want {
			t.Fatalf("%s: %v %v", c.in, got, err)
		}
		if got.String() != c.in {
			t.Fatalf("round trip %q -> %q", c.in, got)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("bad policy accepted")
	}
}

func TestAppendBatchGroupCommit(t *testing.T) {
	dir := t.TempDir()
	reg := obs.New()
	l, err := OpenLog(dir, LogOptions{Policy: SyncAlways, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	first, err := l.AppendBatch([][]byte{[]byte("a"), []byte("b"), []byte("c")})
	if err != nil || first != 1 {
		t.Fatalf("batch: first=%d err=%v", first, err)
	}
	if got := reg.Counter("wal.fsync.count").Value(); got != 1 {
		t.Fatalf("batch fsynced %d times, want 1", got)
	}
	if l.LastLSN() != 3 {
		t.Fatalf("LastLSN %d", l.LastLSN())
	}
	if _, err := l.AppendBatch(nil); err == nil {
		t.Fatal("empty batch accepted")
	}
}
