package wal

import (
	"errors"
	"testing"

	"xivm/internal/algebra"
	"xivm/internal/obs"
	"xivm/internal/update"
	"xivm/internal/xmark"
	"xivm/internal/xmltree"
)

// The crash matrix: one scripted run of the durability stack is first
// probed to count its filesystem operations, then re-run once per operation
// index with an injected crash (and a torn half-write when the crash lands
// inside a Write). Each leftover directory is recovered with the real
// filesystem and the result is held to the difftest oracle:
//
//   - the recovered document must equal the state after some statement
//     prefix k with k >= the number of acknowledged statements — SyncAlways
//     acknowledges only durable statements, and at most the one in-flight
//     journaled-but-unacknowledged statement may additionally replay;
//   - every recovered view must row-for-row equal a fresh evaluation of its
//     pattern over the recovered document;
//   - recovery may fail outright only if nothing was acknowledged (a crash
//     inside Create, before the initial checkpoint published).

var crashStatements = []string{
	`for $x in /site/people/person insert <phone>+33 555 0199</phone>`,
	`insert <person id="personX"><name>Nova Quinn</name></person> into /site/people`,
	`delete /site/people/person/phone`,
	`replace /site/people/person/name with <name>Replaced Name</name>`,
	`delete /site/closed_auctions/closed_auction`,
	`delete /site/catgraph`,
}

// runCrashScript drives one scripted session against fsys: create, register
// a view, apply the statements with a checkpoint mid-way. It returns how
// many statements were acknowledged before the first error.
func runCrashScript(dir string, fsys FS) (acked int, err error) {
	opts := Options{
		Sync:         SyncAlways,
		SegmentBytes: 256, // force rotation inside the script
		FS:           fsys,
		Metrics:      obs.New(),
	}
	db, err := Create(dir, []byte(xmark.GenerateSmall(11)), opts)
	if err != nil {
		return 0, err
	}
	defer db.Close()
	if _, err := db.AddView("Q1", xmark.View("Q1").String()); err != nil {
		return 0, err
	}
	for i, src := range crashStatements {
		if i == len(crashStatements)/2 {
			if err := db.Checkpoint(); err != nil {
				return acked, err
			}
		}
		st, perr := update.Parse(src)
		if perr != nil {
			return acked, perr
		}
		if _, err := db.Apply(st); err != nil {
			return acked, err
		}
		acked++
	}
	return acked, db.Close()
}

// prefixDocs returns the document serialization after each statement
// prefix, computed with the plain update machinery — the oracle states.
func prefixDocs(t *testing.T) []string {
	t.Helper()
	d, err := xmltree.ParseString(xmark.GenerateSmall(11))
	if err != nil {
		t.Fatal(err)
	}
	out := []string{d.String()}
	for _, src := range crashStatements {
		st, err := update.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		if st.Kind == update.Replace {
			delPul, insPul, err := update.ExpandReplace(d, st)
			if err != nil {
				t.Fatalf("oracle %q: %v", src, err)
			}
			for _, pul := range []*update.PUL{delPul, insPul} {
				if _, err := update.Apply(d, nil, pul); err != nil {
					t.Fatalf("oracle %q: %v", src, err)
				}
			}
		} else if _, _, err := update.Run(d, nil, st); err != nil {
			t.Fatalf("oracle %q: %v", src, err)
		}
		out = append(out, d.String())
	}
	return out
}

func TestCrashMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("crash matrix is a full fault-injection sweep")
	}
	// Probe: count the script's filesystem operations on a crash-free run.
	probeDir := t.TempDir()
	probe := NewFailFS(OSFS)
	acked, err := runCrashScript(probeDir, probe)
	if err != nil {
		t.Fatalf("probe run failed: %v", err)
	}
	if acked != len(crashStatements) {
		t.Fatalf("probe acked %d statements", acked)
	}
	totalOps := probe.Ops()
	if totalOps < 20 {
		t.Fatalf("suspiciously few operations to crash at: %d", totalOps)
	}
	prefixes := prefixDocs(t)

	for _, compact := range []bool{false, true} {
		name := "eager"
		if compact {
			name = "compact"
		}
		t.Run(name, func(t *testing.T) {
			tornRuns := 0
			for at := 0; at < totalOps; at++ {
				dir := t.TempDir()
				ffs := NewFailFS(OSFS)
				ffs.CrashAt = at
				acked, err := runCrashScript(dir, ffs)
				if err == nil {
					t.Fatalf("crash at op %d did not surface", at)
				}
				if !errors.Is(err, ErrCrash) {
					t.Fatalf("crash at op %d: unexpected error %v", at, err)
				}

				re, err := Open(dir, Options{Compact: compact, Metrics: obs.New()})
				if err != nil {
					if acked > 0 {
						t.Fatalf("crash at op %d: %d statements acknowledged but recovery failed: %v", at, acked, err)
					}
					continue // crash inside Create, nothing promised yet
				}
				if re.Stats().TruncatedBytes > 0 {
					tornRuns++
				}
				got := re.Engine().Doc.String()
				k := -1
				for i := len(prefixes) - 1; i >= 0; i-- {
					if prefixes[i] == got {
						k = i
						break
					}
				}
				if k < 0 {
					t.Fatalf("crash at op %d: recovered document matches no statement prefix", at)
				}
				if k < acked {
					t.Fatalf("crash at op %d: recovered prefix %d but %d statements were acknowledged", at, k, acked)
				}
				for _, mv := range re.Engine().Views {
					want := algebra.Materialize(re.Engine().Doc, mv.Pattern)
					if !mv.View.EqualRows(want) {
						t.Fatalf("crash at op %d: recovered view %s diverges from fresh evaluation", at, mv.Name)
					}
				}
				re.Close()
			}
			if tornRuns == 0 {
				t.Fatal("no crash point produced a torn log tail; the matrix is not exercising truncation")
			}
		})
	}
}

// TestCrashTornBytesVariants re-runs a handful of crash points with
// different torn-write lengths — 0 bytes (clean cut), 1 byte, and one byte
// short of the full frame — to hit the cut at different frame offsets.
func TestCrashTornBytesVariants(t *testing.T) {
	probeDir := t.TempDir()
	probe := NewFailFS(OSFS)
	if _, err := runCrashScript(probeDir, probe); err != nil {
		t.Fatalf("probe run failed: %v", err)
	}
	totalOps := probe.Ops()
	prefixes := prefixDocs(t)

	for _, torn := range []int{0, 1, 1 << 20} {
		for _, at := range []int{totalOps / 4, totalOps / 2, totalOps - 2} {
			dir := t.TempDir()
			ffs := NewFailFS(OSFS)
			ffs.CrashAt = at
			ffs.TornBytes = torn
			acked, err := runCrashScript(dir, ffs)
			if !errors.Is(err, ErrCrash) {
				t.Fatalf("torn=%d at=%d: unexpected error %v", torn, at, err)
			}
			re, err := Open(dir, Options{Metrics: obs.New()})
			if err != nil {
				if acked > 0 {
					t.Fatalf("torn=%d at=%d: recovery failed after %d acks: %v", torn, at, acked, err)
				}
				continue
			}
			got := re.Engine().Doc.String()
			k := -1
			for i := len(prefixes) - 1; i >= 0; i-- {
				if prefixes[i] == got {
					k = i
					break
				}
			}
			if k < acked {
				t.Fatalf("torn=%d at=%d: recovered prefix %d < acked %d", torn, at, k, acked)
			}
			re.Close()
		}
	}
}
