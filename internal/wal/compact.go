package wal

import (
	"fmt"

	"xivm/internal/pulopt"
	"xivm/internal/update"
	"xivm/internal/xmltree"
)

// Log compaction during recovery (Section 5's reduction rules applied to
// the replay tail): instead of re-running every statement, the tail is
// first expanded into elementary operations on a scratch copy of the
// checkpoint document, reduced with pulopt (O1/O3 kill operations whose
// target a later deletion removes, I5 merges insertions on one node), and
// only the survivors are propagated through the engine — insert-then-delete
// churn costs nothing to replay.
//
// Soundness is the delicate part: pulopt addresses nodes by Dewey ID, but
// this repo's ordinal assignment (dewey.Between after the last sibling)
// reuses freed ordinals, so the key of a deleted node can come back as a
// different node — replace statements do it routinely. The collection phase
// therefore runs entirely on the scratch document and ABORTS compaction —
// falling back to eager statement replay — the moment it sees:
//
//   - an inserted node whose ID key was previously deleted (ordinal reuse:
//     IDs are no longer unique across the tail, the rules' premise),
//   - a view-registration record (AddView must happen at its exact point
//     in the statement sequence),
//   - a statement that part-applies (error after mutation), or an
//     unrecognized record.
//
// Absent reuse, dropped operations provably cannot disturb the ordinal
// assignment of surviving ones: an operation is dropped only when a later
// surviving deletion removes its target (O1) or an enclosing subtree (O3),
// and any insertion that would have landed in ordinal space freed by a
// dropped deletion either dies with the same enclosing subtree or re-uses a
// deleted key and trips the abort. Phase B still resolves every target by
// NodeByID and falls back — rebuilding the engine from the checkpoint — if
// the document disagrees.
func (db *DB) replayCompacted(from uint64) (bool, error) {
	var payloads [][]byte
	if err := db.log.Replay(from, func(_ uint64, p []byte) error {
		payloads = append(payloads, append([]byte(nil), p...))
		return nil
	}); err != nil {
		return false, err
	}
	if len(payloads) == 0 {
		db.stats.Compacted = true
		return true, nil
	}
	ops, replayed, skipped, bumps, ok := db.collectOps(payloads)
	if !ok {
		return false, nil
	}
	reduced := pulopt.Reduce(ops)
	dropped := len(ops) - len(reduced)
	if dropped == 0 {
		return false, nil // nothing to save; the eager path is simpler
	}
	base := db.eng.Version()
	if err := db.applyOps(reduced); err != nil {
		// The engine may be part-mutated; rebuild it from the checkpoint
		// and let the eager path replay the tail from scratch.
		if rerr := db.restore(db.ckptImg); rerr != nil {
			return false, rerr
		}
		return false, nil
	}
	// applyOps bumped the version once per surviving operation; the eager
	// path would have bumped once per applied PUL (twice for a replace).
	// The version is durable state now — checkpoint manifests carry it and
	// followers converge on it — so land on the sequential number.
	db.eng.SetVersion(base + uint64(bumps))
	db.stats.Compacted = true
	db.stats.CompactedOps = dropped
	db.stats.Replayed += replayed
	db.stats.Skipped += skipped
	db.m.recCompacted.Add(int64(dropped))
	for i := 0; i < replayed; i++ {
		db.m.recReplayed.Inc()
	}
	for i := 0; i < skipped; i++ {
		db.m.recSkipped.Inc()
	}
	return true, nil
}

// collectOps is the scratch phase: every tail statement runs against a
// private copy of the checkpoint document (never the engine), recording the
// elementary operations it expands to, plus the version bumps the eager
// path would have made (one per applied PUL — two for a replace — zero for
// a skipped statement). ok=false means compaction cannot prove itself sound
// and the caller must use the eager path.
func (db *DB) collectOps(payloads [][]byte) (ops pulopt.Seq, replayed, skipped, bumps int, ok bool) {
	scratch, err := xmltree.ParseString(string(db.ckptImg.DocXML))
	if err != nil {
		return nil, 0, 0, 0, false
	}
	// The scratch document must live in the same ID space as the restored
	// engine (which applies the checkpoint's ordinal stream), or phase B's
	// NodeByID lookups would dangle.
	if err := scratch.ApplyOrds(db.ckptImg.Ords); err != nil {
		return nil, 0, 0, 0, false
	}
	deleted := map[string]bool{} // ID keys of every node ever deleted in the tail
	for _, p := range payloads {
		if len(p) == 0 || p[0] != recStatement {
			return nil, 0, 0, 0, false
		}
		st, err := update.Parse(string(p[1:]))
		if err != nil {
			skipped++
			continue
		}
		var puls []*update.PUL
		if st.Kind == update.Replace {
			delPul, insPul, err := update.ExpandReplace(scratch, st)
			if err != nil {
				skipped++
				continue
			}
			puls = append(puls, delPul, insPul)
		} else {
			pul, err := update.ComputePUL(scratch, st)
			if err != nil {
				skipped++
				continue
			}
			puls = append(puls, pul)
		}
		for _, pul := range puls {
			applied, err := update.Apply(scratch, nil, pul)
			if err != nil {
				return nil, 0, 0, 0, false // part-applied statement
			}
			switch pul.Kind {
			case update.Delete:
				for _, r := range applied.DeletedRoots {
					ops = append(ops, pulopt.Op{Kind: pulopt.Del, Target: r.ID})
					xmltree.Walk(r, func(n *xmltree.Node) bool {
						deleted[n.ID.Key()] = true
						return true
					})
				}
			case update.Insert:
				for _, r := range applied.InsertedRoots {
					if r.Parent == nil {
						return nil, 0, 0, 0, false
					}
					reused := false
					xmltree.Walk(r, func(n *xmltree.Node) bool {
						if deleted[n.ID.Key()] {
							reused = true
							return false
						}
						return true
					})
					if reused {
						return nil, 0, 0, 0, false
					}
					ops = append(ops, pulopt.Op{Kind: pulopt.InsLast, Target: r.Parent.ID, Forest: []*xmltree.Node{r}})
				}
			}
		}
		replayed++
		bumps += len(puls)
	}
	return ops, replayed, skipped, bumps, true
}

// applyOps propagates the reduced operations through the real engine, one
// PUL per operation so the effect order matches the reduced sequence
// exactly. The scratch-assigned IDs resolve against the engine's document
// because both start from the same checkpoint and (absent the aborts above)
// apply the same surviving operations in the same order.
func (db *DB) applyOps(ops pulopt.Seq) error {
	for _, op := range ops {
		n := db.eng.Doc.NodeByID(op.Target)
		if n == nil {
			return fmt.Errorf("wal: compacted replay: no node at %v", op.Target)
		}
		var pul *update.PUL
		if op.Kind == pulopt.Del {
			pul = &update.PUL{Kind: update.Delete, Deletes: []*xmltree.Node{n}}
		} else {
			pul = &update.PUL{Kind: update.Insert, Inserts: []update.PendingInsert{{Target: n, Trees: op.Forest}}}
		}
		if _, err := db.eng.ApplyPUL(pul); err != nil {
			return err
		}
	}
	return nil
}
