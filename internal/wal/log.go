// Package wal is the durability subsystem: a segmented append-only
// write-ahead log of canonical update statements, atomic checkpoints of the
// document and every managed view, and crash recovery that loads the newest
// valid checkpoint and replays the surviving log suffix — optionally
// compacted first with the pending-update-list reduction rules of
// internal/pulopt, so replay cost shrinks the same way propagation cost
// does.
//
// The paper's premise is that incrementally maintained views are cheap to
// keep; without this layer a process restart throws every materialized view
// away and pays the full-recomputation baseline the algorithms exist to
// beat. With it, maintained state survives crashes: the DB wrapper journals
// each statement before propagation (write-ahead, enforced inside
// core.Engine via the WithJournal hook), group-commits under a configurable
// fsync policy, and checkpoints rotate and truncate the log behind them.
//
// On-disk layout of a data directory:
//
//	<dir>/wal/<first-lsn>.wal      log segments, CRC-32C framed records
//	<dir>/checkpoint-<lsn>/        one checkpoint: MANIFEST, doc.xml,
//	                               <view>.xivm per managed view
//
// Record frames are self-describing and torn-tail safe: recovery scans
// frames in order and truncates the log at the first frame whose length,
// checksum or sequence number does not check out — a torn tail is cut,
// never replayed.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"xivm/internal/obs"
)

// SyncPolicy selects when appended records are fsynced.
type SyncPolicy uint8

const (
	// SyncAlways fsyncs on every append before acknowledging it — the
	// no-lost-updates policy.
	SyncAlways SyncPolicy = iota
	// SyncInterval group-commits: appends are acknowledged immediately and
	// fsynced at most once per interval, bounding both the fsync rate and
	// the window of acknowledged-but-volatile records.
	SyncInterval
	// SyncNever leaves syncing to the operating system (and to explicit
	// Sync/Checkpoint calls).
	SyncNever
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	}
	return "always"
}

// ParseSyncPolicy parses "always", "interval" or "never".
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	}
	return SyncAlways, fmt.Errorf("wal: unknown fsync policy %q (want always, interval or never)", s)
}

// Frame layout (little endian):
//
//	[0:4)   payload length
//	[4:8)   CRC-32C (Castagnoli) over bytes [8 : 16+length)
//	[8:16)  LSN
//	[16:)   payload
const frameHeader = 16

// maxPayload bounds a single record; a length field beyond it marks the
// frame — and everything after it — as a torn tail.
const maxPayload = 16 << 20

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// segExt is the log segment suffix; segments are named by the LSN of their
// first record, zero-padded so lexical order is LSN order.
const segExt = ".wal"

func segName(firstLSN uint64) string { return fmt.Sprintf("%016x%s", firstLSN, segExt) }

func parseSegName(name string) (uint64, bool) {
	base, ok := strings.CutSuffix(name, segExt)
	if !ok || len(base) != 16 {
		return 0, false
	}
	var lsn uint64
	if _, err := fmt.Sscanf(base, "%016x", &lsn); err != nil {
		return 0, false
	}
	return lsn, true
}

// LogOptions tunes a Log; the zero value is SyncAlways with default
// segment size.
type LogOptions struct {
	// Policy is the fsync policy (default SyncAlways).
	Policy SyncPolicy
	// Interval is the group-commit window under SyncInterval (default
	// 50ms).
	Interval time.Duration
	// SegmentBytes rotates to a fresh segment once the current one reaches
	// this size (default 4 MiB).
	SegmentBytes int64
	// StartLSN seeds the sequence when the directory holds no segments —
	// the checkpoint LSN + 1 on reopen, 1 on a fresh directory.
	StartLSN uint64
	// Metrics selects the registry (nil = obs.Default()).
	Metrics *obs.Metrics
	// FS selects the filesystem (nil = OSFS).
	FS FS
}

// Log is a segmented append-only record log with monotonic LSNs. It is not
// safe for concurrent use; the DB wrapper serializes access the same way
// core.Engine serializes statements.
type Log struct {
	dir  string
	fs   FS
	m    *walMetrics
	opts LogOptions

	segments []segment // sorted by firstLSN; last is the active one
	cur      File      // open handle on the active segment, nil if none
	curSize  int64
	nextLSN  uint64
	dirty    bool // unsynced appends on cur
	lastSync time.Time
	buf      []byte // reused frame scratch

	// last mirrors nextLSN-1 for concurrent readers: the replication
	// status/stream handlers run on HTTP goroutines while the single writer
	// appends, and must not read nextLSN directly.
	last atomic.Uint64

	truncated int64 // torn-tail bytes cut during Open
	failed    error // sticky write-path error; the log refuses further appends
}

type segment struct {
	firstLSN uint64
	size     int64
}

func (l *Log) segPath(s segment) string { return filepath.Join(l.dir, segName(s.firstLSN)) }

// OpenLog opens (creating if needed) the log directory, validates every
// segment, truncates any torn tail, and positions the sequence after the
// last durable record. The torn-tail rule: within the segment chain, the
// log ends at the first frame that fails its length, checksum or LSN
// continuity check; that frame and everything after it (including later
// segments) is truncated and counted in wal.recover.truncated.
func OpenLog(dir string, opts LogOptions) (*Log, error) {
	if opts.FS == nil {
		opts.FS = OSFS
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = 4 << 20
	}
	if opts.Interval <= 0 {
		opts.Interval = 50 * time.Millisecond
	}
	if opts.StartLSN == 0 {
		opts.StartLSN = 1
	}
	l := &Log{dir: dir, fs: opts.FS, m: newWalMetrics(opts.Metrics), opts: opts, lastSync: time.Now()}
	if err := l.fs.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	entries, err := l.fs.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segment
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		first, ok := parseSegName(e.Name())
		if !ok {
			continue // foreign file; leave it alone
		}
		segs = append(segs, segment{firstLSN: first})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].firstLSN < segs[j].firstLSN })

	// The chain starts wherever the oldest surviving segment says it does —
	// checkpoints truncate old segments, so the first segment's LSN is
	// normally behind the newest checkpoint, not at StartLSN. StartLSN only
	// seeds an empty directory.
	l.nextLSN = opts.StartLSN
	if len(segs) > 0 {
		l.nextLSN = segs[0].firstLSN
	}
	for i := range segs {
		data, err := l.fs.ReadFile(filepath.Join(dir, segName(segs[i].firstLSN)))
		if err != nil {
			return nil, err
		}
		if segs[i].firstLSN != l.nextLSN {
			// A segment that does not continue the sequence starts the torn
			// region: cut it and everything after it. (A crash between
			// rotation and the first append of the new segment leaves an
			// empty segment named exactly nextLSN, which passes this check
			// and scans as zero frames.)
			return l.cutFrom(segs, i, 0)
		}
		valid, count := scanFrames(data, segs[i].firstLSN)
		if valid < int64(len(data)) {
			// Torn tail inside this segment: truncate here, drop the rest.
			l.nextLSN = segs[i].firstLSN + count
			return l.cutFrom(segs, i, valid)
		}
		if len(data) == 0 && i < len(segs)-1 {
			// An empty segment followed by more segments cannot happen in a
			// clean chain (rotation creates at most one trailing empty
			// segment); treat the suffix as torn.
			return l.cutFrom(segs, i+1, 0)
		}
		segs[i].size = valid
		l.nextLSN = segs[i].firstLSN + count
		l.segments = append(l.segments, segs[i])
	}
	l.last.Store(l.nextLSN - 1)
	return l, nil
}

// cutFrom finalizes Open after finding the torn region: segment i is
// truncated to keep bytes, segments after i are removed entirely, and the
// log opens positioned at the cut.
func (l *Log) cutFrom(segs []segment, i int, keep int64) (*Log, error) {
	path := filepath.Join(l.dir, segName(segs[i].firstLSN))
	data, err := l.fs.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cut := int64(len(data)) - keep
	if keep == 0 {
		if err := l.fs.Remove(path); err != nil {
			return nil, err
		}
	} else {
		if err := l.fs.Truncate(path, keep); err != nil {
			return nil, err
		}
		segs[i].size = keep
		l.segments = append(l.segments, segs[i])
	}
	for _, s := range segs[i+1:] {
		p := filepath.Join(l.dir, segName(s.firstLSN))
		extra, err := l.fs.ReadFile(p)
		if err == nil {
			cut += int64(len(extra))
		}
		if err := l.fs.Remove(p); err != nil {
			return nil, err
		}
		l.m.segRemoved.Inc()
	}
	if err := l.fs.SyncDir(l.dir); err != nil {
		return nil, err
	}
	l.truncated = cut
	l.m.recTruncated.Add(cut)
	l.last.Store(l.nextLSN - 1)
	return l, nil
}

// scanFrames walks data as a frame sequence starting at LSN first,
// returning the number of leading valid bytes and the count of valid
// frames. Anything beyond the returned length is a torn tail.
func scanFrames(data []byte, first uint64) (valid int64, count uint64) {
	pos := int64(0)
	lsn := first
	for {
		rest := data[pos:]
		if len(rest) < frameHeader {
			return pos, count
		}
		length := int64(binary.LittleEndian.Uint32(rest[0:4]))
		if length > maxPayload || frameHeader+length > int64(len(rest)) {
			return pos, count
		}
		sum := binary.LittleEndian.Uint32(rest[4:8])
		if crc32.Checksum(rest[8:frameHeader+length], castagnoli) != sum {
			return pos, count
		}
		if binary.LittleEndian.Uint64(rest[8:16]) != lsn {
			return pos, count
		}
		pos += frameHeader + length
		lsn++
		count++
	}
}

// Truncated returns the torn-tail bytes cut when the log was opened.
func (l *Log) Truncated() int64 { return l.truncated }

// LastLSN returns the sequence number of the last appended record, or
// StartLSN-1 when the log is empty. Unlike every other Log method it is
// safe to call concurrently with the owning writer — replication status
// reads it from HTTP handler goroutines.
func (l *Log) LastLSN() uint64 { return l.last.Load() }

// Append frames payload, writes it to the active segment (rotating first
// if the segment is full), and syncs according to the policy. It returns
// the record's LSN. A failed write poisons the log: every later Append
// returns the same error, because the on-disk tail is no longer known to
// match the in-memory sequence.
func (l *Log) Append(payload []byte) (uint64, error) {
	lsn, err := l.append(payload)
	if err != nil {
		return 0, err
	}
	if err := l.policySync(); err != nil {
		return 0, err
	}
	return lsn, nil
}

// AppendBatch appends every payload and then syncs once according to the
// policy — the group-commit form. It returns the LSN of the first record.
func (l *Log) AppendBatch(payloads [][]byte) (uint64, error) {
	if len(payloads) == 0 {
		return 0, errors.New("wal: empty batch")
	}
	first := l.nextLSN
	for _, p := range payloads {
		if _, err := l.append(p); err != nil {
			return 0, err
		}
	}
	if err := l.policySync(); err != nil {
		return 0, err
	}
	return first, nil
}

func (l *Log) append(payload []byte) (uint64, error) {
	if l.failed != nil {
		return 0, l.failed
	}
	if int64(len(payload)) > maxPayload {
		return 0, fmt.Errorf("wal: record of %d bytes exceeds the %d-byte frame limit", len(payload), maxPayload)
	}
	if l.cur == nil || l.curSize >= l.opts.SegmentBytes {
		if err := l.rotate(); err != nil {
			return 0, err
		}
	}
	lsn := l.nextLSN
	l.buf = l.buf[:0]
	l.buf = append(l.buf, 0, 0, 0, 0, 0, 0, 0, 0)
	l.buf = binary.LittleEndian.AppendUint64(l.buf, lsn)
	l.buf = append(l.buf, payload...)
	binary.LittleEndian.PutUint32(l.buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(l.buf[4:8], crc32.Checksum(l.buf[8:], castagnoli))
	if _, err := l.cur.Write(l.buf); err != nil {
		l.failed = fmt.Errorf("wal: append: %w", err)
		return 0, l.failed
	}
	l.curSize += int64(len(l.buf))
	l.segments[len(l.segments)-1].size = l.curSize
	l.nextLSN++
	l.last.Store(l.nextLSN - 1)
	l.dirty = true
	l.m.appendCount.Inc()
	l.m.appendBytes.Add(int64(len(l.buf)))
	return lsn, nil
}

// rotate closes the active segment and opens a fresh one named after the
// next LSN.
func (l *Log) rotate() error {
	if l.cur != nil {
		if err := l.syncCur(); err != nil {
			return err
		}
		if err := l.cur.Close(); err != nil {
			l.failed = err
			return err
		}
		l.cur = nil
	}
	seg := segment{firstLSN: l.nextLSN}
	f, err := l.fs.OpenFile(l.segPath(seg), os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_EXCL, 0o644)
	if err != nil {
		l.failed = err
		return err
	}
	if err := l.fs.SyncDir(l.dir); err != nil {
		l.failed = err
		return err
	}
	l.cur = f
	l.curSize = 0
	l.segments = append(l.segments, seg)
	l.m.segCreated.Inc()
	return nil
}

func (l *Log) policySync() error {
	switch l.opts.Policy {
	case SyncAlways:
		return l.Sync()
	case SyncInterval:
		if time.Since(l.lastSync) >= l.opts.Interval {
			return l.Sync()
		}
	}
	return nil
}

// Sync fsyncs the active segment if it has unsynced appends.
func (l *Log) Sync() error {
	if err := l.syncCur(); err != nil {
		return err
	}
	l.lastSync = time.Now()
	return nil
}

func (l *Log) syncCur() error {
	if l.failed != nil {
		return l.failed
	}
	if !l.dirty || l.cur == nil {
		return nil
	}
	t0 := time.Now()
	if err := l.cur.Sync(); err != nil {
		l.failed = fmt.Errorf("wal: fsync: %w", err)
		return l.failed
	}
	l.m.fsyncCount.Inc()
	l.m.fsyncNS.Observe(time.Since(t0))
	l.dirty = false
	return nil
}

// Replay calls fn for every record with LSN >= from, in order. The open
// scan already cut any torn tail, so every frame read here is intact.
func (l *Log) Replay(from uint64, fn func(lsn uint64, payload []byte) error) error {
	for _, seg := range l.segments {
		data, err := l.fs.ReadFile(l.segPath(seg))
		if err != nil {
			return err
		}
		pos := int64(0)
		for pos < seg.size {
			rest := data[pos:]
			length := int64(binary.LittleEndian.Uint32(rest[0:4]))
			lsn := binary.LittleEndian.Uint64(rest[8:16])
			if lsn >= from {
				if err := fn(lsn, rest[frameHeader:frameHeader+length]); err != nil {
					return err
				}
			}
			pos += frameHeader + length
		}
	}
	return nil
}

// RotateAndTruncate makes lsn the truncation horizon: the active segment is
// rotated so the next append starts a fresh segment, and every segment
// whose records all have LSN <= lsn is removed. Called after a checkpoint
// at lsn — the removed records' effects are in the checkpoint.
func (l *Log) RotateAndTruncate(lsn uint64) error {
	if l.failed != nil {
		return l.failed
	}
	if l.cur != nil {
		if err := l.syncCur(); err != nil {
			return err
		}
		if err := l.cur.Close(); err != nil {
			l.failed = err
			return err
		}
		l.cur = nil
		l.curSize = 0
	}
	// A segment is dead if the next segment's first LSN (or the overall
	// next LSN, for the last segment) proves every record in it is <= lsn.
	kept := l.segments[:0]
	for i, seg := range l.segments {
		lastInSeg := l.nextLSN - 1
		if i+1 < len(l.segments) {
			lastInSeg = l.segments[i+1].firstLSN - 1
		}
		if lastInSeg <= lsn && seg.size >= 0 {
			if err := l.fs.Remove(l.segPath(seg)); err != nil {
				return err
			}
			l.m.segRemoved.Inc()
			continue
		}
		kept = append(kept, seg)
	}
	l.segments = kept
	return l.fs.SyncDir(l.dir)
}

// Reset discards every segment and restarts the sequence at startLSN. The
// DB uses it when the surviving log ends behind the newest checkpoint
// (every lost record's effect is already in the checkpoint): appending at
// startLSN over stale lower-LSN segments would corrupt the chain.
func (l *Log) Reset(startLSN uint64) error {
	if l.failed != nil {
		return l.failed
	}
	if l.cur != nil {
		if err := l.cur.Close(); err != nil {
			return err
		}
		l.cur = nil
		l.curSize = 0
	}
	for _, seg := range l.segments {
		if err := l.fs.Remove(l.segPath(seg)); err != nil {
			return err
		}
		l.m.segRemoved.Inc()
	}
	l.segments = nil
	l.nextLSN = startLSN
	l.last.Store(startLSN - 1)
	l.dirty = false
	return l.fs.SyncDir(l.dir)
}

// Close syncs and closes the active segment.
func (l *Log) Close() error {
	if l.cur == nil {
		return nil
	}
	err := l.syncCur()
	if cerr := l.cur.Close(); err == nil {
		err = cerr
	}
	l.cur = nil
	return err
}
