package wal

import "xivm/internal/obs"

// walMetrics bundles the durability layer's pre-resolved instruments.
//
// Counter names:
//
//	wal.append.count        records appended
//	wal.append.bytes        framed bytes appended (header + payload)
//	wal.fsync.count         fsyncs issued (log and checkpoint files)
//	wal.segment.created     log segments created
//	wal.segment.removed     log segments removed behind checkpoints
//	wal.checkpoint.count    checkpoints written
//	wal.checkpoint.bytes    bytes written into checkpoints
//	wal.recover.replayed    statements replayed during recovery
//	wal.recover.skipped     log records skipped during recovery (unparseable
//	                        or statements the engine rejected — both replay
//	                        exactly as they failed originally)
//	wal.recover.truncated   torn-tail bytes truncated from log segments
//	wal.recover.compacted   elementary operations removed by pulopt log
//	                        compaction before replay
//	wal.recover.badcheckpoints  checkpoints rejected during recovery
//	                            (hash mismatch, torn manifest, …)
//
// Histogram names: wal.fsync.ns (per-fsync latency).
type walMetrics struct {
	reg *obs.Metrics

	appendCount, appendBytes   *obs.Counter
	fsyncCount                 *obs.Counter
	segCreated, segRemoved     *obs.Counter
	ckptCount, ckptBytes       *obs.Counter
	recReplayed, recSkipped    *obs.Counter
	recTruncated, recCompacted *obs.Counter
	recBadCheckpoints          *obs.Counter

	fsyncNS *obs.Histogram
}

func newWalMetrics(reg *obs.Metrics) *walMetrics {
	if reg == nil {
		reg = obs.Default()
	}
	return &walMetrics{
		reg:               reg,
		appendCount:       reg.Counter("wal.append.count"),
		appendBytes:       reg.Counter("wal.append.bytes"),
		fsyncCount:        reg.Counter("wal.fsync.count"),
		segCreated:        reg.Counter("wal.segment.created"),
		segRemoved:        reg.Counter("wal.segment.removed"),
		ckptCount:         reg.Counter("wal.checkpoint.count"),
		ckptBytes:         reg.Counter("wal.checkpoint.bytes"),
		recReplayed:       reg.Counter("wal.recover.replayed"),
		recSkipped:        reg.Counter("wal.recover.skipped"),
		recTruncated:      reg.Counter("wal.recover.truncated"),
		recCompacted:      reg.Counter("wal.recover.compacted"),
		recBadCheckpoints: reg.Counter("wal.recover.badcheckpoints"),
		fsyncNS:           reg.Histogram("wal.fsync.ns"),
	}
}
