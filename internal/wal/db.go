package wal

import (
	"bytes"
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"xivm/internal/core"
	"xivm/internal/obs"
	"xivm/internal/pattern"
	"xivm/internal/pulopt"
	"xivm/internal/store"
	"xivm/internal/update"
	"xivm/internal/xmltree"
)

// Record payload tags. A record is one tagged payload inside a log frame;
// the frame supplies length, checksum and LSN.
const (
	// recStatement tags a canonical update statement (update.Format).
	recStatement = 's'
	// recView tags a view registration: name, NUL, pattern source.
	recView = 'v'
)

// Options tunes a DB. The zero value is SyncAlways, 4 MiB segments, manual
// checkpoints only, eager recovery.
type Options struct {
	// Sync is the fsync policy for statement appends.
	Sync SyncPolicy
	// SyncInterval is the group-commit window under SyncInterval.
	SyncInterval time.Duration
	// SegmentBytes is the log segment rotation size.
	SegmentBytes int64
	// CheckpointEvery, when positive, checkpoints automatically after that
	// many journaled records.
	CheckpointEvery int
	// KeepCheckpoints is how many published checkpoints survive pruning
	// (default 2: the newest plus one fallback).
	KeepCheckpoints int
	// Compact runs pulopt log compaction over the replay tail during
	// recovery; replay falls back to the eager path whenever compaction
	// cannot prove itself sound (see compact.go).
	Compact bool
	// PinTTL is how long a replication follower's stream read pins the log
	// suffix against checkpoint truncation without being refreshed
	// (0 = default 30s). A follower that stalls past it falls back to
	// snapshot-first catch-up via the typed snapshot_required error.
	PinTTL time.Duration
	// Metrics selects the wal.* registry (nil = obs.Default()).
	Metrics *obs.Metrics
	// FS selects the filesystem (nil = OSFS); the fault-injection tests
	// substitute a crashing one.
	FS FS
	// Engine is extra engine configuration (policy, parallelism, …). It
	// must not include WithJournal — the DB owns the journal hook.
	Engine []core.Option
}

// DB couples a maintenance engine with the durability subsystem: every
// statement is journaled to the write-ahead log before the engine mutates
// anything, checkpoints capture the document plus every view, and Open
// recovers the exact acknowledged state after a crash.
//
// A DB is not safe for concurrent use, matching core.Engine's contract.
type DB struct {
	dir    string
	walDir string
	fs     FS
	m      *walMetrics
	opts   Options

	eng     *core.Engine
	log     *Log
	sources map[string]string // view name -> pattern source, in ckptImg+log order
	order   []string          // registration order of sources

	ckptImg   *checkpointImage // the checkpoint this process recovered from
	sinceCkpt int
	replaying bool
	stats     RecoveryStats

	// lastCkpt is the LSN of the newest checkpoint this process wrote or
	// recovered from. Atomic because the replication status handler reads
	// it from HTTP goroutines while the writer checkpoints.
	lastCkpt atomic.Uint64

	// pins maps follower IDs to the oldest LSN each active stream still
	// needs, so Checkpoint does not truncate log records out from under a
	// tailing follower. Guarded by pinMu; touched from HTTP handler
	// goroutines concurrently with the single writer.
	pinMu sync.Mutex
	pins  map[string]followerPin
}

func newDB(dir string, opts Options) (*DB, error) {
	if opts.FS == nil {
		opts.FS = OSFS
	}
	if opts.KeepCheckpoints <= 0 {
		opts.KeepCheckpoints = 2
	}
	db := &DB{
		dir:     dir,
		walDir:  filepath.Join(dir, "wal"),
		fs:      opts.FS,
		m:       newWalMetrics(opts.Metrics),
		opts:    opts,
		sources: map[string]string{},
		pins:    map[string]followerPin{},
	}
	if err := db.fs.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return db, nil
}

func (db *DB) logOptions(start uint64) LogOptions {
	return LogOptions{
		Policy:       db.opts.Sync,
		Interval:     db.opts.SyncInterval,
		SegmentBytes: db.opts.SegmentBytes,
		StartLSN:     start,
		Metrics:      db.opts.Metrics,
		FS:           db.fs,
	}
}

// buildEngine constructs the engine over doc with the DB's journal hook
// appended last, so a caller-supplied option cannot displace it.
func (db *DB) buildEngine(doc *xmltree.Document) *core.Engine {
	opts := make([]core.Option, 0, len(db.opts.Engine)+1)
	opts = append(opts, db.opts.Engine...)
	opts = append(opts, core.WithJournal(db.journal))
	return core.New(doc, opts...)
}

// journal is the engine's write-ahead hook: the statement's canonical form
// is appended (and synced per policy) before the engine touches the
// document or any view. Replay disables it — replayed statements are
// already in the log.
func (db *DB) journal(st *update.Statement) error {
	if db.replaying {
		return nil
	}
	payload := append([]byte{recStatement}, update.Format(st)...)
	if _, err := db.log.Append(payload); err != nil {
		return err
	}
	db.sinceCkpt++
	return nil
}

// Create initializes a fresh database directory around the given document:
// it writes the initial checkpoint (LSN 0) and opens an empty log. The
// directory must not already hold a database.
func Create(dir string, docXML []byte, opts Options) (*DB, error) {
	db, err := newDB(dir, opts)
	if err != nil {
		return nil, err
	}
	existing, err := listCheckpoints(db.fs, dir)
	if err != nil {
		return nil, err
	}
	if len(existing) > 0 {
		return nil, fmt.Errorf("wal: %s already holds a database (checkpoint %s)", dir, ckptName(existing[len(existing)-1]))
	}
	doc, err := xmltree.ParseString(string(docXML))
	if err != nil {
		return nil, fmt.Errorf("wal: create: %w", err)
	}
	db.eng = db.buildEngine(doc)
	if err := writeCheckpoint(db.fs, db.m, dir, db.eng, db.sources, 0); err != nil {
		return nil, err
	}
	db.ckptImg = &checkpointImage{Manifest: store.NewManifest(0), DocXML: []byte(doc.String()), Ords: doc.EncodeOrds()}
	db.log, err = OpenLog(db.walDir, db.logOptions(1))
	if err != nil {
		return nil, err
	}
	return db, nil
}

// Open recovers a database: newest valid checkpoint, torn-tail log scan,
// replay of the surviving suffix. The recovered engine state is exactly
// what the durable log prefix acknowledges.
func Open(dir string, opts Options) (*DB, error) {
	db, err := newDB(dir, opts)
	if err != nil {
		return nil, err
	}
	lsns, err := listCheckpoints(db.fs, dir)
	if err != nil {
		return nil, err
	}
	if len(lsns) == 0 {
		return nil, fmt.Errorf("wal: %s holds no checkpoint (not a database, or created mid-crash)", dir)
	}
	// Newest checkpoint that passes every hash; corrupted ones are counted
	// and skipped in favor of older fallbacks.
	var img *checkpointImage
	for i := len(lsns) - 1; i >= 0 && img == nil; i-- {
		im, lerr := loadCheckpoint(db.fs, dir, lsns[i])
		if lerr != nil {
			db.m.recBadCheckpoints.Inc()
			db.stats.BadCheckpoints++
			continue
		}
		img = im
	}
	if img == nil {
		return nil, fmt.Errorf("wal: %s: every checkpoint is corrupt", dir)
	}
	if err := db.restore(img); err != nil {
		return nil, err
	}
	ckLSN := img.Manifest.LSN
	db.log, err = OpenLog(db.walDir, db.logOptions(ckLSN+1))
	if err != nil {
		return nil, err
	}
	db.stats.CheckpointLSN = ckLSN
	db.stats.TruncatedBytes = db.log.Truncated()
	if db.log.LastLSN() < ckLSN {
		// The surviving log ends behind the checkpoint (its tail was torn
		// away, or an old generation's segments linger): every record the
		// checkpoint covers is already applied, and appending over stale
		// lower-LSN segments would corrupt the chain. Start the log over.
		if err := db.log.Reset(ckLSN + 1); err != nil {
			return nil, err
		}
	}
	if err := db.replay(ckLSN + 1); err != nil {
		return nil, err
	}
	if err := pruneCheckpoints(db.fs, dir, db.opts.KeepCheckpoints); err != nil {
		return nil, err
	}
	return db, nil
}

// OpenOrCreate opens dir if it holds a database and creates one around
// docXML otherwise.
func OpenOrCreate(dir string, docXML []byte, opts Options) (*DB, error) {
	probe, err := newDB(dir, opts)
	if err != nil {
		return nil, err
	}
	lsns, err := listCheckpoints(probe.fs, dir)
	if err != nil {
		return nil, err
	}
	if len(lsns) == 0 {
		return Create(dir, docXML, opts)
	}
	return Open(dir, opts)
}

// restore rebuilds the engine from a verified checkpoint image: parse the
// document, re-impose the recorded ordinal stream so every node carries the
// exact Dewey ID it had in the live engine (the snapshot rows' IDs resolve,
// and the restored process answers queries with byte-identical IDs), then
// install every view from its snapshot rows without re-evaluating patterns.
func (db *DB) restore(img *checkpointImage) error {
	doc, err := xmltree.ParseString(string(img.DocXML))
	if err != nil {
		return fmt.Errorf("wal: checkpoint document: %w", err)
	}
	if err := doc.ApplyOrds(img.Ords); err != nil {
		return fmt.Errorf("wal: checkpoint ordinal stream: %w", err)
	}
	db.eng = db.buildEngine(doc)
	db.sources = map[string]string{}
	db.order = nil
	for _, v := range img.Manifest.Views {
		p, err := pattern.Parse(v.Pattern)
		if err != nil {
			return fmt.Errorf("wal: checkpoint view %s pattern: %w", v.Name, err)
		}
		rows, err := store.DecodeSnapshot(img.Views[v.Name])
		if err != nil {
			return fmt.Errorf("wal: checkpoint view %s snapshot: %w", v.Name, err)
		}
		if _, err := db.eng.AddViewRows(v.Name, p, rows); err != nil {
			return fmt.Errorf("wal: checkpoint view %s: %w", v.Name, err)
		}
		db.sources[v.Name] = v.Pattern
		db.order = append(db.order, v.Name)
	}
	db.ckptImg = img
	db.lastCkpt.Store(img.Manifest.LSN)
	// Seed the version counter from the manifest so replaying the log
	// suffix reproduces the exact version numbers the pre-crash engine
	// reported — and a follower restoring the same image converges on them
	// too. Old manifests carry 0, preserving their historical behavior.
	db.eng.SetVersion(img.Manifest.EngineVersion)
	return nil
}

// Engine exposes the recovered engine (views, document, metrics). Mutate
// it only through Apply/ApplyCtx/AddView, or the log will not know.
func (db *DB) Engine() *core.Engine { return db.eng }

// Stats returns what recovery did when this DB was opened.
func (db *DB) Stats() RecoveryStats { return db.stats }

// LastLSN returns the sequence number of the last journaled record.
func (db *DB) LastLSN() uint64 { return db.log.LastLSN() }

// HasView reports whether a view with this name is already managed —
// recovered from the checkpoint or the log, or added this session.
func (db *DB) HasView(name string) bool { _, ok := db.sources[name]; return ok }

// Dir returns the data directory.
func (db *DB) Dir() string { return db.dir }

func validViewName(name string) error {
	if name == "" {
		return fmt.Errorf("wal: empty view name")
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-':
		default:
			return fmt.Errorf("wal: view name %q: only letters, digits, '_' and '-' are allowed (it names a checkpoint file)", name)
		}
	}
	return nil
}

func encodeViewRecord(name, src string) []byte {
	payload := make([]byte, 0, 1+len(name)+1+len(src))
	payload = append(payload, recView)
	payload = append(payload, name...)
	payload = append(payload, 0)
	return append(payload, src...)
}

func decodeViewRecord(payload []byte) (name, src string, err error) {
	body := payload[1:]
	i := bytes.IndexByte(body, 0)
	if i < 0 {
		return "", "", fmt.Errorf("wal: view record without separator")
	}
	return string(body[:i]), string(body[i+1:]), nil
}

// AddView registers and materializes a view, journaling the registration
// first so recovery re-creates it at the same point in the statement
// sequence.
func (db *DB) AddView(name, patternSrc string) (*core.ManagedView, error) {
	if err := validViewName(name); err != nil {
		return nil, err
	}
	if _, dup := db.sources[name]; dup {
		return nil, fmt.Errorf("wal: view %q already exists", name)
	}
	p, err := pattern.Parse(patternSrc)
	if err != nil {
		return nil, err
	}
	if len(p.StoredIndexes()) == 0 {
		return nil, fmt.Errorf("wal: view %s stores nothing", name)
	}
	if _, err := db.log.Append(encodeViewRecord(name, patternSrc)); err != nil {
		return nil, err
	}
	db.sinceCkpt++
	mv, err := db.eng.AddView(name, p)
	if err != nil {
		return nil, err
	}
	db.sources[name] = patternSrc
	db.order = append(db.order, name)
	return mv, nil
}

// Apply journals and applies one update statement (write-ahead order is
// enforced inside the engine), then auto-checkpoints if the configured
// record budget is used up.
func (db *DB) Apply(st *update.Statement) (*core.Report, error) {
	return db.ApplyCtx(context.Background(), st)
}

// ApplyCtx is Apply with cancellation, under ApplyStatementCtx's contract.
func (db *DB) ApplyCtx(ctx context.Context, st *update.Statement) (*core.Report, error) {
	rep, err := db.eng.ApplyStatementCtx(ctx, st)
	if err != nil {
		return rep, err
	}
	if db.opts.CheckpointEvery > 0 && db.sinceCkpt >= db.opts.CheckpointEvery {
		if err := db.Checkpoint(); err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// ApplyBatchCtx journals every constituent statement of a translated batch
// — write-ahead, riding the group-commit window, in statement order so
// replay (always per-statement) reproduces the same sequence — and then
// applies the plan's combined units through the engine, one propagation
// pass per unit.
//
// If journaling fails partway, the batch degrades to what the durable log
// will replay: the already-journaled prefix is applied per-statement from
// the plan's pre-resolved PULs, and the journal error is returned along
// with the number of statements whose effects landed. Live state and
// recovered state therefore never diverge, whichever side of the failure a
// statement fell on.
func (db *DB) ApplyBatchCtx(ctx context.Context, plan *pulopt.BatchPlan) (*core.Report, int, error) {
	journaled := 0
	var jerr error
	for _, st := range plan.Statements {
		if jerr = db.journal(st); jerr != nil {
			break
		}
		journaled++
	}
	if jerr != nil {
		rep := &core.Report{}
		applied := 0
		for _, pul := range plan.PerStatement[:journaled] {
			prep, err := db.eng.ApplyPULCtx(ctx, pul)
			if err != nil {
				return rep, applied, err
			}
			applied++
			core.MergeBatchReport(rep, prep)
		}
		return rep, applied, jerr
	}
	rep, applied, err := db.eng.ApplyBatchCtx(ctx, plan.Units)
	if err != nil {
		return rep, applied, err
	}
	if db.opts.CheckpointEvery > 0 && db.sinceCkpt >= db.opts.CheckpointEvery {
		if err := db.Checkpoint(); err != nil {
			return rep, applied, err
		}
	}
	return rep, applied, nil
}

// Sync forces the group-commit buffer to disk — the SyncInterval/SyncNever
// caller's explicit durability point.
func (db *DB) Sync() error { return db.log.Sync() }

// Checkpoint captures the engine (document plus every view) at the current
// LSN, then rotates the log and truncates the segments the checkpoint
// covers. Old checkpoints beyond Options.KeepCheckpoints are pruned.
func (db *DB) Checkpoint() error {
	if err := db.log.Sync(); err != nil {
		return err
	}
	lsn := db.log.LastLSN()
	if lsn == db.lastCkpt.Load() {
		return nil // nothing journaled since the last checkpoint
	}
	// A same-named directory can only be an invalid leftover: a valid one
	// would have been chosen at Open, making lastCkptLSN == lsn above.
	if err := db.fs.RemoveAll(filepath.Join(db.dir, ckptName(lsn))); err != nil {
		return err
	}
	if err := writeCheckpoint(db.fs, db.m, db.dir, db.eng, db.sources, lsn); err != nil {
		return err
	}
	db.lastCkpt.Store(lsn)
	db.sinceCkpt = 0
	if err := pruneCheckpoints(db.fs, db.dir, db.opts.KeepCheckpoints); err != nil {
		return err
	}
	// Truncate behind the OLDEST surviving checkpoint, not the one just
	// written: if the newest turns out corrupt at recovery, the fallback
	// checkpoint still needs every record after its own LSN to reach the
	// tip.
	kept, err := listCheckpoints(db.fs, db.dir)
	if err != nil {
		return err
	}
	horizon := lsn
	if len(kept) > 0 && kept[0] < horizon {
		horizon = kept[0]
	}
	// An active follower stream pins the log suffix it is still reading:
	// truncating past a pinned LSN would turn an in-flight tail into a
	// mid-stream hole. Expired pins are dropped — a follower that stalls
	// past the TTL falls back to snapshot-first catch-up instead of
	// holding segments forever.
	if floor, ok := db.pinFloor(); ok && floor <= horizon {
		if floor == 0 {
			return nil
		}
		horizon = floor - 1
	}
	return db.log.RotateAndTruncate(horizon)
}

// Close syncs and closes the log. The checkpoint state on disk is left as
// is — Open replays the tail.
func (db *DB) Close() error {
	if db.log == nil {
		return nil
	}
	return db.log.Close()
}
