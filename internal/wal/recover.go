package wal

import (
	"xivm/internal/pattern"
	"xivm/internal/update"
)

// RecoveryStats reports what Open did to reach a consistent state.
type RecoveryStats struct {
	// CheckpointLSN is the LSN of the checkpoint recovery started from.
	CheckpointLSN uint64
	// Replayed counts log records whose effect was re-applied.
	Replayed int
	// Skipped counts log records recovery could not or need not apply:
	// unparseable payloads and statements the engine rejected. Both fail
	// deterministically — they had no effect originally either.
	Skipped int
	// TruncatedBytes is the torn tail cut from the log before replay.
	TruncatedBytes int64
	// BadCheckpoints counts checkpoints rejected before a valid one loaded.
	BadCheckpoints int
	// Compacted reports that the pulopt-compacted replay path ran (rather
	// than aborting to the eager path); CompactedOps is how many elementary
	// operations the reduction rules removed from the tail.
	Compacted    bool
	CompactedOps int
}

// replay re-applies the log suffix after the checkpoint. With compaction
// enabled it first tries the pulopt path, which must prove itself sound on
// a scratch document before the real engine is touched; any doubt falls
// back to the eager statement-by-statement path.
func (db *DB) replay(from uint64) error {
	db.replaying = true
	defer func() { db.replaying = false }()
	if db.opts.Compact {
		done, err := db.replayCompacted(from)
		if err != nil {
			return err
		}
		if done {
			return nil
		}
	}
	return db.replayEager(from)
}

// replayEager re-runs every surviving record through the engine, exactly as
// it ran originally.
func (db *DB) replayEager(from uint64) error {
	return db.log.Replay(from, func(lsn uint64, payload []byte) error {
		db.applyRecord(payload)
		return nil
	})
}

// applyRecord applies one log record during replay. Failures are counted
// and skipped, never fatal: a record that fails to parse or that the engine
// rejects failed identically when it was first journaled (parsing and
// target resolution are deterministic), so skipping reproduces the original
// outcome.
func (db *DB) applyRecord(payload []byte) {
	if len(payload) == 0 {
		db.skipRecord()
		return
	}
	switch payload[0] {
	case recStatement:
		st, err := update.Parse(string(payload[1:]))
		if err != nil {
			db.skipRecord()
			return
		}
		if _, err := db.eng.ApplyStatement(st); err != nil {
			db.skipRecord()
			return
		}
	case recView:
		name, src, err := decodeViewRecord(payload)
		if err != nil {
			db.skipRecord()
			return
		}
		p, err := pattern.Parse(src)
		if err != nil {
			db.skipRecord()
			return
		}
		if _, err := db.eng.AddView(name, p); err != nil {
			db.skipRecord()
			return
		}
		db.sources[name] = src
		db.order = append(db.order, name)
	default:
		db.skipRecord()
		return
	}
	db.stats.Replayed++
	db.m.recReplayed.Inc()
}

func (db *DB) skipRecord() {
	db.stats.Skipped++
	db.m.recSkipped.Inc()
}
