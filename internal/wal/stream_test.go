package wal

import (
	"bytes"
	"testing"
	"time"

	"xivm/internal/algebra"
	"xivm/internal/core"
	"xivm/internal/obs"
	"xivm/internal/xmark"
)

// streamTestDB builds a durable DB with two XMark views, small segments (so
// multi-segment reads are exercised), and the given statements applied.
func streamTestDB(t *testing.T, stmts []string) *DB {
	t.Helper()
	db, err := Create(t.TempDir(), []byte(xmark.GenerateSmall(1)), Options{
		Metrics:      obs.New(),
		SegmentBytes: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	for _, name := range []string{"Q1", "Q2"} {
		if _, err := db.AddView(name, xmark.View(name).String()); err != nil {
			t.Fatalf("add view %s: %v", name, err)
		}
	}
	applyAll(t, db, stmts)
	return db
}

func TestReplFramesRoundTrip(t *testing.T) {
	db := streamTestDB(t, testStatements)
	last := db.LastLSN()
	if last == 0 {
		t.Fatal("no records journaled")
	}

	// Read everything from LSN 1 in bounded chunks; the concatenated decode
	// must reproduce every record in order.
	var recs []Record
	for from := uint64(1); from <= last; {
		frames, next, err := db.ReplFrames("", from, 256)
		if err != nil {
			t.Fatalf("ReplFrames(%d): %v", from, err)
		}
		if next <= from {
			t.Fatalf("ReplFrames(%d): next %d did not advance", from, next)
		}
		got, err := DecodeFrames(frames, from)
		if err != nil {
			t.Fatalf("DecodeFrames(%d): %v", from, err)
		}
		recs = append(recs, got...)
		from = next
	}
	if uint64(len(recs)) != last {
		t.Fatalf("decoded %d records, want %d", len(recs), last)
	}
	// The first records are the two view registrations, then the statements.
	if recs[0].Kind != RecordView || recs[0].ViewName != "Q1" {
		t.Fatalf("record 1 = %+v, want view Q1", recs[0])
	}
	for i, r := range recs {
		if r.LSN != uint64(i+1) {
			t.Fatalf("record %d has LSN %d", i, r.LSN)
		}
	}
	nstmt := 0
	for _, r := range recs {
		if r.Kind == RecordStatement {
			nstmt++
		}
	}
	if nstmt != len(testStatements) {
		t.Fatalf("decoded %d statements, want %d", nstmt, len(testStatements))
	}
}

func TestReplFramesCaughtUp(t *testing.T) {
	db := streamTestDB(t, testStatements)
	last := db.LastLSN()
	frames, next, err := db.ReplFrames("", last+1, 0)
	if err != nil {
		t.Fatalf("ReplFrames past tip: %v", err)
	}
	if len(frames) != 0 || next != last+1 {
		t.Fatalf("past tip: got %d bytes, next %d (want empty, %d)", len(frames), next, last+1)
	}
}

func TestDecodeFramesRejectsCorruption(t *testing.T) {
	db := streamTestDB(t, testStatements)
	frames, _, err := db.ReplFrames("", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeFrames(frames, 1); err != nil {
		t.Fatalf("clean decode: %v", err)
	}
	// Any flipped bit — header or payload — must fail the whole read.
	for _, off := range []int{0, 5, 9, frameHeader + 1, len(frames) - 1} {
		bad := append([]byte(nil), frames...)
		bad[off] ^= 0x40
		if _, err := DecodeFrames(bad, 1); err == nil {
			t.Fatalf("corruption at offset %d decoded cleanly", off)
		}
	}
	// A truncated tail (torn network read) must fail too, not part-apply.
	if _, err := DecodeFrames(frames[:len(frames)-3], 1); err == nil {
		t.Fatal("torn tail decoded cleanly")
	}
	// Wrong starting LSN is a discontinuity.
	if _, err := DecodeFrames(frames, 2); err == nil {
		t.Fatal("LSN discontinuity decoded cleanly")
	}
}

func TestReplFramesTruncated(t *testing.T) {
	db := streamTestDB(t, testStatements)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Age the log past the checkpoint twice so pruning truncates the prefix.
	applyAll(t, db, testStatements)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	applyAll(t, db, testStatements)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.ReplFrames("", 1, 0); err != ErrLSNTruncated {
		t.Fatalf("ReplFrames(1) after truncation: %v, want ErrLSNTruncated", err)
	}
	// The snapshot fallback must cover the truncated prefix.
	img, err := db.ReplImageNow()
	if err != nil {
		t.Fatal(err)
	}
	if img.Manifest.LSN == 0 {
		t.Fatal("snapshot image at LSN 0")
	}
	if _, _, err := db.ReplFrames("", img.Manifest.LSN+1, 0); err != nil {
		t.Fatalf("stream resumes after snapshot: %v", err)
	}
}

func TestReplPinBlocksTruncation(t *testing.T) {
	db := streamTestDB(t, testStatements)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// A follower pinned at LSN 1 keeps the whole log alive across the
	// checkpoints that would otherwise truncate it.
	if _, _, err := db.ReplFrames("lagger", 1, 64); err != nil {
		t.Fatalf("pinning read: %v", err)
	}
	applyAll(t, db, testStatements)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	applyAll(t, db, testStatements)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.ReplFrames("lagger", 1, 0); err != nil {
		t.Fatalf("pinned suffix truncated anyway: %v", err)
	}
	st := db.ReplStatusNow()
	if st.Followers != 1 {
		t.Fatalf("followers = %d, want 1", st.Followers)
	}

	// Once the pin expires the next checkpoint may truncate; the stream then
	// reports the typed snapshot-required error instead of a raw miss. The
	// expiry is stamped at read time, so refresh the pin under a tiny TTL.
	old := pinTTL
	pinTTL = time.Nanosecond
	defer func() { pinTTL = old }()
	if _, _, err := db.ReplFrames("lagger", 1, 64); err != nil {
		t.Fatalf("refreshing pin: %v", err)
	}
	time.Sleep(time.Millisecond)
	applyAll(t, db, testStatements)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.ReplFrames("lagger", 1, 0); err != ErrLSNTruncated {
		t.Fatalf("after pin expiry: %v, want ErrLSNTruncated", err)
	}
}

func TestReplImageRestore(t *testing.T) {
	db := streamTestDB(t, testStatements)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	img, err := db.ReplImageNow()
	if err != nil {
		t.Fatal(err)
	}
	// Re-verify through the public constructor, as a follower would after
	// pulling the image over the network.
	img2, err := NewReplImage(img.RawManifest, img.DocXML, img.Ords, img.Views)
	if err != nil {
		t.Fatalf("NewReplImage: %v", err)
	}
	eng, err := img2.Restore()
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if got, want := eng.Doc.String(), db.Engine().Doc.String(); got != want {
		t.Fatal("restored document differs from live engine")
	}
	// ID-exact restore: the ordinal stream reproduces the live Dewey space.
	if !bytes.Equal(eng.Doc.EncodeOrds(), db.Engine().Doc.EncodeOrds()) {
		t.Fatal("restored document's ID space differs from the live engine")
	}
	if got, want := eng.Version(), db.Engine().Version(); got != want {
		t.Fatalf("restored version %d, want %d", got, want)
	}
	for _, mv := range db.Engine().Views {
		var rv *core.ManagedView
		for _, cand := range eng.Views {
			if cand.Name == mv.Name {
				rv = cand
			}
		}
		if rv == nil {
			t.Fatalf("restored engine missing view %s", mv.Name)
		}
		if !rv.View.EqualRows(algebra.Materialize(eng.Doc, rv.Pattern)) {
			t.Fatalf("restored view %s diverges from fresh evaluation", mv.Name)
		}
	}

	// Tampering with any shipped byte must be caught by verification.
	badDoc := append([]byte(nil), img.DocXML...)
	badDoc[len(badDoc)/2] ^= 1
	if _, err := NewReplImage(img.RawManifest, badDoc, img.Ords, img.Views); err == nil {
		t.Fatal("tampered document verified cleanly")
	}
	badOrds := append([]byte(nil), img.Ords...)
	badOrds[len(badOrds)/2] ^= 1
	if _, err := NewReplImage(img.RawManifest, img.DocXML, badOrds, img.Views); err == nil {
		t.Fatal("tampered ordinal stream verified cleanly")
	}
	for name, data := range img.Views {
		bad := append([]byte(nil), data...)
		bad[len(bad)/2] ^= 1
		views := map[string][]byte{name: bad}
		for n, d := range img.Views {
			if n != name {
				views[n] = d
			}
		}
		if _, err := NewReplImage(img.RawManifest, img.DocXML, img.Ords, views); err == nil {
			t.Fatalf("tampered view %s verified cleanly", name)
		}
	}
}

// TestCompactRecoveryVersionMatchesEager pins the version-determinism
// contract replication depends on: recovering the same log with and without
// compaction must land the engine on the same version number.
func TestCompactRecoveryVersionMatchesEager(t *testing.T) {
	dir := t.TempDir()
	db, err := Create(dir, []byte(xmark.GenerateSmall(1)), Options{Metrics: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.AddView("Q1", xmark.View("Q1").String()); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Insert-then-delete churn (compactable) plus a replace (version +2).
	applyAll(t, db, []string{
		`insert <person id="pz"><name>Zed</name></person> into /site/people`,
		`for $x in /site/people/person insert <phone>+1 555 0000</phone>`,
		`delete /site/people/person/phone`,
		`replace /site/people/person/name with <name>Renamed</name>`,
	})
	want := db.Engine().Version()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	eager, err := Open(dir, Options{Metrics: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	if got := eager.Engine().Version(); got != want {
		t.Fatalf("eager recovery version %d, want %d", got, want)
	}
	eager.Close()

	compacted, err := Open(dir, Options{Metrics: obs.New(), Compact: true})
	if err != nil {
		t.Fatal(err)
	}
	defer compacted.Close()
	if got := compacted.Engine().Version(); got != want {
		t.Fatalf("compacted recovery version %d, want %d", got, want)
	}
	checkViews(t, compacted)
}
