package wal

import (
	"fmt"
	"path/filepath"
	"strings"
)

// Multi-tenant directory layout. A tenant root holds one database directory
// per tenant:
//
//	<root>/
//	  alpha/            tenant "alpha": checkpoints + wal/ (a normal DB dir)
//	  beta/             tenant "beta"
//	  .drop-gamma/      tombstone: a drop that was interrupted mid-delete
//
// The existence rule making create and drop crash-safe is:
//
//	a tenant exists  ⇔  <root>/<name> holds at least one checkpoint
//
// Create publishes its initial checkpoint atomically (temp dir + rename),
// so a process killed mid-create leaves a directory with no checkpoint —
// not a tenant, and ScanTenantRoot removes the debris. Drop first renames
// the directory to a ".drop-" tombstone (one atomic step: after it the
// tenant no longer exists) and then deletes the tombstone; a kill between
// the two leaves only the tombstone, which ScanTenantRoot finishes
// deleting on the next open.
const dropPrefix = ".drop-"

// maxTenantName bounds tenant names; they become directory names and URL
// path segments.
const maxTenantName = 64

// ValidTenantName reports whether name can name a tenant: nonempty, at
// most 64 bytes, letters, digits, '_' and '-' only (it is both a directory
// name and a URL path segment, and must never collide with a tombstone or
// hidden file).
func ValidTenantName(name string) error {
	if name == "" {
		return fmt.Errorf("wal: empty tenant name")
	}
	if len(name) > maxTenantName {
		return fmt.Errorf("wal: tenant name longer than %d bytes", maxTenantName)
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-':
		default:
			return fmt.Errorf("wal: tenant name %q: only letters, digits, '_' and '-' are allowed", name)
		}
	}
	return nil
}

// TenantDir returns the database directory of a tenant under root.
func TenantDir(root, name string) string { return filepath.Join(root, name) }

// IsDatabase reports whether dir holds a database (at least one published
// checkpoint). fsys nil selects the OS filesystem.
func IsDatabase(fsys FS, dir string) (bool, error) {
	if fsys == nil {
		fsys = OSFS
	}
	lsns, err := listCheckpoints(fsys, dir)
	if err != nil {
		return false, err
	}
	return len(lsns) > 0, nil
}

// ScanTenantRoot lists the tenants surviving under root and finishes any
// interrupted create or drop it finds: ".drop-" tombstones are deleted, and
// directories that never published a checkpoint (a create killed before its
// initial checkpoint) are removed. It creates root if missing and errors if
// root itself is a database directory (the pre-multi-tenant flat layout) —
// move it to <root>/<name> to serve it as a tenant. The removed list names
// the debris cleaned up, for logging. fsys nil selects the OS filesystem.
func ScanTenantRoot(fsys FS, root string) (tenants, removed []string, err error) {
	if fsys == nil {
		fsys = OSFS
	}
	if err := fsys.MkdirAll(root, 0o755); err != nil {
		return nil, nil, err
	}
	if isDB, err := IsDatabase(fsys, root); err != nil {
		return nil, nil, err
	} else if isDB {
		return nil, nil, fmt.Errorf("wal: %s is a single-database directory, not a tenant root (move it to %s to serve it as a tenant)", root, filepath.Join(root, "default"))
	}
	entries, err := fsys.ReadDir(root)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() {
			continue
		}
		if strings.HasPrefix(name, dropPrefix) {
			if err := fsys.RemoveAll(filepath.Join(root, name)); err != nil {
				return nil, nil, fmt.Errorf("wal: finishing interrupted drop of %s: %w", name, err)
			}
			removed = append(removed, name)
			continue
		}
		if ValidTenantName(name) != nil {
			continue // foreign directory: not ours to touch
		}
		dir := filepath.Join(root, name)
		isDB, derr := IsDatabase(fsys, dir)
		if derr != nil {
			return nil, nil, derr
		}
		if !isDB {
			// A tenant directory without a checkpoint can only be a create
			// that was killed before publishing its initial checkpoint: the
			// tenant never existed. Remove the debris.
			if err := fsys.RemoveAll(dir); err != nil {
				return nil, nil, fmt.Errorf("wal: removing partial create %s: %w", name, err)
			}
			removed = append(removed, name)
			continue
		}
		tenants = append(tenants, name)
	}
	return tenants, removed, nil
}

// DropTenant removes a tenant's database directory crash-safely: the
// directory is first renamed to a tombstone (the atomic point of no return
// — after it the tenant no longer exists, whatever happens next) and the
// tombstone is then deleted. A crash between the two steps leaves only the
// tombstone for ScanTenantRoot to clean up. The tenant's DB must already be
// closed. fsys nil selects the OS filesystem.
func DropTenant(fsys FS, root, name string) error {
	if fsys == nil {
		fsys = OSFS
	}
	if err := ValidTenantName(name); err != nil {
		return err
	}
	dir := filepath.Join(root, name)
	tomb := filepath.Join(root, dropPrefix+name)
	// A leftover tombstone from an earlier interrupted drop of a same-named
	// tenant would make the rename fail on some platforms; clear it first.
	if err := fsys.RemoveAll(tomb); err != nil {
		return err
	}
	if err := fsys.Rename(dir, tomb); err != nil {
		return err
	}
	if err := fsys.SyncDir(root); err != nil {
		return err
	}
	return fsys.RemoveAll(tomb)
}
