package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"sort"
	"time"

	"xivm/internal/core"
	"xivm/internal/pattern"
	"xivm/internal/store"
	"xivm/internal/xmltree"
)

// This file is the log-shipping surface of the WAL: a leader reads raw
// frames out of its own segment files to ship to followers, and a follower
// re-verifies and decodes them before replay. Frames travel exactly as they
// sit on disk — same layout, same CRC — so the follower's DecodeFrames pass
// is the identical torn/corrupt check recovery runs, applied to the network
// instead of the disk.

// ErrLSNTruncated reports that the log no longer holds the requested
// record: checkpointing truncated the segments that carried it. The caller
// must fall back to snapshot-first catch-up from the newest checkpoint.
var ErrLSNTruncated = errors.New("wal: requested lsn truncated by checkpointing")

// Record kinds, re-exported for the replication layer. The byte values are
// the on-disk payload tags.
const (
	// RecordStatement is a canonical update statement (update.Format).
	RecordStatement = recStatement
	// RecordView is a view registration (name + pattern source).
	RecordView = recView
)

// Record is one decoded log record.
type Record struct {
	LSN  uint64
	Kind byte
	// Statement is the canonical statement text when Kind is
	// RecordStatement.
	Statement string
	// ViewName and ViewPattern are set when Kind is RecordView.
	ViewName    string
	ViewPattern string
}

// ParseRecord decodes one frame payload into a Record.
func ParseRecord(lsn uint64, payload []byte) (Record, error) {
	if len(payload) == 0 {
		return Record{}, fmt.Errorf("wal: record %d has an empty payload", lsn)
	}
	switch payload[0] {
	case recStatement:
		return Record{LSN: lsn, Kind: RecordStatement, Statement: string(payload[1:])}, nil
	case recView:
		name, src, err := decodeViewRecord(payload)
		if err != nil {
			return Record{}, fmt.Errorf("wal: record %d: %w", lsn, err)
		}
		return Record{LSN: lsn, Kind: RecordView, ViewName: name, ViewPattern: src}, nil
	}
	return Record{}, fmt.Errorf("wal: record %d has unknown tag %q", lsn, payload[0])
}

// DecodeFrames validates and decodes a concatenation of wire frames whose
// first record must carry LSN from. Unlike the recovery scan — which cuts a
// torn tail and keeps the prefix — any violation here (short frame, bad
// length, bad CRC, LSN discontinuity, unknown tag) is an error: a follower
// received these bytes over a network, and a damaged stream must be
// rejected and re-fetched, never partially applied.
func DecodeFrames(data []byte, from uint64) ([]Record, error) {
	var recs []Record
	pos := 0
	lsn := from
	for pos < len(data) {
		rest := data[pos:]
		if len(rest) < frameHeader {
			return nil, fmt.Errorf("wal: stream ends mid-header at record %d", lsn)
		}
		length := int(binary.LittleEndian.Uint32(rest[0:4]))
		if length > maxPayload || frameHeader+length > len(rest) {
			return nil, fmt.Errorf("wal: stream frame %d declares %d payload bytes beyond the data", lsn, length)
		}
		if crc32.Checksum(rest[8:frameHeader+length], castagnoli) != binary.LittleEndian.Uint32(rest[4:8]) {
			return nil, fmt.Errorf("wal: stream frame %d fails its checksum", lsn)
		}
		if got := binary.LittleEndian.Uint64(rest[8:16]); got != lsn {
			return nil, fmt.Errorf("wal: stream frame carries lsn %d, want %d", got, lsn)
		}
		rec, err := ParseRecord(lsn, rest[frameHeader:frameHeader+length])
		if err != nil {
			return nil, err
		}
		recs = append(recs, rec)
		pos += frameHeader + length
		lsn++
	}
	return recs, nil
}

// ReadSegmentFrames reads raw wire-ready frames with LSN >= from straight
// from the segment files in walDir, up to roughly maxBytes (at least one
// frame when any is available). It returns the concatenated frame bytes and
// the LSN the next read should start from.
//
// Unlike Log methods this is safe to call concurrently with the owning
// writer: segment files are append-only and every frame is CRC-framed, so a
// concurrent in-flight append at the tail simply fails validation and ends
// the scan — the follower picks it up on the next poll. A hole in the
// chain, or a from older than the oldest surviving segment, returns
// ErrLSNTruncated; callers must handle the caught-up case (from beyond the
// last record) before calling, because an empty directory is
// indistinguishable from a fully truncated one here.
func ReadSegmentFrames(fsys FS, walDir string, from uint64, maxBytes int) ([]byte, uint64, error) {
	if maxBytes <= 0 {
		maxBytes = 1 << 20
	}
	entries, err := fsys.ReadDir(walDir)
	if err != nil {
		return nil, 0, err
	}
	var firsts []uint64
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if first, ok := parseSegName(e.Name()); ok {
			firsts = append(firsts, first)
		}
	}
	sort.Slice(firsts, func(i, j int) bool { return firsts[i] < firsts[j] })
	if len(firsts) == 0 || from < firsts[0] {
		return nil, 0, ErrLSNTruncated
	}
	var out []byte
	next := from
	for _, first := range firsts {
		if first > next {
			// Hole in the chain before the record we need: the covering
			// segment was removed between the listing and now.
			if len(out) > 0 {
				return out, next, nil
			}
			return nil, 0, ErrLSNTruncated
		}
		data, err := fsys.ReadFile(filepath.Join(walDir, segName(first)))
		if err != nil {
			// Pruned between the listing and the read.
			if len(out) > 0 {
				return out, next, nil
			}
			return nil, 0, ErrLSNTruncated
		}
		valid, count := scanFrames(data, first)
		if count == 0 || first+count-1 < next {
			continue // empty trailing segment, or every record already shipped
		}
		// Skip frames below next, then copy whole frames until the budget.
		pos := int64(0)
		lsn := first
		for pos < valid {
			length := int64(binary.LittleEndian.Uint32(data[pos : pos+4]))
			end := pos + frameHeader + length
			if lsn >= next {
				if len(out) > 0 && len(out)+int(end-pos) > maxBytes {
					return out, next, nil
				}
				out = append(out, data[pos:end]...)
				next = lsn + 1
			}
			pos = end
			lsn++
		}
		if len(out) >= maxBytes {
			return out, next, nil
		}
	}
	return out, next, nil
}

// ReplImage is a checkpoint image in wire-transportable form: the raw
// manifest bytes exactly as written (the follower re-verifies them, and the
// hashes inside bind the rest), the document XML, its ordinal stream (the
// live Dewey-ID space, see xmltree.EncodeOrds), and each view's encoded
// snapshot.
type ReplImage struct {
	RawManifest []byte
	Manifest    *store.Manifest
	DocXML      []byte
	Ords        []byte
	Views       map[string][]byte
}

// NewReplImage validates a transported checkpoint image with exactly the
// checks recovery applies to an on-disk one: manifest decode, document and
// ordinal-stream hash/size, and every view's hash/size, with no view
// missing.
func NewReplImage(rawManifest, docXML, ords []byte, views map[string][]byte) (*ReplImage, error) {
	man, err := store.DecodeManifest(rawManifest)
	if err != nil {
		return nil, err
	}
	if int64(len(docXML)) != man.DocBytes || store.HashBytes(docXML) != man.DocHash {
		return nil, fmt.Errorf("wal: repl image at lsn %d: document fails its hash", man.LSN)
	}
	if int64(len(ords)) != man.OrdsBytes || store.HashBytes(ords) != man.OrdsHash {
		return nil, fmt.Errorf("wal: repl image at lsn %d: ordinal stream fails its hash", man.LSN)
	}
	img := &ReplImage{RawManifest: rawManifest, Manifest: man, DocXML: docXML, Ords: ords, Views: make(map[string][]byte, len(man.Views))}
	for _, v := range man.Views {
		snap, ok := views[v.Name]
		if !ok {
			return nil, fmt.Errorf("wal: repl image at lsn %d: view %s missing", man.LSN, v.Name)
		}
		if int64(len(snap)) != v.Bytes || store.HashBytes(snap) != v.Hash {
			return nil, fmt.Errorf("wal: repl image at lsn %d: view %s fails its hash", man.LSN, v.Name)
		}
		img.Views[v.Name] = snap
	}
	return img, nil
}

// Restore builds a fresh engine from the image, exactly as crash recovery
// would: parse the document, re-impose the recorded ordinal stream (so the
// snapshot rows' IDs resolve and the follower serves the leader's exact
// node IDs), install every view from its snapshot without re-evaluating
// patterns, and seed the version counter from the manifest so subsequent
// replay reproduces the leader's version numbers.
func (img *ReplImage) Restore(opts ...core.Option) (*core.Engine, error) {
	doc, err := xmltree.ParseString(string(img.DocXML))
	if err != nil {
		return nil, fmt.Errorf("wal: repl image document: %w", err)
	}
	if err := doc.ApplyOrds(img.Ords); err != nil {
		return nil, fmt.Errorf("wal: repl image ordinal stream: %w", err)
	}
	eng := core.New(doc, opts...)
	for _, v := range img.Manifest.Views {
		p, err := pattern.Parse(v.Pattern)
		if err != nil {
			return nil, fmt.Errorf("wal: repl image view %s pattern: %w", v.Name, err)
		}
		rows, err := store.DecodeSnapshot(img.Views[v.Name])
		if err != nil {
			return nil, fmt.Errorf("wal: repl image view %s snapshot: %w", v.Name, err)
		}
		if _, err := eng.AddViewRows(v.Name, p, rows); err != nil {
			return nil, fmt.Errorf("wal: repl image view %s: %w", v.Name, err)
		}
	}
	eng.SetVersion(img.Manifest.EngineVersion)
	return eng, nil
}

// pinTTL is how long a follower pin protects the log suffix without being
// refreshed when Options.PinTTL is unset. A follower that stalls longer
// loses its pin and falls back to snapshot-first catch-up. Variable so tests
// can shrink it.
var pinTTL = 30 * time.Second

type followerPin struct {
	lsn     uint64
	expires time.Time
}

func (db *DB) pinTTLDur() time.Duration {
	if db.opts.PinTTL > 0 {
		return db.opts.PinTTL
	}
	return pinTTL
}

// ReplPin records (or refreshes) follower id's claim on records >= lsn.
// Safe to call from HTTP goroutines concurrently with the writer.
func (db *DB) ReplPin(id string, lsn uint64) {
	db.pinMu.Lock()
	db.pins[id] = followerPin{lsn: lsn, expires: time.Now().Add(db.pinTTLDur())}
	db.pinMu.Unlock()
}

// pinFloor returns the smallest unexpired pinned LSN, pruning expired pins.
func (db *DB) pinFloor() (uint64, bool) {
	db.pinMu.Lock()
	defer db.pinMu.Unlock()
	now := time.Now()
	floor, ok := uint64(0), false
	for id, p := range db.pins {
		if now.After(p.expires) {
			delete(db.pins, id)
			continue
		}
		if !ok || p.lsn < floor {
			floor, ok = p.lsn, true
		}
	}
	return floor, ok
}

// ReplFollowers returns the number of unexpired follower pins — the
// connected-follower gauge.
func (db *DB) ReplFollowers() int {
	db.pinMu.Lock()
	defer db.pinMu.Unlock()
	now := time.Now()
	for id, p := range db.pins {
		if now.After(p.expires) {
			delete(db.pins, id)
		}
	}
	return len(db.pins)
}

// ReplStatus is the leader's replication position.
type ReplStatus struct {
	// LastLSN is the last journaled record.
	LastLSN uint64
	// CheckpointLSN is the newest checkpoint — where snapshot-first
	// catch-up starts.
	CheckpointLSN uint64
	// Followers counts unexpired follower pins.
	Followers int
}

// ReplStatusNow reports the current position. Safe from HTTP goroutines.
func (db *DB) ReplStatusNow() ReplStatus {
	return ReplStatus{
		LastLSN:       db.log.LastLSN(),
		CheckpointLSN: db.lastCkpt.Load(),
		Followers:     db.ReplFollowers(),
	}
}

// ReplFrames pins follower id at from and reads up to maxBytes of raw
// frames starting there. A from beyond the tip returns no frames and
// next == from (the follower polls again); ErrLSNTruncated means the
// follower must re-snapshot. Safe from HTTP goroutines.
func (db *DB) ReplFrames(id string, from uint64, maxBytes int) ([]byte, uint64, error) {
	if from == 0 {
		from = 1
	}
	if id != "" {
		db.ReplPin(id, from)
	}
	if from > db.log.LastLSN() {
		return nil, from, nil
	}
	return ReadSegmentFrames(db.fs, db.walDir, from, maxBytes)
}

// ReplImageNow loads and verifies the newest checkpoint for shipping to a
// follower. It retries a few times because pruning can remove the
// checkpoint it is reading concurrently; with KeepCheckpoints >= 1 a fresh
// listing always has a newer one to fall back to. Safe from HTTP
// goroutines.
func (db *DB) ReplImageNow() (*ReplImage, error) {
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		lsns, err := listCheckpoints(db.fs, db.dir)
		if err != nil {
			return nil, err
		}
		if len(lsns) == 0 {
			return nil, fmt.Errorf("wal: %s holds no checkpoint", db.dir)
		}
		img, err := db.loadReplImage(lsns[len(lsns)-1])
		if err == nil {
			return img, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

func (db *DB) loadReplImage(lsn uint64) (*ReplImage, error) {
	base := filepath.Join(db.dir, ckptName(lsn))
	raw, err := db.fs.ReadFile(filepath.Join(base, "MANIFEST"))
	if err != nil {
		return nil, err
	}
	man, err := store.DecodeManifest(raw)
	if err != nil {
		return nil, err
	}
	doc, err := db.fs.ReadFile(filepath.Join(base, "doc.xml"))
	if err != nil {
		return nil, err
	}
	ords, err := db.fs.ReadFile(filepath.Join(base, "doc.ords"))
	if err != nil {
		return nil, err
	}
	views := make(map[string][]byte, len(man.Views))
	for _, v := range man.Views {
		snap, err := db.fs.ReadFile(filepath.Join(base, v.Name+".xivm"))
		if err != nil {
			return nil, err
		}
		views[v.Name] = snap
	}
	return NewReplImage(raw, doc, ords, views)
}
