package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"xivm/internal/core"
	"xivm/internal/store"
)

// Checkpoint directories live next to the wal directory as
// checkpoint-<lsn>; a trailing ".tmp" marks one still being written. The
// rename from tmp to final name is the commit point: a crash before it
// leaves only a tmp directory, which recovery ignores and Open sweeps away.
const (
	ckptPrefix = "checkpoint-"
	ckptTmpExt = ".tmp"
)

func ckptName(lsn uint64) string { return fmt.Sprintf("%s%016x", ckptPrefix, lsn) }

func parseCkptName(name string) (uint64, bool) {
	base, ok := strings.CutPrefix(name, ckptPrefix)
	if !ok || len(base) != 16 {
		return 0, false
	}
	var lsn uint64
	if _, err := fmt.Sscanf(base, "%016x", &lsn); err != nil {
		return 0, false
	}
	return lsn, true
}

// writeCheckpoint writes a complete checkpoint of the engine — the document
// as canonical XML plus every managed view via store.EncodeSnapshot, bound
// together by a hashed manifest — into dir/checkpoint-<lsn>, atomically:
// everything lands in a tmp directory, every file is fsynced, and a single
// rename publishes it.
func writeCheckpoint(fsys FS, m *walMetrics, dir string, eng *core.Engine, sources map[string]string, lsn uint64) error {
	final := filepath.Join(dir, ckptName(lsn))
	tmp := final + ckptTmpExt
	if err := fsys.RemoveAll(tmp); err != nil {
		return err
	}
	if err := fsys.MkdirAll(tmp, 0o755); err != nil {
		return err
	}
	var total int64
	writeFile := func(name string, data []byte) error {
		f, err := fsys.OpenFile(filepath.Join(tmp, name), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
		if err != nil {
			return err
		}
		if _, err := f.Write(data); err != nil {
			f.Close()
			return err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		m.fsyncCount.Inc()
		total += int64(len(data))
		return f.Close()
	}

	man := store.NewManifest(lsn)
	man.EngineVersion = eng.Version()
	doc := []byte(eng.Doc.String())
	man.SetDoc(doc)
	if err := writeFile("doc.xml", doc); err != nil {
		return err
	}
	// The ordinal stream makes restore ID-exact: a reparse of doc.xml plus
	// ApplyOrds reproduces the live engine's Dewey IDs byte for byte, so the
	// view snapshots below can carry the live rows as-is — and a restored
	// process (recovery or a replication follower) serves the same IDs the
	// live one does.
	ords := eng.Doc.EncodeOrds()
	man.SetOrds(ords)
	if err := writeFile("doc.ords", ords); err != nil {
		return err
	}
	for _, mv := range eng.Views {
		snap := store.EncodeSnapshot(store.NewMaterializedView(mv.Pattern, mv.View.Rows()))
		man.AddView(mv.Name, sources[mv.Name], snap)
		if err := writeFile(mv.Name+".xivm", snap); err != nil {
			return err
		}
	}
	// The manifest goes last: its presence implies every file it names was
	// already written and fsynced.
	if err := writeFile("MANIFEST", store.EncodeManifest(man)); err != nil {
		return err
	}
	if err := fsys.SyncDir(tmp); err != nil {
		return err
	}
	if err := fsys.Rename(tmp, final); err != nil {
		return err
	}
	if err := fsys.SyncDir(dir); err != nil {
		return err
	}
	m.ckptCount.Inc()
	m.ckptBytes.Add(total)
	return nil
}

// listCheckpoints returns the LSNs of the published checkpoints in dir,
// ascending. Tmp directories and foreign entries are ignored.
func listCheckpoints(fsys FS, dir string) ([]uint64, error) {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var lsns []uint64
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if lsn, ok := parseCkptName(e.Name()); ok {
			lsns = append(lsns, lsn)
		}
	}
	sort.Slice(lsns, func(i, j int) bool { return lsns[i] < lsns[j] })
	return lsns, nil
}

// checkpointImage is a loaded-and-verified checkpoint: the manifest, the
// document XML, its ordinal stream, and each view's snapshot bytes
// (hash-checked, not yet decoded).
type checkpointImage struct {
	Manifest *store.Manifest
	DocXML   []byte
	Ords     []byte
	Views    map[string][]byte
}

// loadCheckpoint reads the checkpoint at lsn and verifies every content
// hash before returning it. Any mismatch — torn manifest, bit-rotted file,
// missing view — is an error; the caller falls back to an older checkpoint.
func loadCheckpoint(fsys FS, dir string, lsn uint64) (*checkpointImage, error) {
	base := filepath.Join(dir, ckptName(lsn))
	raw, err := fsys.ReadFile(filepath.Join(base, "MANIFEST"))
	if err != nil {
		return nil, err
	}
	man, err := store.DecodeManifest(raw)
	if err != nil {
		return nil, err
	}
	if man.LSN != lsn {
		return nil, fmt.Errorf("wal: checkpoint %s declares lsn %d", ckptName(lsn), man.LSN)
	}
	doc, err := fsys.ReadFile(filepath.Join(base, "doc.xml"))
	if err != nil {
		return nil, err
	}
	if int64(len(doc)) != man.DocBytes || store.HashBytes(doc) != man.DocHash {
		return nil, fmt.Errorf("wal: checkpoint %s document fails its hash", ckptName(lsn))
	}
	ords, err := fsys.ReadFile(filepath.Join(base, "doc.ords"))
	if err != nil {
		return nil, err
	}
	if int64(len(ords)) != man.OrdsBytes || store.HashBytes(ords) != man.OrdsHash {
		return nil, fmt.Errorf("wal: checkpoint %s ordinal stream fails its hash", ckptName(lsn))
	}
	img := &checkpointImage{Manifest: man, DocXML: doc, Ords: ords, Views: make(map[string][]byte, len(man.Views))}
	for _, v := range man.Views {
		snap, err := fsys.ReadFile(filepath.Join(base, v.Name+".xivm"))
		if err != nil {
			return nil, err
		}
		if int64(len(snap)) != v.Bytes || store.HashBytes(snap) != v.Hash {
			return nil, fmt.Errorf("wal: checkpoint %s view %s fails its hash", ckptName(lsn), v.Name)
		}
		img.Views[v.Name] = snap
	}
	return img, nil
}

// pruneCheckpoints removes published checkpoints beyond the newest keep,
// and every leftover tmp directory.
func pruneCheckpoints(fsys FS, dir string, keep int) error {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), ckptPrefix) && strings.HasSuffix(e.Name(), ckptTmpExt) {
			if err := fsys.RemoveAll(filepath.Join(dir, e.Name())); err != nil {
				return err
			}
		}
	}
	lsns, err := listCheckpoints(fsys, dir)
	if err != nil {
		return err
	}
	for len(lsns) > keep {
		if err := fsys.RemoveAll(filepath.Join(dir, ckptName(lsns[0]))); err != nil {
			return err
		}
		lsns = lsns[1:]
	}
	return fsys.SyncDir(dir)
}
