package update

import (
	"strings"
	"testing"
)

// roundTripCases covers every statement kind and the syntactic variants
// that canonicalize away (for-bound insertion, let-prefixed paths).
var roundTripCases = []struct {
	name string
	src  string
	want string // canonical form; "" means src is already canonical
}{
	{"delete", `delete /site/people/person`, ""},
	{"delete-descendant", `delete //c//b`, ""},
	{"delete-wildcard", `delete /site/regions/*/item`, ""},
	{"delete-attr-pred", `delete //person[@id]`, ""},
	{"delete-text-pred", `delete //name[text()="x"]`, ""},
	{"delete-and-or", `delete /site/people/person[address and (phone or homepage)]`, ""},
	{"insert-forest", `insert <a><b/><b><c/></b></a> into /site/people`, ""},
	{"insert-two-trees", `insert <a/><b/> into /site`, ""},
	{"insert-attrs", `insert <person id="p9"><name>N</name></person> into /site/people`, ""},
	{"insert-text", `insert <phone>+33 555 0199</phone> into //person`, ""},
	{"insert-escapes", `insert <t>a &amp; b &lt; c</t> into /site`, ""},
	{"insert-copyof", `insert //a into //b`, ""},
	{"for-insert", `for $x in /site/people/person insert <phone>1</phone>`,
		`insert <phone>1</phone> into /site/people/person`},
	{"for-insert-into", `for $x in //p insert <q/> into $x`, `insert <q/> into //p`},
	{"let-delete", `let $c := doc("a") delete $c//b`, `delete //b`},
	{"replace", `replace //name with <name>x</name>`, ""},
	{"replace-forest", `replace /a/b with <b><c/></b><b/>`, ""},
	{"replace-pred", `replace //person[homepage]/homepage with <homepage>u</homepage>`, ""},
}

// TestFormatRoundTrip: Format output reparses to an equivalent statement,
// and formatting is a fixpoint (Format ∘ Parse ∘ Format = Format).
func TestFormatRoundTrip(t *testing.T) {
	for _, tc := range roundTripCases {
		t.Run(tc.name, func(t *testing.T) {
			st, err := Parse(tc.src)
			if err != nil {
				t.Fatal(err)
			}
			got := Format(st)
			want := tc.want
			if want == "" {
				want = tc.src
			}
			if got != want {
				t.Fatalf("Format = %q, want %q", got, want)
			}
			back, err := Parse(got)
			if err != nil {
				t.Fatalf("canonical form does not reparse: %v", err)
			}
			if !Equivalent(st, back) {
				t.Fatalf("reparsed statement differs:\n  src  %+v\n  back %+v", st, back)
			}
			if again := Format(back); again != got {
				t.Fatalf("Format not a fixpoint: %q then %q", got, again)
			}
		})
	}
}

func TestCanonical(t *testing.T) {
	st, err := Parse(`for $x in //item[mailbox] insert <mail/>`)
	if err != nil {
		t.Fatal(err)
	}
	canon, err := st.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if canon.Source != `insert <mail/> into //item[mailbox]` {
		t.Fatalf("canonical source %q", canon.Source)
	}
	if !Equivalent(st, canon) {
		t.Fatal("canonical statement not equivalent to original")
	}
}

func TestEquivalentDistinguishes(t *testing.T) {
	parse := func(s string) *Statement {
		st, err := Parse(s)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	base := parse(`insert <a/> into /site`)
	for _, other := range []string{
		`delete /site`,                  // kind differs
		`insert <a/> into /site/people`, // target differs
		`insert <b/> into /site`,        // forest differs
		`insert //a into /site`,         // copy-of vs forest
	} {
		if Equivalent(base, parse(other)) {
			t.Fatalf("Equivalent(%q, %q) = true", base.Source, other)
		}
	}
	a := parse(`insert //x into /site`)
	b := parse(`insert //y into /site`)
	if Equivalent(a, b) {
		t.Fatal("copy-of paths not compared")
	}
}

// TestParseErrorPaths pins the parser's rejection paths: each input must
// fail, and the error must carry the update: prefix with a hint of the
// cause.
func TestParseErrorPaths(t *testing.T) {
	cases := []struct {
		src  string
		hint string // substring the error must contain
	}{
		{``, "expected delete, insert, replace, for, or let"},
		{`upsert //a`, "expected delete, insert, replace, for, or let"},
		{`delete`, "expected path"},
		{`delete site`, "expected path"},
		{`insert <a/>`, "expected 'into'"},
		{`insert <a/> onto /site`, "expected 'into'"},
		{`insert <a> into /site`, "unbalanced XML fragment"},
		{`insert <a into /site`, "unterminated tag"},
		{`replace //a`, "expected 'with'"},
		{`replace //a with`, "expected XML fragment"},
		{`replace //a with b`, "expected XML fragment"},
		{`for $x insert <a/>`, "expected 'in'"},
		{`for x in //a insert <b/>`, "expected variable"},
		{`for $ in //a insert <b/>`, "empty variable name"},
		{`for $x in //a delete //b`, "expected 'insert'"},
		{`for $x in //a insert <b/> into $y`, "does not match loop variable"},
		{`let $c doc("a") delete $c//a`, "expected := in let clause"},
		{`let $c := dock("a") delete $c//a`, "expected doc(...) in let clause"},
		{`let $c := doc(a) delete $c//a`, "expected string literal"},
		{`let $c := doc("a delete $c//a`, "unterminated string literal"},
		{`let $c := doc("a" delete $c//a`, "expected ) after doc uri"},
		{`let $c := doc("a") delete $d//a`, "unknown variable"},
		{`delete //a extra`, "trailing input"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.src)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error containing %q", tc.src, tc.hint)
			continue
		}
		if !strings.HasPrefix(err.Error(), "update:") && !strings.Contains(err.Error(), tc.hint) {
			t.Errorf("Parse(%q) error %q, want hint %q", tc.src, err, tc.hint)
		}
		if !strings.Contains(err.Error(), tc.hint) {
			t.Errorf("Parse(%q) error %q missing hint %q", tc.src, err, tc.hint)
		}
	}
}

// FuzzFormatRoundTrip: any statement the parser accepts must format to a
// canonical text that reparses to an equivalent statement.
func FuzzFormatRoundTrip(f *testing.F) {
	for _, tc := range roundTripCases {
		f.Add(tc.src)
	}
	f.Fuzz(func(t *testing.T, src string) {
		st, err := Parse(src)
		if err != nil {
			return
		}
		canon := Format(st)
		back, err := Parse(canon)
		if err != nil {
			t.Fatalf("Format(%q) = %q does not reparse: %v", src, canon, err)
		}
		if !Equivalent(st, back) {
			t.Fatalf("round trip of %q via %q lost information", src, canon)
		}
		if again := Format(back); again != canon {
			t.Fatalf("Format not a fixpoint: %q then %q", canon, again)
		}
	})
}
