package update

import (
	"fmt"
	"strings"
)

// Statement serialization: every Statement renders to a canonical textual
// form that Parse accepts and that re-parses to an equivalent statement.
// The canonical form is what the write-ahead log (internal/wal) journals —
// a replayable, human-auditable record — so its stability is load-bearing:
// changing it invalidates existing logs.
//
// Canonicalization flattens syntactic sugar: the for-bound insertion form
// `for $x in q insert F into $x` renders as `insert F into q` (the two
// parse to identical statements), and a `let $d := doc(…)` prefix is
// dropped (paths are stored resolved).

// Format renders the statement in canonical form. It is Parse's inverse up
// to canonicalization: Parse(Format(st)) always succeeds and yields a
// statement with the same kind, target, forest and copy-source.
func Format(st *Statement) string {
	var b strings.Builder
	appendFormat(&b, st)
	return b.String()
}

func appendFormat(b *strings.Builder, st *Statement) {
	switch st.Kind {
	case Delete:
		b.WriteString("delete ")
		b.WriteString(st.Target.String())
	case Replace:
		b.WriteString("replace ")
		b.WriteString(st.Target.String())
		b.WriteString(" with ")
		b.WriteString(ForestString(st.Forest))
	case Insert:
		b.WriteString("insert ")
		if st.CopyOf != nil {
			b.WriteString(st.CopyOf.String())
		} else {
			b.WriteString(ForestString(st.Forest))
		}
		b.WriteString(" into ")
		b.WriteString(st.Target.String())
	}
}

// Canonical reparses the canonical rendering, returning a statement whose
// Source equals its Format. Round-tripping through text (rather than
// cloning in memory) keeps the guarantee honest: whatever Canonical
// returns is exactly what a log replay will reconstruct.
func (s *Statement) Canonical() (*Statement, error) {
	src := Format(s)
	st, err := Parse(src)
	if err != nil {
		return nil, fmt.Errorf("update: statement does not round-trip (%q): %w", src, err)
	}
	return st, nil
}

// Equivalent reports whether two statements denote the same update: same
// kind, same target path, same copy-source, and forests serializing to the
// same XML. Source text is ignored — `for $x in q insert F` and
// `insert F into q` are equivalent.
func Equivalent(a, b *Statement) bool {
	if a.Kind != b.Kind {
		return false
	}
	if a.Target.String() != b.Target.String() {
		return false
	}
	if (a.CopyOf == nil) != (b.CopyOf == nil) {
		return false
	}
	if a.CopyOf != nil && a.CopyOf.String() != b.CopyOf.String() {
		return false
	}
	return ForestString(a.Forest) == ForestString(b.Forest)
}
