// Package update implements the paper's XQuery Update subset: statement-
// level deletions (delete q) and insertions (insert xml into q, and the
// for-bound form for $x in q insert xml into $x), pending update list
// computation (compute-pul), side-effecting application against a document
// and its store (apply-insert / apply-delete), and ∆+/∆− delta-table
// extraction (algorithms CD+ and CD−).
package update

import (
	"fmt"
	"sort"
	"strings"

	"xivm/internal/algebra"
	"xivm/internal/qvm"
	"xivm/internal/store"
	"xivm/internal/xmltree"
	"xivm/internal/xpath"
)

// targetProgs caches compiled target-path programs keyed by the statement's
// source text — workloads re-issue the same statement shapes (the serve
// loop, the load generator, replayed WALs), and the source string is
// already in hand, so a hit skips both compilation and the interpreted
// walk. Statements built programmatically (empty Source) fall back to the
// interpreter; compiled programs are immutable so the cache needs no
// invalidation.
var targetProgs = qvm.NewCache(512)

// evalTarget evaluates a statement path, compiled when a cache key is
// available.
func evalTarget(d *xmltree.Document, p xpath.Path, key string) []*xmltree.Node {
	if key == "" {
		return xpath.Eval(d, p)
	}
	if prog, ok := targetProgs.Get(key); ok {
		return prog.Eval(d)
	}
	prog, err := qvm.Compile(p)
	if err != nil {
		// Conservative: any path the compiler cannot handle still evaluates.
		return xpath.Eval(d, p)
	}
	targetProgs.Add(key, prog)
	return prog.Eval(d)
}

// Kind distinguishes insertions from deletions.
type Kind uint8

const (
	// Insert adds a forest under each target node.
	Insert Kind = iota
	// Delete removes each target node (and, per XQuery Update semantics,
	// its whole subtree).
	Delete
	// Replace substitutes each target node with a forest: it expands into a
	// deletion of the target followed by an insertion of the forest under
	// the target's parent. (The replacement lands as the parent's last
	// children; views are insensitive to sibling positions beyond document
	// order, which stays consistent.)
	Replace
)

func (k Kind) String() string {
	switch k {
	case Delete:
		return "delete"
	case Replace:
		return "replace"
	}
	return "insert"
}

// Statement is a parsed update statement.
type Statement struct {
	Kind   Kind
	Target xpath.Path      // the q selecting target nodes
	Forest []*xmltree.Node // template forest for insertions (cloned per target)
	CopyOf *xpath.Path     // for "insert q1 into q2": q1, copied from the document
	Source string
}

// String returns the original statement text.
func (s *Statement) String() string { return s.Source }

// PendingInsert is one pending-update-list entry for an insertion: the
// target node and the trees to copy under it.
type PendingInsert struct {
	Target *xmltree.Node
	Trees  []*xmltree.Node
}

// PUL is a pending update list per the XQuery Update Facility: the list of
// node-level operations a statement expands to.
type PUL struct {
	Kind    Kind
	Inserts []PendingInsert
	Deletes []*xmltree.Node
}

// Targets returns the number of target nodes.
func (p *PUL) Targets() int {
	if p.Kind == Delete {
		return len(p.Deletes)
	}
	return len(p.Inserts)
}

// ExpandReplace turns a replace statement into its delete + insert stages,
// both resolved against the current document (the deletion PUL carries the
// targets; the insertion PUL carries their parents).
func ExpandReplace(d *xmltree.Document, st *Statement) (del, ins *PUL, err error) {
	if st.Kind != Replace {
		return nil, nil, fmt.Errorf("update: ExpandReplace on %s statement", st.Kind)
	}
	if len(st.Forest) == 0 {
		return nil, nil, fmt.Errorf("update: replace with empty forest")
	}
	// The expansion's delete stage shares the replace statement's target
	// path, so it can share its compiled-program cache slot too.
	delStmt := &Statement{Kind: Delete, Target: st.Target, Source: st.Source}
	del, err = ComputePUL(d, delStmt)
	if err != nil {
		return nil, nil, err
	}
	ins = &PUL{Kind: Insert}
	for _, n := range del.Deletes {
		ins.Inserts = append(ins.Inserts, PendingInsert{Target: n.Parent, Trees: st.Forest})
	}
	return del, ins, nil
}

// ComputePUL implements compute-pul(u): it evaluates the statement's target
// path on the document and expands the statement into node-level entries.
// For deletions, targets nested under other targets are dropped (deleting
// the ancestor already removes them). Replace statements must go through
// ExpandReplace instead.
func ComputePUL(d *xmltree.Document, st *Statement) (*PUL, error) {
	if st.Kind == Replace {
		return nil, fmt.Errorf("update: replace statements expand via ExpandReplace")
	}
	targets := evalTarget(d, st.Target, st.Source)
	pul := &PUL{Kind: st.Kind}
	switch st.Kind {
	case Delete:
		sort.Slice(targets, func(i, j int) bool {
			return targets[i].ID.Compare(targets[j].ID) < 0
		})
		for _, n := range targets {
			if n.Parent == nil {
				return nil, fmt.Errorf("update: cannot delete the document root")
			}
			// Targets are in document order, so all descendants of a kept
			// target follow it contiguously: checking the last kept target
			// suffices.
			if k := len(pul.Deletes); k > 0 && pul.Deletes[k-1].ID.IsAncestorOf(n.ID) {
				continue
			}
			pul.Deletes = append(pul.Deletes, n)
		}
	case Insert:
		forest := st.Forest
		if st.CopyOf != nil {
			key := ""
			if st.Source != "" {
				key = st.Source + "#copy"
			}
			for _, n := range evalTarget(d, *st.CopyOf, key) {
				forest = append(forest, n)
			}
		}
		if len(forest) == 0 {
			return nil, fmt.Errorf("update: insertion with empty forest")
		}
		for _, n := range targets {
			if n.Kind != xmltree.Element {
				continue
			}
			pul.Inserts = append(pul.Inserts, PendingInsert{Target: n, Trees: forest})
		}
	}
	return pul, nil
}

// Applied records the concrete effect of applying a PUL: the roots of the
// freshly inserted copies (with their new IDs) or of the detached subtrees.
type Applied struct {
	Kind          Kind
	InsertedRoots []*xmltree.Node
	DeletedRoots  []*xmltree.Node
}

// Apply executes the PUL against the document, keeping the store's
// canonical relations in sync when st is non-nil. Insertions return the
// copies carrying the IDs assigned in their new context, exactly the
// side-channel the maintenance algorithms consume.
func Apply(d *xmltree.Document, s *store.Store, pul *PUL) (*Applied, error) {
	out := &Applied{Kind: pul.Kind}
	switch pul.Kind {
	case Insert:
		for _, pi := range pul.Inserts {
			copies, err := d.ApplyInsertForest(pi.Target, pi.Trees)
			if err != nil {
				return nil, err
			}
			out.InsertedRoots = append(out.InsertedRoots, copies...)
		}
		if s != nil {
			s.AddSubtrees(out.InsertedRoots)
		}
	case Delete:
		removed, err := d.ApplyDeleteBatch(pul.Deletes)
		if err != nil {
			return nil, err
		}
		if s != nil {
			s.RemoveSubtrees(removed)
		}
		out.DeletedRoots = removed
	}
	return out, nil
}

// Run parses nothing: it chains ComputePUL and Apply for a statement.
func Run(d *xmltree.Document, s *store.Store, st *Statement) (*PUL, *Applied, error) {
	pul, err := ComputePUL(d, st)
	if err != nil {
		return nil, nil, err
	}
	applied, err := Apply(d, s, pul)
	if err != nil {
		return pul, nil, err
	}
	return pul, applied, nil
}

// DeltaTables implements CD+/CD− (Algorithm 2): for each requested label it
// extracts, from the affected subtree roots, the ordered collection of
// matching nodes — the ∆ relation of that label. Labels follow pattern
// conventions: "*" collects all elements, "@x" attributes, "#text" text.
func DeltaTables(roots []*xmltree.Node, labels []string) map[string][]algebra.Item {
	want := make(map[string]bool, len(labels))
	var words []string
	star := false
	for _, l := range labels {
		switch {
		case l == "*":
			star = true
		case strings.HasPrefix(l, "~"):
			words = append(words, l[1:])
		default:
			want[l] = true
		}
	}
	out := make(map[string][]algebra.Item, len(labels))
	for _, r := range roots {
		xmltree.Walk(r, func(n *xmltree.Node) bool {
			if want[n.Label] {
				out[n.Label] = append(out[n.Label], algebra.Item{ID: n.ID, Node: n})
			}
			if star && n.Kind == xmltree.Element {
				out["*"] = append(out["*"], algebra.Item{ID: n.ID, Node: n})
			}
			for _, w := range words {
				if n.MatchesWord(w) {
					out["~"+w] = append(out["~"+w], algebra.Item{ID: n.ID, Node: n})
				}
			}
			return true
		})
	}
	for l := range out {
		items := out[l]
		sort.Slice(items, func(i, j int) bool { return items[i].ID.Compare(items[j].ID) < 0 })
	}
	return out
}

// InsertionPoints returns the PUL's target nodes (the p_i of Proposition
// 3.8) for an insertion.
func (p *PUL) InsertionPoints() []*xmltree.Node {
	out := make([]*xmltree.Node, len(p.Inserts))
	for i, pi := range p.Inserts {
		out[i] = pi.Target
	}
	return out
}

// ForestString renders a forest template back to XML (for diagnostics).
func ForestString(forest []*xmltree.Node) string {
	var b strings.Builder
	for _, n := range forest {
		b.WriteString(n.Content())
	}
	return b.String()
}
