package update

import "testing"

// FuzzParse hardens the update-statement parser against arbitrary input.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"delete //a/b",
		"insert <a><b/></a> into /site",
		"insert //a into //b",
		"for $x in //p insert <q/> into $x",
		"replace //name with <name>x</name>",
		`let $c := doc("a") delete $c//b`,
		"insert <a> into //b", "for $x in", "replace //a",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		st, err := Parse(src)
		if err != nil {
			return
		}
		if st.Kind != Insert && st.Kind != Delete && st.Kind != Replace {
			t.Fatalf("parsed statement with invalid kind %v", st.Kind)
		}
		if len(st.Target.Steps) == 0 {
			t.Fatalf("parsed statement with empty target from %q", src)
		}
	})
}
