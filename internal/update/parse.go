package update

import (
	"fmt"
	"strings"
	"unicode"

	"xivm/internal/xmltree"
	"xivm/internal/xpath"
)

// Parse parses an update statement. Supported forms (an optional
// `let $d := doc("uri")` prefix is accepted, and `$d/...` paths then count
// as absolute, matching the paper's test-set syntax):
//
//	delete q
//	insert <xml…/> into q
//	insert q1 into q2
//	for $x in q insert <xml…/> [into $x]
//	replace q with <xml…/>
func Parse(src string) (*Statement, error) {
	p := &uparser{src: src}
	st := &Statement{Source: src}

	docVar := ""
	if p.eatKeyword("let") {
		name, err := p.parseVarName()
		if err != nil {
			return nil, err
		}
		if !p.eat(":=") && !p.eatKeyword("in") {
			return nil, p.errf("expected := in let clause")
		}
		if !p.eat("doc(") {
			return nil, p.errf("expected doc(...) in let clause")
		}
		if _, err := p.parseStringLit(); err != nil {
			return nil, err
		}
		if !p.eat(")") {
			return nil, p.errf("expected ) after doc uri")
		}
		docVar = name
		p.eatKeyword("return") // tolerated
	}

	switch {
	case p.eatKeyword("delete"):
		st.Kind = Delete
		path, err := p.parseAbsPath(docVar)
		if err != nil {
			return nil, err
		}
		st.Target = path

	case p.eatKeyword("replace"):
		st.Kind = Replace
		path, err := p.parseAbsPath(docVar)
		if err != nil {
			return nil, err
		}
		st.Target = path
		if !p.eatKeyword("with") {
			return nil, p.errf("expected 'with'")
		}
		forest, err := p.parseForest()
		if err != nil {
			return nil, err
		}
		st.Forest = forest

	case p.eatKeyword("for"):
		loopVar, err := p.parseVarName()
		if err != nil {
			return nil, err
		}
		if !p.eatKeyword("in") {
			return nil, p.errf("expected 'in'")
		}
		target, err := p.parseAbsPath(docVar)
		if err != nil {
			return nil, err
		}
		if !p.eatKeyword("insert") {
			return nil, p.errf("expected 'insert'")
		}
		forest, err := p.parseForest()
		if err != nil {
			return nil, err
		}
		if p.eatKeyword("into") {
			name, err := p.parseVarName()
			if err != nil {
				return nil, err
			}
			if name != loopVar {
				return nil, p.errf("insert target $%s does not match loop variable $%s", name, loopVar)
			}
		}
		st.Kind = Insert
		st.Target = target
		st.Forest = forest

	case p.eatKeyword("insert"):
		st.Kind = Insert
		p.skip()
		if p.pos < len(p.src) && p.src[p.pos] == '<' {
			forest, err := p.parseForest()
			if err != nil {
				return nil, err
			}
			st.Forest = forest
		} else {
			q1, err := p.parseAbsPath(docVar)
			if err != nil {
				return nil, err
			}
			st.CopyOf = &q1
		}
		if !p.eatKeyword("into") {
			return nil, p.errf("expected 'into'")
		}
		target, err := p.parseAbsPath(docVar)
		if err != nil {
			return nil, err
		}
		st.Target = target

	default:
		return nil, p.errf("expected delete, insert, replace, for, or let")
	}

	p.skip()
	if p.pos != len(p.src) {
		return nil, p.errf("trailing input")
	}
	return st, nil
}

// MustParse is Parse that panics on error.
func MustParse(src string) *Statement {
	st, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return st
}

type uparser struct {
	src string
	pos int
}

func (p *uparser) errf(format string, args ...any) error {
	rest := p.src[p.pos:]
	if len(rest) > 40 {
		rest = rest[:40] + "…"
	}
	return fmt.Errorf("update: %s at %q", fmt.Sprintf(format, args...), rest)
}

func (p *uparser) skip() {
	for p.pos < len(p.src) && unicode.IsSpace(rune(p.src[p.pos])) {
		p.pos++
	}
}

func (p *uparser) eat(tok string) bool {
	p.skip()
	if strings.HasPrefix(p.src[p.pos:], tok) {
		p.pos += len(tok)
		return true
	}
	return false
}

func (p *uparser) eatKeyword(kw string) bool {
	p.skip()
	if !strings.HasPrefix(p.src[p.pos:], kw) {
		return false
	}
	after := p.pos + len(kw)
	if after < len(p.src) && isWordByte(p.src[after]) {
		return false
	}
	p.pos = after
	return true
}

func isWordByte(c byte) bool {
	return c == '_' || c == '-' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

func (p *uparser) parseVarName() (string, error) {
	p.skip()
	if !p.eat("$") {
		return "", p.errf("expected variable")
	}
	start := p.pos
	for p.pos < len(p.src) && isWordByte(p.src[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return "", p.errf("empty variable name")
	}
	return p.src[start:p.pos], nil
}

func (p *uparser) parseStringLit() (string, error) {
	p.skip()
	if p.pos >= len(p.src) {
		return "", p.errf("expected string literal")
	}
	q := p.src[p.pos]
	if q != '"' && q != '\'' {
		return "", p.errf("expected string literal")
	}
	p.pos++
	start := p.pos
	for p.pos < len(p.src) && p.src[p.pos] != q {
		p.pos++
	}
	if p.pos >= len(p.src) {
		return "", p.errf("unterminated string literal")
	}
	s := p.src[start:p.pos]
	p.pos++
	return s, nil
}

// parseAbsPath parses a path that is either absolute (/...) or rooted at
// the let-bound document variable ($c/...).
func (p *uparser) parseAbsPath(docVar string) (xpath.Path, error) {
	p.skip()
	if p.pos < len(p.src) && p.src[p.pos] == '$' {
		name, err := p.parseVarName()
		if err != nil {
			return xpath.Path{}, err
		}
		if name != docVar {
			return xpath.Path{}, p.errf("unknown variable $%s (only the let-bound document variable may anchor paths)", name)
		}
	}
	start := p.pos
	if p.pos >= len(p.src) || p.src[p.pos] != '/' {
		return xpath.Path{}, p.errf("expected path")
	}
	// Scan a balanced path: stop at whitespace/keyword boundaries outside
	// brackets and quotes.
	depth := 0
	var quote byte
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if quote != 0 {
			if c == quote {
				quote = 0
			}
			p.pos++
			continue
		}
		switch c {
		case '\'', '"':
			quote = c
		case '[':
			depth++
		case ']':
			depth--
		case ' ', '\t', '\n', '<':
			if depth == 0 {
				return xpath.Parse(p.src[start:p.pos])
			}
		}
		p.pos++
	}
	return xpath.Parse(p.src[start:p.pos])
}

// parseForest scans a balanced XML fragment (one or more sibling trees) and
// parses it into a template forest.
func (p *uparser) parseForest() ([]*xmltree.Node, error) {
	p.skip()
	if p.pos >= len(p.src) || p.src[p.pos] != '<' {
		return nil, p.errf("expected XML fragment")
	}
	start := p.pos
	depth := 0
	for p.pos < len(p.src) {
		if p.src[p.pos] != '<' {
			p.pos++
			continue
		}
		// Examine the tag.
		end := strings.IndexByte(p.src[p.pos:], '>')
		if end < 0 {
			return nil, p.errf("unterminated tag")
		}
		tag := p.src[p.pos : p.pos+end+1]
		switch {
		case strings.HasPrefix(tag, "</"):
			depth--
		case strings.HasSuffix(tag, "/>"):
			// self-closing: depth unchanged
		default:
			depth++
		}
		p.pos += end + 1
		if depth == 0 {
			// A top-level tree just closed; continue if another tree
			// follows immediately (allowing whitespace).
			save := p.pos
			p.skip()
			if p.pos < len(p.src) && p.src[p.pos] == '<' && !strings.HasPrefix(p.src[p.pos:], "</") {
				continue
			}
			p.pos = save
			break
		}
	}
	if depth != 0 {
		return nil, p.errf("unbalanced XML fragment")
	}
	return xmltree.ParseForest(p.src[start:p.pos])
}
