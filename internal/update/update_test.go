package update

import (
	"testing"

	"xivm/internal/store"
	"xivm/internal/xmltree"
)

func mustDoc(t *testing.T, s string) *xmltree.Document {
	t.Helper()
	d, err := xmltree.ParseString(s)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestParseDelete(t *testing.T) {
	st, err := Parse(`delete //c//b`)
	if err != nil {
		t.Fatal(err)
	}
	if st.Kind != Delete || st.Target.String() != "//c//b" {
		t.Fatalf("%+v", st)
	}
}

func TestParseInsertInto(t *testing.T) {
	st, err := Parse(`insert <a><b/><b><c/></b></a> into /site/people`)
	if err != nil {
		t.Fatal(err)
	}
	if st.Kind != Insert || len(st.Forest) != 1 || st.Target.String() != "/site/people" {
		t.Fatalf("%+v", st)
	}
	if st.Forest[0].CountNodes() != 4 {
		t.Fatalf("forest nodes %d", st.Forest[0].CountNodes())
	}
}

func TestParseForLoopInsert(t *testing.T) {
	// The paper's appendix syntax, with a let-bound document variable.
	src := `let $c := doc("auction.xml")
for $person in $c/site/people/person
insert <name>Martin<name>and</name><name>some</name></name>`
	st, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if st.Kind != Insert || st.Target.String() != "/site/people/person" {
		t.Fatalf("%+v", st)
	}
	if len(st.Forest) != 1 || st.Forest[0].Label != "name" {
		t.Fatalf("forest %+v", st.Forest)
	}
}

func TestParseForLoopInsertIntoVar(t *testing.T) {
	st, err := Parse(`for $x in //regions//item insert <item><location>U</location></item> into $x`)
	if err != nil {
		t.Fatal(err)
	}
	if st.Target.String() != "//regions//item" {
		t.Fatalf("target %q", st.Target)
	}
	if _, err := Parse(`for $x in //a insert <b/> into $y`); err == nil {
		t.Fatal("mismatched loop variable should fail")
	}
}

func TestParseInsertCopyOf(t *testing.T) {
	st, err := Parse(`insert //a//b into //c`)
	if err != nil {
		t.Fatal(err)
	}
	if st.CopyOf == nil || st.CopyOf.String() != "//a//b" || st.Target.String() != "//c" {
		t.Fatalf("%+v", st)
	}
}

func TestParseMultiTreeForest(t *testing.T) {
	st, err := Parse(`insert <x>1</x><y/><z a="q"/> into //p`)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Forest) != 3 {
		t.Fatalf("forest %d", len(st.Forest))
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"", "frobnicate //a", "delete", "insert <a/>", "insert <a> into //b",
		"for $x in //a delete //b", "let $c := doc( delete //a",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestComputePULAndApplyInsert(t *testing.T) {
	d := mustDoc(t, `<site><people><person/><person/></people></site>`)
	s := store.New(d)
	st := MustParse(`for $p in /site/people/person insert <name>N</name>`)
	pul, err := ComputePUL(d, st)
	if err != nil {
		t.Fatal(err)
	}
	if pul.Targets() != 2 {
		t.Fatalf("targets %d", pul.Targets())
	}
	applied, err := Apply(d, s, pul)
	if err != nil {
		t.Fatal(err)
	}
	if len(applied.InsertedRoots) != 2 {
		t.Fatalf("inserted %d", len(applied.InsertedRoots))
	}
	if s.Count("name") != 2 {
		t.Fatalf("store name count %d", s.Count("name"))
	}
	for _, r := range applied.InsertedRoots {
		if r.ID.IsNull() || d.NodeByID(r.ID) != r {
			t.Fatal("inserted root not indexed with fresh ID")
		}
	}
}

func TestComputePULDeleteNestedTargets(t *testing.T) {
	// //b matches nested b's; the PUL must keep only the outermost.
	d := mustDoc(t, `<a><b><x/><b><y/></b></b><b/></a>`)
	st := MustParse(`delete //b`)
	pul, err := ComputePUL(d, st)
	if err != nil {
		t.Fatal(err)
	}
	if len(pul.Deletes) != 2 {
		t.Fatalf("deletes %d", len(pul.Deletes))
	}
	s := store.New(d)
	applied, err := Apply(d, s, pul)
	if err != nil {
		t.Fatal(err)
	}
	if len(applied.DeletedRoots) != 2 {
		t.Fatalf("deleted %d", len(applied.DeletedRoots))
	}
	if s.Count("b") != 0 || s.Count("y") != 0 {
		t.Fatal("store not purged")
	}
	if len(d.Root.ElementChildren()) != 0 {
		t.Fatal("document still has b children")
	}
}

func TestDeleteRootRejected(t *testing.T) {
	d := mustDoc(t, `<a><b/></a>`)
	if _, err := ComputePUL(d, MustParse(`delete /a`)); err == nil {
		t.Fatal("expected root deletion error")
	}
}

func TestInsertCopyOfApplies(t *testing.T) {
	d := mustDoc(t, `<r><src><b>1</b><b>2</b></src><dst/></r>`)
	s := store.New(d)
	st := MustParse(`insert /r/src/b into /r/dst`)
	_, applied, err := Run(d, s, st)
	if err != nil {
		t.Fatal(err)
	}
	if len(applied.InsertedRoots) != 2 {
		t.Fatalf("inserted %d", len(applied.InsertedRoots))
	}
	if got := s.Count("b"); got != 4 {
		t.Fatalf("b count %d", got)
	}
}

func TestDeltaTables(t *testing.T) {
	d := mustDoc(t, `<r><p/></r>`)
	s := store.New(d)
	st := MustParse(`insert <a><b/><b><c/></b></a> into /r/p`)
	_, applied, err := Run(d, s, st)
	if err != nil {
		t.Fatal(err)
	}
	dt := DeltaTables(applied.InsertedRoots, []string{"a", "b", "c", "z", "*"})
	if len(dt["a"]) != 1 || len(dt["b"]) != 2 || len(dt["c"]) != 1 {
		t.Fatalf("delta sizes: a=%d b=%d c=%d", len(dt["a"]), len(dt["b"]), len(dt["c"]))
	}
	if len(dt["z"]) != 0 {
		t.Fatal("phantom delta")
	}
	if len(dt["*"]) != 4 {
		t.Fatalf("star delta %d", len(dt["*"]))
	}
	// Ordered by document order.
	bs := dt["b"]
	if bs[0].ID.Compare(bs[1].ID) >= 0 {
		t.Fatal("delta table not ordered")
	}
}

func TestInsertionPoints(t *testing.T) {
	d := mustDoc(t, `<r><p/><p/></r>`)
	pul, err := ComputePUL(d, MustParse(`insert <x/> into /r/p`))
	if err != nil {
		t.Fatal(err)
	}
	pts := pul.InsertionPoints()
	if len(pts) != 2 || pts[0].Label != "p" {
		t.Fatalf("points %v", pts)
	}
}

func TestStringers(t *testing.T) {
	if Insert.String() != "insert" || Delete.String() != "delete" {
		t.Fatal("Kind strings wrong")
	}
	st := MustParse(`delete //a`)
	if st.String() != `delete //a` {
		t.Fatalf("Statement.String = %q", st.String())
	}
	forest, err := xmltree.ParseForest(`<a x="1"><b/></a>`)
	if err != nil {
		t.Fatal(err)
	}
	if got := ForestString(forest); got != `<a x="1"><b/></a>` {
		t.Fatalf("ForestString = %q", got)
	}
}

func TestTargetsCount(t *testing.T) {
	d := mustDoc(t, `<r><p/><p/><q/></r>`)
	ins, err := ComputePUL(d, MustParse(`insert <x/> into /r/p`))
	if err != nil {
		t.Fatal(err)
	}
	if ins.Targets() != 2 {
		t.Fatalf("insert targets %d", ins.Targets())
	}
	del, err := ComputePUL(d, MustParse(`delete /r/q`))
	if err != nil {
		t.Fatal(err)
	}
	if del.Targets() != 1 {
		t.Fatalf("delete targets %d", del.Targets())
	}
}

func TestParseAbsPathVarForms(t *testing.T) {
	// Unknown variable anchoring a path must fail.
	if _, err := Parse(`let $c := doc("a") delete $z//b`); err == nil {
		t.Fatal("unknown variable accepted")
	}
	// The let-bound variable works in every position.
	st, err := Parse(`let $c := doc("a") insert <x/> into $c//b`)
	if err != nil {
		t.Fatal(err)
	}
	if st.Target.String() != "//b" {
		t.Fatalf("target %q", st.Target)
	}
}

func TestParseReplace(t *testing.T) {
	st, err := Parse(`replace //person/name with <name>Anon</name>`)
	if err != nil {
		t.Fatal(err)
	}
	if st.Kind != Replace || st.Target.String() != "//person/name" || len(st.Forest) != 1 {
		t.Fatalf("%+v", st)
	}
	if _, err := Parse(`replace //a`); err == nil {
		t.Fatal("replace without with accepted")
	}
}

func TestExpandReplace(t *testing.T) {
	d := mustDoc(t, `<r><p><name>A</name></p><p><name>B</name></p></r>`)
	st := MustParse(`replace //name with <name>X</name>`)
	del, ins, err := ExpandReplace(d, st)
	if err != nil {
		t.Fatal(err)
	}
	if len(del.Deletes) != 2 || len(ins.Inserts) != 2 {
		t.Fatalf("del=%d ins=%d", len(del.Deletes), len(ins.Inserts))
	}
	if ins.Inserts[0].Target.Label != "p" {
		t.Fatalf("insert target %q", ins.Inserts[0].Target.Label)
	}
	if _, err := ComputePUL(d, st); err == nil {
		t.Fatal("ComputePUL must reject replace")
	}
	if _, _, err := ExpandReplace(d, MustParse(`delete //name`)); err == nil {
		t.Fatal("ExpandReplace must reject non-replace")
	}
}
