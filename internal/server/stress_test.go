package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"testing"
	"time"

	"xivm/internal/algebra"
	"xivm/internal/core"
	"xivm/internal/obs"
	"xivm/internal/pattern"
	"xivm/internal/wal"
	"xivm/internal/xmark"
	"xivm/internal/xmltree"
	"xivm/internal/xpath"
)

// stressViews and stressQueries are the read mix; stressVocabulary is the
// write mix, cycled to reach the statement target. The vocabulary's inserts
// and deletes roughly balance so the document stays small.
var (
	stressViews   = []string{"Q1", "Q2"}
	stressQueries = []string{
		"/site/people/person/name",
		"/site/open_auctions/open_auction/bidder/increase",
	}
	stressVocabulary = []string{
		`insert <person id="pstress"><name>Stress Person</name><phone>+1 555 0100</phone></person> into /site/people`,
		`for $x in /site/open_auctions/open_auction insert <bidder><date>02/02/2020</date><increase>2.50</increase></bidder>`,
		`delete /site/people/person/phone`,
		`insert <open_auction id="ostress"><bidder><increase>4.50</increase></bidder></open_auction> into /site/open_auctions`,
		`delete /site/open_auctions/open_auction/bidder`,
		`replace /site/people/person/name with <name>Renamed Person</name>`,
		`delete /site/people/person`,
	}
)

// expectedState is the oracle for one published epoch: for every view, the
// rows a fresh pattern evaluation produces at that document version, and
// for every fixed XPath query, its matches — all precomputed by the shadow
// replayer, wire-encoded for direct comparison with server responses.
type expectedState struct {
	views   map[string][]RowJSON
	matches map[string][]MatchJSON
}

// shadowOracle replays the exact statement sequence on an independent
// engine and records, keyed by engine version, the state every published
// epoch must show. Versions advance identically in both engines because
// both apply the same statements to the same initial document and version
// bumps are a deterministic function of the statement sequence.
type shadowOracle struct {
	eng *core.Engine

	mu       sync.RWMutex
	expected map[uint64]*expectedState
}

func newShadowOracle(t *testing.T, docXML string) *shadowOracle {
	t.Helper()
	doc, err := xmltree.ParseString(docXML)
	if err != nil {
		t.Fatal(err)
	}
	o := &shadowOracle{
		eng:      core.New(doc, core.WithMetrics(obs.New())),
		expected: make(map[uint64]*expectedState),
	}
	for _, name := range stressViews {
		if _, err := o.eng.AddView(name, xmark.View(name)); err != nil {
			t.Fatalf("shadow add view %s: %v", name, err)
		}
	}
	o.record()
	return o
}

// record captures the oracle state at the shadow engine's current version,
// recomputing every view from scratch (the acceptance criterion: published
// rows must equal fresh recomputation at that document version).
func (o *shadowOracle) record() {
	st := &expectedState{
		views:   make(map[string][]RowJSON, len(stressViews)),
		matches: make(map[string][]MatchJSON, len(stressQueries)),
	}
	for _, mv := range o.eng.Views {
		rows := algebra.Materialize(o.eng.Doc, mv.Pattern)
		st.views[mv.Name] = rowsToJSON(mv.Pattern, rows)
	}
	for _, q := range stressQueries {
		nodes := xpath.Eval(o.eng.Doc, xpath.MustParse(q))
		ms := make([]MatchJSON, 0, len(nodes))
		for _, n := range nodes {
			ms = append(ms, MatchJSON{ID: n.ID.String(), Label: n.Label, Value: n.StringValue()})
		}
		st.matches[q] = ms
	}
	o.mu.Lock()
	o.expected[o.eng.Version()] = st
	o.mu.Unlock()
}

// step applies one statement to the shadow engine and records the oracle
// state for the version it lands on, returning that version. It must be
// called BEFORE the same statement is sent to the server, so that by the
// time any reader can observe the new epoch its expectation exists.
func (o *shadowOracle) step(t *testing.T, src string) uint64 {
	t.Helper()
	if _, err := o.eng.ApplyStatement(mustStatement(t, src)); err != nil {
		t.Fatalf("shadow apply %q: %v", src, err)
	}
	o.record()
	return o.eng.Version()
}

func (o *shadowOracle) at(version uint64) *expectedState {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.expected[version]
}

// rowsToJSON wire-encodes materialized rows exactly as the HTTP layer does.
func rowsToJSON(p *pattern.Pattern, rows []algebra.Row) []RowJSON {
	out := make([]RowJSON, 0, len(rows))
	for _, row := range rows {
		rj := RowJSON{Count: row.Count, Entries: make([]EntryJSON, 0, len(row.Entries))}
		for _, e := range row.Entries {
			rj.Entries = append(rj.Entries, EntryJSON{
				Label: p.Nodes[e.NodeIdx].Label,
				ID:    e.ID.String(),
				Val:   e.Val,
				Cont:  e.Cont,
			})
		}
		out = append(out, rj)
	}
	return out
}

func equalRowJSON(a, b []RowJSON) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Count != b[i].Count || len(a[i].Entries) != len(b[i].Entries) {
			return false
		}
		for j := range a[i].Entries {
			if a[i].Entries[j] != b[i].Entries[j] {
				return false
			}
		}
	}
	return true
}

func equalMatchJSON(a, b []MatchJSON) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestStressReadersVsWriter is the serving layer's isolation acceptance
// test: 8 concurrent readers hammer view and XPath endpoints over a real
// HTTP listener while one writer streams 210 update statements through the
// WAL-backed apply loop. Every response must carry a published epoch
// version, versions must be monotone per reader, and the payload must
// equal a fresh recomputation of the view (or query) at exactly that
// version's document state — i.e. readers never observe a torn,
// half-propagated, or unpublished state. Run it under -race.
func TestStressReadersVsWriter(t *testing.T) {
	const (
		readers    = 8
		statements = 210
	)
	docXML := xmark.GenerateSmall(1)
	db, err := wal.Create(t.TempDir(), []byte(docXML), wal.Options{Metrics: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for _, name := range stressViews {
		if _, err := db.AddView(name, xmark.View(name).String()); err != nil {
			t.Fatalf("add view %s: %v", name, err)
		}
	}

	oracle := newShadowOracle(t, docXML)
	if sv, ev := oracle.eng.Version(), db.Engine().Version(); sv != ev {
		t.Fatalf("shadow version %d != server engine version %d at start", sv, ev)
	}

	s := New(db, Config{QueueDepth: 32, Metrics: obs.New()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	stop := make(chan struct{})
	errc := make(chan string, readers)
	fail := func(format string, args ...any) {
		select {
		case errc <- fmt.Sprintf(format, args...):
		default:
		}
	}
	var wg sync.WaitGroup
	var readTotal [readers]int
	client := &http.Client{Timeout: 10 * time.Second}

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var lastVersion uint64
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				var version uint64
				switch i % 4 {
				case 0, 1: // view reads
					name := stressViews[(i/2)%len(stressViews)]
					var vr ViewResponse
					resp, err := client.Get(ts.URL + "/v1/views/" + name)
					if err != nil {
						fail("reader %d: GET view: %v", r, err)
						return
					}
					code := resp.StatusCode
					err = json.NewDecoder(resp.Body).Decode(&vr)
					resp.Body.Close()
					if err != nil || code != http.StatusOK {
						fail("reader %d: view %s: status %d err %v", r, name, code, err)
						return
					}
					exp := oracle.at(vr.Version)
					if exp == nil {
						fail("reader %d: view %s response at unpublished version %d", r, name, vr.Version)
						return
					}
					if !equalRowJSON(vr.Rows, exp.views[name]) {
						fail("reader %d: view %s at version %d does not equal fresh recomputation (%d rows, want %d)",
							r, name, vr.Version, len(vr.Rows), len(exp.views[name]))
						return
					}
					version = vr.Version
				case 2, 3: // XPath reads
					q := stressQueries[i%len(stressQueries)]
					var xr XPathResponse
					resp, err := client.Get(ts.URL + "/v1/xpath?q=" + url.QueryEscape(q))
					if err != nil {
						fail("reader %d: GET xpath: %v", r, err)
						return
					}
					code := resp.StatusCode
					err = json.NewDecoder(resp.Body).Decode(&xr)
					resp.Body.Close()
					if err != nil || code != http.StatusOK {
						fail("reader %d: xpath %s: status %d err %v", r, q, code, err)
						return
					}
					exp := oracle.at(xr.Version)
					if exp == nil {
						fail("reader %d: xpath response at unpublished version %d", r, xr.Version)
						return
					}
					if !equalMatchJSON(xr.Matches, exp.matches[q]) {
						fail("reader %d: xpath %s at version %d does not equal fresh evaluation (%d matches, want %d)",
							r, q, xr.Version, len(xr.Matches), len(exp.matches[q]))
						return
					}
					version = xr.Version
				}
				if version < lastVersion {
					fail("reader %d: version went backwards: %d after %d", r, version, lastVersion)
					return
				}
				lastVersion = version
				readTotal[r]++
			}
		}(r)
	}

	// The writer: shadow-replay first (so the expectation exists before the
	// epoch can be published), then send the same statement through the
	// server, retrying 429 backpressure rejections.
	for i := 0; i < statements; i++ {
		src := stressVocabulary[i%len(stressVocabulary)]
		wantVersion := oracle.step(t, src)
		for {
			resp, ur := postUpdate(t, ts.URL, src)
			if resp.StatusCode == http.StatusTooManyRequests {
				time.Sleep(time.Millisecond)
				continue
			}
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("statement %d %q: status %d", i, src, resp.StatusCode)
			}
			if ur.Version != wantVersion {
				t.Fatalf("statement %d %q: server version %d, shadow version %d — engines diverged",
					i, src, ur.Version, wantVersion)
			}
			break
		}
	}

	close(stop)
	wg.Wait()
	select {
	case msg := <-errc:
		t.Fatal(msg)
	default:
	}
	for r, n := range readTotal {
		if n < 10 {
			t.Fatalf("reader %d performed only %d reads — not a concurrent workload", r, n)
		}
	}

	// Final state check: the last epoch equals the shadow's final state.
	snap := s.Epoch()
	if snap.Version != oracle.eng.Version() {
		t.Fatalf("final epoch version %d != shadow version %d", snap.Version, oracle.eng.Version())
	}
	exp := oracle.at(snap.Version)
	for _, vs := range snap.Views {
		if !equalRowJSON(rowsToJSON(vs.Pattern, vs.Rows), exp.views[vs.Name]) {
			t.Fatalf("final epoch view %s diverges from fresh recomputation", vs.Name)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}
