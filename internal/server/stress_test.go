package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"testing"
	"time"

	"xivm/internal/algebra"
	"xivm/internal/core"
	"xivm/internal/obs"
	"xivm/internal/pattern"
	"xivm/internal/wal"
	"xivm/internal/xmark"
	"xivm/internal/xmltree"
	"xivm/internal/xpath"
)

// stressViews and stressQueries are the read mix; stressVocabulary is the
// write mix, cycled to reach the statement target. The vocabulary's inserts
// and deletes roughly balance so the document stays small.
var (
	stressViews   = []string{"Q1", "Q2"}
	stressQueries = []string{
		"/site/people/person/name",
		"/site/open_auctions/open_auction/bidder/increase",
	}
	stressVocabulary = []string{
		`insert <person id="pstress"><name>Stress Person</name><phone>+1 555 0100</phone></person> into /site/people`,
		`for $x in /site/open_auctions/open_auction insert <bidder><date>02/02/2020</date><increase>2.50</increase></bidder>`,
		`delete /site/people/person/phone`,
		`insert <open_auction id="ostress"><bidder><increase>4.50</increase></bidder></open_auction> into /site/open_auctions`,
		`delete /site/open_auctions/open_auction/bidder`,
		`replace /site/people/person/name with <name>Renamed Person</name>`,
		`delete /site/people/person`,
	}
)

// expectedState is the oracle for one published epoch: for every view, the
// rows a fresh pattern evaluation produces at that document version, and
// for every fixed XPath query, its matches — all precomputed by the shadow
// replayer, wire-encoded for direct comparison with server responses.
type expectedState struct {
	views   map[string][]RowJSON
	matches map[string][]MatchJSON
}

// shadowOracle replays the exact statement sequence on an independent
// engine and records, keyed by engine version, the state every published
// epoch must show. Versions advance identically in both engines because
// both apply the same statements to the same initial document and version
// bumps are a deterministic function of the statement sequence. Each
// tenant gets its own oracle: the shadows never mix, which is exactly the
// isolation property under test.
type shadowOracle struct {
	eng *core.Engine

	mu       sync.RWMutex
	expected map[uint64]*expectedState
}

func newShadowOracle(t *testing.T, docXML string) *shadowOracle {
	t.Helper()
	doc, err := xmltree.ParseString(docXML)
	if err != nil {
		t.Fatal(err)
	}
	o := &shadowOracle{
		eng:      core.New(doc, core.WithMetrics(obs.New())),
		expected: make(map[uint64]*expectedState),
	}
	for _, name := range stressViews {
		if _, err := o.eng.AddView(name, xmark.View(name)); err != nil {
			t.Fatalf("shadow add view %s: %v", name, err)
		}
	}
	o.record()
	return o
}

// record captures the oracle state at the shadow engine's current version,
// recomputing every view from scratch (the acceptance criterion: published
// rows must equal fresh recomputation at that document version).
func (o *shadowOracle) record() {
	st := &expectedState{
		views:   make(map[string][]RowJSON, len(stressViews)),
		matches: make(map[string][]MatchJSON, len(stressQueries)),
	}
	for _, mv := range o.eng.Views {
		rows := algebra.Materialize(o.eng.Doc, mv.Pattern)
		st.views[mv.Name] = rowsToJSON(mv.Pattern, rows)
	}
	for _, q := range stressQueries {
		nodes := xpath.Eval(o.eng.Doc, xpath.MustParse(q))
		ms := make([]MatchJSON, 0, len(nodes))
		for _, n := range nodes {
			ms = append(ms, MatchJSON{ID: n.ID.String(), Label: n.Label, Value: n.StringValue()})
		}
		st.matches[q] = ms
	}
	o.mu.Lock()
	o.expected[o.eng.Version()] = st
	o.mu.Unlock()
}

// step applies one statement to the shadow engine and records the oracle
// state for the version it lands on, returning that version. It must be
// called BEFORE the same statement is sent to the server, so that by the
// time any reader can observe the new epoch its expectation exists.
func (o *shadowOracle) step(t *testing.T, src string) uint64 {
	t.Helper()
	if _, err := o.eng.ApplyStatement(mustStatement(t, src)); err != nil {
		t.Fatalf("shadow apply %q: %v", src, err)
	}
	o.record()
	return o.eng.Version()
}

func (o *shadowOracle) at(version uint64) *expectedState {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.expected[version]
}

// rowsToJSON wire-encodes materialized rows exactly as the HTTP layer does.
func rowsToJSON(p *pattern.Pattern, rows []algebra.Row) []RowJSON {
	out := make([]RowJSON, 0, len(rows))
	for _, row := range rows {
		rj := RowJSON{Count: row.Count, Entries: make([]EntryJSON, 0, len(row.Entries))}
		for _, e := range row.Entries {
			rj.Entries = append(rj.Entries, EntryJSON{
				Label: p.Nodes[e.NodeIdx].Label,
				ID:    e.ID.String(),
				Val:   e.Val,
				Cont:  e.Cont,
			})
		}
		out = append(out, rj)
	}
	return out
}

func equalRowJSON(a, b []RowJSON) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Count != b[i].Count || len(a[i].Entries) != len(b[i].Entries) {
			return false
		}
		for j := range a[i].Entries {
			if a[i].Entries[j] != b[i].Entries[j] {
				return false
			}
		}
	}
	return true
}

func equalMatchJSON(a, b []MatchJSON) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestStressReadersVsWriters is the multi-tenant serving layer's isolation
// acceptance test: two WAL-backed tenants share one registry and one HTTP
// listener; each has its own writer streaming update statements while 8
// concurrent readers hammer both tenants' view and XPath endpoints. Every
// response must name its tenant, carry a published epoch version, versions
// must be monotone per reader per tenant, and the payload must equal a
// fresh recomputation of the view (or query) at exactly that version's
// document state in THAT tenant's shadow — i.e. readers never observe a
// torn, half-propagated, unpublished, or cross-tenant state. Run it under
// -race.
func TestStressReadersVsWriters(t *testing.T) {
	const (
		readers    = 8
		statements = 120 // per tenant
	)
	tenants := []string{"tide", "pool"}
	// Different scales so the two tenants' documents — and therefore their
	// oracles — are never accidentally interchangeable.
	docs := map[string]string{
		tenants[0]: xmark.GenerateSmall(1),
		tenants[1]: xmark.GenerateSmall(2),
	}

	reg, err := NewRegistry(RegistryConfig{
		Shard:        Config{QueueDepth: 32, Metrics: obs.New()},
		DataDir:      t.TempDir(),
		WAL:          wal.Options{Metrics: obs.New()},
		DefaultViews: testViewSpecs(),
	})
	if err != nil {
		t.Fatal(err)
	}
	oracles := make(map[string]*shadowOracle, len(tenants))
	for _, name := range tenants {
		if _, err := reg.Create(name, docs[name], nil); err != nil {
			t.Fatalf("create %s: %v", name, err)
		}
		oracles[name] = newShadowOracle(t, docs[name])
		sh, _ := reg.Get(name)
		if sv, ev := oracles[name].eng.Version(), sh.Epoch().Version; sv != ev {
			t.Fatalf("%s: shadow version %d != serving version %d at start", name, sv, ev)
		}
	}
	ts := httptest.NewServer(reg.Handler())
	defer ts.Close()

	stop := make(chan struct{})
	errc := make(chan string, readers+len(tenants))
	fail := func(format string, args ...any) {
		select {
		case errc <- fmt.Sprintf(format, args...):
		default:
		}
	}
	var wg sync.WaitGroup
	var readTotal [readers]int
	client := &http.Client{Timeout: 10 * time.Second}

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			lastVersion := make(map[string]uint64, len(tenants))
			for i := r; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				tenant := tenants[i%len(tenants)]
				oracle := oracles[tenant]
				base := ts.URL + "/v1/db/" + tenant
				var version uint64
				switch (i / len(tenants)) % 4 {
				case 0, 1: // view reads
					name := stressViews[(i/2)%len(stressViews)]
					var vr ViewResponse
					resp, err := client.Get(base + "/views/" + name)
					if err != nil {
						fail("reader %d: GET view: %v", r, err)
						return
					}
					code := resp.StatusCode
					err = json.NewDecoder(resp.Body).Decode(&vr)
					resp.Body.Close()
					if err != nil || code != http.StatusOK {
						fail("reader %d: %s view %s: status %d err %v", r, tenant, name, code, err)
						return
					}
					if vr.Tenant != tenant {
						fail("reader %d: asked %s, response stamped %q", r, tenant, vr.Tenant)
						return
					}
					exp := oracle.at(vr.Version)
					if exp == nil {
						fail("reader %d: %s view %s response at unpublished version %d", r, tenant, name, vr.Version)
						return
					}
					if !equalRowJSON(vr.Rows, exp.views[name]) {
						fail("reader %d: %s view %s at version %d does not equal fresh recomputation (%d rows, want %d)",
							r, tenant, name, vr.Version, len(vr.Rows), len(exp.views[name]))
						return
					}
					version = vr.Version
				case 2, 3: // XPath reads
					q := stressQueries[i%len(stressQueries)]
					var xr XPathResponse
					resp, err := client.Get(base + "/xpath?q=" + url.QueryEscape(q))
					if err != nil {
						fail("reader %d: GET xpath: %v", r, err)
						return
					}
					code := resp.StatusCode
					err = json.NewDecoder(resp.Body).Decode(&xr)
					resp.Body.Close()
					if err != nil || code != http.StatusOK {
						fail("reader %d: %s xpath %s: status %d err %v", r, tenant, q, code, err)
						return
					}
					if xr.Tenant != tenant {
						fail("reader %d: asked %s, xpath response stamped %q", r, tenant, xr.Tenant)
						return
					}
					exp := oracle.at(xr.Version)
					if exp == nil {
						fail("reader %d: %s xpath response at unpublished version %d", r, tenant, xr.Version)
						return
					}
					if !equalMatchJSON(xr.Matches, exp.matches[q]) {
						fail("reader %d: %s xpath %s at version %d does not equal fresh evaluation (%d matches, want %d)",
							r, tenant, q, xr.Version, len(xr.Matches), len(exp.matches[q]))
						return
					}
					version = xr.Version
				}
				if version < lastVersion[tenant] {
					fail("reader %d: %s version went backwards: %d after %d", r, tenant, version, lastVersion[tenant])
					return
				}
				lastVersion[tenant] = version
				readTotal[r]++
			}
		}(r)
	}

	// One writer per tenant: shadow-replay first (so the expectation exists
	// before the epoch can be published), then send the same statement
	// through the server, retrying 429 backpressure rejections. The two
	// writers run concurrently — cross-tenant ordering is deliberately
	// unsynchronized.
	var writerWG sync.WaitGroup
	for _, tenant := range tenants {
		writerWG.Add(1)
		go func(tenant string) {
			defer writerWG.Done()
			oracle := oracles[tenant]
			base := ts.URL + "/v1/db/" + tenant
			for i := 0; i < statements; i++ {
				src := stressVocabulary[i%len(stressVocabulary)]
				wantVersion := oracle.step(t, src)
				for {
					resp, ur := postUpdate(t, base, src)
					if resp.StatusCode == http.StatusTooManyRequests {
						time.Sleep(time.Millisecond)
						continue
					}
					if resp.StatusCode != http.StatusOK {
						fail("%s statement %d %q: status %d", tenant, i, src, resp.StatusCode)
						return
					}
					if ur.Tenant != tenant {
						fail("%s statement %d: ack stamped tenant %q", tenant, i, ur.Tenant)
						return
					}
					if ur.Version != wantVersion {
						fail("%s statement %d %q: server version %d, shadow version %d — engines diverged",
							tenant, i, src, ur.Version, wantVersion)
						return
					}
					break
				}
			}
		}(tenant)
	}
	writerWG.Wait()

	close(stop)
	wg.Wait()
	select {
	case msg := <-errc:
		t.Fatal(msg)
	default:
	}
	for r, n := range readTotal {
		if n < 10 {
			t.Fatalf("reader %d performed only %d reads — not a concurrent workload", r, n)
		}
	}

	// Final state check: each tenant's last epoch equals its own shadow's
	// final state.
	for _, tenant := range tenants {
		sh, err := reg.Get(tenant)
		if err != nil {
			t.Fatal(err)
		}
		snap := sh.Epoch()
		oracle := oracles[tenant]
		if snap.Version != oracle.eng.Version() {
			t.Fatalf("%s: final epoch version %d != shadow version %d", tenant, snap.Version, oracle.eng.Version())
		}
		exp := oracle.at(snap.Version)
		for i := range snap.Views {
			vs := &snap.Views[i]
			if !equalRowJSON(rowsToJSON(vs.Pattern, vs.Rows), exp.views[vs.Name]) {
				t.Fatalf("%s: final epoch view %s diverges from fresh recomputation", tenant, vs.Name)
			}
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := reg.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}
