package server

import (
	"xivm/internal/core"
	"xivm/internal/pattern"
	"xivm/internal/qvm"
	"xivm/internal/rewrite"
	"xivm/internal/xpath"
)

// This file is the view-based serving path for /v1/db/{name}/xpath: bridge
// the query to a tree pattern, try the delta-invalidated result cache,
// then the rewrite planner over the tenant's maintained views (single,
// stitch, intersection — cheapest by view cardinality), and only then fall
// back to the compiled tree walk. Every strategy answers from the SAME
// immutable epoch snapshot, so a rewritten response is byte-identical to
// the tree-walk response at that version — the differential tests and
// FuzzRewriteVsTreeWalk hold the layer to exactly that.

// xpathResponse computes the full response for q against one snapshot.
// It is the handler's core, split out so tests can pin rewritten and
// tree-walk answers to the same epoch. The returned Plan is always set
// ("treewalk" when no rewrite served it); the handler strips it unless
// explain=1 was asked, and json omitempty keeps non-explain bodies
// byte-identical across serving strategies.
func (r *Registry) xpathResponse(sh *Shard, snap *core.Snapshot, q string, allowRewrite bool) (XPathResponse, error) {
	resp := XPathResponse{Tenant: snap.Tenant, Version: snap.Version, Query: q}
	if allowRewrite && sh.qcache != nil {
		if e, ok := sh.qcache.get(q, snap.Version); ok {
			r.m.rewriteCacheHits.Inc()
			resp.Matches = e.matches
			resp.Plan = e.plan
			return resp, nil
		}
		if pat, err := bridgeQuery(q); err == nil {
			if matches, plan, ok := r.rewriteFromViews(snap, pat); ok {
				r.m.rewriteHits.Inc()
				switch plan.Kind {
				case "stitch":
					r.m.rewriteStitch.Inc()
				case "intersect":
					r.m.rewriteIntersect.Inc()
				}
				resp.Matches = matches
				resp.Plan = plan.Explain()
				sh.qcache.put(&cachedResult{query: q, pat: pat, matches: matches, plan: resp.Plan, version: snap.Version})
				return resp, nil
			}
			// Bridgeable but no view plan: the tree walk serves it, and the
			// result is still cacheable — the pattern drives invalidation.
			r.m.rewriteMisses.Inc()
			matches, err := r.treeWalkMatches(snap, q)
			if err != nil {
				return resp, err
			}
			resp.Matches = matches
			resp.Plan = "treewalk"
			sh.qcache.put(&cachedResult{query: q, pat: pat, matches: matches, plan: "treewalk", version: snap.Version})
			return resp, nil
		}
		r.m.rewriteMisses.Inc()
	}
	matches, err := r.treeWalkMatches(snap, q)
	if err != nil {
		return resp, err
	}
	resp.Matches = matches
	resp.Plan = "treewalk"
	return resp, nil
}

// bridgeQuery parses q and converts it to a tree pattern, or reports why
// it has none (the fallback signal).
func bridgeQuery(q string) (*pattern.Pattern, error) {
	p, err := xpath.Parse(q)
	if err != nil {
		return nil, err
	}
	return xpath.ToPattern(p)
}

// rewriteFromViews answers the bridged pattern from the snapshot's
// maintained views. The bridged result node stores ID and val, so matches
// are rebuilt entirely from view rows — the document is never touched.
func (r *Registry) rewriteFromViews(snap *core.Snapshot, pat *pattern.Pattern) ([]MatchJSON, *rewrite.Plan, bool) {
	if len(snap.Views) == 0 {
		return nil, nil, false
	}
	views := make([]*rewrite.View, 0, len(snap.Views))
	for i := range snap.Views {
		vs := &snap.Views[i]
		views = append(views, &rewrite.View{Name: vs.Name, Pattern: vs.Pattern, Rows: rewrite.RowSlice(vs.Rows)})
	}
	rows, plan, err := rewrite.Answer(pat, views)
	if err != nil {
		return nil, nil, false
	}
	label := pat.Nodes[pat.StoredIndexes()[0]].Label
	matches := make([]MatchJSON, 0, len(rows))
	for _, row := range rows {
		e := row.Entries[0]
		matches = append(matches, MatchJSON{ID: e.ID.String(), Label: label, Value: e.Val})
	}
	return matches, plan, true
}

// treeWalkMatches evaluates q against the snapshot document with a
// compiled program (registry-wide LRU keyed by the query string).
func (r *Registry) treeWalkMatches(snap *core.Snapshot, q string) ([]MatchJSON, error) {
	prog, ok := r.progs.Get(q)
	if ok {
		r.m.xpathCacheHits.Inc()
	} else {
		r.m.xpathCacheMisses.Inc()
		var err error
		prog, err = qvm.CompileString(q)
		if err != nil {
			return nil, err
		}
		if r.progs.Add(q, prog) {
			r.m.xpathCacheEvicts.Inc()
		}
	}
	nodes := prog.Eval(snap.Doc())
	matches := make([]MatchJSON, 0, len(nodes))
	for _, n := range nodes {
		matches = append(matches, MatchJSON{ID: n.ID.String(), Label: n.Label, Value: n.StringValue()})
	}
	return matches, nil
}
