package server

import (
	"container/list"
	"sync"

	"xivm/internal/independence"
	"xivm/internal/pattern"
	"xivm/internal/update"
)

// queryCache is a per-shard XPath result cache invalidated by the engine's
// applied-statement delta stream — the same deltas that maintain the views.
// Only pattern-expressible queries are cached (the bridged pattern is what
// the independence test runs against); an entry survives a write exactly
// when independence.Check proves the write cannot affect its pattern.
//
// Correctness rests on two version invariants, both guarded by mu:
//
//   - notifiedUpTo: every engine version up to and including it has been
//     vetted against the cache (entries a write may affect were dropped as
//     it landed). A lookup at snapshot version V serves an entry only when
//     entry.version <= V <= notifiedUpTo: anything newer than the vetted
//     range might invalidate silently. The engine's OnApplied contract
//     makes gaps detectable — a notification whose version does not equal
//     notifiedUpTo plus its statement count means un-vetted writes landed
//     (recomputation repair, lazy flush, direct PUL application), and the
//     whole cache is discarded.
//
//   - ring: the recent vetted writes, so a put computed against an older
//     snapshot (a reader raced a writer) is accepted only if every vetted
//     write newer than its snapshot is provably independent of its
//     pattern; older than the ring's floor it is simply rejected.
//
// The hook fires on the applying goroutine before the shard publishes the
// new epoch, so by the time any reader can observe version V, the cache
// has already been vetted through V.
type queryCache struct {
	mu           sync.Mutex
	cap          int
	entries      map[string]*list.Element // query -> *cachedResult
	lru          *list.List
	notifiedUpTo uint64
	ring         []appliedWrite
	floor        uint64 // versions <= floor have left the ring
	invalidated  int64  // cumulative entries dropped by deltas (for tests)
}

type cachedResult struct {
	query   string
	pat     *pattern.Pattern
	matches []MatchJSON
	plan    string
	version uint64
}

type appliedWrite struct {
	st      *update.Statement
	version uint64
}

const (
	queryCacheCap     = 128
	queryCacheRingCap = 64
)

func newQueryCache(startVersion uint64) *queryCache {
	return &queryCache{
		cap:          queryCacheCap,
		entries:      map[string]*list.Element{},
		lru:          list.New(),
		notifiedUpTo: startVersion,
		floor:        startVersion,
	}
}

// get returns the cached result for q valid at snapshot version cur.
func (c *queryCache) get(q string, cur uint64) (*cachedResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[q]
	if !ok {
		return nil, false
	}
	e := el.Value.(*cachedResult)
	if e.version > cur || cur > c.notifiedUpTo {
		return nil, false
	}
	c.lru.MoveToFront(el)
	return e, true
}

// put inserts a result computed at e.version, unless vetted writes newer
// than that version may affect its pattern (or the ring no longer reaches
// back far enough to tell).
func (c *queryCache) put(e *cachedResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e.version < c.floor {
		return
	}
	for _, w := range c.ring {
		if w.version > e.version && mayAffect(e.pat, w.st) {
			return
		}
	}
	if el, ok := c.entries[e.query]; ok {
		el.Value = e
		c.lru.MoveToFront(el)
		return
	}
	c.entries[e.query] = c.lru.PushFront(e)
	for c.lru.Len() > c.cap {
		back := c.lru.Back()
		c.lru.Remove(back)
		delete(c.entries, back.Value.(*cachedResult).query)
	}
}

// noteApplied vets a batch of landed statements now covered by version:
// entries any of them may affect are dropped, the rest keep serving at the
// new version. A contiguity violation discards everything — un-notified
// writes went past the cache. Returns how many entries were invalidated.
func (c *queryCache) noteApplied(sts []*update.Statement, version uint64) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if version != c.notifiedUpTo+uint64(len(sts)) {
		n := len(c.entries)
		c.dropAllLocked(version)
		c.invalidated += int64(n)
		return n
	}
	v := c.notifiedUpTo
	for _, st := range sts {
		v++
		c.ring = append(c.ring, appliedWrite{st: st, version: v})
	}
	c.notifiedUpTo = version
	if n := len(c.ring) - queryCacheRingCap; n > 0 {
		c.floor = c.ring[n-1].version
		c.ring = append(c.ring[:0], c.ring[n:]...)
	}
	dropped := 0
	for q, el := range c.entries {
		e := el.Value.(*cachedResult)
		for _, st := range sts {
			if mayAffect(e.pat, st) {
				c.lru.Remove(el)
				delete(c.entries, q)
				dropped++
				break
			}
		}
	}
	c.invalidated += int64(dropped)
	return dropped
}

// dropAll empties the cache and restarts the vetted range at version —
// used when the shard repaired its engine outside the delta stream.
func (c *queryCache) dropAll(version uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dropAllLocked(version)
}

func (c *queryCache) dropAllLocked(version uint64) {
	c.entries = map[string]*list.Element{}
	c.lru.Init()
	c.ring = c.ring[:0]
	c.notifiedUpTo = version
	c.floor = version
}

// mayAffect is the cache's conservative wrapper over the static
// independence test (no DTD on the serving path; nil statements come from
// unknown delta sources).
func mayAffect(p *pattern.Pattern, st *update.Statement) bool {
	if st == nil {
		return true
	}
	return independence.Check(p, st, nil) == independence.MayAffect
}
