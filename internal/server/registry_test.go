package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"xivm/internal/algebra"
	"xivm/internal/obs"
	"xivm/internal/wal"
	"xivm/internal/xmark"
)

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func deleteReq(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

// TestAdminPlaneLifecycle drives the full tenant lifecycle over HTTP:
// create (with the server's defaults and with an explicit document+views),
// list, duplicate create, invalid name, drop, and use-after-drop.
func TestAdminPlaneLifecycle(t *testing.T) {
	_, ts := newTestRegistry(t, Config{}, nil)

	// Create with an explicit document and views.
	resp, body := postJSON(t, ts.URL+"/v1/db", CreateDBRequest{
		Name:     "custom",
		Document: `<site><people><person id="p1"><name>Ada</name></person></people></site>`,
		Views:    []ViewSpec{{Name: "people", Pattern: xmark.View("Q1").String()}},
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create custom: status %d, body %s", resp.StatusCode, body)
	}
	var created CreateDBResponse
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}
	if created.Tenant != "custom" || len(created.Views) != 1 || created.Views[0].Rows != 1 {
		t.Fatalf("create response = %+v, want tenant custom with 1-row view", created)
	}

	// Create with server defaults (no document, no views).
	if resp, body := postJSON(t, ts.URL+"/v1/db", CreateDBRequest{Name: "defaults"}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create defaults: status %d, body %s", resp.StatusCode, body)
	}

	// The new tenants serve immediately and independently.
	var vr ViewResponse
	if code := getJSON(t, ts.URL+"/v1/db/custom/views/people", &vr); code != http.StatusOK {
		t.Fatalf("custom view status %d", code)
	}
	if vr.Tenant != "custom" || len(vr.Rows) != 1 {
		t.Fatalf("custom view = tenant %q %d rows, want custom/1", vr.Tenant, len(vr.Rows))
	}

	// List shows all three, sorted, with stats.
	var list ListDBsResponse
	if code := getJSON(t, ts.URL+"/v1/db", &list); code != http.StatusOK {
		t.Fatalf("list status %d", code)
	}
	names := make([]string, 0, len(list.Databases))
	for _, st := range list.Databases {
		names = append(names, st.Name)
		if st.QueueCap <= 0 {
			t.Fatalf("tenant %s stat missing queue cap: %+v", st.Name, st)
		}
	}
	if got := strings.Join(names, " "); got != "custom default defaults" {
		t.Fatalf("list = %q, want custom default defaults", got)
	}

	// Duplicate create: 409 db_exists.
	resp, body = postJSON(t, ts.URL+"/v1/db", CreateDBRequest{Name: "custom"})
	var er ErrorResponse
	if resp.StatusCode != http.StatusConflict || json.Unmarshal(body, &er) != nil || er.Error.Code != CodeDBExists {
		t.Fatalf("duplicate create: status %d, body %s, want 409 %s", resp.StatusCode, body, CodeDBExists)
	}

	// Invalid tenant name and invalid document: 400 bad_request.
	if resp, body := postJSON(t, ts.URL+"/v1/db", CreateDBRequest{Name: "no/slashes"}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad name: status %d, body %s, want 400", resp.StatusCode, body)
	}
	if resp, body := postJSON(t, ts.URL+"/v1/db", CreateDBRequest{Name: "baddoc", Document: "<unclosed"}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad document: status %d, body %s, want 400", resp.StatusCode, body)
	}

	// Drop, then use-after-drop and double-drop are 404 no_such_db.
	resp, body = deleteReq(t, ts.URL+"/v1/db/custom")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drop custom: status %d, body %s", resp.StatusCode, body)
	}
	var dropped DropDBResponse
	if err := json.Unmarshal(body, &dropped); err != nil || !dropped.Dropped {
		t.Fatalf("drop response = %s", body)
	}
	if code := getJSON(t, ts.URL+"/v1/db/custom/views", &er); code != http.StatusNotFound || er.Error.Code != CodeNoSuchDB {
		t.Fatalf("use-after-drop: status %d code %q, want 404 %s", code, er.Error.Code, CodeNoSuchDB)
	}
	if resp, _ := deleteReq(t, ts.URL+"/v1/db/custom"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double drop: status %d, want 404", resp.StatusCode)
	}
}

// TestDeprecatedAliases pins the backward-compatible single-tenant routes:
// every alias answers exactly like its /v1/db/default counterpart and
// carries the Deprecation header plus a successor Link.
func TestDeprecatedAliases(t *testing.T) {
	_, ts := newTestRegistry(t, Config{}, nil)

	aliases := []struct{ alias, successor string }{
		{"/v1/views", "/v1/db/default/views"},
		{"/v1/views/Q1", "/v1/db/default/views/Q1"},
		{"/v1/xpath?q=/site/people/person/name", "/v1/db/default/xpath?q=/site/people/person/name"},
	}
	for _, a := range aliases {
		resp, err := http.Get(ts.URL + a.alias)
		if err != nil {
			t.Fatal(err)
		}
		var aliasBody bytes.Buffer
		aliasBody.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", a.alias, resp.StatusCode)
		}
		if resp.Header.Get("Deprecation") != "true" {
			t.Fatalf("GET %s: missing Deprecation header", a.alias)
		}
		if link := resp.Header.Get("Link"); !strings.Contains(link, "successor-version") {
			t.Fatalf("GET %s: Link = %q, want a successor-version relation", a.alias, link)
		}

		resp2, err := http.Get(ts.URL + a.successor)
		if err != nil {
			t.Fatal(err)
		}
		var succBody bytes.Buffer
		succBody.ReadFrom(resp2.Body)
		resp2.Body.Close()
		if !bytes.Equal(aliasBody.Bytes(), succBody.Bytes()) {
			t.Fatalf("GET %s and %s disagree:\n%s\nvs\n%s", a.alias, a.successor, aliasBody.Bytes(), succBody.Bytes())
		}
	}

	// The update alias applies to the default tenant.
	body := strings.NewReader(`{"statement": "insert <person id=\"pa\"><name>Alias</name></person> into /site/people"}`)
	resp, err := http.Post(ts.URL+"/v1/update", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	var ur UpdateResponse
	err = json.NewDecoder(resp.Body).Decode(&ur)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/update: status %d err %v", resp.StatusCode, err)
	}
	if resp.Header.Get("Deprecation") != "true" {
		t.Fatal("POST /v1/update: missing Deprecation header")
	}
	if ur.Tenant != DefaultTenant {
		t.Fatalf("alias update applied to tenant %q, want %q", ur.Tenant, DefaultTenant)
	}
	var xr XPathResponse
	getJSON(t, ts.URL+"/v1/db/default/xpath?q=/site/people/person[@id]", &xr)
	found := false
	for _, m := range xr.Matches {
		if strings.Contains(m.Value, "Alias") {
			found = true
		}
	}
	if !found {
		t.Fatal("alias update not visible through the canonical route")
	}
}

// TestTenantIsolationUnderSaturation saturates one tenant's apply queue
// while another proceeds: the hot tenant must reject with 429 queue_full
// naming itself, and the cold tenant's updates and reads must all succeed
// — a hot tenant saturates only its own queue, never another's. Run under
// -race.
func TestTenantIsolationUnderSaturation(t *testing.T) {
	gate := make(chan struct{})
	reg, ts := newTestRegistry(t, Config{QueueDepth: 2}, func(tenant string, b Backend) Backend {
		if tenant == "hot" {
			return &gateBackend{Backend: b, gate: gate}
		}
		return b
	})
	for _, name := range []string{"hot", "cold"} {
		if _, err := reg.Create(name, "", nil); err != nil {
			t.Fatal(err)
		}
	}

	// Saturate hot: its writer blocks on the gate, so 1 in-flight + 2
	// queued submissions are absorbed; once the queue shows full, every
	// further submission deterministically bounces with 429 queue_full.
	st := `insert <person id="ph"><name>Hot</name></person> into /site/people`
	hot, err := reg.Get("hot")
	if err != nil {
		t.Fatal(err)
	}
	var absorbed sync.WaitGroup
	for i := 0; i < 3; i++ {
		absorbed.Add(1)
		go func() {
			defer absorbed.Done()
			hot.Apply(context.Background(), mustStatement(t, st))
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for hot.QueueLen() != hot.QueueCap() {
		if time.Now().After(deadline) {
			t.Fatalf("hot queue never filled (len %d, cap %d)", hot.QueueLen(), hot.QueueCap())
		}
		time.Sleep(time.Millisecond)
	}
	raw, _ := json.Marshal(UpdateRequest{Statement: st})
	resp, err := http.Post(ts.URL+"/v1/db/hot/update", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var er ErrorResponse
	json.NewDecoder(resp.Body).Decode(&er)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated hot update: status %d, want 429", resp.StatusCode)
	}
	if er.Error.Code != CodeQueueFull || er.Error.Tenant != "hot" {
		t.Fatalf("hot 429 envelope = %+v, want %s/hot", er.Error, CodeQueueFull)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("hot 429 without Retry-After")
	}

	// The cold tenant is untouched: every update succeeds and is readable,
	// and hot's reads (snapshot-isolated) still serve.
	for i := 0; i < 10; i++ {
		stmt := fmt.Sprintf(`insert <person id="pc%d"><name>Cold %d</name></person> into /site/people`, i, i)
		resp, ur := postUpdate(t, ts.URL+"/v1/db/cold", stmt)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("cold update %d: status %d while hot is saturated", i, resp.StatusCode)
		}
		if ur.Tenant != "cold" {
			t.Fatalf("cold update stamped tenant %q", ur.Tenant)
		}
	}
	var vr ViewsResponse
	if code := getJSON(t, ts.URL+"/v1/db/hot/views", &vr); code != http.StatusOK {
		t.Fatalf("hot reads blocked during saturation: status %d", code)
	}
	var cold ViewResponse
	getJSON(t, ts.URL+"/v1/db/cold/views/Q1", &cold)
	if cold.Tenant != "cold" {
		t.Fatalf("cold view stamped tenant %q", cold.Tenant)
	}

	// Hot's rejections are visible in its tenant counters, not cold's.
	var hotM, coldM TenantMetricsResponse
	getJSON(t, ts.URL+"/v1/db/hot/metrics", &hotM)
	getJSON(t, ts.URL+"/v1/db/cold/metrics", &coldM)
	if hotM.Rejected == 0 {
		t.Fatalf("hot rejected counter = %d, want > 0", hotM.Rejected)
	}
	if coldM.Rejected != 0 {
		t.Fatalf("cold rejected counter = %d, want 0", coldM.Rejected)
	}

	close(gate)
	absorbed.Wait()
}

// TestDurableRegistryRecovery exercises the durable lifecycle end to end:
// tenants created and updated through one registry survive into a second
// registry opened over the same tenant root with their exact view state
// (checked against a fresh recomputation), a dropped tenant stays dropped,
// and debris simulating kills mid-create (a directory without a
// checkpoint) and mid-drop (a tombstone) is cleaned up at open.
func TestDurableRegistryRecovery(t *testing.T) {
	root := t.TempDir()
	cfg := RegistryConfig{
		Shard:        Config{Metrics: obs.New()},
		DataDir:      root,
		WAL:          wal.Options{Metrics: obs.New()},
		DefaultDoc:   xmark.GenerateSmall(1),
		DefaultViews: testViewSpecs(),
	}
	reg, err := NewRegistry(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"alpha", "beta", "gamma"} {
		if _, err := reg.Create(name, "", nil); err != nil {
			t.Fatalf("create %s: %v", name, err)
		}
	}
	// Distinct update counts per tenant so recovered states are distinct.
	for i, name := range []string{"alpha", "beta", "gamma"} {
		sh, err := reg.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j <= i; j++ {
			stmt := fmt.Sprintf(`insert <person id="p-%s-%d"><name>N %d</name></person> into /site/people`, name, j, j)
			if _, _, err := sh.Apply(context.Background(), mustStatement(t, stmt)); err != nil {
				t.Fatalf("%s apply: %v", name, err)
			}
		}
	}
	wantRows := make(map[string]int)
	for _, st := range reg.Stats() {
		wantRows[st.Name] = st.Rows
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := reg.Drop(ctx, "beta"); err != nil {
		t.Fatalf("drop beta: %v", err)
	}
	if err := reg.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// Simulate a create killed before its initial checkpoint and a drop
	// killed between rename and delete.
	if err := os.MkdirAll(filepath.Join(root, "partial", "wal"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "partial", "wal", "000001.log"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(root, ".drop-oldone"), 0o755); err != nil {
		t.Fatal(err)
	}

	reg2, err := NewRegistry(cfg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer reg2.Shutdown(ctx)
	if got := strings.Join(reg2.Names(), " "); got != "alpha gamma" {
		t.Fatalf("recovered tenants = %q, want alpha gamma", got)
	}
	for _, name := range []string{"partial", ".drop-oldone"} {
		if _, err := os.Stat(filepath.Join(root, name)); !os.IsNotExist(err) {
			t.Fatalf("debris %s not cleaned at open (err=%v)", name, err)
		}
	}

	// Recovered views equal a fresh recomputation over the recovered doc,
	// and match the pre-restart row counts.
	for _, name := range []string{"alpha", "gamma"} {
		sh, err := reg2.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		snap := sh.Epoch()
		if snap.Tenant != name {
			t.Fatalf("%s: recovered epoch stamped tenant %q", name, snap.Tenant)
		}
		rows := 0
		for i := range snap.Views {
			vs := &snap.Views[i]
			fresh := algebra.Materialize(snap.Doc(), vs.Pattern)
			if len(fresh) != len(vs.Rows) {
				t.Fatalf("%s view %s: %d recovered rows, fresh recomputation %d", name, vs.Name, len(vs.Rows), len(fresh))
			}
			rows += len(vs.Rows)
		}
		if rows != wantRows[name] {
			t.Fatalf("%s: %d rows after recovery, want %d", name, rows, wantRows[name])
		}
		// And the recovered tenant still accepts updates.
		if _, _, err := sh.Apply(context.Background(), mustStatement(t, `insert <person id="post"><name>Post Recovery</name></person> into /site/people`)); err != nil {
			t.Fatalf("%s post-recovery apply: %v", name, err)
		}
	}

	// Creating a new tenant and re-creating the dropped name both work.
	if _, err := reg2.Create("beta", "", nil); err != nil {
		t.Fatalf("re-create dropped beta: %v", err)
	}
}

// TestCreateConcurrentSameName races N concurrent Creates of one name:
// exactly one must win, the rest must see ErrTenantExists, and the
// registry must never route a half-built tenant.
func TestCreateConcurrentSameName(t *testing.T) {
	reg, _ := newTestRegistry(t, Config{}, nil)
	const racers = 8
	var wg sync.WaitGroup
	errs := make(chan error, racers)
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := reg.Create("contested", "", nil)
			errs <- err
		}()
	}
	wg.Wait()
	close(errs)
	won, lost := 0, 0
	for err := range errs {
		switch {
		case err == nil:
			won++
		case errors.Is(err, ErrTenantExists):
			lost++
		default:
			t.Fatalf("unexpected create error: %v", err)
		}
	}
	if won != 1 || lost != racers-1 {
		t.Fatalf("won=%d lost=%d, want 1/%d", won, lost, racers-1)
	}
	if _, err := reg.Get("contested"); err != nil {
		t.Fatalf("winner not routed: %v", err)
	}
}
