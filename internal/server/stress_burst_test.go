package server

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"xivm/internal/core"
	"xivm/internal/obs"
	"xivm/internal/pulopt"
	"xivm/internal/update"
	"xivm/internal/wal"
	"xivm/internal/xmark"
)

// pausingBackend lets batching tests hold the writer at the engine boundary
// while statements are enqueued. The writer drains the queue BEFORE calling
// the backend, so releasing the lock after a full wave is queued guarantees
// at least one genuinely multi-statement batch per wave — the tests do not
// depend on scheduler luck to exercise batching. When entered is non-nil it
// receives one token as each backend call begins (before blocking on the
// lock), which lets a test wait until the writer has committed to a
// statement and only then enqueue the batch it wants drained as one unit.
type pausingBackend struct {
	Backend
	mu      sync.Mutex
	entered chan struct{}
}

func (b *pausingBackend) enter() {
	if b.entered != nil {
		b.entered <- struct{}{}
	}
	// The lock is a turnstile: acquiring it means the test finished
	// enqueueing the wave.
	b.mu.Lock()
	//lint:ignore SA2001 turnstile
	b.mu.Unlock()
}

func (b *pausingBackend) ApplyCtx(ctx context.Context, st *update.Statement) (*core.Report, error) {
	b.enter()
	return b.Backend.ApplyCtx(ctx, st)
}

func (b *pausingBackend) ApplyBatchCtx(ctx context.Context, plan *pulopt.BatchPlan) (*core.Report, int, error) {
	b.enter()
	return b.Backend.ApplyBatchCtx(ctx, plan)
}

// burstWave is wave w of the bursty write mix. The first six statements are
// deliberately batchable — predicate-free name paths, six distinct targets
// (no IO conflict), forest labels unique to the wave (no label overlap) —
// and from wave 2 on a delete retires a node inserted two waves earlier.
// Every fifth wave appends a replace, which the planner must reject,
// forcing the whole wave down the per-statement fallback; the oracle must
// hold on that path too.
func burstWave(w int) []string {
	srcs := []string{
		fmt.Sprintf(`insert <bw%ds0/> into /site/people`, w),
		fmt.Sprintf(`insert <bw%ds1/> into /site/regions`, w),
		fmt.Sprintf(`insert <bw%ds2/> into /site/open_auctions`, w),
		fmt.Sprintf(`insert <bw%ds3/> into /site/closed_auctions`, w),
		fmt.Sprintf(`insert <bw%ds4><deep/></bw%ds4> into /site/categories`, w, w),
	}
	if w >= 2 {
		srcs = append(srcs, fmt.Sprintf(`delete /site/people/bw%ds0`, w-2))
	}
	if w%5 == 4 {
		srcs = append(srcs, `replace /site/people/person/name with <name>Burst Renamed</name>`)
	}
	return srcs
}

// burstRunResult is one bursty run's observable outcome, compared across
// batching-on and batching-off runs.
type burstRunResult struct {
	doc       string
	version   uint64
	batches   int64
	fallbacks int64
}

// runBurstyShard drives one WAL-backed shard through burstWave waves
// submitted as FIFO bursts (ApplyAsync from a single goroutine), with the
// shadow oracle replayed strictly before each wave is enqueued and a
// concurrent monitor asserting that every published epoch equals a fresh
// recomputation at that version. Run under -race.
func runBurstyShard(t *testing.T, maxBatch int) burstRunResult {
	t.Helper()
	const waves = 30
	docXML := xmark.GenerateSmall(3)

	db, err := wal.Create(t.TempDir(), []byte(docXML), wal.Options{Metrics: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range stressViews {
		if _, err := db.AddView(name, xmark.View(name).String()); err != nil {
			t.Fatalf("add view %s: %v", name, err)
		}
	}
	oracle := newShadowOracle(t, docXML)

	metrics := obs.New()
	pb := &pausingBackend{Backend: db}
	s := NewShard("burst", pb, db.Close, Config{MaxBatch: maxBatch, Metrics: metrics})

	stop := make(chan struct{})
	errc := make(chan string, 2)
	fail := func(format string, args ...any) {
		select {
		case errc <- fmt.Sprintf(format, args...):
		default:
		}
	}

	// Epoch monitor: every snapshot any reader could observe must be a
	// recorded oracle state, and its view rows must equal recomputing the
	// view from scratch at that document version. Batching must never
	// publish a version the sequential schedule could not have reached.
	var monWG sync.WaitGroup
	monWG.Add(1)
	go func() {
		defer monWG.Done()
		var last uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := s.Epoch()
			if snap.Version != last {
				if snap.Version < last {
					fail("epoch version went backwards: %d after %d", snap.Version, last)
					return
				}
				exp := oracle.at(snap.Version)
				if exp == nil {
					fail("published epoch at unrecorded version %d", snap.Version)
					return
				}
				for i := range snap.Views {
					vs := &snap.Views[i]
					if !equalRowJSON(rowsToJSON(vs.Pattern, vs.Rows), exp.views[vs.Name]) {
						fail("epoch %d view %s does not equal fresh recomputation", snap.Version, vs.Name)
						return
					}
				}
				last = snap.Version
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()

	var lastAck uint64
	for w := 0; w < waves; w++ {
		srcs := burstWave(w)
		// Shadow-replay the whole wave first: by the time the server can
		// publish any of these versions, its expectation exists.
		want := make([]uint64, len(srcs))
		for i, src := range srcs {
			want[i] = oracle.step(t, src)
		}
		// Enqueue the wave while the writer is held at the engine boundary,
		// then release; single-goroutine ApplyAsync guarantees FIFO order.
		pb.mu.Lock()
		waits := make([]func() (*core.Report, uint64, error), len(srcs))
		for i, src := range srcs {
			wait, err := s.ApplyAsync(context.Background(), mustStatement(t, src))
			if err != nil {
				pb.mu.Unlock()
				t.Fatalf("wave %d stmt %d: enqueue: %v", w, i, err)
			}
			waits[i] = wait
		}
		pb.mu.Unlock()
		for i, wait := range waits {
			rep, version, err := wait()
			if err != nil {
				t.Fatalf("wave %d stmt %d: %v", w, i, err)
			}
			if rep == nil {
				t.Fatalf("wave %d stmt %d: acknowledged without a report", w, i)
			}
			// Read-your-writes: the ack's version is at least the version
			// this statement lands on sequentially (a batch ack is the
			// whole batch's published version), and it must be a recorded
			// sequential state — never an invented intermediate.
			if version < want[i] {
				t.Fatalf("wave %d stmt %d: ack at version %d, sequential apply reaches %d", w, i, version, want[i])
			}
			if oracle.at(version) == nil {
				t.Fatalf("wave %d stmt %d: ack at unrecorded version %d", w, i, version)
			}
			if version < lastAck {
				t.Fatalf("wave %d stmt %d: ack version went backwards: %d after %d", w, i, version, lastAck)
			}
			lastAck = version
		}
	}

	// Every statement acknowledged: the shard's final epoch is the shadow's
	// final state, exactly.
	snap := s.Epoch()
	if snap.Version != oracle.eng.Version() {
		t.Fatalf("final epoch version %d != shadow version %d", snap.Version, oracle.eng.Version())
	}
	if got, want := snap.Doc().String(), oracle.eng.Doc.String(); got != want {
		t.Fatalf("final document diverged from shadow\nserved: %s\nshadow: %s", got, want)
	}
	exp := oracle.at(snap.Version)
	for i := range snap.Views {
		vs := &snap.Views[i]
		if !equalRowJSON(rowsToJSON(vs.Pattern, vs.Rows), exp.views[vs.Name]) {
			t.Fatalf("final epoch view %s diverges from fresh recomputation", vs.Name)
		}
	}

	close(stop)
	monWG.Wait()
	select {
	case msg := <-errc:
		t.Fatal(msg)
	default:
	}

	res := burstRunResult{
		doc:       snap.Doc().String(),
		version:   snap.Version,
		batches:   metrics.CounterValue("server.batch.count"),
		fallbacks: metrics.CounterValue("server.batch.fallbacks"),
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}
	return res
}

// TestStressBurstyWriterBatches is the batching acceptance test: the same
// bursty workload runs once with batching on (default MaxBatch) and once
// with it disabled (MaxBatch 1), and the two runs must be indistinguishable
// — identical final documents, identical final versions, and every
// published epoch along the way equal to fresh recomputation against the
// per-statement shadow. The batched run must have actually translated
// batches, and its replace waves must have actually exercised the
// per-statement fallback; the disabled run must never batch.
func TestStressBurstyWriterBatches(t *testing.T) {
	batched := runBurstyShard(t, 0)
	serial := runBurstyShard(t, 1)

	if batched.batches == 0 {
		t.Fatal("batched run never translated a batch — the burst harness is not forcing batches")
	}
	if batched.fallbacks == 0 {
		t.Fatal("batched run never fell back — the replace waves are not exercising the fallback path")
	}
	if serial.batches != 0 {
		t.Fatalf("MaxBatch=1 run translated %d batches, want 0", serial.batches)
	}
	if batched.version != serial.version {
		t.Fatalf("final versions diverge: batched %d, per-statement %d", batched.version, serial.version)
	}
	if batched.doc != serial.doc {
		t.Fatalf("final documents diverge between batched and per-statement runs\nbatched: %s\nserial:  %s", batched.doc, serial.doc)
	}
}
