package server

import "xivm/internal/obs"

// serverMetrics bundles the serving layer's instruments. Counters:
//
//	server.http.requests      HTTP requests handled (any route)
//	server.apply.enqueued     updates accepted into the queue
//	server.apply.count        statements applied successfully
//	server.apply.errors       statements that failed in the engine
//	server.apply.abandoned    queued statements whose client gave up first
//	server.abandoned_applied  statements applied and published whose client
//	                          had already abandoned the wait (the at-most-
//	                          once-observable corner of Shard.Apply)
//	server.apply.panics       panics recovered in the writer loop
//	server.batch.count        translated batches propagated as one delta
//	server.batch.statements   statements that rode a translated batch
//	server.batch.fallbacks    drained batches the planner rejected (also
//	                          keyed server.batch.fallback.<reason>)
//	server.reject.queue_full  updates rejected with ErrQueueFull (429)
//	server.reject.shutdown    updates rejected with ErrShuttingDown (503)
//	server.sync.errors        backend Sync failures during drain
//	server.xpath.cache.hit    /xpath queries served by a cached compiled program
//	server.xpath.cache.miss   /xpath queries that compiled a fresh program
//	server.xpath.cache.evict  compiled programs evicted from the LRU
//	server.xpath.rewrite.hit  /xpath queries answered from maintained views
//	server.xpath.rewrite.miss /xpath queries that fell back to the tree
//	                          walk (not pattern-expressible, or no view plan)
//	server.xpath.rewrite.stitch
//	                          rewrite hits served by a two-view stitch plan
//	server.xpath.rewrite.intersect
//	                          rewrite hits served by a k-view intersection
//	server.xpath.rewrite.cache_hit
//	                          /xpath queries served from the delta-
//	                          invalidated result cache
//	server.xpath.rewrite.cache_invalidate
//	                          cached results dropped because an applied
//	                          statement may affect their pattern
//	snapshot.epochs           epochs published
//	snapshot.rows             cumulative view rows copied into epochs
//	snapshot.doc.nodes        cumulative document nodes copied into epochs
//	repl.leader.streams       /repl/stream requests served with frames
//	repl.leader.frame_bytes   raw frame bytes shipped to followers
//	repl.leader.snapshots     /repl/snapshot checkpoint images shipped
//	repl.leader.snapshot_required
//	                          stream requests answered 410 (LSN truncated)
//
// Histograms: server.apply.latency (engine apply time per statement or
// batch), server.batch.latency (engine apply time per translated batch),
// snapshot.publish (capture+swap time per epoch), server.query.latency and
// server.xpath.latency (read-path handler time).
//
// Multi-tenant serving aggregates every shard into the counters above and
// additionally keys a small per-tenant set (see tenantMetrics) as
// server.tenant.<name>.*, so one hot tenant is visible by name.
type serverMetrics struct {
	reg *obs.Metrics

	httpRequests      *obs.Counter
	enqueued          *obs.Counter
	applied           *obs.Counter
	applyErrors       *obs.Counter
	abandoned         *obs.Counter
	abandonedApplied  *obs.Counter
	applyPanics       *obs.Counter
	batches           *obs.Counter
	batchedStatements *obs.Counter
	batchFallbacks    *obs.Counter
	rejectedFull      *obs.Counter
	rejectedShutdown  *obs.Counter
	syncErrors        *obs.Counter
	xpathCacheHits    *obs.Counter
	xpathCacheMisses  *obs.Counter
	xpathCacheEvicts  *obs.Counter
	rewriteHits       *obs.Counter
	rewriteMisses     *obs.Counter
	rewriteStitch     *obs.Counter
	rewriteIntersect  *obs.Counter
	rewriteCacheHits  *obs.Counter
	rewriteCacheInval *obs.Counter
	epochs            *obs.Counter
	epochRows         *obs.Counter
	epochDocNodes     *obs.Counter
	replStreams       *obs.Counter
	replFrameBytes    *obs.Counter
	replSnapshots     *obs.Counter
	replTruncatedHits *obs.Counter

	applyLatency   *obs.Histogram
	batchLatency   *obs.Histogram
	publishLatency *obs.Histogram
	queryLatency   *obs.Histogram
	xpathLatency   *obs.Histogram
}

func newServerMetrics(reg *obs.Metrics) *serverMetrics {
	if reg == nil {
		reg = obs.Default()
	}
	return &serverMetrics{
		reg:               reg,
		httpRequests:      reg.Counter("server.http.requests"),
		enqueued:          reg.Counter("server.apply.enqueued"),
		applied:           reg.Counter("server.apply.count"),
		applyErrors:       reg.Counter("server.apply.errors"),
		abandoned:         reg.Counter("server.apply.abandoned"),
		abandonedApplied:  reg.Counter("server.abandoned_applied"),
		applyPanics:       reg.Counter("server.apply.panics"),
		batches:           reg.Counter("server.batch.count"),
		batchedStatements: reg.Counter("server.batch.statements"),
		batchFallbacks:    reg.Counter("server.batch.fallbacks"),
		rejectedFull:      reg.Counter("server.reject.queue_full"),
		rejectedShutdown:  reg.Counter("server.reject.shutdown"),
		syncErrors:        reg.Counter("server.sync.errors"),
		xpathCacheHits:    reg.Counter("server.xpath.cache.hit"),
		xpathCacheMisses:  reg.Counter("server.xpath.cache.miss"),
		xpathCacheEvicts:  reg.Counter("server.xpath.cache.evict"),
		rewriteHits:       reg.Counter("server.xpath.rewrite.hit"),
		rewriteMisses:     reg.Counter("server.xpath.rewrite.miss"),
		rewriteStitch:     reg.Counter("server.xpath.rewrite.stitch"),
		rewriteIntersect:  reg.Counter("server.xpath.rewrite.intersect"),
		rewriteCacheHits:  reg.Counter("server.xpath.rewrite.cache_hit"),
		rewriteCacheInval: reg.Counter("server.xpath.rewrite.cache_invalidate"),
		epochs:            reg.Counter("snapshot.epochs"),
		epochRows:         reg.Counter("snapshot.rows"),
		epochDocNodes:     reg.Counter("snapshot.doc.nodes"),
		replStreams:       reg.Counter("repl.leader.streams"),
		replFrameBytes:    reg.Counter("repl.leader.frame_bytes"),
		replSnapshots:     reg.Counter("repl.leader.snapshots"),
		replTruncatedHits: reg.Counter("repl.leader.snapshot_required"),
		applyLatency:      reg.Histogram("server.apply.latency"),
		batchLatency:      reg.Histogram("server.batch.latency"),
		publishLatency:    reg.Histogram("snapshot.publish"),
		queryLatency:      reg.Histogram("server.query.latency"),
		xpathLatency:      reg.Histogram("server.xpath.latency"),
	}
}

// tenantMetrics is one tenant's slice of the registry:
//
//	server.tenant.<name>.applied   statements applied for this tenant
//	server.tenant.<name>.rejected  updates bounced off this tenant's full queue
//	server.tenant.<name>.epochs    epochs this tenant published
//
// The per-tenant reject counter is the starvation signal the queue-depth
// limits exist for: a hot tenant racks up rejects while its neighbors'
// applied counters keep advancing.
type tenantMetrics struct {
	applied  *obs.Counter
	rejected *obs.Counter
	epochs   *obs.Counter
}

func newTenantMetrics(reg *obs.Metrics, tenant string) *tenantMetrics {
	if reg == nil {
		reg = obs.Default()
	}
	p := "server.tenant." + tenant + "."
	return &tenantMetrics{
		applied:  reg.Counter(p + "applied"),
		rejected: reg.Counter(p + "rejected"),
		epochs:   reg.Counter(p + "epochs"),
	}
}
