package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"xivm/internal/obs"
	"xivm/internal/update"
	"xivm/internal/xpath"
)

// Wire types for the JSON API. They are exported so clients (the xivmload
// generator, tests) can decode responses without re-declaring the shapes.

// HealthResponse answers GET /healthz.
type HealthResponse struct {
	Status  string `json:"status"` // "ok" or "draining"
	Version uint64 `json:"version"`
	Queue   int    `json:"queue"`
}

// ViewInfo is one view's summary in ViewsResponse.
type ViewInfo struct {
	Name string `json:"name"`
	Rows int    `json:"rows"`
}

// ViewsResponse answers GET /v1/views.
type ViewsResponse struct {
	Version uint64     `json:"version"`
	Views   []ViewInfo `json:"views"`
}

// EntryJSON is one stored pattern-node binding of a view row.
type EntryJSON struct {
	Label string `json:"label"`
	ID    string `json:"id"`
	Val   string `json:"val,omitempty"`
	Cont  string `json:"cont,omitempty"`
}

// RowJSON is one materialized view row.
type RowJSON struct {
	Count   int         `json:"count"`
	Entries []EntryJSON `json:"entries"`
}

// ViewResponse answers GET /v1/views/{name}.
type ViewResponse struct {
	Version uint64    `json:"version"`
	Name    string    `json:"name"`
	Rows    []RowJSON `json:"rows"`
}

// MatchJSON is one node matched by an XPath query.
type MatchJSON struct {
	ID    string `json:"id"`
	Label string `json:"label"`
	Value string `json:"value"`
}

// XPathResponse answers GET /v1/xpath.
type XPathResponse struct {
	Version uint64      `json:"version"`
	Query   string      `json:"query"`
	Matches []MatchJSON `json:"matches"`
}

// UpdateViewJSON is one view's maintenance summary in UpdateResponse.
type UpdateViewJSON struct {
	Name         string `json:"name"`
	RowsAdded    int    `json:"rows_added"`
	RowsRemoved  int    `json:"rows_removed"`
	RowsModified int    `json:"rows_modified"`
	Skipped      bool   `json:"skipped,omitempty"`
	Recomputed   bool   `json:"recomputed,omitempty"`
}

// UpdateRequest is the body of POST /v1/update.
type UpdateRequest struct {
	Statement string `json:"statement"`
}

// UpdateResponse answers POST /v1/update. Version is the epoch at which the
// update's effects are readable: a GET observing version >= this sees them.
type UpdateResponse struct {
	Version uint64           `json:"version"`
	Targets int              `json:"targets"`
	Views   []UpdateViewJSON `json:"views"`
}

// ErrorResponse is the body of every non-2xx answer.
type ErrorResponse struct {
	Error string `json:"error"`
}

// Handler returns the HTTP API:
//
//	GET  /healthz            liveness + current epoch version + queue depth
//	GET  /v1/views           all views' names and row counts
//	GET  /v1/views/{name}    one view's materialized rows
//	GET  /v1/xpath?q=PATH    evaluate an XPath query against the epoch doc
//	POST /v1/update          apply one update statement {"statement": "..."}
//	GET  /v1/metrics         JSON dump of the metrics registry
//
// All reads are served from the last published epoch — they never block on
// the writer, and a response's version field identifies the exact state it
// reflects. Updates block until applied and published (or rejected: 429
// when the queue is full, 503 while shutting down, 504 past the deadline).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /v1/views", s.handleViews)
	mux.HandleFunc("GET /v1/views/{name}", s.handleView)
	mux.HandleFunc("GET /v1/xpath", s.handleXPath)
	mux.HandleFunc("POST /v1/update", s.handleUpdate)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	return s.countRequests(mux)
}

func (s *Server) countRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.m.httpRequests.Inc()
		next.ServeHTTP(w, r)
	})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	s.mu.RLock()
	if s.closed {
		status = "draining"
	}
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:  status,
		Version: s.Epoch().Version,
		Queue:   s.QueueLen(),
	})
}

func (s *Server) handleViews(w http.ResponseWriter, r *http.Request) {
	defer s.observeSince(s.m.queryLatency, time.Now())
	snap := s.Epoch()
	resp := ViewsResponse{Version: snap.Version, Views: make([]ViewInfo, 0, len(snap.Views))}
	for i := range snap.Views {
		resp.Views = append(resp.Views, ViewInfo{Name: snap.Views[i].Name, Rows: len(snap.Views[i].Rows)})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleView(w http.ResponseWriter, r *http.Request) {
	defer s.observeSince(s.m.queryLatency, time.Now())
	snap := s.Epoch()
	vs := snap.View(r.PathValue("name"))
	if vs == nil {
		writeJSON(w, http.StatusNotFound, ErrorResponse{Error: "no such view: " + r.PathValue("name")})
		return
	}
	resp := ViewResponse{Version: snap.Version, Name: vs.Name, Rows: make([]RowJSON, 0, len(vs.Rows))}
	for _, row := range vs.Rows {
		rj := RowJSON{Count: row.Count, Entries: make([]EntryJSON, 0, len(row.Entries))}
		for _, e := range row.Entries {
			rj.Entries = append(rj.Entries, EntryJSON{
				Label: vs.Pattern.Nodes[e.NodeIdx].Label,
				ID:    e.ID.String(),
				Val:   e.Val,
				Cont:  e.Cont,
			})
		}
		resp.Rows = append(resp.Rows, rj)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleXPath(w http.ResponseWriter, r *http.Request) {
	defer s.observeSince(s.m.xpathLatency, time.Now())
	q := r.URL.Query().Get("q")
	if q == "" {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "missing q parameter"})
		return
	}
	path, err := xpath.Parse(q)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	snap := s.Epoch()
	nodes := xpath.Eval(snap.Doc(), path)
	resp := XPathResponse{Version: snap.Version, Query: q, Matches: make([]MatchJSON, 0, len(nodes))}
	for _, n := range nodes {
		resp.Matches = append(resp.Matches, MatchJSON{ID: n.ID.String(), Label: n.Label, Value: n.StringValue()})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	var req UpdateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	st, err := update.Parse(req.Statement)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	ctx := r.Context()
	if d := s.cfg.requestTimeout(); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	rep, version, err := s.Apply(ctx, st)
	if err != nil {
		writeError(w, err)
		return
	}
	resp := UpdateResponse{Version: version, Targets: rep.Targets, Views: make([]UpdateViewJSON, 0, len(rep.Views))}
	for i := range rep.Views {
		vr := &rep.Views[i]
		resp.Views = append(resp.Views, UpdateViewJSON{
			Name:         vr.View.Name,
			RowsAdded:    vr.RowsAdded,
			RowsRemoved:  vr.RowsRemoved,
			RowsModified: vr.RowsModified,
			Skipped:      vr.Skipped,
			Recomputed:   vr.PredFallback || vr.Cancelled || vr.Panicked,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = s.m.reg.WriteJSON(w)
}

func (s *Server) observeSince(h *obs.Histogram, t0 time.Time) {
	h.Observe(time.Since(t0))
}

func writeError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, ErrorResponse{Error: err.Error()})
	case errors.Is(err, ErrShuttingDown):
		writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: err.Error()})
	case errors.Is(err, context.DeadlineExceeded):
		writeJSON(w, http.StatusGatewayTimeout, ErrorResponse{Error: err.Error()})
	case errors.Is(err, context.Canceled):
		// Client went away; 499-style. StatusGatewayTimeout is the closest
		// standard code that is unmistakably "not applied as far as you know".
		writeJSON(w, http.StatusGatewayTimeout, ErrorResponse{Error: err.Error()})
	default:
		writeJSON(w, http.StatusUnprocessableEntity, ErrorResponse{Error: err.Error()})
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
