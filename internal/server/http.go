package server

import (
	"context"
	"encoding/json"
	"net/http"
	"time"

	"xivm/internal/obs"
	"xivm/internal/update"
)

// Wire types for the JSON API. They are exported so clients
// (internal/client, the xivmload generator, tests) can decode responses
// without re-declaring the shapes. Every data-plane response names the
// tenant it came from and the serving epoch (Version) it reflects: a
// reader holding responses from several tenants can assert per-tenant
// version agreement without out-of-band state.

// HealthResponse answers GET /healthz.
type HealthResponse struct {
	Status  string `json:"status"`  // "ok" or "draining"
	Role    string `json:"role"`    // "leader" or "follower"
	Tenants int    `json:"tenants"` // databases currently routed
	Queue   int    `json:"queue"`   // Σ queued updates across tenants
	// MaxLagLSN is the worst replication lag across tenants: on a follower,
	// max(last_lsn - applied_lsn); always 0 on a leader.
	MaxLagLSN uint64 `json:"max_lag_lsn,omitempty"`
}

// ViewInfo is one view's summary in ViewsResponse.
type ViewInfo struct {
	Name string `json:"name"`
	Rows int    `json:"rows"`
}

// ViewsResponse answers GET /v1/db/{db}/views.
type ViewsResponse struct {
	Tenant  string     `json:"tenant"`
	Version uint64     `json:"version"`
	Views   []ViewInfo `json:"views"`
}

// EntryJSON is one stored pattern-node binding of a view row.
type EntryJSON struct {
	Label string `json:"label"`
	ID    string `json:"id"`
	Val   string `json:"val,omitempty"`
	Cont  string `json:"cont,omitempty"`
}

// RowJSON is one materialized view row.
type RowJSON struct {
	Count   int         `json:"count"`
	Entries []EntryJSON `json:"entries"`
}

// ViewResponse answers GET /v1/db/{db}/views/{name}.
type ViewResponse struct {
	Tenant  string    `json:"tenant"`
	Version uint64    `json:"version"`
	Name    string    `json:"name"`
	Rows    []RowJSON `json:"rows"`
}

// MatchJSON is one node matched by an XPath query.
type MatchJSON struct {
	ID    string `json:"id"`
	Label string `json:"label"`
	Value string `json:"value"`
}

// XPathResponse answers GET /v1/db/{db}/xpath. Plan is populated only
// when the request asked explain=1: the rewrite plan that served the
// query ("single-view rewrite over V", "stitch of ...", "intersection of
// ..."), or "treewalk" when the document was walked directly.
type XPathResponse struct {
	Tenant  string      `json:"tenant"`
	Version uint64      `json:"version"`
	Query   string      `json:"query"`
	Plan    string      `json:"plan,omitempty"`
	Matches []MatchJSON `json:"matches"`
}

// UpdateViewJSON is one view's maintenance summary in UpdateResponse.
type UpdateViewJSON struct {
	Name         string `json:"name"`
	RowsAdded    int    `json:"rows_added"`
	RowsRemoved  int    `json:"rows_removed"`
	RowsModified int    `json:"rows_modified"`
	Skipped      bool   `json:"skipped,omitempty"`
	Recomputed   bool   `json:"recomputed,omitempty"`
}

// UpdateRequest is the body of POST /v1/db/{db}/update.
type UpdateRequest struct {
	Statement string `json:"statement"`
}

// UpdateResponse answers POST /v1/db/{db}/update. Version is the epoch at
// which the update's effects are readable: a GET observing version >= this
// sees them.
type UpdateResponse struct {
	Tenant  string           `json:"tenant"`
	Version uint64           `json:"version"`
	Targets int              `json:"targets"`
	Views   []UpdateViewJSON `json:"views"`
}

// Handler returns the multi-tenant HTTP API.
//
// Data plane (all reads served from the tenant's last published epoch —
// they never block on any writer, and every response names its tenant and
// the exact epoch it reflects; updates block until applied and published,
// or are rejected with the uniform error envelope: 429 queue_full when the
// tenant's queue is saturated, 503 shutting_down while draining, 504
// timeout past the deadline):
//
//	GET  /v1/db/{db}/views         the tenant's views: names and row counts
//	GET  /v1/db/{db}/views/{name}  one view's materialized rows
//	GET  /v1/db/{db}/xpath?q=PATH  evaluate XPath against the tenant's epoch doc
//	POST /v1/db/{db}/update        apply one statement {"statement": "..."}
//	GET  /v1/db/{db}/metrics       the tenant's stats + server.tenant.* counters
//
// Admin plane:
//
//	GET    /v1/db        list tenants with per-tenant epoch/queue/size stats
//	POST   /v1/db        create {"name", "document"?, "views"?} (crash-safe)
//	DELETE /v1/db/{db}   drop: drain, close, delete the WAL dir (crash-safe)
//
// Process-wide:
//
//	GET /healthz     liveness + tenant count + total queued updates
//	GET /v1/metrics  JSON dump of the whole metrics registry
//
// Deprecated single-tenant aliases, mounted on the "default" tenant and
// answering with a Deprecation header:
//
//	GET  /v1/views, GET /v1/views/{name}, GET /v1/xpath, POST /v1/update
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", r.handleHealth)
	mux.HandleFunc("GET /v1/metrics", r.handleMetrics)

	mux.HandleFunc("GET /v1/db", r.handleListDBs)
	mux.HandleFunc("POST /v1/db", r.handleCreateDB)
	mux.HandleFunc("DELETE /v1/db/{db}", r.handleDropDB)

	mux.HandleFunc("GET /v1/db/{db}/views", r.handleViews)
	mux.HandleFunc("GET /v1/db/{db}/views/{name}", r.handleView)
	mux.HandleFunc("GET /v1/db/{db}/xpath", r.handleXPath)
	mux.HandleFunc("POST /v1/db/{db}/update", r.handleUpdate)
	mux.HandleFunc("GET /v1/db/{db}/metrics", r.handleTenantMetrics)

	mux.HandleFunc("GET /v1/db/{db}/repl/status", r.handleReplStatus)
	mux.HandleFunc("GET /v1/db/{db}/repl/stream", r.handleReplStream)
	mux.HandleFunc("GET /v1/db/{db}/repl/snapshot", r.handleReplSnapshot)

	mux.HandleFunc("GET /v1/views", deprecatedAlias(r.handleViews))
	mux.HandleFunc("GET /v1/views/{name}", deprecatedAlias(r.handleView))
	mux.HandleFunc("GET /v1/xpath", deprecatedAlias(r.handleXPath))
	mux.HandleFunc("POST /v1/update", deprecatedAlias(r.handleUpdate))

	return r.countRequests(mux)
}

// deprecatedAlias mounts a pre-multi-tenant route onto the default tenant.
// The Deprecation header (RFC 9745) plus a successor Link tell clients
// where the route went without breaking them.
func deprecatedAlias(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", `</v1/db/`+DefaultTenant+`>; rel="successor-version"`)
		req.SetPathValue("db", DefaultTenant)
		h(w, req)
	}
}

func (r *Registry) countRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		r.m.httpRequests.Inc()
		next.ServeHTTP(w, req)
	})
}

// tenantShard resolves the {db} path segment, answering the 404 envelope
// itself when the tenant does not exist.
func (r *Registry) tenantShard(w http.ResponseWriter, req *http.Request) (*Shard, bool) {
	name := req.PathValue("db")
	sh, err := r.Get(name)
	if err != nil {
		writeErr(w, http.StatusNotFound, CodeNoSuchDB, name, err.Error())
		return nil, false
	}
	return sh, true
}

func (r *Registry) handleHealth(w http.ResponseWriter, req *http.Request) {
	status := "ok"
	if r.draining() {
		status = "draining"
	}
	role := "leader"
	if r.cfg.FollowerOf != "" {
		role = "follower"
	}
	r.mu.RLock()
	tenants := len(r.shards)
	queue := 0
	var maxLag uint64
	for _, sh := range r.shards {
		queue += sh.QueueLen()
		if applied, last := sh.LSNs(); last > applied && last-applied > maxLag {
			maxLag = last - applied
		}
	}
	r.mu.RUnlock()
	writeJSON(w, http.StatusOK, HealthResponse{Status: status, Role: role, Tenants: tenants, Queue: queue, MaxLagLSN: maxLag})
}

func (r *Registry) handleViews(w http.ResponseWriter, req *http.Request) {
	defer r.observeSince(r.m.queryLatency, time.Now())
	sh, ok := r.tenantShard(w, req)
	if !ok {
		return
	}
	snap := sh.Epoch()
	resp := ViewsResponse{Tenant: snap.Tenant, Version: snap.Version, Views: make([]ViewInfo, 0, len(snap.Views))}
	for i := range snap.Views {
		resp.Views = append(resp.Views, ViewInfo{Name: snap.Views[i].Name, Rows: len(snap.Views[i].Rows)})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (r *Registry) handleView(w http.ResponseWriter, req *http.Request) {
	defer r.observeSince(r.m.queryLatency, time.Now())
	sh, ok := r.tenantShard(w, req)
	if !ok {
		return
	}
	snap := sh.Epoch()
	vs := snap.View(req.PathValue("name"))
	if vs == nil {
		writeErr(w, http.StatusNotFound, CodeNotFound, snap.Tenant, "no such view: "+req.PathValue("name"))
		return
	}
	resp := ViewResponse{Tenant: snap.Tenant, Version: snap.Version, Name: vs.Name, Rows: make([]RowJSON, 0, len(vs.Rows))}
	for _, row := range vs.Rows {
		rj := RowJSON{Count: row.Count, Entries: make([]EntryJSON, 0, len(row.Entries))}
		for _, e := range row.Entries {
			rj.Entries = append(rj.Entries, EntryJSON{
				Label: vs.Pattern.Nodes[e.NodeIdx].Label,
				ID:    e.ID.String(),
				Val:   e.Val,
				Cont:  e.Cont,
			})
		}
		resp.Rows = append(resp.Rows, rj)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (r *Registry) handleXPath(w http.ResponseWriter, req *http.Request) {
	defer r.observeSince(r.m.xpathLatency, time.Now())
	sh, ok := r.tenantShard(w, req)
	if !ok {
		return
	}
	q := req.URL.Query().Get("q")
	if q == "" {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, sh.Name(), "missing q parameter")
		return
	}
	// rewrite=0 forces the tree walk (the differential tests' oracle side);
	// explain=1 echoes the plan that served the query.
	snap := sh.Epoch()
	resp, err := r.xpathResponse(sh, snap, q, req.URL.Query().Get("rewrite") != "0")
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, sh.Name(), err.Error())
		return
	}
	if req.URL.Query().Get("explain") != "1" {
		resp.Plan = ""
	}
	writeJSON(w, http.StatusOK, resp)
}

func (r *Registry) handleUpdate(w http.ResponseWriter, req *http.Request) {
	sh, ok := r.tenantShard(w, req)
	if !ok {
		return
	}
	if leader := r.cfg.FollowerOf; leader != "" {
		writeErr(w, http.StatusForbidden, CodeReadOnly, sh.Name(),
			"read-only follower: send writes to the leader at "+leader)
		return
	}
	var ur UpdateRequest
	if err := json.NewDecoder(req.Body).Decode(&ur); err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, sh.Name(), "bad request body: "+err.Error())
		return
	}
	st, err := update.Parse(ur.Statement)
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, sh.Name(), err.Error())
		return
	}
	ctx := req.Context()
	if d := sh.cfg.requestTimeout(); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	rep, version, err := sh.Apply(ctx, st)
	if err != nil {
		writeApplyError(w, sh.Name(), err)
		return
	}
	resp := UpdateResponse{Tenant: sh.Name(), Version: version, Targets: rep.Targets, Views: make([]UpdateViewJSON, 0, len(rep.Views))}
	for i := range rep.Views {
		vr := &rep.Views[i]
		resp.Views = append(resp.Views, UpdateViewJSON{
			Name:         vr.View.Name,
			RowsAdded:    vr.RowsAdded,
			RowsRemoved:  vr.RowsRemoved,
			RowsModified: vr.RowsModified,
			Skipped:      vr.Skipped,
			Recomputed:   vr.PredFallback || vr.Cancelled || vr.Panicked,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (r *Registry) handleMetrics(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = r.m.reg.WriteJSON(w)
}

func (r *Registry) observeSince(h *obs.Histogram, t0 time.Time) {
	h.Observe(time.Since(t0))
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
