package server

import (
	"encoding/json"
	"net/http"
)

// Admin-plane wire types.

// CreateDBRequest is the body of POST /v1/db. Document and Views are
// optional when the server was started with a default document / default
// views (xivm -listen -doc …).
type CreateDBRequest struct {
	Name     string     `json:"name"`
	Document string     `json:"document,omitempty"`
	Views    []ViewSpec `json:"views,omitempty"`
}

// CreateDBResponse answers POST /v1/db: the new tenant's identity, its
// first serving epoch, and the views materialized at creation.
type CreateDBResponse struct {
	Tenant  string     `json:"tenant"`
	Version uint64     `json:"version"`
	Views   []ViewInfo `json:"views"`
}

// ListDBsResponse answers GET /v1/db.
type ListDBsResponse struct {
	Databases []TenantStat `json:"databases"`
}

// DropDBResponse answers DELETE /v1/db/{db}.
type DropDBResponse struct {
	Tenant  string `json:"tenant"`
	Dropped bool   `json:"dropped"`
}

// TenantMetricsResponse answers GET /v1/db/{db}/metrics: the tenant's
// TenantStat plus its server.tenant.* counters.
type TenantMetricsResponse struct {
	TenantStat
	Applied  int64 `json:"applied"`
	Rejected int64 `json:"rejected"`
	Epochs   int64 `json:"epochs"`
}

func (r *Registry) handleListDBs(w http.ResponseWriter, req *http.Request) {
	writeJSON(w, http.StatusOK, ListDBsResponse{Databases: r.Stats()})
}

func (r *Registry) handleCreateDB(w http.ResponseWriter, req *http.Request) {
	if leader := r.cfg.FollowerOf; leader != "" {
		writeErr(w, http.StatusForbidden, CodeReadOnly, "",
			"read-only follower: create databases on the leader at "+leader)
		return
	}
	var cr CreateDBRequest
	if err := json.NewDecoder(req.Body).Decode(&cr); err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, "", "bad request body: "+err.Error())
		return
	}
	sh, err := r.Create(cr.Name, cr.Document, cr.Views)
	if err != nil {
		writeLifecycleError(w, cr.Name, err)
		return
	}
	snap := sh.Epoch()
	resp := CreateDBResponse{Tenant: sh.Name(), Version: snap.Version, Views: make([]ViewInfo, 0, len(snap.Views))}
	for i := range snap.Views {
		resp.Views = append(resp.Views, ViewInfo{Name: snap.Views[i].Name, Rows: len(snap.Views[i].Rows)})
	}
	writeJSON(w, http.StatusCreated, resp)
}

func (r *Registry) handleDropDB(w http.ResponseWriter, req *http.Request) {
	name := req.PathValue("db")
	if leader := r.cfg.FollowerOf; leader != "" {
		writeErr(w, http.StatusForbidden, CodeReadOnly, name,
			"read-only follower: drop databases on the leader at "+leader)
		return
	}
	if err := r.Drop(req.Context(), name); err != nil {
		writeLifecycleError(w, name, err)
		return
	}
	writeJSON(w, http.StatusOK, DropDBResponse{Tenant: name, Dropped: true})
}

func (r *Registry) handleTenantMetrics(w http.ResponseWriter, req *http.Request) {
	sh, ok := r.tenantShard(w, req)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, TenantMetricsResponse{
		TenantStat: sh.stat(),
		Applied:    sh.tm.applied.Value(),
		Rejected:   sh.tm.rejected.Value(),
		Epochs:     sh.tm.epochs.Value(),
	})
}
