package server

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"xivm/internal/core"
	"xivm/internal/pattern"
	"xivm/internal/qvm"
	"xivm/internal/wal"
	"xivm/internal/xmltree"
)

// DefaultTenant is the tenant the deprecated single-tenant routes
// (/v1/views, /v1/xpath, /v1/update) are mounted on.
const DefaultTenant = "default"

// ViewSpec declares one view for tenant creation: a name and a tree
// pattern in the pattern syntax (pattern.Parse).
type ViewSpec struct {
	Name    string `json:"name"`
	Pattern string `json:"pattern"`
}

// RegistryConfig tunes a Registry. The zero value is an in-memory registry
// (nothing persisted) with default shard tuning and no tenants.
type RegistryConfig struct {
	// Shard is the per-tenant serving configuration (queue depth, request
	// timeout, metrics registry). Every tenant gets the same limits — the
	// queue-depth limit is per tenant, which is what keeps one hot tenant
	// from starving the rest.
	Shard Config
	// DataDir is the tenant root: each tenant owns <DataDir>/<name> with
	// its own WAL and checkpoints. Empty means in-memory tenants only.
	DataDir string
	// WAL is the per-tenant durability template (sync policy, segment
	// size, checkpoint cadence, engine options). Ignored when DataDir is
	// empty, except for WAL.Engine which configures in-memory engines too.
	WAL wal.Options
	// DefaultDoc seeds tenants created without a document of their own
	// (POST /v1/db with no "document"). Empty disables doc-less creation.
	DefaultDoc string
	// DefaultViews are registered on every tenant created without views of
	// its own.
	DefaultViews []ViewSpec
	// XPathCacheSize caps the registry-wide LRU of compiled XPath programs
	// serving /v1/db/{name}/xpath. Zero means the default (256); compiled
	// programs are immutable and document-independent, so one cache safely
	// serves every tenant and epoch.
	XPathCacheSize int

	// FollowerOf, when set, makes this a read-only follower registry: its
	// tenants are replica shards attached by the replication layer
	// (internal/repl) tailing the leader at this base URL. Updates and
	// admin-plane writes are rejected with code read_only pointing here.
	// DataDir must be empty — a follower keeps no log of its own; its
	// durable state IS the leader's.
	FollowerOf string

	// wrapBackend, when set, wraps every tenant's backend before the shard
	// is built — the test seam for gating or failing one tenant's applies.
	wrapBackend func(tenant string, b Backend) Backend
}

// Registry hosts many tenants in one process: it owns the tenant lifecycle
// (crash-safe create, drop, list, recovery of every surviving tenant at
// open) and routes the HTTP API to per-tenant shards. All methods are safe
// for concurrent use.
type Registry struct {
	cfg   RegistryConfig
	m     *serverMetrics
	progs *qvm.Cache // compiled XPath programs, keyed by query string

	mu       sync.RWMutex
	shards   map[string]*Shard
	creating map[string]bool // names reserved by in-flight Creates
	closed   bool
}

// NewRegistry builds a registry. With a DataDir it scans the tenant root,
// finishes any interrupted create or drop (see wal.ScanTenantRoot), and
// recovers every surviving tenant through the normal WAL open path — a
// process killed at any point reopens with exactly the tenants whose
// creation had been acknowledged and whose drop had not.
func NewRegistry(cfg RegistryConfig) (*Registry, error) {
	if _, err := compileViews(cfg.DefaultViews); err != nil {
		return nil, fmt.Errorf("server: default views: %w", err)
	}
	if cfg.DefaultDoc != "" {
		if _, err := xmltree.ParseString(cfg.DefaultDoc); err != nil {
			return nil, fmt.Errorf("server: default document: %w", err)
		}
	}
	if cfg.FollowerOf != "" && cfg.DataDir != "" {
		return nil, fmt.Errorf("server: a follower registry keeps no data dir of its own")
	}
	cacheSize := cfg.XPathCacheSize
	if cacheSize == 0 {
		cacheSize = 256
	}
	r := &Registry{
		cfg:      cfg,
		m:        newServerMetrics(cfg.Shard.Metrics),
		progs:    qvm.NewCache(cacheSize),
		shards:   make(map[string]*Shard),
		creating: make(map[string]bool),
	}
	if cfg.DataDir == "" {
		return r, nil
	}
	names, _, err := wal.ScanTenantRoot(cfg.WAL.FS, cfg.DataDir)
	if err != nil {
		return nil, err
	}
	for _, name := range names {
		db, err := wal.Open(wal.TenantDir(cfg.DataDir, name), r.walOptions())
		if err != nil {
			r.closeAll()
			return nil, fmt.Errorf("server: recovering tenant %s: %w", name, err)
		}
		r.shards[name] = r.newShard(name, db, db.Close)
	}
	return r, nil
}

func (r *Registry) walOptions() wal.Options {
	opts := r.cfg.WAL
	if opts.Metrics == nil {
		opts.Metrics = r.cfg.Shard.Metrics
	}
	return opts
}

func (r *Registry) newShard(name string, b Backend, closer func() error) *Shard {
	// Capture the replication surface before any test wrapping hides it:
	// streaming reads raw segment files, which no wrapper intermediates.
	repl, _ := b.(ReplSource)
	if r.cfg.wrapBackend != nil {
		b = r.cfg.wrapBackend(name, b)
	}
	sh := NewShard(name, b, closer, r.cfg.Shard)
	sh.repl = repl
	return sh
}

// NewReplica builds and routes a read-only replica shard for a follower
// registry. The replication tailer owns eng and publishes every applied
// batch through PublishReplica; the registry serves reads from it like any
// other tenant. Re-attaching an existing name replaces the routed shard
// (the tailer does this after a snapshot-first re-sync builds a fresh
// engine).
func (r *Registry) NewReplica(name string, eng *core.Engine, appliedLSN, leaderLast uint64) (*Shard, error) {
	if r.cfg.FollowerOf == "" {
		return nil, fmt.Errorf("server: NewReplica on a non-follower registry")
	}
	if err := wal.ValidTenantName(name); err != nil {
		return nil, invalidError{err}
	}
	sh := NewReplicaShard(name, eng, appliedLSN, leaderLast, r.cfg.Shard)
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, ErrRegistryClosed
	}
	r.shards[name] = sh
	return sh, nil
}

// DropReplica unroutes a replica shard (the leader dropped the tenant).
func (r *Registry) DropReplica(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if sh := r.shards[name]; sh != nil && sh.Replica() {
		delete(r.shards, name)
	}
}

// FollowerOf returns the leader base URL when this registry is a follower,
// and "" otherwise.
func (r *Registry) FollowerOf() string { return r.cfg.FollowerOf }

// closeAll force-closes every shard already built (constructor error path).
func (r *Registry) closeAll() {
	for _, sh := range r.shards {
		ctx, cancel := context.WithCancel(context.Background())
		_ = sh.Close(ctx)
		cancel()
	}
}

// compiledView is a validated ViewSpec.
type compiledView struct {
	name string
	src  string
	p    *pattern.Pattern
}

// compileViews validates view specs up front, so tenant creation either
// materializes every declared view or touches nothing.
func compileViews(specs []ViewSpec) ([]compiledView, error) {
	out := make([]compiledView, 0, len(specs))
	seen := make(map[string]bool, len(specs))
	for _, s := range specs {
		if s.Name == "" {
			return nil, invalid("view with empty name")
		}
		if seen[s.Name] {
			return nil, invalid("duplicate view %q", s.Name)
		}
		seen[s.Name] = true
		p, err := pattern.Parse(s.Pattern)
		if err != nil {
			return nil, invalid("view %s: %v", s.Name, err)
		}
		if len(p.StoredIndexes()) == 0 {
			return nil, invalid("view %s stores nothing", s.Name)
		}
		// The canonical rendering round-trips through pattern.Parse, which
		// is what the WAL journals.
		out = append(out, compiledView{name: s.Name, src: p.String(), p: p})
	}
	return out, nil
}

// Create materializes a new tenant: document parsed, views registered, WAL
// directory initialized (durable registries), shard started. docXML and
// views fall back to the registry's DefaultDoc/DefaultViews when empty.
// The name is reserved for the whole build, so concurrent Creates of the
// same name see ErrTenantExists, but Creates of different tenants — and
// all reads — proceed in parallel; the heavy materialization runs outside
// the registry lock.
func (r *Registry) Create(name, docXML string, views []ViewSpec) (*Shard, error) {
	if err := wal.ValidTenantName(name); err != nil {
		return nil, invalidError{err}
	}
	if docXML == "" {
		docXML = r.cfg.DefaultDoc
	}
	if docXML == "" {
		return nil, invalid("database %s: no document given and the server has no default", name)
	}
	specs := views
	if len(specs) == 0 {
		specs = r.cfg.DefaultViews
	}
	compiled, err := compileViews(specs)
	if err != nil {
		return nil, err
	}

	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrRegistryClosed
	}
	if r.shards[name] != nil || r.creating[name] {
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrTenantExists, name)
	}
	r.creating[name] = true
	r.mu.Unlock()
	release := func() {
		r.mu.Lock()
		delete(r.creating, name)
		r.mu.Unlock()
	}

	sh, err := r.buildTenant(name, docXML, compiled)
	if err != nil {
		release()
		return nil, err
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		release()
		ctx, cancel := context.WithCancel(context.Background())
		_ = sh.Close(ctx)
		cancel()
		if r.cfg.DataDir != "" {
			_ = wal.DropTenant(r.cfg.WAL.FS, r.cfg.DataDir, name)
		}
		return nil, ErrRegistryClosed
	}
	r.shards[name] = sh
	delete(r.creating, name)
	r.mu.Unlock()
	return sh, nil
}

// buildTenant constructs the backend and shard for a reserved name. For
// durable tenants the crash-safety contract is wal.Create's: the tenant
// exists only once its initial checkpoint is published atomically, so a
// kill mid-build leaves debris the next ScanTenantRoot removes.
func (r *Registry) buildTenant(name, docXML string, views []compiledView) (*Shard, error) {
	if r.cfg.DataDir == "" {
		doc, err := xmltree.ParseString(docXML)
		if err != nil {
			return nil, invalid("database %s: document: %v", name, err)
		}
		eng := core.New(doc, r.cfg.WAL.Engine...)
		for _, v := range views {
			if _, err := eng.AddView(v.name, v.p); err != nil {
				return nil, invalid("database %s: view %s: %v", name, v.name, err)
			}
		}
		return r.newShard(name, EngineBackend{Eng: eng}, nil), nil
	}
	// Parse before touching the disk so a bad document is a clean 400, not
	// an I/O error with a half-created directory behind it.
	if _, err := xmltree.ParseString(docXML); err != nil {
		return nil, invalid("database %s: document: %v", name, err)
	}
	dir := wal.TenantDir(r.cfg.DataDir, name)
	db, err := wal.Create(dir, []byte(docXML), r.walOptions())
	if err != nil {
		return nil, fmt.Errorf("server: create tenant %s: %w", name, err)
	}
	for _, v := range views {
		if _, err := db.AddView(v.name, v.src); err != nil {
			db.Close()
			_ = wal.DropTenant(r.cfg.WAL.FS, r.cfg.DataDir, name)
			return nil, fmt.Errorf("server: create tenant %s: view %s: %w", name, v.name, err)
		}
	}
	return r.newShard(name, db, db.Close), nil
}

// Drop removes a tenant: it is unrouted immediately, its writer drains
// every accepted update, its backend closes, and (durable registries) its
// directory is deleted crash-safely — a kill mid-drop leaves a tombstone
// the next open finishes deleting, never a half-alive tenant. If ctx
// expires before the drain completes the tenant is re-routed and the drop
// reported failed.
func (r *Registry) Drop(ctx context.Context, name string) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrRegistryClosed
	}
	sh := r.shards[name]
	if sh == nil {
		busy := r.creating[name]
		r.mu.Unlock()
		if busy {
			return fmt.Errorf("%w: %s (still being created)", ErrTenantExists, name)
		}
		return fmt.Errorf("%w: %s", ErrNoSuchTenant, name)
	}
	delete(r.shards, name)
	r.mu.Unlock()

	if err := sh.Close(ctx); err != nil {
		// Drain incomplete: the writer is still running, so the files must
		// stay. Put the tenant back and report failure.
		r.mu.Lock()
		r.shards[name] = sh
		r.mu.Unlock()
		return fmt.Errorf("server: drop %s: drain: %w", name, err)
	}
	if r.cfg.DataDir != "" {
		if err := wal.DropTenant(r.cfg.WAL.FS, r.cfg.DataDir, name); err != nil {
			return fmt.Errorf("server: drop %s: %w", name, err)
		}
	}
	return nil
}

// Get returns the named tenant's shard, or ErrNoSuchTenant.
func (r *Registry) Get(name string) (*Shard, error) {
	r.mu.RLock()
	sh := r.shards[name]
	r.mu.RUnlock()
	if sh == nil {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchTenant, name)
	}
	return sh, nil
}

// Names returns the tenants currently routed, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	names := make([]string, 0, len(r.shards))
	for name := range r.shards {
		names = append(names, name)
	}
	r.mu.RUnlock()
	sort.Strings(names)
	return names
}

// TenantStat is one tenant's row in List: identity plus the size and
// pressure numbers an operator dashboards. AppliedLSN/LastLSN make
// replication lag observable without the repl endpoints: on a leader both
// are the log tip; on a follower AppliedLSN is the serving position and
// LastLSN the leader's advertised tip, so LastLSN-AppliedLSN is the lag.
type TenantStat struct {
	Name       string `json:"name"`
	Version    uint64 `json:"version"` // serving epoch
	Queue      int    `json:"queue"`
	QueueCap   int    `json:"queue_cap"`
	Views      int    `json:"views"`
	Rows       int    `json:"rows"`      // Σ view rows at the serving epoch
	DocNodes   int    `json:"doc_nodes"` // document size at the serving epoch
	Role       string `json:"role,omitempty"`
	AppliedLSN uint64 `json:"applied_lsn,omitempty"`
	LastLSN    uint64 `json:"last_lsn,omitempty"`
}

func (s *Shard) stat() TenantStat {
	snap := s.Epoch()
	st := TenantStat{
		Name:     s.name,
		Version:  snap.Version,
		Queue:    s.QueueLen(),
		QueueCap: s.QueueCap(),
		Views:    len(snap.Views),
		DocNodes: snap.Doc().Size(),
	}
	for i := range snap.Views {
		st.Rows += len(snap.Views[i].Rows)
	}
	st.AppliedLSN, st.LastLSN = s.LSNs()
	switch {
	case s.replica:
		st.Role = "follower"
	case s.repl != nil:
		st.Role = "leader"
	}
	return st
}

// Stats returns every tenant's TenantStat, sorted by name.
func (r *Registry) Stats() []TenantStat {
	r.mu.RLock()
	shards := make([]*Shard, 0, len(r.shards))
	for _, sh := range r.shards {
		shards = append(shards, sh)
	}
	r.mu.RUnlock()
	out := make([]TenantStat, 0, len(shards))
	for _, sh := range shards {
		out = append(out, sh.stat())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Shutdown drains every tenant concurrently and closes their backends
// (syncing each WAL). It returns the first drain error, but attempts every
// tenant regardless. Safe to call more than once.
func (r *Registry) Shutdown(ctx context.Context) error {
	r.mu.Lock()
	r.closed = true
	shards := make([]*Shard, 0, len(r.shards))
	for _, sh := range r.shards {
		shards = append(shards, sh)
	}
	r.mu.Unlock()

	errs := make(chan error, len(shards))
	for _, sh := range shards {
		go func(sh *Shard) { errs <- sh.Close(ctx) }(sh)
	}
	var first error
	for range shards {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// draining reports whether Shutdown has begun.
func (r *Registry) draining() bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.closed
}
