package server

import (
	"context"
	"net"
	"net/http"
	"time"
)

// ServeDebug starts an auxiliary HTTP listener on addr serving
// http.DefaultServeMux (pprof and expvar, when their packages are linked
// in) and returns a shutdown function that stops accepting connections and
// drains in-flight requests for up to five seconds. It replaces the
// fire-and-forget ListenAndServe goroutine pattern, whose requests were
// cut off mid-response whenever the process exited.
func ServeDebug(addr string) (shutdown func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: http.DefaultServeMux}
	go func() { _ = hs.Serve(ln) }()
	return func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = hs.Shutdown(ctx)
	}, nil
}
