package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"xivm/internal/core"
	"xivm/internal/obs"
	"xivm/internal/update"
	"xivm/internal/xmark"
	"xivm/internal/xmltree"
)

func testViewSpecs() []ViewSpec {
	return []ViewSpec{
		{Name: "Q1", Pattern: xmark.View("Q1").String()},
		{Name: "Q2", Pattern: xmark.View("Q2").String()},
	}
}

func newTestEngine(t *testing.T) *core.Engine {
	t.Helper()
	doc, err := xmltree.ParseString(xmark.GenerateSmall(1))
	if err != nil {
		t.Fatal(err)
	}
	eng := core.New(doc, core.WithMetrics(obs.New()))
	for _, name := range []string{"Q1", "Q2"} {
		if _, err := eng.AddView(name, xmark.View(name)); err != nil {
			t.Fatalf("add view %s: %v", name, err)
		}
	}
	return eng
}

// newTestRegistry builds an in-memory registry seeded with the XMark
// default document and views, the default tenant already created, over an
// httptest listener. wrap, when non-nil, intercepts every tenant's backend
// (the gating seam).
func newTestRegistry(t *testing.T, cfg Config, wrap func(string, Backend) Backend) (*Registry, *httptest.Server) {
	t.Helper()
	if cfg.Metrics == nil {
		cfg.Metrics = obs.New()
	}
	reg, err := NewRegistry(RegistryConfig{
		Shard:        cfg,
		DefaultDoc:   xmark.GenerateSmall(1),
		DefaultViews: testViewSpecs(),
		wrapBackend:  wrap,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Create(DefaultTenant, "", nil); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(reg.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = reg.Shutdown(ctx)
	})
	return reg, ts
}

func getJSON(t *testing.T, url string, into any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("GET %s: decode: %v", url, err)
		}
	}
	return resp.StatusCode
}

// postUpdate sends one statement to dbURL/update, where dbURL is a
// data-plane prefix like ts.URL+"/v1/db/default".
func postUpdate(t *testing.T, dbURL, stmt string) (*http.Response, UpdateResponse) {
	t.Helper()
	body := strings.NewReader(fmt.Sprintf(`{"statement": %q}`, stmt))
	resp, err := http.Post(dbURL+"/update", "application/json", body)
	if err != nil {
		t.Fatalf("POST update: %v", err)
	}
	defer resp.Body.Close()
	var ur UpdateResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&ur); err != nil {
			t.Fatalf("decode update response: %v", err)
		}
	}
	return resp, ur
}

func TestAPIQueryAndUpdate(t *testing.T) {
	_, ts := newTestRegistry(t, Config{}, nil)
	db := ts.URL + "/v1/db/" + DefaultTenant

	var health HealthResponse
	if code := getJSON(t, ts.URL+"/healthz", &health); code != http.StatusOK {
		t.Fatalf("healthz status %d", code)
	}
	if health.Status != "ok" || health.Tenants != 1 {
		t.Fatalf("health = %+v, want ok with 1 tenant", health)
	}

	var views ViewsResponse
	if code := getJSON(t, db+"/views", &views); code != http.StatusOK {
		t.Fatalf("views status %d", code)
	}
	if views.Tenant != DefaultTenant {
		t.Fatalf("views.Tenant = %q, want %q", views.Tenant, DefaultTenant)
	}
	if len(views.Views) != 2 {
		t.Fatalf("views = %d, want 2", len(views.Views))
	}
	var q1Before int
	for _, v := range views.Views {
		if v.Name == "Q1" {
			q1Before = v.Rows
		}
	}
	if q1Before == 0 {
		t.Fatal("Q1 empty before update")
	}

	var vr ViewResponse
	if code := getJSON(t, db+"/views/Q1", &vr); code != http.StatusOK {
		t.Fatalf("view Q1 status %d", code)
	}
	if vr.Tenant != DefaultTenant {
		t.Fatalf("view.Tenant = %q, want %q", vr.Tenant, DefaultTenant)
	}
	if len(vr.Rows) != q1Before {
		t.Fatalf("view rows %d != summary rows %d", len(vr.Rows), q1Before)
	}
	for _, row := range vr.Rows {
		for _, e := range row.Entries {
			if e.ID == "" || e.Label == "" {
				t.Fatalf("row entry missing id/label: %+v", e)
			}
		}
	}

	// An applied update must be readable at the acknowledged version
	// (read-your-writes after ack).
	resp, ur := postUpdate(t, db, `insert <person id="pz"><name>Zed New</name></person> into /site/people`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update status %d", resp.StatusCode)
	}
	if ur.Targets != 1 {
		t.Fatalf("update targets = %d, want 1", ur.Targets)
	}
	if ur.Tenant != DefaultTenant {
		t.Fatalf("update.Tenant = %q, want %q", ur.Tenant, DefaultTenant)
	}
	var after ViewResponse
	getJSON(t, db+"/views/Q1", &after)
	if after.Version < ur.Version {
		t.Fatalf("read version %d < acked update version %d", after.Version, ur.Version)
	}
	if len(after.Rows) != q1Before+1 {
		t.Fatalf("Q1 rows after insert = %d, want %d", len(after.Rows), q1Before+1)
	}

	var xr XPathResponse
	if code := getJSON(t, db+"/xpath?q="+`/site/people/person/name`, &xr); code != http.StatusOK {
		t.Fatalf("xpath status %d", code)
	}
	if len(xr.Matches) != len(after.Rows) {
		t.Fatalf("xpath matches = %d, want %d (one name per Q1 row)", len(xr.Matches), len(after.Rows))
	}
	found := false
	for _, m := range xr.Matches {
		if m.Value == "Zed New" {
			found = true
		}
	}
	if !found {
		t.Fatal("inserted person's name not visible through the xpath endpoint")
	}

	if code := getJSON(t, ts.URL+"/v1/metrics", nil); code != http.StatusOK {
		t.Fatalf("metrics status %d", code)
	}
	var tm TenantMetricsResponse
	if code := getJSON(t, db+"/metrics", &tm); code != http.StatusOK {
		t.Fatalf("tenant metrics status %d", code)
	}
	if tm.Name != DefaultTenant || tm.Applied < 1 || tm.Epochs < 1 {
		t.Fatalf("tenant metrics = %+v, want default tenant with applied/epochs >= 1", tm)
	}
}

func TestAPIErrors(t *testing.T) {
	_, ts := newTestRegistry(t, Config{}, nil)
	db := ts.URL + "/v1/db/" + DefaultTenant

	var er ErrorResponse
	if code := getJSON(t, db+"/views/nope", &er); code != http.StatusNotFound {
		t.Fatalf("unknown view status %d, want 404", code)
	}
	if er.Error.Code != CodeNotFound || er.Error.Tenant != DefaultTenant {
		t.Fatalf("unknown view envelope = %+v, want code %s tenant %s", er.Error, CodeNotFound, DefaultTenant)
	}
	if code := getJSON(t, db+"/xpath", &er); code != http.StatusBadRequest {
		t.Fatalf("missing q status %d, want 400", code)
	}
	if er.Error.Code != CodeBadRequest {
		t.Fatalf("missing q envelope code = %q, want %s", er.Error.Code, CodeBadRequest)
	}
	if resp, _ := postUpdate(t, db, `mangle /site into chaos`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad statement status %d, want 400", resp.StatusCode)
	}
	resp, err := http.Post(db+"/update", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body status %d, want 400", resp.StatusCode)
	}

	// Data-plane requests for a tenant that does not exist: 404 no_such_db,
	// with the envelope naming the tenant asked for.
	if code := getJSON(t, ts.URL+"/v1/db/ghost/views", &er); code != http.StatusNotFound {
		t.Fatalf("ghost tenant status %d, want 404", code)
	}
	if er.Error.Code != CodeNoSuchDB || er.Error.Tenant != "ghost" {
		t.Fatalf("ghost tenant envelope = %+v, want code %s tenant ghost", er.Error, CodeNoSuchDB)
	}
}

// gateBackend wraps an engine backend but blocks every ApplyCtx until
// released, so tests can hold the writer busy while probing queue
// behavior. panicNext makes the next apply panic instead.
type gateBackend struct {
	Backend
	gate      chan struct{}
	panicNext bool
}

func (b *gateBackend) ApplyCtx(ctx context.Context, st *update.Statement) (*core.Report, error) {
	if b.gate != nil {
		select {
		case <-b.gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if b.panicNext {
		b.panicNext = false
		panic("injected apply failure")
	}
	return b.Backend.ApplyCtx(ctx, st)
}

func mustStatement(t *testing.T, src string) *update.Statement {
	t.Helper()
	st, err := update.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return st
}

func TestQueueFullBackpressure(t *testing.T) {
	gate := make(chan struct{})
	reg, ts := newTestRegistry(t, Config{QueueDepth: 1}, func(tenant string, b Backend) Backend {
		return &gateBackend{Backend: b, gate: gate}
	})
	db := ts.URL + "/v1/db/" + DefaultTenant
	sh, err := reg.Get(DefaultTenant)
	if err != nil {
		t.Fatal(err)
	}

	st := `insert <person id="pq"><name>Queued</name></person> into /site/people`
	// First submission occupies the writer (blocked on the gate); the
	// second fills the one-slot queue; the third must bounce with 429.
	results := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, _, err := sh.Apply(context.Background(), mustStatement(t, st))
			results <- err
		}()
	}
	// Wait until the writer has dequeued the first request and the second
	// sits in the queue, so the third submission deterministically bounces.
	deadline := time.Now().Add(5 * time.Second)
	for sh.QueueLen() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
		time.Sleep(time.Millisecond)
	}

	resp, _ := postUpdate(t, db, st)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full-queue update status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	// Reads must not be blocked by the stuck writer.
	var views ViewsResponse
	if code := getJSON(t, db+"/views", &views); code != http.StatusOK {
		t.Fatalf("views during writer stall: status %d", code)
	}

	close(gate)
	for i := 0; i < 2; i++ {
		if err := <-results; err != nil {
			t.Fatalf("queued apply failed after release: %v", err)
		}
	}
}

func TestUpdateDeadline(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	_, ts := newTestRegistry(t, Config{RequestTimeout: 30 * time.Millisecond}, func(tenant string, b Backend) Backend {
		return &gateBackend{Backend: b, gate: gate}
	})

	st := `insert <person id="pd"><name>Late</name></person> into /site/people`
	resp, _ := postUpdate(t, ts.URL+"/v1/db/"+DefaultTenant, st)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("deadline update status %d, want 504", resp.StatusCode)
	}
}

func TestApplyPanicKeepsServing(t *testing.T) {
	m := obs.New()
	_, ts := newTestRegistry(t, Config{Metrics: m}, func(tenant string, b Backend) Backend {
		return &gateBackend{Backend: b, panicNext: true}
	})
	db := ts.URL + "/v1/db/" + DefaultTenant

	st := `insert <person id="pp"><name>Boom</name></person> into /site/people`
	resp, _ := postUpdate(t, db, st)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("panicked update status %d, want 422", resp.StatusCode)
	}
	if got := m.CounterValue("server.apply.panics"); got != 1 {
		t.Fatalf("server.apply.panics = %d, want 1", got)
	}

	// The writer loop survived: the same statement succeeds next time and
	// the engine's views are consistent.
	resp2, ur := postUpdate(t, db, st)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-panic update status %d, want 200", resp2.StatusCode)
	}
	var vr ViewResponse
	getJSON(t, db+"/views/Q1", &vr)
	if vr.Version < ur.Version {
		t.Fatalf("read version %d < acked version %d after panic recovery", vr.Version, ur.Version)
	}
}

// syncBackend records whether Sync ran, to assert the drain contract.
type syncBackend struct {
	EngineBackend
	synced chan struct{}
}

func (b *syncBackend) Sync() error { close(b.synced); return nil }

func TestShutdownDrains(t *testing.T) {
	b := &syncBackend{EngineBackend: EngineBackend{Eng: newTestEngine(t)}, synced: make(chan struct{})}
	s := NewShard("solo", b, nil, Config{Metrics: obs.New()})

	// Load a few updates, then shut down: all accepted work must complete
	// and the backend must be synced before Shutdown returns.
	type res struct {
		version uint64
		err     error
	}
	results := make(chan res, 3)
	for i := 0; i < 3; i++ {
		st := mustStatement(t, fmt.Sprintf(`insert <person id="pd%d"><name>Drain</name></person> into /site/people`, i))
		go func() {
			_, v, err := s.Apply(context.Background(), st)
			results <- res{v, err}
		}()
	}
	// Give the submissions a moment to enqueue (acceptance is what's being
	// tested; racing a submission against Shutdown legitimately yields
	// ErrShuttingDown, which would test nothing).
	deadline := time.Now().Add(5 * time.Second)
	for s.eng.Version() == 0 && time.Now().After(deadline) == false && s.QueueLen() == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	select {
	case <-b.synced:
	default:
		t.Fatal("Shutdown returned before backend.Sync")
	}
	accepted := 0
	for i := 0; i < 3; i++ {
		r := <-results
		if r.err == nil {
			accepted++
		} else if !errors.Is(r.err, ErrShuttingDown) {
			t.Fatalf("drained apply failed: %v", r.err)
		}
	}
	if accepted == 0 {
		t.Fatal("no update completed before drain")
	}

	// Post-shutdown submissions are rejected, reads still work, and the
	// published epoch carries the tenant stamp.
	if _, _, err := s.Apply(context.Background(), mustStatement(t, `delete /site/people/person`)); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("post-shutdown apply error = %v, want ErrShuttingDown", err)
	}
	if snap := s.Epoch(); snap == nil || snap.Tenant != "solo" {
		t.Fatalf("epoch after shutdown = %+v, want tenant solo", s.Epoch())
	}
	// Idempotent.
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}
