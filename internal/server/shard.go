// Package server is the concurrent, multi-tenant serving layer: a Registry
// hosts many independent databases (tenants) in one process, each served by
// its own shard — a maintenance engine (bare, or wrapped in the
// internal/wal durability layer) behind a single-writer apply loop that
// answers queries while updates stream in.
//
// The per-tenant concurrency model is single-writer / snapshot-isolated
// readers:
//
//   - All of a tenant's updates funnel through one bounded queue drained by
//     a single apply goroutine, which preserves the engine's single-threaded
//     mutation contract and rides the WAL's group commit when the backend
//     is a wal.DB. A full queue rejects immediately with ErrQueueFull
//     (surfaced as HTTP 429), which is the backpressure signal — and the
//     isolation boundary: a hot tenant saturates only its own queue and
//     writer, never another tenant's.
//
//   - Under write bursts the writer drains the queue adaptively: when more
//     than one request is waiting, the batch of statements is translated to
//     one combined delta through the pulopt planner (Section 5's
//     aggregation/reduction with the IO/LO/NLO conflict rules as the safety
//     gate) and propagated through the engine once per same-kind run,
//     amortizing FindTargets, propagation, and — the dominant cost — the
//     per-epoch snapshot over the whole batch. Any gate rejection, conflict,
//     or already-cancelled request falls the batch back to per-statement
//     application, so batching is never worse than the sequential path and
//     never observable: every constituent statement is journaled before the
//     engine mutates, the engine version advances by exactly the batch's
//     statement count, and acks carry the single epoch published for the
//     batch (read-your-writes holds unchanged).
//
//   - After every applied statement the writer publishes a fresh epoch: an
//     immutable core.Snapshot (deep-copied view rows plus an ID-preserving
//     document copy, stamped with the tenant name) swapped in with one
//     atomic pointer store. Any number of concurrent readers serve view and
//     XPath queries from the last published epoch without taking any lock
//     the writer can contend on. Readers therefore observe only states that
//     existed between whole statements — never a half-propagated view.
//
//   - Shutdown closes the queue, lets the writer drain every accepted
//     request, then syncs the backend (forcing the WAL group-commit buffer
//     to disk) before reporting done.
//
// The Registry adds the tenant lifecycle on top (create, drop, list — all
// crash-safe, see internal/wal's tenant layout) and the HTTP surface: the
// data plane under /v1/db/{name}/…, the admin plane under /v1/db, and
// deprecated single-tenant aliases mounted on the "default" tenant.
package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"xivm/internal/core"
	"xivm/internal/obs"
	"xivm/internal/pulopt"
	"xivm/internal/update"
)

// ErrQueueFull is returned when a tenant's apply queue is at capacity;
// callers should back off and retry (HTTP maps it to 429 Too Many
// Requests).
var ErrQueueFull = errors.New("server: apply queue full")

// ErrShuttingDown is returned for updates submitted after the shard began
// draining (HTTP maps it to 503 Service Unavailable).
var ErrShuttingDown = errors.New("server: shutting down")

// ErrReadOnly is returned for updates submitted to a replica shard — a
// follower serves reads at its applied LSN and never accepts writes (HTTP
// maps it to 403 Forbidden, code read_only, pointing at the leader).
var ErrReadOnly = errors.New("server: read-only follower")

// Backend is what the serving layer needs from the engine side: the wal.DB
// durability wrapper satisfies it directly, and EngineBackend adapts a bare
// engine. All three methods are only ever called from the single writer
// goroutine (Engine also at construction time).
type Backend interface {
	// Engine exposes the underlying maintenance engine.
	Engine() *core.Engine
	// ApplyCtx journals (when durable) and applies one statement.
	ApplyCtx(ctx context.Context, st *update.Statement) (*core.Report, error)
	// ApplyBatchCtx journals every constituent statement (when durable)
	// and applies a translated batch, one propagation pass per unit. It
	// returns the merged report and how many statements' effects landed —
	// len(plan.Statements) unless journaling or a unit failed partway.
	ApplyBatchCtx(ctx context.Context, plan *pulopt.BatchPlan) (*core.Report, int, error)
	// Sync forces buffered durability state (the WAL group-commit window)
	// to disk; a no-op for non-durable backends.
	Sync() error
}

// EngineBackend adapts a bare, non-durable engine to the Backend interface.
type EngineBackend struct{ Eng *core.Engine }

// Engine returns the wrapped engine.
func (b EngineBackend) Engine() *core.Engine { return b.Eng }

// ApplyCtx applies one statement through the engine.
func (b EngineBackend) ApplyCtx(ctx context.Context, st *update.Statement) (*core.Report, error) {
	return b.Eng.ApplyStatementCtx(ctx, st)
}

// ApplyBatchCtx applies a translated batch through the engine; with no
// journal there is nothing to write ahead.
func (b EngineBackend) ApplyBatchCtx(ctx context.Context, plan *pulopt.BatchPlan) (*core.Report, int, error) {
	return b.Eng.ApplyBatchCtx(ctx, plan.Units)
}

// Sync is a no-op: a bare engine has no durability buffer.
func (EngineBackend) Sync() error { return nil }

// Config tunes one shard (one tenant's serving loop). The zero value
// selects the defaults noted on each field.
type Config struct {
	// QueueDepth bounds the tenant's apply queue; submissions beyond it
	// fail fast with ErrQueueFull. Default 64.
	QueueDepth int
	// RequestTimeout is the per-request deadline applied to HTTP update
	// handlers (0 = 10s; negative = no deadline). A statement whose
	// deadline expires while still queued is abandoned by its client; the
	// writer then observes the cancelled context and skips it before
	// mutating anything.
	RequestTimeout time.Duration
	// MaxBatch caps how many waiting statements the writer drains into one
	// translated batch (0 = default 32; 1 disables batching and restores
	// strict per-statement application). Batching only engages when more
	// than one request is already queued, so an idle tenant pays nothing.
	MaxBatch int
	// Metrics selects the registry for the server.* and snapshot.*
	// instruments (nil = obs.Default()).
	Metrics *obs.Metrics
}

func (c Config) queueDepth() int {
	if c.QueueDepth <= 0 {
		return 64
	}
	return c.QueueDepth
}

func (c Config) maxBatch() int {
	if c.MaxBatch <= 0 {
		return 32
	}
	return c.MaxBatch
}

func (c Config) requestTimeout() time.Duration {
	if c.RequestTimeout == 0 {
		return 10 * time.Second
	}
	if c.RequestTimeout < 0 {
		return 0
	}
	return c.RequestTimeout
}

// Shard serves one tenant: snapshot-isolated reads over a single-writer
// apply loop. Create with NewShard (or through a Registry), stop with
// Close. A Shard has no HTTP surface of its own — the Registry routes
// /v1/db/{name}/… requests to it.
type Shard struct {
	name    string
	cfg     Config
	backend Backend
	eng     *core.Engine
	m       *serverMetrics
	tm      *tenantMetrics

	// closer releases the backend (closing the WAL for durable tenants)
	// after the writer has drained; nil for backends nobody owns.
	closer func() error

	// epoch is the last published snapshot; readers load it with one
	// atomic pointer read and never touch the live engine.
	epoch atomic.Pointer[core.Snapshot]

	// repl is the replication surface of a durable backend (wal.DB),
	// captured before any test wrapping; nil for in-memory tenants and for
	// replicas. The repl HTTP handlers stream from it.
	repl ReplSource

	// replica marks a read-only follower shard: no writer loop, epochs are
	// published externally (PublishReplica) by the replication tailer, and
	// every Apply rejects with ErrReadOnly. appliedLSN/leaderLast track the
	// follower's position for lag reporting.
	replica    bool
	appliedLSN atomic.Uint64
	leaderLast atomic.Uint64

	// qcache is the per-shard XPath result cache, invalidated by the
	// engine's applied-statement delta stream (core.Options.OnApplied); the
	// hook fires on the applying goroutine before publish, so readers at a
	// new epoch never see entries a write may have affected.
	qcache *queryCache

	queue chan *applyReq
	done  chan struct{} // closed when the writer loop has fully drained

	// mu guards closed against racing queue sends: Shutdown closes the
	// queue under the write lock, submissions send under the read lock.
	mu     sync.RWMutex
	closed bool
}

type applyReq struct {
	ctx  context.Context
	st   *update.Statement
	resp chan applyResult // buffered(1): the writer never blocks on it
}

type applyResult struct {
	rep     *core.Report
	version uint64 // epoch version at which the update's effects are readable
	err     error
}

// NewShard builds a tenant's shard over the backend, publishes the initial
// epoch, and starts the writer loop. The backend's engine must not be
// mutated by anyone else from this point on. closer, when non-nil, is
// called once after the writer drains (Close); use it to release a
// durable backend.
func NewShard(name string, b Backend, closer func() error, cfg Config) *Shard {
	s := &Shard{
		name:    name,
		cfg:     cfg,
		backend: b,
		eng:     b.Engine(),
		m:       newServerMetrics(cfg.Metrics),
		tm:      newTenantMetrics(cfg.Metrics, name),
		closer:  closer,
		queue:   make(chan *applyReq, cfg.queueDepth()),
		done:    make(chan struct{}),
	}
	s.initQueryCache()
	s.publish()
	go s.applyLoop()
	return s
}

// initQueryCache creates the result cache at the engine's current version
// and subscribes it to the applied-statement delta stream. Must run before
// the engine is shared with an applying goroutine.
func (s *Shard) initQueryCache() {
	s.qcache = newQueryCache(s.eng.Version())
	s.eng.SetOnApplied(func(sts []*update.Statement, version uint64) {
		if n := s.qcache.noteApplied(sts, version); n > 0 {
			s.m.rewriteCacheInval.Add(int64(n))
		}
	})
}

// NewReplicaShard builds a read-only follower shard around an engine the
// replication tailer owns: no queue, no writer loop, the initial epoch
// published from the engine's current (just-restored) state. From here on
// only the tailer may mutate the engine, publishing each batch's state via
// PublishReplica; readers serve from the last published epoch exactly as on
// a leader shard.
func NewReplicaShard(name string, eng *core.Engine, appliedLSN, leaderLast uint64, cfg Config) *Shard {
	s := &Shard{
		name:    name,
		cfg:     cfg,
		backend: EngineBackend{Eng: eng},
		eng:     eng,
		m:       newServerMetrics(cfg.Metrics),
		tm:      newTenantMetrics(cfg.Metrics, name),
		replica: true,
		done:    make(chan struct{}),
	}
	s.appliedLSN.Store(appliedLSN)
	s.leaderLast.Store(leaderLast)
	s.initQueryCache()
	s.publish()
	close(s.done) // no writer loop to drain
	return s
}

// PublishReplica publishes snap as the follower's new epoch and records the
// replication position it reflects. Tailer-goroutine only, mirroring the
// writer-only contract of publish.
func (s *Shard) PublishReplica(snap *core.Snapshot, appliedLSN, leaderLast uint64) {
	snap.Tenant = s.name
	s.appliedLSN.Store(appliedLSN)
	s.leaderLast.Store(leaderLast)
	s.epoch.Store(snap)
	s.m.epochs.Inc()
	s.tm.epochs.Inc()
}

// Replica reports whether this shard is a read-only follower.
func (s *Shard) Replica() bool { return s.replica }

// SetLeaderLast updates a replica shard's view of the leader's log tip
// without publishing a new epoch — a caught-up poll that shipped no frames
// still learns the tip, and lag reporting should reflect it. No-op on
// non-replica shards.
func (s *Shard) SetLeaderLast(last uint64) {
	if s.replica {
		s.leaderLast.Store(last)
	}
}

// LSNs returns the shard's replication position: the LSN whose effects the
// serving epoch contains, and the last LSN known to exist (the local log
// tip on a leader, the leader's advertised tip on a follower). Both are 0
// for in-memory tenants.
func (s *Shard) LSNs() (applied, last uint64) {
	if s.replica {
		return s.appliedLSN.Load(), s.leaderLast.Load()
	}
	if s.repl != nil {
		st := s.repl.ReplStatusNow()
		// The leader's serving epoch always reflects its own log tip: the
		// writer journals and applies synchronously before publishing.
		return st.LastLSN, st.LastLSN
	}
	return 0, 0
}

// Name returns the tenant this shard serves.
func (s *Shard) Name() string { return s.name }

// Epoch returns the last published snapshot. It never returns nil and the
// result is immutable — hold it as long as needed.
func (s *Shard) Epoch() *core.Snapshot { return s.epoch.Load() }

// QueueLen reports how many accepted updates are waiting for the writer.
func (s *Shard) QueueLen() int { return len(s.queue) }

// QueueCap reports the tenant's queue-depth limit.
func (s *Shard) QueueCap() int { return cap(s.queue) }

// Apply submits one statement to the writer loop and waits for it to be
// applied and its epoch published, honoring ctx. It returns the engine
// report and the epoch version at which the update's effects are visible
// to readers (under batching, the report covers the whole batch the
// statement rode in). ErrQueueFull and ErrShuttingDown reject without
// queuing.
//
// Apply is at-most-once observable, not at-most-once: a ctx expiring while
// the request is queued abandons the WAIT, not necessarily the statement.
// If the writer reaches the request before starting to apply it, the
// statement is skipped with no effect; if the writer had already begun (or
// drained it into a batch), the statement is still applied, journaled, and
// published — the client just never sees the ack. Callers that time out
// must therefore treat the statement's fate as unknown; the
// server.abandoned_applied counter reports how often the applied-but-
// unacknowledged case actually happens.
func (s *Shard) Apply(ctx context.Context, st *update.Statement) (*core.Report, uint64, error) {
	wait, err := s.ApplyAsync(ctx, st)
	if err != nil {
		return nil, 0, err
	}
	return wait()
}

// ApplyAsync enqueues one statement and returns immediately with a wait
// function, under the same contract as Apply (which is ApplyAsync + wait).
// Split submission lets one goroutine enqueue several statements
// back-to-back — guaranteeing their FIFO order in the writer's queue, which
// a goroutine-per-Apply submission cannot — and collect the acks
// afterwards; the bursty stress tests use it to force deterministic
// multi-statement batches.
func (s *Shard) ApplyAsync(ctx context.Context, st *update.Statement) (func() (*core.Report, uint64, error), error) {
	if s.replica {
		return nil, ErrReadOnly
	}
	req := &applyReq{ctx: ctx, st: st, resp: make(chan applyResult, 1)}
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		s.m.rejectedShutdown.Inc()
		return nil, ErrShuttingDown
	}
	select {
	case s.queue <- req:
		s.mu.RUnlock()
		s.m.enqueued.Inc()
	default:
		s.mu.RUnlock()
		s.m.rejectedFull.Inc()
		s.tm.rejected.Inc()
		return nil, ErrQueueFull
	}
	return func() (*core.Report, uint64, error) {
		select {
		case res := <-req.resp:
			return res.rep, res.version, res.err
		case <-ctx.Done():
			// The writer will observe the cancelled context; if it had
			// already started applying, the engine's cancellation contract
			// keeps every view consistent and the writer still publishes
			// any new state (see Apply's at-most-once-observable note).
			return nil, 0, ctx.Err()
		}
	}, nil
}

// Shutdown stops accepting updates, waits for the writer to drain every
// accepted request and sync the backend, and returns nil on a clean drain
// or ctx.Err() if the deadline expires first (the writer keeps draining in
// the background either way). Safe to call more than once.
func (s *Shard) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		if s.queue != nil {
			close(s.queue)
		}
	}
	s.mu.Unlock()
	select {
	case <-s.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close drains the shard (Shutdown) and then releases its backend. The
// backend is released only after a complete drain — if ctx expires first,
// Close returns the error and leaves the backend open so the still-running
// writer never touches closed files.
func (s *Shard) Close(ctx context.Context) error {
	if err := s.Shutdown(ctx); err != nil {
		return err
	}
	if s.closer == nil {
		return nil
	}
	return s.closer()
}

// draining reports whether Shutdown has begun.
func (s *Shard) draining() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.closed
}

// applyLoop is the single writer: it drains the queue in FIFO order —
// adaptively batching when more than one request is waiting — and after the
// queue closes it syncs the backend so acknowledged updates are durable
// before done is signalled.
func (s *Shard) applyLoop() {
	for req := range s.queue {
		batch := s.drainBatch(req)
		if len(batch) == 1 {
			s.respond(batch[0], s.applyOne(batch[0]))
		} else {
			s.applyBatch(batch)
		}
	}
	if err := s.backend.Sync(); err != nil {
		s.m.syncErrors.Inc()
	}
	close(s.done)
}

// drainBatch greedily collects whatever is already waiting behind first, up
// to the batch cap, without ever blocking: an idle tenant always takes the
// per-statement path.
func (s *Shard) drainBatch(first *applyReq) []*applyReq {
	batch := []*applyReq{first}
	for len(batch) < s.cfg.maxBatch() {
		select {
		case req, ok := <-s.queue:
			if !ok {
				return batch // queue closed: finish what was accepted
			}
			batch = append(batch, req)
		default:
			return batch
		}
	}
	return batch
}

// respond delivers one result, counting the applied-but-unacknowledged case
// (the client's ctx expired after the writer committed to the statement —
// its effects are published but nobody is reading the ack).
func (s *Shard) respond(req *applyReq, res applyResult) {
	if res.err == nil && req.ctx.Err() != nil {
		s.m.abandonedApplied.Inc()
	}
	req.resp <- res
}

// applyOne applies one request and publishes the resulting epoch. Any new
// engine version — even one reached on a partially cancelled statement —
// is published before the client is answered, so an acknowledged update is
// always readable (read-your-writes) and an unacknowledged one is at worst
// readable early, never lost.
func (s *Shard) applyOne(req *applyReq) applyResult {
	if err := req.ctx.Err(); err != nil {
		s.m.abandoned.Inc()
		return applyResult{err: err}
	}
	t0 := time.Now()
	rep, err := s.safeApply(req.ctx, req.st)
	s.m.applyLatency.Observe(time.Since(t0))
	if s.eng.Version() != s.Epoch().Version {
		s.publish()
	}
	if err != nil {
		s.m.applyErrors.Inc()
		return applyResult{rep: rep, version: s.Epoch().Version, err: err}
	}
	s.m.applied.Inc()
	s.tm.applied.Inc()
	return applyResult{rep: rep, version: s.Epoch().Version}
}

// applyBatch translates a drained batch to one combined delta and applies
// it with one propagation pass per same-kind run and ONE published epoch,
// falling back to per-statement application whenever the translation cannot
// prove sequential equivalence (conflicts, gated statement shapes) or any
// request was already abandoned — behavior is then exactly the
// pre-batching loop. Every request in a translated batch is answered with
// the batch's published epoch version, preserving read-your-writes.
func (s *Shard) applyBatch(batch []*applyReq) {
	for _, req := range batch {
		if req.ctx.Err() != nil {
			// Per-request cancellation degrades the whole batch to the
			// per-statement path, which skips abandoned requests before
			// mutating anything.
			s.fallback(batch, "cancelled")
			return
		}
	}
	stmts := make([]*update.Statement, len(batch))
	for i, req := range batch {
		stmts[i] = req.st
	}
	plan, err := pulopt.PlanBatch(s.eng, stmts)
	if err != nil {
		reason := "plan"
		var nb *pulopt.NotBatchableError
		if errors.As(err, &nb) {
			reason = nb.Reason
		}
		s.fallback(batch, reason)
		return
	}
	t0 := time.Now()
	rep, applied, err := s.safeApplyBatch(plan)
	d := time.Since(t0)
	s.m.applyLatency.Observe(d)
	s.m.batchLatency.Observe(d)
	if s.eng.Version() != s.Epoch().Version {
		s.publish()
	}
	version := s.Epoch().Version
	if err != nil {
		// A batch failing mid-flight (journal error, engine fault) leaves
		// the applied prefix in place — exactly what a durable log would
		// replay. Acks follow the boundary: landed statements succeed at
		// the published version, the rest report the error.
		for i, req := range batch {
			if i < applied {
				s.m.applied.Inc()
				s.tm.applied.Inc()
				s.respond(req, applyResult{rep: rep, version: version})
			} else {
				s.m.applyErrors.Inc()
				s.respond(req, applyResult{version: version, err: err})
			}
		}
		return
	}
	s.m.batches.Inc()
	s.m.batchedStatements.Add(int64(len(batch)))
	for _, req := range batch {
		s.m.applied.Inc()
		s.tm.applied.Inc()
		s.respond(req, applyResult{rep: rep, version: version})
	}
}

// fallback counts one batch translation rejection by reason and applies the
// batch per-statement.
func (s *Shard) fallback(batch []*applyReq, reason string) {
	s.m.batchFallbacks.Inc()
	s.m.reg.Counter("server.batch.fallback." + reason).Inc()
	for _, req := range batch {
		s.respond(req, s.applyOne(req))
	}
}

// safeApply contains a panic escaping the engine's own per-view recovery
// (core.propagateAll repairs panicking views, but a panic elsewhere in the
// apply path would otherwise kill the writer goroutine and wedge every
// client of this tenant). The engine is repaired by recomputing all views;
// the statement is reported failed.
func (s *Shard) safeApply(ctx context.Context, st *update.Statement) (rep *core.Report, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.m.applyPanics.Inc()
			s.eng.RepairAllViews()
			// A repair rebuilds state outside the delta stream (the document
			// may even have changed without a version bump): cached results
			// are no longer trustworthy at any version.
			s.qcache.dropAll(s.eng.Version())
			rep, err = nil, fmt.Errorf("server: apply panicked: %v", r)
		}
	}()
	return s.backend.ApplyCtx(ctx, st)
}

// safeApplyBatch is safeApply for a translated batch. On a contained panic
// or a mid-batch engine fault the views are repaired by recomputation so
// the writer (and the epoch it publishes next) stays consistent; `applied`
// reports how many statements' effects survive.
func (s *Shard) safeApplyBatch(plan *pulopt.BatchPlan) (rep *core.Report, applied int, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.m.applyPanics.Inc()
			s.eng.RepairAllViews()
			s.qcache.dropAll(s.eng.Version())
			rep, applied, err = nil, 0, fmt.Errorf("server: batch apply panicked: %v", r)
		}
	}()
	rep, applied, err = s.backend.ApplyBatchCtx(context.Background(), plan)
	if err != nil && applied < len(plan.Statements) {
		s.eng.RepairAllViews()
		s.qcache.dropAll(s.eng.Version())
	}
	return rep, applied, err
}

// publish captures the engine state, stamps it with the tenant name, and
// swaps it in as the new epoch. Writer-goroutine only (and once from
// NewShard, before the loop starts).
func (s *Shard) publish() {
	t0 := time.Now()
	snap := s.eng.Snapshot()
	snap.Tenant = s.name
	s.epoch.Store(snap)
	s.m.publishLatency.Observe(time.Since(t0))
	s.m.epochs.Inc()
	s.tm.epochs.Inc()
	var rows int64
	for i := range snap.Views {
		rows += int64(len(snap.Views[i].Rows))
	}
	s.m.epochRows.Add(rows)
	s.m.epochDocNodes.Add(int64(snap.Doc().Size()))
}
