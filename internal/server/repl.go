package server

import (
	"net/http"
	"strconv"

	"xivm/internal/wal"
)

// ReplSource is the replication surface a durable backend exposes; wal.DB
// implements it. All three methods are safe to call from HTTP handler
// goroutines concurrently with the shard's writer.
type ReplSource interface {
	// ReplStatusNow reports the log tip, newest checkpoint LSN, and the
	// connected-follower gauge.
	ReplStatusNow() wal.ReplStatus
	// ReplFrames pins follower id at from and returns up to maxBytes of
	// raw wire frames starting there, plus the next LSN to request.
	// wal.ErrLSNTruncated means the follower must re-sync from a snapshot.
	ReplFrames(id string, from uint64, maxBytes int) ([]byte, uint64, error)
	// ReplImageNow loads and verifies the newest checkpoint for shipping.
	ReplImageNow() (*wal.ReplImage, error)
}

// Replication wire types and headers.

// ReplStatusResponse answers GET /v1/db/{db}/repl/status.
type ReplStatusResponse struct {
	Tenant string `json:"tenant"`
	// Role is "leader" or "follower".
	Role string `json:"role"`
	// LastLSN is the last journaled record (on a follower: the leader's
	// advertised tip).
	LastLSN uint64 `json:"last_lsn"`
	// AppliedLSN is the LSN the serving epoch reflects.
	AppliedLSN uint64 `json:"applied_lsn"`
	// CheckpointLSN is the newest checkpoint — where snapshot-first
	// catch-up starts. Leader only.
	CheckpointLSN uint64 `json:"checkpoint_lsn,omitempty"`
	// Followers counts unexpired follower pins. Leader only.
	Followers int `json:"followers"`
}

// ReplSnapshotResponse answers GET /v1/db/{db}/repl/snapshot: the newest
// checkpoint image, wire-transportable. Manifest is the raw MANIFEST bytes
// exactly as written — the follower re-verifies it and the hashes inside
// bind Doc and Views, so corruption anywhere en route is caught by the same
// checks recovery runs against the disk. ([]byte fields travel as base64.)
type ReplSnapshotResponse struct {
	Tenant   string `json:"tenant"`
	LSN      uint64 `json:"lsn"`
	Manifest []byte `json:"manifest"`
	Doc      []byte `json:"doc"`
	// Ords is the document's Dewey ordinal stream (xmltree.EncodeOrds);
	// restoring it gives the follower the leader's exact node-ID space, so
	// responses are byte-identical at equal LSNs.
	Ords  []byte            `json:"ords"`
	Views map[string][]byte `json:"views"`
}

// Stream response headers. The body is raw concatenated WAL frames
// (application/octet-stream), self-describing and CRC-framed; the headers
// carry the positions a follower needs without decoding anything.
const (
	// HeaderReplNext is the LSN the next stream request should ask for.
	HeaderReplNext = "X-Xivm-Repl-Next"
	// HeaderReplLast is the leader's log tip when the response was built;
	// applied-vs-this is the follower's lag.
	HeaderReplLast = "X-Xivm-Repl-Last"
)

// replSource resolves the {db} shard and its replication surface, answering
// the error envelope itself when the tenant is missing or has no WAL.
func (r *Registry) replSource(w http.ResponseWriter, req *http.Request) (*Shard, ReplSource, bool) {
	sh, ok := r.tenantShard(w, req)
	if !ok {
		return nil, nil, false
	}
	if sh.repl == nil {
		writeErr(w, http.StatusNotFound, CodeNoReplication, sh.Name(),
			"tenant has no write-ahead log to stream (in-memory or follower)")
		return nil, nil, false
	}
	return sh, sh.repl, true
}

func (r *Registry) handleReplStatus(w http.ResponseWriter, req *http.Request) {
	sh, ok := r.tenantShard(w, req)
	if !ok {
		return
	}
	resp := ReplStatusResponse{Tenant: sh.Name(), Role: "leader"}
	resp.AppliedLSN, resp.LastLSN = sh.LSNs()
	if sh.Replica() {
		resp.Role = "follower"
	} else if sh.repl != nil {
		st := sh.repl.ReplStatusNow()
		resp.CheckpointLSN = st.CheckpointLSN
		resp.Followers = st.Followers
	}
	writeJSON(w, http.StatusOK, resp)
}

func (r *Registry) handleReplStream(w http.ResponseWriter, req *http.Request) {
	sh, src, ok := r.replSource(w, req)
	if !ok {
		return
	}
	q := req.URL.Query()
	from, err := strconv.ParseUint(q.Get("from"), 10, 64)
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, sh.Name(), "bad or missing from parameter")
		return
	}
	maxBytes := 0
	if mb := q.Get("max_bytes"); mb != "" {
		if maxBytes, err = strconv.Atoi(mb); err != nil || maxBytes < 0 {
			writeErr(w, http.StatusBadRequest, CodeBadRequest, sh.Name(), "bad max_bytes parameter")
			return
		}
	}
	frames, next, err := src.ReplFrames(q.Get("follower"), from, maxBytes)
	if err == wal.ErrLSNTruncated {
		r.m.replTruncatedHits.Inc()
		writeErr(w, http.StatusGone, CodeSnapshotRequired, sh.Name(),
			"lsn "+q.Get("from")+" truncated by checkpointing; re-sync from /repl/snapshot")
		return
	}
	if err != nil {
		writeErr(w, http.StatusInternalServerError, CodeInternal, sh.Name(), err.Error())
		return
	}
	r.m.replStreams.Inc()
	r.m.replFrameBytes.Add(int64(len(frames)))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(HeaderReplNext, strconv.FormatUint(next, 10))
	w.Header().Set(HeaderReplLast, strconv.FormatUint(src.ReplStatusNow().LastLSN, 10))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(frames)
}

func (r *Registry) handleReplSnapshot(w http.ResponseWriter, req *http.Request) {
	sh, src, ok := r.replSource(w, req)
	if !ok {
		return
	}
	img, err := src.ReplImageNow()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, CodeInternal, sh.Name(), err.Error())
		return
	}
	r.m.replSnapshots.Inc()
	writeJSON(w, http.StatusOK, ReplSnapshotResponse{
		Tenant:   sh.Name(),
		LSN:      img.Manifest.LSN,
		Manifest: img.RawManifest,
		Doc:      img.DocXML,
		Ords:     img.Ords,
		Views:    img.Views,
	})
}
