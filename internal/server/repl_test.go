package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"xivm/internal/obs"
	"xivm/internal/wal"
	"xivm/internal/xmark"
)

// newLeaderRegistry builds a durable registry (real WAL under a temp tenant
// root) with one tenant, over an httptest listener — the leader side of the
// replication endpoint tests.
func newLeaderRegistry(t *testing.T, walOpts wal.Options) (*Registry, *httptest.Server) {
	t.Helper()
	walOpts.Metrics = obs.New()
	reg, err := NewRegistry(RegistryConfig{
		Shard:        Config{Metrics: obs.New()},
		DataDir:      t.TempDir(),
		WAL:          walOpts,
		DefaultDoc:   xmark.GenerateSmall(1),
		DefaultViews: testViewSpecs(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Create(DefaultTenant, "", nil); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(reg.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = reg.Shutdown(ctx)
	})
	return reg, ts
}

func TestReplStatusAndStream(t *testing.T) {
	_, ts := newLeaderRegistry(t, wal.Options{})
	db := ts.URL + "/v1/db/" + DefaultTenant
	for _, stmt := range []string{
		`insert <person id="pr1"><name>Repl One</name></person> into /site/people`,
		`delete /site/people/person/phone`,
	} {
		if resp, _ := postUpdate(t, db, stmt); resp.StatusCode != http.StatusOK {
			t.Fatalf("update: status %d", resp.StatusCode)
		}
	}

	var st ReplStatusResponse
	if code := getJSON(t, db+"/repl/status", &st); code != http.StatusOK {
		t.Fatalf("repl/status: %d", code)
	}
	if st.Role != "leader" || st.LastLSN == 0 {
		t.Fatalf("status = %+v, want leader with nonzero last LSN", st)
	}

	resp, err := http.Get(db + "/repl/stream?from=1&follower=t1")
	if err != nil {
		t.Fatal(err)
	}
	frames, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repl/stream: %d (%s)", resp.StatusCode, frames)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("content type %q", ct)
	}
	next, err := strconv.ParseUint(resp.Header.Get(HeaderReplNext), 10, 64)
	if err != nil || next != st.LastLSN+1 {
		t.Fatalf("next header %q, want %d", resp.Header.Get(HeaderReplNext), st.LastLSN+1)
	}
	recs, err := wal.DecodeFrames(frames, 1)
	if err != nil {
		t.Fatalf("decode shipped frames: %v", err)
	}
	if uint64(len(recs)) != st.LastLSN {
		t.Fatalf("shipped %d records, want %d", len(recs), st.LastLSN)
	}

	// The pinned follower shows up in the gauges.
	if code := getJSON(t, db+"/repl/status", &st); code != http.StatusOK || st.Followers != 1 {
		t.Fatalf("status after stream = %+v, want 1 follower", st)
	}

	// The snapshot endpoint ships a verifiable image.
	var snap ReplSnapshotResponse
	if code := getJSON(t, db+"/repl/snapshot", &snap); code != http.StatusOK {
		t.Fatalf("repl/snapshot: %d", code)
	}
	img, err := wal.NewReplImage(snap.Manifest, snap.Doc, snap.Ords, snap.Views)
	if err != nil {
		t.Fatalf("shipped snapshot fails verification: %v", err)
	}
	if img.Manifest.LSN != snap.LSN {
		t.Fatalf("image LSN %d, response LSN %d", img.Manifest.LSN, snap.LSN)
	}
	if _, err := img.Restore(); err != nil {
		t.Fatalf("restoring shipped snapshot: %v", err)
	}
}

func TestReplStreamTruncatedIs410(t *testing.T) {
	reg, ts := newLeaderRegistry(t, wal.Options{SegmentBytes: 256, CheckpointEvery: 4})
	db := ts.URL + "/v1/db/" + DefaultTenant
	// Enough updates to roll several checkpoints and truncate the log head.
	for i := 0; i < 24; i++ {
		stmt := `insert <x/> into /site/people`
		if i%2 == 1 {
			stmt = `delete /site/people/x`
		}
		if resp, _ := postUpdate(t, db, stmt); resp.StatusCode != http.StatusOK {
			t.Fatalf("update %d: status %d", i, resp.StatusCode)
		}
	}
	resp, err := http.Get(db + "/repl/stream?from=1")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("stream from truncated LSN: %d (%s), want 410", resp.StatusCode, body)
	}
	var env ErrorResponse
	if err := json.Unmarshal(body, &env); err != nil || env.Error.Code != CodeSnapshotRequired {
		t.Fatalf("410 body %s, want code %s", body, CodeSnapshotRequired)
	}
	// Catch-up is snapshot first, then the stream resumes past the image.
	var snap ReplSnapshotResponse
	if code := getJSON(t, db+"/repl/snapshot", &snap); code != http.StatusOK {
		t.Fatalf("repl/snapshot: %d", code)
	}
	if snap.LSN == 0 {
		t.Fatal("snapshot at LSN 0 after truncation")
	}
	resp, err = http.Get(db + "/repl/stream?from=" + strconv.FormatUint(snap.LSN+1, 10))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream after snapshot: %d", resp.StatusCode)
	}
	_ = reg
}

func TestReplNotAvailableInMemory(t *testing.T) {
	_, ts := newTestRegistry(t, Config{}, nil)
	db := ts.URL + "/v1/db/" + DefaultTenant
	for _, ep := range []string{"/repl/stream?from=1", "/repl/snapshot"} {
		resp, err := http.Get(db + ep)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s: %d, want 404", ep, resp.StatusCode)
		}
		var env ErrorResponse
		if err := json.Unmarshal(body, &env); err != nil || env.Error.Code != CodeNoReplication {
			t.Fatalf("GET %s body %s, want code %s", ep, body, CodeNoReplication)
		}
	}
	// Status still answers (role defaults, everything zero).
	var st ReplStatusResponse
	if code := getJSON(t, db+"/repl/status", &st); code != http.StatusOK {
		t.Fatalf("repl/status on in-memory tenant: %d", code)
	}
}

func TestFollowerRegistryRejectsWrites(t *testing.T) {
	reg, err := NewRegistry(RegistryConfig{
		Shard:      Config{Metrics: obs.New()},
		FollowerOf: "http://leader.example:8080",
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := newTestEngine(t)
	if _, err := reg.NewReplica(DefaultTenant, eng, 7, 9); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(reg.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = reg.Shutdown(ctx)
	})
	db := ts.URL + "/v1/db/" + DefaultTenant

	// Reads serve normally at the applied LSN.
	var vr ViewsResponse
	if code := getJSON(t, db+"/views", &vr); code != http.StatusOK {
		t.Fatalf("views on follower: %d", code)
	}
	var stat TenantMetricsResponse
	if code := getJSON(t, db+"/metrics", &stat); code != http.StatusOK {
		t.Fatalf("metrics on follower: %d", code)
	}
	if stat.Role != "follower" || stat.AppliedLSN != 7 || stat.LastLSN != 9 {
		t.Fatalf("stat = %+v, want follower applied 7 last 9", stat.TenantStat)
	}

	// Updates and admin writes bounce with the typed envelope.
	resp, body := postUpdate(t, db, `insert <x/> into /site`)
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("update on follower: %d (%+v)", resp.StatusCode, body)
	}
	rr, raw := postJSON(t, ts.URL+"/v1/db", CreateDBRequest{Name: "nope", Document: "<site/>"})
	if rr.StatusCode != http.StatusForbidden {
		t.Fatalf("create on follower: %d (%s)", rr.StatusCode, raw)
	}
	var env ErrorResponse
	if err := json.Unmarshal(raw, &env); err != nil || env.Error.Code != CodeReadOnly {
		t.Fatalf("create error body %s, want code %s", raw, CodeReadOnly)
	}
	dr, raw := deleteReq(t, db)
	if dr.StatusCode != http.StatusForbidden {
		t.Fatalf("drop on follower: %d (%s)", dr.StatusCode, raw)
	}

	// Health reports the follower role and the max lag across tenants.
	var h HealthResponse
	if code := getJSON(t, ts.URL+"/healthz", &h); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	if h.Role != "follower" || h.MaxLagLSN != 2 {
		t.Fatalf("health = role %q lag %d, want follower/2", h.Role, h.MaxLagLSN)
	}

	// Shard-level rejection is the typed sentinel.
	sh, err := reg.Get(DefaultTenant)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sh.Apply(context.Background(), mustStatement(t, `insert <x/> into /site`)); err != ErrReadOnly {
		t.Fatalf("shard apply on replica: %v, want ErrReadOnly", err)
	}
}
