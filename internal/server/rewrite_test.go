package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"xivm/internal/obs"
	"xivm/internal/update"
)

// rewriteViewSpecs is an ID-complete view library sized to answer the
// rewritable corpus below with all three plan shapes.
func rewriteViewSpecs() []ViewSpec {
	return []ViewSpec{
		{Name: "RW1", Pattern: `/site{ID}/people{ID}/person{ID}/name{ID,val}`},
		{Name: "RW2", Pattern: `//open_auction{ID}//bidder{ID}`},
		{Name: "RW3", Pattern: `//bidder{ID}//increase{ID,val}`},
		{Name: "RW4", Pattern: `//open_auction{ID}//initial{ID,val}`},
		{Name: "RW5", Pattern: `//open_auction{ID}//increase{ID,val}`},
		{Name: "RW6", Pattern: `//person{ID}//profile{ID}`},
		{Name: "RW7", Pattern: `//person{ID}//homepage{ID}`},
		{Name: "RW8", Pattern: `//person{ID}//name{ID,val}`},
	}
}

// rewriteCorpus maps each query to the plan prefix expected under the
// library above ("" = not rewritable: tree walk both ways).
var rewriteCorpus = []struct{ query, planPrefix string }{
	{`/site/people/person/name`, "single-view rewrite over RW1"},
	{`//open_auction//increase`, "single-view rewrite over RW5"},
	{`//open_auction//bidder//increase`, "stitch of RW2 and RW3"},
	{`//open_auction[bidder]//initial`, "intersection of RW2, RW4"},
	{`//person[profile][homepage]/name`, "intersection of RW6, RW7, RW8"},
	{`//open_auction/bidder/increase`, "stitch of RW2 and RW3"},
	{`/site/people/person[1]/name`, ""}, // positional: not bridgeable
	{`//item//name/text()`, ""},         // text(): not bridgeable
	{`//person[count(watches)>=1]`, ""}, // count(): not bridgeable
	{`/site/regions//item`, "treewalk"}, // bridgeable, no covering view
}

func newRewriteRegistry(t *testing.T, m *obs.Metrics) (*Registry, *Shard) {
	t.Helper()
	if m == nil {
		m = obs.New()
	}
	reg, err := NewRegistry(RegistryConfig{
		Shard:        Config{Metrics: m},
		DefaultDoc:   rewriteTestDoc(),
		DefaultViews: rewriteViewSpecs(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Create(DefaultTenant, "", nil); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = reg.Shutdown(ctx)
	})
	sh, err := reg.Get(DefaultTenant)
	if err != nil {
		t.Fatal(err)
	}
	return reg, sh
}

// rewriteTestDoc guarantees auctions with bidders/initial and persons with
// profile+homepage so every corpus query has matches.
func rewriteTestDoc() string {
	return `<site><people>` +
		`<person id="p0"><name>Ann</name><profile><age>30</age></profile><homepage>h0</homepage></person>` +
		`<person id="p1"><name>Bob</name><profile><age>41</age></profile></person>` +
		`<person id="p2"><name>Cyd</name><homepage>h2</homepage></person>` +
		`</people><open_auctions>` +
		`<open_auction id="a0"><initial>5</initial><bidder><increase>3</increase></bidder><bidder><increase>7</increase></bidder></open_auction>` +
		`<open_auction id="a1"><initial>9</initial><bidder><increase>3</increase></bidder></open_auction>` +
		`<open_auction id="a2"><initial>2</initial></open_auction>` +
		`</open_auctions><regions><item id="i0"><name>lamp</name></item></regions></site>`
}

// respBody fetches one xpath response body as raw bytes.
func respBody(t *testing.T, base, q, extra string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/v1/db/default/xpath?q=" + url.QueryEscape(q) + extra)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", q, resp.StatusCode, b)
	}
	return b
}

// TestRewriteCorpusDifferential is the content-level harness: for every
// corpus query the rewritten HTTP body must byte-equal the forced tree
// walk's, and explain=1 must echo the expected plan shape.
func TestRewriteCorpusDifferential(t *testing.T) {
	m := obs.New()
	reg, _ := newRewriteRegistry(t, m)
	ts := httptest.NewServer(reg.Handler())
	t.Cleanup(ts.Close)

	for _, c := range rewriteCorpus {
		rewritten := respBody(t, ts.URL, c.query, "")
		walked := respBody(t, ts.URL, c.query, "&rewrite=0")
		if string(rewritten) != string(walked) {
			t.Fatalf("%s: rewritten body differs from tree walk\nrewrite: %s\nwalk:    %s", c.query, rewritten, walked)
		}
		var xr XPathResponse
		if err := json.Unmarshal(rewritten, &xr); err != nil {
			t.Fatal(err)
		}
		if len(xr.Matches) == 0 && c.planPrefix != "" && c.planPrefix != "treewalk" {
			t.Fatalf("%s: rewritable corpus query matched nothing", c.query)
		}
		if xr.Plan != "" {
			t.Fatalf("%s: plan leaked into non-explain response: %q", c.query, xr.Plan)
		}
		var ex XPathResponse
		if err := json.Unmarshal(respBody(t, ts.URL, c.query, "&explain=1"), &ex); err != nil {
			t.Fatal(err)
		}
		wantPrefix := c.planPrefix
		if wantPrefix == "" {
			wantPrefix = "treewalk"
		}
		if !strings.HasPrefix(ex.Plan, wantPrefix) {
			t.Fatalf("%s: explain plan %q, want prefix %q", c.query, ex.Plan, wantPrefix)
		}
	}
	hits := m.Counter("server.xpath.rewrite.hit").Value()
	if hits == 0 {
		t.Fatal("no rewrite hits across the corpus")
	}
	if m.Counter("server.xpath.rewrite.stitch").Value() == 0 {
		t.Fatal("no stitch plans served")
	}
	if m.Counter("server.xpath.rewrite.intersect").Value() == 0 {
		t.Fatal("no intersection plans served")
	}
}

// TestRewriteResultCache pins the delta-invalidation contract: repeats hit
// the cache; an affecting write drops the entry; an independent write
// leaves it serving at the NEW epoch.
func TestRewriteResultCache(t *testing.T) {
	m := obs.New()
	reg, sh := newRewriteRegistry(t, m)
	const q = `/site/people/person/name`
	ctx := context.Background()

	cacheHits := m.Counter("server.xpath.rewrite.cache_hit")
	ask := func() XPathResponse {
		t.Helper()
		resp, err := reg.xpathResponse(sh, sh.Epoch(), q, true)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	first := ask()
	if cacheHits.Value() != 0 {
		t.Fatal("cold query hit the cache")
	}
	second := ask()
	if cacheHits.Value() != 1 {
		t.Fatalf("repeat did not hit the cache (hits=%d)", cacheHits.Value())
	}
	if len(second.Matches) != len(first.Matches) {
		t.Fatal("cached matches differ")
	}

	// An independent write (labels disjoint from site/people/person/name,
	// and no sensitive label at or above its target) must NOT invalidate:
	// the entry keeps serving at the advanced epoch.
	if _, _, err := sh.Apply(ctx, update.MustParse(`insert <spectator/> into /site/regions/item`)); err != nil {
		t.Fatal(err)
	}
	afterIndep := ask()
	if cacheHits.Value() != 2 {
		t.Fatalf("independent write evicted the entry (hits=%d)", cacheHits.Value())
	}
	if afterIndep.Version <= second.Version {
		t.Fatalf("epoch did not advance (%d -> %d)", second.Version, afterIndep.Version)
	}

	// An affecting write must drop the entry; the recomputed answer must
	// reflect it and byte-match the tree walk.
	if _, _, err := sh.Apply(ctx, update.MustParse(`insert <person id="p9"><name>Zed</name></person> into /site/people`)); err != nil {
		t.Fatal(err)
	}
	if m.Counter("server.xpath.rewrite.cache_invalidate").Value() == 0 {
		t.Fatal("affecting write did not invalidate")
	}
	snap := sh.Epoch()
	afterWrite, err := reg.xpathResponse(sh, snap, q, true)
	if err != nil {
		t.Fatal(err)
	}
	if cacheHits.Value() != 2 {
		t.Fatal("invalidated entry still served from cache")
	}
	if len(afterWrite.Matches) != len(first.Matches)+1 {
		t.Fatalf("rewritten answer missed the insert: %d matches, want %d", len(afterWrite.Matches), len(first.Matches)+1)
	}
	walked, err := reg.xpathResponse(sh, snap, q, false)
	if err != nil {
		t.Fatal(err)
	}
	afterWrite.Plan, walked.Plan = "", ""
	a, _ := json.Marshal(afterWrite)
	b, _ := json.Marshal(walked)
	if string(a) != string(b) {
		t.Fatalf("post-write rewrite differs from tree walk:\n%s\n%s", a, b)
	}
}

// TestStressRewriteVsTreeWalkUnderMutation: readers pin a snapshot and
// demand the rewritten response byte-equal the tree walk at that exact
// epoch while writers churn the document. Run under -race in CI.
func TestStressRewriteVsTreeWalkUnderMutation(t *testing.T) {
	reg, sh := newRewriteRegistry(t, nil)
	ctx := context.Background()

	writerStmts := []string{
		`insert <person><name>Churn</name><profile><age>1</age></profile><homepage>h9</homepage></person> into /site/people`,
		`for $x in /site/open_auctions/open_auction insert <bidder><increase>4</increase></bidder>`,
		`delete /site/people/person/homepage`,
		`delete /site/open_auctions/open_auction/bidder`,
		`insert <open_auction><initial>7</initial><bidder><increase>2</increase></bidder></open_auction> into /site/open_auctions`,
	}
	queries := make([]string, 0, len(rewriteCorpus))
	for _, c := range rewriteCorpus {
		queries = append(queries, c.query)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				st := update.MustParse(writerStmts[(seed+i)%len(writerStmts)])
				if _, _, err := sh.Apply(ctx, st); err != nil {
					t.Errorf("writer: %v", err)
					return
				}
			}
		}(w)
	}
	var readers sync.WaitGroup
	for rd := 0; rd < 4; rd++ {
		readers.Add(1)
		go func(seed int) {
			defer readers.Done()
			for i := 0; i < 200; i++ {
				q := queries[(seed+i)%len(queries)]
				snap := sh.Epoch()
				rewritten, err := reg.xpathResponse(sh, snap, q, true)
				if err != nil {
					t.Errorf("%s: %v", q, err)
					return
				}
				walked, err := reg.xpathResponse(sh, snap, q, false)
				if err != nil {
					t.Errorf("%s: %v", q, err)
					return
				}
				rewritten.Plan, walked.Plan = "", ""
				a, _ := json.Marshal(rewritten)
				b, _ := json.Marshal(walked)
				if string(a) != string(b) {
					t.Errorf("%s at version %d: rewrite != tree walk\n%s\n%s", q, snap.Version, a, b)
					return
				}
			}
		}(rd)
	}
	readers.Wait()
	close(stop)
	wg.Wait()
}
