package server

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"xivm/internal/obs"
	"xivm/internal/xmark"
)

// TestXPathCacheMetrics pins the compiled-query cache's observable contract
// through the HTTP handler: first sight of a query is a miss that compiles,
// repeats are hits, and with a tiny cache a third distinct query evicts the
// least-recently-used program — all visible as server.xpath.cache.{hit,
// miss,evict} and none of it changing query results. rewrite=0 keeps the
// view-rewrite layer (and its own result cache) out of the way: this test
// pins the tree-walk compile cache alone.
func TestXPathCacheMetrics(t *testing.T) {
	m := obs.New()
	reg, err := NewRegistry(RegistryConfig{
		Shard:          Config{Metrics: m},
		DefaultDoc:     xmark.GenerateSmall(1),
		DefaultViews:   testViewSpecs(),
		XPathCacheSize: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Create(DefaultTenant, "", nil); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(reg.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = reg.Shutdown(ctx)
	})

	counters := func() (hit, miss, evict int64) {
		return m.Counter("server.xpath.cache.hit").Value(),
			m.Counter("server.xpath.cache.miss").Value(),
			m.Counter("server.xpath.cache.evict").Value()
	}
	query := func(q string) XPathResponse {
		t.Helper()
		var xr XPathResponse
		if st := getJSON(t, ts.URL+"/v1/db/default/xpath?rewrite=0&q="+q, &xr); st != 200 {
			t.Fatalf("GET xpath %q: status %d", q, st)
		}
		return xr
	}

	const (
		q1 = "/site/people/person/name"
		q2 = "//person[@id]"
		q3 = "/site/regions//item"
	)

	// Cold cache: the first evaluation compiles.
	first := query(q1)
	if hit, miss, evict := counters(); hit != 0 || miss != 1 || evict != 0 {
		t.Fatalf("after first query: hit=%d miss=%d evict=%d, want 0/1/0", hit, miss, evict)
	}
	if len(first.Matches) == 0 {
		t.Fatalf("query %q matched nothing on the seed document", q1)
	}

	// Same query again: served from cache, identical results.
	second := query(q1)
	if hit, miss, evict := counters(); hit != 1 || miss != 1 || evict != 0 {
		t.Fatalf("after repeat: hit=%d miss=%d evict=%d, want 1/1/0", hit, miss, evict)
	}
	if len(second.Matches) != len(first.Matches) {
		t.Fatalf("cached program returned %d matches, interpreted-first returned %d",
			len(second.Matches), len(first.Matches))
	}
	for i := range second.Matches {
		if second.Matches[i] != first.Matches[i] {
			t.Fatalf("match %d diverged between miss and hit: %+v vs %+v",
				i, first.Matches[i], second.Matches[i])
		}
	}

	// Second distinct query fills the 2-slot cache without eviction.
	query(q2)
	if hit, miss, evict := counters(); hit != 1 || miss != 2 || evict != 0 {
		t.Fatalf("after second query: hit=%d miss=%d evict=%d, want 1/2/0", hit, miss, evict)
	}

	// Third distinct query evicts the least recently used program (q1:
	// recency order is q2, q1 after the fill above).
	query(q3)
	if hit, miss, evict := counters(); hit != 1 || miss != 3 || evict != 1 {
		t.Fatalf("after third query: hit=%d miss=%d evict=%d, want 1/3/1", hit, miss, evict)
	}

	// q1 was evicted, so it misses and recompiles — evicting q2 in turn —
	// and still returns the same rows.
	again := query(q1)
	if hit, miss, evict := counters(); hit != 1 || miss != 4 || evict != 2 {
		t.Fatalf("after re-query of evicted: hit=%d miss=%d evict=%d, want 1/4/2", hit, miss, evict)
	}
	if len(again.Matches) != len(first.Matches) {
		t.Fatalf("recompiled program returned %d matches, want %d", len(again.Matches), len(first.Matches))
	}

	// A query outside the grammar is a 400: it counts as a miss (counted
	// before the compile attempt) but never enters the cache, so nothing
	// is evicted.
	var xr XPathResponse
	if st := getJSON(t, ts.URL+"/v1/db/default/xpath?rewrite=0&q=/site[", &xr); st != 400 {
		t.Fatalf("malformed query: status %d, want 400", st)
	}
	if hit, miss, evict := counters(); hit != 1 || miss != 5 || evict != 2 {
		t.Fatalf("after malformed query: hit=%d miss=%d evict=%d, want 1/5/2", hit, miss, evict)
	}
}
