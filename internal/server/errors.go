package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
)

// Registry lifecycle errors. The HTTP layer maps them to envelope codes;
// programmatic callers test with errors.Is.
var (
	// ErrNoSuchTenant is returned for operations on a tenant the registry
	// does not hold (HTTP 404, code no_such_db).
	ErrNoSuchTenant = errors.New("server: no such database")
	// ErrTenantExists is returned by Create for a name already held or
	// being created (HTTP 409, code db_exists).
	ErrTenantExists = errors.New("server: database already exists")
	// ErrRegistryClosed is returned for lifecycle operations after the
	// registry began shutting down (HTTP 503, code shutting_down).
	ErrRegistryClosed = errors.New("server: registry shutting down")
)

// invalidError marks a client-side validation failure (bad tenant name,
// unparsable document or view pattern) so the HTTP layer answers 400
// instead of 500. errors.As unwraps it.
type invalidError struct{ err error }

func (e invalidError) Error() string { return e.err.Error() }
func (e invalidError) Unwrap() error { return e.err }

func invalid(format string, args ...any) error {
	return invalidError{fmt.Errorf(format, args...)}
}

// Error envelope codes. Every non-2xx response carries exactly one.
const (
	CodeBadRequest   = "bad_request"   // 400: malformed body, statement, query, or name
	CodeNotFound     = "not_found"     // 404: no such view or route
	CodeNoSuchDB     = "no_such_db"    // 404: tenant does not exist
	CodeDBExists     = "db_exists"     // 409: create of an existing tenant
	CodeQueueFull    = "queue_full"    // 429: tenant's apply queue is saturated
	CodeShuttingDown = "shutting_down" // 503: tenant or registry is draining
	CodeTimeout      = "timeout"       // 504: request deadline expired
	CodeApplyFailed  = "apply_failed"  // 422: the engine rejected the statement
	CodeInternal     = "internal"      // 500: everything else

	// Replication codes.
	CodeReadOnly         = "read_only"         // 403: write sent to a follower; the message names the leader
	CodeSnapshotRequired = "snapshot_required" // 410: requested LSN truncated; re-sync from the newest checkpoint
	CodeNoReplication    = "no_replication"    // 404: tenant has no WAL (in-memory), nothing to stream
)

// ErrorInfo is the body of the uniform error envelope: a machine-readable
// code, a human-readable message, and the tenant the request addressed
// (empty for admin-plane errors that are not about one tenant).
type ErrorInfo struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	Tenant  string `json:"tenant,omitempty"`
}

// ErrorResponse is the body of every non-2xx answer:
// {"error": {"code", "message", "tenant"}}.
type ErrorResponse struct {
	Error ErrorInfo `json:"error"`
}

// writeErr emits the error envelope with the given status and code.
func writeErr(w http.ResponseWriter, status int, code, tenant, message string) {
	writeJSON(w, status, ErrorResponse{Error: ErrorInfo{Code: code, Message: message, Tenant: tenant}})
}

// writeApplyError maps an Apply failure to its envelope. The 429 carries
// Retry-After, which well-behaved clients (internal/client) honor.
func writeApplyError(w http.ResponseWriter, tenant string, err error) {
	switch {
	case errors.Is(err, ErrReadOnly):
		writeErr(w, http.StatusForbidden, CodeReadOnly, tenant, err.Error())
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusTooManyRequests, CodeQueueFull, tenant, err.Error())
	case errors.Is(err, ErrShuttingDown):
		writeErr(w, http.StatusServiceUnavailable, CodeShuttingDown, tenant, err.Error())
	case errors.Is(err, context.DeadlineExceeded):
		writeErr(w, http.StatusGatewayTimeout, CodeTimeout, tenant, err.Error())
	case errors.Is(err, context.Canceled):
		// Client went away; 499-style. StatusGatewayTimeout is the closest
		// standard code that is unmistakably "not applied as far as you know".
		writeErr(w, http.StatusGatewayTimeout, CodeTimeout, tenant, err.Error())
	default:
		writeErr(w, http.StatusUnprocessableEntity, CodeApplyFailed, tenant, err.Error())
	}
}

// writeLifecycleError maps a Create/Drop failure to its envelope.
func writeLifecycleError(w http.ResponseWriter, tenant string, err error) {
	var inv invalidError
	switch {
	case errors.Is(err, ErrNoSuchTenant):
		writeErr(w, http.StatusNotFound, CodeNoSuchDB, tenant, err.Error())
	case errors.Is(err, ErrTenantExists):
		writeErr(w, http.StatusConflict, CodeDBExists, tenant, err.Error())
	case errors.Is(err, ErrRegistryClosed):
		writeErr(w, http.StatusServiceUnavailable, CodeShuttingDown, tenant, err.Error())
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		writeErr(w, http.StatusGatewayTimeout, CodeTimeout, tenant, err.Error())
	case errors.As(err, &inv):
		writeErr(w, http.StatusBadRequest, CodeBadRequest, tenant, err.Error())
	default:
		writeErr(w, http.StatusInternalServerError, CodeInternal, tenant, err.Error())
	}
}
