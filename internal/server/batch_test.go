package server

import (
	"context"
	"testing"
	"time"

	"xivm/internal/core"
	"xivm/internal/obs"
)

// gatedShard builds a shard over the in-memory test engine whose writer can
// be parked at the engine boundary (pausingBackend) and observed committing
// to a statement (entered tokens), so tests can force exact batch shapes.
func gatedShard(t *testing.T, m *obs.Metrics) (*Shard, *pausingBackend) {
	t.Helper()
	pb := &pausingBackend{
		Backend: EngineBackend{Eng: newTestEngine(t)},
		entered: make(chan struct{}, 64),
	}
	s := NewShard("batch-test", pb, nil, Config{Metrics: m})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Close(ctx); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return s, pb
}

// enqueueExactBatch forces the writer to drain srcs as one unit: it parks
// the writer on a pilot statement (waiting for the entered token proves the
// writer drained the pilot alone and is blocked at the engine boundary),
// enqueues every src while the writer is held, then releases it. ctxs, when
// non-nil, supplies a per-statement context. Returns the pilot's wait
// followed by one wait per src.
func enqueueExactBatch(t *testing.T, s *Shard, pb *pausingBackend, ctxs []context.Context, srcs ...string) []func() (*core.Report, uint64, error) {
	t.Helper()
	pb.mu.Lock()
	waits := make([]func() (*core.Report, uint64, error), 0, len(srcs)+1)
	pilot, err := s.ApplyAsync(context.Background(), mustStatement(t, `insert <pilot/> into /site`))
	if err != nil {
		pb.mu.Unlock()
		t.Fatalf("enqueue pilot: %v", err)
	}
	waits = append(waits, pilot)
	select {
	case <-pb.entered:
	case <-time.After(10 * time.Second):
		pb.mu.Unlock()
		t.Fatal("writer never reached the engine boundary for the pilot")
	}
	for i, src := range srcs {
		ctx := context.Background()
		if ctxs != nil {
			ctx = ctxs[i]
		}
		wait, err := s.ApplyAsync(ctx, mustStatement(t, src))
		if err != nil {
			pb.mu.Unlock()
			t.Fatalf("enqueue stmt %d: %v", i, err)
		}
		waits = append(waits, wait)
	}
	pb.mu.Unlock()
	return waits
}

// TestShardBatchTranslatedMetrics drives one forced four-statement batch of
// compatible inserts through the writer and pins down the accounting: one
// translated batch, four batched statements, a single published epoch whose
// version every constituent ack shares, and no fallbacks.
func TestShardBatchTranslatedMetrics(t *testing.T) {
	m := obs.New()
	s, pb := gatedShard(t, m)
	v0 := s.Epoch().Version
	e0 := m.CounterValue("snapshot.epochs")

	waits := enqueueExactBatch(t, s, pb, nil,
		`insert <batchm0/> into /site/people`,
		`insert <batchm1/> into /site/regions`,
		`insert <batchm2/> into /site/open_auctions`,
		`insert <batchm3/> into /site/closed_auctions`,
	)

	rep, pilotVersion, err := waits[0]()
	if err != nil || rep == nil {
		t.Fatalf("pilot: rep=%v err=%v", rep, err)
	}
	if pilotVersion != v0+1 {
		t.Fatalf("pilot acked at version %d, want %d", pilotVersion, v0+1)
	}
	batchVersion := pilotVersion + uint64(len(waits)-1)
	for i, wait := range waits[1:] {
		rep, version, err := wait()
		if err != nil || rep == nil {
			t.Fatalf("stmt %d: rep=%v err=%v", i, rep, err)
		}
		if version != batchVersion {
			t.Fatalf("stmt %d acked at version %d, want the batch's single epoch %d", i, version, batchVersion)
		}
	}
	if got := s.Epoch().Version; got != batchVersion {
		t.Fatalf("final epoch version %d, want %d", got, batchVersion)
	}

	if got := m.CounterValue("server.batch.count"); got != 1 {
		t.Fatalf("server.batch.count = %d, want 1", got)
	}
	if got := m.CounterValue("server.batch.statements"); got != 4 {
		t.Fatalf("server.batch.statements = %d, want 4", got)
	}
	if got := m.CounterValue("server.batch.fallbacks"); got != 0 {
		t.Fatalf("server.batch.fallbacks = %d, want 0", got)
	}
	if got := m.CounterValue("server.apply.count"); got != 5 {
		t.Fatalf("server.apply.count = %d, want 5 (pilot + 4 batched)", got)
	}
	// Exactly two epochs after construction: the pilot's and the batch's.
	if got := m.CounterValue("snapshot.epochs") - e0; got != 2 {
		t.Fatalf("published %d epochs, want 2 (pilot + one per batch)", got)
	}
}

// TestShardBatchFallbackReason forces a batch the planner must reject (it
// contains a replace) and asserts the per-statement fallback: a reason-keyed
// fallback counter, no translated batch, and strictly increasing ack
// versions — one epoch per statement, exactly the pre-batching behavior.
func TestShardBatchFallbackReason(t *testing.T) {
	m := obs.New()
	s, pb := gatedShard(t, m)

	waits := enqueueExactBatch(t, s, pb, nil,
		`insert <batchf0/> into /site/people`,
		`replace /site/people/person/name with <name>Fallback Renamed</name>`,
		`insert <batchf1/> into /site/regions`,
	)

	var last uint64
	for i, wait := range waits {
		rep, version, err := wait()
		if err != nil || rep == nil {
			t.Fatalf("stmt %d: rep=%v err=%v", i, rep, err)
		}
		// Per-statement acks land on distinct, increasing versions; a
		// translated batch would have answered every request with one shared
		// epoch version.
		if i > 0 && version <= last {
			t.Fatalf("stmt %d acked at version %d after %d, want distinct per-statement versions", i, version, last)
		}
		last = version
	}

	if got := m.CounterValue("server.batch.count"); got != 0 {
		t.Fatalf("server.batch.count = %d, want 0", got)
	}
	if got := m.CounterValue("server.batch.fallbacks"); got != 1 {
		t.Fatalf("server.batch.fallbacks = %d, want 1", got)
	}
	if got := m.CounterValue("server.batch.fallback.replace"); got != 1 {
		t.Fatalf("server.batch.fallback.replace = %d, want 1", got)
	}
	if got := m.CounterValue("server.apply.count"); got != 4 {
		t.Fatalf("server.apply.count = %d, want 4", got)
	}
}

// TestShardBatchCancelledFallsBack proves per-request cancellation degrades
// a drained batch to the per-statement path: the cancelled statement is
// skipped before the engine is touched (server.apply.abandoned, never
// server.abandoned_applied) while its batchmates land individually.
func TestShardBatchCancelledFallsBack(t *testing.T) {
	m := obs.New()
	s, pb := gatedShard(t, m)
	v0 := s.Epoch().Version

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	waits := enqueueExactBatch(t, s, pb,
		[]context.Context{context.Background(), cancelled, context.Background()},
		`insert <batchc0/> into /site/people`,
		`insert <batchc1/> into /site/regions`,
		`insert <batchc2/> into /site/open_auctions`,
	)

	if _, _, err := waits[0](); err != nil {
		t.Fatalf("pilot: %v", err)
	}
	for _, i := range []int{1, 3} {
		rep, _, err := waits[i]()
		if err != nil || rep == nil {
			t.Fatalf("stmt %d: rep=%v err=%v, want applied", i-1, rep, err)
		}
	}
	if _, _, err := waits[2](); err == nil {
		t.Fatal("cancelled statement was acknowledged without error")
	}

	// Pilot + two survivors; the cancelled statement must have no effect.
	if got, want := s.Epoch().Version, v0+3; got != want {
		t.Fatalf("final epoch version %d, want %d", got, want)
	}
	if got := m.CounterValue("server.batch.fallback.cancelled"); got != 1 {
		t.Fatalf("server.batch.fallback.cancelled = %d, want 1", got)
	}
	if got := m.CounterValue("server.apply.abandoned"); got != 1 {
		t.Fatalf("server.apply.abandoned = %d, want 1", got)
	}
	if got := m.CounterValue("server.abandoned_applied"); got != 0 {
		t.Fatalf("server.abandoned_applied = %d, want 0 (statement was skipped, not applied)", got)
	}
	if got := m.CounterValue("server.batch.count"); got != 0 {
		t.Fatalf("server.batch.count = %d, want 0", got)
	}
}
