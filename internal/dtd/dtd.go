// Package dtd implements Section 3.3: DTDs expressed as extended context-
// free grammars whose right-hand sides are regular expressions over
// terminal and non-terminal symbols. It validates documents and inserted
// forests, checks whether an insertion would violate the target's content
// model, and derives the ∆+-table co-occurrence constraints of Examples
// 3.9/3.10 (e.g. ∆c = ∅ ⇒ ∆b = ∅) for fast update rejection.
//
// Conventions: symbols starting with an upper-case letter are
// non-terminals (macros, expanded in place; recursion among non-terminals
// is rejected); other symbols are element labels. The special right-hand
// sides "ε" (empty) and "#text" (text-only content) mark leaf elements.
package dtd

import (
	"fmt"
	"sort"
	"strings"
)

// reKind enumerates regex AST nodes.
type reKind uint8

const (
	reEmpty reKind = iota // ε
	reSym                 // one symbol
	reText                // #text (any text content, no elements)
	reCat                 // concatenation
	reAlt                 // alternation
	reStar                // zero or more
	rePlus                // one or more
	reOpt                 // zero or one
)

type re struct {
	kind reKind
	sym  string
	subs []*re
}

// DTD is a parsed grammar.
type DTD struct {
	Root  string
	rules map[string]*re
}

// Parse reads a grammar, one rule per line, as "lhs -> rhs" (or ":=").
// The first rule's left-hand side is the document root symbol. Lines that
// are empty or start with '#' are skipped.
func Parse(src string) (*DTD, error) {
	d := &DTD{rules: map[string]*re{}}
	for ln, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var lhs, rhs string
		switch {
		case strings.Contains(line, "->"):
			parts := strings.SplitN(line, "->", 2)
			lhs, rhs = strings.TrimSpace(parts[0]), strings.TrimSpace(parts[1])
		case strings.Contains(line, ":="):
			parts := strings.SplitN(line, ":=", 2)
			lhs, rhs = strings.TrimSpace(parts[0]), strings.TrimSpace(parts[1])
		default:
			return nil, fmt.Errorf("dtd: line %d: missing -> in %q", ln+1, line)
		}
		if lhs == "" {
			return nil, fmt.Errorf("dtd: line %d: empty left-hand side", ln+1)
		}
		r, err := parseRegex(rhs)
		if err != nil {
			return nil, fmt.Errorf("dtd: line %d: %v", ln+1, err)
		}
		if _, dup := d.rules[lhs]; dup {
			// Multiple rules for one symbol combine by alternation.
			d.rules[lhs] = &re{kind: reAlt, subs: []*re{d.rules[lhs], r}}
		} else {
			d.rules[lhs] = r
		}
		if d.Root == "" {
			d.Root = lhs
		}
	}
	if d.Root == "" {
		return nil, fmt.Errorf("dtd: empty grammar")
	}
	// Reject recursion among non-terminals (macros must expand finitely).
	for sym := range d.rules {
		if isNonTerminal(sym) {
			if d.macroRecursive(sym, map[string]bool{}) {
				return nil, fmt.Errorf("dtd: recursive non-terminal %s", sym)
			}
		}
	}
	return d, nil
}

// MustParse is Parse that panics on error.
func MustParse(src string) *DTD {
	d, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return d
}

func isNonTerminal(sym string) bool {
	return len(sym) > 0 && sym[0] >= 'A' && sym[0] <= 'Z'
}

func (d *DTD) macroRecursive(sym string, path map[string]bool) bool {
	if path[sym] {
		return true
	}
	path[sym] = true
	defer delete(path, sym)
	r, ok := d.rules[sym]
	if !ok {
		return false
	}
	rec := false
	walkRe(r, func(x *re) {
		if x.kind == reSym && isNonTerminal(x.sym) && d.macroRecursive(x.sym, path) {
			rec = true
		}
	})
	return rec
}

func walkRe(r *re, f func(*re)) {
	f(r)
	for _, s := range r.subs {
		walkRe(s, f)
	}
}

// parseRegex parses: alternation of concatenations of (possibly repeated)
// atoms. Concatenation separator is ',' (whitespace between atoms also
// concatenates); atoms are symbols, ε, #text, or parenthesized groups, with
// postfix +, * or ?.
func parseRegex(s string) (*re, error) {
	p := &reParser{src: s}
	r, err := p.alt()
	if err != nil {
		return nil, err
	}
	p.skip()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("trailing input %q", p.src[p.pos:])
	}
	return r, nil
}

type reParser struct {
	src string
	pos int
}

func (p *reParser) skip() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

func (p *reParser) alt() (*re, error) {
	left, err := p.cat()
	if err != nil {
		return nil, err
	}
	for {
		p.skip()
		if p.pos >= len(p.src) || p.src[p.pos] != '|' {
			return left, nil
		}
		p.pos++
		right, err := p.cat()
		if err != nil {
			return nil, err
		}
		left = &re{kind: reAlt, subs: []*re{left, right}}
	}
}

func (p *reParser) cat() (*re, error) {
	var parts []*re
	for {
		p.skip()
		if p.pos >= len(p.src) {
			break
		}
		c := p.src[p.pos]
		if c == '|' || c == ')' {
			break
		}
		if c == ',' {
			p.pos++
			continue
		}
		atom, err := p.atom()
		if err != nil {
			return nil, err
		}
		parts = append(parts, atom)
	}
	switch len(parts) {
	case 0:
		return &re{kind: reEmpty}, nil
	case 1:
		return parts[0], nil
	}
	return &re{kind: reCat, subs: parts}, nil
}

func (p *reParser) atom() (*re, error) {
	p.skip()
	var base *re
	switch {
	case p.src[p.pos] == '(':
		p.pos++
		inner, err := p.alt()
		if err != nil {
			return nil, err
		}
		p.skip()
		if p.pos >= len(p.src) || p.src[p.pos] != ')' {
			return nil, fmt.Errorf("missing )")
		}
		p.pos++
		base = inner
	default:
		start := p.pos
		for p.pos < len(p.src) && isSymByte(p.src[p.pos]) {
			p.pos++
		}
		if p.pos == start {
			return nil, fmt.Errorf("expected symbol at %q", p.src[p.pos:])
		}
		sym := p.src[start:p.pos]
		switch sym {
		case "ε", "EPSILON", "empty":
			base = &re{kind: reEmpty}
		case "#text":
			base = &re{kind: reText}
		default:
			base = &re{kind: reSym, sym: sym}
		}
	}
	if p.pos < len(p.src) {
		switch p.src[p.pos] {
		case '+':
			p.pos++
			return &re{kind: rePlus, subs: []*re{base}}, nil
		case '*':
			p.pos++
			return &re{kind: reStar, subs: []*re{base}}, nil
		case '?':
			p.pos++
			return &re{kind: reOpt, subs: []*re{base}}, nil
		}
	}
	return base, nil
}

func isSymByte(c byte) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		return true
	case c == '_', c == '-', c == '#':
		return true
	}
	// ε is multi-byte UTF-8; accept its bytes.
	return c >= 0x80
}

// content returns the content model of an element label with non-terminals
// expanded, or nil when the DTD has no rule for it.
func (d *DTD) content(label string) *re {
	r, ok := d.rules[label]
	if !ok {
		return nil
	}
	return d.expand(r)
}

func (d *DTD) expand(r *re) *re {
	switch r.kind {
	case reSym:
		if isNonTerminal(r.sym) {
			sub, ok := d.rules[r.sym]
			if !ok {
				return r // undefined macro behaves as a plain symbol
			}
			return d.expand(sub)
		}
		return r
	case reEmpty, reText:
		return r
	}
	out := &re{kind: r.kind}
	for _, s := range r.subs {
		out.subs = append(out.subs, d.expand(s))
	}
	return out
}

// ElementLabels returns the element labels the grammar defines.
func (d *DTD) ElementLabels() []string {
	var out []string
	for sym := range d.rules {
		if !isNonTerminal(sym) {
			out = append(out, sym)
		}
	}
	sort.Strings(out)
	return out
}

// PossibleChildren returns every element label (and "#text") that may occur
// as a child of an l-labeled element according to the grammar. Unknown
// elements yield nil.
func (d *DTD) PossibleChildren(l string) map[string]bool {
	model := d.content(l)
	if model == nil {
		return nil
	}
	out := map[string]bool{}
	walkRe(model, func(x *re) {
		switch x.kind {
		case reSym:
			out[x.sym] = true
		case reText:
			out["#text"] = true
		}
	})
	return out
}

// DocumentRootLabel returns the element label of the document root, or ""
// when the grammar's start symbol is a non-terminal.
func (d *DTD) DocumentRootLabel() string {
	if isNonTerminal(d.Root) {
		return ""
	}
	return d.Root
}
