package dtd_test

import (
	"fmt"

	"xivm/internal/dtd"
	"xivm/internal/xmltree"
)

// ExampleDTD_CheckInsert gates an update on the schema, as Section 3.3
// proposes: the derived ∆ constraints and the content model both reject the
// invalid insertion.
func ExampleDTD_CheckInsert() {
	g := dtd.MustParse(`
d1 -> AS
AS -> a+
a -> BS
BS -> b+
b -> c
c -> ε
`)
	doc, _ := xmltree.ParseString(`<d1><a><b><c/></b></a></d1>`)

	bad, _ := xmltree.ParseForest(`<a><b/></a>`) // b without its mandatory c
	fmt.Println("∆ violations:", g.CheckDeltaConstraints(dtd.DeltaSizes(bad)))
	fmt.Println("insert:", g.CheckInsert(doc.Root, bad) != nil)

	good, _ := xmltree.ParseForest(`<a><b><c/></b></a>`)
	fmt.Println("good insert:", g.CheckInsert(doc.Root, good) == nil)
	// Output:
	// ∆ violations: [∆a ≠ ∅ ⇒ ∆c ≠ ∅ ∆b ≠ ∅ ⇒ ∆c ≠ ∅]
	// insert: true
	// good insert: true
}
