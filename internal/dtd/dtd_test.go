package dtd

import (
	"strings"
	"testing"

	"xivm/internal/xmltree"
)

// d1 is the paper's Figure 5(a): mandatory edges.
const d1Src = `
d1 -> AS
AS -> a+
a -> BS
BS -> b+
b -> c
c -> ε
`

// d2 is Figure 5(b): concatenation, disjunction and recursion.
const d2Src = `
d2 -> (a, b, c)+
a -> BS
BS -> x | ε
x -> x | ε
b -> ε
c -> ε
`

func mustDoc(t *testing.T, s string) *xmltree.Document {
	t.Helper()
	d, err := xmltree.ParseString(s)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func forest(t *testing.T, s string) []*xmltree.Node {
	t.Helper()
	f, err := xmltree.ParseForest(s)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"a b c",                  // missing ->
		"a -> (b",                // missing )
		" -> b",                  // empty lhs
		"X -> Y\nY -> X\na -> X", // recursive non-terminals
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestValidateD1(t *testing.T) {
	g := MustParse(d1Src)
	good := mustDoc(t, `<d1><a><b><c/></b><b><c/></b></a></d1>`)
	if err := g.ValidateDocument(good); err != nil {
		t.Fatalf("valid doc rejected: %v", err)
	}
	bad := mustDoc(t, `<d1><a><b/></a></d1>`) // b without c
	if err := g.ValidateDocument(bad); err == nil {
		t.Fatal("b without c accepted")
	}
	noA := mustDoc(t, `<d1/>`)
	if err := g.ValidateDocument(noA); err == nil {
		t.Fatal("empty d1 accepted (a+ requires one a)")
	}
}

func TestValidateD2(t *testing.T) {
	g := MustParse(d2Src)
	good := mustDoc(t, `<d2><a><x><x/></x></a><b/><c/><a/><b/><c/></d2>`)
	if err := g.ValidateDocument(good); err != nil {
		t.Fatalf("valid doc rejected: %v", err)
	}
	bad := mustDoc(t, `<d2><a/><b/></d2>`) // incomplete (a,b,c) group
	if err := g.ValidateDocument(bad); err == nil {
		t.Fatal("incomplete group accepted")
	}
	wrongRoot := mustDoc(t, `<other/>`)
	if err := g.ValidateDocument(wrongRoot); err == nil {
		t.Fatal("wrong root accepted")
	}
}

// TestExample39 rejects the insertion of <a><b/></a> under d1 (a c element
// is missing under b).
func TestExample39(t *testing.T) {
	g := MustParse(d1Src)
	doc := mustDoc(t, `<d1><a><b><c/></b></a></d1>`)
	f := forest(t, `<a><b></b></a>`)
	if err := g.CheckInsert(doc.Root, f); err == nil {
		t.Fatal("schema-violating insertion accepted")
	}
	okF := forest(t, `<a><b><c/></b></a>`)
	if err := g.CheckInsert(doc.Root, okF); err != nil {
		t.Fatalf("valid insertion rejected: %v", err)
	}
}

// TestExample39Constraints: d1 implies ∆b ≠ ∅ ⇒ ∆c ≠ ∅ (the paper states
// the contrapositive ∆c = ∅ ⇒ ∆b = ∅).
func TestExample39Constraints(t *testing.T) {
	g := MustParse(d1Src)
	cs := g.Constraints()
	found := false
	for _, c := range cs {
		if c.If == "b" && c.Requires == "c" {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing b⇒c constraint in %v", cs)
	}
	bad := g.CheckDeltaConstraints(DeltaSizes(forest(t, `<a><b/></a>`)))
	if len(bad) == 0 {
		t.Fatal("∆ check missed the violation")
	}
	ok := g.CheckDeltaConstraints(DeltaSizes(forest(t, `<a><b><c/></b></a>`)))
	if len(ok) != 0 {
		t.Fatalf("false violations: %v", ok)
	}
}

// TestExample310Constraints: d2 implies ∆d2 requires a, b and c (inserting
// a whole d2 group needs all three); and the group constraint shows up when
// validating an insertion of a lone a under d2.
func TestExample310Constraints(t *testing.T) {
	g := MustParse(d2Src)
	reqs := map[string]bool{}
	for _, c := range g.Constraints() {
		if c.If == "d2" {
			reqs[c.Requires] = true
		}
	}
	if !reqs["a"] || !reqs["b"] || !reqs["c"] {
		t.Fatalf("d2 constraints incomplete: %v", g.Constraints())
	}
	// Context check: inserting a lone <a/> under d2 breaks (a,b,c)+.
	doc := mustDoc(t, `<d2><a/><b/><c/></d2>`)
	if err := g.CheckInsert(doc.Root, forest(t, `<a/>`)); err == nil {
		t.Fatal("lone a insertion accepted")
	}
	if err := g.CheckInsert(doc.Root, forest(t, `<a/><b/><c/>`)); err != nil {
		t.Fatalf("full group rejected: %v", err)
	}
}

func TestTextContent(t *testing.T) {
	g := MustParse(`
catalog -> product+
product -> name, price
name -> #text
price -> #text
`)
	doc := mustDoc(t, `<catalog><product><name>Clock</name><price>10</price></product></catalog>`)
	if err := g.ValidateDocument(doc); err != nil {
		t.Fatalf("text content rejected: %v", err)
	}
	bad := mustDoc(t, `<catalog><product><name><sub/></name><price>10</price></product></catalog>`)
	if err := g.ValidateDocument(bad); err == nil {
		t.Fatal("element child in text-only element accepted")
	}
}

func TestOptionalAndStar(t *testing.T) {
	g := MustParse(`
r -> a?, b*, c
a -> ε
b -> ε
c -> ε
`)
	for _, good := range []string{`<r><c/></r>`, `<r><a/><c/></r>`, `<r><b/><b/><c/></r>`, `<r><a/><b/><c/></r>`} {
		if err := g.ValidateDocument(mustDoc(t, good)); err != nil {
			t.Errorf("%s rejected: %v", good, err)
		}
	}
	for _, bad := range []string{`<r/>`, `<r><a/><a/><c/></r>`, `<r><c/><a/></r>`} {
		if err := g.ValidateDocument(mustDoc(t, bad)); err == nil {
			t.Errorf("%s accepted", bad)
		}
	}
}

func TestUnknownElement(t *testing.T) {
	g := MustParse(`r -> a*` + "\n" + `a -> ε`)
	if err := g.ValidateDocument(mustDoc(t, `<r><zzz/></r>`)); err == nil {
		t.Fatal("unknown element accepted")
	}
}

func TestElementRecursionAllowed(t *testing.T) {
	g := MustParse(d2Src)
	deep := mustDoc(t, `<d2><a><x><x><x/></x></x></a><b/><c/></d2>`)
	if err := g.ValidateDocument(deep); err != nil {
		t.Fatalf("recursive element content rejected: %v", err)
	}
}

func TestConstraintString(t *testing.T) {
	c := Constraint{If: "b", Requires: "c"}
	if !strings.Contains(c.String(), "∆b") {
		t.Fatalf("String = %q", c)
	}
}
