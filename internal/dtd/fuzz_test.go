package dtd

import "testing"

// FuzzParse hardens the grammar parser; accepted grammars must answer
// constraint derivation without panicking.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"r -> a+\na -> b | c\nb -> ε\nc -> #text",
		"d2 -> (a, b, c)+\na -> BS\nBS -> x | ε\nx -> x | ε\nb -> ε\nc -> ε",
		"r -> (a?, b*)+",
		"a b c", "X -> Y\nY -> X", "r -> (a",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		g, err := Parse(src)
		if err != nil {
			return
		}
		_ = g.Constraints()
		for _, l := range g.ElementLabels() {
			_ = g.PossibleChildren(l)
		}
	})
}
