package dtd

import (
	"fmt"
	"sort"

	"xivm/internal/xmltree"
)

// matchSeq reports whether the label sequence matches the (expanded)
// regular expression, via position-set simulation.
func matchSeq(r *re, seq []string) bool {
	end := advance(r, seq, map[int]bool{0: true})
	return end[len(seq)]
}

// advance maps a set of start positions to the set of positions reachable
// after consuming r.
func advance(r *re, seq []string, starts map[int]bool) map[int]bool {
	out := map[int]bool{}
	switch r.kind {
	case reEmpty, reText:
		for i := range starts {
			out[i] = true
		}
	case reSym:
		for i := range starts {
			if i < len(seq) && seq[i] == r.sym {
				out[i+1] = true
			}
		}
	case reCat:
		cur := starts
		for _, s := range r.subs {
			cur = advance(s, seq, cur)
			if len(cur) == 0 {
				return cur
			}
		}
		return cur
	case reAlt:
		for _, s := range r.subs {
			for i := range advance(s, seq, starts) {
				out[i] = true
			}
		}
	case reOpt:
		for i := range starts {
			out[i] = true
		}
		for i := range advance(r.subs[0], seq, starts) {
			out[i] = true
		}
	case reStar, rePlus:
		cur := map[int]bool{}
		if r.kind == reStar {
			for i := range starts {
				cur[i] = true
			}
		}
		// One mandatory pass for +, then iterate to fixpoint.
		frontier := starts
		for {
			next := advance(r.subs[0], seq, frontier)
			grew := false
			for i := range next {
				if !cur[i] {
					cur[i] = true
					grew = true
				}
			}
			if !grew {
				break
			}
			frontier = next
		}
		return cur
	}
	return out
}

// textOnly reports whether the content model forbids element children but
// allows text (contains a #text leaf and no symbol reachable without it).
func textOnly(r *re) bool {
	has := false
	walkRe(r, func(x *re) {
		if x.kind == reText {
			has = true
		}
	})
	return has
}

// childLabels extracts the element-children label sequence of a node.
func childLabels(n *xmltree.Node) []string {
	var out []string
	for _, c := range n.Children {
		if c.Kind == xmltree.Element {
			out = append(out, c.Label)
		}
	}
	return out
}

// ValidateTree checks the subtree rooted at n against the grammar. Elements
// without a rule are rejected.
func (d *DTD) ValidateTree(n *xmltree.Node) error {
	if n.Kind != xmltree.Element {
		return nil
	}
	model := d.content(n.Label)
	if model == nil {
		return fmt.Errorf("dtd: no rule for element %q", n.Label)
	}
	seq := childLabels(n)
	if !matchSeq(model, seq) {
		return fmt.Errorf("dtd: children %v of %q do not match its content model", seq, n.Label)
	}
	if textOnly(model) && len(seq) > 0 {
		return fmt.Errorf("dtd: text-only element %q has element children", n.Label)
	}
	for _, c := range n.Children {
		if err := d.ValidateTree(c); err != nil {
			return err
		}
	}
	return nil
}

// ValidateDocument checks the whole document, including the root label.
func (d *DTD) ValidateDocument(doc *xmltree.Document) error {
	if doc.Root.Label != d.Root && !d.rootProduces(doc.Root.Label) {
		return fmt.Errorf("dtd: root %q does not match grammar root %q", doc.Root.Label, d.Root)
	}
	return d.ValidateTree(doc.Root)
}

// rootProduces reports whether the grammar's root symbol is a non-terminal
// producing the given element label (as in Figure 5, where d1 → AS makes
// d1 the document element and AS its content).
func (d *DTD) rootProduces(label string) bool {
	return label == d.Root
}

// CheckInsert decides whether inserting the forest as new last children of
// target could violate the schema: each inserted tree must be valid, and
// the target's extended child sequence must still match its content model.
func (d *DTD) CheckInsert(target *xmltree.Node, forest []*xmltree.Node) error {
	for _, t := range forest {
		if err := d.ValidateTree(t); err != nil {
			return fmt.Errorf("dtd: inserted tree invalid: %w", err)
		}
	}
	model := d.content(target.Label)
	if model == nil {
		return fmt.Errorf("dtd: no rule for insertion target %q", target.Label)
	}
	seq := childLabels(target)
	for _, t := range forest {
		if t.Kind == xmltree.Element {
			seq = append(seq, t.Label)
		}
	}
	if !matchSeq(model, seq) {
		return fmt.Errorf("dtd: inserting under %q yields children %v, violating its content model",
			target.Label, seq)
	}
	return nil
}

// Constraint is one ∆+ co-occurrence implication derived from the grammar:
// if the update inserts an If-labeled node, it must also insert a
// Requires-labeled node (inside the same forest), since every valid If
// subtree contains one — Examples 3.9/3.10's "∆c = ∅ ⇒ ∆b = ∅",
// contrapositive form.
type Constraint struct {
	If       string
	Requires string
}

func (c Constraint) String() string {
	return fmt.Sprintf("∆%s ≠ ∅ ⇒ ∆%s ≠ ∅", c.If, c.Requires)
}

// Constraints derives all mandatory-descendant implications.
func (d *DTD) Constraints() []Constraint {
	var out []Constraint
	for _, l := range d.ElementLabels() {
		for req := range d.mandatoryDesc(l, map[string]bool{}) {
			out = append(out, Constraint{If: l, Requires: req})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].If != out[j].If {
			return out[i].If < out[j].If
		}
		return out[i].Requires < out[j].Requires
	})
	return out
}

// mandatoryDesc returns the labels that appear in every valid tree rooted
// at l (excluding l itself). Element-level recursion is cut by the visited
// set (a label forced to contain itself would admit no finite tree; we
// simply stop expanding there).
func (d *DTD) mandatoryDesc(l string, visiting map[string]bool) map[string]bool {
	out := map[string]bool{}
	if visiting[l] {
		return out
	}
	visiting[l] = true
	defer delete(visiting, l)
	model := d.content(l)
	if model == nil {
		return out
	}
	for m := range mandatorySyms(model) {
		out[m] = true
		for mm := range d.mandatoryDesc(m, visiting) {
			out[mm] = true
		}
	}
	return out
}

// mandatorySyms returns the symbols occurring in every word of the regex
// language.
func mandatorySyms(r *re) map[string]bool {
	switch r.kind {
	case reSym:
		return map[string]bool{r.sym: true}
	case reCat:
		out := map[string]bool{}
		for _, s := range r.subs {
			for m := range mandatorySyms(s) {
				out[m] = true
			}
		}
		return out
	case reAlt:
		out := mandatorySyms(r.subs[0])
		for _, s := range r.subs[1:] {
			next := mandatorySyms(s)
			for m := range out {
				if !next[m] {
					delete(out, m)
				}
			}
		}
		return out
	case rePlus:
		return mandatorySyms(r.subs[0])
	}
	return map[string]bool{}
}

// CheckDeltaConstraints applies the derived constraints to the label
// multiset of an insertion forest (the sizes of the would-be ∆+ tables),
// returning the violated constraints — the fast pre-check of Section 3.3.
func (d *DTD) CheckDeltaConstraints(deltaSizes map[string]int) []Constraint {
	var bad []Constraint
	for _, c := range d.Constraints() {
		if deltaSizes[c.If] > 0 && deltaSizes[c.Requires] == 0 {
			bad = append(bad, c)
		}
	}
	return bad
}

// DeltaSizes counts labels per inserted forest, for CheckDeltaConstraints.
func DeltaSizes(forest []*xmltree.Node) map[string]int {
	out := map[string]int{}
	for _, t := range forest {
		xmltree.Walk(t, func(n *xmltree.Node) bool {
			if n.Kind == xmltree.Element {
				out[n.Label]++
			}
			return true
		})
	}
	return out
}
