// Package rewrite answers tree-pattern queries from materialized views —
// the reason the paper's views store structural IDs in the first place:
// "storing IDs in views enables combining several views in order to answer
// a query". Three sound and exact (derivation-count-preserving) strategies
// are implemented over ID-complete views (views storing the ID of every
// pattern node):
//
//   - single-view rewriting: the query is answered from one view whose
//     pattern matches it node-for-node, with residual parent-child and
//     value predicates applied directly on the stored IDs/values;
//   - two-view stitching: the query is split at a node, its upper part
//     answered by one view and the subtree below the split by another,
//     joined on the split node's ID;
//   - k-view intersection (after Cautis et al., "Rewriting XPath Queries
//     using View Intersections"): a query whose root has k ≥ 2 children is
//     decomposed into one piece per root subtree, each piece answered by
//     its own view, all pieces hash-joined on the shared root ID.
//
// When several plans apply, the cheapest by view cardinality wins: a
// rewrite scans whole views, so cost is the total number of rows read.
//
// Answer never consults the base document; everything comes from view rows.
package rewrite

import (
	"fmt"
	"strings"

	"xivm/internal/algebra"
	"xivm/internal/pattern"
)

// RowSource is the row access a rewrite needs: a full scan plus a
// cardinality for plan costing. *store.View implements it directly;
// RowSlice adapts plain row slices such as core.ViewSnapshot.Rows.
type RowSource interface {
	Each(f func(algebra.Row) bool)
	Len() int
}

// RowSlice adapts a materialized row slice to a RowSource.
type RowSlice []algebra.Row

func (s RowSlice) Each(f func(algebra.Row) bool) {
	for i := range s {
		if !f(s[i]) {
			return
		}
	}
}

func (s RowSlice) Len() int { return len(s) }

// View couples a pattern with its materialized rows (the shape
// core.ManagedView exposes; accepted structurally to avoid a dependency).
type View struct {
	Name    string
	Pattern *pattern.Pattern
	Rows    RowSource
}

// Plan describes how a query was answered.
type Plan struct {
	Kind  string // "single", "stitch" or "intersect"
	Views []string
	// SplitNode is the query node index the stitch joined on (stitch only).
	SplitNode int
	// Cost is the total number of view rows the plan scans.
	Cost int
}

func (p *Plan) Explain() string {
	switch p.Kind {
	case "single":
		return fmt.Sprintf("single-view rewrite over %s", p.Views[0])
	case "intersect":
		return fmt.Sprintf("intersection of %s on the query root", strings.Join(p.Views, ", "))
	default:
		return fmt.Sprintf("stitch of %s and %s on query node %d", p.Views[0], p.Views[1], p.SplitNode)
	}
}

// Answer computes the query's rows (projected onto its stored nodes, with
// exact derivation counts) from the given views, or reports that no
// rewriting exists. Among applicable plans the cheapest by scanned view
// cardinality is chosen; a matching single view always beats multi-view
// plans (it scans one relation and needs no join).
func Answer(q *pattern.Pattern, views []*View) ([]algebra.Row, *Plan, error) {
	if v := bestSingle(q, views); v != nil {
		rows, _ := answerSingle(q, v)
		return rows, &Plan{Kind: "single", Views: []string{v.Name}, Cost: v.Rows.Len()}, nil
	}
	st := planStitch(q, views)
	in := planIntersect(q, views)
	if st != nil && (in == nil || st.cost <= in.cost) {
		topQ, topMap, botQ, botMap := split(q, st.c)
		topRows, _ := answerSingleMapped(topQ, st.top)
		botRows, _ := answerSingleMapped(botQ, st.bot)
		rows := stitch(q, st.c, topQ, topMap, topRows, botQ, botMap, botRows)
		return rows, &Plan{
			Kind:      "stitch",
			Views:     []string{st.top.Name, st.bot.Name},
			SplitNode: st.c,
			Cost:      st.cost,
		}, nil
	}
	if in != nil {
		rows := answerIntersect(q, in)
		names := make([]string, len(in.views))
		for i, v := range in.views {
			names[i] = v.Name
		}
		return rows, &Plan{Kind: "intersect", Views: names, Cost: in.cost}, nil
	}
	return nil, nil, fmt.Errorf("rewrite: no view combination answers %s", q)
}

// bestSingle returns the lowest-cardinality view matching q alone, or nil.
func bestSingle(q *pattern.Pattern, views []*View) *View {
	var best *View
	for _, v := range views {
		if !idComplete(v) {
			continue
		}
		if _, ok := matchPatterns(q, v.Pattern); !ok {
			continue
		}
		if best == nil || v.Rows.Len() < best.Rows.Len() {
			best = v
		}
	}
	return best
}

// stitchPlan is a costed split-point choice: query node c with the
// cheapest matching view for each half.
type stitchPlan struct {
	c        int
	top, bot *View
	cost     int
}

func planStitch(q *pattern.Pattern, views []*View) *stitchPlan {
	var best *stitchPlan
	for c := 1; c < q.Size(); c++ {
		topQ, _, botQ, _ := split(q, c)
		top := bestSingle(topQ, views)
		if top == nil {
			continue
		}
		bot := bestSingle(botQ, views)
		if bot == nil {
			continue
		}
		cost := top.Rows.Len() + bot.Rows.Len()
		if best == nil || cost < best.cost {
			best = &stitchPlan{c: c, top: top, bot: bot, cost: cost}
		}
	}
	return best
}

// intersectPlan decomposes q at its root into one piece per root subtree,
// with the cheapest matching view per piece.
type intersectPlan struct {
	pieces []*pattern.Pattern
	maps   [][]int // piece node index -> query node index (index 0 = root)
	views  []*View
	cost   int
}

// planIntersect builds the root-pivot decomposition: each piece keeps the
// query root (with its store/predicate annotations, so every piece's view
// must cover them) plus one child subtree. Applicable only when the root
// has at least two children — with one child the decomposition degenerates
// to the query itself.
func planIntersect(q *pattern.Pattern, views []*View) *intersectPlan {
	if len(q.Root.Children) < 2 {
		return nil
	}
	ip := &intersectPlan{}
	for _, ch := range q.Root.Children {
		mask := uint64(1) << uint(q.Root.Index)
		for j := 0; j < q.Size(); j++ {
			if j == ch.Index || q.IsAncestor(ch.Index, j) {
				mask |= 1 << uint(j)
			}
		}
		sub, orig := q.SubPattern(mask)
		v := bestSingle(sub, views)
		if v == nil {
			return nil
		}
		ip.pieces = append(ip.pieces, sub)
		ip.maps = append(ip.maps, orig)
		ip.views = append(ip.views, v)
		ip.cost += v.Rows.Len()
	}
	return ip
}

// answerIntersect evaluates each piece against its view and hash-joins the
// pieces on the shared root ID. Fixing a root node, the embeddings of q
// are exactly the cross product of the pieces' embeddings (the pieces
// partition the non-root query nodes), so counts multiply — the same
// argument that makes the two-view stitch exact.
func answerIntersect(q *pattern.Pattern, ip *intersectPlan) []algebra.Row {
	var acc []algebra.Row // full-width over q
	for i := range ip.pieces {
		rows, _ := answerSingleMapped(ip.pieces[i], ip.views[i])
		if i == 0 {
			for _, r := range rows {
				entries := make([]algebra.RowEntry, q.Size())
				for j, orig := range ip.maps[0] {
					e := r.Entries[j]
					e.NodeIdx = orig
					entries[orig] = e
				}
				acc = append(acc, algebra.Row{Entries: entries, Count: r.Count})
			}
			continue
		}
		byRoot := map[string][]algebra.Row{}
		for _, r := range rows {
			k := r.Entries[0].ID.Key()
			byRoot[k] = append(byRoot[k], r)
		}
		var next []algebra.Row
		for _, a := range acc {
			for _, r := range byRoot[a.Entries[q.Root.Index].ID.Key()] {
				entries := make([]algebra.RowEntry, q.Size())
				copy(entries, a.Entries)
				for j, orig := range ip.maps[i] {
					if orig == q.Root.Index {
						continue // shared root, already placed
					}
					e := r.Entries[j]
					e.NodeIdx = orig
					entries[orig] = e
				}
				next = append(next, algebra.Row{Entries: entries, Count: a.Count * r.Count})
			}
		}
		acc = next
		if len(acc) == 0 {
			break
		}
	}
	return projectRows(q, acc)
}

// idComplete reports whether every node of the view stores its ID — the
// prerequisite for exact-count answering.
func idComplete(v *View) bool {
	for _, n := range v.Pattern.Nodes {
		if !n.Store.Has(pattern.StoreID) {
			return false
		}
	}
	return true
}

// mapping is a bijection query-node-index → view-node-index plus the
// residual checks to run on each view row.
type mapping struct {
	qToV []int
	// parentChecks: pairs (qChild) whose / edge mapped onto a // view edge
	// and must be re-verified on IDs.
	parentChecks []int
	// valChecks: query predicates absent on the view node, checked against
	// the stored val.
	valChecks []valCheck
}

type valCheck struct {
	qIdx int
	val  string
}

// matchPatterns finds a structure-preserving bijection from q onto v:
// equal labels; q's / edges map onto v edges that are / (exact) or //
// (re-checked on IDs); q's // edges require v // edges; view predicates
// must appear on the query (or the view filters too much); query predicates
// missing on the view are post-checked against stored values; everything
// the query stores beyond the ID must also be stored by the view — a view
// row can only supply a val/cont it kept, and projecting an absent one
// would silently return empty strings with correct counts (the bug class a
// count-only oracle cannot see).
func matchPatterns(q, v *pattern.Pattern) (*mapping, bool) {
	if q.Size() != v.Size() {
		return nil, false
	}
	m := &mapping{qToV: make([]int, q.Size())}
	var match func(qn, vn *pattern.Node, root bool) bool
	match = func(qn, vn *pattern.Node, root bool) bool {
		if qn.Label != vn.Label {
			return false
		}
		if qn.Store.Has(pattern.StoreVal) && !vn.Store.Has(pattern.StoreVal) {
			return false // the view never kept this node's value
		}
		if qn.Store.Has(pattern.StoreCont) && !vn.Store.Has(pattern.StoreCont) {
			return false // nor its content
		}
		if !root {
			switch {
			case qn.Desc && !vn.Desc:
				// Query wants any descendant; the view only holds children.
				return false
			case !qn.Desc && vn.Desc:
				m.parentChecks = append(m.parentChecks, qn.Index)
			}
		} else if !qn.Desc && vn.Desc {
			// Root anchoring: query wants the document root only.
			m.parentChecks = append(m.parentChecks, qn.Index) // level check
		} else if qn.Desc && !vn.Desc {
			return false
		}
		// Predicates.
		switch {
		case vn.HasPred && (!qn.HasPred || qn.PredVal != vn.PredVal):
			return false // the view filters rows the query wants
		case qn.HasPred && !vn.HasPred:
			if !vn.Store.Has(pattern.StoreVal) {
				return false // cannot re-check without the stored value
			}
			m.valChecks = append(m.valChecks, valCheck{qIdx: qn.Index, val: qn.PredVal})
		}
		if len(qn.Children) != len(vn.Children) {
			return false
		}
		// Children must match in order (patterns are ordered trees here; a
		// permutation search would also be sound but is rarely needed).
		for i := range qn.Children {
			if !match(qn.Children[i], vn.Children[i], false) {
				return false
			}
		}
		m.qToV[qn.Index] = vn.Index
		return true
	}
	if !match(q.Root, v.Root, true) {
		return nil, false
	}
	return m, true
}

// answerSingle answers q fully from one view.
func answerSingle(q *pattern.Pattern, v *View) ([]algebra.Row, bool) {
	rows, ok := answerSingleMapped(q, v)
	if !ok {
		return nil, false
	}
	return projectRows(q, rows), true
}

// answerSingleMapped returns full-width (per query node) entries for every
// view row passing the residual checks, without projecting.
func answerSingleMapped(q *pattern.Pattern, v *View) ([]algebra.Row, bool) {
	if !idComplete(v) {
		return nil, false
	}
	m, ok := matchPatterns(q, v.Pattern)
	if !ok {
		return nil, false
	}
	// Column of each view node in its stored rows (stored = all nodes).
	vCol := make([]int, v.Pattern.Size())
	for i, idx := range v.Pattern.StoredIndexes() {
		vCol[idx] = i
	}
	var out []algebra.Row
	v.Rows.Each(func(r algebra.Row) bool {
		// Residual structural checks.
		for _, qIdx := range m.parentChecks {
			child := r.Entries[vCol[m.qToV[qIdx]]].ID
			if pi := q.ParentIndex(qIdx); pi >= 0 {
				parent := r.Entries[vCol[m.qToV[pi]]].ID
				if !parent.IsParentOf(child) {
					return true
				}
			} else if child.Level() != 1 {
				return true // root anchoring failed
			}
		}
		for _, vc := range m.valChecks {
			if r.Entries[vCol[m.qToV[vc.qIdx]]].Val != vc.val {
				return true
			}
		}
		// Reorder entries into query-node order.
		entries := make([]algebra.RowEntry, q.Size())
		for qi := 0; qi < q.Size(); qi++ {
			e := r.Entries[vCol[m.qToV[qi]]]
			e.NodeIdx = qi
			entries[qi] = e
		}
		out = append(out, algebra.Row{Entries: entries, Count: r.Count})
		return true
	})
	return out, true
}

// split cuts q at node c: the top pattern keeps everything except c's
// proper descendants (c becomes a leaf), the bottom pattern is c's subtree
// re-rooted at c (with a descendant-anchored root, since the stitch joins
// on exact IDs anyway). Both come with their query-index maps.
func split(q *pattern.Pattern, c int) (topQ *pattern.Pattern, topMap []int, botQ *pattern.Pattern, botMap []int) {
	full := q.FullMask()
	var descMask uint64
	for j := 0; j < q.Size(); j++ {
		if q.IsAncestor(c, j) {
			descMask |= 1 << uint(j)
		}
	}
	topMask := full &^ descMask
	topQ, topMap = q.SubPattern(topMask)
	// Bottom: clone the subtree rooted at c.
	var cloneFrom func(n *pattern.Node) *pattern.Node
	cloneFrom = func(n *pattern.Node) *pattern.Node {
		cp := &pattern.Node{Label: n.Label, Desc: true, Store: n.Store, HasPred: n.HasPred, PredVal: n.PredVal}
		if n.Index != c {
			cp.Desc = n.Desc
		}
		for _, ch := range n.Children {
			cp.Children = append(cp.Children, cloneFrom(ch))
		}
		return cp
	}
	botRoot := cloneFrom(q.Nodes[c])
	botQ = pattern.MustNew(botRoot)
	for j := c; j < q.Size(); j++ {
		if j == c || q.IsAncestor(c, j) {
			botMap = append(botMap, j)
		}
	}
	return topQ, topMap, botQ, botMap
}

// stitch joins the top rows (full-width over topQ) with the bottom rows
// (full-width over botQ) on the split node's ID, producing full-width rows
// over q, then projects.
func stitch(q *pattern.Pattern, c int, topQ *pattern.Pattern, topMap []int, topRows []algebra.Row,
	botQ *pattern.Pattern, botMap []int, botRows []algebra.Row) []algebra.Row {
	// Position of c in each part.
	topC, botC := -1, 0
	for i, orig := range topMap {
		if orig == c {
			topC = i
		}
	}
	byID := map[string][]algebra.Row{}
	for _, r := range botRows {
		byID[r.Entries[botC].ID.Key()] = append(byID[r.Entries[botC].ID.Key()], r)
	}
	var joined []algebra.Row
	for _, tr := range topRows {
		key := tr.Entries[topC].ID.Key()
		for _, br := range byID[key] {
			entries := make([]algebra.RowEntry, q.Size())
			for i, orig := range topMap {
				e := tr.Entries[i]
				e.NodeIdx = orig
				entries[orig] = e
			}
			for i, orig := range botMap {
				e := br.Entries[i]
				e.NodeIdx = orig
				entries[orig] = e
			}
			joined = append(joined, algebra.Row{Entries: entries, Count: tr.Count * br.Count})
		}
	}
	return projectRows(q, joined)
}

// projectRows projects full-width rows onto q's stored nodes, summing
// counts of collapsing rows, sorted in ID order.
func projectRows(q *pattern.Pattern, rows []algebra.Row) []algebra.Row {
	stored := q.StoredIndexes()
	byKey := map[string]int{}
	var out []algebra.Row
	for _, r := range rows {
		pr := algebra.Row{Entries: make([]algebra.RowEntry, len(stored)), Count: r.Count}
		for i, idx := range stored {
			e := r.Entries[idx]
			pn := q.Nodes[idx]
			if !pn.Store.Has(pattern.StoreVal) {
				e.Val = ""
			}
			if !pn.Store.Has(pattern.StoreCont) {
				e.Cont = ""
			}
			pr.Entries[i] = e
		}
		k := pr.Key()
		if at, ok := byKey[k]; ok {
			out[at].Count += pr.Count
		} else {
			byKey[k] = len(out)
			out = append(out, pr)
		}
	}
	algebra.SortRows(out)
	return out
}
