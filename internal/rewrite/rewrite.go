// Package rewrite answers tree-pattern queries from materialized views —
// the reason the paper's views store structural IDs in the first place:
// "storing IDs in views enables combining several views in order to answer
// a query". Two sound and exact (derivation-count-preserving) strategies
// are implemented over ID-complete views (views storing the ID of every
// pattern node):
//
//   - single-view rewriting: the query is answered from one view whose
//     pattern matches it node-for-node, with residual parent-child and
//     value predicates applied directly on the stored IDs/values;
//   - two-view stitching: the query is split at a node, its upper part
//     answered by one view and the subtree below the split by another,
//     joined on the split node's ID.
//
// Answer never consults the base document; everything comes from view rows.
package rewrite

import (
	"fmt"

	"xivm/internal/algebra"
	"xivm/internal/pattern"
	"xivm/internal/store"
)

// View couples a pattern with its materialized rows (the shape
// core.ManagedView exposes; accepted structurally to avoid a dependency).
type View struct {
	Name    string
	Pattern *pattern.Pattern
	Rows    *store.View
}

// Plan describes how a query was answered.
type Plan struct {
	Kind  string // "single" or "stitch"
	Views []string
	// SplitNode is the query node index the stitch joined on (stitch only).
	SplitNode int
}

func (p *Plan) Explain() string {
	if p.Kind == "single" {
		return fmt.Sprintf("single-view rewrite over %s", p.Views[0])
	}
	return fmt.Sprintf("stitch of %s and %s on query node %d", p.Views[0], p.Views[1], p.SplitNode)
}

// Answer computes the query's rows (projected onto its stored nodes, with
// exact derivation counts) from the given views, or reports that no
// rewriting exists.
func Answer(q *pattern.Pattern, views []*View) ([]algebra.Row, *Plan, error) {
	for _, v := range views {
		if rows, ok := answerSingle(q, v); ok {
			return rows, &Plan{Kind: "single", Views: []string{v.Name}}, nil
		}
	}
	// Try every split node and every view pair.
	for c := 1; c < q.Size(); c++ {
		topQ, topMap, botQ, botMap := split(q, c)
		for _, vTop := range views {
			topRows, ok := answerSingleMapped(topQ, vTop)
			if !ok {
				continue
			}
			for _, vBot := range views {
				botRows, ok := answerSingleMapped(botQ, vBot)
				if !ok {
					continue
				}
				rows := stitch(q, c, topQ, topMap, topRows, botQ, botMap, botRows)
				return rows, &Plan{
					Kind:      "stitch",
					Views:     []string{vTop.Name, vBot.Name},
					SplitNode: c,
				}, nil
			}
		}
	}
	return nil, nil, fmt.Errorf("rewrite: no view combination answers %s", q)
}

// idComplete reports whether every node of the view stores its ID — the
// prerequisite for exact-count answering.
func idComplete(v *View) bool {
	for _, n := range v.Pattern.Nodes {
		if !n.Store.Has(pattern.StoreID) {
			return false
		}
	}
	return true
}

// mapping is a bijection query-node-index → view-node-index plus the
// residual checks to run on each view row.
type mapping struct {
	qToV []int
	// parentChecks: pairs (qChild) whose / edge mapped onto a // view edge
	// and must be re-verified on IDs.
	parentChecks []int
	// valChecks: query predicates absent on the view node, checked against
	// the stored val.
	valChecks []valCheck
}

type valCheck struct {
	qIdx int
	val  string
}

// matchPatterns finds a structure-preserving bijection from q onto v:
// equal labels; q's / edges map onto v edges that are / (exact) or //
// (re-checked on IDs); q's // edges require v // edges; view predicates
// must appear on the query (or the view filters too much); query predicates
// missing on the view are post-checked against stored values.
func matchPatterns(q, v *pattern.Pattern) (*mapping, bool) {
	if q.Size() != v.Size() {
		return nil, false
	}
	m := &mapping{qToV: make([]int, q.Size())}
	var match func(qn, vn *pattern.Node, root bool) bool
	match = func(qn, vn *pattern.Node, root bool) bool {
		if qn.Label != vn.Label {
			return false
		}
		if !root {
			switch {
			case qn.Desc && !vn.Desc:
				// Query wants any descendant; the view only holds children.
				return false
			case !qn.Desc && vn.Desc:
				m.parentChecks = append(m.parentChecks, qn.Index)
			}
		} else if !qn.Desc && vn.Desc {
			// Root anchoring: query wants the document root only.
			m.parentChecks = append(m.parentChecks, qn.Index) // level check
		} else if qn.Desc && !vn.Desc {
			return false
		}
		// Predicates.
		switch {
		case vn.HasPred && (!qn.HasPred || qn.PredVal != vn.PredVal):
			return false // the view filters rows the query wants
		case qn.HasPred && !vn.HasPred:
			if !vn.Store.Has(pattern.StoreVal) {
				return false // cannot re-check without the stored value
			}
			m.valChecks = append(m.valChecks, valCheck{qIdx: qn.Index, val: qn.PredVal})
		}
		if len(qn.Children) != len(vn.Children) {
			return false
		}
		// Children must match in order (patterns are ordered trees here; a
		// permutation search would also be sound but is rarely needed).
		for i := range qn.Children {
			if !match(qn.Children[i], vn.Children[i], false) {
				return false
			}
		}
		m.qToV[qn.Index] = vn.Index
		return true
	}
	if !match(q.Root, v.Root, true) {
		return nil, false
	}
	return m, true
}

// answerSingle answers q fully from one view.
func answerSingle(q *pattern.Pattern, v *View) ([]algebra.Row, bool) {
	rows, ok := answerSingleMapped(q, v)
	if !ok {
		return nil, false
	}
	return projectRows(q, rows), true
}

// answerSingleMapped returns full-width (per query node) entries for every
// view row passing the residual checks, without projecting.
func answerSingleMapped(q *pattern.Pattern, v *View) ([]algebra.Row, bool) {
	if !idComplete(v) {
		return nil, false
	}
	m, ok := matchPatterns(q, v.Pattern)
	if !ok {
		return nil, false
	}
	// Column of each view node in its stored rows (stored = all nodes).
	vCol := make([]int, v.Pattern.Size())
	for i, idx := range v.Pattern.StoredIndexes() {
		vCol[idx] = i
	}
	var out []algebra.Row
	v.Rows.Each(func(r algebra.Row) bool {
		// Residual structural checks.
		for _, qIdx := range m.parentChecks {
			child := r.Entries[vCol[m.qToV[qIdx]]].ID
			if pi := q.ParentIndex(qIdx); pi >= 0 {
				parent := r.Entries[vCol[m.qToV[pi]]].ID
				if !parent.IsParentOf(child) {
					return true
				}
			} else if child.Level() != 1 {
				return true // root anchoring failed
			}
		}
		for _, vc := range m.valChecks {
			if r.Entries[vCol[m.qToV[vc.qIdx]]].Val != vc.val {
				return true
			}
		}
		// Reorder entries into query-node order.
		entries := make([]algebra.RowEntry, q.Size())
		for qi := 0; qi < q.Size(); qi++ {
			e := r.Entries[vCol[m.qToV[qi]]]
			e.NodeIdx = qi
			entries[qi] = e
		}
		out = append(out, algebra.Row{Entries: entries, Count: r.Count})
		return true
	})
	return out, true
}

// split cuts q at node c: the top pattern keeps everything except c's
// proper descendants (c becomes a leaf), the bottom pattern is c's subtree
// re-rooted at c (with a descendant-anchored root, since the stitch joins
// on exact IDs anyway). Both come with their query-index maps.
func split(q *pattern.Pattern, c int) (topQ *pattern.Pattern, topMap []int, botQ *pattern.Pattern, botMap []int) {
	full := q.FullMask()
	var descMask uint64
	for j := 0; j < q.Size(); j++ {
		if q.IsAncestor(c, j) {
			descMask |= 1 << uint(j)
		}
	}
	topMask := full &^ descMask
	topQ, topMap = q.SubPattern(topMask)
	// Bottom: clone the subtree rooted at c.
	var cloneFrom func(n *pattern.Node) *pattern.Node
	cloneFrom = func(n *pattern.Node) *pattern.Node {
		cp := &pattern.Node{Label: n.Label, Desc: true, Store: n.Store, HasPred: n.HasPred, PredVal: n.PredVal}
		if n.Index != c {
			cp.Desc = n.Desc
		}
		for _, ch := range n.Children {
			cp.Children = append(cp.Children, cloneFrom(ch))
		}
		return cp
	}
	botRoot := cloneFrom(q.Nodes[c])
	botQ = pattern.MustNew(botRoot)
	for j := c; j < q.Size(); j++ {
		if j == c || q.IsAncestor(c, j) {
			botMap = append(botMap, j)
		}
	}
	return topQ, topMap, botQ, botMap
}

// stitch joins the top rows (full-width over topQ) with the bottom rows
// (full-width over botQ) on the split node's ID, producing full-width rows
// over q, then projects.
func stitch(q *pattern.Pattern, c int, topQ *pattern.Pattern, topMap []int, topRows []algebra.Row,
	botQ *pattern.Pattern, botMap []int, botRows []algebra.Row) []algebra.Row {
	// Position of c in each part.
	topC, botC := -1, 0
	for i, orig := range topMap {
		if orig == c {
			topC = i
		}
	}
	byID := map[string][]algebra.Row{}
	for _, r := range botRows {
		byID[r.Entries[botC].ID.Key()] = append(byID[r.Entries[botC].ID.Key()], r)
	}
	var joined []algebra.Row
	for _, tr := range topRows {
		key := tr.Entries[topC].ID.Key()
		for _, br := range byID[key] {
			entries := make([]algebra.RowEntry, q.Size())
			for i, orig := range topMap {
				e := tr.Entries[i]
				e.NodeIdx = orig
				entries[orig] = e
			}
			for i, orig := range botMap {
				e := br.Entries[i]
				e.NodeIdx = orig
				entries[orig] = e
			}
			joined = append(joined, algebra.Row{Entries: entries, Count: tr.Count * br.Count})
		}
	}
	return projectRows(q, joined)
}

// projectRows projects full-width rows onto q's stored nodes, summing
// counts of collapsing rows, sorted in ID order.
func projectRows(q *pattern.Pattern, rows []algebra.Row) []algebra.Row {
	stored := q.StoredIndexes()
	byKey := map[string]int{}
	var out []algebra.Row
	for _, r := range rows {
		pr := algebra.Row{Entries: make([]algebra.RowEntry, len(stored)), Count: r.Count}
		for i, idx := range stored {
			e := r.Entries[idx]
			pn := q.Nodes[idx]
			if !pn.Store.Has(pattern.StoreVal) {
				e.Val = ""
			}
			if !pn.Store.Has(pattern.StoreCont) {
				e.Cont = ""
			}
			pr.Entries[i] = e
		}
		k := pr.Key()
		if at, ok := byKey[k]; ok {
			out[at].Count += pr.Count
		} else {
			byKey[k] = len(out)
			out = append(out, pr)
		}
	}
	algebra.SortRows(out)
	return out
}
