package rewrite_test

import (
	"fmt"
	"log"

	"xivm/internal/algebra"
	"xivm/internal/pattern"
	"xivm/internal/rewrite"
	"xivm/internal/store"
	"xivm/internal/xmltree"
)

// ExampleAnswer stitches two ID-complete views on a shared node to answer a
// longer query without touching the document.
func ExampleAnswer() {
	doc, _ := xmltree.ParseString(`<a><c><b/><b/></c><c><b/></c></a>`)
	mk := func(name, src string) *rewrite.View {
		p := pattern.MustParse(src)
		return &rewrite.View{Name: name, Pattern: p,
			Rows: store.NewMaterializedView(p, algebra.Materialize(doc, p))}
	}
	views := []*rewrite.View{mk("ac", `//a{ID}//c{ID}`), mk("cb", `//c{ID}//b{ID}`)}

	q := pattern.MustParse(`//a{ID}//c{ID}//b{ID}`)
	rows, plan, err := rewrite.Answer(q, views)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(plan.Explain())
	fmt.Println("rows:", len(rows))
	// Output:
	// stitch of ac and cb on query node 1
	// rows: 3
}
