package rewrite

import (
	"math/rand"
	"strings"
	"testing"

	"xivm/internal/algebra"
	"xivm/internal/pattern"
	"xivm/internal/store"
	"xivm/internal/xmltree"
)

func mustDoc(t *testing.T, s string) *xmltree.Document {
	t.Helper()
	d, err := xmltree.ParseString(s)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func mkView(t *testing.T, d *xmltree.Document, name, src string) *View {
	t.Helper()
	p := pattern.MustParse(src)
	rows := algebra.Materialize(d, p)
	return &View{Name: name, Pattern: p, Rows: store.NewMaterializedView(p, rows)}
}

func sameRows(a, b []algebra.Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Key() != b[i].Key() || a[i].Count != b[i].Count {
			return false
		}
		for j := range a[i].Entries {
			if a[i].Entries[j].Val != b[i].Entries[j].Val {
				return false
			}
		}
	}
	return true
}

const doc1 = `<a><c><b>5</b><b>7</b></c><f><c><b>5</b></c><b>9</b></f></a>`

func TestSingleViewExactMatch(t *testing.T) {
	d := mustDoc(t, doc1)
	v := mkView(t, d, "v", `//a{ID}//b{ID}`)
	q := pattern.MustParse(`//a{ID}//b{ID}`)
	rows, plan, err := Answer(q, []*View{v})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Kind != "single" {
		t.Fatalf("plan %v", plan.Explain())
	}
	if !sameRows(rows, algebra.Materialize(d, q)) {
		t.Fatal("rows differ from direct evaluation")
	}
}

func TestSingleViewChildFromDescendant(t *testing.T) {
	// Query wants parent-child; the view stores ancestor-descendant pairs
	// with IDs, so the residual ≺ check runs on the stored IDs.
	d := mustDoc(t, doc1)
	v := mkView(t, d, "v", `//c{ID}//b{ID}`)
	q := pattern.MustParse(`//c{ID}/b{ID}`)
	rows, _, err := Answer(q, []*View{v})
	if err != nil {
		t.Fatal(err)
	}
	if !sameRows(rows, algebra.Materialize(d, q)) {
		t.Fatal("child-axis residual filter wrong")
	}
	// The reverse (query // from view /) must be refused: the view misses
	// deeper pairs.
	vChild := mkView(t, d, "vc", `//c{ID}/b{ID}`)
	qDesc := pattern.MustParse(`//c{ID}//b{ID}`)
	if _, _, err := Answer(qDesc, []*View{vChild}); err == nil {
		t.Fatal("descendant query answered from child-only view")
	}
}

func TestSingleViewValuePostFilter(t *testing.T) {
	d := mustDoc(t, doc1)
	v := mkView(t, d, "v", `//c{ID}//b{ID,val}`)
	q := pattern.MustParse(`//c{ID}//b{ID,val}[val="5"]`)
	rows, _, err := Answer(q, []*View{v})
	if err != nil {
		t.Fatal(err)
	}
	if !sameRows(rows, algebra.Materialize(d, q)) {
		t.Fatal("value post-filter wrong")
	}
	// Without the stored val the predicate cannot be re-checked.
	vNoVal := mkView(t, d, "nv", `//c{ID}//b{ID}`)
	if _, _, err := Answer(q, []*View{vNoVal}); err == nil {
		t.Fatal("predicate query answered without stored values")
	}
}

func TestViewWithExtraPredicateRefused(t *testing.T) {
	d := mustDoc(t, doc1)
	v := mkView(t, d, "v", `//c{ID}//b{ID}[val="5"]`)
	q := pattern.MustParse(`//c{ID}//b{ID}`)
	if _, _, err := Answer(q, []*View{v}); err == nil {
		t.Fatal("view filtering more than the query was accepted")
	}
}

func TestStitchTwoViews(t *testing.T) {
	d := mustDoc(t, doc1)
	vTop := mkView(t, d, "top", `//a{ID}//c{ID}`)
	vBot := mkView(t, d, "bot", `//c{ID}//b{ID}`)
	q := pattern.MustParse(`//a{ID}//c{ID}//b{ID}`)
	rows, plan, err := Answer(q, []*View{vTop, vBot})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Kind != "stitch" || plan.SplitNode != 1 {
		t.Fatalf("plan %s", plan.Explain())
	}
	if !sameRows(rows, algebra.Materialize(d, q)) {
		t.Fatalf("stitched rows differ from direct evaluation")
	}
}

func TestStitchPreservesCounts(t *testing.T) {
	// Query projects only the a node: counts must aggregate embeddings.
	d := mustDoc(t, doc1)
	vTop := mkView(t, d, "top", `//a{ID}//c{ID}`)
	vBot := mkView(t, d, "bot", `//c{ID}//b{ID}`)
	q := pattern.MustParse(`//a{ID}[//c//b]`)
	// The rewrite needs stored IDs on all nodes of each view; the query
	// itself stores only a.
	rows, _, err := Answer(q, []*View{vTop, vBot})
	if err != nil {
		t.Fatal(err)
	}
	want := algebra.Materialize(d, q)
	if !sameRows(rows, want) {
		t.Fatalf("counts differ: got %+v want %+v", rows, want)
	}
}

func TestStoreCoverageRefused(t *testing.T) {
	// Regression: the query stores b's value but the view kept only IDs.
	// Before the coverage check in matchPatterns the rewrite returned rows
	// with empty values and correct counts — exactly the bug class a
	// count-only comparison cannot see.
	d := mustDoc(t, doc1)
	v := mkView(t, d, "ids", `//c{ID}//b{ID}`)
	q := pattern.MustParse(`//c{ID}//b{ID,val}`)
	if _, _, err := Answer(q, []*View{v}); err == nil {
		t.Fatal("view without stored values answered a val-storing query")
	}
	// With values stored the same query is answerable and content-correct.
	vv := mkView(t, d, "vals", `//c{ID}//b{ID,val}`)
	rows, _, err := Answer(q, []*View{vv})
	if err != nil {
		t.Fatal(err)
	}
	if !sameRows(rows, algebra.Materialize(d, q)) {
		t.Fatal("values differ from direct evaluation")
	}
	// Same for cont.
	qc := pattern.MustParse(`//c{ID}//b{ID,cont}`)
	if _, _, err := Answer(qc, []*View{vv}); err == nil {
		t.Fatal("view without stored content answered a cont-storing query")
	}
}

func TestIntersectTwoViews(t *testing.T) {
	// Root-pivot decomposition: neither single view nor any stitch split can
	// answer a branching query, but one view per root subtree joined on the
	// root ID can.
	d := mustDoc(t, doc1)
	vc := mkView(t, d, "ac", `//a{ID}//c{ID}`)
	vb := mkView(t, d, "ab", `//a{ID}//b{ID}`)
	q := pattern.MustParse(`//a{ID}[//c]//b{ID}`)
	rows, plan, err := Answer(q, []*View{vc, vb})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Kind != "intersect" || len(plan.Views) != 2 {
		t.Fatalf("plan %s", plan.Explain())
	}
	if !sameRows(rows, algebra.Materialize(d, q)) {
		t.Fatal("intersected rows differ from direct evaluation")
	}
}

func TestIntersectThreeViews(t *testing.T) {
	d := mustDoc(t, doc1)
	views := []*View{
		mkView(t, d, "ab", `//a{ID}//b{ID}`),
		mkView(t, d, "ac", `//a{ID}//c{ID}`),
		mkView(t, d, "af", `//a{ID}//f{ID}`),
	}
	q := pattern.MustParse(`//a{ID}[//b][//c]//f{ID}`)
	rows, plan, err := Answer(q, views)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Kind != "intersect" || len(plan.Views) != 3 {
		t.Fatalf("plan %s", plan.Explain())
	}
	if !sameRows(rows, algebra.Materialize(d, q)) {
		t.Fatal("3-way intersection differs from direct evaluation")
	}
}

func TestIntersectPreservesCounts(t *testing.T) {
	// Query projects only the root: each row's count must be the product of
	// the per-subtree embedding counts.
	d := mustDoc(t, doc1)
	views := []*View{
		mkView(t, d, "ab", `//a{ID}//b{ID}`),
		mkView(t, d, "ac", `//a{ID}//c{ID}`),
	}
	q := pattern.MustParse(`//a{ID}[//b][//c]`)
	rows, plan, err := Answer(q, views)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Kind != "intersect" {
		t.Fatalf("plan %s", plan.Explain())
	}
	want := algebra.Materialize(d, q)
	if !sameRows(rows, want) {
		t.Fatalf("counts differ: got %+v want %+v", rows, want)
	}
}

func TestPlanCostingPrefersSmallerView(t *testing.T) {
	// Two views answer the same query; the plan must scan the smaller one.
	d := mustDoc(t, `<a><c><x><b>1</b></x><b>2</b></c></a>`)
	big := mkView(t, d, "big", `//c{ID}//b{ID}`)  // 2 rows
	tiny := mkView(t, d, "tiny", `//c{ID}/b{ID}`) // 1 row
	if big.Rows.Len() <= tiny.Rows.Len() {
		t.Fatalf("fixture broken: big=%d tiny=%d", big.Rows.Len(), tiny.Rows.Len())
	}
	q := pattern.MustParse(`//c{ID}/b{ID}`)
	rows, plan, err := Answer(q, []*View{big, tiny})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Kind != "single" || plan.Views[0] != "tiny" || plan.Cost != tiny.Rows.Len() {
		t.Fatalf("expected cheapest single view, got %s (cost %d)", plan.Explain(), plan.Cost)
	}
	if !sameRows(rows, algebra.Materialize(d, q)) {
		t.Fatal("rows differ from direct evaluation")
	}
}

func TestRowSliceSource(t *testing.T) {
	// Snapshot-shaped row slices must answer identically to store views.
	d := mustDoc(t, doc1)
	p := pattern.MustParse(`//c{ID}//b{ID}`)
	v := &View{Name: "slice", Pattern: p, Rows: RowSlice(algebra.Materialize(d, p))}
	q := pattern.MustParse(`//c{ID}/b{ID}`)
	rows, _, err := Answer(q, []*View{v})
	if err != nil {
		t.Fatal(err)
	}
	if !sameRows(rows, algebra.Materialize(d, q)) {
		t.Fatal("RowSlice-backed rewrite differs from direct evaluation")
	}
}

func TestNoRewriteFound(t *testing.T) {
	d := mustDoc(t, doc1)
	v := mkView(t, d, "v", `//a{ID}//f{ID}`)
	q := pattern.MustParse(`//a{ID}//b{ID}`)
	if _, _, err := Answer(q, []*View{v}); err == nil {
		t.Fatal("expected no-rewrite error")
	}
	if _, _, err := Answer(q, nil); err == nil {
		t.Fatal("expected error with no views")
	}
}

func TestIDIncompleteViewSkipped(t *testing.T) {
	d := mustDoc(t, doc1)
	p := pattern.MustParse(`//a{ID}//b`) // b stores nothing
	rows := algebra.Materialize(d, p)
	v := &View{Name: "partial", Pattern: p, Rows: store.NewMaterializedView(p, rows)}
	q := pattern.MustParse(`//a{ID}//b{ID}`)
	if _, _, err := Answer(q, []*View{v}); err == nil {
		t.Fatal("ID-incomplete view must not answer")
	}
}

// TestRandomizedAgainstDirect: random documents; a library of ID-complete
// views; random queries drawn from rewritable shapes must match direct
// evaluation exactly.
func TestRandomizedAgainstDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	labels := []string{"a", "b", "c"}
	var build func(lvl int) string
	build = func(lvl int) string {
		l := labels[rng.Intn(len(labels))]
		var sb strings.Builder
		sb.WriteString("<" + l + ">")
		if lvl < 4 {
			for i := 0; i < rng.Intn(3); i++ {
				sb.WriteString(build(lvl + 1))
			}
		}
		sb.WriteString("</" + l + ">")
		return sb.String()
	}
	queries := []string{
		`//a{ID}//b{ID}`,
		`//a{ID}/b{ID}`,
		`//a{ID}//b{ID}//c{ID}`,
		`//a{ID}//c{ID}//b{ID}`,
		`//a{ID}[//b{ID}]`,
		`//a{ID}[//b][//c]`,
		`//a{ID}[//b]//c{ID}`,
		`//a{ID}[//c]//b{ID}`,
	}
	for trial := 0; trial < 50; trial++ {
		d := mustDoc(t, "<a>"+build(1)+build(1)+"</a>")
		views := []*View{
			mkView(t, d, "ab", `//a{ID}//b{ID}`),
			mkView(t, d, "ac", `//a{ID}//c{ID}`),
			mkView(t, d, "bc", `//b{ID}//c{ID}`),
			mkView(t, d, "cb", `//c{ID}//b{ID}`),
		}
		for _, qs := range queries {
			q := pattern.MustParse(qs)
			rows, _, err := Answer(q, views)
			if err != nil {
				continue // not answerable from this library — fine
			}
			if !sameRows(rows, algebra.Materialize(d, q)) {
				t.Fatalf("trial %d query %s: rewrite differs from direct evaluation", trial, qs)
			}
		}
	}
}
