package rewrite

import (
	"sync"
	"testing"

	"xivm/internal/algebra"
	"xivm/internal/pattern"
	"xivm/internal/xmltree"
	"xivm/internal/xpath"
)

// fuzzDocXML is a small auction-shaped document with value-bearing leaves,
// branching elements and attributes, so bridged queries exercise residual
// parent checks, value predicates and all three plan shapes.
const fuzzDocXML = `<site><people>` +
	`<person id="p0"><name>Ann</name><profile><age>30</age></profile><homepage>h0</homepage></person>` +
	`<person id="p1"><name>Bob</name><profile><age>41</age></profile></person>` +
	`<person id="p2"><name>Cyd</name><homepage>h2</homepage></person>` +
	`</people><open_auctions>` +
	`<open_auction id="a0"><initial>5</initial><bidder><increase>3</increase></bidder><bidder><increase>7</increase></bidder></open_auction>` +
	`<open_auction id="a1"><initial>9</initial><bidder><increase>3</increase></bidder></open_auction>` +
	`<open_auction id="a2"><initial>2</initial></open_auction>` +
	`</open_auctions></site>`

var (
	fuzzOnce sync.Once
	fuzzDoc  *xmltree.Document
	fuzzLib  []*View
)

func fuzzSetup() {
	d, err := xmltree.ParseString(fuzzDocXML)
	if err != nil {
		panic(err)
	}
	fuzzDoc = d
	mk := func(name, src string) *View {
		p := pattern.MustParse(src)
		return &View{Name: name, Pattern: p, Rows: RowSlice(algebra.Materialize(d, p))}
	}
	fuzzLib = []*View{
		mk("chain-name", `/site{ID}/people{ID}/person{ID}/name{ID,val}`),
		mk("person-name", `//person{ID}//name{ID,val}`),
		mk("person-id", `//person{ID}/@id{ID,val}`),
		mk("person-profile", `//person{ID}//profile{ID,val}`),
		mk("person-homepage", `//person{ID}//homepage{ID,val}`),
		mk("auction-bidder", `//open_auction{ID}//bidder{ID,val}`),
		mk("bidder-increase", `//bidder{ID}//increase{ID,val}`),
		mk("auction-initial", `//open_auction{ID}//initial{ID,val}`),
		mk("auction-increase", `//open_auction{ID}//increase{ID,val}`),
	}
}

// FuzzRewriteVsTreeWalk is the end-to-end differential oracle for the
// bridge + rewrite pipeline: any query that parses, bridges, and finds a
// view plan must return exactly the tree walk's matches — same IDs, same
// values, same order.
func FuzzRewriteVsTreeWalk(f *testing.F) {
	for _, seed := range []string{
		"/site/people/person/name",
		"//open_auction//increase",
		"//open_auction//bidder//increase",
		"//open_auction[bidder]//initial",
		"//person[profile]/name",
		"//person[profile and homepage]/name",
		`//person[@id="p0"]/name`,
		`//open_auction[initial="5"]//increase`,
		"//person/@id",
		"/site/people/person[homepage]/name",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, qs string) {
		fuzzOnce.Do(fuzzSetup)
		p, err := xpath.Parse(qs)
		if err != nil {
			t.Skip()
		}
		pat, err := xpath.ToPattern(p)
		if err != nil {
			t.Skip()
		}
		rows, plan, err := Answer(pat, fuzzLib)
		if err != nil {
			t.Skip() // no plan from this library — fine
		}
		want := xpath.Eval(fuzzDoc, p)
		if len(rows) != len(want) {
			t.Fatalf("%s (%s): rewrite %d matches, tree walk %d", qs, plan.Explain(), len(rows), len(want))
		}
		for i := range rows {
			e := rows[i].Entries[0]
			if e.ID.Key() != want[i].ID.Key() {
				t.Fatalf("%s (%s): match %d ID %s != %s", qs, plan.Explain(), i, e.ID, want[i].ID)
			}
			if e.Val != want[i].StringValue() {
				t.Fatalf("%s (%s): match %d value %q != %q", qs, plan.Explain(), i, e.Val, want[i].StringValue())
			}
		}
	})
}
