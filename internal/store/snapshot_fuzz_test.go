package store

import (
	"strings"
	"testing"

	"xivm/internal/algebra"
	"xivm/internal/pattern"
	"xivm/internal/xmltree"
)

// fuzzSeedSnapshot builds a small but representative snapshot: several
// rows, multi-entry rows, shared labels, values and contents.
func fuzzSeedSnapshot(tb testing.TB) []byte {
	tb.Helper()
	doc, err := xmltree.ParseString(
		`<site><people><person id="p1"><name>Ann</name></person><person id="p2"><name>Bob</name></person></people></site>`)
	if err != nil {
		tb.Fatal(err)
	}
	p, err := pattern.Parse(`//person{ID,val}//name{ID,cont}`)
	if err != nil {
		tb.Fatal(err)
	}
	rows := algebra.Materialize(doc, p)
	if len(rows) == 0 {
		tb.Fatal("seed snapshot has no rows")
	}
	return EncodeSnapshot(NewMaterializedView(p, rows))
}

// FuzzSnapshotDecode hardens DecodeSnapshot against arbitrary bytes: it
// must either return rows or an error — never panic, and never allocate
// proportionally to forged counts. Valid inputs must re-encode and decode
// to the same row set.
func FuzzSnapshotDecode(f *testing.F) {
	valid := fuzzSeedSnapshot(f)
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("XIVM1"))
	f.Add([]byte("XIVM0junk"))
	// Truncations at every framing boundary the decoder crosses.
	for _, cut := range []int{1, len(valid) / 4, len(valid) / 2, len(valid) - 1} {
		if cut > 0 && cut < len(valid) {
			f.Add(valid[:cut])
		}
	}
	// Bit flips, including in the varint count positions right after the
	// magic where forged huge counts live.
	for _, at := range []int{5, 6, 7, len(valid) / 2, len(valid) - 2} {
		if at >= 0 && at < len(valid) {
			flipped := append([]byte(nil), valid...)
			flipped[at] ^= 0x80
			f.Add(flipped)
		}
	}
	// Trailing garbage after a valid body.
	f.Add(append(append([]byte(nil), valid...), 0xFF, 0x00))

	f.Fuzz(func(t *testing.T, data []byte) {
		rows, err := DecodeSnapshot(data)
		if err != nil {
			if !strings.HasPrefix(err.Error(), "store:") && !strings.HasPrefix(err.Error(), "dewey:") {
				t.Fatalf("unexpected error namespace: %v", err)
			}
			return
		}
		// A successful decode must survive an encode/decode round trip.
		// (Duplicate-identity rows merge in the view, so compare against
		// the view's own row set, not the raw decoded slice.)
		v := NewMaterializedView(nil, rows)
		again, err := DecodeSnapshot(EncodeSnapshot(v))
		if err != nil {
			t.Fatalf("re-encoded snapshot does not decode: %v", err)
		}
		if !NewMaterializedView(nil, again).EqualRows(v.Rows()) {
			t.Fatal("snapshot round trip changed rows")
		}
	})
}

// TestDecodeSnapshotCorruptionErrors pins the explicit corruption classes:
// each must produce an error, not a panic or a silent success.
func TestDecodeSnapshotCorruptionErrors(t *testing.T) {
	valid := fuzzSeedSnapshot(t)
	if _, err := DecodeSnapshot(valid); err != nil {
		t.Fatalf("valid snapshot rejected: %v", err)
	}
	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   []byte("NOPE1rest"),
		"magic only":  []byte("XIVM1"),
		"half header": valid[:6],
		"torn body":   valid[:len(valid)-3],
		"trailing":    append(append([]byte(nil), valid...), 0x01),
	}
	// Forged label count: magic + huge varint.
	cases["forged label count"] = append([]byte("XIVM1"), 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F)
	for name, data := range cases {
		if _, err := DecodeSnapshot(data); err == nil {
			t.Errorf("%s: decode succeeded, want error", name)
		}
	}
	// Every single-byte truncation must fail cleanly (never panic).
	for cut := 0; cut < len(valid); cut++ {
		if rows, err := DecodeSnapshot(valid[:cut]); err == nil {
			// Prefixes that happen to parse are only acceptable if they
			// decode to a plausible row set; the trailing-bytes check makes
			// this impossible for proper prefixes of a valid snapshot.
			t.Errorf("truncation at %d decoded %d rows without error", cut, len(rows))
		}
	}
}
