package store

import (
	"xivm/internal/algebra"
	"xivm/internal/dewey"
	"xivm/internal/pattern"
)

// View is a materialized view: a tree pattern plus its stored rows keyed by
// row identity, each with a derivation count.
type View struct {
	Pattern *pattern.Pattern
	byKey   map[string]int
	rows    []algebra.Row // live rows plus tombstones (Count<=0 slots reused)
	size    int
	keyBuf  []byte // reused row-key scratch; View is not safe for concurrent mutation
}

// NewView creates an empty materialized view over p.
func NewView(p *pattern.Pattern) *View {
	return &View{Pattern: p, byKey: make(map[string]int)}
}

// NewMaterializedView creates a view and fills it with rows.
func NewMaterializedView(p *pattern.Pattern, rows []algebra.Row) *View {
	v := NewView(p)
	for _, r := range rows {
		v.Upsert(r)
	}
	return v
}

// Len returns the number of live rows.
func (v *View) Len() int { return v.size }

// Get returns the row with the given key and whether it exists.
func (v *View) Get(key string) (algebra.Row, bool) {
	if i, ok := v.byKey[key]; ok && v.rows[i].Count > 0 {
		return v.rows[i], true
	}
	return algebra.Row{}, false
}

// Upsert adds the row's derivation count to the stored row with the same
// identity, inserting it if absent. It returns true when the row is new.
// The probe key is built in a reused buffer; a string is only materialized
// for genuinely new rows.
func (v *View) Upsert(r algebra.Row) bool {
	v.keyBuf = r.AppendKey(v.keyBuf[:0])
	if i, ok := v.byKey[string(v.keyBuf)]; ok {
		if v.rows[i].Count <= 0 {
			v.rows[i] = r
			v.size++
			return true
		}
		v.rows[i].Count += r.Count
		return false
	}
	v.byKey[string(v.keyBuf)] = len(v.rows)
	v.rows = append(v.rows, r)
	v.size++
	return true
}

// DecrementBy lowers the derivation count of the row with the given key by
// n, removing the row when the count reaches zero. It reports whether the
// row existed and whether it was removed.
func (v *View) DecrementBy(key string, n int) (existed, removed bool) {
	i, ok := v.byKey[key]
	if !ok || v.rows[i].Count <= 0 {
		return false, false
	}
	v.rows[i].Count -= n
	if v.rows[i].Count <= 0 {
		v.rows[i].Count = 0
		v.size--
		return true, true
	}
	return true, false
}

// Remove deletes the row with the given key outright.
func (v *View) Remove(key string) bool {
	i, ok := v.byKey[key]
	if !ok || v.rows[i].Count <= 0 {
		return false
	}
	v.rows[i].Count = 0
	v.size--
	return true
}

// Replace overwrites the stored row with the same identity key (used by the
// tuple-modification algorithms to refresh val/cont without touching the
// derivation count).
func (v *View) Replace(key string, update func(*algebra.Row)) bool {
	i, ok := v.byKey[key]
	if !ok || v.rows[i].Count <= 0 {
		return false
	}
	update(&v.rows[i])
	return true
}

// Each calls f for every live row; f must not mutate the view.
func (v *View) Each(f func(algebra.Row) bool) {
	for i := range v.rows {
		if v.rows[i].Count > 0 {
			if !f(v.rows[i]) {
				return
			}
		}
	}
}

// Rows returns the live rows sorted in the order dictated by the IDs of all
// bindings, as the paper's s operator specifies.
func (v *View) Rows() []algebra.Row {
	out := make([]algebra.Row, 0, v.size)
	v.Each(func(r algebra.Row) bool {
		out = append(out, r)
		return true
	})
	algebra.SortRows(out)
	return out
}

// Compact rebuilds internal storage, dropping tombstones.
func (v *View) Compact() {
	rows := v.Rows()
	v.byKey = make(map[string]int, len(rows))
	v.rows = v.rows[:0]
	v.size = 0
	for _, r := range rows {
		v.Upsert(r)
	}
}

// EqualRows reports whether the view's live rows exactly match want
// (entries, values, contents and derivation counts), which must be sorted.
func (v *View) EqualRows(want []algebra.Row) bool {
	got := v.Rows()
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i].Count != want[i].Count || len(got[i].Entries) != len(want[i].Entries) {
			return false
		}
		for j := range got[i].Entries {
			a, b := got[i].Entries[j], want[i].Entries[j]
			if a.NodeIdx != b.NodeIdx || !a.ID.Equal(b.ID) || a.Val != b.Val || a.Cont != b.Cont {
				return false
			}
		}
	}
	return true
}

// RowsBindingUnder returns the keys of live rows in which the entry for
// pattern node idx is the given node or one of its descendants. Used by
// deletion propagation.
func (v *View) RowsBindingUnder(idx int, root dewey.ID) []string {
	var keys []string
	v.Each(func(r algebra.Row) bool {
		for _, e := range r.Entries {
			if e.NodeIdx == idx && root.IsAncestorOrSelf(e.ID) {
				keys = append(keys, r.Key())
				break
			}
		}
		return true
	})
	return keys
}
