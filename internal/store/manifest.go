package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
)

// Manifest describes one checkpoint: a consistent on-disk image of the
// document plus every managed view, stamped with the log sequence number it
// reflects. The document and each view snapshot live in sibling files; the
// manifest binds them together with content hashes so recovery can tell a
// complete checkpoint from a torn or bit-rotted one before trusting it.
type Manifest struct {
	// Format is the manifest schema version; decoding rejects versions it
	// does not know.
	Format int `json:"format"`
	// LSN is the last log sequence number whose effects the checkpoint
	// contains; recovery replays strictly newer records on top of it.
	LSN uint64 `json:"lsn"`
	// EngineVersion is the engine's mutation-batch counter at checkpoint
	// time. Recovery (and replication catch-up) restores it so the version
	// an epoch reports is a property of the statement history, not of the
	// process lifetime: two engines at the same LSN report the same
	// version, whichever process — leader, restarted leader, or follower —
	// computed the state. Absent (0) in manifests written before the field
	// existed, which restores the old start-from-zero behavior.
	EngineVersion uint64 `json:"engine_version,omitempty"`
	// DocHash/DocBytes cover the canonical XML serialization of the
	// document file.
	DocHash  string `json:"doc_hash"`
	DocBytes int64  `json:"doc_bytes"`
	// OrdsHash/OrdsBytes cover the document's ordinal stream
	// (xmltree.EncodeOrds), which restores the exact live Dewey-ID space on
	// top of the reparsed document — required for a restored engine (crash
	// recovery or a replication follower) to serve byte-identical responses
	// to the process that wrote the checkpoint.
	OrdsHash  string `json:"ords_hash"`
	OrdsBytes int64  `json:"ords_bytes"`
	// Views lists every materialized view in the checkpoint, in the order
	// they were registered with the engine.
	Views []ManifestView `json:"views"`
}

// ManifestView is one view's entry in a checkpoint manifest.
type ManifestView struct {
	Name string `json:"name"`
	// Pattern is the view's tree pattern in pattern.Parse syntax; recovery
	// re-compiles it to rebuild maintenance structures.
	Pattern string `json:"pattern"`
	// Hash/Bytes cover the view's EncodeSnapshot image.
	Hash  string `json:"hash"`
	Bytes int64  `json:"bytes"`
}

// manifestFormat is the current schema version.
const manifestFormat = 1

// NewManifest returns an empty manifest at the current format version.
func NewManifest(lsn uint64) *Manifest {
	return &Manifest{Format: manifestFormat, LSN: lsn}
}

// AddView appends a view entry, hashing its snapshot image.
func (m *Manifest) AddView(name, pattern string, snapshot []byte) {
	m.Views = append(m.Views, ManifestView{
		Name:    name,
		Pattern: pattern,
		Hash:    HashBytes(snapshot),
		Bytes:   int64(len(snapshot)),
	})
}

// SetDoc records the document image's hash and size.
func (m *Manifest) SetDoc(doc []byte) {
	m.DocHash = HashBytes(doc)
	m.DocBytes = int64(len(doc))
}

// SetOrds records the ordinal stream's hash and size.
func (m *Manifest) SetOrds(ords []byte) {
	m.OrdsHash = HashBytes(ords)
	m.OrdsBytes = int64(len(ords))
}

// View returns the entry with the given name, or nil.
func (m *Manifest) View(name string) *ManifestView {
	for i := range m.Views {
		if m.Views[i].Name == name {
			return &m.Views[i]
		}
	}
	return nil
}

// EncodeManifest serializes the manifest as indented JSON (deterministic:
// field order is fixed, views keep registration order).
func EncodeManifest(m *Manifest) []byte {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		// Manifest contains only plain data types; marshaling cannot fail.
		panic("store: manifest marshal: " + err.Error())
	}
	return append(data, '\n')
}

// DecodeManifest parses and validates a manifest: known format version,
// well-formed hashes, and no duplicate or unnamed views.
func DecodeManifest(data []byte) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("store: bad manifest: %w", err)
	}
	if m.Format != manifestFormat {
		return nil, fmt.Errorf("store: unsupported manifest format %d", m.Format)
	}
	if !validHash(m.DocHash) {
		return nil, errors.New("store: manifest has malformed document hash")
	}
	if m.DocBytes < 0 {
		return nil, errors.New("store: manifest has negative document size")
	}
	if !validHash(m.OrdsHash) {
		return nil, errors.New("store: manifest has malformed ordinal-stream hash")
	}
	if m.OrdsBytes < 0 {
		return nil, errors.New("store: manifest has negative ordinal-stream size")
	}
	seen := make(map[string]bool, len(m.Views))
	for _, v := range m.Views {
		if v.Name == "" {
			return nil, errors.New("store: manifest view without a name")
		}
		if seen[v.Name] {
			return nil, fmt.Errorf("store: duplicate manifest view %q", v.Name)
		}
		seen[v.Name] = true
		if !validHash(v.Hash) {
			return nil, fmt.Errorf("store: manifest view %q has malformed hash", v.Name)
		}
		if v.Bytes < 0 {
			return nil, fmt.Errorf("store: manifest view %q has negative size", v.Name)
		}
	}
	return &m, nil
}

// HashBytes returns the hex SHA-256 of b — the content hash manifests use.
func HashBytes(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

func validHash(h string) bool {
	if len(h) != sha256.Size*2 {
		return false
	}
	_, err := hex.DecodeString(h)
	return err == nil
}
