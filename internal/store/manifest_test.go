package store

import (
	"strings"
	"testing"
)

func TestManifestRoundTrip(t *testing.T) {
	m := NewManifest(42)
	m.SetDoc([]byte("<site/>"))
	m.SetOrds([]byte{1, 2})
	m.AddView("Q1", "//a{ID}", []byte("snapshot-1"))
	m.AddView("Q2", "//b{ID,val}", []byte("snapshot-2"))

	back, err := DecodeManifest(EncodeManifest(m))
	if err != nil {
		t.Fatal(err)
	}
	if back.LSN != 42 || back.Format != manifestFormat {
		t.Fatalf("lsn/format %d/%d", back.LSN, back.Format)
	}
	if back.DocHash != HashBytes([]byte("<site/>")) || back.DocBytes != 7 {
		t.Fatalf("doc hash/bytes %q/%d", back.DocHash, back.DocBytes)
	}
	if back.OrdsHash != HashBytes([]byte{1, 2}) || back.OrdsBytes != 2 {
		t.Fatalf("ords hash/bytes %q/%d", back.OrdsHash, back.OrdsBytes)
	}
	if len(back.Views) != 2 {
		t.Fatalf("views %d", len(back.Views))
	}
	v := back.View("Q2")
	if v == nil || v.Pattern != "//b{ID,val}" || v.Hash != HashBytes([]byte("snapshot-2")) || v.Bytes != 10 {
		t.Fatalf("view Q2 %+v", v)
	}
	if back.View("missing") != nil {
		t.Fatal("lookup of absent view succeeded")
	}
}

func TestDecodeManifestRejectsCorruption(t *testing.T) {
	good := func() *Manifest {
		m := NewManifest(7)
		m.SetDoc([]byte("<a/>"))
		m.SetOrds([]byte{1})
		m.AddView("V", "//a{ID}", []byte("x"))
		return m
	}
	cases := map[string]func() []byte{
		"not json":   func() []byte { return []byte("{nope") },
		"bad format": func() []byte { m := good(); m.Format = 99; return EncodeManifest(m) },
		"bad doc hash": func() []byte {
			m := good()
			m.DocHash = "deadbeef"
			return EncodeManifest(m)
		},
		"negative doc size": func() []byte { m := good(); m.DocBytes = -1; return EncodeManifest(m) },
		"bad ords hash": func() []byte {
			m := good()
			m.OrdsHash = "feedface"
			return EncodeManifest(m)
		},
		"negative ords size": func() []byte { m := good(); m.OrdsBytes = -1; return EncodeManifest(m) },
		"unnamed view": func() []byte {
			m := good()
			m.Views[0].Name = ""
			return EncodeManifest(m)
		},
		"duplicate view": func() []byte {
			m := good()
			m.AddView("V", "//b{ID}", []byte("y"))
			return EncodeManifest(m)
		},
		"bad view hash": func() []byte {
			m := good()
			m.Views[0].Hash = "zz"
			return EncodeManifest(m)
		},
		"negative view size": func() []byte {
			m := good()
			m.Views[0].Bytes = -5
			return EncodeManifest(m)
		},
	}
	for name, build := range cases {
		if _, err := DecodeManifest(build()); err == nil {
			t.Errorf("%s: decode succeeded, want error", name)
		} else if !strings.HasPrefix(err.Error(), "store:") {
			t.Errorf("%s: error %q lacks store: prefix", name, err)
		}
	}
}
