// Package store implements the storage layer: per-label canonical relations
// R_a sorted in document order, materialized view row stores, lattice-node
// (snowcap) materializations, and a compact binary snapshot format. It
// plays the role BerkeleyDB played in the paper's ViP2P prototype.
package store

import (
	"sort"
	"strings"

	"xivm/internal/algebra"
	"xivm/internal/obs"
	"xivm/internal/pattern"
	"xivm/internal/xmltree"
)

// Store indexes one document: it maintains the virtual canonical relation
// R_a of every label a (the list of (ID,val,cont) tuples of a-labeled
// nodes, in document order) as a sorted slice of items, plus the list of
// all element nodes for wildcard pattern nodes.
type Store struct {
	doc   *xmltree.Document
	rels  map[string][]algebra.Item
	elems []algebra.Item

	// Observability (nil counters are no-op sinks; see SetMetrics).
	scanCount     *obs.Counter
	scanItems     *obs.Counter
	snapshotBytes *obs.Counter
}

// SetMetrics wires the store's counters into a registry:
//
//	store.scan.count     canonical-relation scans served
//	store.scan.items     items handed out by those scans
//	store.snapshot.bytes bytes produced by EncodeView
//
// Call before concurrent use; a store without metrics records nothing.
func (s *Store) SetMetrics(m *obs.Metrics) {
	s.scanCount = m.Counter("store.scan.count")
	s.scanItems = m.Counter("store.scan.items")
	s.snapshotBytes = m.Counter("store.snapshot.bytes")
}

// New builds the canonical relations of doc.
func New(doc *xmltree.Document) *Store {
	s := &Store{doc: doc, rels: make(map[string][]algebra.Item)}
	xmltree.Walk(doc.Root, func(n *xmltree.Node) bool {
		s.rels[n.Label] = append(s.rels[n.Label], algebra.Item{ID: n.ID, Node: n})
		if n.Kind == xmltree.Element {
			s.elems = append(s.elems, algebra.Item{ID: n.ID, Node: n})
		}
		return true
	})
	// Document walk is preorder, so relations are born sorted.
	return s
}

// Doc returns the indexed document.
func (s *Store) Doc() *xmltree.Document { return s.doc }

// Items returns the canonical relation for a pattern label: "*" yields all
// elements, "@name" attribute nodes, "#text" text nodes, "~word" the text
// nodes containing that word, anything else the elements with that label.
// The returned slice is shared (except for word labels); callers must not
// mutate it.
func (s *Store) Items(label string) []algebra.Item {
	s.scanCount.Inc()
	if label == "*" {
		s.scanItems.Add(int64(len(s.elems)))
		return s.elems
	}
	if word, isWord := strings.CutPrefix(label, "~"); isWord {
		var out []algebra.Item
		for _, it := range s.rels[xmltree.TextLabel] {
			if it.Node != nil && it.Node.MatchesWord(word) {
				out = append(out, it)
			}
		}
		s.scanItems.Add(int64(len(s.rels[xmltree.TextLabel])))
		return out
	}
	s.scanItems.Add(int64(len(s.rels[label])))
	return s.rels[label]
}

// Count returns |R_label| without materializing the relation: word labels
// are counted with a single pass over the text relation (no allocation, one
// scan recorded); every other label is a length lookup.
func (s *Store) Count(label string) int {
	if word, isWord := strings.CutPrefix(label, "~"); isWord {
		s.scanCount.Inc()
		s.scanItems.Add(int64(len(s.rels[xmltree.TextLabel])))
		n := 0
		for _, it := range s.rels[xmltree.TextLabel] {
			if it.Node != nil && it.Node.MatchesWord(word) {
				n++
			}
		}
		return n
	}
	if label == "*" {
		return len(s.elems)
	}
	return len(s.rels[label])
}

// Inputs assembles σ-filtered per-node inputs for a pattern from the
// canonical relations.
func (s *Store) Inputs(p *pattern.Pattern) algebra.Inputs {
	in := make(algebra.Inputs, p.Size())
	for i, n := range p.Nodes {
		in[i] = algebra.Filter(s.Items(n.Label), n, s.doc)
	}
	in[0] = algebra.FilterRootAnchor(p, in[0])
	return in
}

// AddSubtree registers every node of a freshly inserted subtree in the
// canonical relations, preserving document order.
func (s *Store) AddSubtree(n *xmltree.Node) {
	s.AddSubtrees([]*xmltree.Node{n})
}

// AddSubtrees registers many freshly inserted subtrees at once: new items
// are grouped per label across ALL roots, sorted, and merged into each
// touched relation exactly once — the batched path statement-level inserts
// rely on (a statement can add thousands of subtrees).
func (s *Store) AddSubtrees(roots []*xmltree.Node) {
	if len(roots) == 0 {
		return
	}
	byLabel := map[string][]algebra.Item{}
	var elems []algebra.Item
	for _, n := range roots {
		xmltree.Walk(n, func(m *xmltree.Node) bool {
			it := algebra.Item{ID: m.ID, Node: m}
			byLabel[m.Label] = append(byLabel[m.Label], it)
			if m.Kind == xmltree.Element {
				elems = append(elems, it)
			}
			return true
		})
	}
	for label, items := range byLabel {
		sortItems(items)
		s.rels[label] = mergeSorted(s.rels[label], items)
	}
	if len(elems) > 0 {
		sortItems(elems)
		s.elems = mergeSorted(s.elems, elems)
	}
}

func sortItems(items []algebra.Item) {
	sort.Slice(items, func(i, j int) bool { return items[i].ID.Compare(items[j].ID) < 0 })
}

// mergeSorted merges two document-ordered item lists.
func mergeSorted(a, b []algebra.Item) []algebra.Item {
	if len(b) == 0 {
		return a
	}
	out := make([]algebra.Item, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i].ID.Compare(b[j].ID) <= 0 {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// AddNode registers exactly one node in the canonical relations, ignoring
// its subtree — the node-at-a-time path IVMA maintains. The item points at
// the live node, so σ predicates evaluate against real values.
func (s *Store) AddNode(n *xmltree.Node) {
	it := []algebra.Item{{ID: n.ID, Node: n}}
	s.rels[n.Label] = mergeSorted(s.rels[n.Label], it)
	if n.Kind == xmltree.Element {
		s.elems = mergeSorted(s.elems, it)
	}
}

// RemoveNode drops exactly one node from the canonical relations, leaving
// its subtree's entries to their own removals.
func (s *Store) RemoveNode(n *xmltree.Node) {
	gone := map[string]bool{n.ID.Key(): true}
	s.rels[n.Label] = filterOut(s.rels[n.Label], gone)
	if n.Kind == xmltree.Element {
		s.elems = filterOut(s.elems, gone)
	}
}

// RemoveSubtree drops every node of a detached subtree from the canonical
// relations, filtering each touched relation in one pass.
func (s *Store) RemoveSubtree(n *xmltree.Node) {
	s.RemoveSubtrees([]*xmltree.Node{n})
}

// RemoveSubtrees drops every node of many detached subtrees at once: gone
// keys are collected across all roots first, so each touched relation is
// filtered exactly once regardless of how many subtrees were deleted.
func (s *Store) RemoveSubtrees(roots []*xmltree.Node) {
	if len(roots) == 0 {
		return
	}
	gone := map[string]map[string]bool{} // label -> ID keys
	anyElem := false
	for _, n := range roots {
		xmltree.Walk(n, func(m *xmltree.Node) bool {
			set := gone[m.Label]
			if set == nil {
				set = map[string]bool{}
				gone[m.Label] = set
			}
			set[m.ID.Key()] = true
			if m.Kind == xmltree.Element {
				anyElem = true
			}
			return true
		})
	}
	for label, set := range gone {
		s.rels[label] = filterOut(s.rels[label], set)
	}
	if anyElem {
		all := map[string]bool{}
		for _, set := range gone {
			for k := range set {
				all[k] = true
			}
		}
		s.elems = filterOut(s.elems, all)
	}
}

// filterOut returns items minus the gone keys. It must NOT compact the
// input in place: Items() hands the backing array out by reference, so
// previously returned slices (delta inputs, Mat fills, concurrent readers
// under parallel propagation) have to keep seeing their original contents.
// When nothing is removed the input is returned as is; otherwise the
// survivors are copied into a fresh slice.
func filterOut(items []algebra.Item, gone map[string]bool) []algebra.Item {
	first := -1
	for i, it := range items {
		if gone[it.ID.Key()] {
			first = i
			break
		}
	}
	if first < 0 {
		return items
	}
	out := make([]algebra.Item, first, len(items)-1)
	copy(out, items[:first])
	for _, it := range items[first+1:] {
		if !gone[it.ID.Key()] {
			out = append(out, it)
		}
	}
	return out
}

// Labels returns all labels with a non-empty canonical relation.
func (s *Store) Labels() []string {
	out := make([]string, 0, len(s.rels))
	for l, items := range s.rels {
		if len(items) > 0 {
			out = append(out, l)
		}
	}
	sort.Strings(out)
	return out
}
