// Package store implements the storage layer: per-label canonical relations
// R_a sorted in document order, materialized view row stores, lattice-node
// (snowcap) materializations, and a compact binary snapshot format. It
// plays the role BerkeleyDB played in the paper's ViP2P prototype.
package store

import (
	"sort"
	"strings"
	"sync"

	"xivm/internal/algebra"
	"xivm/internal/obs"
	"xivm/internal/pattern"
	"xivm/internal/xmltree"
)

// Store indexes one document: it maintains the virtual canonical relation
// R_a of every label a (the list of (ID,val,cont) tuples of a-labeled
// nodes, in document order) as a sorted slice of items, plus the list of
// all element nodes for wildcard pattern nodes, plus a lazily built
// inverted word index serving "~word" relations without rescanning the
// text relation on every access.
//
// Concurrency: a Store supports any number of concurrent readers (Items,
// Count, Inputs, Labels) alongside a single mutating writer (AddSubtrees,
// RemoveSubtrees, AddNode, RemoveNode). Mutations never modify a
// previously handed-out slice — merges and filters build fresh backing
// arrays — so a reader that retained a slice across a mutation keeps
// seeing exactly the items it was given (the snapshot read path and
// mid-propagation delta inputs depend on this). mu makes the map and
// slice-header swaps themselves safe, and keeps word-index invalidation
// atomic with the relation update it reacts to.
type Store struct {
	doc *xmltree.Document

	// mu guards rels, elems and wordIdx. Readers take RLock for the brief
	// map/header lookup only; the slices behind the headers are immutable
	// once published, so no lock is held while consumers iterate them.
	mu    sync.RWMutex
	rels  map[string][]algebra.Item
	elems []algebra.Item

	// wordIdx caches, per word, the document-ordered text items containing
	// it. Entries are built on first access and the whole index is dropped
	// whenever a text node enters or leaves the canonical relations (word
	// membership only ever changes through node insertion/removal — value
	// replacement expands to delete+insert). Dropped under the SAME mu
	// critical section that updates the text relation: invalidating after
	// releasing the lock would leave a window in which a concurrent
	// "~word" reader could be served (or could cache) an index entry that
	// predates the mutation.
	wordIdx map[string][]algebra.Item

	// Observability (nil counters are no-op sinks; see SetMetrics).
	scanCount     *obs.Counter
	scanItems     *obs.Counter
	snapshotBytes *obs.Counter
	wordHits      *obs.Counter
	wordBuilds    *obs.Counter
}

// SetMetrics wires the store's counters into a registry:
//
//	store.scan.count      canonical-relation scans served
//	store.scan.items      items handed out by those scans
//	store.snapshot.bytes  bytes produced by EncodeView
//	store.wordidx.hits    "~word" accesses served from the inverted index
//	store.wordidx.builds  "~word" index entries built by scanning
//
// Word-index hits do not count as scans: no relation is traversed.
// Call before concurrent use; a store without metrics records nothing.
func (s *Store) SetMetrics(m *obs.Metrics) {
	s.scanCount = m.Counter("store.scan.count")
	s.scanItems = m.Counter("store.scan.items")
	s.snapshotBytes = m.Counter("store.snapshot.bytes")
	s.wordHits = m.Counter("store.wordidx.hits")
	s.wordBuilds = m.Counter("store.wordidx.builds")
}

// New builds the canonical relations of doc.
func New(doc *xmltree.Document) *Store {
	s := &Store{doc: doc, rels: make(map[string][]algebra.Item)}
	xmltree.Walk(doc.Root, func(n *xmltree.Node) bool {
		s.rels[n.Label] = append(s.rels[n.Label], algebra.Item{ID: n.ID, Node: n})
		if n.Kind == xmltree.Element {
			s.elems = append(s.elems, algebra.Item{ID: n.ID, Node: n})
		}
		return true
	})
	// Document walk is preorder, so relations are born sorted.
	return s
}

// Doc returns the indexed document.
func (s *Store) Doc() *xmltree.Document { return s.doc }

// Items returns the canonical relation for a pattern label: "*" yields all
// elements, "@name" attribute nodes, "#text" text nodes, "~word" the text
// nodes containing that word, anything else the elements with that label.
// Word relations are served from the inverted word index; after the first
// access for a word (and until the next mutation of a text node) no scan of
// the text relation occurs. The returned slice is immutable: callers must
// not modify it, and the store never will — a mutation publishes a fresh
// slice instead, so retaining the result across mutations is safe.
func (s *Store) Items(label string) []algebra.Item {
	if word, isWord := strings.CutPrefix(label, "~"); isWord {
		return s.wordItems(word)
	}
	s.scanCount.Inc()
	s.mu.RLock()
	defer s.mu.RUnlock()
	if label == "*" {
		s.scanItems.Add(int64(len(s.elems)))
		return s.elems
	}
	s.scanItems.Add(int64(len(s.rels[label])))
	return s.rels[label]
}

// Count returns |R_label| without scanning: word labels are a length lookup
// on the inverted index (building its entry on a cold first access), every
// other label a length lookup on its relation.
func (s *Store) Count(label string) int {
	if word, isWord := strings.CutPrefix(label, "~"); isWord {
		return len(s.wordItems(word))
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if label == "*" {
		return len(s.elems)
	}
	return len(s.rels[label])
}

// wordItems serves R_{~word} from the inverted index, building the entry by
// one scan of the text relation on a cold access. The cold build holds the
// write lock so it reads a settled text relation and can never publish an
// entry that a concurrent mutation has already invalidated.
func (s *Store) wordItems(word string) []algebra.Item {
	s.mu.RLock()
	out, ok := s.wordIdx[word]
	s.mu.RUnlock()
	if ok {
		s.wordHits.Inc()
		return out
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if out, ok := s.wordIdx[word]; ok {
		s.wordHits.Inc()
		return out
	}
	s.scanCount.Inc()
	s.scanItems.Add(int64(len(s.rels[xmltree.TextLabel])))
	for _, it := range s.rels[xmltree.TextLabel] {
		if it.Node != nil && it.Node.MatchesWord(word) {
			out = append(out, it)
		}
	}
	if s.wordIdx == nil {
		s.wordIdx = make(map[string][]algebra.Item)
	}
	s.wordIdx[word] = out
	s.wordBuilds.Inc()
	return out
}

// Inputs assembles σ-filtered per-node inputs for a pattern from the
// canonical relations.
func (s *Store) Inputs(p *pattern.Pattern) algebra.Inputs {
	in := make(algebra.Inputs, p.Size())
	for i, n := range p.Nodes {
		in[i] = algebra.Filter(s.Items(n.Label), n, s.doc)
	}
	in[0] = algebra.FilterRootAnchor(p, in[0])
	return in
}

// AddSubtree registers every node of a freshly inserted subtree in the
// canonical relations, preserving document order.
func (s *Store) AddSubtree(n *xmltree.Node) {
	s.AddSubtrees([]*xmltree.Node{n})
}

// AddSubtrees registers many freshly inserted subtrees at once: new items
// are grouped per label across ALL roots, sorted, and merged into each
// touched relation exactly once — the batched path statement-level inserts
// rely on (a statement can add thousands of subtrees).
func (s *Store) AddSubtrees(roots []*xmltree.Node) {
	if len(roots) == 0 {
		return
	}
	byLabel := map[string][]algebra.Item{}
	var elems []algebra.Item
	for _, n := range roots {
		xmltree.Walk(n, func(m *xmltree.Node) bool {
			it := algebra.Item{ID: m.ID, Node: m}
			byLabel[m.Label] = append(byLabel[m.Label], it)
			if m.Kind == xmltree.Element {
				elems = append(elems, it)
			}
			return true
		})
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for label, items := range byLabel {
		sortItems(items)
		s.rels[label] = mergeSorted(s.rels[label], items)
	}
	if len(elems) > 0 {
		sortItems(elems)
		s.elems = mergeSorted(s.elems, elems)
	}
	if len(byLabel[xmltree.TextLabel]) > 0 {
		s.wordIdx = nil
	}
}

func sortItems(items []algebra.Item) {
	sort.Slice(items, func(i, j int) bool { return items[i].ID.Compare(items[j].ID) < 0 })
}

// mergeSorted merges two document-ordered item lists. The merge gallops:
// instead of comparing element by element, it binary-searches (on the cached
// ID keys) for the splice point of each run of b inside a and moves whole
// runs with copy. Statement-level inserts put all new items of a label under
// a handful of parents, so runs are long and the cost is dominated by two
// memmoves rather than |a| comparisons.
func mergeSorted(a, b []algebra.Item) []algebra.Item {
	if len(b) == 0 {
		return a
	}
	out := make([]algebra.Item, 0, len(a)+len(b))
	i := 0
	for j := 0; j < len(b); {
		// Everything in a strictly before b[j] (ties keep a first, matching
		// the stable element-wise merge).
		k := i + sort.Search(len(a)-i, func(x int) bool { return a[i+x].ID.Compare(b[j].ID) > 0 })
		out = append(out, a[i:k]...)
		i = k
		// The run of b that fits before a[i].
		r := j + 1
		for r < len(b) && (i >= len(a) || b[r].ID.Compare(a[i].ID) < 0) {
			r++
		}
		out = append(out, b[j:r]...)
		j = r
	}
	return append(out, a[i:]...)
}

// AddNode registers exactly one node in the canonical relations, ignoring
// its subtree — the node-at-a-time path IVMA maintains. The item points at
// the live node, so σ predicates evaluate against real values.
func (s *Store) AddNode(n *xmltree.Node) {
	it := []algebra.Item{{ID: n.ID, Node: n}}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rels[n.Label] = mergeSorted(s.rels[n.Label], it)
	if n.Kind == xmltree.Element {
		s.elems = mergeSorted(s.elems, it)
	}
	if n.Label == xmltree.TextLabel {
		s.wordIdx = nil
	}
}

// RemoveNode drops exactly one node from the canonical relations, leaving
// its subtree's entries to their own removals.
func (s *Store) RemoveNode(n *xmltree.Node) {
	gone := map[string]bool{n.ID.Key(): true}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rels[n.Label] = filterOut(s.rels[n.Label], gone)
	if n.Kind == xmltree.Element {
		s.elems = filterOut(s.elems, gone)
	}
	if n.Label == xmltree.TextLabel {
		s.wordIdx = nil
	}
}

// RemoveSubtree drops every node of a detached subtree from the canonical
// relations, filtering each touched relation in one pass.
func (s *Store) RemoveSubtree(n *xmltree.Node) {
	s.RemoveSubtrees([]*xmltree.Node{n})
}

// RemoveSubtrees drops every node of many detached subtrees at once: gone
// keys are collected across all roots first, so each touched relation is
// filtered exactly once regardless of how many subtrees were deleted.
func (s *Store) RemoveSubtrees(roots []*xmltree.Node) {
	if len(roots) == 0 {
		return
	}
	gone := map[string]map[string]bool{} // label -> ID keys
	anyElem := false
	for _, n := range roots {
		xmltree.Walk(n, func(m *xmltree.Node) bool {
			set := gone[m.Label]
			if set == nil {
				set = map[string]bool{}
				gone[m.Label] = set
			}
			set[m.ID.Key()] = true
			if m.Kind == xmltree.Element {
				anyElem = true
			}
			return true
		})
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for label, set := range gone {
		s.rels[label] = filterOut(s.rels[label], set)
	}
	if anyElem {
		all := map[string]bool{}
		for _, set := range gone {
			for k := range set {
				all[k] = true
			}
		}
		s.elems = filterOut(s.elems, all)
	}
	if len(gone[xmltree.TextLabel]) > 0 {
		s.wordIdx = nil
	}
}

// filterOut returns items minus the gone keys. It must NOT compact the
// input in place: Items() hands the backing array out by reference, so
// previously returned slices (delta inputs, Mat fills, concurrent readers
// under parallel propagation) have to keep seeing their original contents.
// When nothing is removed the input is returned as is; otherwise the
// survivors are copied into a fresh slice.
func filterOut(items []algebra.Item, gone map[string]bool) []algebra.Item {
	first := -1
	for i, it := range items {
		if gone[it.ID.Key()] {
			first = i
			break
		}
	}
	if first < 0 {
		return items
	}
	out := make([]algebra.Item, first, len(items)-1)
	copy(out, items[:first])
	for _, it := range items[first+1:] {
		if !gone[it.ID.Key()] {
			out = append(out, it)
		}
	}
	return out
}

// Labels returns all labels with a non-empty canonical relation.
func (s *Store) Labels() []string {
	s.mu.RLock()
	out := make([]string, 0, len(s.rels))
	for l, items := range s.rels {
		if len(items) > 0 {
			out = append(out, l)
		}
	}
	s.mu.RUnlock()
	sort.Strings(out)
	return out
}
