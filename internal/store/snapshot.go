package store

import (
	"encoding/binary"
	"errors"
	"fmt"

	"xivm/internal/algebra"
	"xivm/internal/dewey"
)

// Snapshot encoding: a compact binary image of a view's rows, with a shared
// label dictionary so structural IDs stay small — the paper's observation
// that views carrying only IDs are standalone artifacts that can be laid
// out on disk.

const snapshotMagic = "XIVM1"

// EncodeSnapshot serializes the view's live rows.
func EncodeSnapshot(v *View) []byte {
	var dict dewey.Dict
	rows := v.Rows()
	var body []byte
	body = binary.AppendUvarint(body, uint64(len(rows)))
	for _, r := range rows {
		body = binary.AppendUvarint(body, uint64(r.Count))
		body = binary.AppendUvarint(body, uint64(len(r.Entries)))
		for _, e := range r.Entries {
			body = binary.AppendUvarint(body, uint64(e.NodeIdx))
			body = e.ID.Encode(&dict, body)
			body = appendString(body, e.Val)
			body = appendString(body, e.Cont)
		}
	}
	// Header: magic, dictionary, then body.
	out := []byte(snapshotMagic)
	out = binary.AppendUvarint(out, uint64(dict.Len()))
	for i := 0; i < dict.Len(); i++ {
		label, _ := dict.Label(uint64(i))
		out = appendString(out, label)
	}
	return append(out, body...)
}

// EncodeView is EncodeSnapshot with observability: the store's
// store.snapshot.bytes counter accumulates the encoded size.
func (s *Store) EncodeView(v *View) []byte {
	data := EncodeSnapshot(v)
	s.snapshotBytes.Add(int64(len(data)))
	return data
}

// DecodeSnapshot restores rows previously encoded with EncodeSnapshot.
func DecodeSnapshot(data []byte) ([]algebra.Row, error) {
	if len(data) < len(snapshotMagic) || string(data[:len(snapshotMagic)]) != snapshotMagic {
		return nil, errors.New("store: bad snapshot magic")
	}
	pos := len(snapshotMagic)
	nLabels, k := binary.Uvarint(data[pos:])
	if k <= 0 {
		return nil, errors.New("store: truncated label count")
	}
	pos += k
	// Length-sanity rule, applied to every count decoded below: each
	// counted element occupies at least one byte of the remaining input, so
	// any count exceeding it proves corruption. Rejecting before the make
	// turns a forged multi-gigabyte count into an error instead of an
	// allocation blow-up.
	if nLabels > uint64(len(data)-pos) {
		return nil, errors.New("store: implausible label count")
	}
	var dict dewey.Dict
	for i := uint64(0); i < nLabels; i++ {
		s, n, err := readString(data[pos:])
		if err != nil {
			return nil, err
		}
		pos += n
		dict.Code(s)
	}
	nRows, k := binary.Uvarint(data[pos:])
	if k <= 0 {
		return nil, errors.New("store: truncated row count")
	}
	pos += k
	// A row costs at least two bytes (count + entry count).
	if nRows > uint64(len(data)-pos)/2 {
		return nil, errors.New("store: implausible row count")
	}
	rows := make([]algebra.Row, 0, nRows)
	for i := uint64(0); i < nRows; i++ {
		count, k := binary.Uvarint(data[pos:])
		if k <= 0 {
			return nil, errors.New("store: truncated count")
		}
		pos += k
		if count > 1<<40 {
			return nil, errors.New("store: implausible derivation count")
		}
		nEnt, k := binary.Uvarint(data[pos:])
		if k <= 0 {
			return nil, errors.New("store: truncated entry count")
		}
		pos += k
		// An entry costs at least four bytes (node index, ID step count,
		// two string lengths).
		if nEnt > uint64(len(data)-pos)/4 {
			return nil, errors.New("store: implausible entry count")
		}
		r := algebra.Row{Count: int(count), Entries: make([]algebra.RowEntry, 0, nEnt)}
		for j := uint64(0); j < nEnt; j++ {
			idx, k := binary.Uvarint(data[pos:])
			if k <= 0 {
				return nil, errors.New("store: truncated node index")
			}
			pos += k
			// Pattern node indexes live in a uint64 bitmask, so 64 bounds
			// every legitimate snapshot.
			if idx >= 64 {
				return nil, errors.New("store: implausible node index")
			}
			id, n, err := dewey.Decode(&dict, data[pos:])
			if err != nil {
				return nil, fmt.Errorf("store: %w", err)
			}
			pos += n
			val, n, err := readString(data[pos:])
			if err != nil {
				return nil, err
			}
			pos += n
			cont, n, err := readString(data[pos:])
			if err != nil {
				return nil, err
			}
			pos += n
			r.Entries = append(r.Entries, algebra.RowEntry{NodeIdx: int(idx), ID: id, Val: val, Cont: cont})
		}
		rows = append(rows, r)
	}
	if pos != len(data) {
		return nil, errors.New("store: trailing bytes after snapshot body")
	}
	return rows, nil
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func readString(src []byte) (string, int, error) {
	n, k := binary.Uvarint(src)
	if k <= 0 {
		return "", 0, errors.New("store: truncated string length")
	}
	if uint64(len(src)-k) < n {
		return "", 0, errors.New("store: truncated string body")
	}
	return string(src[k : k+int(n)]), k + int(n), nil
}
