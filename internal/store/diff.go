package store

import (
	"fmt"

	"xivm/internal/algebra"
)

// DiffStores compares the canonical relations of two stores and returns a
// human-readable description of the first difference, or "" when the stores
// index the same node set. It is the oracle check used by the differential
// harness (internal/difftest): after a workload, the maintained store must
// match a store rebuilt from scratch over the mutated document. Items are
// compared by structural ID — node pointers may legitimately differ (e.g.
// the IVMA competitor registers detached single-node copies).
func DiffStores(got, want *Store) string {
	gl, wl := got.Labels(), want.Labels()
	if d := diffLabelSets(gl, wl); d != "" {
		return d
	}
	for _, label := range wl {
		g, w := got.Items(label), want.Items(label)
		if d := diffItems("R_"+label, g, w); d != "" {
			return d
		}
	}
	return diffItems("elements", got.Items("*"), want.Items("*"))
}

func diffLabelSets(got, want []string) string {
	g := make(map[string]bool, len(got))
	for _, l := range got {
		g[l] = true
	}
	w := make(map[string]bool, len(want))
	for _, l := range want {
		w[l] = true
		if !g[l] {
			return fmt.Sprintf("relation R_%s missing", l)
		}
	}
	for _, l := range got {
		if !w[l] {
			return fmt.Sprintf("stale relation R_%s", l)
		}
	}
	return ""
}

// diffItems compares two document-ordered item lists by ID.
func diffItems(name string, got, want []algebra.Item) string {
	if len(got) != len(want) {
		return fmt.Sprintf("%s: %d items, want %d", name, len(got), len(want))
	}
	for i := range want {
		if !got[i].ID.Equal(want[i].ID) {
			return fmt.Sprintf("%s[%d]: ID %v, want %v", name, i, got[i].ID, want[i].ID)
		}
	}
	return ""
}
