package store

import (
	"sync"
	"testing"

	"xivm/internal/algebra"
	"xivm/internal/pattern"
	"xivm/internal/xmltree"
)

const doc1 = `<a><c><b>1</b><b>2</b></c><f><c><b>3</b></c><b>4</b></f></a>`

func mustDoc(t *testing.T, s string) *xmltree.Document {
	t.Helper()
	d, err := xmltree.ParseString(s)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestCanonicalRelations(t *testing.T) {
	d := mustDoc(t, doc1)
	s := New(d)
	if got := s.Count("b"); got != 4 {
		t.Fatalf("|R_b| = %d", got)
	}
	if got := s.Count("c"); got != 2 {
		t.Fatalf("|R_c| = %d", got)
	}
	if got := len(s.Items("*")); got != 8 {
		t.Fatalf("elements = %d", got)
	}
	items := s.Items("b")
	for i := 1; i < len(items); i++ {
		if items[i-1].ID.Compare(items[i].ID) >= 0 {
			t.Fatal("R_b not in document order")
		}
	}
}

func TestAddRemoveSubtree(t *testing.T) {
	d := mustDoc(t, doc1)
	s := New(d)
	forest, err := xmltree.ParseForest(`<c><b/><b/></c>`)
	if err != nil {
		t.Fatal(err)
	}
	target := d.Root.ElementChildren()[0] // first c
	cp, err := d.ApplyInsert(target, forest[0])
	if err != nil {
		t.Fatal(err)
	}
	s.AddSubtree(cp)
	if s.Count("b") != 6 || s.Count("c") != 3 {
		t.Fatalf("after insert: b=%d c=%d", s.Count("b"), s.Count("c"))
	}
	items := s.Items("b")
	for i := 1; i < len(items); i++ {
		if items[i-1].ID.Compare(items[i].ID) >= 0 {
			t.Fatal("R_b lost order after insert")
		}
	}
	removed, err := d.ApplyDelete(cp)
	if err != nil {
		t.Fatal(err)
	}
	s.RemoveSubtree(removed)
	if s.Count("b") != 4 || s.Count("c") != 2 {
		t.Fatalf("after delete: b=%d c=%d", s.Count("b"), s.Count("c"))
	}
}

// TestItemsStableAcrossRemove is the regression test for the store-aliasing
// bug: Items() hands out the relation's backing array by reference, so a
// subsequent delete must not compact that array in place — a caller holding
// the slice (a delta input, a Mat fill, the lazy batch's rIn) would silently
// read corrupted items.
func TestItemsStableAcrossRemove(t *testing.T) {
	d := mustDoc(t, doc1)
	s := New(d)
	held := s.Items("b")
	if len(held) != 4 {
		t.Fatalf("|R_b| = %d", len(held))
	}
	snapshot := make([]algebra.Item, len(held))
	copy(snapshot, held)

	// Delete the first c subtree (removes b1, b2 from R_b).
	target := d.Root.ElementChildren()[0]
	removed, err := d.ApplyDelete(target)
	if err != nil {
		t.Fatal(err)
	}
	s.RemoveSubtrees([]*xmltree.Node{removed})

	if got := s.Count("b"); got != 2 {
		t.Fatalf("|R_b| after delete = %d", got)
	}
	for i := range snapshot {
		if !held[i].ID.Equal(snapshot[i].ID) {
			t.Fatalf("held Items() slice mutated at %d: %v, want %v (in-place compaction)",
				i, held[i].ID, snapshot[i].ID)
		}
	}
	// The relation also stays self-consistent: elements list untouched for
	// readers holding it.
	heldElems := s.Items("*")
	elemSnap := make([]algebra.Item, len(heldElems))
	copy(elemSnap, heldElems)
	removed2, err := d.ApplyDelete(d.Root.ElementChildren()[0]) // the f subtree
	if err != nil {
		t.Fatal(err)
	}
	s.RemoveSubtrees([]*xmltree.Node{removed2})
	for i := range elemSnap {
		if !heldElems[i].ID.Equal(elemSnap[i].ID) {
			t.Fatalf("held elements slice mutated at %d", i)
		}
	}
}

// TestParallelReadDuringRemove deletes subtrees while concurrent readers
// iterate previously returned Items() slices — the WithParallel() data-race
// scenario. Run under -race this fails against in-place compaction.
func TestParallelReadDuringRemove(t *testing.T) {
	d := mustDoc(t, `<a><c><b>1</b><b>2</b></c><c><b>3</b></c><c><b>4</b></c><c><b>5</b></c></a>`)
	s := New(d)
	held := s.Items("b")
	heldText := s.Items("#text")

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, it := range held {
				_ = it.ID.Key()
			}
			for _, it := range heldText {
				_ = it.Node.StringValue()
			}
		}
	}()
	for _, c := range d.Root.ElementChildren() {
		removed, err := d.ApplyDelete(c)
		if err != nil {
			t.Fatal(err)
		}
		s.RemoveSubtrees([]*xmltree.Node{removed})
	}
	close(stop)
	wg.Wait()
	if got := s.Count("b"); got != 0 {
		t.Fatalf("|R_b| = %d after deleting everything", got)
	}
}

// TestCountWordNoAlloc: Count("~word") must answer without materializing
// the filtered item list.
func TestCountWordNoAlloc(t *testing.T) {
	d := mustDoc(t, `<r><t>gold ring</t><t>old gold</t><t>silver</t></r>`)
	s := New(d)
	if got := s.Count("~gold"); got != 2 {
		t.Fatalf(`Count("~gold") = %d`, got)
	}
	if got := s.Count("~silver"); got != 1 {
		t.Fatalf(`Count("~silver") = %d`, got)
	}
	if got := s.Count("~missing"); got != 0 {
		t.Fatalf(`Count("~missing") = %d`, got)
	}
	allocs := testing.AllocsPerRun(20, func() { s.Count("~gold") })
	if allocs > 0 {
		t.Fatalf("Count(~word) allocates %.0f objects per call", allocs)
	}
	// Items("~word") still materializes (and still works).
	if got := len(s.Items("~gold")); got != 2 {
		t.Fatalf(`Items("~gold") = %d`, got)
	}
}

func TestDiffStores(t *testing.T) {
	d1 := mustDoc(t, doc1)
	d2 := mustDoc(t, doc1)
	s1, s2 := New(d1), New(d2)
	if diff := DiffStores(s1, s2); diff != "" {
		t.Fatalf("identical stores diff: %s", diff)
	}
	// Desync: remove a subtree from one store only.
	removed, err := d1.ApplyDelete(d1.Root.ElementChildren()[0])
	if err != nil {
		t.Fatal(err)
	}
	s1.RemoveSubtrees([]*xmltree.Node{removed})
	if diff := DiffStores(s1, s2); diff == "" {
		t.Fatal("desynced stores reported equal")
	}
}

func TestInputsApplySigma(t *testing.T) {
	d := mustDoc(t, `<r><a>5</a><a>3</a></r>`)
	s := New(d)
	p := pattern.MustParse(`//a{ID}[val="5"]`)
	in := s.Inputs(p)
	if len(in[0]) != 1 {
		t.Fatalf("σ(R_a) = %d items", len(in[0]))
	}
}

func TestLabels(t *testing.T) {
	d := mustDoc(t, doc1)
	s := New(d)
	labels := s.Labels()
	want := map[string]bool{"a": true, "b": true, "c": true, "f": true, "#text": true}
	if len(labels) != len(want) {
		t.Fatalf("labels = %v", labels)
	}
	for _, l := range labels {
		if !want[l] {
			t.Fatalf("unexpected label %q", l)
		}
	}
}

func TestViewUpsertDecrement(t *testing.T) {
	p := pattern.MustParse(`//a{ID}[//b]`)
	d := mustDoc(t, `<a><b/><c><b/></c></a>`)
	rows := algebra.Materialize(d, p)
	v := NewMaterializedView(p, rows)
	if v.Len() != 1 {
		t.Fatalf("len %d", v.Len())
	}
	r := v.Rows()[0]
	if r.Count != 2 {
		t.Fatalf("count %d", r.Count)
	}
	key := r.Key()
	if existed, removed := v.DecrementBy(key, 1); !existed || removed {
		t.Fatal("first decrement should keep the row")
	}
	if existed, removed := v.DecrementBy(key, 1); !existed || !removed {
		t.Fatal("second decrement should remove the row")
	}
	if v.Len() != 0 {
		t.Fatalf("len %d after removal", v.Len())
	}
	// Re-adding after tombstone works.
	if !v.Upsert(r) {
		t.Fatal("upsert after tombstone should be new")
	}
	if got, ok := v.Get(key); !ok || got.Count != 2 {
		t.Fatalf("Get after re-add: %v %v", got, ok)
	}
}

func TestViewRemoveReplaceCompact(t *testing.T) {
	p := pattern.MustParse(`//a{ID,val}`)
	d := mustDoc(t, `<r><a>x</a><a>y</a></r>`)
	v := NewMaterializedView(p, algebra.Materialize(d, p))
	rows := v.Rows()
	if len(rows) != 2 {
		t.Fatalf("rows %d", len(rows))
	}
	if !v.Replace(rows[0].Key(), func(r *algebra.Row) { r.Entries[0].Val = "z" }) {
		t.Fatal("replace failed")
	}
	if got, _ := v.Get(rows[0].Key()); got.Entries[0].Val != "z" {
		t.Fatal("replace not visible")
	}
	if !v.Remove(rows[1].Key()) {
		t.Fatal("remove failed")
	}
	v.Compact()
	if v.Len() != 1 || len(v.Rows()) != 1 {
		t.Fatalf("after compact: %d", v.Len())
	}
}

func TestRowsBindingUnder(t *testing.T) {
	p := pattern.MustParse(`//a{ID}//b{ID}`)
	d := mustDoc(t, doc1)
	v := NewMaterializedView(p, algebra.Materialize(d, p))
	if v.Len() != 4 {
		t.Fatalf("len %d", v.Len())
	}
	// Deleting subtree rooted at first c kills rows binding b under it.
	c := d.Root.ElementChildren()[0]
	keys := v.RowsBindingUnder(1, c.ID)
	if len(keys) != 2 {
		t.Fatalf("keys = %d", len(keys))
	}
}

func TestMatFillAddRemove(t *testing.T) {
	p := pattern.MustParse(`//a{ID}[//b{ID}//c{ID}]//d{ID}`)
	d := mustDoc(t, `<a><b><c/></b><d/></a>`)
	s := New(d)
	mask := uint64(1 | 1<<1) // {a,b}
	m := NewMat(p, mask)
	b := algebra.EvalSubPattern(p, mask, s.Inputs(p), nil)
	m.FillFromBlock(b)
	if m.Len() != 1 {
		t.Fatalf("mat len %d", m.Len())
	}
	blk := m.Block()
	if len(blk.Cols) != 2 || blk.Cols[0] != 0 || blk.Cols[1] != 1 {
		t.Fatalf("cols %v", blk.Cols)
	}
	// Add a tuple again: accumulates count, not size.
	m.AddBlock(b)
	if m.Len() != 1 {
		t.Fatalf("after re-add len %d", m.Len())
	}
	// Remove under the b node.
	bNode := d.Root.ElementChildren()[0]
	if got := m.RemoveUnder(1, bNode.ID); got != 1 {
		t.Fatalf("removed %d", got)
	}
	if m.Len() != 0 {
		t.Fatalf("len %d", m.Len())
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	p := pattern.MustParse(`//a{ID}//b{ID,val,cont}`)
	d := mustDoc(t, doc1)
	v := NewMaterializedView(p, algebra.Materialize(d, p))
	data := EncodeSnapshot(v)
	rows, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	v2 := NewMaterializedView(p, rows)
	if !v2.EqualRows(v.Rows()) {
		t.Fatal("snapshot round trip lost rows")
	}
}

func TestSnapshotErrors(t *testing.T) {
	if _, err := DecodeSnapshot([]byte("bogus")); err == nil {
		t.Fatal("expected magic error")
	}
	p := pattern.MustParse(`//a{ID}`)
	d := mustDoc(t, `<a/>`)
	v := NewMaterializedView(p, algebra.Materialize(d, p))
	data := EncodeSnapshot(v)
	for cut := len(snapshotMagic); cut < len(data); cut++ {
		if _, err := DecodeSnapshot(data[:cut]); err == nil {
			t.Fatalf("truncated snapshot at %d decoded", cut)
		}
	}
}

// TestConcurrentItemsDuringMutation hammers the live read entry points
// (Items, Count, Labels) from several goroutines while the main goroutine
// inserts and deletes subtrees — the snapshot-serving scenario where epoch
// readers and the single writer share one store. Before the store-wide
// RWMutex this was a data race on the relation map and slice headers; run
// under -race it also re-checks that a slice retained mid-read keeps its
// original contents across the mutation that follows it.
func TestConcurrentItemsDuringMutation(t *testing.T) {
	d := mustDoc(t, `<a><c><b>1</b><b>2</b></c><c><b>3</b></c></a>`)
	s := New(d)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Retain a slice, snapshot its IDs, re-read the store (racing
				// with the writer), then verify the retained slice is intact.
				held := s.Items("b")
				ids := make([]string, len(held))
				for i, it := range held {
					ids[i] = it.ID.Key()
				}
				_ = s.Count("#text")
				_ = s.Items("*")
				_ = s.Labels()
				for i, it := range held {
					if it.ID.Key() != ids[i] {
						panic("retained Items slice mutated mid-read")
					}
				}
			}
		}()
	}

	forestSrc := `<c><b>9</b><b>8</b></c>`
	for i := 0; i < 200; i++ {
		forest, err := xmltree.ParseForest(forestSrc)
		if err != nil {
			t.Fatal(err)
		}
		attached, err := d.ApplyInsert(d.Root, forest[0])
		if err != nil {
			t.Fatal(err)
		}
		s.AddSubtree(attached)
		if _, err := d.ApplyDelete(attached); err != nil {
			t.Fatal(err)
		}
		s.RemoveSubtree(attached)
	}
	close(stop)
	wg.Wait()
	if got := s.Count("b"); got != 3 {
		t.Fatalf("|R_b| = %d after balanced insert/delete churn, want 3", got)
	}
}
