package store

import (
	"testing"

	"xivm/internal/algebra"
	"xivm/internal/pattern"
	"xivm/internal/xmltree"
)

const doc1 = `<a><c><b>1</b><b>2</b></c><f><c><b>3</b></c><b>4</b></f></a>`

func mustDoc(t *testing.T, s string) *xmltree.Document {
	t.Helper()
	d, err := xmltree.ParseString(s)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestCanonicalRelations(t *testing.T) {
	d := mustDoc(t, doc1)
	s := New(d)
	if got := s.Count("b"); got != 4 {
		t.Fatalf("|R_b| = %d", got)
	}
	if got := s.Count("c"); got != 2 {
		t.Fatalf("|R_c| = %d", got)
	}
	if got := len(s.Items("*")); got != 8 {
		t.Fatalf("elements = %d", got)
	}
	items := s.Items("b")
	for i := 1; i < len(items); i++ {
		if items[i-1].ID.Compare(items[i].ID) >= 0 {
			t.Fatal("R_b not in document order")
		}
	}
}

func TestAddRemoveSubtree(t *testing.T) {
	d := mustDoc(t, doc1)
	s := New(d)
	forest, err := xmltree.ParseForest(`<c><b/><b/></c>`)
	if err != nil {
		t.Fatal(err)
	}
	target := d.Root.ElementChildren()[0] // first c
	cp, err := d.ApplyInsert(target, forest[0])
	if err != nil {
		t.Fatal(err)
	}
	s.AddSubtree(cp)
	if s.Count("b") != 6 || s.Count("c") != 3 {
		t.Fatalf("after insert: b=%d c=%d", s.Count("b"), s.Count("c"))
	}
	items := s.Items("b")
	for i := 1; i < len(items); i++ {
		if items[i-1].ID.Compare(items[i].ID) >= 0 {
			t.Fatal("R_b lost order after insert")
		}
	}
	removed, err := d.ApplyDelete(cp)
	if err != nil {
		t.Fatal(err)
	}
	s.RemoveSubtree(removed)
	if s.Count("b") != 4 || s.Count("c") != 2 {
		t.Fatalf("after delete: b=%d c=%d", s.Count("b"), s.Count("c"))
	}
}

func TestInputsApplySigma(t *testing.T) {
	d := mustDoc(t, `<r><a>5</a><a>3</a></r>`)
	s := New(d)
	p := pattern.MustParse(`//a{ID}[val="5"]`)
	in := s.Inputs(p)
	if len(in[0]) != 1 {
		t.Fatalf("σ(R_a) = %d items", len(in[0]))
	}
}

func TestLabels(t *testing.T) {
	d := mustDoc(t, doc1)
	s := New(d)
	labels := s.Labels()
	want := map[string]bool{"a": true, "b": true, "c": true, "f": true, "#text": true}
	if len(labels) != len(want) {
		t.Fatalf("labels = %v", labels)
	}
	for _, l := range labels {
		if !want[l] {
			t.Fatalf("unexpected label %q", l)
		}
	}
}

func TestViewUpsertDecrement(t *testing.T) {
	p := pattern.MustParse(`//a{ID}[//b]`)
	d := mustDoc(t, `<a><b/><c><b/></c></a>`)
	rows := algebra.Materialize(d, p)
	v := NewMaterializedView(p, rows)
	if v.Len() != 1 {
		t.Fatalf("len %d", v.Len())
	}
	r := v.Rows()[0]
	if r.Count != 2 {
		t.Fatalf("count %d", r.Count)
	}
	key := r.Key()
	if existed, removed := v.DecrementBy(key, 1); !existed || removed {
		t.Fatal("first decrement should keep the row")
	}
	if existed, removed := v.DecrementBy(key, 1); !existed || !removed {
		t.Fatal("second decrement should remove the row")
	}
	if v.Len() != 0 {
		t.Fatalf("len %d after removal", v.Len())
	}
	// Re-adding after tombstone works.
	if !v.Upsert(r) {
		t.Fatal("upsert after tombstone should be new")
	}
	if got, ok := v.Get(key); !ok || got.Count != 2 {
		t.Fatalf("Get after re-add: %v %v", got, ok)
	}
}

func TestViewRemoveReplaceCompact(t *testing.T) {
	p := pattern.MustParse(`//a{ID,val}`)
	d := mustDoc(t, `<r><a>x</a><a>y</a></r>`)
	v := NewMaterializedView(p, algebra.Materialize(d, p))
	rows := v.Rows()
	if len(rows) != 2 {
		t.Fatalf("rows %d", len(rows))
	}
	if !v.Replace(rows[0].Key(), func(r *algebra.Row) { r.Entries[0].Val = "z" }) {
		t.Fatal("replace failed")
	}
	if got, _ := v.Get(rows[0].Key()); got.Entries[0].Val != "z" {
		t.Fatal("replace not visible")
	}
	if !v.Remove(rows[1].Key()) {
		t.Fatal("remove failed")
	}
	v.Compact()
	if v.Len() != 1 || len(v.Rows()) != 1 {
		t.Fatalf("after compact: %d", v.Len())
	}
}

func TestRowsBindingUnder(t *testing.T) {
	p := pattern.MustParse(`//a{ID}//b{ID}`)
	d := mustDoc(t, doc1)
	v := NewMaterializedView(p, algebra.Materialize(d, p))
	if v.Len() != 4 {
		t.Fatalf("len %d", v.Len())
	}
	// Deleting subtree rooted at first c kills rows binding b under it.
	c := d.Root.ElementChildren()[0]
	keys := v.RowsBindingUnder(1, c.ID)
	if len(keys) != 2 {
		t.Fatalf("keys = %d", len(keys))
	}
}

func TestMatFillAddRemove(t *testing.T) {
	p := pattern.MustParse(`//a{ID}[//b{ID}//c{ID}]//d{ID}`)
	d := mustDoc(t, `<a><b><c/></b><d/></a>`)
	s := New(d)
	mask := uint64(1 | 1<<1) // {a,b}
	m := NewMat(p, mask)
	b := algebra.EvalSubPattern(p, mask, s.Inputs(p), nil)
	m.FillFromBlock(b)
	if m.Len() != 1 {
		t.Fatalf("mat len %d", m.Len())
	}
	blk := m.Block()
	if len(blk.Cols) != 2 || blk.Cols[0] != 0 || blk.Cols[1] != 1 {
		t.Fatalf("cols %v", blk.Cols)
	}
	// Add a tuple again: accumulates count, not size.
	m.AddBlock(b)
	if m.Len() != 1 {
		t.Fatalf("after re-add len %d", m.Len())
	}
	// Remove under the b node.
	bNode := d.Root.ElementChildren()[0]
	if got := m.RemoveUnder(1, bNode.ID); got != 1 {
		t.Fatalf("removed %d", got)
	}
	if m.Len() != 0 {
		t.Fatalf("len %d", m.Len())
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	p := pattern.MustParse(`//a{ID}//b{ID,val,cont}`)
	d := mustDoc(t, doc1)
	v := NewMaterializedView(p, algebra.Materialize(d, p))
	data := EncodeSnapshot(v)
	rows, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	v2 := NewMaterializedView(p, rows)
	if !v2.EqualRows(v.Rows()) {
		t.Fatal("snapshot round trip lost rows")
	}
}

func TestSnapshotErrors(t *testing.T) {
	if _, err := DecodeSnapshot([]byte("bogus")); err == nil {
		t.Fatal("expected magic error")
	}
	p := pattern.MustParse(`//a{ID}`)
	d := mustDoc(t, `<a/>`)
	v := NewMaterializedView(p, algebra.Materialize(d, p))
	data := EncodeSnapshot(v)
	for cut := len(snapshotMagic); cut < len(data); cut++ {
		if _, err := DecodeSnapshot(data[:cut]); err == nil {
			t.Fatalf("truncated snapshot at %d decoded", cut)
		}
	}
}
