package store

import (
	"sync"
	"testing"

	"xivm/internal/obs"
	"xivm/internal/xmltree"
)

const wordDoc = `<site><a><text>gold ring</text></a><b><text>silver coin</text></b><c><text>plain gold bar</text></c></site>`

func newWordStore(t *testing.T) (*Store, *xmltree.Document, *obs.Metrics) {
	t.Helper()
	doc, err := xmltree.ParseString(wordDoc)
	if err != nil {
		t.Fatal(err)
	}
	s := New(doc)
	m := obs.New()
	s.SetMetrics(m)
	return s, doc, m
}

// TestWordItemsServedFromIndex asserts the tentpole contract: a cache-hit
// Items("~word") call must not rescan the text relation, observable through
// the store.scan.items counter staying flat while store.wordidx.hits grows.
func TestWordItemsServedFromIndex(t *testing.T) {
	s, _, m := newWordStore(t)
	scans := m.Counter("store.scan.items")
	hits := m.Counter("store.wordidx.hits")
	builds := m.Counter("store.wordidx.builds")

	first := s.Items("~gold")
	if len(first) != 2 {
		t.Fatalf("Items(~gold) = %d items, want 2", len(first))
	}
	if builds.Value() != 1 {
		t.Fatalf("builds = %d after cold access, want 1", builds.Value())
	}
	cold := scans.Value()
	if cold == 0 {
		t.Fatal("cold access must scan the text relation")
	}

	for i := 0; i < 3; i++ {
		if got := s.Items("~gold"); len(got) != 2 {
			t.Fatalf("Items(~gold) = %d items on hit, want 2", len(got))
		}
	}
	if s.Count("~gold") != 2 {
		t.Fatalf("Count(~gold) = %d, want 2", s.Count("~gold"))
	}
	if scans.Value() != cold {
		t.Fatalf("scan.items moved on cache hits: %d -> %d", cold, scans.Value())
	}
	if hits.Value() != 4 {
		t.Fatalf("wordidx.hits = %d, want 4", hits.Value())
	}
	if builds.Value() != 1 {
		t.Fatalf("builds = %d after hits, want 1", builds.Value())
	}
}

// TestWordIndexInvalidation checks that text-node mutations through every
// store entry point drop the index so word relations stay correct.
func TestWordIndexInvalidation(t *testing.T) {
	s, doc, m := newWordStore(t)
	builds := m.Counter("store.wordidx.builds")

	if n := s.Count("~gold"); n != 2 {
		t.Fatalf("Count(~gold) = %d, want 2", n)
	}

	// Insert a subtree containing a matching text node.
	parent := doc.Root.Children[1] // <b>
	sub, err := xmltree.ParseString(`<d><text>more gold dust</text></d>`)
	if err != nil {
		t.Fatal(err)
	}
	attached, err := doc.ApplyInsert(parent, sub.Root)
	if err != nil {
		t.Fatal(err)
	}
	s.AddSubtree(attached)
	if n := s.Count("~gold"); n != 3 {
		t.Fatalf("Count(~gold) after insert = %d, want 3", n)
	}
	if builds.Value() != 2 {
		t.Fatalf("builds = %d after insert+recount, want 2", builds.Value())
	}

	// Delete it again.
	if _, err := doc.ApplyDelete(attached); err != nil {
		t.Fatal(err)
	}
	s.RemoveSubtree(attached)
	if n := s.Count("~gold"); n != 2 {
		t.Fatalf("Count(~gold) after delete = %d, want 2", n)
	}

	// Node-at-a-time paths (IVMA) must invalidate too.
	var textNode *xmltree.Node
	xmltree.Walk(doc.Root, func(n *xmltree.Node) bool {
		if n.Label == xmltree.TextLabel && textNode == nil {
			textNode = n
		}
		return true
	})
	s.RemoveNode(textNode)
	if n := s.Count("~gold"); n != 1 {
		t.Fatalf("Count(~gold) after RemoveNode = %d, want 1", n)
	}
	s.AddNode(textNode)
	if n := s.Count("~gold"); n != 2 {
		t.Fatalf("Count(~gold) after AddNode = %d, want 2", n)
	}

	// Mutations that touch no text node must keep the index warm.
	before := builds.Value()
	elemOnly, err := xmltree.ParseString(`<e><f/></e>`)
	if err != nil {
		t.Fatal(err)
	}
	attached2, err := doc.ApplyInsert(parent, elemOnly.Root)
	if err != nil {
		t.Fatal(err)
	}
	s.AddSubtree(attached2)
	if n := s.Count("~gold"); n != 2 {
		t.Fatalf("Count(~gold) after element-only insert = %d, want 2", n)
	}
	if builds.Value() != before {
		t.Fatalf("element-only insert invalidated the word index (builds %d -> %d)", before, builds.Value())
	}
}

// TestWordIndexConcurrentWithMutations drives "~word" queries from several
// goroutines while the writer inserts and deletes text-bearing subtrees —
// the serving-layer scenario where concurrent readers hit wordItems while
// the apply loop mutates the canonical relations. Run under -race this
// catches two historical windows: the unguarded read of the text relation
// during a cold index build, and the invalidation that used to happen
// AFTER the relation update left the lock, letting a reader cache (and be
// served) an index entry that predated the mutation.
//
// Every answer must be internally consistent: each returned item's node
// really contains the word, and Count must agree with some state the store
// actually passed through (2 matches before an insert, 3 after, never
// anything else).
func TestWordIndexConcurrentWithMutations(t *testing.T) {
	s, doc, _ := newWordStore(t)
	parent := doc.Root.Children[1] // <b>

	stop := make(chan struct{})
	errc := make(chan string, 8)
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				items := s.Items("~gold")
				for _, it := range items {
					if it.Node == nil || !it.Node.MatchesWord("gold") {
						select {
						case errc <- "Items(~gold) returned a non-matching item":
						default:
						}
						return
					}
				}
				if n := s.Count("~gold"); n != 2 && n != 3 {
					select {
					case errc <- "Count(~gold) observed a state the store never held":
					default:
					}
					return
				}
			}
		}()
	}

	for i := 0; i < 150; i++ {
		sub, err := xmltree.ParseString(`<d><text>more gold dust</text></d>`)
		if err != nil {
			t.Fatal(err)
		}
		attached, err := doc.ApplyInsert(parent, sub.Root)
		if err != nil {
			t.Fatal(err)
		}
		s.AddSubtree(attached)
		if _, err := doc.ApplyDelete(attached); err != nil {
			t.Fatal(err)
		}
		s.RemoveSubtree(attached)
	}
	close(stop)
	wg.Wait()
	select {
	case msg := <-errc:
		t.Fatal(msg)
	default:
	}
	if n := s.Count("~gold"); n != 2 {
		t.Fatalf("Count(~gold) = %d after balanced churn, want 2", n)
	}
}
