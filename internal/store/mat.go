package store

import (
	"xivm/internal/algebra"
	"xivm/internal/dewey"
	"xivm/internal/pattern"
)

// Mat is a materialized lattice node: the stored tuples of one snowcap
// sub-pattern, maintained incrementally alongside the view. Tuples are
// stored standalone (IDs only) so the structure could live on disk; live
// node pointers are re-resolved through the document when needed.
type Mat struct {
	Mask   uint64
	Cols   []int // pattern node indexes bound by each tuple column
	byKey  map[string]int
	tups   []algebra.Tuple
	size   int
	keyBuf []byte // reused tuple-key scratch; Mat is not safe for concurrent mutation
}

// NewMat creates an empty materialization for the snowcap mask of p.
func NewMat(p *pattern.Pattern, mask uint64) *Mat {
	return &Mat{Mask: mask, Cols: pattern.MaskIndexes(mask), byKey: make(map[string]int)}
}

// FillFromBlock resets the materialization to the tuples of b, which must
// bind exactly the mat's columns (any order).
func (m *Mat) FillFromBlock(b algebra.Block) {
	m.byKey = make(map[string]int, len(b.Tuples))
	m.tups = m.tups[:0]
	m.size = 0
	perm := m.permFrom(b.Cols)
	for _, t := range b.Tuples {
		m.Add(permuteTuple(t, perm))
	}
}

func (m *Mat) permFrom(cols []int) []int {
	perm := make([]int, len(m.Cols))
	for i, want := range m.Cols {
		perm[i] = -1
		for j, have := range cols {
			if have == want {
				perm[i] = j
				break
			}
		}
		if perm[i] < 0 {
			panic("store: block does not bind materialized column")
		}
	}
	return perm
}

func permuteTuple(t algebra.Tuple, perm []int) algebra.Tuple {
	items := make([]algebra.Item, len(perm))
	for i, j := range perm {
		items[i] = algebra.Item{ID: t.Items[j].ID} // strip live pointers
	}
	return algebra.Tuple{Items: items, Count: t.Count}
}

func appendTupleKey(buf []byte, t algebra.Tuple) []byte {
	for _, it := range t.Items {
		buf = append(buf, it.ID.Key()...)
		buf = append(buf, 0xFF)
	}
	return buf
}

// Add inserts a tuple (or accumulates its count) and reports whether it was
// new. The probe key is assembled in a reused buffer from the IDs' cached
// keys; a string is only materialized when the tuple is genuinely new.
func (m *Mat) Add(t algebra.Tuple) bool {
	m.keyBuf = appendTupleKey(m.keyBuf[:0], t)
	if i, ok := m.byKey[string(m.keyBuf)]; ok {
		if m.tups[i].Count <= 0 {
			m.tups[i] = t
			m.size++
			return true
		}
		m.tups[i].Count += t.Count
		return false
	}
	m.byKey[string(m.keyBuf)] = len(m.tups)
	m.tups = append(m.tups, t)
	m.size++
	return true
}

// AddBlock adds all tuples of b (after column permutation).
func (m *Mat) AddBlock(b algebra.Block) int {
	perm := m.permFrom(b.Cols)
	added := 0
	for _, t := range b.Tuples {
		if m.Add(permuteTuple(t, perm)) {
			added++
		}
	}
	return added
}

// RemoveUnder drops every tuple in which the column bound to pattern node
// idx is the given node or a descendant of it, returning the number of
// tuples removed. This is how deletions reach the lattice: any binding
// inside a deleted subtree kills the tuple.
func (m *Mat) RemoveUnder(idx int, root dewey.ID) int {
	col := -1
	for i, c := range m.Cols {
		if c == idx {
			col = i
			break
		}
	}
	if col < 0 {
		return 0
	}
	removed := 0
	for i := range m.tups {
		t := &m.tups[i]
		if t.Count <= 0 {
			continue
		}
		if root.IsAncestorOrSelf(t.Items[col].ID) {
			t.Count = 0
			m.size--
			removed++
		}
	}
	return removed
}

// RemoveUnderAny drops, in a single pass, every tuple in which ANY column
// binds a node inside the cover (a deleted subtree), returning the number
// of tuples removed.
func (m *Mat) RemoveUnderAny(cover *dewey.Cover) int {
	removed := 0
	for i := range m.tups {
		t := &m.tups[i]
		if t.Count <= 0 {
			continue
		}
		for _, it := range t.Items {
			if cover.Contains(it.ID) {
				t.Count = 0
				m.size--
				removed++
				break
			}
		}
	}
	return removed
}

// Len returns the number of live tuples.
func (m *Mat) Len() int { return m.size }

// Block returns the live tuples as a block binding m.Cols.
func (m *Mat) Block() algebra.Block {
	out := algebra.Block{Cols: append([]int{}, m.Cols...)}
	for _, t := range m.tups {
		if t.Count > 0 {
			out.Tuples = append(out.Tuples, t)
		}
	}
	return out
}
