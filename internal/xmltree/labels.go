package xmltree

// The label index backs the compiled query engine's descendant steps: a
// query-shaped `//x` wants "every node labeled x in document order", which a
// tree walk answers in O(document) while this index answers it in
// O(matches). The index is built lazily on first use — documents that never
// serve such a query pay nothing — and dropped wholesale on any structural
// mutation; the serving path evaluates against immutable snapshots, so there
// the index is built at most once and shared by every reader.

// labelIndex maps each label occurring in the document to its nodes in
// document order. Labels follow Node.Label conventions: plain element
// labels, "@name" attributes, "#text" text nodes.
type labelIndex map[string][]*Node

// Labeled returns the document-order list of nodes carrying the given
// label, building the index on first use. The returned slice is shared —
// callers must not modify it. Safe for concurrent use.
func (d *Document) Labeled(label string) []*Node {
	if li := d.labels.Load(); li != nil {
		return (*li)[label]
	}
	d.labelMu.Lock()
	defer d.labelMu.Unlock()
	if li := d.labels.Load(); li != nil {
		return (*li)[label]
	}
	li := make(labelIndex)
	Walk(d.Root, func(n *Node) bool {
		li[n.Label] = append(li[n.Label], n)
		return true
	})
	d.labels.Store(&li)
	return li[label]
}

// invalidateLabels drops the label index; every structural mutator calls it.
// Rebuilding from scratch on next use beats incremental maintenance here:
// mutations arrive in bursts on the write path, where the index is never
// consulted (reads go through snapshots).
func (d *Document) invalidateLabels() {
	d.labels.Store(nil)
}
