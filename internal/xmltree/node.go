// Package xmltree implements the paper's document model: XML documents as
// ordered labeled trees of element, attribute and text nodes, each carrying
// a Compact Dynamic Dewey structural identifier. It provides parsing,
// serialization, string-value and content extraction, and the side-effecting
// subtree insertion/deletion primitives (apply-insert, apply-delete) that
// the update machinery builds on.
package xmltree

import (
	"strings"
	"sync"
	"sync/atomic"

	"xivm/internal/dewey"
)

// Kind distinguishes the three node kinds of the model.
type Kind uint8

const (
	// Element is an XML element node.
	Element Kind = iota
	// Attribute is an attribute node; its Label carries a leading '@'.
	Attribute
	// Text is a text node; Label is "#text".
	Text
)

// TextLabel is the label carried by text nodes.
const TextLabel = "#text"

func (k Kind) String() string {
	switch k {
	case Element:
		return "element"
	case Attribute:
		return "attribute"
	case Text:
		return "text"
	}
	return "invalid"
}

// Node is one node of an ordered labeled XML tree. Attribute nodes appear at
// the front of their owner's Children, before any element or text children,
// and carry labels of the form "@name" so that structural IDs encode them
// uniformly.
type Node struct {
	Kind     Kind
	Label    string // element label, "@name" for attributes, "#text" for text
	Value    string // text content for Text and Attribute nodes
	Parent   *Node
	Children []*Node
	ID       dewey.ID
}

// Document is a parsed XML document: a single root element plus an index
// from ID keys to nodes so that ID-carrying view tuples can be resolved back
// to live nodes (needed by the tuple-modification algorithms PIMT/PDMT).
type Document struct {
	Root  *Node
	index map[string]*Node

	// labels is the lazily-built label index (see labels.go); labelMu
	// serializes its construction so concurrent readers build it once.
	labels  atomic.Pointer[labelIndex]
	labelMu sync.Mutex
}

// NewDocument wraps a root node built elsewhere, indexing its subtree.
func NewDocument(root *Node) *Document {
	d := &Document{Root: root, index: make(map[string]*Node)}
	d.reindex(root)
	return d
}

func (d *Document) reindex(n *Node) {
	d.index[n.ID.Key()] = n
	for _, c := range n.Children {
		d.reindex(c)
	}
}

func (d *Document) unindex(n *Node) {
	delete(d.index, n.ID.Key())
	for _, c := range n.Children {
		d.unindex(c)
	}
}

// NodeByID resolves a structural ID to the live node, or nil.
func (d *Document) NodeByID(id dewey.ID) *Node {
	return d.index[id.Key()]
}

// Size returns the number of nodes in the document.
func (d *Document) Size() int { return len(d.index) }

// Walk visits n and its descendants in document order, stopping early if f
// returns false for a node (its subtree is then skipped).
func Walk(n *Node, f func(*Node) bool) {
	if !f(n) {
		return
	}
	for _, c := range n.Children {
		Walk(c, f)
	}
}

// StringValue returns the node's string value: for text and attribute nodes
// the literal value; for elements the concatenation of all text descendants
// in document order, per the XPath data model.
func (n *Node) StringValue() string {
	switch n.Kind {
	case Text, Attribute:
		return n.Value
	}
	var b strings.Builder
	n.appendText(&b)
	return b.String()
}

func (n *Node) appendText(b *strings.Builder) {
	if n.Kind == Text {
		b.WriteString(n.Value)
		return
	}
	for _, c := range n.Children {
		if c.Kind == Attribute {
			continue
		}
		c.appendText(b)
	}
}

// Content returns the serialized image of the subtree rooted at n — the
// "cont" stored attribute of the paper's tree patterns.
func (n *Node) Content() string {
	var b strings.Builder
	serializeNode(&b, n)
	return b.String()
}

// ElementChildren returns the element children of n, skipping attributes
// and text.
func (n *Node) ElementChildren() []*Node {
	var out []*Node
	for _, c := range n.Children {
		if c.Kind == Element {
			out = append(out, c)
		}
	}
	return out
}

// Attr returns the attribute child named name (without '@'), or nil.
func (n *Node) Attr(name string) *Node {
	want := "@" + name
	for _, c := range n.Children {
		if c.Kind != Attribute {
			// Attributes are stored first; stop at the first non-attribute.
			break
		}
		if c.Label == want {
			return c
		}
	}
	return nil
}

// lastOrd returns the ordinal of the last child of n, or nil when childless.
func (n *Node) lastOrd() dewey.Ord {
	if len(n.Children) == 0 {
		return nil
	}
	last := n.Children[len(n.Children)-1]
	return last.ID.Step(last.ID.Level() - 1).Ord
}

// Clone returns a deep copy of the subtree rooted at n, with nil Parent at
// the top and no IDs assigned (IDs belong to a document position).
func (n *Node) Clone() *Node {
	c := &Node{Kind: n.Kind, Label: n.Label, Value: n.Value}
	c.Children = make([]*Node, len(n.Children))
	for i, ch := range n.Children {
		cc := ch.Clone()
		cc.Parent = c
		c.Children[i] = cc
	}
	return c
}

// Snapshot returns an independent deep copy of the document: fresh Node
// structs with IDs preserved (unlike Node.Clone, which strips them for
// template reuse) and a fresh index. The copy shares no mutable state with
// the original, so it can serve any number of concurrent readers while the
// original keeps mutating — the epoch-snapshot read path (core.Snapshot)
// relies on this, and on ID preservation so that view rows and XPath
// results from the same epoch agree on node identity.
func (d *Document) Snapshot() *Document {
	c := &Document{index: make(map[string]*Node, len(d.index))}
	c.Root = c.cloneKeepIDs(d.Root, nil)
	return c
}

func (c *Document) cloneKeepIDs(n, parent *Node) *Node {
	m := &Node{Kind: n.Kind, Label: n.Label, Value: n.Value, Parent: parent, ID: n.ID}
	c.index[m.ID.Key()] = m
	if len(n.Children) > 0 {
		m.Children = make([]*Node, len(n.Children))
		for i, ch := range n.Children {
			m.Children[i] = c.cloneKeepIDs(ch, m)
		}
	}
	return m
}

// CountNodes returns the number of nodes in the subtree rooted at n.
func (n *Node) CountNodes() int {
	total := 1
	for _, c := range n.Children {
		total += c.CountNodes()
	}
	return total
}

// WordLabel returns the pattern label denoting a word leaf: a pattern node
// labeled "~w" matches any text node whose whitespace-tokenized value
// contains the word w (the paper's word alphabet A_w for pattern leaves).
func WordLabel(word string) string { return "~" + word }

// MatchesWord reports whether the node is a text node containing the given
// word as a whitespace-delimited token.
func (n *Node) MatchesWord(word string) bool {
	if n.Kind != Text {
		return false
	}
	rest := n.Value
	for len(rest) > 0 {
		tok := rest
		if i := indexSpace(rest); i >= 0 {
			tok, rest = rest[:i], rest[i+1:]
		} else {
			rest = ""
		}
		if tok == word {
			return true
		}
	}
	return false
}

func indexSpace(s string) int {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case ' ', '\t', '\n', '\r':
			return i
		}
	}
	return -1
}
