package xmltree

import (
	"encoding/binary"
	"errors"

	"xivm/internal/dewey"
)

// Structural-ID durability. Serializing a document as XML loses its Dewey
// ordinals: parsing assigns dense sequential ordinals, while a live document
// that has seen updates carries fractional ones (dewey.Between). Node IDs
// are part of the observable state — view rows and XPath responses expose
// them — so a process restored from a serialized document would answer
// queries with different IDs than the live process it checkpointed, breaking
// the byte-identical convergence replication promises. The ordinal stream
// below rides alongside the XML: a preorder walk of every node's own sibling
// ordinal, enough to reconstruct the exact live ID space on top of a fresh
// parse (an ID is just the root-to-node label path zipped with these
// ordinals).

// EncodeOrds serializes the document's ordinal assignment: for each node in
// preorder, its own sibling ordinal as a uvarint component vector. Combined
// with the serialized XML (which fixes structure, labels and order) this
// reconstructs every node's exact structural ID.
func (d *Document) EncodeOrds() []byte {
	var out []byte
	var walk func(n *Node)
	walk = func(n *Node) {
		ord := n.ID.Step(n.ID.Level() - 1).Ord
		out = binary.AppendUvarint(out, uint64(len(ord)))
		for _, c := range ord {
			out = binary.AppendUvarint(out, c)
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(d.Root)
	return out
}

// ApplyOrds reassigns every node's structural ID from an ordinal stream
// produced by EncodeOrds on a structurally identical document (same nodes,
// same order), then rebuilds the ID index. The freshly parsed document's
// sequential ordinals are replaced by the recorded ones, so the restored
// ID space is byte-identical to the one the stream was taken from.
func (d *Document) ApplyOrds(data []byte) error {
	pos := 0
	next := func() (dewey.Ord, error) {
		m, k := binary.Uvarint(data[pos:])
		if k <= 0 {
			return nil, errors.New("xmltree: truncated ordinal length")
		}
		pos += k
		if m > uint64(len(data)-pos) {
			return nil, errors.New("xmltree: implausible ordinal length")
		}
		ord := make(dewey.Ord, 0, m)
		for j := uint64(0); j < m; j++ {
			c, k := binary.Uvarint(data[pos:])
			if k <= 0 {
				return nil, errors.New("xmltree: truncated ordinal component")
			}
			pos += k
			ord = append(ord, c)
		}
		return ord, nil
	}
	var walk func(n *Node) error
	walk = func(n *Node) error {
		ord, err := next()
		if err != nil {
			return err
		}
		if n.Parent == nil {
			// Roots always carry the NewRoot ordinal; a stream that says
			// otherwise was not taken from a structurally identical document.
			got := n.ID.Step(0).Ord
			if len(ord) != len(got) {
				return errors.New("xmltree: ordinal stream disagrees on the root")
			}
			for i := range ord {
				if ord[i] != got[i] {
					return errors.New("xmltree: ordinal stream disagrees on the root")
				}
			}
		} else {
			n.ID = n.Parent.ID.Child(n.Label, ord)
		}
		for _, c := range n.Children {
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(d.Root); err != nil {
		return err
	}
	if pos != len(data) {
		return errors.New("xmltree: ordinal stream longer than the document")
	}
	d.index = make(map[string]*Node, len(d.index))
	d.reindex(d.Root)
	d.invalidateLabels()
	return nil
}
