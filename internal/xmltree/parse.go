package xmltree

import (
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"strings"

	"xivm/internal/dewey"
)

// Parse reads an XML document from r and builds its tree with structural
// IDs assigned to every node. Whitespace-only text between elements is
// dropped; mixed-content text is kept.
func Parse(r io.Reader) (*Document, error) {
	dec := xml.NewDecoder(r)
	var root *Node
	var stack []*Node
	childOrds := map[*Node]int{} // next sibling index during initial load

	push := func(n *Node) error {
		if len(stack) == 0 {
			if root != nil {
				return errors.New("xmltree: multiple root elements")
			}
			if n.Kind != Element {
				return errors.New("xmltree: document root must be an element")
			}
			n.ID = dewey.NewRoot(n.Label)
			root = n
			return nil
		}
		parent := stack[len(stack)-1]
		i := childOrds[parent]
		childOrds[parent] = i + 1
		n.Parent = parent
		n.ID = parent.ID.Child(n.Label, dewey.OrdAt(i))
		parent.Children = append(parent.Children, n)
		return nil
	}

	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmltree: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			n := &Node{Kind: Element, Label: t.Name.Local}
			if err := push(n); err != nil {
				return nil, err
			}
			stack = append(stack, n)
			for _, a := range t.Attr {
				if a.Name.Space == "xmlns" || a.Name.Local == "xmlns" {
					continue
				}
				attr := &Node{Kind: Attribute, Label: "@" + a.Name.Local, Value: a.Value}
				if err := push(attr); err != nil {
					return nil, err
				}
			}
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, errors.New("xmltree: unbalanced end element")
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			s := string(t)
			if strings.TrimSpace(s) == "" {
				continue
			}
			if len(stack) == 0 {
				continue
			}
			n := &Node{Kind: Text, Label: TextLabel, Value: s}
			if err := push(n); err != nil {
				return nil, err
			}
		case xml.Comment, xml.ProcInst, xml.Directive:
			// Ignored by the model.
		}
	}
	if root == nil {
		return nil, errors.New("xmltree: empty document")
	}
	if len(stack) != 0 {
		return nil, errors.New("xmltree: unclosed elements")
	}
	return NewDocument(root), nil
}

// ParseString parses a document from a string.
func ParseString(s string) (*Document, error) {
	return Parse(strings.NewReader(s))
}

// ParseForest parses an XML fragment that may contain several top-level
// trees (the forests inserted by updates). The returned nodes have no IDs:
// IDs are assigned when the forest is spliced into a document.
func ParseForest(s string) ([]*Node, error) {
	dec := xml.NewDecoder(strings.NewReader(s))
	var tops []*Node
	var stack []*Node
	add := func(n *Node) {
		if len(stack) == 0 {
			tops = append(tops, n)
			return
		}
		parent := stack[len(stack)-1]
		n.Parent = parent
		parent.Children = append(parent.Children, n)
	}
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmltree: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			n := &Node{Kind: Element, Label: t.Name.Local}
			add(n)
			stack = append(stack, n)
			for _, a := range t.Attr {
				add(&Node{Kind: Attribute, Label: "@" + a.Name.Local, Value: a.Value})
			}
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, errors.New("xmltree: unbalanced end element in forest")
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			s := string(t)
			if strings.TrimSpace(s) == "" {
				continue
			}
			if len(stack) == 0 {
				continue
			}
			add(&Node{Kind: Text, Label: TextLabel, Value: s})
		}
	}
	if len(stack) != 0 {
		return nil, errors.New("xmltree: unclosed elements in forest")
	}
	if len(tops) == 0 {
		return nil, errors.New("xmltree: empty forest")
	}
	return tops, nil
}
