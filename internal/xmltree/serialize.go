package xmltree

import (
	"io"
	"strings"
)

// Serialize writes the document as XML text.
func (d *Document) Serialize(w io.Writer) error {
	var b strings.Builder
	serializeNode(&b, d.Root)
	_, err := io.WriteString(w, b.String())
	return err
}

// String returns the serialized document.
func (d *Document) String() string {
	var b strings.Builder
	serializeNode(&b, d.Root)
	return b.String()
}

func serializeNode(b *strings.Builder, n *Node) {
	switch n.Kind {
	case Text:
		escapeText(b, n.Value)
	case Attribute:
		// Attributes are serialized by their owning element.
	case Element:
		b.WriteByte('<')
		b.WriteString(n.Label)
		i := 0
		for ; i < len(n.Children) && n.Children[i].Kind == Attribute; i++ {
			a := n.Children[i]
			b.WriteByte(' ')
			b.WriteString(a.Label[1:])
			b.WriteString(`="`)
			escapeAttr(b, a.Value)
			b.WriteByte('"')
		}
		if i == len(n.Children) {
			b.WriteString("/>")
			return
		}
		b.WriteByte('>')
		for ; i < len(n.Children); i++ {
			serializeNode(b, n.Children[i])
		}
		b.WriteString("</")
		b.WriteString(n.Label)
		b.WriteByte('>')
	}
}

func escapeText(b *strings.Builder, s string) {
	for _, r := range s {
		switch r {
		case '&':
			b.WriteString("&amp;")
		case '<':
			b.WriteString("&lt;")
		case '>':
			b.WriteString("&gt;")
		default:
			b.WriteRune(r)
		}
	}
}

func escapeAttr(b *strings.Builder, s string) {
	for _, r := range s {
		switch r {
		case '&':
			b.WriteString("&amp;")
		case '<':
			b.WriteString("&lt;")
		case '"':
			b.WriteString("&quot;")
		default:
			b.WriteRune(r)
		}
	}
}
