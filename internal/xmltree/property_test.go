package xmltree

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomDocSrc builds a random well-formed document string.
func randomDocSrc(rng *rand.Rand) string {
	labels := []string{"a", "b", "c", "d"}
	texts := []string{"", "x", "hello world", "5 < 6 & 7", `quote " here`}
	var build func(lvl int) string
	build = func(lvl int) string {
		l := labels[rng.Intn(len(labels))]
		s := "<" + l
		if rng.Intn(3) == 0 {
			s += fmt.Sprintf(` k="%d"`, rng.Intn(100))
		}
		s += ">"
		if txt := texts[rng.Intn(len(texts))]; txt != "" && rng.Intn(2) == 0 {
			s += escape(txt)
		}
		if lvl < 4 {
			for i := 0; i < rng.Intn(3); i++ {
				s += build(lvl + 1)
			}
		}
		return s + "</" + l + ">"
	}
	return "<root>" + build(1) + build(1) + "</root>"
}

func escape(s string) string {
	out := ""
	for _, r := range s {
		switch r {
		case '<':
			out += "&lt;"
		case '&':
			out += "&amp;"
		case '"':
			out += "&quot;"
		default:
			out += string(r)
		}
	}
	return out
}

// Serialization is a fixpoint after one round trip, and round-tripping
// preserves structure counts and string values.
func TestSerializeParseFixpoint(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := randomDocSrc(rng)
		d1, err := ParseString(src)
		if err != nil {
			return false
		}
		s1 := d1.String()
		d2, err := ParseString(s1)
		if err != nil {
			return false
		}
		if d2.String() != s1 {
			return false
		}
		return d1.Size() == d2.Size() && d1.Root.StringValue() == d2.Root.StringValue()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Random insert/delete sequences keep the ID index exact and document order
// strict.
func TestMutationInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d, err := ParseString(randomDocSrc(rng))
		if err != nil {
			return false
		}
		for step := 0; step < 10; step++ {
			var elems []*Node
			Walk(d.Root, func(n *Node) bool {
				if n.Kind == Element {
					elems = append(elems, n)
				}
				return true
			})
			n := elems[rng.Intn(len(elems))]
			if rng.Intn(2) == 0 || n.Parent == nil {
				forest, err := ParseForest(fmt.Sprintf("<%s><x/></%s>",
					[]string{"a", "b"}[rng.Intn(2)], []string{"a", "b"}[rng.Intn(2)]))
				if err != nil { // mismatched tags: skip this step
					continue
				}
				if _, err := d.ApplyInsert(n, forest[0]); err != nil {
					return false
				}
			} else {
				if _, err := d.ApplyDelete(n); err != nil {
					return false
				}
			}
			// Index exactness and document order.
			count := 0
			ok := true
			var prev *Node
			Walk(d.Root, func(m *Node) bool {
				count++
				if d.NodeByID(m.ID) != m {
					ok = false
				}
				if prev != nil && prev.ID.Compare(m.ID) >= 0 {
					ok = false
				}
				prev = m
				return true
			})
			if !ok || count != d.Size() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// ApplyDeleteBatch equals one-by-one deletion.
func TestApplyDeleteBatchMatchesSingles(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := randomDocSrc(rng)
		d1, _ := ParseString(src)
		d2, _ := ParseString(src)

		// Pick disjoint victims (no ancestor pairs), identical in both docs.
		var keys []string
		var chosen []*Node
		Walk(d1.Root, func(n *Node) bool {
			if n.Parent == nil || n.Kind != Element {
				return true
			}
			for _, c := range chosen {
				if c.ID.IsAncestorOrSelf(n.ID) {
					return true
				}
			}
			if rng.Intn(4) == 0 {
				chosen = append(chosen, n)
				keys = append(keys, n.ID.Key())
			}
			return true
		})
		if len(chosen) == 0 {
			return true
		}
		if _, err := d1.ApplyDeleteBatch(chosen); err != nil {
			return false
		}
		for _, k := range keys {
			var n2 *Node
			Walk(d2.Root, func(n *Node) bool {
				if n.ID.Key() == k {
					n2 = n
				}
				return true
			})
			if n2 == nil {
				return false
			}
			if _, err := d2.ApplyDelete(n2); err != nil {
				return false
			}
		}
		return d1.String() == d2.String() && d1.Size() == d2.Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestApplyDeleteBatchErrors(t *testing.T) {
	d, _ := ParseString(`<r><a/></r>`)
	if _, err := d.ApplyDeleteBatch([]*Node{nil}); err == nil {
		t.Fatal("nil target accepted")
	}
	if _, err := d.ApplyDeleteBatch([]*Node{d.Root}); err == nil {
		t.Fatal("root deletion accepted")
	}
	a := d.Root.ElementChildren()[0]
	got, err := d.ApplyDeleteBatch([]*Node{a, a})
	if err != nil || len(got) != 1 {
		t.Fatalf("duplicate handling: %v %v", got, err)
	}
}
