package xmltree

import (
	"strings"
	"testing"
)

const sampleDoc = `<a><c><b>hello</b></c><f><b x="1">world</b></f></a>`

func mustParse(t *testing.T, s string) *Document {
	t.Helper()
	d, err := ParseString(s)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	return d
}

func TestParseBasicShape(t *testing.T) {
	d := mustParse(t, sampleDoc)
	if d.Root.Label != "a" {
		t.Fatalf("root label %q", d.Root.Label)
	}
	kids := d.Root.ElementChildren()
	if len(kids) != 2 || kids[0].Label != "c" || kids[1].Label != "f" {
		t.Fatalf("children %v", kids)
	}
	b := kids[1].ElementChildren()[0]
	if b.Label != "b" || b.StringValue() != "world" {
		t.Fatalf("b = %q %q", b.Label, b.StringValue())
	}
	if a := b.Attr("x"); a == nil || a.Value != "1" {
		t.Fatalf("attr x = %v", a)
	}
	if b.Attr("missing") != nil {
		t.Fatal("unexpected attribute")
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{"", "<a></a><b></b>", "<a>", "text only"} {
		if _, err := ParseString(bad); err == nil {
			t.Errorf("ParseString(%q) should fail", bad)
		}
	}
}

func TestIDsEncodeDocumentOrder(t *testing.T) {
	d := mustParse(t, sampleDoc)
	var order []*Node
	Walk(d.Root, func(n *Node) bool { order = append(order, n); return true })
	for i := 1; i < len(order); i++ {
		if order[i-1].ID.Compare(order[i].ID) >= 0 {
			t.Fatalf("node %d (%v) not before node %d (%v)", i-1, order[i-1].ID, i, order[i].ID)
		}
	}
	// IDs encode the label path.
	b := order[len(order)-2] // the second b element
	if b.Label == TextLabel {
		b = b.Parent
	}
}

func TestNodeByID(t *testing.T) {
	d := mustParse(t, sampleDoc)
	Walk(d.Root, func(n *Node) bool {
		if got := d.NodeByID(n.ID); got != n {
			t.Fatalf("NodeByID(%v) = %v", n.ID, got)
		}
		return true
	})
}

func TestStringValueConcatenation(t *testing.T) {
	d := mustParse(t, `<r><x>foo</x><y a="skip">bar<z>baz</z></y></r>`)
	if got := d.Root.StringValue(); got != "foobarbaz" {
		t.Fatalf("StringValue = %q", got)
	}
}

func TestContentSerialization(t *testing.T) {
	d := mustParse(t, sampleDoc)
	f := d.Root.ElementChildren()[1]
	want := `<f><b x="1">world</b></f>`
	if got := f.Content(); got != want {
		t.Fatalf("Content = %q want %q", got, want)
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	docs := []string{
		sampleDoc,
		`<r/>`,
		`<r a="1" b="two"><c/>text<d>x &amp; y</d></r>`,
	}
	for _, s := range docs {
		d := mustParse(t, s)
		out := d.String()
		d2 := mustParse(t, out)
		if d2.String() != out {
			t.Fatalf("serialize not stable: %q -> %q", out, d2.String())
		}
	}
}

func TestEscaping(t *testing.T) {
	d := mustParse(t, `<r a="&quot;&lt;&amp;">x &lt; y &amp; z</r>`)
	out := d.String()
	if !strings.Contains(out, `a="&quot;&lt;&amp;"`) {
		t.Fatalf("attr escaping lost: %q", out)
	}
	if !strings.Contains(out, "x &lt; y &amp; z") {
		t.Fatalf("text escaping lost: %q", out)
	}
}

func TestApplyInsertAssignsIDs(t *testing.T) {
	d := mustParse(t, sampleDoc)
	forest, err := ParseForest(`<b><d/></b>`)
	if err != nil {
		t.Fatal(err)
	}
	target := d.Root.ElementChildren()[0] // c
	before := d.Size()
	oldIDs := map[string]bool{}
	Walk(d.Root, func(n *Node) bool { oldIDs[n.ID.Key()] = true; return true })

	cp, err := d.ApplyInsert(target, forest[0])
	if err != nil {
		t.Fatal(err)
	}
	if cp.Parent != target || target.Children[len(target.Children)-1] != cp {
		t.Fatal("not appended as last child")
	}
	if !target.ID.IsParentOf(cp.ID) {
		t.Fatalf("ID %v not child of %v", cp.ID, target.ID)
	}
	if d.Size() != before+2 {
		t.Fatalf("size %d want %d", d.Size(), before+2)
	}
	// Existing IDs unchanged; new nodes indexed.
	Walk(d.Root, func(n *Node) bool {
		if d.NodeByID(n.ID) != n {
			t.Fatalf("index broken for %v", n.ID)
		}
		return true
	})
	Walk(cp, func(n *Node) bool {
		if oldIDs[n.ID.Key()] {
			t.Fatalf("new node reused existing ID %v", n.ID)
		}
		return true
	})
	// Insertion order: new child sorts after previous children.
	if cp.ID.Compare(target.Children[0].ID) <= 0 {
		t.Fatal("inserted child does not sort after siblings")
	}
}

func TestApplyInsertForest(t *testing.T) {
	d := mustParse(t, `<r><p/></r>`)
	forest, err := ParseForest(`<x>1</x><y>2</y>`)
	if err != nil {
		t.Fatal(err)
	}
	p := d.Root.ElementChildren()[0]
	got, err := d.ApplyInsertForest(p, forest)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Label != "x" || got[1].Label != "y" {
		t.Fatalf("inserted %v", got)
	}
	if got[0].ID.Compare(got[1].ID) >= 0 {
		t.Fatal("forest order lost")
	}
}

func TestApplyInsertRejectsNonElement(t *testing.T) {
	d := mustParse(t, `<r>text</r>`)
	txt := d.Root.Children[0]
	if _, err := d.ApplyInsert(txt, &Node{Kind: Element, Label: "x"}); err == nil {
		t.Fatal("expected error inserting under text node")
	}
}

func TestApplyDelete(t *testing.T) {
	d := mustParse(t, sampleDoc)
	c := d.Root.ElementChildren()[0]
	inner := c.ElementChildren()[0] // b under c
	before := d.Size()
	removed, err := d.ApplyDelete(c)
	if err != nil {
		t.Fatal(err)
	}
	if removed != c || c.Parent != nil {
		t.Fatal("detach failed")
	}
	if d.Size() != before-3 { // c, b, #text
		t.Fatalf("size %d want %d", d.Size(), before-3)
	}
	if d.NodeByID(c.ID) != nil || d.NodeByID(inner.ID) != nil {
		t.Fatal("deleted nodes still indexed")
	}
	if len(d.Root.ElementChildren()) != 1 {
		t.Fatal("child not removed from parent")
	}
}

func TestApplyDeleteRoot(t *testing.T) {
	d := mustParse(t, `<r/>`)
	if _, err := d.ApplyDelete(d.Root); err == nil {
		t.Fatal("expected error deleting root")
	}
}

func TestParseForestMultipleRoots(t *testing.T) {
	forest, err := ParseForest(`<a x="1"/><b>t</b>`)
	if err != nil {
		t.Fatal(err)
	}
	if len(forest) != 2 {
		t.Fatalf("forest len %d", len(forest))
	}
	if forest[0].Attr("x") == nil {
		t.Fatal("forest attribute lost")
	}
	if _, err := ParseForest(""); err == nil {
		t.Fatal("empty forest should fail")
	}
}

func TestCloneIndependence(t *testing.T) {
	d := mustParse(t, sampleDoc)
	c := d.Root.Clone()
	c.Children[0].Label = "mutated"
	if d.Root.Children[0].Label == "mutated" {
		t.Fatal("clone shares children")
	}
	if c.Parent != nil {
		t.Fatal("clone should detach parent")
	}
}

func TestCountNodes(t *testing.T) {
	d := mustParse(t, sampleDoc)
	if got := d.Root.CountNodes(); got != d.Size() {
		t.Fatalf("CountNodes %d != Size %d", got, d.Size())
	}
}
