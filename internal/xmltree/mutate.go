package xmltree

import (
	"errors"

	"xivm/internal/dewey"
)

// ApplyInsert implements the paper's apply-insert(n, t) primitive: it copies
// the tree t into a fresh tree t', inserts t' as the new last child of n,
// assigns structural IDs to every copied node (as a side effect of the
// document update, exactly as the paper assumes), indexes them, and returns
// t'. Existing node IDs are never modified.
func (d *Document) ApplyInsert(n *Node, t *Node) (*Node, error) {
	if n == nil || n.Kind != Element {
		return nil, errors.New("xmltree: insertion target must be an element")
	}
	cp := d.cloneAssign(t, n, dewey.Between(n.lastOrd(), nil))
	n.Children = append(n.Children, cp)
	d.invalidateLabels()
	return cp, nil
}

// ApplyInsertForest inserts each tree of the forest, in order, as new last
// children of n, returning the inserted copies.
func (d *Document) ApplyInsertForest(n *Node, forest []*Node) ([]*Node, error) {
	out := make([]*Node, 0, len(forest))
	for _, t := range forest {
		cp, err := d.ApplyInsert(n, t)
		if err != nil {
			return out, err
		}
		out = append(out, cp)
	}
	return out, nil
}

// cloneAssign copies the tree t under parent in a single walk, assigning
// each copy its structural ID (gap-spaced ordinals below the root copy) and
// registering it in the document index — the fused equivalent of
// Clone + assignIDs + reindex, saving two tree traversals per insertion.
func (d *Document) cloneAssign(t *Node, parent *Node, ord dewey.Ord) *Node {
	c := &Node{Kind: t.Kind, Label: t.Label, Value: t.Value, Parent: parent}
	c.ID = parent.ID.Child(t.Label, ord)
	d.index[c.ID.Key()] = c
	if len(t.Children) > 0 {
		c.Children = make([]*Node, len(t.Children))
		for i, ch := range t.Children {
			c.Children[i] = d.cloneAssign(ch, c, dewey.OrdAt(i))
		}
	}
	return c
}

// ApplyDelete implements apply-delete(n): it detaches the subtree rooted at
// n from the document and removes its nodes from the index. Per XQuery
// Update semantics all descendants of n leave the document with it. It
// returns the detached subtree (IDs intact, for delta extraction).
func (d *Document) ApplyDelete(n *Node) (*Node, error) {
	if n == nil {
		return nil, errors.New("xmltree: nil deletion target")
	}
	if n.Parent == nil {
		return nil, errors.New("xmltree: cannot delete the document root")
	}
	p := n.Parent
	idx := -1
	for i, c := range p.Children {
		if c == n {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, errors.New("xmltree: node not attached to its parent")
	}
	p.Children = append(p.Children[:idx], p.Children[idx+1:]...)
	n.Parent = nil
	d.unindex(n)
	d.invalidateLabels()
	return n, nil
}

// ApplyDeleteBatch detaches many subtrees at once, filtering each touched
// parent's child list in a single pass — O(total children) instead of the
// quadratic cost of removing thousands of siblings one by one. The detached
// roots are returned in input order.
func (d *Document) ApplyDeleteBatch(nodes []*Node) ([]*Node, error) {
	victims := make(map[*Node]bool, len(nodes))
	parents := make(map[*Node]bool, len(nodes))
	for _, n := range nodes {
		if n == nil {
			return nil, errors.New("xmltree: nil deletion target")
		}
		if n.Parent == nil {
			return nil, errors.New("xmltree: cannot delete the document root")
		}
		victims[n] = true
		parents[n.Parent] = true
	}
	for p := range parents {
		kept := p.Children[:0]
		for _, c := range p.Children {
			if !victims[c] {
				kept = append(kept, c)
			}
		}
		p.Children = kept
	}
	out := make([]*Node, 0, len(nodes))
	for _, n := range nodes {
		if n.Parent == nil {
			continue // duplicate entry already detached
		}
		n.Parent = nil
		d.unindex(n)
		out = append(out, n)
	}
	d.invalidateLabels()
	return out, nil
}
