package xmltree

import (
	"sync"
	"testing"
)

// TestLabeledIndex pins the label index's contract: document order, label
// conventions (plain, "@name", "#text"), a shared empty answer for absent
// labels, and invalidation by every structural mutator.
func TestLabeledIndex(t *testing.T) {
	d, err := ParseString(`<r><a id="1"><b>x</b></a><b/><a/></r>`)
	if err != nil {
		t.Fatal(err)
	}
	as := d.Labeled("a")
	if len(as) != 2 {
		t.Fatalf("Labeled(a) = %d nodes, want 2", len(as))
	}
	if as[0].ID.Compare(as[1].ID) >= 0 {
		t.Fatal("Labeled(a) not in document order")
	}
	if n := d.Labeled("b"); len(n) != 2 {
		t.Fatalf("Labeled(b) = %d nodes, want 2", len(n))
	}
	if n := d.Labeled("@id"); len(n) != 1 || n[0].Kind != Attribute {
		t.Fatalf("Labeled(@id) = %v, want one attribute", n)
	}
	if n := d.Labeled(TextLabel); len(n) != 1 || n[0].Value != "x" {
		t.Fatalf("Labeled(#text) = %v, want one text node", n)
	}
	if n := d.Labeled("zzz"); len(n) != 0 {
		t.Fatalf("Labeled(zzz) = %d nodes, want 0", len(n))
	}

	// Insertion invalidates: the new subtree's labels appear.
	tmpl, err := ParseString(`<a><c/></a>`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.ApplyInsert(d.Root, tmpl.Root.Clone()); err != nil {
		t.Fatal(err)
	}
	if n := d.Labeled("a"); len(n) != 3 {
		t.Fatalf("after insert: Labeled(a) = %d nodes, want 3", len(n))
	}
	if n := d.Labeled("c"); len(n) != 1 {
		t.Fatalf("after insert: Labeled(c) = %d nodes, want 1", len(n))
	}

	// Deletion invalidates: the removed subtree's labels disappear.
	if _, err := d.ApplyDelete(as[0]); err != nil { // <a id="1"><b>x</b></a>
		t.Fatal(err)
	}
	if n := d.Labeled("a"); len(n) != 2 {
		t.Fatalf("after delete: Labeled(a) = %d nodes, want 2", len(n))
	}
	if n := d.Labeled("@id"); len(n) != 0 {
		t.Fatalf("after delete: Labeled(@id) = %d nodes, want 0", len(n))
	}

	// Batch deletion invalidates too.
	bs := d.Labeled("b")
	if _, err := d.ApplyDeleteBatch(bs); err != nil {
		t.Fatal(err)
	}
	if n := d.Labeled("b"); len(n) != 0 {
		t.Fatalf("after batch delete: Labeled(b) = %d nodes, want 0", len(n))
	}

	// A snapshot builds its own index over its own nodes.
	snap := d.Snapshot()
	for _, n := range snap.Labeled("a") {
		if snap.NodeByID(n.ID) != n {
			t.Fatal("snapshot index points at foreign nodes")
		}
	}
}

// TestLabeledConcurrent exercises the build-once race: many goroutines ask
// for labels of a fresh document at once (run with -race).
func TestLabeledConcurrent(t *testing.T) {
	d, err := ParseString(`<r><a/><b/><a/></r>`)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if len(d.Labeled("a")) != 2 {
					panic("wrong index answer")
				}
			}
		}()
	}
	wg.Wait()
}
