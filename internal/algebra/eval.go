package algebra

import (
	"sort"
	"strings"

	"xivm/internal/pattern"
	"xivm/internal/xmltree"
)

// JoinFunc is the physical join used by the evaluators; StructuralJoin by
// default, NestedLoopStructuralJoin for the ablation.
type JoinFunc func(left Block, lIdx int, right Block, rIdx int, desc bool) Block

// Inputs supplies, for each pattern node index, the (already σ-filtered)
// items that may bind that node.
type Inputs map[int][]Item

// DocItems collects the document nodes that can bind a pattern node with
// the given label: elements for names and "*", attributes for "@name",
// text nodes for "#text", and text nodes containing a word for "~word"
// leaves. Results are in document order.
func DocItems(d *xmltree.Document, label string) []Item {
	var out []Item
	word, isWord := strings.CutPrefix(label, "~")
	xmltree.Walk(d.Root, func(n *xmltree.Node) bool {
		switch {
		case isWord:
			if n.MatchesWord(word) {
				out = append(out, Item{ID: n.ID, Node: n})
			}
		case label == "*":
			if n.Kind == xmltree.Element {
				out = append(out, Item{ID: n.ID, Node: n})
			}
		case n.Label == label:
			out = append(out, Item{ID: n.ID, Node: n})
		}
		return true
	})
	return out
}

// DocInputs builds σ-filtered inputs for every node of p from the document.
func DocInputs(d *xmltree.Document, p *pattern.Pattern) Inputs {
	in := make(Inputs, p.Size())
	for i, n := range p.Nodes {
		in[i] = Filter(DocItems(d, n.Label), n, d)
	}
	in[0] = FilterRootAnchor(p, in[0])
	return in
}

// FilterRootAnchor restricts the root node's input to document roots when
// the pattern root is /-anchored (Desc == false): "/site" matches only a
// root element, while "//site" matches any.
func FilterRootAnchor(p *pattern.Pattern, items []Item) []Item {
	if p.Root.Desc {
		return items
	}
	out := make([]Item, 0, len(items))
	for _, it := range items {
		if it.ID.Level() == 1 {
			out = append(out, it)
		}
	}
	return out
}

// subtreeEnd returns one past the last preorder index of the subtree rooted
// at node i (subtrees are contiguous in preorder).
func subtreeEnd(p *pattern.Pattern, i int) int {
	end := i + 1
	for end < p.Size() && p.IsAncestor(i, end) {
		end++
	}
	return end
}

// EvalSubPattern evaluates the sub-pattern induced by mask (which must be
// upward-closed and non-empty) from per-node inputs, joining bottom-up with
// join (nil means StructuralJoin). The resulting block binds exactly the
// mask's nodes, columns in preorder order.
func EvalSubPattern(p *pattern.Pattern, mask uint64, in Inputs, join JoinFunc) Block {
	if join == nil {
		join = StructuralJoin
	}
	if mask == 0 {
		panic("algebra: EvalSubPattern on empty mask")
	}
	idxs := pattern.MaskIndexes(mask)
	// rel[i] holds the partial relation for the mask-subtree rooted at i.
	rel := make(map[int]Block, len(idxs))
	// Process in reverse preorder so children are ready before parents.
	for k := len(idxs) - 1; k >= 0; k-- {
		i := idxs[k]
		b := SingleColumn(i, in[i])
		for _, c := range p.Nodes[i].Children {
			if !pattern.MaskContains(mask, c.Index) {
				continue
			}
			b = join(b, i, rel[c.Index], c.Index, c.Desc)
		}
		rel[i] = b
	}
	root := idxs[0]
	return rel[root]
}

// EvalForest evaluates the sub-forest induced by mask when mask is NOT
// upward-closed: each maximal root of mask yields an independent block (no
// cross product is taken — the caller joins them against a block that binds
// their pattern parents). Returned in ascending root-index order along with
// the forest root indexes.
func EvalForest(p *pattern.Pattern, mask uint64, in Inputs, join JoinFunc) ([]Block, []int) {
	if join == nil {
		join = StructuralJoin
	}
	var roots []int
	for _, i := range pattern.MaskIndexes(mask) {
		pi := p.ParentIndex(i)
		if pi < 0 || !pattern.MaskContains(mask, pi) {
			roots = append(roots, i)
		}
	}
	blocks := make([]Block, 0, len(roots))
	for _, r := range roots {
		sub := subtreeMask(p, r) & mask
		blocks = append(blocks, EvalSubPattern(p, sub, in, join))
	}
	return blocks, roots
}

func subtreeMask(p *pattern.Pattern, i int) uint64 {
	end := subtreeEnd(p, i)
	var m uint64
	for j := i; j < end; j++ {
		m |= 1 << uint(j)
	}
	return m
}

// AttachForest joins block (binding an upward-closed node set that includes
// every forest root's pattern parent) with the forest blocks, using the
// edges crossing the boundary. The result binds the union of the nodes.
func AttachForest(p *pattern.Pattern, block Block, forest []Block, roots []int, join JoinFunc) Block {
	if join == nil {
		join = StructuralJoin
	}
	for i, fb := range forest {
		r := roots[i]
		pi := p.ParentIndex(r)
		block = join(block, pi, fb, r, p.Nodes[r].Desc)
	}
	return block
}

// EvalPattern evaluates the whole pattern from per-node inputs, returning
// full-width tuples in preorder column order.
func EvalPattern(p *pattern.Pattern, in Inputs, join JoinFunc) []Tuple {
	b := EvalSubPattern(p, p.FullMask(), in, join)
	return NormalizeColumns(p, b)
}

// NormalizeColumns permutes a full-width block's columns into preorder
// order and returns its tuples.
func NormalizeColumns(p *pattern.Pattern, b Block) []Tuple {
	if len(b.Cols) != p.Size() {
		panic("algebra: NormalizeColumns on non-full block")
	}
	perm := make([]int, p.Size())
	for pos, idx := range b.Cols {
		perm[idx] = pos
	}
	out := make([]Tuple, len(b.Tuples))
	for i, t := range b.Tuples {
		items := make([]Item, p.Size())
		for idx := 0; idx < p.Size(); idx++ {
			items[idx] = t.Items[perm[idx]]
		}
		out[i] = Tuple{Items: items, Count: t.Count}
	}
	return out
}

// Materialize evaluates pattern p over the document and returns its view
// rows (projection on stored nodes with derivation counts) — the customary
// semantics used both as ground truth and for initial view materialization.
func Materialize(d *xmltree.Document, p *pattern.Pattern) []Row {
	tuples := EvalPattern(p, DocInputs(d, p), nil)
	return ProjectStored(p, tuples, d)
}

// Embeddings computes all embeddings of p in the document by direct
// recursive tree matching — an algebra-free ground truth used by the tests
// to validate the join-based evaluator. Tuples are full-width.
func Embeddings(d *xmltree.Document, p *pattern.Pattern) []Tuple {
	var out []Tuple
	binding := make([]Item, p.Size())

	// nodeMatches checks label and value predicate.
	nodeMatches := func(pn *pattern.Node, n *xmltree.Node) bool {
		if word, isWord := strings.CutPrefix(pn.Label, "~"); isWord {
			if !n.MatchesWord(word) {
				return false
			}
		} else if pn.Label == "*" {
			if n.Kind != xmltree.Element {
				return false
			}
		} else if n.Label != pn.Label {
			return false
		}
		if pn.HasPred && n.StringValue() != pn.PredVal {
			return false
		}
		return true
	}

	// candidates lists document nodes reachable from base via the edge kind.
	candidates := func(base *xmltree.Node, desc bool) []*xmltree.Node {
		if !desc {
			return base.Children
		}
		var cs []*xmltree.Node
		xmltree.Walk(base, func(n *xmltree.Node) bool {
			if n != base {
				cs = append(cs, n)
			}
			return true
		})
		return cs
	}

	// Depth-first assignment over pattern preorder.
	var rec func(pi int)
	rec = func(pi int) {
		if pi == p.Size() {
			items := make([]Item, p.Size())
			copy(items, binding)
			out = append(out, Tuple{Items: items, Count: 1})
			return
		}
		pn := p.Nodes[pi]
		var cands []*xmltree.Node
		if pi == 0 {
			if !pn.Desc {
				cands = []*xmltree.Node{d.Root}
			} else {
				xmltree.Walk(d.Root, func(n *xmltree.Node) bool {
					cands = append(cands, n)
					return true
				})
			}
		} else {
			parentItem := binding[p.ParentIndex(pi)]
			cands = candidates(parentItem.Node, pn.Desc)
		}
		for _, n := range cands {
			if !nodeMatches(pn, n) {
				continue
			}
			binding[pi] = Item{ID: n.ID, Node: n}
			rec(pi + 1)
		}
	}
	rec(0)
	sort.Slice(out, func(i, j int) bool { return compareTuples(out[i], out[j]) < 0 })
	return out
}

func compareTuples(a, b Tuple) int {
	for i := range a.Items {
		if c := a.Items[i].ID.Compare(b.Items[i].ID); c != 0 {
			return c
		}
	}
	return 0
}

// SortTuples orders full-width tuples by their bindings' document order.
func SortTuples(tuples []Tuple) {
	sort.Slice(tuples, func(i, j int) bool { return compareTuples(tuples[i], tuples[j]) < 0 })
}
