package algebra

import (
	"math/rand"
	"strings"
	"testing"

	"xivm/internal/dewey"
	"xivm/internal/pattern"
	"xivm/internal/xmltree"
)

func mustDoc(t *testing.T, s string) *xmltree.Document {
	t.Helper()
	d, err := xmltree.ParseString(s)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// fig12Doc is the document of the paper's Figure 12.
const fig12Doc = `<a><c><b>1</b><b>2</b></c><f><c><b>3</b></c><b>4</b></f></a>`

func TestEvalPatternFig12(t *testing.T) {
	// View v2 = //a{ID}[//c{ID}]//b{ID} over Figure 12 must yield the 8
	// tuples of the paper's table.
	d := mustDoc(t, fig12Doc)
	p := pattern.MustParse(`//a{ID}[//c{ID}]//b{ID}`)
	rows := Materialize(d, p)
	if len(rows) != 8 {
		t.Fatalf("got %d rows, want 8", len(rows))
	}
	for _, r := range rows {
		if r.Count != 1 {
			t.Fatalf("unexpected count %d", r.Count)
		}
		if len(r.Entries) != 3 {
			t.Fatalf("entries %d", len(r.Entries))
		}
	}
}

func TestDerivationCounts(t *testing.T) {
	// //a{ID}[//b]: a has two b descendants → one tuple with count 2
	// (paper Example 4.8).
	d := mustDoc(t, `<a><c><b/></c><f><b/></f></a>`)
	p := pattern.MustParse(`//a{ID}[//b]`)
	rows := Materialize(d, p)
	if len(rows) != 1 || rows[0].Count != 2 {
		t.Fatalf("rows = %+v", rows)
	}
}

func TestValuePredicate(t *testing.T) {
	d := mustDoc(t, `<r><a>5<b/></a><a>3<b/></a></r>`)
	p := pattern.MustParse(`//a{ID}[val="5"]//b{ID}`)
	// StringValue of <a>5<b/></a> is "5".
	rows := Materialize(d, p)
	if len(rows) != 1 {
		t.Fatalf("rows = %+v", rows)
	}
}

func TestValContMaterialization(t *testing.T) {
	d := mustDoc(t, `<r><a x="1">hi<b>there</b></a></r>`)
	p := pattern.MustParse(`//a{ID,val,cont}`)
	rows := Materialize(d, p)
	if len(rows) != 1 {
		t.Fatalf("rows = %+v", rows)
	}
	e := rows[0].Entries[0]
	if e.Val != "hithere" {
		t.Fatalf("val = %q", e.Val)
	}
	if !strings.Contains(e.Cont, `<a x="1">hi<b>there</b></a>`) {
		t.Fatalf("cont = %q", e.Cont)
	}
}

func TestAttributePatternNodes(t *testing.T) {
	d := mustDoc(t, `<site><person id="p0"><name>A</name></person><person><name>B</name></person></site>`)
	p := pattern.MustParse(`//person{ID}[/@id]/name{ID,val}`)
	rows := Materialize(d, p)
	if len(rows) != 1 || rows[0].Entries[1].Val != "A" {
		t.Fatalf("rows = %+v", rows)
	}
}

func TestWildcardPatternNode(t *testing.T) {
	d := mustDoc(t, `<r><x><item/></x><y><item/></y><item/></r>`)
	p := pattern.MustParse(`//r{ID}/*/item{ID}`)
	rows := Materialize(d, p)
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
}

func TestStructuralJoinMatchesNestedLoop(t *testing.T) {
	d := mustDoc(t, fig12Doc)
	p := pattern.MustParse(`//a{ID}[//c{ID}]//b{ID}`)
	in := DocInputs(d, p)
	fast := EvalPattern(p, in, StructuralJoin)
	slow := EvalPattern(p, in, NestedLoopStructuralJoin)
	SortTuples(fast)
	SortTuples(slow)
	if len(fast) != len(slow) {
		t.Fatalf("sizes differ: %d vs %d", len(fast), len(slow))
	}
	for i := range fast {
		if compareTuples(fast[i], slow[i]) != 0 || fast[i].Count != slow[i].Count {
			t.Fatalf("tuple %d differs", i)
		}
	}
}

// randomDoc builds a random small document over labels a..d with text.
func randomDoc(rng *rand.Rand) *xmltree.Document {
	labels := []string{"a", "b", "c", "d"}
	var build func(depth int) string
	build = func(depth int) string {
		l := labels[rng.Intn(len(labels))]
		var sb strings.Builder
		sb.WriteString("<" + l + ">")
		if rng.Intn(3) == 0 {
			sb.WriteString([]string{"5", "3", "x"}[rng.Intn(3)])
		}
		if depth < 4 {
			for i := 0; i < rng.Intn(3); i++ {
				sb.WriteString(build(depth + 1))
			}
		}
		sb.WriteString("</" + l + ">")
		return sb.String()
	}
	doc := "<r>" + build(1) + build(1) + build(1) + "</r>"
	d, err := xmltree.ParseString(doc)
	if err != nil {
		panic(err)
	}
	return d
}

func randomPattern(rng *rand.Rand) *pattern.Pattern {
	labels := []string{"a", "b", "c", "d", "*"}
	var build func(depth int) *pattern.Node
	build = func(depth int) *pattern.Node {
		n := &pattern.Node{
			Label: labels[rng.Intn(len(labels))],
			Desc:  rng.Intn(2) == 0,
			Store: pattern.StoreID,
		}
		if rng.Intn(4) == 0 {
			n.HasPred = true
			n.PredVal = "5"
		}
		if depth < 3 {
			for i := 0; i < rng.Intn(3); i++ {
				n.Children = append(n.Children, build(depth+1))
			}
		}
		return n
	}
	root := build(1)
	root.Desc = true
	return pattern.MustNew(root)
}

// TestAlgebraEqualsEmbeddings is the core semantic property: the join-based
// evaluator agrees with direct embedding enumeration on random documents
// and patterns, including derivation counts.
func TestAlgebraEqualsEmbeddings(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		d := randomDoc(rng)
		p := randomPattern(rng)
		alg := EvalPattern(p, DocInputs(d, p), nil)
		emb := Embeddings(d, p)
		SortTuples(alg)
		if len(alg) != len(emb) {
			t.Fatalf("trial %d: algebra %d vs embeddings %d for %s over %s",
				trial, len(alg), len(emb), p, d)
		}
		for i := range alg {
			if compareTuples(alg[i], emb[i]) != 0 {
				t.Fatalf("trial %d: tuple %d differs for %s", trial, i, p)
			}
		}
	}
}

func TestEvalForestAndAttach(t *testing.T) {
	// Split //a[//b//c]//d into block {a} and forest {b,c},{d}; attaching
	// must reproduce full evaluation.
	d := mustDoc(t, `<a><b><c/></b><d/><b><c/><c/></b></a>`)
	p := pattern.MustParse(`//a{ID}[//b{ID}//c{ID}]//d{ID}`)
	in := DocInputs(d, p)

	full := EvalPattern(p, in, nil)

	block := EvalSubPattern(p, 1, in, nil) // {a}
	deltaMask := p.FullMask() &^ 1
	forest, roots := EvalForest(p, deltaMask, in, nil)
	if len(forest) != 2 || roots[0] != 1 || roots[1] != 3 {
		t.Fatalf("forest roots = %v", roots)
	}
	joined := AttachForest(p, block, forest, roots, nil)
	tuples := NormalizeColumns(p, joined)
	SortTuples(tuples)
	SortTuples(full)
	if len(tuples) != len(full) {
		t.Fatalf("attach %d vs full %d", len(tuples), len(full))
	}
	for i := range tuples {
		if compareTuples(tuples[i], full[i]) != 0 {
			t.Fatalf("tuple %d differs", i)
		}
	}
}

func TestProjectBlockPartial(t *testing.T) {
	d := mustDoc(t, fig12Doc)
	p := pattern.MustParse(`//a{ID}[//c{ID}]//b{ID}`)
	b := EvalSubPattern(p, 1|1<<1, DocInputs(d, p), nil) // a, c
	rows := ProjectBlock(p, b, []int{0, 1}, d)
	if len(rows) != 2 {
		t.Fatalf("rows = %+v", rows)
	}
}

func TestFilterWithoutNodeResolvesThroughDoc(t *testing.T) {
	d := mustDoc(t, `<r><a>5</a><a>3</a></r>`)
	p := pattern.MustParse(`//a{ID}[val="5"]`)
	items := DocItems(d, "a")
	for i := range items {
		items[i].Node = nil // simulate standalone items
	}
	got := Filter(items, p.Nodes[0], d)
	if len(got) != 1 {
		t.Fatalf("filtered %d", len(got))
	}
}

func TestPathFilterItems(t *testing.T) {
	d := mustDoc(t, fig12Doc)
	items := DocItems(d, "b")
	// b nodes under c: a/c/b, a/c/b, a/f/c/b → 3; a/f/b is not.
	steps := []dewey.PathStep{{Label: "c", Desc: true}, {Label: "b", Desc: true}}
	got := PathFilterItems(items, steps)
	if len(got) != 3 {
		t.Fatalf("PathFilter //c//b = %d", len(got))
	}
}

func TestPathNavigateItems(t *testing.T) {
	d := mustDoc(t, fig12Doc)
	items := DocItems(d, "b")
	parents := PathNavigateItems(items)
	if len(parents) != len(items) {
		t.Fatalf("parents %d", len(parents))
	}
	for i, p := range parents {
		if !p.ID.IsParentOf(items[i].ID) {
			t.Fatalf("PathNavigate wrong at %d", i)
		}
	}
}
