// Package algebra implements the paper's logical algebra and its physical
// operators: canonical-relation scans, selections, projections, duplicate
// elimination with derivation counts, sorts, and Dewey-based structural
// joins. Tuples range over tree-pattern nodes; blocks are intermediate
// relations whose columns are identified by pattern-node indexes, which is
// what lets snowcap materializations be reused as pre-joined inputs.
package algebra

import (
	"sort"
	"strings"

	"xivm/internal/dewey"
	"xivm/internal/pattern"
	"xivm/internal/xmltree"
)

// Item is one binding of a pattern node: the matched XML node's structural
// ID plus (when available) the live node, used to evaluate value predicates
// and to materialize val/cont on projection. Node may be nil for standalone
// data (e.g. tuples read back from a snapshot); ID is always set.
type Item struct {
	ID   dewey.ID
	Node *xmltree.Node
}

// Tuple is a row over some set of pattern nodes, with a derivation count.
type Tuple struct {
	Items []Item
	Count int
}

// Block is an intermediate relation: Cols[i] names the pattern-node index
// bound by column i of every tuple.
type Block struct {
	Cols   []int
	Tuples []Tuple
}

// ColOf returns the column position binding pattern node idx, or -1.
func (b Block) ColOf(idx int) int {
	for i, c := range b.Cols {
		if c == idx {
			return i
		}
	}
	return -1
}

// SingleColumn builds a one-column block over pattern node idx from items,
// each with derivation count 1.
func SingleColumn(idx int, items []Item) Block {
	b := Block{Cols: []int{idx}}
	b.Tuples = make([]Tuple, len(items))
	for i, it := range items {
		b.Tuples[i] = Tuple{Items: []Item{it}, Count: 1}
	}
	return b
}

// Filter applies the pattern node's value predicate (if any) to items — the
// σ of the paper's algebraic view form. Items lacking a live node resolve
// through doc; unresolvable items are dropped when a predicate is present.
func Filter(items []Item, pn *pattern.Node, doc *xmltree.Document) []Item {
	if !pn.HasPred {
		return items
	}
	out := make([]Item, 0, len(items))
	for _, it := range items {
		n := it.Node
		if n == nil && doc != nil {
			n = doc.NodeByID(it.ID)
		}
		if n != nil && n.StringValue() == pn.PredVal {
			out = append(out, it)
		}
	}
	return out
}

// Row is a materialized view tuple: one entry per stored pattern node, in
// ascending pattern-node-index order, standalone (no live node pointers).
type Row struct {
	Entries []RowEntry
	Count   int
}

// RowEntry is the stored image of one pattern node binding.
type RowEntry struct {
	NodeIdx int // pattern node index
	ID      dewey.ID
	Val     string // filled iff the node stores val
	Cont    string // filled iff the node stores cont
}

// Key returns the row's identity: the concatenated ID keys of its entries.
// Two embeddings that agree on all stored nodes produce the same key and
// their derivation counts accumulate. The IDs' cached keys make this a
// single exact-size allocation; dedup loops that only probe should use
// AppendKey with a reused buffer instead.
func (r Row) Key() string {
	n := len(r.Entries)
	for _, e := range r.Entries {
		n += len(e.ID.Key())
	}
	var b strings.Builder
	b.Grow(n)
	for _, e := range r.Entries {
		b.WriteString(e.ID.Key())
		b.WriteByte(0xFF)
	}
	return b.String()
}

// AppendKey appends the row's identity key to buf and returns the extended
// slice, letting hot dedup paths build map-probe keys without allocating.
func (r Row) AppendKey(buf []byte) []byte {
	for _, e := range r.Entries {
		buf = append(buf, e.ID.Key()...)
		buf = append(buf, 0xFF)
	}
	return buf
}

// ProjectStored projects full-width tuples onto the pattern's stored nodes,
// materializing val/cont where annotated, eliminating duplicates and
// summing derivation counts (the π·δ of the paper's algebraic semantics).
// The result is sorted in the order dictated by the IDs of all stored
// bindings (the paper's final s operator).
func ProjectStored(p *pattern.Pattern, tuples []Tuple, doc *xmltree.Document) []Row {
	stored := p.StoredIndexes()
	return ProjectOnto(p, stored, tuples, doc)
}

// ProjectOnto projects full- or partial-width tuples onto the given pattern
// node indexes. The input tuples' blocks must bind every requested index.
func ProjectOnto(p *pattern.Pattern, indexes []int, tuples []Tuple, doc *xmltree.Document) []Row {
	b := Block{Cols: make([]int, p.Size())}
	for i := range b.Cols {
		b.Cols[i] = i
	}
	b.Tuples = tuples
	return ProjectBlock(p, b, indexes, doc)
}

// ProjectBlock projects a block onto the given pattern node indexes,
// deduplicating and count-summing.
func ProjectBlock(p *pattern.Pattern, b Block, indexes []int, doc *xmltree.Document) []Row {
	return projectBlock(p, b, indexes, doc, ProjectCounters{})
}

func projectBlock(p *pattern.Pattern, b Block, indexes []int, doc *xmltree.Document, pc ProjectCounters) []Row {
	cols := make([]int, len(indexes))
	for i, idx := range indexes {
		c := b.ColOf(idx)
		if c < 0 {
			panic("algebra: projection onto unbound pattern node")
		}
		cols[i] = c
	}
	byKey := make(map[string]int, len(b.Tuples))
	var rows []Row
	var keyBuf []byte
	for _, t := range b.Tuples {
		row := Row{Entries: make([]RowEntry, len(indexes)), Count: t.Count}
		for i, idx := range indexes {
			it := t.Items[cols[i]]
			e := RowEntry{NodeIdx: idx, ID: it.ID}
			pn := p.Nodes[idx]
			if pn.Store.Has(pattern.StoreVal) || pn.Store.Has(pattern.StoreCont) {
				n := it.Node
				if n == nil && doc != nil {
					n = doc.NodeByID(it.ID)
				}
				if n != nil {
					if pn.Store.Has(pattern.StoreVal) {
						e.Val = n.StringValue()
					}
					if pn.Store.Has(pattern.StoreCont) {
						e.Cont = n.Content()
					}
				}
			}
			row.Entries[i] = e
		}
		keyBuf = row.AppendKey(keyBuf[:0])
		if at, ok := byKey[string(keyBuf)]; ok {
			rows[at].Count += row.Count
			pc.Merged.Inc()
		} else {
			byKey[string(keyBuf)] = len(rows)
			rows = append(rows, row)
		}
	}
	pc.Rows.Add(int64(len(rows)))
	SortRows(rows)
	return rows
}

// SortRows orders rows by the document order of their bindings, column by
// column.
func SortRows(rows []Row) {
	sort.Slice(rows, func(i, j int) bool {
		return CompareRows(rows[i], rows[j]) < 0
	})
}

// CompareRows orders rows entry-wise by ID document order.
func CompareRows(a, b Row) int {
	n := len(a.Entries)
	if len(b.Entries) < n {
		n = len(b.Entries)
	}
	for i := 0; i < n; i++ {
		if c := a.Entries[i].ID.Compare(b.Entries[i].ID); c != 0 {
			return c
		}
	}
	return len(a.Entries) - len(b.Entries)
}
