package algebra

import (
	"xivm/internal/dewey"
)

// StructuralJoin joins left (binding the structural parent/ancestor at
// pattern node lIdx) with right (binding the child/descendant at rIdx),
// using the Dewey-based structural join: for each right tuple, candidate
// ancestors are read directly off the right binding's ID prefixes and
// located in a hash of the left column — no document access. desc selects
// ancestor-descendant (≺≺) vs parent-child (≺). Derivation counts multiply.
func StructuralJoin(left Block, lIdx int, right Block, rIdx int, desc bool) Block {
	lCol := left.ColOf(lIdx)
	rCol := right.ColOf(rIdx)
	if lCol < 0 || rCol < 0 {
		panic("algebra: StructuralJoin on unbound column")
	}
	out := Block{Cols: append(append([]int{}, left.Cols...), right.Cols...)}
	if len(left.Tuples) == 0 || len(right.Tuples) == 0 {
		return out
	}
	index := make(map[string][]int, len(left.Tuples))
	for i, t := range left.Tuples {
		k := t.Items[lCol].ID.Key()
		index[k] = append(index[k], i)
	}
	emit := func(li int, rt Tuple) {
		lt := left.Tuples[li]
		items := make([]Item, 0, len(lt.Items)+len(rt.Items))
		items = append(items, lt.Items...)
		items = append(items, rt.Items...)
		out.Tuples = append(out.Tuples, Tuple{Items: items, Count: lt.Count * rt.Count})
	}
	for _, rt := range right.Tuples {
		id := rt.Items[rCol].ID
		if desc {
			// Candidate ancestors are the frame-aligned prefixes of the
			// right binding's cached key: probe each level's prefix directly,
			// no ancestor ID construction and no key allocation.
			for lvl := 1; lvl < id.Level(); lvl++ {
				for _, li := range index[id.KeyAt(lvl)] {
					emit(li, rt)
				}
			}
		} else {
			if id.Level() <= 1 {
				continue
			}
			for _, li := range index[id.KeyAt(id.Level()-1)] {
				emit(li, rt)
			}
		}
	}
	return out
}

// NestedLoopStructuralJoin is the naive O(|L|·|R|) comparison join kept as
// an ablation baseline for StructuralJoin.
func NestedLoopStructuralJoin(left Block, lIdx int, right Block, rIdx int, desc bool) Block {
	lCol := left.ColOf(lIdx)
	rCol := right.ColOf(rIdx)
	if lCol < 0 || rCol < 0 {
		panic("algebra: NestedLoopStructuralJoin on unbound column")
	}
	out := Block{Cols: append(append([]int{}, left.Cols...), right.Cols...)}
	for _, lt := range left.Tuples {
		lid := lt.Items[lCol].ID
		for _, rt := range right.Tuples {
			rid := rt.Items[rCol].ID
			ok := false
			if desc {
				ok = lid.IsAncestorOf(rid)
			} else {
				ok = lid.IsParentOf(rid)
			}
			if !ok {
				continue
			}
			items := make([]Item, 0, len(lt.Items)+len(rt.Items))
			items = append(items, lt.Items...)
			items = append(items, rt.Items...)
			out.Tuples = append(out.Tuples, Tuple{Items: items, Count: lt.Count * rt.Count})
		}
	}
	return out
}

// PathFilterItems keeps only the items whose label path satisfies the given
// linear path condition — the Path Filter physical operator.
func PathFilterItems(items []Item, steps []dewey.PathStep) []Item {
	out := items[:0:0]
	for _, it := range items {
		if it.ID.MatchesPath(steps) {
			out = append(out, it)
		}
	}
	return out
}

// PathNavigateItems maps each item to its parent ID — the Path Navigate
// physical operator (IDs only; no document access).
func PathNavigateItems(items []Item) []Item {
	out := make([]Item, 0, len(items))
	for _, it := range items {
		p := it.ID.Parent()
		if !p.IsNull() {
			out = append(out, Item{ID: p})
		}
	}
	return out
}
