package algebra

import (
	"xivm/internal/obs"
	"xivm/internal/pattern"
	"xivm/internal/xmltree"
)

// JoinCounters are the physical-join observability hooks: tuples scanned
// (both input sides) and tuples emitted per join invocation. Nil fields
// are no-op sinks, so a zero JoinCounters is valid.
type JoinCounters struct {
	Calls         *obs.Counter
	TuplesScanned *obs.Counter
	TuplesEmitted *obs.Counter
}

// NewJoinCounters resolves the standard join counter names in m.
func NewJoinCounters(m *obs.Metrics) JoinCounters {
	return JoinCounters{
		Calls:         m.Counter("algebra.join.calls"),
		TuplesScanned: m.Counter("algebra.join.tuples_scanned"),
		TuplesEmitted: m.Counter("algebra.join.tuples_emitted"),
	}
}

// InstrumentJoin wraps a physical join so every invocation records its
// input and output cardinalities. The wrapper adds two atomic increments
// per join — negligible next to the join itself.
func InstrumentJoin(join JoinFunc, c JoinCounters) JoinFunc {
	if join == nil {
		join = StructuralJoin
	}
	return func(left Block, lIdx int, right Block, rIdx int, desc bool) Block {
		c.Calls.Inc()
		c.TuplesScanned.Add(int64(len(left.Tuples) + len(right.Tuples)))
		out := join(left, lIdx, right, rIdx, desc)
		c.TuplesEmitted.Add(int64(len(out.Tuples)))
		return out
	}
}

// ProjectCounters are the projection observability hooks: rows emitted and
// duplicate-elimination merges (tuples folded into an existing row's
// derivation count).
type ProjectCounters struct {
	Rows   *obs.Counter
	Merged *obs.Counter
}

// NewProjectCounters resolves the standard projection counter names in m.
func NewProjectCounters(m *obs.Metrics) ProjectCounters {
	return ProjectCounters{
		Rows:   m.Counter("algebra.project.rows"),
		Merged: m.Counter("algebra.project.merged"),
	}
}

// ProjectBlockCounted is ProjectBlock with dup-elim accounting: c.Merged
// counts input tuples that collapsed into an already-emitted row, c.Rows
// the distinct rows returned.
func ProjectBlockCounted(p *pattern.Pattern, b Block, indexes []int, doc *xmltree.Document, c ProjectCounters) []Row {
	return projectBlock(p, b, indexes, doc, c)
}
