package algebra

import (
	"math/rand"
	"testing"

	"xivm/internal/pattern"
)

func TestHolisticSimpleChain(t *testing.T) {
	d := mustDoc(t, fig12Doc)
	p := pattern.MustParse(`//a{ID}//c{ID}//b{ID}`)
	in := DocInputs(d, p)
	got := EvalPatternHolistic(p, in)
	want := EvalPattern(p, in, nil)
	SortTuples(got)
	SortTuples(want)
	if len(got) != len(want) {
		t.Fatalf("holistic %d vs binary %d", len(got), len(want))
	}
	for i := range got {
		if compareTuples(got[i], want[i]) != 0 {
			t.Fatalf("tuple %d differs", i)
		}
	}
}

func TestHolisticBranching(t *testing.T) {
	d := mustDoc(t, `<a><b><c/><d/></b><b><c/></b><d/></a>`)
	p := pattern.MustParse(`//a{ID}[//c{ID}]//d{ID}`)
	in := DocInputs(d, p)
	got := EvalPatternHolistic(p, in)
	want := EvalPattern(p, in, nil)
	SortTuples(got)
	SortTuples(want)
	if len(got) != len(want) {
		t.Fatalf("holistic %d vs binary %d", len(got), len(want))
	}
}

func TestHolisticChildEdges(t *testing.T) {
	d := mustDoc(t, `<a><b><a><b/></a></b></a>`)
	p := pattern.MustParse(`//a{ID}/b{ID}`)
	in := DocInputs(d, p)
	got := EvalPatternHolistic(p, in)
	want := EvalPattern(p, in, nil)
	if len(got) != len(want) {
		t.Fatalf("holistic %d vs binary %d", len(got), len(want))
	}
}

// TestHolisticMatchesBinaryRandom is the differential property over random
// documents and patterns.
func TestHolisticMatchesBinaryRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 300; trial++ {
		d := randomDoc(rng)
		p := randomPattern(rng)
		in := DocInputs(d, p)
		got := EvalPatternHolistic(p, in)
		want := EvalPattern(p, in, nil)
		SortTuples(got)
		SortTuples(want)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %s: holistic %d vs binary %d over %s",
				trial, p, len(got), len(want), d)
		}
		for i := range got {
			if compareTuples(got[i], want[i]) != 0 {
				t.Fatalf("trial %d: tuple %d differs for %s", trial, i, p)
			}
		}
	}
}

func TestHolisticEmptyInput(t *testing.T) {
	d := mustDoc(t, `<a><b/></a>`)
	p := pattern.MustParse(`//a{ID}//zzz{ID}`)
	if got := EvalPatternHolistic(p, DocInputs(d, p)); len(got) != 0 {
		t.Fatalf("expected no tuples, got %d", len(got))
	}
}
