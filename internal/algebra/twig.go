package algebra

import (
	"sort"

	"xivm/internal/dewey"
	"xivm/internal/pattern"
)

// This file implements a holistic twig join in the PathStack/TwigStack
// lineage (Bruno, Koudas, Srivastava 2002), the primitive the paper's
// complexity analysis leans on ("holistic twig joins allow evaluating a
// term in time proportional to the cumulated size of its inputs"). Instead
// of region encodings it uses Compact Dynamic Dewey IDs: ancestorship is a
// prefix test and document order a lexicographic comparison.
//
// Each root-to-leaf path of the pattern is evaluated by one streaming
// PathStack pass: a single scan of the path's inputs maintaining one stack
// per node, entries chained to their lowest ancestor in the parent stack;
// compact stack encodings represent many path solutions at once and are
// enumerated when leaves arrive. The per-path solutions are then
// merge-joined on shared prefix nodes into full twig matches.

// EvalPatternHolistic evaluates the whole pattern with the holistic path
// joins, returning full-width tuples equal to EvalPattern's (up to order).
func EvalPatternHolistic(p *pattern.Pattern, in Inputs) []Tuple {
	t := &twig{p: p}
	for i, n := range p.Nodes {
		if len(n.Children) == 0 {
			var chain []int
			for c := i; c >= 0; c = p.ParentIndex(c) {
				chain = append([]int{c}, chain...)
			}
			t.chains = append(t.chains, chain)
			t.paths = append(t.paths, pathStack(p, chain, in))
		}
	}
	return t.merge()
}

type twig struct {
	p      *pattern.Pattern
	chains [][]int    // pattern node indexes along each leaf path, root first
	paths  [][][]Item // solutions per leaf path, root-to-leaf order
}

type stackEntry struct {
	it     Item
	parent int // index into the parent node's stack at push time; -1 at root
}

// pathStack runs one streaming pass over the chain's inputs and returns all
// root-to-leaf binding chains, with parent-child (/) edges enforced.
func pathStack(p *pattern.Pattern, chain []int, in Inputs) [][]Item {
	k := len(chain)
	streams := make([][]Item, k)
	pos := make([]int, k)
	stacks := make([][]stackEntry, k)
	for level, node := range chain {
		items := append([]Item{}, in[node]...)
		sort.Slice(items, func(a, b int) bool { return items[a].ID.Compare(items[b].ID) < 0 })
		streams[level] = items
	}
	var out [][]Item

	cur := func(level int) (Item, bool) {
		if pos[level] < len(streams[level]) {
			return streams[level][pos[level]], true
		}
		return Item{}, false
	}
	clean := func(level int, id dewey.ID) {
		// Keep ancestor-OR-SELF entries: with overlapping streams (e.g. a
		// wildcard node) the same document node can arrive on two levels,
		// and popping its own earlier push would lose valid state. Proper-
		// ancestorship for edges is enforced at expansion time.
		s := stacks[level]
		for len(s) > 0 && !s[len(s)-1].it.ID.IsAncestorOrSelf(id) {
			s = s[:len(s)-1]
		}
		stacks[level] = s
	}

	for {
		// Pick the non-exhausted level with the smallest current item.
		minLevel := -1
		var minItem Item
		for l := 0; l < k; l++ {
			if it, ok := cur(l); ok {
				if minLevel < 0 || it.ID.Compare(minItem.ID) < 0 {
					minLevel, minItem = l, it
				}
			}
		}
		if minLevel < 0 {
			break
		}
		if _, leafAlive := cur(k - 1); !leafAlive {
			break // no further leaf arrivals: no more solutions
		}
		// Pop entries that cannot be ancestors of anything at or after
		// minItem in document order.
		for l := 0; l < k; l++ {
			clean(l, minItem.ID)
		}
		if minLevel == 0 || len(stacks[minLevel-1]) > 0 {
			parentPos := -1
			if minLevel > 0 {
				parentPos = len(stacks[minLevel-1]) - 1
			}
			stacks[minLevel] = append(stacks[minLevel], stackEntry{it: minItem, parent: parentPos})
			if minLevel == k-1 {
				out = append(out, expandLeaf(p, chain, stacks)...)
				stacks[k-1] = stacks[k-1][:len(stacks[k-1])-1]
			}
		}
		pos[minLevel]++
	}
	return out
}

// expandLeaf enumerates the root-to-leaf solutions encoded by the stacks
// for the just-pushed leaf entry, enforcing / edges.
func expandLeaf(p *pattern.Pattern, chain []int, stacks [][]stackEntry) [][]Item {
	k := len(chain)
	var out [][]Item
	// acc collects items leaf-to-root.
	var rec func(level, maxPos int, acc []Item)
	rec = func(level, maxPos int, acc []Item) {
		s := stacks[k-1-level]
		for posIdx := 0; posIdx <= maxPos && posIdx < len(s); posIdx++ {
			e := s[posIdx]
			// Edge check against the previously accumulated (lower) item.
			if len(acc) > 0 {
				lower := acc[len(acc)-1]
				lowerNode := p.Nodes[chain[k-len(acc)]]
				if !lowerNode.Desc && !e.it.ID.IsParentOf(lower.ID) {
					continue
				}
				if lowerNode.Desc && !e.it.ID.IsAncestorOf(lower.ID) {
					continue
				}
			}
			acc2 := append(append([]Item{}, acc...), e.it)
			if level == k-1 {
				sol := make([]Item, k)
				for i, it := range acc2 {
					sol[k-1-i] = it
				}
				out = append(out, sol)
				continue
			}
			rec(level+1, e.parent, acc2)
		}
	}
	leafStack := stacks[k-1]
	if k == 1 {
		return [][]Item{{leafStack[len(leafStack)-1].it}}
	}
	leafEntry := leafStack[len(leafStack)-1]
	rec(1, leafEntry.parent, []Item{leafEntry.it})
	return out
}

// merge joins the per-leaf-path solutions on shared prefix nodes into
// full-width tuples.
func (t *twig) merge() []Tuple {
	if len(t.paths) == 0 {
		return nil
	}
	cols := append([]int{}, t.chains[0]...)
	tuples := make([][]Item, 0, len(t.paths[0]))
	tuples = append(tuples, t.paths[0]...)
	for li := 1; li < len(t.paths); li++ {
		chain := t.chains[li]
		shared := make([]int, 0, len(chain))
		fresh := make([]int, 0, len(chain))
		for _, c := range chain {
			if indexOf(cols, c) >= 0 {
				shared = append(shared, c)
			} else {
				fresh = append(fresh, c)
			}
		}
		// Composite join keys are assembled in one reused []byte buffer from
		// the IDs' cached keys (positions precomputed once per path, not per
		// tuple); a string is only materialized for map inserts.
		lpos := positionsOf(cols, shared)
		rpos := positionsOf(chain, shared)
		index := make(map[string][]int, len(tuples))
		var buf []byte
		for i, tp := range tuples {
			buf = appendItemsKey(buf[:0], tp, lpos)
			k := string(buf)
			index[k] = append(index[k], i)
		}
		var next [][]Item
		for _, sol := range t.paths[li] {
			buf = appendItemsKey(buf[:0], sol, rpos)
			for _, ti := range index[string(buf)] {
				merged := append(append([]Item{}, tuples[ti]...), pickChain(chain, sol, fresh)...)
				next = append(next, merged)
			}
		}
		cols = append(cols, fresh...)
		tuples = next
	}
	// Normalize to preorder columns.
	out := make([]Tuple, 0, len(tuples))
	perm := make([]int, t.p.Size())
	for pos, c := range cols {
		perm[c] = pos
	}
	for _, tp := range tuples {
		items := make([]Item, t.p.Size())
		for c := 0; c < t.p.Size(); c++ {
			items[c] = tp[perm[c]]
		}
		out = append(out, Tuple{Items: items, Count: 1})
	}
	return out
}

func indexOf(cols []int, c int) int {
	for i, x := range cols {
		if x == c {
			return i
		}
	}
	return -1
}

// positionsOf maps each wanted pattern-node index to its column position.
func positionsOf(cols []int, wanted []int) []int {
	out := make([]int, len(wanted))
	for i, c := range wanted {
		out[i] = indexOf(cols, c)
	}
	return out
}

// appendItemsKey appends the composite key of the items at the given
// positions: cached ID keys joined by a separator no valid key starts with.
func appendItemsKey(buf []byte, items []Item, pos []int) []byte {
	for _, p := range pos {
		buf = append(buf, items[p].ID.Key()...)
		buf = append(buf, 0xff)
	}
	return buf
}

func pickChain(chain []int, sol []Item, fresh []int) []Item {
	out := make([]Item, 0, len(fresh))
	for _, c := range fresh {
		out = append(out, sol[indexOf(chain, c)])
	}
	return out
}
