package obs

import (
	"sort"
	"sync"
	"time"
)

// Tracer receives span start/finish events from the engine: one span per
// statement, per propagation phase, and per view in a fan-out.
// Implementations must be safe for concurrent use — under parallel
// propagation, per-view spans start and finish from different goroutines.
type Tracer interface {
	// StartSpan begins a span with a slash-separated name (e.g.
	// "apply/view:Q1/execute_update") and returns its handle.
	StartSpan(name string) Span
}

// Span is one open trace region; End closes it.
type Span interface {
	End()
}

// StartSpan starts a span on a possibly nil tracer, returning a no-op end
// function when the tracer is absent — the engine's nil-safe entry point.
func StartSpan(t Tracer, name string) func() {
	if t == nil {
		return func() {}
	}
	sp := t.StartSpan(name)
	return sp.End
}

// SpanRecord is one finished span as collected by CollectTracer.
type SpanRecord struct {
	Name     string
	Start    time.Time
	Duration time.Duration
}

// CollectTracer is a Tracer that records finished spans in memory — the
// reference implementation, used by tests and the CLI's trace dump.
type CollectTracer struct {
	mu    sync.Mutex
	spans []SpanRecord
}

type collectSpan struct {
	t     *CollectTracer
	name  string
	start time.Time
}

// StartSpan implements Tracer.
func (c *CollectTracer) StartSpan(name string) Span {
	return &collectSpan{t: c, name: name, start: time.Now()}
}

func (s *collectSpan) End() {
	rec := SpanRecord{Name: s.name, Start: s.start, Duration: time.Since(s.start)}
	s.t.mu.Lock()
	s.t.spans = append(s.t.spans, rec)
	s.t.mu.Unlock()
}

// Spans returns the finished spans sorted by start time.
func (c *CollectTracer) Spans() []SpanRecord {
	c.mu.Lock()
	out := make([]SpanRecord, len(c.spans))
	copy(out, c.spans)
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// Reset discards collected spans.
func (c *CollectTracer) Reset() {
	c.mu.Lock()
	c.spans = nil
	c.mu.Unlock()
}

// TracerFunc adapts a function to the Tracer interface: the function is
// called at span start and its return value at span end.
type TracerFunc func(name string) func()

type funcSpan func()

func (f funcSpan) End() { f() }

// StartSpan implements Tracer.
func (f TracerFunc) StartSpan(name string) Span { return funcSpan(f(name)) }
