// Package obs is the engine's zero-dependency observability layer: named
// atomic counters, fixed-bucket duration histograms, phase-keyed time
// breakdowns, and a Tracer hook interface. The propagation path
// (internal/core, internal/algebra, internal/store, internal/pulopt) is
// instrumented against it, so every experiment can also emit the counter
// profile that explains its timings — the maintenance-cost accounting that
// cost-based policies (core.PolicyCost, view-rewriting planners) need on
// live workloads.
//
// All hot-path operations (Counter.Add, Histogram.Observe) are lock-free
// and safe for concurrent use; nil receivers are no-ops, so instrumented
// code never needs to guard against a missing registry.
package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing (or explicitly reset) atomic
// counter. The zero value is ready to use; a nil *Counter is a no-op sink.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. Safe on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. Safe on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count; zero on a nil receiver.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// reset zeroes the counter (registry-internal; external users observe
// counters as monotonic).
func (c *Counter) reset() { c.v.Store(0) }

// Metrics is a registry of named counters and histograms. Names are flat,
// dot-separated strings ("core.terms.pruned.prop36"); the registry creates
// instruments on first use, so readers and writers need no coordination
// beyond the name. The zero value is NOT usable — call New.
type Metrics struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	histograms map[string]*Histogram
}

// New returns an empty metrics registry.
func New() *Metrics {
	return &Metrics{
		counters:   make(map[string]*Counter),
		histograms: make(map[string]*Histogram),
	}
}

var (
	defaultOnce sync.Once
	defaultReg  *Metrics
)

// Default returns the process-wide shared registry. Engines that are not
// given a private registry record here, which is what lets command-line
// tools dump a whole run's profile without threading a handle through
// every layer.
func Default() *Metrics {
	defaultOnce.Do(func() { defaultReg = New() })
	return defaultReg
}

// Counter returns the named counter, creating it on first use. Safe for
// concurrent use; returns nil (a no-op counter) on a nil registry.
func (m *Metrics) Counter(name string) *Counter {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.counters[name]
	if !ok {
		c = &Counter{}
		m.counters[name] = c
	}
	return c
}

// Histogram returns the named duration histogram, creating it on first
// use. Safe for concurrent use; returns nil (a no-op histogram) on a nil
// registry.
func (m *Metrics) Histogram(name string) *Histogram {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.histograms[name]
	if !ok {
		h = &Histogram{}
		m.histograms[name] = h
	}
	return h
}

// Reset zeroes every registered instrument (the names stay registered).
func (m *Metrics) Reset() {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, c := range m.counters {
		c.reset()
	}
	for _, h := range m.histograms {
		h.reset()
	}
}

// CounterSnapshot is one counter's point-in-time value.
type CounterSnapshot struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// Snapshot is a consistent point-in-time copy of a registry, ready for
// JSON serialization or diffing.
type Snapshot struct {
	Counters   []CounterSnapshot   `json:"counters"`
	Histograms []HistogramSnapshot `json:"histograms"`
}

// Snapshot copies every instrument's current value, sorted by name.
func (m *Metrics) Snapshot() Snapshot {
	var s Snapshot
	if m == nil {
		return s
	}
	m.mu.Lock()
	for name, c := range m.counters {
		s.Counters = append(s.Counters, CounterSnapshot{Name: name, Value: c.Value()})
	}
	for name, h := range m.histograms {
		s.Histograms = append(s.Histograms, h.snapshot(name))
	}
	m.mu.Unlock()
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// CounterValue returns the named counter's current value without creating
// it (zero when absent).
func (m *Metrics) CounterValue(name string) int64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if c, ok := m.counters[name]; ok {
		return c.Value()
	}
	return 0
}

// WriteJSON writes an indented JSON snapshot of the registry.
func (m *Metrics) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m.Snapshot())
}

// Time records the duration of f in the histogram. Safe on a nil receiver
// (f still runs).
func (h *Histogram) Time(f func()) {
	if h == nil {
		f()
		return
	}
	t0 := time.Now()
	f()
	h.Observe(time.Since(t0))
}
