package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	m := New()
	c := m.Counter("x")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				m.Counter("x").Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter %d", c.Value())
	}
}

func TestNilSafety(t *testing.T) {
	var m *Metrics
	m.Counter("a").Add(3)
	m.Histogram("b").Observe(time.Second)
	if m.Counter("a").Value() != 0 || m.Histogram("b").Count() != 0 {
		t.Fatal("nil registry must be a sink")
	}
	if m.CounterValue("a") != 0 {
		t.Fatal("nil registry CounterValue")
	}
	var c *Counter
	c.Inc() // must not panic
	var h *Histogram
	h.Observe(time.Second)
	ran := false
	h.Time(func() { ran = true })
	if !ran {
		t.Fatal("nil histogram Time must still run f")
	}
}

func TestHistogramBuckets(t *testing.T) {
	m := New()
	h := m.Histogram("d")
	h.Observe(500 * time.Nanosecond) // ≤1µs bucket
	h.Observe(5 * time.Millisecond)  // ≤10ms bucket
	h.Observe(time.Minute)           // overflow bucket
	if h.Count() != 3 {
		t.Fatalf("count %d", h.Count())
	}
	if h.Max() != time.Minute {
		t.Fatalf("max %v", h.Max())
	}
	want := 500*time.Nanosecond + 5*time.Millisecond + time.Minute
	if h.Sum() != want {
		t.Fatalf("sum %v", h.Sum())
	}
	snap := h.snapshot("d")
	var total int64
	overflow := false
	for _, b := range snap.Buckets {
		total += b.Count
		if b.UpperBound == 0 {
			overflow = true
		}
	}
	if total != 3 || !overflow {
		t.Fatalf("buckets %+v", snap.Buckets)
	}
}

func TestSnapshotAndJSON(t *testing.T) {
	m := New()
	m.Counter("b.two").Add(2)
	m.Counter("a.one").Add(1)
	m.Histogram("h").Observe(time.Millisecond)
	s := m.Snapshot()
	if len(s.Counters) != 2 || s.Counters[0].Name != "a.one" || s.Counters[1].Value != 2 {
		t.Fatalf("snapshot %+v", s.Counters)
	}
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Histograms) != 1 || back.Histograms[0].Count != 1 {
		t.Fatalf("json round-trip %+v", back.Histograms)
	}
	m.Reset()
	if m.CounterValue("b.two") != 0 || m.Histogram("h").Count() != 0 {
		t.Fatal("reset left state behind")
	}
}

func TestBreakdown(t *testing.T) {
	var b Breakdown // nil: Set/AddPhase must allocate
	b = b.Set(PhaseFindTargets, 5)
	b = b.AddPhase(PhaseExecuteUpdate, 7)
	b = b.AddPhase(PhaseExecuteUpdate, 3)
	other := Breakdown{PhaseComputeDelta: 10}
	b = b.Add(other)
	if b.Total() != 25 {
		t.Fatalf("total %v", b.Total())
	}
	if b.Get(PhaseExecuteUpdate) != 10 {
		t.Fatalf("exec %v", b.Get(PhaseExecuteUpdate))
	}
	c := b.Clone()
	c[PhaseFindTargets] = 99
	if b.Get(PhaseFindTargets) != 5 {
		t.Fatal("clone aliases original")
	}
	m := New()
	b.RecordInto(m, "core")
	if m.Histogram("core."+PhaseComputeDelta).Sum() != 10 {
		t.Fatal("RecordInto missed a phase")
	}
}

func TestCollectTracer(t *testing.T) {
	var tr CollectTracer
	end := StartSpan(&tr, "apply/view:Q1/execute_update")
	time.Sleep(time.Millisecond)
	end()
	spans := tr.Spans()
	if len(spans) != 1 || !strings.HasPrefix(spans[0].Name, "apply/") {
		t.Fatalf("spans %+v", spans)
	}
	if spans[0].Duration <= 0 {
		t.Fatal("span duration not measured")
	}
	tr.Reset()
	if len(tr.Spans()) != 0 {
		t.Fatal("reset kept spans")
	}
	// Nil tracer: StartSpan returns a usable no-op.
	StartSpan(nil, "x")()
	// Func adapter.
	var got string
	ft := TracerFunc(func(name string) func() { return func() { got = name } })
	StartSpan(ft, "fn")()
	if got != "fn" {
		t.Fatal("TracerFunc end not invoked")
	}
}

func TestDefaultRegistryShared(t *testing.T) {
	Default().Counter("test.default.shared").Inc()
	if Default().CounterValue("test.default.shared") == 0 {
		t.Fatal("default registry not shared")
	}
}
