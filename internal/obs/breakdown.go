package obs

import "time"

// The canonical propagation phases, named after the paper's per-phase cost
// breakdown (Section 6). These are the keys of a Breakdown and the span
// names a Tracer sees.
const (
	PhaseFindTargets   = "find_targets"   // locate target nodes (Saxon's role)
	PhaseComputeDelta  = "compute_delta"  // build the ∆+ / ∆− tables (CD+/CD−)
	PhaseGetExpression = "get_expression" // unfold + prune the update expression
	PhaseExecuteUpdate = "execute_update" // evaluate terms, apply to the view
	PhaseUpdateLattice = "update_lattice" // refresh auxiliary structures
)

// Phases lists the canonical phases in pipeline order.
var Phases = []string{
	PhaseFindTargets,
	PhaseComputeDelta,
	PhaseGetExpression,
	PhaseExecuteUpdate,
	PhaseUpdateLattice,
}

// Breakdown is a phase-keyed wall-time accounting of one propagation pass.
// It is the unifying currency of the reporting API: per-view and per-report
// timings are Breakdowns, and the legacy core.Timings struct is a thin view
// over one. A nil Breakdown reads as all-zero.
type Breakdown map[string]time.Duration

// Get returns the duration recorded for a phase (zero when absent).
func (b Breakdown) Get(phase string) time.Duration { return b[phase] }

// Set records a phase's duration, replacing any previous value, and
// returns the (possibly newly allocated) breakdown.
func (b Breakdown) Set(phase string, d time.Duration) Breakdown {
	if b == nil {
		b = make(Breakdown)
	}
	b[phase] = d
	return b
}

// AddPhase accumulates d into a phase and returns the (possibly newly
// allocated) breakdown.
func (b Breakdown) AddPhase(phase string, d time.Duration) Breakdown {
	if b == nil {
		b = make(Breakdown)
	}
	b[phase] += d
	return b
}

// Add accumulates every phase of o and returns the (possibly newly
// allocated) breakdown.
func (b Breakdown) Add(o Breakdown) Breakdown {
	for phase, d := range o {
		b = b.AddPhase(phase, d)
	}
	return b
}

// Total sums all phases.
func (b Breakdown) Total() time.Duration {
	var t time.Duration
	for _, d := range b {
		t += d
	}
	return t
}

// Clone returns an independent copy.
func (b Breakdown) Clone() Breakdown {
	if b == nil {
		return nil
	}
	out := make(Breakdown, len(b))
	for phase, d := range b {
		out[phase] = d
	}
	return out
}

// RecordInto observes every phase of the breakdown into the registry's
// per-phase histograms, named prefix + "." + phase.
func (b Breakdown) RecordInto(m *Metrics, prefix string) {
	if m == nil {
		return
	}
	for phase, d := range b {
		m.Histogram(prefix + "." + phase).Observe(d)
	}
}
