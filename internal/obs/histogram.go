package obs

import (
	"sync/atomic"
	"time"
)

// histBuckets are the fixed duration bucket upper bounds: decades from 1µs
// to 10s, with a catch-all overflow bucket. Propagation phases on the
// paper's workloads span exactly this range, so a static layout avoids any
// allocation or locking on the observe path.
var histBuckets = [...]time.Duration{
	time.Microsecond,
	10 * time.Microsecond,
	100 * time.Microsecond,
	time.Millisecond,
	10 * time.Millisecond,
	100 * time.Millisecond,
	time.Second,
	10 * time.Second,
}

const numBuckets = len(histBuckets) + 1 // +1 for the overflow bucket

// Histogram is a fixed-bucket duration histogram with atomic buckets. The
// zero value is ready to use; a nil *Histogram is a no-op sink.
type Histogram struct {
	buckets [numBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	max     atomic.Int64 // nanoseconds
}

// Observe records one duration. Safe on a nil receiver.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	i := 0
	for i < len(histBuckets) && d > histBuckets[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
	for {
		cur := h.max.Load()
		if int64(d) <= cur || h.max.CompareAndSwap(cur, int64(d)) {
			break
		}
	}
}

// Count returns the number of observations; zero on a nil receiver.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total observed time; zero on a nil receiver.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// Max returns the largest observation; zero on a nil receiver.
func (h *Histogram) Max() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.max.Load())
}

func (h *Histogram) reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
	h.max.Store(0)
}

// HistogramBucket is one bucket of a histogram snapshot: the count of
// observations with duration ≤ UpperBound (0 marks the overflow bucket).
type HistogramBucket struct {
	UpperBound time.Duration `json:"le"`
	Count      int64         `json:"count"`
}

// HistogramSnapshot is a histogram's point-in-time state.
type HistogramSnapshot struct {
	Name    string            `json:"name"`
	Count   int64             `json:"count"`
	SumNS   int64             `json:"sum_ns"`
	MaxNS   int64             `json:"max_ns"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

func (h *Histogram) snapshot(name string) HistogramSnapshot {
	s := HistogramSnapshot{Name: name, Count: h.count.Load(), SumNS: h.sum.Load(), MaxNS: h.max.Load()}
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		b := HistogramBucket{Count: n}
		if i < len(histBuckets) {
			b.UpperBound = histBuckets[i]
		}
		s.Buckets = append(s.Buckets, b)
	}
	return s
}
