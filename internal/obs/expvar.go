package obs

import (
	"expvar"
	"sync"
)

var publishMu sync.Mutex

// PublishExpvar exposes the registry's live snapshot as an expvar variable
// under the given name (served at /debug/vars once net/http is listening).
// Publishing the same name twice is a no-op rather than the panic expvar
// itself raises, so CLIs can call this unconditionally.
func PublishExpvar(name string, m *Metrics) {
	publishMu.Lock()
	defer publishMu.Unlock()
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return m.Snapshot() }))
}
