// Package pattern implements the paper's tree pattern dialect P: rooted
// trees whose nodes carry an element/attribute label (or wildcard), whose
// edges denote parent-child (/) or ancestor-descendant (//) relationships,
// and whose nodes may be annotated with stored attributes (ID, val, cont)
// and with value predicates [val = c]. It also implements the sub-pattern
// machinery the maintenance algorithms need: snowcap enumeration
// (Definition 3.11) and the sub-pattern lattice.
package pattern

import (
	"fmt"
	"strings"
)

// Store is a bitmask of the information items a pattern node stores for
// each matching XML node.
type Store uint8

const (
	// StoreID stores the node's Compact Dynamic Dewey ID.
	StoreID Store = 1 << iota
	// StoreVal stores the node's string value (concatenated text
	// descendants).
	StoreVal
	// StoreCont stores the node's serialized content (full subtree image).
	StoreCont
)

// Has reports whether all bits of q are set in s.
func (s Store) Has(q Store) bool { return s&q == q }

func (s Store) String() string {
	var parts []string
	if s.Has(StoreID) {
		parts = append(parts, "ID")
	}
	if s.Has(StoreVal) {
		parts = append(parts, "val")
	}
	if s.Has(StoreCont) {
		parts = append(parts, "cont")
	}
	return strings.Join(parts, ",")
}

// Node is one node of a tree pattern.
type Node struct {
	Label    string // element label, "@name" for attributes, or "*"
	Desc     bool   // edge from parent is // (ancestor-descendant); root: unused
	Store    Store
	HasPred  bool
	PredVal  string // the c of [val = c]
	Children []*Node

	// Index is the node's preorder position, assigned by Finalize.
	Index  int
	parent *Node
}

// Pattern is a finalized tree pattern. Nodes are addressable by preorder
// index; index 0 is the root.
type Pattern struct {
	Root  *Node
	Nodes []*Node // preorder
}

// New finalizes a pattern rooted at root: it assigns preorder indexes and
// parent links. The pattern must have at most 64 nodes (term bitmasks and
// lattice sets are 64-bit).
func New(root *Node) (*Pattern, error) {
	p := &Pattern{Root: root}
	var walk func(n, parent *Node) error
	walk = func(n, parent *Node) error {
		n.Index = len(p.Nodes)
		n.parent = parent
		p.Nodes = append(p.Nodes, n)
		for _, c := range n.Children {
			if err := walk(c, n); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(root, nil); err != nil {
		return nil, err
	}
	if len(p.Nodes) > 64 {
		return nil, fmt.Errorf("pattern: %d nodes exceeds the 64-node limit", len(p.Nodes))
	}
	return p, nil
}

// MustNew is New for statically known patterns.
func MustNew(root *Node) *Pattern {
	p, err := New(root)
	if err != nil {
		panic(err)
	}
	return p
}

// Size returns the number of pattern nodes.
func (p *Pattern) Size() int { return len(p.Nodes) }

// Parent returns the parent of the node at index i, or nil for the root.
func (p *Pattern) Parent(i int) *Node { return p.Nodes[i].parent }

// ParentIndex returns the preorder index of node i's parent, or -1.
func (p *Pattern) ParentIndex(i int) int {
	if par := p.Nodes[i].parent; par != nil {
		return par.Index
	}
	return -1
}

// IsAncestor reports whether pattern node a is a proper ancestor of pattern
// node b (by index).
func (p *Pattern) IsAncestor(a, b int) bool {
	for cur := p.Nodes[b].parent; cur != nil; cur = cur.parent {
		if cur.Index == a {
			return true
		}
	}
	return false
}

// Labels returns the labels of all nodes in preorder.
func (p *Pattern) Labels() []string {
	out := make([]string, len(p.Nodes))
	for i, n := range p.Nodes {
		out[i] = n.Label
	}
	return out
}

// StoredIndexes returns the preorder indexes of nodes that store anything.
func (p *Pattern) StoredIndexes() []int {
	var out []int
	for i, n := range p.Nodes {
		if n.Store != 0 {
			out = append(out, i)
		}
	}
	return out
}

// ContValIndexes returns the indexes of nodes annotated with cont or val —
// the paper's cvn set, driving the tuple-modification algorithms.
func (p *Pattern) ContValIndexes() []int {
	var out []int
	for i, n := range p.Nodes {
		if n.Store.Has(StoreVal) || n.Store.Has(StoreCont) {
			out = append(out, i)
		}
	}
	return out
}

// String renders the pattern in a compact XPath-like syntax with stored
// attributes as subscripts, e.g. "//a{ID}[//b{ID}//c]//d{ID,cont}".
// String is Parse's inverse: the output reparses to an equal pattern,
// including the root's / vs // anchoring (a /-anchored root only matches
// the document root element; flattening it to // would widen the view).
// Durable artifacts (checkpoint manifests, write-ahead view records) store
// this rendering, so its stability is load-bearing.
func (p *Pattern) String() string {
	var b strings.Builder
	writeNode(&b, p.Root)
	return b.String()
}

func writeNode(b *strings.Builder, n *Node) {
	if n.Desc {
		b.WriteString("//")
	} else {
		b.WriteString("/")
	}
	b.WriteString(n.Label)
	if n.Store != 0 {
		b.WriteString("{" + n.Store.String() + "}")
	}
	if n.HasPred {
		fmt.Fprintf(b, "[val=%q]", n.PredVal)
	}
	// Non-last children print as bracketed branches; the last child
	// continues the main path, matching the paper's notation.
	for i, c := range n.Children {
		if i < len(n.Children)-1 {
			b.WriteByte('[')
			writeNode(b, c)
			b.WriteByte(']')
		} else {
			writeNode(b, c)
		}
	}
}

// Clone returns a deep copy of the pattern (finalized again), optionally
// transforming each node's Store via f (nil keeps stores).
func (p *Pattern) Clone(f func(i int, s Store) Store) *Pattern {
	var cp func(n *Node) *Node
	cp = func(n *Node) *Node {
		m := &Node{Label: n.Label, Desc: n.Desc, Store: n.Store, HasPred: n.HasPred, PredVal: n.PredVal}
		if f != nil {
			m.Store = f(n.Index, n.Store)
		}
		for _, c := range n.Children {
			m.Children = append(m.Children, cp(c))
		}
		return m
	}
	return MustNew(cp(p.Root))
}

// SubPattern materializes the sub-pattern induced by the node set mask
// (which must be connected and upward-closed, i.e. a snowcap). The returned
// pattern preserves labels, edges, predicates and stores; its nodes keep a
// mapping back to the original indexes, returned as the second value in
// sub-pattern preorder.
func (p *Pattern) SubPattern(mask uint64) (*Pattern, []int) {
	if mask&1 == 0 {
		panic("pattern: SubPattern mask must contain the root")
	}
	var orig []int
	var cp func(n *Node) *Node
	cp = func(n *Node) *Node {
		m := &Node{Label: n.Label, Desc: n.Desc, Store: n.Store, HasPred: n.HasPred, PredVal: n.PredVal}
		orig = append(orig, n.Index)
		for _, c := range n.Children {
			if mask&(1<<uint(c.Index)) != 0 {
				m.Children = append(m.Children, cp(c))
			}
		}
		return m
	}
	root := cp(p.Root)
	return MustNew(root), orig
}
