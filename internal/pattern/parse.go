package pattern

import (
	"fmt"
	"strings"
)

// Parse builds a pattern from the compact syntax produced by
// Pattern.String, e.g.
//
//	//a{ID}[//b{ID}//c]//d{ID,cont}[val="5"]
//
// Steps start with / or //; {…} lists stored attributes (ID, val, cont);
// [val="c"] attaches a value predicate; [/…] or [//…] opens a branch.
func Parse(s string) (*Pattern, error) {
	pp := &patParser{src: s}
	root, err := pp.parseStep()
	if err != nil {
		return nil, err
	}
	if pp.pos != len(pp.src) {
		return nil, fmt.Errorf("pattern: trailing input %q", pp.src[pp.pos:])
	}
	return New(root)
}

// MustParse is Parse that panics on error.
func MustParse(s string) *Pattern {
	p, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return p
}

type patParser struct {
	src string
	pos int
}

func (p *patParser) eat(tok string) bool {
	if strings.HasPrefix(p.src[p.pos:], tok) {
		p.pos += len(tok)
		return true
	}
	return false
}

// parseStep parses one node plus its branches and continuation, returning
// the node (continuation and branches become children).
func (p *patParser) parseStep() (*Node, error) {
	n := &Node{}
	switch {
	case p.eat("//"):
		n.Desc = true
	case p.eat("/"):
		n.Desc = false
	default:
		return nil, fmt.Errorf("pattern: expected / or // at %q", p.src[p.pos:])
	}
	start := p.pos
	for p.pos < len(p.src) && isLabelByte(p.src[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return nil, fmt.Errorf("pattern: expected label at %q", p.src[p.pos:])
	}
	n.Label = p.src[start:p.pos]
	// Annotations.
	for {
		switch {
		case p.eat("{"):
			end := strings.IndexByte(p.src[p.pos:], '}')
			if end < 0 {
				return nil, fmt.Errorf("pattern: missing }")
			}
			for _, part := range strings.Split(p.src[p.pos:p.pos+end], ",") {
				switch strings.TrimSpace(part) {
				case "ID", "id":
					n.Store |= StoreID
				case "val":
					n.Store |= StoreVal
				case "cont":
					n.Store |= StoreCont
				case "":
				default:
					return nil, fmt.Errorf("pattern: unknown store %q", part)
				}
			}
			p.pos += end + 1
		case strings.HasPrefix(p.src[p.pos:], "[val="):
			p.pos += len("[val=")
			lit, err := p.parseQuoted()
			if err != nil {
				return nil, err
			}
			if !p.eat("]") {
				return nil, fmt.Errorf("pattern: missing ] after predicate")
			}
			n.HasPred = true
			n.PredVal = lit
		default:
			goto branches
		}
	}
branches:
	// Branch children.
	for strings.HasPrefix(p.src[p.pos:], "[/") {
		p.pos++ // consume [
		child, err := p.parseStep()
		if err != nil {
			return nil, err
		}
		if !p.eat("]") {
			return nil, fmt.Errorf("pattern: missing ] after branch")
		}
		n.Children = append(n.Children, child)
	}
	// Continuation child.
	if p.pos < len(p.src) && p.src[p.pos] == '/' {
		child, err := p.parseStep()
		if err != nil {
			return nil, err
		}
		n.Children = append(n.Children, child)
	}
	return n, nil
}

func (p *patParser) parseQuoted() (string, error) {
	if p.pos >= len(p.src) {
		return "", fmt.Errorf("pattern: expected quoted literal at end")
	}
	q := p.src[p.pos]
	if q != '"' && q != '\'' {
		return "", fmt.Errorf("pattern: expected quote at %q", p.src[p.pos:])
	}
	p.pos++
	start := p.pos
	for p.pos < len(p.src) && p.src[p.pos] != q {
		p.pos++
	}
	if p.pos >= len(p.src) {
		return "", fmt.Errorf("pattern: unterminated literal")
	}
	lit := p.src[start:p.pos]
	p.pos++
	return lit, nil
}

func isLabelByte(c byte) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		return true
	case c == '_', c == '-', c == '.', c == '@', c == '*', c == '#', c == '~':
		return true
	}
	return false
}
