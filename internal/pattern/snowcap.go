package pattern

import "math/bits"

// A node-set of a pattern is represented as a bitmask over preorder
// indexes; bit 0 is the root.

// FullMask returns the mask containing every node of p.
func (p *Pattern) FullMask() uint64 {
	if len(p.Nodes) == 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(len(p.Nodes))) - 1
}

// IsSnowcap reports whether mask is a snowcap of p per Definition 3.11: a
// non-empty subtree of p such that whenever a node is in the set, its parent
// is too. (Equivalently: non-empty and upward-closed, hence containing the
// root.)
func (p *Pattern) IsSnowcap(mask uint64) bool {
	if mask == 0 || mask&^p.FullMask() != 0 {
		return false
	}
	for i := 1; i < len(p.Nodes); i++ {
		if mask&(1<<uint(i)) != 0 {
			pi := p.ParentIndex(i)
			if mask&(1<<uint(pi)) == 0 {
				return false
			}
		}
	}
	return true
}

// IsUpClosed reports whether mask (possibly empty) is upward-closed in p.
// The empty set and every snowcap are upward-closed; upward-closed sets are
// exactly the R-node sets of insertion terms surviving Proposition 3.3.
func (p *Pattern) IsUpClosed(mask uint64) bool {
	return mask == 0 || p.IsSnowcap(mask)
}

// Snowcaps enumerates all snowcap masks of p, in increasing popcount order
// (so smaller snowcaps come first, and the full pattern comes last).
func (p *Pattern) Snowcaps() []uint64 {
	full := p.FullMask()
	var out []uint64
	for mask := uint64(1); mask <= full; mask++ {
		if p.IsSnowcap(mask) {
			out = append(out, mask)
		}
	}
	sortByPopcount(out)
	return out
}

// SnowcapChain returns one snowcap per size level 1..Size(p), each
// containing the previous — the "pick one per level" policy used in the
// paper's experiments (Section 6.7). The chain is built greedily by always
// extending with the lowest-index attachable node.
func (p *Pattern) SnowcapChain() []uint64 {
	mask := uint64(1)
	chain := []uint64{mask}
	for bits.OnesCount64(mask) < len(p.Nodes) {
		for i := 1; i < len(p.Nodes); i++ {
			bit := uint64(1) << uint(i)
			if mask&bit != 0 {
				continue
			}
			if mask&(1<<uint(p.ParentIndex(i))) != 0 {
				mask |= bit
				break
			}
		}
		chain = append(chain, mask)
	}
	return chain
}

// LeafMasks returns the singleton masks for every pattern node — the
// lattice leaves. (Every node, not only pattern leaves: the lattice of the
// paper has one leaf per query node label.)
func (p *Pattern) LeafMasks() []uint64 {
	out := make([]uint64, len(p.Nodes))
	for i := range p.Nodes {
		out[i] = 1 << uint(i)
	}
	return out
}

func sortByPopcount(masks []uint64) {
	// Insertion sort by (popcount, value): lattice sizes are tiny.
	for i := 1; i < len(masks); i++ {
		for j := i; j > 0; j-- {
			a, b := masks[j-1], masks[j]
			ca, cb := bits.OnesCount64(a), bits.OnesCount64(b)
			if ca < cb || (ca == cb && a <= b) {
				break
			}
			masks[j-1], masks[j] = b, a
		}
	}
}

// MaskContains reports whether mask contains node index i.
func MaskContains(mask uint64, i int) bool { return mask&(1<<uint(i)) != 0 }

// MaskIndexes returns the node indexes present in mask, ascending.
func MaskIndexes(mask uint64) []int {
	var out []int
	for mask != 0 {
		i := bits.TrailingZeros64(mask)
		out = append(out, i)
		mask &^= 1 << uint(i)
	}
	return out
}
